(* lb_lint: determinism & correctness static analysis over lib/ and bin/.

   Usage: lb_lint [--allow FILE] [--rules] [--version] PATH...

   Exit codes: 0 clean, 1 findings, 2 config or parse errors. *)

let version = "lb_lint 1.0.0"

let default_allow_candidates = [ "bin/lint_allow"; "lint_allow" ]

let usage () =
  String.concat "\n"
    [
      "usage: lb_lint [options] PATH...";
      "";
      "Static analysis for the load-balancing simulator: proves lib/ code";
      "cannot silently reintroduce nondeterminism (the engines' bit-identical";
      "replay guarantee) and enforces totality/interface/IO hygiene.";
      "";
      "options:";
      "  --allow FILE   allowlist file (default: bin/lint_allow if present)";
      "  --no-allow     ignore any allowlist file";
      "  --rules        print the rule catalogue and exit";
      "  --version      print version and exit";
      "";
      "exit codes: 0 no findings, 1 findings, 2 config/parse errors";
    ]

let print_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s (%s)\n  %s\n" (Lint.Finding.rule_id r)
        (Lint.Finding.rule_title r) (Lint.Finding.rule_doc r))
    Lint.Finding.all_rules;
  print_newline ();
  print_endline
    "Suppression: `(* lint: allow R1 ... *)` or `(* lint: total *)` on the";
  print_endline
    "offending line or the line above; file-level entries in bin/lint_allow";
  print_endline "(`<path-substring> <rule>...`, `all` covers every rule).";
  print_endline
    "A scoped entry `R1[Unix.gettimeofday]` suppresses only findings led";
  print_endline
    "by that dotted identifier, so real-I/O modules get narrow waivers."

let fail_config msg =
  prerr_endline ("lb_lint: " ^ msg);
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse paths allow_file no_allow = function
    | [] -> (List.rev paths, allow_file, no_allow)
    | "--version" :: _ ->
      print_endline version;
      exit 0
    | "--rules" :: _ ->
      print_rules ();
      exit 0
    | ("--help" | "-h") :: _ ->
      print_endline (usage ());
      exit 0
    | "--allow" :: file :: rest -> parse paths (Some file) no_allow rest
    | "--allow" :: [] -> fail_config "--allow needs a FILE argument"
    | "--no-allow" :: rest -> parse paths allow_file true rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      fail_config (Printf.sprintf "unknown option %s\n%s" arg (usage ()))
    | path :: rest -> parse (path :: paths) allow_file no_allow rest
  in
  let paths, allow_file, no_allow = parse [] None false args in
  if paths = [] then fail_config ("no paths given\n" ^ usage ());
  let allow =
    if no_allow then Lint.Allow.empty
    else
      match allow_file with
      | Some file -> (
        match Lint.Allow.load file with
        | Ok a -> a
        | Error e -> fail_config ("bad allowlist: " ^ e))
      | None -> (
        match List.find_opt Sys.file_exists default_allow_candidates with
        | None -> Lint.Allow.empty
        | Some file -> (
          match Lint.Allow.load file with
          | Ok a -> a
          | Error e -> fail_config ("bad allowlist: " ^ e)))
  in
  match Lint.Scan.run ~allow paths with
  | Error e -> fail_config e
  | Ok { findings; errors } ->
    List.iter
      (fun f -> print_endline (Lint.Finding.to_string f))
      findings;
    List.iter
      (fun { Lint.Scan.path; message } ->
        Printf.eprintf "lb_lint: %s: %s\n" path message)
      errors;
    if errors <> [] then exit 2
    else if findings <> [] then begin
      Printf.printf "%d finding%s\n" (List.length findings)
        (if List.length findings = 1 then "" else "s");
      exit 1
    end
    else exit 0
