(* lb_lint: determinism & correctness static analysis over lib/ and bin/.

   Two passes share one driver:
   - syntactic (default): parse sources, run R1-R5;
   - typed (--typed): load .cmt trees, build the cross-module call graph,
     run T1-T4 (determinism taint, domain safety, wire contract,
     exit-code contract) on top of R1-R5, and report stale waivers.

   Usage: lb_lint [options] PATH...

   Exit codes: 0 clean, 1 findings or stale waivers, 2 config or parse
   errors (see bin/exit_contract). *)

let version = "lb_lint 2.0.0"

let default_allow_candidates = [ "bin/lint_allow"; "lint_allow" ]

let usage () =
  String.concat "\n"
    [
      "usage: lb_lint [options] PATH...";
      "";
      "Static analysis for the load-balancing simulator: proves lib/ code";
      "cannot silently reintroduce nondeterminism (the engines' bit-identical";
      "replay guarantee) and enforces totality/interface/IO hygiene.  With";
      "--typed it additionally runs the interprocedural T1-T4 families over";
      "the .cmt typed trees (build them with `dune build @check`).";
      "";
      "options:";
      "  --typed        run the typed T1-T4 pass too; PATHs become source";
      "                 roots relative to --root (default: lib bin)";
      "  --root DIR     repository root for --typed (default: .)";
      "  --build-dir D  cmt location for --typed (default: _build/default)";
      "  --jsonl        machine-readable output, one JSON object per line";
      "  --explain RULE print the full doc for one rule (R1-R5, T1-T4)";
      "  --wire-update  re-record bin/wire_contract from the live tree";
      "  --allow FILE   allowlist file (default: bin/lint_allow if present)";
      "  --no-allow     ignore any allowlist file";
      "  --rules        print the rule catalogue and exit";
      "  --version      print version and exit";
      "";
      "exit codes: 0 no findings, 1 findings or stale waivers, 2 config or";
      "parse errors";
    ]

let print_rules () =
  List.iter
    (fun r ->
      Printf.printf "%s (%s)\n  %s\n" (Lint.Finding.rule_id r)
        (Lint.Finding.rule_title r) (Lint.Finding.rule_doc r))
    Lint.Finding.all_rules;
  print_newline ();
  print_endline
    "Suppression: `(* lint: allow R1 ... *)` or `(* lint: total *)` on the";
  print_endline
    "offending line or the line above; file-level entries in bin/lint_allow";
  print_endline "(`<path-substring> <rule>...`, `all` covers every rule).";
  print_endline
    "A scoped entry `R1[Unix.gettimeofday]` or `T1[Dist.Clock.now]`";
  print_endline
    "suppresses only findings led by that dotted identifier, so real-IO";
  print_endline "modules get narrow waivers.  Waivers that suppress nothing";
  print_endline "are reported stale by --typed and fail the run."

let fail_config msg =
  prerr_endline ("lb_lint: " ^ msg);
  exit 2

type opts = {
  mutable paths : string list;
  mutable allow_file : string option;
  mutable no_allow : bool;
  mutable typed : bool;
  mutable jsonl : bool;
  mutable wire_update : bool;
  mutable root : string;
  mutable build_dir : string;
}

let print_finding ~jsonl f =
  if jsonl then print_endline (Lint.Finding.to_jsonl f)
  else begin
    print_endline (Lint.Finding.to_string f);
    List.iter print_endline (Lint.Finding.chain_to_strings f)
  end

let print_stale ~jsonl (s : Lint.Typed.stale) =
  if jsonl then
    Printf.printf "{\"kind\":\"stale\",\"where\":\"%s\",\"detail\":\"%s\"}\n"
      (Lint.Finding.json_escape s.Lint.Typed.sw_where)
      (Lint.Finding.json_escape s.Lint.Typed.sw_detail)
  else
    Printf.printf "%s: stale waiver: %s\n" s.Lint.Typed.sw_where
      s.Lint.Typed.sw_detail

let print_error ~jsonl (e : Lint.Scan.error) =
  if jsonl then
    Printf.printf "{\"kind\":\"error\",\"path\":\"%s\",\"msg\":\"%s\"}\n"
      (Lint.Finding.json_escape e.Lint.Scan.path)
      (Lint.Finding.json_escape e.Lint.Scan.message)
  else Printf.eprintf "lb_lint: %s: %s\n" e.Lint.Scan.path e.Lint.Scan.message

let () =
  let o =
    {
      paths = [];
      allow_file = None;
      no_allow = false;
      typed = false;
      jsonl = false;
      wire_update = false;
      root = ".";
      build_dir = "_build/default";
    }
  in
  let rec parse = function
    | [] -> ()
    | "--version" :: _ ->
      print_endline version;
      exit 0
    | "--rules" :: _ ->
      print_rules ();
      exit 0
    | ("--help" | "-h") :: _ ->
      print_endline (usage ());
      exit 0
    | "--explain" :: rule :: _ -> (
      match Lint.Finding.rule_of_string rule with
      | Some r ->
        Printf.printf "%s (%s)\n  %s\n" (Lint.Finding.rule_id r)
          (Lint.Finding.rule_title r) (Lint.Finding.rule_doc r);
        exit 0
      | None -> fail_config (Printf.sprintf "unknown rule %S" rule))
    | "--explain" :: [] -> fail_config "--explain needs a RULE argument"
    | "--allow" :: file :: rest ->
      o.allow_file <- Some file;
      parse rest
    | "--allow" :: [] -> fail_config "--allow needs a FILE argument"
    | "--no-allow" :: rest ->
      o.no_allow <- true;
      parse rest
    | "--typed" :: rest ->
      o.typed <- true;
      parse rest
    | "--jsonl" :: rest ->
      o.jsonl <- true;
      parse rest
    | "--wire-update" :: rest ->
      o.wire_update <- true;
      parse rest
    | "--root" :: dir :: rest ->
      o.root <- dir;
      parse rest
    | "--root" :: [] -> fail_config "--root needs a DIR argument"
    | "--build-dir" :: dir :: rest ->
      o.build_dir <- dir;
      parse rest
    | "--build-dir" :: [] -> fail_config "--build-dir needs a DIR argument"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      fail_config (Printf.sprintf "unknown option %s\n%s" arg (usage ()))
    | path :: rest ->
      o.paths <- path :: o.paths;
      parse rest
  in
  parse (Array.to_list Sys.argv |> List.tl);
  o.paths <- List.rev o.paths;
  let in_root p = Filename.concat o.root p in
  let allow, allow_path =
    if o.no_allow then (Lint.Allow.empty, None)
    else
      let from_file file =
        match Lint.Allow.load file with
        | Ok a -> (a, Some file)
        | Error e -> fail_config ("bad allowlist: " ^ e)
      in
      match o.allow_file with
      | Some file -> from_file file
      | None -> (
        match
          List.find_opt Sys.file_exists
            (default_allow_candidates
            @ List.map in_root default_allow_candidates)
        with
        | None -> (Lint.Allow.empty, None)
        | Some file -> from_file file)
  in
  if o.typed || o.wire_update then begin
    let roots = if o.paths = [] then [ "lib"; "bin" ] else o.paths in
    let cfg =
      {
        (Lint.Typed.default_config ~root:o.root ?allow_path ~allow ()) with
        Lint.Typed.roots;
        build_dir = o.build_dir;
      }
    in
    if o.wire_update then
      match Lint.Typed.write_wire_contract cfg with
      | Ok written ->
        List.iter (Printf.printf "recorded %s\n") written;
        exit 0
      | Error e -> fail_config e
    else
      match Lint.Typed.run cfg with
      | Error e -> fail_config e
      | Ok r ->
        List.iter (print_finding ~jsonl:o.jsonl) r.Lint.Typed.findings;
        List.iter (print_stale ~jsonl:o.jsonl) r.Lint.Typed.stale;
        List.iter (print_error ~jsonl:o.jsonl) r.Lint.Typed.errors;
        let nf = List.length r.Lint.Typed.findings
        and ns = List.length r.Lint.Typed.stale in
        if o.jsonl then
          Printf.printf
            "{\"kind\":\"summary\",\"findings\":%d,\"stale\":%d,\"errors\":%d,\"files\":%d,\"units\":%d}\n"
            nf ns
            (List.length r.Lint.Typed.errors)
            r.Lint.Typed.files r.Lint.Typed.units
        else if nf > 0 || ns > 0 then
          Printf.printf "%d finding%s, %d stale waiver%s\n" nf
            (if nf = 1 then "" else "s")
            ns
            (if ns = 1 then "" else "s");
        if r.Lint.Typed.errors <> [] then exit 2
        else if nf > 0 || ns > 0 then exit 1
        else exit 0
  end
  else begin
    if o.paths = [] then fail_config ("no paths given\n" ^ usage ());
    match Lint.Scan.run ~allow o.paths with
    | Error e -> fail_config e
    | Ok { findings; errors; _ } ->
      List.iter (print_finding ~jsonl:o.jsonl) findings;
      List.iter (print_error ~jsonl:o.jsonl) errors;
      let nf = List.length findings in
      if o.jsonl then
        Printf.printf
          "{\"kind\":\"summary\",\"findings\":%d,\"stale\":0,\"errors\":%d}\n"
          nf (List.length errors)
      else if nf > 0 then
        Printf.printf "%d finding%s\n" nf (if nf = 1 then "" else "s");
      if errors <> [] then exit 2 else if nf > 0 then exit 1 else exit 0
  end
