(* lb_chaos: seeded fuzzer over the cluster's fault-schedule space.

   Generates N scenarios (Dist.Chaos, a pure function of --seed and the
   scenario index), runs each as a real multi-process cluster under
   Dist.Super, and checks the universal invariants every schedule must
   preserve: exact token conservation, re-entry into the Theorem 2.3
   discrepancy band (widened against the fault-free reference
   trajectory, so short schedules gate on "no worse than an
   undisturbed run could be from the first disturbance onward"), and
   termination within the per-scenario deadline
   (the coordinator exits 4 on the first two, 3 on the third — any
   non-zero exit is a finding).

   On a failure the schedule is shrunk: faults, partition windows, the
   loss shim and the horizon are removed piecewise while the failure
   persists, and the minimal reproducer is printed as a replayable
   lb_cluster command line.

   --inject plants an audit-misreporting bug into every scenario
   (once:S@R must be healed by the poisoned-commit rollback;
   from:S@R must trip the poison budget) — the expected-failure mode
   used by CI to prove the shrinker works. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_chaos: %s\n%!" msg;
  exit 2

let make_temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    if k > 999 then die "cannot create a scratch directory under temp"
    else begin
      let d = Printf.sprintf "%s/lb_chaos.%d.%03d" base (Unix.getpid ()) k in
      match Unix.mkdir d 0o700 with
      | () -> d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
      | exception Unix.Unix_error (e, _, _) ->
        die (Printf.sprintf "cannot create %s: %s" d (Unix.error_message e))
    end
  in
  go 0

let remove_dir d =
  match Sys.readdir d with
  | entries ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      entries;
    (try Unix.rmdir d with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

(* "once:S@R" | "from:S@R" -> (shard, injection). *)
let parse_inject s =
  let err =
    Error
      (Printf.sprintf
         "bad --inject %S (expected once:SHARD@ROUND or from:SHARD@ROUND)" s)
  in
  match String.index_opt s ':' with
  | None -> err
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest '@' with
    | None -> err
    | Some j -> (
      let shard = int_of_string_opt (String.sub rest 0 j) in
      let round =
        int_of_string_opt
          (String.sub rest (j + 1) (String.length rest - j - 1))
      in
      match (kind, shard, round) with
      | "once", Some s, Some r when s >= 0 && r >= 0 ->
        Ok (s, Dist.Node.Misreport_once r)
      | "from", Some s, Some r when s >= 0 && r >= 0 ->
        Ok (s, Dist.Node.Misreport_from r)
      | _ -> err))

(* Run one scenario as a real cluster; the exit code is the verdict. *)
let run_scenario ~inject ~deadline ~verbose (s : Dist.Chaos.scenario) =
  match
    Dist.Setup.build
      { graph = s.graph; init = s.init; algo = s.algo; seed = s.seed;
        self_loops = None }
  with
  | Error m ->
    Printf.eprintf "lb_chaos: scenario %d does not build: %s\n%!" s.index m;
    2
  | Ok built ->
    let dir = make_temp_dir () in
    let wal_path = Filename.concat dir "coord.wal" in
    let loss =
      { Dist.Loss.drop = s.drop; delay_prob = s.delay_prob;
        delay_max = s.delay_max; seed = s.seed; partitions = s.partitions }
    in
    (* Short scenarios have not converged into the Theorem 2.3 band
       yet, so the gate is the band widened against the fault-free
       reference trajectory.  A dead or partitioned shard freezes — it
       makes no progress while the survivors advance — so the healed
       run can land anywhere the reference visits between the first
       disturbance and the horizon — plus up to one degree's worth of
       rounding drift, because the survivors keep balancing
       indivisible tokens on the induced subgraph and a node there can
       sink slightly below the frozen-time global minimum.  The gate
       is the worst reference discrepancy over that window plus a
       degree of slack (and the exact final value, no slack, when the
       schedule is disturbance-free). *)
    let ref_disc rounds =
      let r =
        Core.Engine.run ~graph:built.Dist.Setup.graph
          ~balancer:(built.Dist.Setup.make_balancer ())
          ~init:built.Dist.Setup.init ~steps:rounds ()
      in
      let loads = r.Core.Engine.final_loads in
      Array.fold_left max loads.(0) loads - Array.fold_left min loads.(0) loads
    in
    let first_disturbance =
      let fault_round = function
        | Dist.Super.Kill_shard { round; _ }
        | Dist.Super.Term_shard { round; _ }
        | Dist.Super.Kill_coord { round } ->
          round
      in
      let r0 =
        List.fold_left (fun acc f -> min acc (fault_round f)) s.rounds s.faults
      in
      (* Partition windows are wall-clock, not round-indexed; any
         window can freeze a shard from the first round onward. *)
      if s.partitions <> [] then min r0 1 else r0
    in
    let disturbed = s.faults <> [] || s.partitions <> [] in
    let reference =
      let worst = ref 0 in
      for r = first_disturbance to s.rounds do
        worst := max !worst (ref_disc r)
      done;
      if disturbed then
        !worst + Graphs.Graph.degree built.Dist.Setup.graph
      else !worst
    in
    let band =
      match Dist.Setup.parse_band built "auto" with
      | Ok (Some b) -> Some (max b reference)
      | Ok None -> Some reference
      | Error m -> die m
    in
    let node_cfg ~port shard =
      { Dist.Node.shard; shards = s.shards; port;
        graph = built.Dist.Setup.graph; init = built.Dist.Setup.init;
        make_balancer = built.Dist.Setup.make_balancer; rounds = s.rounds;
        ckpt_dir = dir; loss; protocol = Net.Protocol.default_config;
        tick = 0.005; hb_interval = 0.02; metrics_port = None;
        reconnects = 8; graceful_term = true;
        injection =
          (match inject with
           | Some (sh, inj) when sh = shard -> inj
           | Some _ | None -> Dist.Node.No_injection);
        verbose }
    in
    let coord_cfg ~listen_fd =
      { Dist.Coord.shards = s.shards; rounds = s.rounds;
        graph = built.Dist.Setup.graph; init = built.Dist.Setup.init;
        balancer_name = built.Dist.Setup.name; listen_fd;
        suspect_timeout = 0.3; band; out_path = None; metrics_port = None;
        respawn = None; on_commit = None; deadline = Some deadline;
        wal = Some wal_path; graceful_term = true; verbose }
    in
    let coord_kills =
      List.length
        (List.filter
           (function Dist.Super.Kill_coord _ -> true | _ -> false)
           s.faults)
    in
    let code =
      try
        Dist.Super.run
          { Dist.Super.shards = s.shards; node_cfg; coord_cfg; wal_path;
            faults = s.faults; deadline = Some (deadline +. 5.);
            coord_respawns = coord_kills;
            node_respawns = 3 + List.length s.faults; verbose }
      with e ->
        Printf.eprintf "lb_chaos: scenario %d: supervisor died: %s\n%!"
          s.index (Printexc.to_string e);
        3
    in
    remove_dir dir;
    code

let run scenarios seed from inject_s deadline lbs_out verbose =
  if scenarios < 1 then die "--scenarios must be >= 1";
  if from < 0 then die "--from must be >= 0";
  if deadline <= 0. then die "--deadline must be > 0";
  let inject =
    match inject_s with
    | None -> None
    | Some s -> (
      match parse_inject s with Ok i -> Some i | Error m -> die m)
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let failed = ref None in
  let i = ref from in
  while !failed = None && !i < from + scenarios do
    let s = Dist.Chaos.generate ~seed ~index:!i in
    (* The injection targets a shard by id; clamp it into range so every
       scenario actually exercises the bug. *)
    let inject =
      match inject with
      | Some (sh, inj) -> Some (sh mod s.shards, inj)
      | None -> None
    in
    Printf.printf "scenario %s\n%!" (Dist.Chaos.describe s);
    let code = run_scenario ~inject ~deadline ~verbose s in
    if code <> 0 then begin
      Printf.printf "scenario %d FAILED (exit %d)\n%!" s.index code;
      failed := Some (s, inject)
    end;
    incr i
  done;
  match !failed with
  | None ->
    Printf.printf "all %d scenario(s) passed (seed %d, indices %d..%d)\n%!"
      scenarios seed from
      (from + scenarios - 1);
    exit 0
  | Some (s, inject) ->
    Printf.printf "shrinking scenario %d...\n%!" s.index;
    let fails c = run_scenario ~inject ~deadline ~verbose c <> 0 in
    let minimal = Dist.Chaos.minimize ~fails s in
    Printf.printf "minimal reproducer (scenario %d, seed %d):\n  %s%s\n%!"
      minimal.Dist.Chaos.index seed
      (Dist.Chaos.command_line minimal)
      (match inject_s with Some inj -> " --inject " ^ inj | None -> "");
    (* The same schedule as a scenario file, so the finding can be
       archived and re-checked with lb_scn (the --inject bug is a node
       implementation detail, not part of the scenario language). *)
    (match Scenario.Cluster.to_string minimal with
    | Ok text ->
      let path = lbs_out in
      (try
         Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
         Printf.printf "scenario file written to %s (lb_scn check/compile):\n%s%!" path
           text
       with Sys_error m ->
         Printf.eprintf "lb_chaos: cannot write %s: %s\n%!" path m)
    | Error m -> Printf.eprintf "lb_chaos: cannot render scenario file: %s\n%!" m);
    exit 1

open Cmdliner

let scenarios_t =
  Arg.(value & opt int 25
       & info [ "scenarios" ] ~docv:"N" ~doc:"Number of scenarios to run.")

let seed_t =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"S" ~doc:"Fuzzer stream seed.")

let from_t =
  Arg.(value & opt int 0
       & info [ "from" ] ~docv:"I" ~doc:"First scenario index.")

let inject_t =
  Arg.(value & opt (some string) None
       & info [ "inject" ] ~docv:"KIND:SHARD\\@ROUND"
           ~doc:"Plant an audit-misreporting bug in every scenario \
                 (once:S\\@R or from:S\\@R); used to demonstrate the \
                 shrinker on a known failure.")

let deadline_t =
  Arg.(value & opt float 60.
       & info [ "deadline" ] ~docv:"SEC" ~doc:"Per-scenario budget.")

let lbs_out_t =
  Arg.(value & opt string "chaos-finding.lbs"
       & info [ "lbs-out" ] ~docv:"PATH"
           ~doc:"Where to write the minimal reproducer as a scenario (.lbs) file.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log cluster internals.")

let term =
  Term.(const run $ scenarios_t $ seed_t $ from_t $ inject_t $ deadline_t
        $ lbs_out_t $ verbose_t)

let cmd =
  let doc = "fuzz the cluster's fault-schedule space with seeded scenarios" in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"every scenario preserved the invariants";
      Cmd.Exit.info 1 ~doc:"a scenario failed; minimal reproducer printed";
      Cmd.Exit.info 2 ~doc:"configuration error" ]
  in
  Cmd.v (Cmd.info "lb_chaos" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
