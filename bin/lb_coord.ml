(* lb_coord: standalone cluster coordinator.

   Binds a loopback listener (prints the bound port to stderr), waits
   for --shards lb_node daemons to connect, and drives the run:
   membership, round barrier, data-plane relay, watchdog audit, final
   conservation and band checks.  Without a supervisor it cannot fork
   replacements for dead shards — it logs the death and waits for an
   externally restarted lb_node to rejoin (subject to --deadline).
   lb_cluster wraps this same coordinator with a fork supervisor. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_coord: %s\n%!" msg;
  exit 2

let run shards rounds graph_s init_s algo_s seed self_loops port band_s out
    suspect_timeout wal metrics_port deadline verbose =
  if rounds < 1 then die "--rounds must be >= 1";
  if shards < 1 then die "--shards must be >= 1";
  (match Dist.Heartbeat.validate_timeout ~timeout:suspect_timeout () with
   | Ok () -> ()
   | Error m -> die ("--hb-timeout: " ^ m));
  let built =
    match
      Dist.Setup.build
        { graph = graph_s; init = init_s; algo = algo_s; seed; self_loops }
    with
    | Ok b -> b
    | Error m -> die m
  in
  let band =
    match Dist.Setup.parse_band built band_s with
    | Ok b -> b
    | Error m -> die m
  in
  let listen_fd, bound_port = Dist.Transport.listen_loopback ~port () in
  Printf.eprintf "lb_coord: listening on 127.0.0.1:%d\n%!" bound_port;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout; band; out_path = out; metrics_port;
      respawn = None; on_commit = None;
      deadline = (if deadline > 0. then Some deadline else None);
      wal; graceful_term = true; verbose }
  in
  exit (Dist.Coord.main cfg)

open Cmdliner

let shards_t =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"K" ~doc:"Number of shard daemons.")

let rounds_t =
  Arg.(value & opt int 50
       & info [ "rounds" ] ~docv:"T" ~doc:"Number of balancing rounds.")

let graph_t =
  Arg.(value & opt string "cycle:64"
       & info [ "graph" ] ~docv:"SPEC" ~doc:"Graph spec (Harness grammar).")

let init_t =
  Arg.(value & opt string "point:4096"
       & info [ "init" ] ~docv:"SPEC" ~doc:"Initial load spec.")

let algo_t =
  Arg.(value & opt string "rotor-router"
       & info [ "algo" ] ~docv:"SPEC" ~doc:"Balancer spec.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Experiment seed.")

let self_loops_t =
  Arg.(value & opt (some int) None
       & info [ "self-loops" ] ~docv:"D"
           ~doc:"Self-loops added per node (algorithm default otherwise).")

let port_t =
  Arg.(value & opt int 0
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen port (0 = ephemeral; the bound port is printed).")

let band_t =
  Arg.(value & opt string "auto"
       & info [ "band" ] ~docv:"B"
           ~doc:"Final discrepancy bound: auto, none, or an integer.")

let out_t =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Write merged final loads, one per line.")

let suspect_timeout_t =
  Arg.(value & opt float 0.5
       & info [ "hb-timeout"; "suspect-timeout" ] ~docv:"SEC"
           ~doc:"Failure-detector timeout: heartbeat silence before a \
                 shard is declared dead.")

let wal_t =
  Arg.(value & opt (some string) None
       & info [ "wal" ] ~docv:"FILE"
           ~doc:"Write-ahead log.  Every commit and epoch transition is \
                 fsync'd here before its effects; restarting on a \
                 non-empty log replays it and resumes the frozen round.")

let metrics_port_t =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus /metrics on this port.")

let deadline_t =
  Arg.(value & opt float 0.
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Wall-clock budget; 0 disables (wait forever for rejoins).")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress to stderr.")

let term =
  Term.(const run $ shards_t $ rounds_t $ graph_t $ init_t $ algo_t $ seed_t
        $ self_loops_t $ port_t $ band_t $ out_t $ suspect_timeout_t $ wal_t
        $ metrics_port_t $ deadline_t $ verbose_t)

let cmd =
  let doc = "coordinate lb_node shard daemons over loopback" in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"success (tokens conserved, band respected)";
      Cmd.Exit.info 2 ~doc:"configuration error";
      Cmd.Exit.info 3 ~doc:"recovery, connection, or deadline failure";
      Cmd.Exit.info 4 ~doc:"invariant violation (conservation or band)" ]
  in
  Cmd.v (Cmd.info "lb_coord" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
