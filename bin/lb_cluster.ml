(* lb_cluster: single-machine crash-tolerant cluster launcher.

   Binds the coordinator's loopback listener, then forks EVERYTHING —
   one lb_node child per shard and the coordinator itself — under the
   Super supervisor, so the coordinator is as killable as any shard.
   The coordinator writes a WAL (ckpt-dir/coord.wal by default) that
   both drives the fault schedule (the parent tails it for committed
   rounds) and makes the coordinator restartable: --kill-coord ROUND
   SIGKILLs it mid-round and its replacement replays the log, re-adopts
   the live membership, and resumes the frozen round exactly.

   Fault schedule: --kill SHARD@ROUND (SIGKILL), --term SHARD@ROUND
   (graceful SIGTERM: the shard exits 0 at its barrier and is
   respawned), --kill-coord ROUND, --partition SHARDS@FROM-UNTIL
   (mute the listed shards' coordinator links over a wall-clock
   window), --inject once:SHARD@ROUND | from:SHARD@ROUND (misreported
   audit sums, for exercising the poisoned-commit rollback).

   Exit code is the coordinator's: 0 ok, 2 config, 3 recovery/timeout,
   4 invariant (conservation or discrepancy band).  Spec grammar is
   Harness.Experiment's, so a lossless run's --out file is
   cmp-identical to lb_sim --dump-loads. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_cluster: %s\n%!" msg;
  exit 2

(* "SHARD@ROUND" -> (shard, round); the fault fires when ROUND commits. *)
let parse_at what s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "bad %s %S (expected SHARD@ROUND)" what s)
  | Some i -> (
    let shard = String.sub s 0 i in
    let round = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt shard, int_of_string_opt round) with
    | Some sh, Some r when sh >= 0 && r >= 0 -> Ok (sh, r)
    | _ -> Error (Printf.sprintf "bad %s %S (expected SHARD@ROUND)" what s))

(* "S1,S2@FROM-UNTIL" -> a Loss.window cutting those shards off. *)
let parse_partition s =
  let err =
    Error
      (Printf.sprintf
         "bad --partition %S (expected SHARD[,SHARD..]@FROM-UNTIL, seconds)" s)
  in
  match String.index_opt s '@' with
  | None -> err
  | Some i -> (
    let shards_s = String.sub s 0 i in
    let span = String.sub s (i + 1) (String.length s - i - 1) in
    let cut =
      List.map int_of_string_opt (String.split_on_char ',' shards_s)
    in
    match String.index_opt span '-' with
    | None -> err
    | Some j -> (
      let from_s = float_of_string_opt (String.sub span 0 j) in
      let until_s =
        float_of_string_opt
          (String.sub span (j + 1) (String.length span - j - 1))
      in
      match (from_s, until_s) with
      | Some f, Some u when List.for_all (fun o -> o <> None) cut ->
        Ok
          { Dist.Loss.cut = List.filter_map (fun o -> o) cut;
            from_s = f; until_s = u }
      | _ -> err))

(* "once:S@R" | "from:S@R" -> (shard, injection for that shard). *)
let parse_inject s =
  let err =
    Error
      (Printf.sprintf "bad --inject %S (expected once:SHARD@ROUND or \
                       from:SHARD@ROUND)" s)
  in
  match String.index_opt s ':' with
  | None -> err
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match parse_at "--inject" rest with
    | Error _ -> err
    | Ok (shard, round) -> (
      match kind with
      | "once" -> Ok (shard, Dist.Node.Misreport_once round)
      | "from" -> Ok (shard, Dist.Node.Misreport_from round)
      | _ -> err))

let make_temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    if k > 999 then die "cannot create a checkpoint directory under temp"
    else begin
      let d = Printf.sprintf "%s/lb_cluster.%d.%03d" base (Unix.getpid ()) k in
      match Unix.mkdir d 0o700 with
      | () -> d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
      | exception Unix.Unix_error (e, _, _) ->
        die
          (Printf.sprintf "cannot create %s: %s" d (Unix.error_message e))
    end
  in
  go 0

let remove_dir d =
  match Sys.readdir d with
  | entries ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      entries;
    (try Unix.rmdir d with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let run graph_s init_s algo_s rounds shards seed self_loops drop delay_prob
    delay_max loss_seed kills_s terms_s kill_coords partitions_s inject_s
    band_s out dir wal_opt tick hb_interval suspect_timeout reconnects
    retx_timeout retx_backoff_s retx_cap metrics_port deadline verbose =
  if rounds < 1 then die "--rounds must be >= 1";
  if shards < 1 then die "--shards must be >= 1";
  if reconnects < 0 then die "--reconnects must be >= 0";
  let built =
    match
      Dist.Setup.build
        { graph = graph_s; init = init_s; algo = algo_s; seed; self_loops }
    with
    | Ok b -> b
    | Error m -> die m
  in
  if shards > Graphs.Graph.n built.Dist.Setup.graph then
    die "--shards exceeds the number of graph nodes";
  let band =
    match Dist.Setup.parse_band built band_s with
    | Ok b -> b
    | Error m -> die m
  in
  (match Dist.Heartbeat.validate_timeout ~interval:hb_interval
           ~timeout:suspect_timeout ()
   with
   | Ok () -> ()
   | Error m -> die ("--hb-timeout: " ^ m));
  let retx_backoff =
    match Net.Protocol.backoff_of_string retx_backoff_s with
    | Ok b -> b
    | Error m -> die ("--retx-backoff: " ^ m)
  in
  let protocol =
    { Net.Protocol.timeout = retx_timeout; backoff = retx_backoff;
      cap = retx_cap }
  in
  (match Net.Protocol.validate_config protocol with
   | Ok () -> ()
   | Error m -> die ("--retx-*: " ^ m));
  let partitions =
    List.map
      (fun s -> match parse_partition s with Ok w -> w | Error m -> die m)
      partitions_s
  in
  List.iter
    (fun (w : Dist.Loss.window) ->
      List.iter
        (fun sh ->
          if sh < 0 || sh >= shards then
            die (Printf.sprintf "--partition: shard %d out of range" sh))
        w.Dist.Loss.cut)
    partitions;
  let loss =
    { Dist.Loss.drop; delay_prob; delay_max;
      seed = (match loss_seed with Some s -> s | None -> seed); partitions }
  in
  (match Dist.Loss.validate loss with
   | Ok () -> ()
   | Error m -> die m);
  let kills =
    List.map
      (fun s -> match parse_at "--kill" s with Ok k -> k | Error m -> die m)
      kills_s
  in
  let terms =
    List.map
      (fun s -> match parse_at "--term" s with Ok k -> k | Error m -> die m)
      terms_s
  in
  let faults =
    List.map (fun (shard, round) -> Dist.Super.Kill_shard { shard; round }) kills
    @ List.map
        (fun (shard, round) -> Dist.Super.Term_shard { shard; round })
        terms
    @ List.map
        (fun round ->
          if round < 0 then die "--kill-coord: round must be >= 0";
          Dist.Super.Kill_coord { round })
        kill_coords
  in
  List.iter
    (fun f ->
      match f with
      | Dist.Super.Kill_shard { shard; round }
      | Dist.Super.Term_shard { shard; round } ->
        if shard >= shards then
          die
            (Printf.sprintf "%s: shard out of range"
               (Dist.Super.describe_fault f))
        else if round >= rounds then
          die
            (Printf.sprintf "%s: round beyond the horizon"
               (Dist.Super.describe_fault f))
      | Dist.Super.Kill_coord { round } ->
        if round >= rounds then
          die
            (Printf.sprintf "%s: round beyond the horizon"
               (Dist.Super.describe_fault f)))
    faults;
  let inject =
    match inject_s with
    | None -> None
    | Some s -> (
      match parse_inject s with
      | Ok (shard, inj) ->
        if shard >= shards then die "--inject: shard out of range";
        Some (shard, inj)
      | Error m -> die m)
  in
  let ckpt_dir, made_dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d && Sys.is_directory d) then
        die (Printf.sprintf "--dir %s: not a directory" d);
      (d, false)
    | None -> (make_temp_dir (), true)
  in
  let wal_path =
    match wal_opt with
    | Some p -> p
    | None -> Filename.concat ckpt_dir "coord.wal"
  in
  if verbose then
    Printf.eprintf "lb_cluster: %d shards, %d rounds, ckpts %s, wal %s\n%!"
      shards rounds ckpt_dir wal_path;
  let node_cfg ~port shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir; loss;
      protocol; tick; hb_interval;
      metrics_port =
        (match metrics_port with
         | Some p when p > 0 -> Some (p + 1 + shard)
         | Some _ | None -> None);
      reconnects; graceful_term = true;
      injection =
        (match inject with
         | Some (s, inj) when s = shard -> inj
         | Some _ | None -> Dist.Node.No_injection);
      verbose }
  in
  let coord_cfg ~listen_fd =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout; band; out_path = out; metrics_port;
      respawn = None; on_commit = None;
      deadline = (if deadline > 0. then Some deadline else None);
      wal = Some wal_path; graceful_term = true; verbose }
  in
  let coord_kills =
    List.length
      (List.filter
         (function Dist.Super.Kill_coord _ -> true | _ -> false)
         faults)
  in
  let sup_cfg =
    { Dist.Super.shards; node_cfg; coord_cfg; wal_path; faults;
      deadline = (if deadline > 0. then Some (deadline +. 10.) else None);
      coord_respawns = coord_kills;
      node_respawns = 3 + List.length faults;
      verbose }
  in
  let code =
    try Dist.Super.run sup_cfg
    with e ->
      Printf.eprintf "lb_cluster: supervisor died: %s\n%!"
        (Printexc.to_string e);
      3
  in
  if made_dir && code = 0 then remove_dir ckpt_dir
  else if made_dir && verbose then
    Printf.eprintf "lb_cluster: checkpoints kept at %s\n%!" ckpt_dir;
  (* lint: allow T4 — code is Dist.Super.run's verdict (a sanctioned
     returner, bin/exit_contract) or the literal 3 from the handler above *)
  exit code

open Cmdliner

let graph_t =
  Arg.(value & opt string "cycle:64"
       & info [ "graph" ] ~docv:"SPEC" ~doc:"Graph spec (Harness grammar).")

let init_t =
  Arg.(value & opt string "point:4096"
       & info [ "init" ] ~docv:"SPEC" ~doc:"Initial load spec.")

let algo_t =
  Arg.(value & opt string "rotor-router"
       & info [ "algo" ] ~docv:"SPEC" ~doc:"Balancer spec.")

let rounds_t =
  Arg.(value & opt int 50
       & info [ "rounds" ] ~docv:"T" ~doc:"Number of balancing rounds.")

let shards_t =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"K" ~doc:"Number of node processes.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Experiment seed.")

let self_loops_t =
  Arg.(value & opt (some int) None
       & info [ "self-loops" ] ~docv:"D"
           ~doc:"Self-loops added per node (algorithm default otherwise).")

let drop_t =
  Arg.(value & opt float 0.
       & info [ "drop" ] ~docv:"P" ~doc:"Data-frame drop probability.")

let delay_prob_t =
  Arg.(value & opt float 0.
       & info [ "delay-prob" ] ~docv:"P" ~doc:"Data-frame delay probability.")

let delay_max_t =
  Arg.(value & opt float 0.05
       & info [ "delay-max" ] ~docv:"SEC" ~doc:"Maximum injected delay.")

let loss_seed_t =
  Arg.(value & opt (some int) None
       & info [ "loss-seed" ] ~docv:"S"
           ~doc:"Loss-shim seed (defaults to --seed).")

let kill_t =
  Arg.(value & opt_all string []
       & info [ "kill" ] ~docv:"SHARD\\@ROUND"
           ~doc:"SIGKILL shard when the round commits (repeatable).")

let term_t =
  Arg.(value & opt_all string []
       & info [ "term" ] ~docv:"SHARD\\@ROUND"
           ~doc:"SIGTERM shard when the round commits: it exits 0 at its \
                 barrier and is respawned (repeatable).")

let kill_coord_t =
  Arg.(value & opt_all int []
       & info [ "kill-coord" ] ~docv:"ROUND"
           ~doc:"SIGKILL the coordinator when the round commits; its \
                 replacement replays the WAL (repeatable).")

let partition_t =
  Arg.(value & opt_all string []
       & info [ "partition" ] ~docv:"SHARDS\\@FROM-UNTIL"
           ~doc:"Cut the listed shards (comma-separated) off the \
                 coordinator over a wall-clock window in seconds, e.g. \
                 1,2\\@0.2-0.6 (repeatable).")

let inject_t =
  Arg.(value & opt (some string) None
       & info [ "inject" ] ~docv:"KIND:SHARD\\@ROUND"
           ~doc:"Audit-fault injection: once:S\\@R misreports one round's \
                 sum (the poisoned commit must roll back and re-run); \
                 from:S\\@R misreports every round from R (the poison \
                 budget must trip, exit 4).")

let band_t =
  Arg.(value & opt string "auto"
       & info [ "band" ] ~docv:"B"
           ~doc:"Final discrepancy bound: auto, none, or an integer.")

let out_t =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Write merged final loads, one per line (cmp-comparable \
                 with lb_sim --dump-loads).")

let dir_t =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Checkpoint directory (fresh temp dir otherwise).")

let wal_t =
  Arg.(value & opt (some string) None
       & info [ "wal" ] ~docv:"FILE"
           ~doc:"Coordinator write-ahead log (default DIR/coord.wal). A \
                 non-empty existing log resumes that run.")

let tick_t =
  Arg.(value & opt float 0.02
       & info [ "tick" ] ~docv:"SEC" ~doc:"Seconds per ARQ round-unit.")

let hb_interval_t =
  Arg.(value & opt float 0.05
       & info [ "hb-interval" ] ~docv:"SEC" ~doc:"Heartbeat interval.")

let suspect_timeout_t =
  Arg.(value & opt float 0.5
       & info [ "hb-timeout"; "suspect-timeout" ] ~docv:"SEC"
           ~doc:"Failure-detector timeout: heartbeat silence before a \
                 shard is declared dead.  Must exceed twice the \
                 heartbeat interval.")

let reconnects_t =
  Arg.(value & opt int 5
       & info [ "reconnects" ] ~docv:"N"
           ~doc:"Consecutive coordinator-link losses a node tolerates \
                 before exiting 3.")

let retx_timeout_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.timeout
       & info [ "retx-timeout" ] ~docv:"N"
           ~doc:"ARQ ticks before first retransmission.")

let retx_backoff_t =
  Arg.(value & opt string "exp"
       & info [ "retx-backoff" ] ~docv:"KIND" ~doc:"fixed or exp.")

let retx_cap_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.cap
       & info [ "retx-cap" ] ~docv:"N" ~doc:"ARQ backoff cap, in ticks.")

let metrics_port_t =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus /metrics: coordinator on PORT, shard i \
                 on PORT+1+i.")

let deadline_t =
  Arg.(value & opt float 120.
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Wall-clock budget; 0 disables.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress to stderr.")

let term =
  Term.(const run $ graph_t $ init_t $ algo_t $ rounds_t $ shards_t $ seed_t
        $ self_loops_t $ drop_t $ delay_prob_t $ delay_max_t $ loss_seed_t
        $ kill_t $ term_t $ kill_coord_t $ partition_t $ inject_t $ band_t
        $ out_t $ dir_t $ wal_t $ tick_t $ hb_interval_t $ suspect_timeout_t
        $ reconnects_t $ retx_timeout_t $ retx_backoff_t $ retx_cap_t
        $ metrics_port_t $ deadline_t $ verbose_t)

let cmd =
  let doc =
    "run a crash-tolerant multi-process load-balancing cluster on loopback"
  in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"success (tokens conserved, band respected)";
      Cmd.Exit.info 2 ~doc:"configuration error";
      Cmd.Exit.info 3 ~doc:"recovery, connection, or deadline failure";
      Cmd.Exit.info 4 ~doc:"invariant violation (conservation or band)" ]
  in
  Cmd.v (Cmd.info "lb_cluster" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
