(* lb_cluster: single-machine crash-tolerant cluster launcher.

   Binds the coordinator's loopback listener, forks one lb_node child
   per shard, then runs the coordinator in this process with the fork
   supervisor as the respawn callback.  A chaos schedule (--kill
   SHARD@ROUND, repeatable) SIGKILLs shards at round commits; the
   coordinator detects the silence, re-runs the wounded round under a
   new epoch, respawns the shard, and re-admits it from its checkpoint.

   Exit code is the coordinator's: 0 ok, 2 config, 3 recovery/timeout,
   4 invariant (conservation or discrepancy band).  Spec grammar is
   Harness.Experiment's, so a lossless run's --out file is
   cmp-identical to lb_sim --dump-loads. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_cluster: %s\n%!" msg;
  exit 2

(* "SHARD@ROUND" -> (shard, round); the kill fires when ROUND commits. *)
let parse_kill s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "bad --kill %S (expected SHARD@ROUND)" s)
  | Some i -> (
    let shard = String.sub s 0 i in
    let round = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt shard, int_of_string_opt round) with
    | Some sh, Some r when sh >= 0 && r >= 0 -> Ok (sh, r)
    | _ -> Error (Printf.sprintf "bad --kill %S (expected SHARD@ROUND)" s))

let make_temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    if k > 999 then die "cannot create a checkpoint directory under temp"
    else begin
      let d = Printf.sprintf "%s/lb_cluster.%d.%03d" base (Unix.getpid ()) k in
      match Unix.mkdir d 0o700 with
      | () -> d
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
      | exception Unix.Unix_error (e, _, _) ->
        die
          (Printf.sprintf "cannot create %s: %s" d (Unix.error_message e))
    end
  in
  go 0

let remove_dir d =
  match Sys.readdir d with
  | entries ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      entries;
    (try Unix.rmdir d with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let run graph_s init_s algo_s rounds shards seed self_loops drop delay_prob
    delay_max loss_seed kills_s band_s out dir tick hb_interval suspect_timeout
    retx_timeout retx_backoff_s retx_cap metrics_port deadline verbose =
  if rounds < 1 then die "--rounds must be >= 1";
  if shards < 1 then die "--shards must be >= 1";
  let built =
    match
      Dist.Setup.build
        { graph = graph_s; init = init_s; algo = algo_s; seed; self_loops }
    with
    | Ok b -> b
    | Error m -> die m
  in
  if shards > Graphs.Graph.n built.Dist.Setup.graph then
    die "--shards exceeds the number of graph nodes";
  let band =
    match Dist.Setup.parse_band built band_s with
    | Ok b -> b
    | Error m -> die m
  in
  let retx_backoff =
    match Net.Protocol.backoff_of_string retx_backoff_s with
    | Ok b -> b
    | Error m -> die ("--retx-backoff: " ^ m)
  in
  let protocol =
    { Net.Protocol.timeout = retx_timeout; backoff = retx_backoff;
      cap = retx_cap }
  in
  (match Net.Protocol.validate_config protocol with
   | Ok () -> ()
   | Error m -> die ("--retx-*: " ^ m));
  let loss =
    { Dist.Loss.drop; delay_prob; delay_max;
      seed = (match loss_seed with Some s -> s | None -> seed) }
  in
  (match Dist.Loss.validate loss with
   | Ok () -> ()
   | Error m -> die m);
  let kills =
    List.map (fun s -> match parse_kill s with Ok k -> k | Error m -> die m)
      kills_s
  in
  List.iter
    (fun (sh, r) ->
      if sh >= shards then
        die (Printf.sprintf "--kill %d@%d: shard out of range" sh r))
    kills;
  let ckpt_dir, made_dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d && Sys.is_directory d) then
        die (Printf.sprintf "--dir %s: not a directory" d);
      (d, false)
    | None -> (make_temp_dir (), true)
  in
  Dist.Launch.ignore_sigpipe ();
  let listen_fd, port = Dist.Transport.listen_loopback () in
  if verbose then
    Printf.eprintf "lb_cluster: %d shards, %d rounds, port %d, ckpts %s\n%!"
      shards rounds port ckpt_dir;
  let node_cfg shard =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir; loss;
      protocol; tick; hb_interval;
      metrics_port =
        (match metrics_port with
         | Some p when p > 0 -> Some (p + 1 + shard)
         | Some _ | None -> None);
      verbose }
  in
  let sup =
    Dist.Launch.create ~listen_fd ~node_cfg ~shards ~verbose
  in
  Dist.Launch.spawn_all sup;
  let on_commit round =
    List.iter (fun (sh, r) -> if r = round then Dist.Launch.kill sup sh) kills
  in
  let respawn shard =
    Dist.Launch.reap sup;
    Dist.Launch.spawn sup shard
  in
  let coord_cfg =
    { Dist.Coord.shards; rounds; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init; balancer_name = built.Dist.Setup.name;
      listen_fd; suspect_timeout; band; out_path = out; metrics_port;
      respawn = Some respawn;
      on_commit = (if kills = [] then None else Some on_commit);
      deadline = (if deadline > 0. then Some deadline else None); verbose }
  in
  let code =
    Fun.protect
      ~finally:(fun () -> Dist.Launch.shutdown sup)
      (fun () ->
        try Dist.Coord.main coord_cfg
        with e ->
          Printf.eprintf "lb_cluster: coordinator died: %s\n%!"
            (Printexc.to_string e);
          3)
  in
  if made_dir && code = 0 then remove_dir ckpt_dir
  else if made_dir && verbose then
    Printf.eprintf "lb_cluster: checkpoints kept at %s\n%!" ckpt_dir;
  exit code

open Cmdliner

let graph_t =
  Arg.(value & opt string "cycle:64"
       & info [ "graph" ] ~docv:"SPEC" ~doc:"Graph spec (Harness grammar).")

let init_t =
  Arg.(value & opt string "point:4096"
       & info [ "init" ] ~docv:"SPEC" ~doc:"Initial load spec.")

let algo_t =
  Arg.(value & opt string "rotor-router"
       & info [ "algo" ] ~docv:"SPEC" ~doc:"Balancer spec.")

let rounds_t =
  Arg.(value & opt int 50
       & info [ "rounds" ] ~docv:"T" ~doc:"Number of balancing rounds.")

let shards_t =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"K" ~doc:"Number of node processes.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Experiment seed.")

let self_loops_t =
  Arg.(value & opt (some int) None
       & info [ "self-loops" ] ~docv:"D"
           ~doc:"Self-loops added per node (algorithm default otherwise).")

let drop_t =
  Arg.(value & opt float 0.
       & info [ "drop" ] ~docv:"P" ~doc:"Data-frame drop probability.")

let delay_prob_t =
  Arg.(value & opt float 0.
       & info [ "delay-prob" ] ~docv:"P" ~doc:"Data-frame delay probability.")

let delay_max_t =
  Arg.(value & opt float 0.05
       & info [ "delay-max" ] ~docv:"SEC" ~doc:"Maximum injected delay.")

let loss_seed_t =
  Arg.(value & opt (some int) None
       & info [ "loss-seed" ] ~docv:"S"
           ~doc:"Loss-shim seed (defaults to --seed).")

let kill_t =
  Arg.(value & opt_all string []
       & info [ "kill" ] ~docv:"SHARD\\@ROUND"
           ~doc:"SIGKILL shard when the round commits (repeatable).")

let band_t =
  Arg.(value & opt string "auto"
       & info [ "band" ] ~docv:"B"
           ~doc:"Final discrepancy bound: auto, none, or an integer.")

let out_t =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE"
           ~doc:"Write merged final loads, one per line (cmp-comparable \
                 with lb_sim --dump-loads).")

let dir_t =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Checkpoint directory (fresh temp dir otherwise).")

let tick_t =
  Arg.(value & opt float 0.02
       & info [ "tick" ] ~docv:"SEC" ~doc:"Seconds per ARQ round-unit.")

let hb_interval_t =
  Arg.(value & opt float 0.05
       & info [ "hb-interval" ] ~docv:"SEC" ~doc:"Heartbeat interval.")

let suspect_timeout_t =
  Arg.(value & opt float 0.5
       & info [ "suspect-timeout" ] ~docv:"SEC"
           ~doc:"Heartbeat silence before a shard is declared dead.")

let retx_timeout_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.timeout
       & info [ "retx-timeout" ] ~docv:"N"
           ~doc:"ARQ ticks before first retransmission.")

let retx_backoff_t =
  Arg.(value & opt string "exp"
       & info [ "retx-backoff" ] ~docv:"KIND" ~doc:"fixed or exp.")

let retx_cap_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.cap
       & info [ "retx-cap" ] ~docv:"N" ~doc:"ARQ backoff cap, in ticks.")

let metrics_port_t =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus /metrics: coordinator on PORT, shard i \
                 on PORT+1+i.")

let deadline_t =
  Arg.(value & opt float 120.
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Wall-clock budget; 0 disables.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress to stderr.")

let term =
  Term.(const run $ graph_t $ init_t $ algo_t $ rounds_t $ shards_t $ seed_t
        $ self_loops_t $ drop_t $ delay_prob_t $ delay_max_t $ loss_seed_t
        $ kill_t $ band_t $ out_t $ dir_t $ tick_t $ hb_interval_t
        $ suspect_timeout_t $ retx_timeout_t $ retx_backoff_t $ retx_cap_t
        $ metrics_port_t $ deadline_t $ verbose_t)

let cmd =
  let doc =
    "run a crash-tolerant multi-process load-balancing cluster on loopback"
  in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"success (tokens conserved, band respected)";
      Cmd.Exit.info 2 ~doc:"configuration error";
      Cmd.Exit.info 3 ~doc:"recovery, connection, or deadline failure";
      Cmd.Exit.info 4 ~doc:"invariant violation (conservation or band)" ]
  in
  Cmd.v (Cmd.info "lb_cluster" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
