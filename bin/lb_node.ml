(* lb_node: one shard daemon, run standalone against an lb_coord.

   lb_cluster forks this logic in-process; the standalone binary exists
   so a cluster can be assembled by hand (or by an external supervisor)
   across terminals: start lb_coord, note its port, start one lb_node
   per shard with identical --graph/--init/--algo/--rounds/--seed.
   Kill -9 a node and start a fresh one: it re-reports its checkpoints
   in Hello and the coordinator re-admits it. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_node: %s\n%!" msg;
  exit 2

(* "S1,S2@FROM-UNTIL" -> a Loss.window cutting those shards off. *)
let parse_partition s =
  let err =
    Error
      (Printf.sprintf
         "bad --partition %S (expected SHARD[,SHARD..]@FROM-UNTIL, seconds)" s)
  in
  match String.index_opt s '@' with
  | None -> err
  | Some i -> (
    let shards_s = String.sub s 0 i in
    let span = String.sub s (i + 1) (String.length s - i - 1) in
    let cut = List.map int_of_string_opt (String.split_on_char ',' shards_s) in
    match String.index_opt span '-' with
    | None -> err
    | Some j -> (
      let from_s = float_of_string_opt (String.sub span 0 j) in
      let until_s =
        float_of_string_opt
          (String.sub span (j + 1) (String.length span - j - 1))
      in
      match (from_s, until_s) with
      | Some f, Some u when List.for_all (fun o -> o <> None) cut ->
        Ok
          { Dist.Loss.cut = List.filter_map (fun o -> o) cut;
            from_s = f; until_s = u }
      | _ -> err))

let run shard shards port graph_s init_s algo_s rounds seed self_loops drop
    delay_prob delay_max loss_seed partitions_s dir tick hb_interval reconnects
    retx_timeout retx_backoff_s retx_cap metrics_port verbose =
  if reconnects < 0 then die "--reconnects must be >= 0";
  let built =
    match
      Dist.Setup.build
        { graph = graph_s; init = init_s; algo = algo_s; seed; self_loops }
    with
    | Ok b -> b
    | Error m -> die m
  in
  let retx_backoff =
    match Net.Protocol.backoff_of_string retx_backoff_s with
    | Ok b -> b
    | Error m -> die ("--retx-backoff: " ^ m)
  in
  let protocol =
    { Net.Protocol.timeout = retx_timeout; backoff = retx_backoff;
      cap = retx_cap }
  in
  let partitions =
    List.map
      (fun s -> match parse_partition s with Ok w -> w | Error m -> die m)
      partitions_s
  in
  let loss =
    { Dist.Loss.drop; delay_prob; delay_max;
      seed = (match loss_seed with Some s -> s | None -> seed); partitions }
  in
  (match Dist.Loss.validate loss with
   | Ok () -> ()
   | Error m -> die m);
  let cfg =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir = dir;
      loss; protocol; tick; hb_interval; metrics_port; reconnects;
      graceful_term = true; injection = Dist.Node.No_injection; verbose }
  in
  exit (Dist.Node.main cfg)

open Cmdliner

let shard_t =
  Arg.(required & opt (some int) None
       & info [ "shard" ] ~docv:"I" ~doc:"This daemon's shard id.")

let shards_t =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"K" ~doc:"Total number of shards.")

let port_t =
  Arg.(required & opt (some int) None
       & info [ "port" ] ~docv:"PORT" ~doc:"Coordinator port on 127.0.0.1.")

let graph_t =
  Arg.(value & opt string "cycle:64"
       & info [ "graph" ] ~docv:"SPEC" ~doc:"Graph spec (Harness grammar).")

let init_t =
  Arg.(value & opt string "point:4096"
       & info [ "init" ] ~docv:"SPEC" ~doc:"Initial load spec.")

let algo_t =
  Arg.(value & opt string "rotor-router"
       & info [ "algo" ] ~docv:"SPEC" ~doc:"Balancer spec.")

let rounds_t =
  Arg.(value & opt int 50
       & info [ "rounds" ] ~docv:"T" ~doc:"Number of balancing rounds.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Experiment seed.")

let self_loops_t =
  Arg.(value & opt (some int) None
       & info [ "self-loops" ] ~docv:"D"
           ~doc:"Self-loops added per node (algorithm default otherwise).")

let drop_t =
  Arg.(value & opt float 0.
       & info [ "drop" ] ~docv:"P" ~doc:"Data-frame drop probability.")

let delay_prob_t =
  Arg.(value & opt float 0.
       & info [ "delay-prob" ] ~docv:"P" ~doc:"Data-frame delay probability.")

let delay_max_t =
  Arg.(value & opt float 0.05
       & info [ "delay-max" ] ~docv:"SEC" ~doc:"Maximum injected delay.")

let loss_seed_t =
  Arg.(value & opt (some int) None
       & info [ "loss-seed" ] ~docv:"S"
           ~doc:"Loss-shim seed (defaults to --seed).")

let partition_t =
  Arg.(value & opt_all string []
       & info [ "partition" ] ~docv:"SHARDS\\@FROM-UNTIL"
           ~doc:"Cut the listed shards off the coordinator over a \
                 wall-clock window in seconds since this daemon started, \
                 e.g. 1,2\\@0.2-0.6 (repeatable).")

let dir_t =
  Arg.(value & opt string "."
       & info [ "dir" ] ~docv:"DIR" ~doc:"Checkpoint directory.")

let reconnects_t =
  Arg.(value & opt int 5
       & info [ "reconnects" ] ~docv:"N"
           ~doc:"Consecutive coordinator-link losses tolerated before \
                 exiting 3.")

let tick_t =
  Arg.(value & opt float 0.02
       & info [ "tick" ] ~docv:"SEC" ~doc:"Seconds per ARQ round-unit.")

let hb_interval_t =
  Arg.(value & opt float 0.05
       & info [ "hb-interval" ] ~docv:"SEC" ~doc:"Heartbeat interval.")

let retx_timeout_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.timeout
       & info [ "retx-timeout" ] ~docv:"N"
           ~doc:"ARQ ticks before first retransmission.")

let retx_backoff_t =
  Arg.(value & opt string "exp"
       & info [ "retx-backoff" ] ~docv:"KIND" ~doc:"fixed or exp.")

let retx_cap_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.cap
       & info [ "retx-cap" ] ~docv:"N" ~doc:"ARQ backoff cap, in ticks.")

let metrics_port_t =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus /metrics on this port.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress to stderr.")

let term =
  Term.(const run $ shard_t $ shards_t $ port_t $ graph_t $ init_t $ algo_t
        $ rounds_t $ seed_t $ self_loops_t $ drop_t $ delay_prob_t
        $ delay_max_t $ loss_seed_t $ partition_t $ dir_t $ tick_t
        $ hb_interval_t $ reconnects_t $ retx_timeout_t $ retx_backoff_t
        $ retx_cap_t $ metrics_port_t $ verbose_t)

let cmd =
  let doc = "run one load-balancing shard daemon against an lb_coord" in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"success";
      Cmd.Exit.info 2 ~doc:"configuration error";
      Cmd.Exit.info 3 ~doc:"recovery or connection failure";
      Cmd.Exit.info 4 ~doc:"invariant violation" ]
  in
  Cmd.v (Cmd.info "lb_node" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
