(* lb_node: one shard daemon, run standalone against an lb_coord.

   lb_cluster forks this logic in-process; the standalone binary exists
   so a cluster can be assembled by hand (or by an external supervisor)
   across terminals: start lb_coord, note its port, start one lb_node
   per shard with identical --graph/--init/--algo/--rounds/--seed.
   Kill -9 a node and start a fresh one: it re-reports its checkpoints
   in Hello and the coordinator re-admits it. *)

let version = "%%VERSION%%"

let die msg =
  Printf.eprintf "lb_node: %s\n%!" msg;
  exit 2

let run shard shards port graph_s init_s algo_s rounds seed self_loops drop
    delay_prob delay_max loss_seed dir tick hb_interval retx_timeout
    retx_backoff_s retx_cap metrics_port verbose =
  let built =
    match
      Dist.Setup.build
        { graph = graph_s; init = init_s; algo = algo_s; seed; self_loops }
    with
    | Ok b -> b
    | Error m -> die m
  in
  let retx_backoff =
    match Net.Protocol.backoff_of_string retx_backoff_s with
    | Ok b -> b
    | Error m -> die ("--retx-backoff: " ^ m)
  in
  let protocol =
    { Net.Protocol.timeout = retx_timeout; backoff = retx_backoff;
      cap = retx_cap }
  in
  let loss =
    { Dist.Loss.drop; delay_prob; delay_max;
      seed = (match loss_seed with Some s -> s | None -> seed) }
  in
  let cfg =
    { Dist.Node.shard; shards; port; graph = built.Dist.Setup.graph;
      init = built.Dist.Setup.init;
      make_balancer = built.Dist.Setup.make_balancer; rounds; ckpt_dir = dir;
      loss; protocol; tick; hb_interval; metrics_port; verbose }
  in
  exit (Dist.Node.main cfg)

open Cmdliner

let shard_t =
  Arg.(required & opt (some int) None
       & info [ "shard" ] ~docv:"I" ~doc:"This daemon's shard id.")

let shards_t =
  Arg.(value & opt int 4
       & info [ "shards" ] ~docv:"K" ~doc:"Total number of shards.")

let port_t =
  Arg.(required & opt (some int) None
       & info [ "port" ] ~docv:"PORT" ~doc:"Coordinator port on 127.0.0.1.")

let graph_t =
  Arg.(value & opt string "cycle:64"
       & info [ "graph" ] ~docv:"SPEC" ~doc:"Graph spec (Harness grammar).")

let init_t =
  Arg.(value & opt string "point:4096"
       & info [ "init" ] ~docv:"SPEC" ~doc:"Initial load spec.")

let algo_t =
  Arg.(value & opt string "rotor-router"
       & info [ "algo" ] ~docv:"SPEC" ~doc:"Balancer spec.")

let rounds_t =
  Arg.(value & opt int 50
       & info [ "rounds" ] ~docv:"T" ~doc:"Number of balancing rounds.")

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Experiment seed.")

let self_loops_t =
  Arg.(value & opt (some int) None
       & info [ "self-loops" ] ~docv:"D"
           ~doc:"Self-loops added per node (algorithm default otherwise).")

let drop_t =
  Arg.(value & opt float 0.
       & info [ "drop" ] ~docv:"P" ~doc:"Data-frame drop probability.")

let delay_prob_t =
  Arg.(value & opt float 0.
       & info [ "delay-prob" ] ~docv:"P" ~doc:"Data-frame delay probability.")

let delay_max_t =
  Arg.(value & opt float 0.05
       & info [ "delay-max" ] ~docv:"SEC" ~doc:"Maximum injected delay.")

let loss_seed_t =
  Arg.(value & opt (some int) None
       & info [ "loss-seed" ] ~docv:"S"
           ~doc:"Loss-shim seed (defaults to --seed).")

let dir_t =
  Arg.(value & opt string "."
       & info [ "dir" ] ~docv:"DIR" ~doc:"Checkpoint directory.")

let tick_t =
  Arg.(value & opt float 0.02
       & info [ "tick" ] ~docv:"SEC" ~doc:"Seconds per ARQ round-unit.")

let hb_interval_t =
  Arg.(value & opt float 0.05
       & info [ "hb-interval" ] ~docv:"SEC" ~doc:"Heartbeat interval.")

let retx_timeout_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.timeout
       & info [ "retx-timeout" ] ~docv:"N"
           ~doc:"ARQ ticks before first retransmission.")

let retx_backoff_t =
  Arg.(value & opt string "exp"
       & info [ "retx-backoff" ] ~docv:"KIND" ~doc:"fixed or exp.")

let retx_cap_t =
  Arg.(value & opt int Net.Protocol.default_config.Net.Protocol.cap
       & info [ "retx-cap" ] ~docv:"N" ~doc:"ARQ backoff cap, in ticks.")

let metrics_port_t =
  Arg.(value & opt (some int) None
       & info [ "metrics-port" ] ~docv:"PORT"
           ~doc:"Serve Prometheus /metrics on this port.")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log progress to stderr.")

let term =
  Term.(const run $ shard_t $ shards_t $ port_t $ graph_t $ init_t $ algo_t
        $ rounds_t $ seed_t $ self_loops_t $ drop_t $ delay_prob_t
        $ delay_max_t $ loss_seed_t $ dir_t $ tick_t $ hb_interval_t
        $ retx_timeout_t $ retx_backoff_t $ retx_cap_t $ metrics_port_t
        $ verbose_t)

let cmd =
  let doc = "run one load-balancing shard daemon against an lb_coord" in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"success";
      Cmd.Exit.info 2 ~doc:"configuration error";
      Cmd.Exit.info 3 ~doc:"recovery or connection failure";
      Cmd.Exit.info 4 ~doc:"invariant violation" ]
  in
  Cmd.v (Cmd.info "lb_node" ~version ~doc ~exits) term

let () = exit (Cmd.eval cmd)
