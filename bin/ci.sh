#!/bin/sh
# CI smoke script: build, run the full tier-1 test suite, then exercise
# the sharded engine end-to-end (equivalence suite + a 4-shard CLI run
# with checkpoint/resume).  Exits non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (tier-1 + shard equivalence) =="
dune runtest

echo "== sharded CLI smoke: 4 shards, checkpoint + resume =="
ckpt=$(mktemp -t lb_ci_ckpt.XXXXXX)
trap 'rm -f "$ckpt"' EXIT
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --checkpoint-every 50
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --resume

echo "== ci.sh: all green =="
