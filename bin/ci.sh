#!/bin/sh
# CI smoke script: build, run the full tier-1 test suite, then exercise
# the sharded engine end-to-end (equivalence suite + a 4-shard CLI run
# with checkpoint/resume) and the fault-injection path (crash 10% of a
# 2^10 ring, require recovery into the Theorem 2.3 band).  Exits
# non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

# Backtraces on any uncaught exception, in tests and smokes alike.
OCAMLRUNPARAM=b
export OCAMLRUNPARAM

echo "== dune build =="
dune build

echo "== dune runtest (tier-1 + shard equivalence + faults) =="
dune runtest

echo "== sharded CLI smoke: 4 shards, checkpoint + resume =="
ckpt=$(mktemp -t lb_ci_ckpt.XXXXXX)
trap 'rm -f "$ckpt" "$ckpt.prev"' EXIT
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --checkpoint-every 50
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --resume

echo "== fault smoke: crash 10% of a 2^10 ring, recover within Thm 2.3 band =="
# cycle(1024): d = 2, so the Theorem 2.3 bound d*min(sqrt(log n/mu), sqrt n)
# is 2*sqrt(1024) = 64.  --require-recovery exits 3 if any episode fails.
dune exec bin/lb_sim.exe -- --graph cycle:1024 --algo rotor-router \
  --init random:65536 --steps 4000 --crash-nodes 0.1@500 \
  --recovery-eps 64 --require-recovery
# Same plan, sharded: the run must replay identically and pass the same
# recovery gate.
dune exec bin/lb_sim.exe -- --graph cycle:1024 --algo rotor-router \
  --init random:65536 --steps 4000 --crash-nodes 0.1@500 \
  --recovery-eps 64 --require-recovery --shards 2

echo "== ci.sh: all green =="
