#!/bin/sh
# CI smoke script: build, run the full tier-1 test suite, then exercise
# the sharded engine end-to-end (equivalence suite + a 4-shard CLI run
# with checkpoint/resume) and the fault-injection path (crash 10% of a
# 2^10 ring, require recovery into the Theorem 2.3 band).  Exits
# non-zero on any failure.
set -eu

cd "$(dirname "$0")/.."

# Backtraces on any uncaught exception, in tests and smokes alike.
OCAMLRUNPARAM=b
export OCAMLRUNPARAM

echo "== dune build =="
dune build

echo "== lb_lint --typed: interprocedural analysis over lib/ and bin/ =="
# Syntactic R1–R5 plus the typed T1–T4 families (DESIGN.md §16):
# determinism taint through the call graph, Domain.spawn capture
# safety, the wire fingerprint/version contract, and the exit-code
# contract.  Any finding fails the build, and so does any stale waiver
# (an allow entry or annotation that suppresses nothing); exceptions
# live in bin/lint_allow or as (* lint: ... *) annotations next to the
# offending line.  The typed pass reads the .cmt trees from @check.
dune build @check
dune exec bin/lb_lint.exe -- --typed lib bin
# The same findings as machine-readable JSONL, validated by the repo's
# own JSON checker.
lint_jsonl=$(mktemp -t lb_ci_lint.XXXXXX)
dune exec bin/lb_lint.exe -- --typed --jsonl lib bin > "$lint_jsonl"
dune exec bin/jsonlint.exe -- --jsonl "$lint_jsonl"
rm -f "$lint_jsonl"

echo "== dune runtest (tier-1 + shard equivalence + faults) =="
dune runtest

echo "== sharded CLI smoke: 4 shards, checkpoint + resume =="
ckpt=$(mktemp -t lb_ci_ckpt.XXXXXX)
trap 'rm -f "$ckpt" "$ckpt.prev"' EXIT
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --checkpoint-every 50
dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --shards 4 \
  --checkpoint "$ckpt" --resume

echo "== fault smoke: crash 10% of a 2^10 ring, recover within Thm 2.3 band =="
# cycle(1024): d = 2, so the Theorem 2.3 bound d*min(sqrt(log n/mu), sqrt n)
# is 2*sqrt(1024) = 64.  --require-recovery exits 3 if any episode fails.
dune exec bin/lb_sim.exe -- --graph cycle:1024 --algo rotor-router \
  --init random:65536 --steps 4000 --crash-nodes 0.1@500 \
  --recovery-eps 64 --require-recovery
# Same plan, sharded: the run must replay identically and pass the same
# recovery gate.
dune exec bin/lb_sim.exe -- --graph cycle:1024 --algo rotor-router \
  --init random:65536 --steps 4000 --crash-nodes 0.1@500 \
  --recovery-eps 64 --require-recovery --shards 2

echo "== net smoke: loss=0 network is bit-identical to the core engine =="
# A reliable network (--drop 0) must reproduce the synchronous engine's
# result exactly; compare the "final disc:" lines of the two runs.
ref=$(dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 | grep '^final disc:')
net=$(dune exec bin/lb_sim.exe -- --graph torus:16x16 --algo rotor-router \
  --init point:4096 --steps 200 --drop 0 | grep '^final disc:')
if [ "$ref" != "$net" ]; then
  echo "loss=0 network diverged from the core engine: '$ref' vs '$net'" >&2
  exit 1
fi

echo "== net smoke: lossy runs replay identically under one --net-seed =="
run1=$(dune exec bin/lb_sim.exe -- --graph hypercube:6 --algo send-floor \
  --init random:8192 --steps 150 --drop 0.1 --delay 2 --staleness 2 --net-seed 7)
run2=$(dune exec bin/lb_sim.exe -- --graph hypercube:6 --algo send-floor \
  --init random:8192 --steps 150 --drop 0.1 --delay 2 --staleness 2 --net-seed 7)
if [ "$run1" != "$run2" ]; then
  echo "two identically-seeded lossy runs diverged" >&2
  exit 1
fi
# The lossy run must still close its token ledger exactly.
echo "$run1" | grep -q '(conserved)' || {
  echo "lossy run did not report a conserved ledger" >&2
  exit 1
}

echo "== workload smoke: open system over a lossy, faulty network conserves tokens =="
# Streaming Poisson arrivals with service departures, composed with a
# 10% node crash and a lossy channel.  lb_sim exits 4 if the final
# ledger (init + arrivals + fault-injected − departures − lost) does not
# balance, so a plain exit-0 run IS the conservation check.
wl=$(dune exec bin/lb_sim.exe -- --graph torus:8x8 --algo send-floor \
  --init point:512 --steps 250 --arrivals uniform --arrival-rate 24 \
  --lifetime work:24 --burst 512@100:node=3 --workload-seed 9 \
  --crash-nodes 0.1@60 --drop 0.05 --delay 1 --net-seed 4)
echo "$wl" | grep -q 'ledger conserved' || {
  echo "open-system run did not report a conserved ledger" >&2
  exit 1
}
# Identical --workload-seed must replay the identical trace.
wl2=$(dune exec bin/lb_sim.exe -- --graph torus:8x8 --algo send-floor \
  --init point:512 --steps 250 --arrivals uniform --arrival-rate 24 \
  --lifetime work:24 --burst 512@100:node=3 --workload-seed 9 \
  --crash-nodes 0.1@60 --drop 0.05 --delay 1 --net-seed 4)
if [ "$wl" != "$wl2" ]; then
  echo "two identically-seeded open-system runs diverged" >&2
  exit 1
fi

echo "== workload smoke: quick E17 reproduces the stability shape =="
# run_workload_sweep exits non-zero unless: bounded+conserved below
# capacity, lambda-monotone steady band, divergence detected above.
wl_json=$(mktemp -d -t lb_ci_workload.XXXXXX)
(cd "$wl_json" && "$OLDPWD/_build/default/bench/main.exe" --quick workload > /dev/null)
dune exec bin/jsonlint.exe -- "$wl_json/BENCH_workload.json"
rm -rf "$wl_json"

echo "== obs smoke: --metrics/--profile export parses =="
prom=$(mktemp -t lb_ci_obs.XXXXXX)
dune exec bin/lb_sim.exe -- --graph random:64,6,5 --algo rotor-router \
  --init point:2048 --steps 200 --metrics --metrics-out "$prom" \
  --metrics-every 10 --profile > /dev/null
test -s "$prom" || { echo "empty Prometheus export $prom" >&2; exit 1; }
grep -q '^# TYPE lb_rounds_total counter' "$prom" || {
  echo "Prometheus export is missing lb_rounds_total" >&2
  exit 1
}
grep -q '^lb_discrepancy{engine="core"} ' "$prom" || {
  echo "Prometheus export is missing the core-engine discrepancy gauge" >&2
  exit 1
}
test -s "$prom.jsonl" || { echo "empty JSONL timeline $prom.jsonl" >&2; exit 1; }
dune exec bin/jsonlint.exe -- --jsonl "$prom.jsonl"
rm -f "$prom" "$prom.jsonl"

echo "== dist smoke: lossless cluster is bit-identical to lb_sim =="
# A 4-process loopback cluster with no loss and no chaos must produce
# the exact final load vector of the single-process simulator — the
# node-side round execution mirrors Core.Engine port for port.
dist_dir=$(mktemp -d -t lb_ci_dist.XXXXXX)
dune exec bin/lb_sim.exe -- --graph hypercube:4 --algo rotor-router \
  --init point:4096 --steps 60 --dump-loads "$dist_dir/sim.loads" > /dev/null
mkdir "$dist_dir/lossless" "$dist_dir/chaos"
dune exec bin/lb_cluster.exe -- --graph hypercube:4 --algo rotor-router \
  --init point:4096 --rounds 60 --shards 4 --band none \
  --out "$dist_dir/cluster.loads" --dir "$dist_dir/lossless"
cmp "$dist_dir/sim.loads" "$dist_dir/cluster.loads" || {
  echo "lossless cluster diverged from lb_sim --dump-loads" >&2
  exit 1
}

echo "== dist smoke: 5% drop + kill -9, conserve tokens, re-enter the band =="
# Chaos run: every data frame has a 5% seeded drop chance, and shard 2
# is SIGKILLed when round 10 commits.  The coordinator must detect the
# death, abort and re-run the wounded round, respawn the shard from its
# checkpoint, and finish with the exact token total (watchdog-audited
# every commit) inside the closed-system discrepancy band (--band auto
# = the Theorem 2.3 bound for this graph).  lb_cluster exits 4 if
# either check fails.  A /metrics endpoint is scraped mid-flight.
dune exec bin/lb_cluster.exe -- --graph hypercube:4 --algo rotor-router \
  --init point:4096 --rounds 60 --shards 4 --drop 0.05 --kill 2@10 \
  --band auto --dir "$dist_dir/chaos" --metrics-port 19377 &
cluster_pid=$!
sleep 1
scrape=$(curl -sf --max-time 2 http://127.0.0.1:19377/metrics || true)
wait "$cluster_pid" || {
  echo "chaos cluster run failed (conservation or band)" >&2
  exit 1
}
echo "$scrape" | grep -q '^lb_coord_rounds_committed_total ' || {
  echo "live /metrics scrape missing lb_coord_rounds_committed_total" >&2
  exit 1
}
echo "== dist smoke: coordinator kill -9 mid-round, WAL-replay recovery =="
# The COORDINATOR is SIGKILLed when round 10 commits; the supervisor
# restarts it, the replacement replays the write-ahead log, re-adopts
# the live shards at the frozen round, and resumes.  Lossless recovery
# is exact: the final vector must still be bit-identical to lb_sim.
mkdir "$dist_dir/coord_crash"
dune exec bin/lb_cluster.exe -- --graph hypercube:4 --algo rotor-router \
  --init point:4096 --rounds 60 --shards 4 --band auto --kill-coord 10 \
  --out "$dist_dir/crash.loads" --dir "$dist_dir/coord_crash"
cmp "$dist_dir/sim.loads" "$dist_dir/crash.loads" || {
  echo "WAL-replay recovery diverged from lb_sim --dump-loads" >&2
  exit 1
}

echo "== dist smoke: healed partition conserves exactly =="
# Shard 1 is cut off from the cluster for 0.5 s: suspected, declared
# dead, frozen under a new epoch.  On heal it is fenced out of its
# stale epoch and re-admitted from a checkpoint.  lb_cluster exits 4
# unless the token total is exact and the band is re-entered.
mkdir "$dist_dir/partition"
dune exec bin/lb_cluster.exe -- --graph hypercube:4 --algo rotor-router \
  --init point:4096 --rounds 60 --shards 4 --band auto \
  --partition 1@0.4-0.9 --dir "$dist_dir/partition"
rm -rf "$dist_dir"

echo "== chaos smoke: 25 seeded fault schedules preserve the invariants =="
# lb_chaos generates scenarios (graph x init x algo x kills x terms x
# coordinator kills x partitions x loss) as a pure function of
# (--seed, index) and runs each as a real forked cluster; any broken
# invariant (conservation, band, termination) fails the run.
dune exec bin/lb_chaos.exe -- --scenarios 25 --seed 42

echo "== chaos smoke: the shrinker reduces an injected bug to a reproducer =="
# Plant a persistent audit-misreporting bug in every scenario: the
# poison budget must trip (exit 4), lb_chaos must exit 1, and the
# failing schedule must shrink to a replayable lb_cluster command line.
chaos_log=$(mktemp -t lb_ci_chaos.XXXXXX)
if dune exec bin/lb_chaos.exe -- --scenarios 2 --seed 42 \
  --inject from:0@2 --lbs-out "$chaos_log.lbs" > "$chaos_log" 2>&1; then
  echo "lb_chaos did not fail on an injected persistent misreport" >&2
  cat "$chaos_log" >&2
  exit 1
fi
grep -q 'minimal reproducer' "$chaos_log" || {
  echo "lb_chaos failed without printing a minimal reproducer" >&2
  cat "$chaos_log" >&2
  exit 1
}
grep -q 'lb_cluster --graph' "$chaos_log" || {
  echo "the minimal reproducer is not a replayable lb_cluster command" >&2
  cat "$chaos_log" >&2
  exit 1
}
# The same finding as a scenario file: it must carry the dist clause
# and pass the scenario checker.
grep -q 'dist {' "$chaos_log.lbs" || {
  echo "lb_chaos .lbs finding is missing its dist clause" >&2
  cat "$chaos_log.lbs" >&2
  exit 1
}
dune exec bin/lb_scn.exe -- check "$chaos_log.lbs" > /dev/null
rm -f "$chaos_log" "$chaos_log.lbs"

echo "== scenario smoke: the example files check, and fmt is a fixpoint =="
dune exec bin/lb_scn.exe -- check \
  examples/scenarios/e15.lbs examples/scenarios/e16.lbs \
  examples/scenarios/e17.lbs examples/scenarios/showcase.lbs
scn_tmp=$(mktemp -d -t lb_ci_scn.XXXXXX)
dune exec bin/lb_scn.exe -- fmt examples/scenarios/showcase.lbs > "$scn_tmp/1.lbs"
dune exec bin/lb_scn.exe -- fmt "$scn_tmp/1.lbs" > "$scn_tmp/2.lbs"
cmp "$scn_tmp/1.lbs" "$scn_tmp/2.lbs" || {
  echo "lb_scn fmt is not idempotent" >&2
  exit 1
}

echo "== scenario smoke: ill-typed files exit 2 with a source position =="
printf 'let main = scenario {\n  graph cycle(8)\n  init point(8)\n  balancer rotor-router\n  steps 5\n  net { staleness 2 }\n}\n' \
  > "$scn_tmp/bad.lbs"
if dune exec bin/lb_scn.exe -- check "$scn_tmp/bad.lbs" 2> "$scn_tmp/bad.err"; then
  echo "lb_scn check accepted an ill-typed scenario" >&2
  exit 1
fi
grep -q 'bad.lbs:6:3: staleness without a net layer' "$scn_tmp/bad.err" || {
  echo "lb_scn check error is missing its line:col position" >&2
  cat "$scn_tmp/bad.err" >&2
  exit 1
}

echo "== scenario golden: compiled E15/E16/E17 are byte-identical to lb_experiments =="
for e in e15 e16 e17; do
  dune exec bin/lb_scn.exe -- run --quick "examples/scenarios/$e.lbs" \
    > "$scn_tmp/scn.out"
  dune exec bin/lb_experiments.exe -- --quick "$e" > "$scn_tmp/exp.out"
  cmp "$scn_tmp/scn.out" "$scn_tmp/exp.out" || {
    echo "lb_scn run examples/scenarios/$e.lbs diverged from lb_experiments $e" >&2
    exit 1
  }
done

echo "== scenario fuzz: 200 seeded scenarios preserve the machine-wide invariants =="
dune exec bin/lb_scn.exe -- fuzz --seed 7 --count 200 > /dev/null

echo "== scenario fuzz: the shrinker reduces an injected bug to a minimal .lbs =="
if dune exec bin/lb_scn.exe -- fuzz --seed 3 --count 50 --fail-on net \
  --out "$scn_tmp/finding.lbs" > "$scn_tmp/fuzz.log" 2>&1; then
  echo "lb_scn fuzz did not fail under --fail-on net" >&2
  cat "$scn_tmp/fuzz.log" >&2
  exit 1
fi
grep -q 'minimal reproducer' "$scn_tmp/fuzz.log" || {
  echo "lb_scn fuzz failed without printing a minimal reproducer" >&2
  cat "$scn_tmp/fuzz.log" >&2
  exit 1
}
grep -q 'net {' "$scn_tmp/finding.lbs" || {
  echo "the minimal .lbs lost the layer the failure predicate needs" >&2
  cat "$scn_tmp/finding.lbs" >&2
  exit 1
}
# The finding must itself be a checkable, runnable scenario.
dune exec bin/lb_scn.exe -- check "$scn_tmp/finding.lbs" > /dev/null
dune exec bin/lb_scn.exe -- run "$scn_tmp/finding.lbs" > /dev/null
rm -rf "$scn_tmp"

echo "== bench smoke: every BENCH_*.json artifact is well-formed JSON =="
bench_json=$(mktemp -d -t lb_ci_bench.XXXXXX)
# dist runs in its own process: it forks, which OCaml 5 forbids once
# the shard section has spawned domains in the same process.
(cd "$bench_json" && "$OLDPWD/_build/default/bench/main.exe" \
  --quick dist > /dev/null)
(cd "$bench_json" && "$OLDPWD/_build/default/bench/main.exe" \
  --quick shard faults net obs > /dev/null)
dune exec bin/jsonlint.exe -- \
  "$bench_json/BENCH_shard.json" "$bench_json/BENCH_faults.json" \
  "$bench_json/BENCH_net.json" "$bench_json/BENCH_obs.json" \
  "$bench_json/BENCH_dist.json"
rm -rf "$bench_json"

echo "== ci.sh: all green =="
