(* jsonlint: validate that each file argument is well-formed JSON.

   A minimal strict RFC 8259 parser — no dependencies — so CI can check
   that the BENCH_*.json artifacts the bench harness hand-writes with
   printf actually parse.  With --jsonl each non-empty line must be its
   own JSON document (the lb_sim --metrics-out timeline format); an
   empty file is valid JSONL.  Exit 0 if every file parses, 1 otherwise,
   2 on usage errors. *)

exception Bad of int * string  (* position, message *)

let parse (s : string) =
  let len = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (!pos, m))) fmt in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let next () =
    if !pos >= len then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let expect c =
    let g = next () in
    if g <> c then fail "expected %C, got %C" c g
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        true
      | _ -> false
    do
      ()
    done
  in
  let literal word =
    String.iter expect word
  in
  let rec string_body () =
    match next () with
    | '"' -> ()
    | '\\' ->
      (match next () with
      | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
      | 'u' ->
        for _ = 1 to 4 do
          match next () with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
          | c -> fail "bad unicode escape digit %C" c
        done
      | c -> fail "bad escape \\%C" c);
      string_body ()
    | c when Char.code c < 0x20 -> fail "unescaped control character 0x%02x" (Char.code c)
    | _ -> string_body ()
  in
  let digits () =
    let n0 = !pos in
    while (match peek () with Some '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = n0 then fail "expected a digit"
  in
  let number () =
    if peek () = Some '-' then incr pos;
    (match next () with
    | '0' -> ()
    | '1' .. '9' ->
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    | c -> fail "bad number start %C" c);
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match next () with
    | '{' ->
      skip_ws ();
      if peek () = Some '}' then incr pos
      else begin
        let rec members () =
          skip_ws ();
          expect '"';
          string_body ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match next () with
          | ',' -> members ()
          | '}' -> ()
          | c -> fail "expected ',' or '}' in object, got %C" c
        in
        members ()
      end
    | '[' ->
      skip_ws ();
      if peek () = Some ']' then incr pos
      else begin
        let rec elements () =
          value ();
          skip_ws ();
          match next () with
          | ',' -> elements ()
          | ']' -> ()
          | c -> fail "expected ',' or ']' in array, got %C" c
        in
        elements ()
      end
    | '"' -> string_body ()
    | 't' ->
      pos := !pos - 1;
      literal "true"
    | 'f' ->
      pos := !pos - 1;
      literal "false"
    | 'n' ->
      pos := !pos - 1;
      literal "null"
    | ('-' | '0' .. '9') ->
      pos := !pos - 1;
      number ()
    | c -> fail "unexpected %C" c
  in
  value ();
  skip_ws ();
  if !pos <> len then fail "trailing garbage"

let line_col s pos =
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < pos then
        if c = '\n' then begin
          incr line;
          col := 1
        end
        else incr col)
    s;
  (!line, !col)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check path =
  match read_file path with
  | exception Sys_error m ->
    Printf.eprintf "jsonlint: %s\n" m;
    false
  | contents -> (
    match parse contents with
    | () -> true
    | exception Bad (pos, msg) ->
      let line, col = line_col contents pos in
      Printf.eprintf "jsonlint: %s:%d:%d: %s\n" path line col msg;
      false)

(* One JSON document per non-empty line; blank lines (and hence the
   empty file) are fine. *)
let check_jsonl path =
  match read_file path with
  | exception Sys_error m ->
    Printf.eprintf "jsonlint: %s\n" m;
    false
  | contents ->
    let ok = ref true in
    List.iteri
      (fun i line ->
        if String.trim line <> "" then
          match parse line with
          | () -> ()
          | exception Bad (pos, msg) ->
            Printf.eprintf "jsonlint: %s:%d:%d: %s\n" path (i + 1) (pos + 1) msg;
            ok := false)
      (String.split_on_char '\n' contents);
    !ok

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jsonl = List.mem "--jsonl" args in
  match List.filter (fun a -> a <> "--jsonl") args with
  | [] ->
    prerr_endline "usage: jsonlint [--jsonl] FILE...";
    exit 2
  | paths ->
    exit (if List.for_all (if jsonl then check_jsonl else check) paths then 0 else 1)
