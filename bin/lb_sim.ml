(* lb_sim: run one load-balancing simulation from the command line.

   Examples:
     lb_sim --graph cycle:64 --algo rotor-router --init point:512
     lb_sim --graph torus:16x16 --algo send-round --self-loops 12 \
            --horizon continuous:2 --target 8 --audit
     lb_sim --graph random:256,6,42 --algo mimic --steps 500 --series
     lb_sim --graph torus:64x64 --algo rotor-router --steps 2000 \
            --shards 4 --partition bfs \
            --checkpoint run.ckpt --checkpoint-every 500
     lb_sim ... --checkpoint run.ckpt --resume   # continue a killed run
     lb_sim --graph cycle:1024 --algo rotor-router --init random:65536 \
            --steps 4000 --crash-nodes 0.1@500 --recovery-eps 64
     lb_sim --graph torus:16x16 --algo send-floor --steps 2000 \
            --fault-plan "crash:0.05@200:keep:spill; outage:0.1@600+50; shock:500@1200" \
            --fault-seed 7 --require-recovery
*)

exception Spec_error of string

let spec_fail fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let positive what v =
  if v <= 0 then spec_fail "%s must be positive (got %d)" what v;
  v

let non_negative what v =
  if v < 0 then spec_fail "%s must be non-negative (got %d)" what v;
  v

(* Spec parsing lives in Harness.Experiment so lb_cluster and lb_node
   accept the same grammar; these wrappers only adapt the error shape. *)
let parse_graph s =
  match Harness.Experiment.graph_of_string s with
  | Ok spec -> spec
  | Error m -> raise (Spec_error m)

let parse_init s =
  match Harness.Experiment.init_of_string s with
  | Ok spec -> spec
  | Error m -> raise (Spec_error m)

let parse_algo ~self_loops ~seed s =
  match Harness.Experiment.algo_of_string ?self_loops ~seed s with
  | Ok f -> Ok (fun d -> f ~degree:d)
  | Error m -> Error m

let parse_horizon steps horizon =
  match (steps, horizon) with
  | Some s, None ->
    if s < 1 then Error (Printf.sprintf "--steps must be >= 1 (got %d)" s)
    else Ok (Harness.Experiment.Fixed_steps s)
  | None, None -> Ok (Harness.Experiment.Continuous_multiple 1.0)
  | None, Some h -> (
    match String.split_on_char ':' h with
    | [ "mixing"; c ] -> (
      match float_of_string_opt c with
      | Some c when c > 0.0 -> Ok (Harness.Experiment.Mixing_multiple c)
      | Some _ -> Error "mixing multiple must be positive"
      | None -> Error "bad mixing multiple")
    | [ "continuous"; c ] -> (
      match float_of_string_opt c with
      | Some c when c > 0.0 -> Ok (Harness.Experiment.Continuous_multiple c)
      | Some _ -> Error "continuous multiple must be positive"
      | None -> Error "bad continuous multiple")
    | _ -> Error "bad horizon (expected mixing:C or continuous:C)")
  | Some _, Some _ -> Error "--steps and --horizon are mutually exclusive"

let parse_partition = function
  | "contiguous" -> Ok Shard.Partition.Contiguous
  | "round-robin" -> Ok Shard.Partition.Round_robin
  | "bfs" -> Ok Shard.Partition.Bfs_blocks
  | other ->
    Error
      (Printf.sprintf "unknown partition strategy %S (expected contiguous, \
                       round-robin or bfs)"
         other)

(* --arrivals uniform | bursty[:PERIOD,AMP] | point:N | hotspot, scaled
   by --arrival-rate.  Fixed-placement processes round the rate to a
   whole batch; uniform/bursty keep it as a Poisson mean. *)
let parse_arrivals ~rng ~rate s =
  let fail () =
    spec_fail
      "bad arrivals spec %S (expected uniform, bursty[:PERIOD,AMP], point:N or \
       hotspot)"
      s
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  let float_of x =
    match float_of_string_opt x with Some v -> v | None -> fail ()
  in
  let batch = int_of_float (Float.round rate) in
  match String.split_on_char ':' s with
  | [ "uniform" ] -> Workload.Arrival.poisson ~rng ~rate
  | [ "bursty" ] ->
    Workload.Arrival.diurnal ~period:100 ~amplitude:0.5
      (Workload.Arrival.poisson ~rng ~rate)
  | [ "bursty"; args ] -> (
    match String.split_on_char ',' args with
    | [ p; a ] ->
      Workload.Arrival.diurnal ~period:(positive "bursty period" (int_of p))
        ~amplitude:(float_of a)
        (Workload.Arrival.poisson ~rng ~rate)
    | _ -> fail ())
  | [ "point"; node ] ->
    Workload.Arrival.point ~node:(non_negative "arrival node" (int_of node))
      ~per_round:batch
  | [ "hotspot" ] -> Workload.Arrival.hotspot ~per_round:batch
  | _ -> fail ()

(* --burst SIZE@ROUND[+WIDTH][:node=N] *)
let parse_burst s =
  let fail () = spec_fail "bad burst spec %S (expected SIZE@ROUND[+WIDTH][:node=N])" s in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  let head, node =
    match String.split_on_char ':' s with
    | [ h ] -> (h, 0)
    | [ h; nodespec ] -> (
      match String.split_on_char '=' nodespec with
      | [ "node"; v ] -> (h, non_negative "burst node" (int_of v))
      | _ -> fail ())
    | _ -> fail ()
  in
  match String.split_on_char '@' head with
  | [ size; where ] ->
    let size = non_negative "burst size" (int_of size) in
    let at, width =
      match String.split_on_char '+' where with
      | [ at ] -> (positive "burst round" (int_of at), 1)
      | [ at; w ] ->
        (positive "burst round" (int_of at), positive "burst width" (int_of w))
      | _ -> fail ()
    in
    Workload.Arrival.flash_crowd ~width ~at ~size ~node ()
  | _ -> fail ()

(* --lifetime immortal | service:R | geometric:M | fixed:L | work:B *)
let parse_lifetime ~rng s =
  let fail () =
    spec_fail
      "bad lifetime spec %S (expected immortal, service:RATE, geometric:MEAN, \
       fixed:ROUNDS or work:BATCH)"
      s
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  let float_of x =
    match float_of_string_opt x with Some v -> v | None -> fail ()
  in
  match String.split_on_char ':' s with
  | [ "immortal" ] -> Workload.Lifetime.immortal
  | [ "service"; r ] -> Workload.Lifetime.service ~rate:(int_of r)
  | [ "geometric"; m ] -> Workload.Lifetime.geometric ~rng ~mean:(float_of m)
  | [ "fixed"; l ] -> Workload.Lifetime.fixed ~rng ~rounds:(int_of l)
  | [ "work"; b ] -> Workload.Lifetime.uniform_attempts ~rng ~per_round:(int_of b)
  | _ -> fail ()

let die msg =
  prerr_endline ("lb_sim: " ^ msg);
  exit 2

(* Exit 4 (documented in EXIT STATUS): an invariant the run was supposed
   to maintain — token conservation, non-negative NL loads, state range,
   network drain — failed.  Distinct from 2 (bad specs) and 3
   (--require-recovery), so scripts can tell "you asked wrong" from
   "the simulation broke its own guarantees". *)
let die_invariant msg =
  prerr_endline ("lb_sim: invariant violation: " ^ msg);
  exit 4

(* --dump-loads: final load vector, one integer per line — the format
   lb_cluster also writes, so `cmp` gives the bit-for-bit equivalence
   check between the simulator and the distributed runtime. *)
let dump_loads_to path loads =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Array.iter (fun x -> Printf.fprintf oc "%d\n" x) loads)
  with
  | () -> ()
  | exception Sys_error msg -> die (Printf.sprintf "--dump-loads: %s" msg)

let print_summary ~graph_label ~algo_label ~n ~degree ~self_loops ~gap
    ~initial_discrepancy ~horizon ~target ~time_to_target
    (result : Core.Engine.result) =
  Printf.printf "graph:        %s (n=%d, d=%d)\n" graph_label n degree;
  Printf.printf "algorithm:    %s (d°=%d, d⁺=%d)\n" algo_label self_loops
    (degree + self_loops);
  Printf.printf "spectral gap: µ = %.6g\n" gap;
  Printf.printf "initial K:    %d\n" initial_discrepancy;
  Printf.printf "steps run:    %d (horizon %d)\n" result.Core.Engine.steps_run horizon;
  Printf.printf "final disc:   %d\n"
    (Core.Loads.discrepancy result.Core.Engine.final_loads);
  (match target with
  | Some t ->
    Printf.printf "time to ≤%d:  %s\n" t
      (match time_to_target with Some tt -> string_of_int tt | None -> "not reached")
  | None -> ());
  if result.Core.Engine.min_load_seen < 0 then
    Printf.printf "NEGATIVE LOAD observed (min %d)\n" result.Core.Engine.min_load_seen;
  match result.Core.Engine.fairness with
  | Some rep -> Format.printf "fairness audit:@\n%a@." Core.Fairness.pp_report rep
  | None -> ()

let run_sharded ~audit ~target ~series ~dump_loads ~shards ~strategy ~checkpoint_path
    ~checkpoint_every ~resume ~graph_spec ~algo_spec ~init_spec ~horizon_spec () =
  let g = Harness.Experiment.build_graph graph_spec in
  let n = Graphs.Graph.n g in
  let init = Harness.Experiment.build_init init_spec ~n in
  let make_balancer () = Harness.Experiment.build_balancer algo_spec g ~init in
  let probe = make_balancer () in
  let self_loops = probe.Core.Balancer.self_loops in
  let steps =
    Harness.Experiment.horizon_steps ~graph:g ~self_loops ~init horizon_spec
  in
  let part = Shard.Partition.make ~strategy ~shards g in
  let pstats = Shard.Partition.stats part g in
  Printf.printf "shards:       %d (%s partition, %d cut edges, imbalance %.3f)\n"
    shards
    (Shard.Partition.strategy_name strategy)
    pstats.Shard.Partition.cut_edges pstats.Shard.Partition.max_imbalance;
  let checkpoint =
    match checkpoint_path with
    | Some path ->
      Printf.printf "checkpoint:   %s (every %d steps)\n" path checkpoint_every;
      Some { Shard.Shard_engine.path; every = checkpoint_every }
    | None -> None
  in
  let resume_snap =
    if not resume then None
    else
      match checkpoint_path with
      | None -> die "--resume requires --checkpoint PATH"
      | Some path ->
        (* Recover survives a corrupted primary: the checksum rejects it
           and the rotated .prev copy is used instead. *)
        let r = Shard.Checkpoint.recover ~path () in
        List.iter
          (fun (_, err) ->
            Printf.printf "rejected:     %s\n" (Shard.Checkpoint.error_message err))
          r.Shard.Checkpoint.rejected;
        Printf.printf "resuming:     %s%s\n"
          (Shard.Checkpoint.describe r.Shard.Checkpoint.snapshot)
          (match r.Shard.Checkpoint.source with
          | Shard.Checkpoint.Primary -> ""
          | Shard.Checkpoint.Rotated ->
            Printf.sprintf " (from rotated copy %s)" (Shard.Checkpoint.prev_path path));
        Some r.Shard.Checkpoint.snapshot
  in
  let first_hit = ref None in
  let hook =
    match target with
    | Some tgt ->
      Some
        (fun t loads ->
          if !first_hit = None && Core.Loads.discrepancy loads <= tgt then
            first_hit := Some t)
    | None -> None
  in
  let t0 = Unix.gettimeofday () in
  let result =
    Shard.Shard_engine.run ~audit
      ~sample_every:(max 1 (steps / 64))
      ?hook ~strategy ?checkpoint ?resume:resume_snap ~shards ~graph:g
      ~make_balancer ~init ~steps ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let time_to_target =
    match target with
    | None -> None
    | Some tgt -> if Core.Loads.discrepancy init <= tgt then Some 0 else !first_hit
  in
  print_summary ~graph_label:(Harness.Experiment.graph_name graph_spec)
    ~algo_label:probe.Core.Balancer.name ~n ~degree:(Graphs.Graph.degree g)
    ~self_loops
    ~gap:(Harness.Experiment.spectral_gap ~graph:g ~self_loops)
    ~initial_discrepancy:(Core.Loads.discrepancy init)
    ~horizon:steps ~target ~time_to_target result;
  let steps_executed =
    result.Core.Engine.steps_run
    - (match resume_snap with Some s -> s.Shard.Checkpoint.step | None -> 0)
  in
  if elapsed > 0.0 && steps_executed > 0 then
    Printf.printf "throughput:   %.0f steps/sec (%.2fs wall)\n"
      (float_of_int steps_executed /. elapsed)
      elapsed;
  (match dump_loads with
  | Some p -> dump_loads_to p result.Core.Engine.final_loads
  | None -> ());
  if series then begin
    print_endline "step,discrepancy";
    Array.iter (fun (t, d) -> Printf.printf "%d,%d\n" t d) result.Core.Engine.series
  end

let run_faulted ~series ~dump_loads ~shards ~strategy ~fault_specs ~fault_seed ~recovery_eps
    ~require_recovery ~graph_spec ~algo_spec ~init_spec ~horizon_spec () =
  let g = Harness.Experiment.build_graph graph_spec in
  let n = Graphs.Graph.n g in
  let init = Harness.Experiment.build_init init_spec ~n in
  let make_balancer () = Harness.Experiment.build_balancer algo_spec g ~init in
  let probe = make_balancer () in
  let self_loops = probe.Core.Balancer.self_loops in
  let steps =
    Harness.Experiment.horizon_steps ~graph:g ~self_loops ~init horizon_spec
  in
  let plan = Faults.Schedule.realize ~seed:fault_seed ~graph:g fault_specs in
  Printf.printf "fault plan:   %d events, seed %d (%s)\n" (List.length plan)
    fault_seed
    (String.concat "; " (List.map Faults.Schedule.spec_to_string fault_specs));
  let mode =
    match shards with
    | None -> Faults.Engine.Sequential
    | Some shards ->
      Printf.printf "shards:       %d (%s partition)\n" shards
        (Shard.Partition.strategy_name strategy);
      Faults.Engine.Sharded { shards; strategy }
  in
  let report =
    Faults.Engine.run ~mode ?eps:recovery_eps
      ~sample_every:(max 1 (steps / 64))
      ~graph:g ~make_balancer ~plan ~init ~steps ()
  in
  print_summary ~graph_label:(Harness.Experiment.graph_name graph_spec)
    ~algo_label:probe.Core.Balancer.name ~n ~degree:(Graphs.Graph.degree g)
    ~self_loops
    ~gap:(Harness.Experiment.spectral_gap ~graph:g ~self_loops)
    ~initial_discrepancy:(Core.Loads.discrepancy init)
    ~horizon:steps ~target:None ~time_to_target:None report.Faults.Engine.result;
  List.iter print_endline (Faults.Engine.report_lines report);
  if series then begin
    print_endline "step,discrepancy";
    Array.iter
      (fun (t, d) -> Printf.printf "%d,%d\n" t d)
      report.Faults.Engine.result.Core.Engine.series
  end;
  (match dump_loads with
  | Some p -> dump_loads_to p report.Faults.Engine.result.Core.Engine.final_loads
  | None -> ());
  if require_recovery && not (Faults.Engine.all_recovered report) then begin
    prerr_endline "lb_sim: --require-recovery: some fault episodes did not recover";
    exit 3
  end

let run_net ~series ~dump_loads ~net_cfg ~fault_specs ~fault_seed ~graph_spec ~algo_spec
    ~init_spec ~horizon_spec () =
  let g = Harness.Experiment.build_graph graph_spec in
  let n = Graphs.Graph.n g in
  let init = Harness.Experiment.build_init init_spec ~n in
  let balancer = Harness.Experiment.build_balancer algo_spec g ~init in
  let self_loops = balancer.Core.Balancer.self_loops in
  let steps =
    Harness.Experiment.horizon_steps ~graph:g ~self_loops ~init horizon_spec
  in
  if fault_specs <> [] then
    Printf.printf "fault plan:   %d specs, seed %d (%s)\n"
      (List.length fault_specs) fault_seed
      (String.concat "; " (List.map Faults.Schedule.spec_to_string fault_specs));
  let plan = Faults.Schedule.realize ~seed:fault_seed ~graph:g fault_specs in
  Printf.printf "network:      %s; %s; staleness σ=%d; net seed %d\n"
    (Net.Channel.config_to_string net_cfg.Net.Async_engine.channel)
    (Net.Protocol.config_to_string net_cfg.Net.Async_engine.protocol)
    net_cfg.Net.Async_engine.staleness net_cfg.Net.Async_engine.seed;
  let report =
    Net.Async_engine.run ~config:net_cfg ~plan ~graph:g ~balancer ~init ~steps ()
  in
  print_summary ~graph_label:(Harness.Experiment.graph_name graph_spec)
    ~algo_label:balancer.Core.Balancer.name ~n ~degree:(Graphs.Graph.degree g)
    ~self_loops
    ~gap:(Harness.Experiment.spectral_gap ~graph:g ~self_loops)
    ~initial_discrepancy:(Core.Loads.discrepancy init)
    ~horizon:steps ~target:None ~time_to_target:None report.Net.Async_engine.result;
  List.iter print_endline (Net.Async_engine.report_lines report);
  if series then begin
    print_endline "step,discrepancy";
    Array.iter
      (fun (t, d) -> Printf.printf "%d,%d\n" t d)
      report.Net.Async_engine.result.Core.Engine.series
  end;
  (match dump_loads with
  | Some p -> dump_loads_to p report.Net.Async_engine.result.Core.Engine.final_loads
  | None -> ());
  if not report.Net.Async_engine.drained then
    die_invariant
      (Printf.sprintf "network failed to quiesce within %d drain rounds"
         net_cfg.Net.Async_engine.max_drain_rounds);
  if not (Net.Async_engine.conserved report) then
    die_invariant
      (Printf.sprintf "net ledger unbalanced: total %d, expected %d"
         report.Net.Async_engine.final_total
         (report.Net.Async_engine.initial_total + report.Net.Async_engine.injected
        - report.Net.Async_engine.lost))

let run_workload ~series ~dump_loads ~net_cfg ~fault_specs ~fault_seed ~arrivals
    ~arrival_rate ~burst ~hotspot ~lifetime ~warmup ~workload_seed ~rounds
    ~graph_spec ~algo_spec ~init_spec () =
  let g = Harness.Experiment.build_graph graph_spec in
  let n = Graphs.Graph.n g in
  let init = Harness.Experiment.build_init init_spec ~n in
  let balancer = Harness.Experiment.build_balancer algo_spec g ~init in
  let self_loops = balancer.Core.Balancer.self_loops in
  (* One master stream; arrival and lifetime draws come from split
     children, so adding a --lifetime never perturbs the arrival trace. *)
  let master = Prng.Splitmix.create workload_seed in
  let arrival_rng = Prng.Splitmix.split master in
  let lifetime_rng = Prng.Splitmix.split master in
  let rate = Option.value ~default:8.0 arrival_rate in
  let parts =
    List.concat
      [
        (match arrivals with
        | Some s -> [ parse_arrivals ~rng:arrival_rng ~rate s ]
        | None -> []);
        (match hotspot with
        | Some b -> [ Workload.Arrival.hotspot ~per_round:(non_negative "--hotspot" b) ]
        | None -> []);
        (match burst with Some s -> [ parse_burst s ] | None -> []);
      ]
  in
  let arrival =
    match parts with
    | [] -> spec_fail "open-system mode needs at least one arrival source"
    | p :: rest -> List.fold_left Workload.Arrival.overlay p rest
  in
  let lifetime =
    match lifetime with
    | Some s -> parse_lifetime ~rng:lifetime_rng s
    | None -> Workload.Lifetime.immortal
  in
  let plan = Faults.Schedule.realize ~seed:fault_seed ~graph:g fault_specs in
  if fault_specs <> [] then
    Printf.printf "fault plan:   %d events, seed %d (%s)\n" (List.length plan)
      fault_seed
      (String.concat "; " (List.map Faults.Schedule.spec_to_string fault_specs));
  let mode =
    match net_cfg with
    | Some config ->
      Printf.printf "network:      %s; %s; staleness σ=%d; net seed %d\n"
        (Net.Channel.config_to_string config.Net.Async_engine.channel)
        (Net.Protocol.config_to_string config.Net.Async_engine.protocol)
        config.Net.Async_engine.staleness config.Net.Async_engine.seed;
      Harness.Openrun.Lossy { config; plan }
    | None ->
      if fault_specs <> [] then Harness.Openrun.Faulty { plan }
      else Harness.Openrun.Plain
  in
  let config =
    Workload.Engine.config
      ?warmup:(Option.map (fun k -> Workload.Engine.Fixed_warmup k) warmup)
      ~arrival ~lifetime ~rounds ()
  in
  let r = Harness.Openrun.run ~mode ~config ~graph:g ~balancer ~init () in
  let band = Harness.Faultsweep.theorem_band ~graph:g ~self_loops in
  Printf.printf "graph:        %s (n=%d, d=%d)\n"
    (Harness.Experiment.graph_name graph_spec) n (Graphs.Graph.degree g);
  Printf.printf "algorithm:    %s (d°=%d, d⁺=%d)\n" balancer.Core.Balancer.name
    self_loops
    (Graphs.Graph.degree g + self_loops);
  Printf.printf "workload:     arrivals %s; lifetime %s; seed %d\n"
    (Workload.Arrival.name arrival)
    (Workload.Lifetime.name lifetime)
    workload_seed;
  Printf.printf "rounds run:   %d (warm-up %d)\n" r.Workload.Engine.rounds_run
    r.Workload.Engine.warmup_end;
  let sd = r.Workload.Engine.steady_discrepancy in
  Printf.printf "steady disc:  mean %.1f, p95 %.1f, p99 %.1f (Thm 2.3 band %d)\n"
    sd.Workload.Steady.mean sd.Workload.Steady.p95 sd.Workload.Steady.p99 band;
  Printf.printf "backlog:      mean %.1f tokens in flight; overload p99 %.2f×mean\n"
    r.Workload.Engine.steady_inflight.Workload.Steady.mean
    r.Workload.Engine.steady_overload.Workload.Steady.p99;
  Printf.printf "throughput:   %.1f tokens/round (arrivals %d, departures %d)\n"
    r.Workload.Engine.throughput r.Workload.Engine.total_arrivals
    r.Workload.Engine.total_departures;
  if r.Workload.Engine.fault_injected <> 0 || r.Workload.Engine.fault_lost <> 0 then
    Printf.printf "fault ledger: injected %d, lost %d\n"
      r.Workload.Engine.fault_injected r.Workload.Engine.fault_lost;
  Printf.printf "verdict:      %s, ledger %s\n"
    (if r.Workload.Engine.diverged then "DIVERGED (backlog grows without settling)"
     else "stable")
    (if r.Workload.Engine.conserved then "conserved" else "UNBALANCED");
  if series then begin
    print_endline "round,discrepancy,inflight";
    Array.iteri
      (fun i (round, d) ->
        Printf.printf "%d,%d,%d\n" round d (snd r.Workload.Engine.inflight_series.(i)))
      r.Workload.Engine.discrepancy_series
  end;
  (match dump_loads with
  | Some p -> dump_loads_to p r.Workload.Engine.final_loads
  | None -> ());
  if not r.Workload.Engine.conserved then
    die_invariant
      (Printf.sprintf
         "workload ledger unbalanced: final %d, expected init %d + arrivals %d + \
          injected %d − departures %d − lost %d"
         (Array.fold_left ( + ) 0 r.Workload.Engine.final_loads)
         (Array.fold_left ( + ) 0 init)
         r.Workload.Engine.total_arrivals r.Workload.Engine.fault_injected
         r.Workload.Engine.total_departures r.Workload.Engine.fault_lost)

(* Observability: enable probes/profiling before the run; the export
   itself is registered with at_exit. *)
let setup_obs ~metrics ~metrics_out ~metrics_every ~profile =
  let metrics_on = metrics || metrics_out <> None in
  if metrics_every < 1 then die "--metrics-every must be >= 1";
  let jsonl = ref None in
  if metrics_on then begin
    Obs.Probe.enable ~every:metrics_every ();
    match metrics_out with
    | None -> ()
    | Some path ->
      let oc =
        try open_out (path ^ ".jsonl")
        with Sys_error msg -> die (Printf.sprintf "--metrics-out: %s" msg)
      in
      jsonl := Some oc;
      Obs.Probe.set_sink
        (Some
           (fun snap ->
             output_string oc (Obs.Export.snapshot_json snap);
             output_char oc '\n';
             flush oc));
      (* kill -USR1 <pid> scrapes a live run into the same file. *)
      ignore (Obs.Export.install_sigusr1 ~path ())
  end;
  if profile then Obs.Prof.set_enabled true;
  (* at_exit so the export also happens on the non-zero exits (3:
     unrecovered, 4: invariant violation) — the metrics of a failed run
     are exactly the ones worth reading. *)
  if metrics_on || profile then
    at_exit (fun () ->
        (match !jsonl with Some oc -> close_out oc | None -> ());
        if metrics_on then begin
          match metrics_out with
          | Some path ->
            (try Obs.Export.write ~path ()
             with Sys_error msg ->
               Printf.eprintf "error: metrics export failed: %s\n" msg);
            Printf.printf "metrics:      %s (timeline: %s.jsonl, %d snapshots%s)\n"
              path path
              (Array.length (Obs.Probe.timeline ()))
              (let d = Obs.Probe.timeline_dropped () in
               if d = 0 then "" else Printf.sprintf ", %d dropped" d)
          | None ->
            print_endline "--- metrics (Prometheus text exposition) ---";
            print_string (Obs.Export.prometheus ())
        end;
        if profile then begin
          print_endline "--- profile (wall-clock + GC per engine phase) ---";
          List.iter print_endline (Obs.Prof.report_lines ())
        end)

let run graph algo self_loops init steps horizon target audit series seed shards
    domains partition checkpoint_path checkpoint_every resume fault_plan
    crash_nodes edge_outage fault_seed recovery_eps require_recovery drop delay
    dup reorder staleness retx_timeout retx_backoff net_seed no_degrade arrivals
    arrival_rate burst hotspot lifetime warmup workload_seed metrics metrics_out
    metrics_every profile dump_loads =
  match
    try Ok (parse_graph graph, parse_init init) with Spec_error m -> Error m
  with
  | Error msg -> die msg
  | Ok (graph_spec, init_spec) ->
  match parse_algo ~self_loops ~seed algo with
  | Error msg -> die msg
  | Ok algo_of_degree -> (
    match parse_horizon steps horizon with
    | Error msg -> die msg
    | Ok horizon_spec ->
    match parse_partition partition with
    | Error msg -> die msg
    | Ok strategy ->
      (match self_loops with
      | Some k when k < 0 -> die "--self-loops must be non-negative"
      | _ -> ());
      (match shards with
      | Some k when k < 1 -> die "--shards must be >= 1"
      | _ -> ());
      (match domains with
      | Some k when k < 1 -> die "--domains must be >= 1"
      | _ -> ());
      if checkpoint_every < 1 then die "--checkpoint-every must be >= 1";
      (* One domain per shard: --shards picks the partition, --domains
         alone is shorthand for the same count. *)
      let shard_count =
        match (shards, domains) with
        | Some k, _ -> k
        | None, Some d -> d
        | None, None -> 1
      in
      let fault_specs =
        let parse_or_die label s =
          match Faults.Schedule.parse s with
          | Ok specs -> specs
          | Error m -> die (label ^ ": " ^ m)
        in
        List.concat
          [
            (match fault_plan with
            | Some s -> parse_or_die "--fault-plan" s
            | None -> []);
            (match crash_nodes with
            | Some s -> parse_or_die "--crash-nodes" ("crash:" ^ s)
            | None -> []);
            (match edge_outage with
            | Some s -> parse_or_die "--edge-outage" ("outage:" ^ s)
            | None -> []);
          ]
      in
      let faulted = fault_specs <> [] in
      let netted =
        drop <> None || delay <> None || dup <> None || reorder <> None
        || staleness <> None || retx_timeout <> None || retx_backoff <> None
        || net_seed <> None || no_degrade
      in
      if netted
         && (shards <> None || domains <> None || checkpoint_path <> None || resume)
      then
        die "the unreliable-network engine is single-domain (no --shards, \
             --domains, --checkpoint or --resume)";
      if netted && audit then die "--audit is not available on an unreliable network";
      if netted && target <> None then
        die "--target is not available on an unreliable network";
      if netted && (recovery_eps <> None || require_recovery) then
        die "--recovery-eps/--require-recovery measure fault episodes, which \
             the network engine does not track";
      let net_cfg =
        if not netted then None
        else begin
          let backoff =
            match retx_backoff with
            | None -> Net.Protocol.default_config.Net.Protocol.backoff
            | Some s -> (
              match Net.Protocol.backoff_of_string s with
              | Ok b -> b
              | Error m -> die ("--retx-backoff: " ^ m))
          in
          let channel =
            {
              Net.Channel.drop = Option.value ~default:0.0 drop;
              dup = Option.value ~default:0.0 dup;
              reorder = Option.value ~default:0.0 reorder;
              delay = Option.value ~default:0 delay;
            }
          in
          (match Net.Channel.validate_config channel with
          | Ok () -> ()
          | Error m -> die m);
          let protocol =
            {
              Net.Protocol.default_config with
              Net.Protocol.timeout =
                Option.value
                  ~default:Net.Protocol.default_config.Net.Protocol.timeout
                  retx_timeout;
              backoff;
            }
          in
          (match Net.Protocol.validate_config protocol with
          | Ok () -> ()
          | Error m -> die m);
          (match staleness with
          | Some s when s < 0 -> die "--staleness must be non-negative"
          | _ -> ());
          Some
            {
              Net.Async_engine.channel;
              protocol;
              staleness = Option.value ~default:0 staleness;
              degrade = not no_degrade;
              seed = Option.value ~default:1 net_seed;
              max_drain_rounds = 100_000;
            }
        end
      in
      let workloaded = arrivals <> None || burst <> None || hotspot <> None in
      if (not workloaded)
         && (arrival_rate <> None || lifetime <> None || warmup <> None
           || workload_seed <> None)
      then
        die "--arrival-rate/--lifetime/--warmup/--workload-seed need an \
             open-system workload (--arrivals, --burst or --hotspot)";
      if workloaded then begin
        if horizon <> None then
          die "--horizon is not available in open-system mode (--steps sets \
               the round count, default 1000)";
        if audit then die "--audit is not available in open-system mode";
        if target <> None then
          die "--target is not available in open-system mode (read the steady \
               band instead)";
        if shards <> None || domains <> None || checkpoint_path <> None || resume
        then
          die "the open-system engine is single-domain (no --shards, --domains, \
               --checkpoint or --resume)";
        if recovery_eps <> None || require_recovery then
          die "--recovery-eps/--require-recovery measure closed-system fault \
               episodes; open-system faults surface in the conservation ledger";
        match warmup with
        | Some w when w < 0 -> die "--warmup must be non-negative"
        | _ -> ()
      end;
      if faulted && (checkpoint_path <> None || resume) then
        die "fault injection and checkpointing cannot be combined (fault state \
             is not checkpointed)";
      if faulted && audit then
        die "--audit is not available under fault injection";
      if faulted && target <> None then
        die "--target is not available under fault injection (use --recovery-eps)";
      (match recovery_eps with
      | Some e when e < 0 -> die "--recovery-eps must be non-negative"
      | _ -> ());
      if (not faulted)
         && (recovery_eps <> None || require_recovery || crash_nodes <> None
           || edge_outage <> None)
      then
        die "--recovery-eps/--require-recovery need a fault plan \
             (--fault-plan, --crash-nodes or --edge-outage)";
      let sharded =
        shard_count > 1 || checkpoint_path <> None || resume
        || shards <> None || domains <> None
      in
      setup_obs ~metrics ~metrics_out ~metrics_every ~profile;
      try
        let g = Harness.Experiment.build_graph graph_spec in
        let degree = Graphs.Graph.degree g in
        let algo_spec = algo_of_degree degree in
        if workloaded then
          run_workload ~series ~dump_loads ~net_cfg ~fault_specs ~fault_seed ~arrivals
            ~arrival_rate ~burst ~hotspot ~lifetime ~warmup
            ~workload_seed:(Option.value ~default:1 workload_seed)
            ~rounds:(Option.value ~default:1000 steps)
            ~graph_spec ~algo_spec ~init_spec ()
        else
        match net_cfg with
        | Some net_cfg ->
          run_net ~series ~dump_loads ~net_cfg ~fault_specs ~fault_seed ~graph_spec
            ~algo_spec ~init_spec ~horizon_spec ()
        | None ->
        if faulted then
          run_faulted ~series ~dump_loads
            ~shards:(if sharded then Some shard_count else None)
            ~strategy ~fault_specs ~fault_seed ~recovery_eps ~require_recovery
            ~graph_spec ~algo_spec ~init_spec ~horizon_spec ()
        else if sharded then
          run_sharded ~audit ~target ~series ~dump_loads ~shards:shard_count ~strategy
            ~checkpoint_path ~checkpoint_every ~resume ~graph_spec ~algo_spec
            ~init_spec ~horizon_spec ()
        else begin
          let outcome =
            Harness.Experiment.run ~audit ?target ~graph:graph_spec ~algo:algo_spec
              ~init:init_spec ~horizon:horizon_spec ()
          in
          Printf.printf "graph:        %s (n=%d, d=%d)\n"
            outcome.Harness.Experiment.graph_label outcome.Harness.Experiment.n
            outcome.Harness.Experiment.degree;
          Printf.printf "algorithm:    %s (d°=%d, d⁺=%d)\n"
            outcome.Harness.Experiment.algo_label
            outcome.Harness.Experiment.self_loops
            (outcome.Harness.Experiment.degree + outcome.Harness.Experiment.self_loops);
          Printf.printf "spectral gap: µ = %.6g\n" outcome.Harness.Experiment.gap;
          Printf.printf "initial K:    %d\n"
            outcome.Harness.Experiment.initial_discrepancy;
          Printf.printf "steps run:    %d (horizon %d)\n"
            outcome.Harness.Experiment.steps outcome.Harness.Experiment.horizon;
          Printf.printf "final disc:   %d\n"
            outcome.Harness.Experiment.final_discrepancy;
          (match target with
          | Some t ->
            Printf.printf "time to ≤%d:  %s\n" t
              (match outcome.Harness.Experiment.time_to_target with
              | Some tt -> string_of_int tt
              | None -> "not reached")
          | None -> ());
          if outcome.Harness.Experiment.min_load_seen < 0 then
            Printf.printf "NEGATIVE LOAD observed (min %d)\n"
              outcome.Harness.Experiment.min_load_seen;
          (match outcome.Harness.Experiment.fairness with
          | Some rep ->
            Format.printf "fairness audit:@\n%a@." Core.Fairness.pp_report rep
          | None -> ());
          if series || dump_loads <> None then begin
            (* Deterministic re-run with the same spec: a fine-grained
               series for plotting, and the final vector for
               --dump-loads (identical to the summarized run). *)
            let n = Graphs.Graph.n g in
            let init_loads = Harness.Experiment.build_init init_spec ~n in
            let balancer =
              Harness.Experiment.build_balancer algo_spec g ~init:init_loads
            in
            let r =
              Core.Engine.run
                ~sample_every:(max 1 (outcome.Harness.Experiment.horizon / 50))
                ~graph:g ~balancer ~init:init_loads
                ~steps:outcome.Harness.Experiment.horizon ()
            in
            (match dump_loads with
            | Some p -> dump_loads_to p r.Core.Engine.final_loads
            | None -> ());
            if series then begin
              print_endline "step,discrepancy";
              Array.iter (fun (t, d) -> Printf.printf "%d,%d\n" t d) r.Core.Engine.series
            end
          end
        end
      with
      | Spec_error msg | Invalid_argument msg -> die msg
      | Shard.Checkpoint.Checkpoint_error err ->
        die ("checkpoint: " ^ Shard.Checkpoint.error_message err)
      | Faults.Watchdog.Invariant_violation d ->
        die_invariant (Faults.Watchdog.to_string d))

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"SPEC"
        ~doc:"Graph: cycle:N, torus:AxA, hypercube:R, complete:N, clique:N,D, random:N,D[,SEED].")

let algo_arg =
  Arg.(
    value
    & opt string "rotor-router"
    & info [ "algo"; "a" ] ~docv:"NAME"
        ~doc:
          "Algorithm: rotor-router, rotor-router-star, send-floor, send-round, mimic, \
           random-extra, random-rounding.")

let self_loops_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "self-loops" ] ~docv:"K"
        ~doc:"Self-loops d° per node (default: algorithm-specific, usually d).")

let init_arg =
  Arg.(
    value
    & opt string "point:1024"
    & info [ "init"; "i" ] ~docv:"SPEC"
        ~doc:"Initial loads: point:TOTAL, bimodal:HIGH,LOW, random:TOTAL[,SEED].")

let steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "steps"; "s" ] ~docv:"N" ~doc:"Run exactly N steps.")

let horizon_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "horizon" ] ~docv:"SPEC"
        ~doc:
          "Horizon: mixing:C (C·ln(nK)/µ steps) or continuous:C (C× the continuous \
           balancing time; default continuous:1).")

let target_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "target" ] ~docv:"D" ~doc:"Also report the first step with discrepancy ≤ D.")

let audit_arg =
  Arg.(value & flag & info [ "audit" ] ~doc:"Run the Definition 2.1/3.1 fairness audit.")

let series_arg =
  Arg.(value & flag & info [ "series" ] ~doc:"Print a step,discrepancy CSV series.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Seed for randomized algorithms.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the graph into K shards and run the domain-parallel engine \
           (one OCaml domain per shard). Bit-identical to the sequential engine \
           for deterministic algorithms.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"K"
        ~doc:"Shorthand for --shards K (the engine runs one domain per shard).")

let partition_arg =
  Arg.(
    value
    & opt string "contiguous"
    & info [ "partition" ] ~docv:"STRATEGY"
        ~doc:"Shard partition strategy: contiguous, round-robin or bfs.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"PATH"
        ~doc:"Write crash-resumable checkpoints to PATH (atomically overwritten).")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 1000
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:"Checkpoint after every K-th step (default 1000).")

let resume_arg =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the checkpoint at --checkpoint PATH instead of starting \
           from the initial loads.")

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Semicolon-separated fault specs: crash:FRAC\\@STEP[:wipe|keep][:lose|spill], \
           outage:RATE\\@STEP+DURATION, shock:AMOUNT\\@STEP[:node=N]. Realized \
           into concrete node/edge events with --fault-seed; same seed and plan \
           replay the identical faulted run.")

let crash_nodes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash-nodes" ] ~docv:"FRAC@STEP"
        ~doc:"Shorthand for --fault-plan crash:FRAC\\@STEP (wipe state, lose tokens).")

let edge_outage_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "edge-outage" ] ~docv:"RATE@STEP+DUR"
        ~doc:"Shorthand for --fault-plan outage:RATE\\@STEP+DUR.")

let fault_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "fault-seed" ] ~docv:"S"
        ~doc:"Seed used to realize the fault plan into concrete events (default 1).")

let recovery_eps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "recovery-eps" ] ~docv:"E"
        ~doc:
          "A fault episode counts as recovered once the discrepancy returns \
           within E of its pre-fault value (default: the graph degree d).")

let require_recovery_arg =
  Arg.(
    value
    & flag
    & info [ "require-recovery" ]
        ~doc:"Exit with status 3 if any fault episode fails to recover.")

let drop_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "drop" ] ~docv:"P"
        ~doc:
          "Run on an unreliable network: drop each transmission with \
           probability P in [0, 1). Tokens ride an exactly-once retry \
           protocol, so conservation still holds end-to-end.")

let delay_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "delay" ] ~docv:"D"
        ~doc:"Delay each packet by a uniform 0..D extra rounds.")

let dup_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "dup" ] ~docv:"P"
        ~doc:"Duplicate each transmission with probability P (the receiver \
              discards the extra copy).")

let reorder_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Hold each packet back one round with probability P, letting \
              later traffic overtake it.")

let staleness_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "staleness" ] ~docv:"S"
        ~doc:
          "Bounded-staleness window σ: a node whose oldest undelivered \
           message is more than σ rounds old balances on its last-known \
           load instead of fresh information (default 0).")

let retx_timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retx-timeout" ] ~docv:"T"
        ~doc:"Rounds before an unacknowledged message is retransmitted \
              (default 4).")

let retx_backoff_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "retx-backoff" ] ~docv:"POLICY"
        ~doc:"Retransmission backoff: fixed or exp[onential] (default exp, \
              capped at 64 rounds).")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Strict staleness: a node past its $(b,--staleness) window skips \
           the round entirely instead of balancing its last-known load. \
           Incompatible with balancers that require consecutive steps \
           (mimic).")

let net_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "net-seed" ] ~docv:"S"
        ~doc:
          "Seed for the channel's fault randomness; the same seed and flags \
           replay the identical lossy run bit for bit (default 1).")

let arrivals_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "arrivals" ] ~docv:"SPEC"
        ~doc:
          "Run an open system with streaming arrivals: $(b,uniform) \
           (Poisson-distributed batch at uniform nodes), \
           $(b,bursty[:PERIOD,AMP]) (diurnal rate modulation, default \
           100,0.5), $(b,point:N) (whole batch on node N) or $(b,hotspot) \
           (batch on the currently max-loaded node). Scaled by \
           $(b,--arrival-rate); each round also applies $(b,--lifetime) \
           departures and one balancing step.")

let arrival_rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "arrival-rate" ] ~docv:"R"
        ~doc:
          "Mean tokens arriving per round (default 8). Poisson mean for \
           uniform/bursty arrivals, rounded to a whole batch for \
           point/hotspot.")

let burst_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "burst" ] ~docv:"SIZE@ROUND[+WIDTH][:node=N]"
        ~doc:
          "Overlay a flash crowd: SIZE extra tokens land on node N (default \
           0) in rounds ROUND..ROUND+WIDTH-1 (default width 1). Implies \
           open-system mode.")

let hotspot_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "hotspot" ] ~docv:"B"
        ~doc:
          "Overlay an adversarial source: B extra tokens per round on the \
           currently max-loaded node. Implies open-system mode.")

let lifetime_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lifetime" ] ~docv:"SPEC"
        ~doc:
          "Token lifetimes: $(b,immortal) (default, tokens never leave), \
           $(b,service:RATE) (each node completes up to RATE tokens/round), \
           $(b,geometric:MEAN) (memoryless, mean MEAN rounds), \
           $(b,fixed:ROUNDS) (depart exactly ROUNDS rounds after arrival) or \
           $(b,work:BATCH) (BATCH uniform completion attempts per round).")

let warmup_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup" ] ~docv:"N"
        ~doc:
          "Discard the first N rounds before computing steady-state \
           statistics (default: automatic MSER warm-up detection).")

let workload_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workload-seed" ] ~docv:"S"
        ~doc:
          "Seed for arrival and lifetime randomness (default 1); identical \
           seeds replay the identical open-system trace bit for bit.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect per-round metrics (discrepancy, load extrema, potentials \
           $(b,φ)/$(b,φ'), tokens moved, network and fault counters) and print \
           them in Prometheus text format after the run. Probes observe only: \
           the simulation itself is bit-identical with or without this flag.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the Prometheus exposition to $(docv) (atomically) instead of \
           stdout, plus a JSONL snapshot timeline to $(docv).jsonl. Implies \
           $(b,--metrics). Sending SIGUSR1 scrapes a live run into $(docv).")

let metrics_every_arg =
  Arg.(
    value
    & opt int 1
    & info [ "metrics-every" ] ~docv:"N"
        ~doc:
          "Take a full snapshot (potentials, timeline entry, JSONL line) only \
           every $(docv)-th round; cheap counters still update every round \
           (default 1).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time each engine phase (assign, scan, merge, checkpoint, drain) and \
           report wall-clock and GC allocation per phase after the run.")

let dump_loads_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-loads" ] ~docv:"FILE"
        ~doc:
          "Write the final load vector to $(docv), one integer per line \
           (node order). lb_cluster emits the same format, so `cmp` checks \
           simulator/cluster equivalence bit for bit.")

let exits =
  Cmd.Exit.info 0 ~doc:"on success."
  :: Cmd.Exit.info 2
       ~doc:"on an invalid graph/algorithm/init/fault/network specification."
  :: Cmd.Exit.info 3
       ~doc:"when $(b,--require-recovery) is set and a fault episode never \
             recovers."
  :: Cmd.Exit.info 4
       ~doc:
         "when a run violates its own invariants: the watchdog trips \
          (conservation, negative load, state range) or the unreliable \
          network fails to drain."
  :: Cmd.Exit.defaults

let cmd =
  let doc = "simulate deterministic load-balancing schemes (Berenbrink et al., PODC 2015)" in
  Cmd.v
    (Cmd.info "lb_sim" ~version:"1.0.0" ~doc ~exits)
    Term.(
      const run $ graph_arg $ algo_arg $ self_loops_arg $ init_arg $ steps_arg
      $ horizon_arg $ target_arg $ audit_arg $ series_arg $ seed_arg $ shards_arg
      $ domains_arg $ partition_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ fault_plan_arg $ crash_nodes_arg $ edge_outage_arg
      $ fault_seed_arg $ recovery_eps_arg $ require_recovery_arg $ drop_arg
      $ delay_arg $ dup_arg $ reorder_arg $ staleness_arg $ retx_timeout_arg
      $ retx_backoff_arg $ net_seed_arg $ no_degrade_arg $ arrivals_arg
      $ arrival_rate_arg $ burst_arg $ hotspot_arg $ lifetime_arg $ warmup_arg
      $ workload_seed_arg $ metrics_arg $ metrics_out_arg $ metrics_every_arg
      $ profile_arg $ dump_loads_arg)

let () = exit (Cmd.eval cmd)
