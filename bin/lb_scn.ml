(* lb_scn: the scenario-language front end (DESIGN.md §15).

   Subcommands:
     check FILE...    parse + type-check, "file:line:col: message" on stderr
     fmt FILE...      canonical pretty-print to stdout
     compile FILE     show the lowering plan (engine, seeds, cluster cmd)
     run FILE         execute each planned item in-process; [experiment
                      ENN] items print exactly what lb_experiments does,
                      so goldens can cmp the two byte for byte
     fuzz             seeded sweep over generated scenarios checking the
                      machine-wide invariants (conservation, drain,
                      replay determinism), with a shrinking minimizer
                      that writes a minimal replayable .lbs finding

   Exit codes: 0 ok; 1 fuzz finding (minimal reproducer printed);
   2 configuration/check error; 3 runtime error. *)

let version = "%%VERSION%%"

let die_code code msg =
  Printf.eprintf "lb_scn: %s\n%!" msg;
  (* lint: allow T4 — callers pass only bin/exit_contract codes
     (2 configuration, 3 runtime) *)
  exit code

let die msg = die_code 2 msg

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m -> die m

(* Plan-level errors with no source anchor (e.g. an unknown --name)
   carry {!Scenario.Ast.no_pos}; printing "0:0" for those would point at
   nothing, so the location is dropped. *)
let positioned path pos msg =
  if pos = Scenario.Ast.no_pos then Printf.sprintf "%s: %s" path msg
  else Printf.sprintf "%s:%d:%d: %s" path pos.Scenario.Ast.line pos.Scenario.Ast.col msg

let parse_file path =
  match Scenario.Parser.parse (read_file path) with
  | Ok file -> file
  | Error (msg, pos) -> die_code 2 (positioned path pos msg)

let plan_file ?root path =
  let file = parse_file path in
  match Scenario.Compile.plan ?root file with
  | Ok items -> items
  | Error (msg, pos) -> die_code 2 (positioned path pos msg)

(* ---- check ---- *)

let check_cmd_run paths =
  if paths = [] then die "check needs at least one FILE";
  List.iter
    (fun path ->
      let items = plan_file path in
      Printf.printf "%s: ok (%d item%s)\n" path (List.length items)
        (if List.length items = 1 then "" else "s"))
    paths;
  0

(* ---- fmt ---- *)

let fmt_cmd_run paths =
  if paths = [] then die "fmt needs at least one FILE";
  List.iter (fun path -> print_string (Scenario.Pretty.file (parse_file path))) paths;
  0

(* ---- compile ---- *)

let compile_cmd_run root path =
  let items = plan_file ?root path in
  List.iter
    (fun it -> List.iter print_endline (Scenario.Compile.describe it))
    items;
  0

(* ---- run ---- *)

let print_outcome label (o : Scenario.Compile.outcome) =
  Printf.printf
    "%s: %s rounds=%d disc=%d total=%d->%d injected=%d removed=%d conserved=%s \
     drained=%s\n"
    label o.kind o.rounds o.discrepancy o.initial_total o.final_total o.injected
    o.removed
    (if o.conserved then "yes" else "NO")
    (if o.drained then "yes" else "NO")

let run_cmd_run root quick path =
  let items = plan_file ?root path in
  List.iter
    (fun (it : Scenario.Compile.item) ->
      match it.payload with
      | Scenario.Compile.Exper id -> (
        (* The experiment prints its own report; adding nothing here
           keeps the output cmp-identical to lb_experiments. *)
        match Harness.Suite.run_by_id ~quick id with
        | Ok _rows -> ()
        | Error msg -> die_code 3 msg)
      | Scenario.Compile.Run t -> (
        match t.Scenario.Check.run with
        | Scenario.Check.Cluster _ ->
          die
            (Printf.sprintf
               "%s: dist scenarios are compile-only in-process; run the printed \
                command instead:\n  %s"
               it.label
               (Option.value ~default:"" (Scenario.Compile.cluster_command t)))
        | Scenario.Check.Closed _ | Scenario.Check.Open _ -> (
          match Scenario.Compile.execute t with
          | Ok o -> print_outcome it.label o
          | Error msg -> die_code 3 (it.label ^ ": " ^ msg))))
    items;
  0

(* ---- fuzz ---- *)

let same_outcome (a : Scenario.Compile.outcome) (b : Scenario.Compile.outcome) =
  a.kind = b.kind && a.rounds = b.rounds && a.final_loads = b.final_loads
  && a.discrepancy = b.discrepancy
  && a.initial_total = b.initial_total
  && a.final_total = b.final_total
  && a.injected = b.injected && a.removed = b.removed

(* What broke, or None.  Evaluated twice per scenario: the second
   execution must be bit-identical to the first (same AST, fresh
   engines), which is the replay-determinism invariant. *)
let violation sc =
  match Scenario.Check.scenario ~at:Scenario.Ast.no_pos sc with
  | Error (msg, _) -> Some ("ill-typed: " ^ msg)
  | Ok t -> (
    match (Scenario.Compile.execute t, Scenario.Compile.execute t) with
    | Error msg, _ | _, Error msg -> Some ("execution error: " ^ msg)
    | Ok o1, Ok o2 ->
      if not (same_outcome o1 o2) then Some "replay diverged (nondeterminism)"
      else if not o1.conserved then
        Some
          (Printf.sprintf "tokens not conserved (%d -> %d, injected %d, removed %d)"
             o1.initial_total o1.final_total o1.injected o1.removed)
      else if not o1.drained then Some "lossy transport failed to drain"
      else None)

let well_typed sc =
  match Scenario.Check.scenario ~at:Scenario.Ast.no_pos sc with
  | Ok _ -> true
  | Error _ -> false

(* Synthetic failure predicates for the CI shrinker demo: treat the
   presence of a whole layer as "the bug", so the minimizer must strip
   everything else while keeping that layer. *)
let fail_on_pred = function
  | "net" -> Some (fun sc -> List.exists (fun c -> Scenario.Ast.clause_kind c.Scenario.Ast.c = "net") sc)
  | "faults" ->
    Some (fun sc -> List.exists (fun c -> Scenario.Ast.clause_kind c.Scenario.Ast.c = "faults") sc)
  | "open" ->
    Some (fun sc -> List.exists (fun c -> Scenario.Ast.clause_kind c.Scenario.Ast.c = "rounds") sc)
  | _ -> None

let clause_count sc = List.length sc

let fuzz_cmd_run seed count from fail_on out =
  if count < 1 then die "--count must be >= 1";
  if from < 0 then die "--from must be >= 0";
  let synthetic =
    match fail_on with
    | None -> None
    | Some k -> (
      match fail_on_pred k with
      | Some p -> Some (k, p)
      | None -> die (Printf.sprintf "bad --fail-on %S (expected net, faults or open)" k))
  in
  let finding = ref None in
  let i = ref from in
  let ran = ref 0 in
  while !finding = None && !i < from + count do
    let sc = Scenario.Gen.scenario ~seed ~index:!i in
    (match synthetic with
    | Some (_, p) -> if well_typed sc && p sc then finding := Some (sc, "synthetic failure (--fail-on)")
    | None -> (
      match violation sc with
      | Some why -> finding := Some (sc, why)
      | None -> ()));
    incr ran;
    if !finding = None && !ran mod 200 = 0 then
      Printf.printf "fuzz: %d/%d ok\n%!" !ran count;
    incr i
  done;
  match !finding with
  | None ->
    (match synthetic with
    | Some (k, _) ->
      Printf.printf
        "fuzz: no scenario matched --fail-on %s in %d scenario(s) (seed %d)\n" k count
        seed
    | None ->
      Printf.printf
        "fuzz: %d/%d scenario(s) ok (seed %d, indices %d..%d): conservation, drain, \
         replay determinism\n"
        count count seed from
        (from + count - 1));
    0
  | Some (sc, why) ->
    let index = !i - 1 in
    Printf.printf "scenario %d FAILED: %s\n%!" index why;
    Printf.printf "shrinking...\n%!";
    let fails =
      match synthetic with
      | Some (_, p) -> fun c -> well_typed c && p c
      | None -> fun c -> violation c <> None
    in
    let minimal = Scenario.Gen.minimize ~fails sc in
    let text = Scenario.Pretty.file (Scenario.Gen.to_file minimal) in
    (match Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc text) with
    | () -> ()
    | exception Sys_error m -> die m);
    Printf.printf "minimal reproducer (%d clause(s), down from %d) written to %s:\n%s"
      (clause_count minimal) (clause_count sc) out text;
    Printf.printf "replay:\n  lb_scn run %s\n  lb_scn fuzz --seed %d --count 1 --from %d%s\n"
      out seed index
      (match fail_on with Some k -> " --fail-on " ^ k | None -> "");
    1

(* ---- cmdliner plumbing ---- *)

open Cmdliner

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Scenario (.lbs) files.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario (.lbs) file.")

let name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"BINDING"
        ~doc:"Binding to compile (default: $(b,main), else the last one).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sizes for [experiment] items.")

let check_cmd =
  let doc = "parse and type-check scenario files" in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd_run $ files_arg)

let fmt_cmd =
  let doc = "pretty-print scenario files in canonical form" in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const fmt_cmd_run $ files_arg)

let compile_cmd =
  let doc = "show how a scenario file lowers onto the engines" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const compile_cmd_run $ name_arg $ file_arg)

let run_cmd =
  let doc = "execute a scenario file in-process" in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_cmd_run $ name_arg $ quick_arg $ file_arg)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Generator stream seed.")

let count_arg =
  Arg.(value & opt int 1000 & info [ "count" ] ~docv:"N" ~doc:"Scenarios to run.")

let from_arg =
  Arg.(value & opt int 0 & info [ "from" ] ~docv:"I" ~doc:"First scenario index.")

let fail_on_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fail-on" ] ~docv:"KIND"
        ~doc:
          "Treat any scenario carrying the given layer ($(b,net), $(b,faults) or \
           $(b,open)) as failing; used to demonstrate the shrinker on a known \
           \"bug\".")

let out_arg =
  Arg.(
    value
    & opt string "scn-finding.lbs"
    & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the minimal reproducer.")

let fuzz_cmd =
  let doc = "fuzz generated scenarios against the machine-wide invariants" in
  let exits =
    [ Cmd.Exit.info 0 ~doc:"every scenario preserved the invariants";
      Cmd.Exit.info 1 ~doc:"a scenario failed; minimal reproducer written";
      Cmd.Exit.info 2 ~doc:"configuration error" ]
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~exits)
    Term.(const fuzz_cmd_run $ seed_arg $ count_arg $ from_arg $ fail_on_arg $ out_arg)

let main_cmd =
  let doc = "check, format, compile, run and fuzz load-balancing scenarios" in
  Cmd.group (Cmd.info "lb_scn" ~version ~doc) [ check_cmd; fmt_cmd; compile_cmd; run_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main_cmd)
