type scope = Lib | Bin | Other

let path_components path =
  String.map (fun c -> if c = '\\' then '/' else c) path
  |> String.split_on_char '/'
  |> List.filter (fun c -> c <> "" && c <> ".")

let scope_of_path path =
  let comps = path_components path in
  let base = match List.rev comps with b :: _ -> b | [] -> "" in
  let is_test =
    List.mem "test" comps
    || String.length base >= 5
       && String.sub base 0 5 = "test_"
  in
  if is_test then Other
  else if List.mem "lib" comps then Lib
  else if List.mem "bin" comps then Bin
  else Other

(* --- identifier tables --- *)

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let dotted parts = String.concat "." parts

(* R1: sources of nondeterminism. *)
let r1_msg parts =
  let p = dotted parts in
  match parts with
  | "Random" :: _ ->
    Some
      (Printf.sprintf
         "%s: ambient PRNG is nondeterministic across runs; draw from a \
          seeded Prng.Splitmix state instead"
         p)
  | [ "Hashtbl"; ("hash" | "hash_param" | "seeded_hash" | "seeded_hash_param") ]
    ->
    Some
      (Printf.sprintf
         "%s: structural hashing is runtime-version dependent; derive a \
          fingerprint explicitly (e.g. Shard.Crc32)"
         p)
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
    Some
      (Printf.sprintf
         "%s: wall-clock read in engine code breaks replayability; clocks \
          belong to obs/prof, obs/probe and shard/checkpoint"
         p)
  | [ "Hashtbl"; (("iter" | "fold") as f) ] ->
    Some
      (Printf.sprintf
         "Hashtbl.%s: iteration order is unspecified; sort the keys first \
          or annotate the site if the fold is order-insensitive"
         f)
  | _ -> None

(* R3: partial functions. *)
let r3_msg parts =
  match parts with
  | [ "List"; (("hd" | "tl" | "nth") as f) ] ->
    Some
      (Printf.sprintf
         "List.%s raises on short lists; use a total match with an \
          invalid_arg message, or annotate (* lint: total *)"
         f)
  | [ "Option"; "get" ] ->
    Some
      "Option.get raises Invalid_argument with no context; match and \
       invalid_arg with a message, or annotate (* lint: total *)"
  | _ -> None

(* R5: stdout writers. *)
let r5_msg parts =
  match parts with
  | [ name ]
    when String.length name >= 6 && String.sub name 0 6 = "print_" ->
    Some
      (Printf.sprintf
         "%s writes to stdout from library code; return the text (or take \
          an out_channel) and let bin/ print"
         name)
  | [ "Printf"; "printf" ] | [ "Format"; "printf" ] | [ "Format"; "print_string" ]
    ->
    Some
      (Printf.sprintf
         "%s writes to stdout from library code; use ksprintf/asprintf and \
          let bin/ print"
         (dotted parts))
  | _ -> None

let comparison_ops =
  [ "="; "<"; ">"; "<="; ">="; "<>"; "=="; "!=" ]

(* R2: the polymorphic comparator.  [head] is true when the identifier is
   the function being applied (so infix [a = b] stays legal while
   [List.mem ~eq:(=)] and [List.sort compare] are flagged). *)
let r2_msg ~head parts =
  match parts with
  | [ "compare" ] ->
    Some
      "polymorphic compare is order-fragile on floats (nan, -0.) and \
       boxes; use Float.compare / Int.compare / String.compare or an \
       explicit comparator"
  | [ op ] when (not head) && List.mem op comparison_ops ->
    Some
      (Printf.sprintf
         "polymorphic (%s) passed as a function argument; pass the \
          monomorphic equivalent (Float.equal, Int.equal, ...) instead"
         op)
  | _ -> None

(* --- the walker --- *)

let check_structure ~file ~scope structure =
  let findings = ref [] in
  let add loc rule msg =
    let pos = loc.Location.loc_start in
    findings :=
      Finding.make ~file ~line:pos.Lexing.pos_lnum
        ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
        ~rule ~msg ()
      :: !findings
  in
  let in_lib = match scope with Lib -> true | Bin | Other -> false in
  let active = match scope with Lib | Bin -> true | Other -> false in
  let check_ident ~head loc lid =
    let parts = strip_stdlib (Longident.flatten lid) in
    (match r2_msg ~head parts with
    | Some msg -> add loc Finding.R2 msg
    | None -> ());
    if in_lib then begin
      (match r1_msg parts with
      | Some msg -> add loc Finding.R1 msg
      | None -> ());
      (match r3_msg parts with
      | Some msg -> add loc Finding.R3 msg
      | None -> ());
      match r5_msg parts with
      | Some msg -> add loc Finding.R5 msg
      | None -> ()
    end
  in
  let super = Ast_iterator.default_iterator in
  let expr this (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      check_ident ~head:true loc txt;
      List.iter (fun (_, arg) -> this.Ast_iterator.expr this arg) args
    | Pexp_ident { txt; loc } -> check_ident ~head:false loc txt
    | _ -> super.expr this e
  in
  let iterator = { super with expr } in
  if active then iterator.structure iterator structure;
  List.sort Finding.compare !findings
