type unit_info = {
  modname : string;
  source : string;
  structure : Typedtree.structure;
}

type load_result = {
  units : unit_info list;
  load_errors : (string * string) list;
}

(* "Dist__Coord" -> "Dist.Coord"; "Dune__exe__Lb_sim" -> "Lb_sim". *)
let canonical_modname name =
  let parts =
    String.split_on_char '_' name
    |> List.fold_left
         (fun (acc, pending_sep) part ->
           (* split_on_char over "__" yields an empty part between the
              two underscores; use it as the component separator. *)
           if part = "" then (acc, true)
           else if pending_sep then (part :: acc, false)
           else
             match acc with
             | [] -> ([ part ], false)
             | hd :: tl -> ((hd ^ "_" ^ part) :: tl, false))
         ([], false)
    |> fst |> List.rev
  in
  let parts = match parts with "Dune" :: "exe" :: rest -> rest | p -> p in
  String.concat "." parts

let canonical_sym ~modname name =
  let name =
    (* Collapse flat wrapped-module references (Dist__Clock.now) onto the
       alias form (Dist.Clock.now) the rest of the tree uses. *)
    if String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z' then
      canonical_modname name
    else name
  in
  if String.contains name '.' then name
  else if String.length name > 0 && name.[0] >= 'A' && name.[0] <= 'Z' then name
  else modname ^ "." ^ name

let strip_stdlib sym =
  let pfx = "Stdlib." in
  let n = String.length pfx in
  if String.length sym > n && String.sub sym 0 n = pfx then
    String.sub sym n (String.length sym - n)
  else sym

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let rec walk_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | names ->
    Array.to_list names
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           let path = Filename.concat dir name in
           if Sys.is_directory path then walk_cmts acc path
           else if has_suffix ~suffix:".cmt" name then path :: acc
           else acc)
         acc

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let under_roots ~roots source =
  let s = normalize source in
  List.exists
    (fun r ->
      let r = normalize r in
      let rs = r ^ "/" in
      s = r
      || (String.length s > String.length rs
         && String.sub s 0 (String.length rs) = rs))
    roots

let load ~build_dir ~roots =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then
    Error
      (Printf.sprintf
         "no build directory %s: run `dune build @check` first so .cmt \
          binary annotations exist"
         build_dir)
  else
    let files =
      List.concat_map
        (fun root ->
          let dir = Filename.concat build_dir root in
          if Sys.file_exists dir && Sys.is_directory dir then walk_cmts [] dir
          else [])
        roots
      |> List.sort String.compare
    in
    let seen = Hashtbl.create 64 in
    let units, load_errors =
      List.fold_left
        (fun (units, errs) path ->
          match Cmt_format.read_cmt path with
          | exception e -> (units, (path, Printexc.to_string e) :: errs)
          | cmt -> (
            match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
            | Cmt_format.Implementation structure, Some source
              when has_suffix ~suffix:".ml" source
                   && under_roots ~roots source
                   && not (Hashtbl.mem seen source) ->
              Hashtbl.add seen source ();
              ( {
                  modname = canonical_modname cmt.Cmt_format.cmt_modname;
                  source = normalize source;
                  structure;
                }
                :: units,
                errs )
            | _ -> (units, errs)))
        ([], []) files
    in
    if units = [] then
      Error
        (Printf.sprintf
           "no .cmt files under %s for roots %s: run `dune build @check` \
            first"
           build_dir
           (String.concat ", " roots))
    else
      Ok
        {
          units =
            List.sort (fun a b -> String.compare a.source b.source) units;
          load_errors = List.rev load_errors;
        }
