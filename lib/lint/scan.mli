(** File discovery, parsing, rule application and suppression. *)

type error = { path : string; message : string }
(** A file that could not be read or parsed (syntax error), or a bad
    configuration. These map to exit code 2 in the driver. *)

type report = { findings : Finding.t list; errors : error list }

val collect_files : string list -> (string list, string) result
(** Expand the given files/directories into a sorted list of [.ml] files.
    Directories are walked recursively; hidden directories and [_build]
    are skipped. Errors on a path that does not exist. *)

val scan_file : allow:Allow.t -> string -> report
(** Lint one [.ml] file: parse, run {!Rules.check_structure}, check the
    matching [.mli] exists (R4, lib scope only), then drop findings
    suppressed by in-source annotations or the allowlist file. *)

val run : allow:Allow.t -> string list -> (report, string) result
(** [collect_files] then [scan_file] over each, merged and sorted.
    [Error] only for path/config problems (exit 2 territory). *)
