(** File discovery, parsing, rule application and suppression
    (the syntactic R1–R5 pass; see {!Typed} for T1–T4). *)

type error = { path : string; message : string }
(** A file that could not be read or parsed (syntax error), or a bad
    configuration. These map to exit code 2 in the driver. *)

type waiver =
  | Entry of int  (** index into {!Allow.entries} of the covering entry *)
  | Annotation of int  (** source line carrying the covering annotation *)
  | Builtin  (** {!Allow.builtin_r1_exempt} — never reported stale *)

type report = {
  findings : Finding.t list;
  errors : error list;
  suppressed : (Finding.t * waiver) list;
      (** findings a waiver removed, with the waiver that did it — the
          stale-waiver check counts these *)
  annotations : (string * Allow.annotations) list;
      (** per-file annotation inventory (path, annotations) *)
}

val collect_files : string list -> (string list, string) result
(** Expand the given files/directories into a sorted list of [.ml] files.
    Directories are walked recursively; hidden directories and [_build]
    are skipped. Errors on a path that does not exist. *)

val apply_waivers :
  allow:Allow.t ->
  anns:Allow.annotations ->
  path:string ->
  Finding.t list ->
  Finding.t list * (Finding.t * waiver) list
(** Partition raw findings into (kept, suppressed-with-waiver). Shared
    by the syntactic and typed passes. *)

val scan_file : allow:Allow.t -> string -> report
(** Lint one [.ml] file: parse, run {!Rules.check_structure}, check the
    matching [.mli] exists (R4, lib scope only), then drop findings
    suppressed by in-source annotations or the allowlist file. *)

val run : allow:Allow.t -> string list -> (report, string) result
(** [collect_files] then [scan_file] over each, merged and sorted.
    [Error] only for path/config problems (exit 2 territory). *)
