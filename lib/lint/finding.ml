type rule = R1 | R2 | R3 | R4 | R5 | T1 | T2 | T3 | T4

type hop = { hop_file : string; hop_line : int; hop_col : int; hop_sym : string }

type t = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  msg : string;
  chain : hop list;
}

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"
  | T4 -> "T4"

let rule_title = function
  | R1 -> "determinism"
  | R2 -> "float-safe ordering"
  | R3 -> "totality"
  | R4 -> "interface hygiene"
  | R5 -> "IO hygiene"
  | T1 -> "determinism taint"
  | T2 -> "domain safety"
  | T3 -> "wire contract"
  | T4 -> "exit-code contract"

let rule_doc = function
  | R1 ->
    "Forbid nondeterminism sources in lib/: Random.*, Hashtbl.hash*, \
     Sys.time, Unix.gettimeofday/Unix.time, and unordered Hashtbl.iter/fold. \
     Allowlisted modules: lib/prng, lib/obs/prof, lib/obs/probe, \
     lib/shard/checkpoint (seeded PRNG and wall-clock profiling live there \
     by design)."
  | R2 ->
    "Forbid the polymorphic comparator: any use of bare compare / \
     Stdlib.compare, and (=) (<) (<=) (>) (>=) (<>) (==) (!=) passed as a \
     function argument. Polymorphic comparison on float-bearing data is \
     order-fragile (nan, -0.) and boxes; use Float.compare / Int.compare / \
     String.compare or an explicit comparator."
  | R3 ->
    "Flag partial functions in lib/: List.hd, List.tl, List.nth, \
     Option.get. Prefer a total rewrite (match with an invalid_arg carrying \
     a message), or annotate a proven-safe site with (* lint: total *)."
  | R4 ->
    "Every lib/**/*.ml must have a matching .mli so the public surface of \
     each module is explicit and the linter's totality claims are about \
     sealed interfaces."
  | R5 ->
    "No stdout printing in lib/ (print_*, Printf.printf, Format.printf); \
     only bin/ talks to the terminal. Report renderers that write stdout by \
     contract are allowlisted in bin/lint_allow."
  | T1 ->
    "Interprocedural determinism taint (typed, over .cmt files). A function \
     is tainted when its call graph reaches a timing/randomness source \
     (Unix.gettimeofday, Unix.time, Sys.time, Random.*, Hashtbl.hash*, \
     Domain.self, or anything defined in lib/dist/clock.ml). A finding fires \
     when a tainted function is defined in — or writes into — a \
     replay-critical sink (the engines, Trace, Shard.Checkpoint, Dist.Wal). \
     lib/prng, lib/obs/prof, lib/obs/probe and lib/shard/checkpoint cut the \
     taint: seeded PRNG and state-neutral profiling are sanctioned there and \
     proven harmless by the probes-on/off bit-identity tests. Findings \
     report the full source -> call chain -> sink path with file:line:col \
     at every hop; waivers lead with the root source symbol \
     (e.g. T1[Dist.Clock.now])."
  | T2 ->
    "Domain safety (typed). Mutable state (ref cells, Bytes, Buffer, \
     Hashtbl, Queue, Stack, Bigarray, records with mutable fields) captured \
     by a closure passed to Domain.spawn must be Atomic.t, guarded by a \
     mutex living in the same record, or created inside the closure \
     (domain-local). Plain arrays are deliberately out of scope: the shard \
     engine's disjoint-index writes are its documented design."
  | T3 ->
    "Wire/versioning contract (typed). Dispatch over the cluster wire type \
     Dist.Msg.t must stay total by construction: a wildcard `_` case \
     defeats the exhaustiveness check that forces every site to be \
     revisited when a constructor is added. The constructor list and field \
     shapes are fingerprinted from the typedtree and compared against \
     bin/wire_contract: changing the type without bumping Msg.version (and \
     re-recording the contract via lb_lint --wire-update) is a finding."
  | T4 ->
    "Exit-code contract (typed). Every `exit n` in bin/ must use a code \
     documented in bin/exit_contract (0 ok, 1 findings, 2 config, \
     3 runtime/recovery, 4 invariant violation) or take its code from a \
     sanctioned returner (Cmdliner evaluation, Dist.Node.main, \
     Dist.Coord.main, Dist.Super.main). Library code must never call exit: \
     it raises, and bin/ decides the process outcome."

let all_rules = [ R1; R2; R3; R4; R5; T1; T2; T3; T4 ]

let rule_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "r1" | "determinism" | "random" -> Some R1
  | "r2" | "float" | "compare" | "ordering" -> Some R2
  | "r3" | "total" | "totality" | "partial" -> Some R3
  | "r4" | "mli" | "interface" -> Some R4
  | "r5" | "io" | "print" -> Some R5
  | "t1" | "taint" -> Some T1
  | "t2" | "domain" | "domain-safety" -> Some T2
  | "t3" | "wire" | "versioning" -> Some T3
  | "t4" | "exit-code" | "exit-codes" -> Some T4
  | _ -> None

let make ?(chain = []) ~file ~line ~col ~rule ~msg () =
  { file; line; col; rule; msg; chain }

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col (rule_id t.rule) t.msg

let chain_to_strings t =
  List.mapi
    (fun i h ->
      Printf.sprintf "    %s %s (%s:%d:%d)"
        (if i = 0 then "at " else "via")
        h.hop_sym h.hop_file h.hop_line h.hop_col)
    t.chain

(* Minimal JSON string escaping: the subset bin/jsonlint accepts. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_jsonl t =
  let hop h =
    Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"sym\":\"%s\"}"
      (json_escape h.hop_file) h.hop_line h.hop_col (json_escape h.hop_sym)
  in
  Printf.sprintf
    "{\"kind\":\"finding\",\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"msg\":\"%s\",\"chain\":[%s]}"
    (rule_id t.rule) (json_escape t.file) t.line t.col (json_escape t.msg)
    (String.concat "," (List.map hop t.chain))

let rule_index = function
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | T1 -> 6
  | T2 -> 7
  | T3 -> 8
  | T4 -> 9

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else Int.compare (rule_index a.rule) (rule_index b.rule)
