type rule = R1 | R2 | R3 | R4 | R5

type t = { file : string; line : int; col : int; rule : rule; msg : string }

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

let rule_title = function
  | R1 -> "determinism"
  | R2 -> "float-safe ordering"
  | R3 -> "totality"
  | R4 -> "interface hygiene"
  | R5 -> "IO hygiene"

let rule_doc = function
  | R1 ->
    "Forbid nondeterminism sources in lib/: Random.*, Hashtbl.hash*, \
     Sys.time, Unix.gettimeofday/Unix.time, and unordered Hashtbl.iter/fold. \
     Allowlisted modules: lib/prng, lib/obs/prof, lib/obs/probe, \
     lib/shard/checkpoint (seeded PRNG and wall-clock profiling live there \
     by design)."
  | R2 ->
    "Forbid the polymorphic comparator: any use of bare compare / \
     Stdlib.compare, and (=) (<) (<=) (>) (>=) (<>) (==) (!=) passed as a \
     function argument. Polymorphic comparison on float-bearing data is \
     order-fragile (nan, -0.) and boxes; use Float.compare / Int.compare / \
     String.compare or an explicit comparator."
  | R3 ->
    "Flag partial functions in lib/: List.hd, List.tl, List.nth, \
     Option.get. Prefer a total rewrite (match with an invalid_arg carrying \
     a message), or annotate a proven-safe site with (* lint: total *)."
  | R4 ->
    "Every lib/**/*.ml must have a matching .mli so the public surface of \
     each module is explicit and the linter's totality claims are about \
     sealed interfaces."
  | R5 ->
    "No stdout printing in lib/ (print_*, Printf.printf, Format.printf); \
     only bin/ talks to the terminal. Report renderers that write stdout by \
     contract are allowlisted in bin/lint_allow."

let all_rules = [ R1; R2; R3; R4; R5 ]

let rule_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "r1" | "determinism" | "random" -> Some R1
  | "r2" | "float" | "compare" | "ordering" -> Some R2
  | "r3" | "total" | "totality" | "partial" -> Some R3
  | "r4" | "mli" | "interface" -> Some R4
  | "r5" | "io" | "print" -> Some R5
  | _ -> None

let make ~file ~line ~col ~rule ~msg = { file; line; col; rule; msg }

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col (rule_id t.rule) t.msg

let rule_index = function R1 -> 1 | R2 -> 2 | R3 -> 3 | R4 -> 4 | R5 -> 5

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else Int.compare (rule_index a.rule) (rule_index b.rule)
