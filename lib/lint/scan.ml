type error = { path : string; message : string }

type waiver = Entry of int | Annotation of int | Builtin

type report = {
  findings : Finding.t list;
  errors : error list;
  suppressed : (Finding.t * waiver) list;
  annotations : (string * Allow.annotations) list;
}

let is_hidden name = String.length name > 0 && name.[0] = '.'

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path
    |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if is_hidden name || name = "_build" then acc
           else walk acc (Filename.concat path name))
         acc
  else if has_suffix ~suffix:".ml" path then path :: acc
  else acc

let collect_files paths =
  let rec go acc = function
    | [] -> Ok (List.sort_uniq String.compare acc)
    | p :: rest ->
      if not (Sys.file_exists p) then
        Error (Printf.sprintf "no such file or directory: %s" p)
      else go (walk acc p) rest
  in
  go [] paths

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let describe_parse_error exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
    Format.asprintf "%a" Location.print_report report
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> String.concat " "
  | Some `Already_displayed | None -> Printexc.to_string exn

(* Split raw findings into kept and suppressed, remembering which waiver
   (allow-file entry, in-source annotation, or built-in exemption)
   covered each suppressed one — the stale-waiver check needs this. *)
let apply_waivers ~allow ~anns ~path findings =
  List.partition_map
    (fun (f : Finding.t) ->
      match Allow.annotation_match anns ~line:f.Finding.line f.Finding.rule with
      | Some ann_line -> Right (f, Annotation ann_line)
      | None -> (
        match
          Allow.file_allows_entry allow ~path ~msg:f.Finding.msg f.Finding.rule
        with
        | Some idx -> Right (f, Entry idx)
        | None ->
          if f.Finding.rule = Finding.R1 && Allow.builtin_r1_exempt path then
            Right (f, Builtin)
          else Left f))
    findings

let scan_file ~allow path =
  match read_file path with
  | exception Sys_error m ->
    {
      findings = [];
      errors = [ { path; message = m } ];
      suppressed = [];
      annotations = [];
    }
  | src -> (
    match parse_implementation ~path src with
    | exception exn ->
      {
        findings = [];
        errors = [ { path; message = describe_parse_error exn } ];
        suppressed = [];
        annotations = [ (path, Allow.annotations_of_source src) ];
      }
    | structure ->
      let scope = Rules.scope_of_path path in
      let ast_findings = Rules.check_structure ~file:path ~scope structure in
      let r4_findings =
        match scope with
        | Rules.Lib ->
          let mli = Filename.remove_extension path ^ ".mli" in
          if Sys.file_exists mli then []
          else
            [
              Finding.make ~file:path ~line:1 ~col:0 ~rule:Finding.R4
                ~msg:
                  (Printf.sprintf
                     "missing interface %s: every lib module must seal its \
                      surface with an .mli"
                     (Filename.basename mli))
                ();
            ]
        | Rules.Bin | Rules.Other -> []
      in
      let anns = Allow.annotations_of_source src in
      let findings, suppressed =
        apply_waivers ~allow ~anns ~path (ast_findings @ r4_findings)
      in
      { findings; errors = []; suppressed; annotations = [ (path, anns) ] })

let run ~allow paths =
  match collect_files paths with
  | Error e -> Error e
  | Ok files ->
    let reports = List.map (scan_file ~allow) files in
    Ok
      {
        findings =
          List.concat_map (fun r -> r.findings) reports
          |> List.sort Finding.compare;
        errors = List.concat_map (fun r -> r.errors) reports;
        suppressed = List.concat_map (fun r -> r.suppressed) reports;
        annotations = List.concat_map (fun r -> r.annotations) reports;
      }
