(** Loader for [.cmt] binary annotation files (the typed AST the compiler
    saves alongside each object file). The typed pass ({!Typed}) runs over
    these instead of re-parsing source, so it sees resolved paths and
    inferred types. *)

type unit_info = {
  modname : string;  (** canonical dotted name, e.g. ["Dist.Coord"] *)
  source : string;  (** build-root-relative source, e.g. ["lib/dist/coord.ml"] *)
  structure : Typedtree.structure;
}

type load_result = {
  units : unit_info list;  (** sorted by [source] *)
  load_errors : (string * string) list;  (** unreadable cmt files *)
}

val canonical_modname : string -> string
(** ["Dist__Coord"] → ["Dist.Coord"]; ["Dune__exe__Lb_sim"] → ["Lb_sim"]. *)

val canonical_sym : modname:string -> string -> string
(** Canonicalize a [Path.name] result: flat wrapped-library references are
    folded onto the dotted alias form, and bare lowercase identifiers
    (module-local lets) are qualified with [modname]. *)

val strip_stdlib : string -> string
(** Drop a leading ["Stdlib."] — done only at comparison time so local
    definitions shadowing stdlib names stay distinguishable. *)

val load :
  build_dir:string -> roots:string list -> (load_result, string) result
(** Walk [build_dir]/<root> for every root, read each [.cmt], and keep
    implementation units whose source file lives under one of [roots].
    [Error] when the build directory or all cmts are missing (the caller
    should suggest [dune build @check]). *)
