(** Cross-module definition/reference tables built from the typed trees
    {!Cmts.load} returns. One [def] per top-level (or nested-module)
    value binding; each def carries the first reference site per distinct
    target symbol. Also holds a type-declaration table (records, variant
    constructor shapes) used by the T2 and T3 rules. *)

type loc = { file : string; line : int; col : int }

val loc_of : file:string -> Location.t -> loc

type def = {
  d_sym : string;  (** canonical, e.g. ["Dist.Coord.wal_note"] *)
  d_file : string;
  d_loc : loc;
  d_refs : (string * loc) list;
      (** first occurrence per distinct referenced symbol, in order *)
}

type field_info = { f_name : string; f_mutable : bool; f_head : string option }

type decl_kind =
  | Record of field_info list
  | Variant of string list  (** canonical constructor shapes, in order *)
  | Alias of string option  (** abbreviation; head of the manifest type *)
  | Opaque

type decl = { t_kind : decl_kind; t_loc : loc }

type t

val build : Cmts.unit_info list -> t
val find_def : t -> string -> def option
val find_decl : t -> string -> decl option
val defs_in_order : t -> def list
val module_of : string -> string
(** ["Dist.Coord.wal_note"] → ["Dist.Coord"]. *)

val shape : modname:string -> int -> Types.type_expr -> string
(** Stable structural rendering of a type expression (depth-limited);
    the T3 wire fingerprint hashes these. *)

val type_head : modname:string -> Types.type_expr -> string option
(** Canonical head constructor of a type, e.g. [Some "ref"],
    [Some "Shard.Pool.state"]. *)
