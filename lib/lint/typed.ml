(* The typed, interprocedural pass: T1 (determinism taint), T2 (domain
   safety), T3 (wire/versioning contract), T4 (exit-code contract), run
   over the .cmt trees plus the syntactic R1-R5 scan, with stale-waiver
   accounting across both. *)

type wire_spec = {
  wire_module : string;
  wire_type : string;
  wire_version : string;
  wire_contract : string;
}

type config = {
  root : string;
  build_dir : string;
  roots : string list;
  allow : Allow.t;
  allow_path : string option;
  prim_sources : string list;
  prim_prefixes : string list;
  source_files : string list;
  cut_files : string list;
  sink_modules : string list;
  spawn_fns : string list;
  mutable_heads : string list;
  safe_heads : string list;
  wire : wire_spec list;
  exit_contract : string option;
}

let default_config ?(root = ".") ?allow_path ~allow () =
  {
    root;
    build_dir = "_build/default";
    roots = [ "lib"; "bin" ];
    allow;
    allow_path;
    prim_sources =
      [
        "Unix.gettimeofday";
        "Unix.time";
        "Sys.time";
        "Hashtbl.hash";
        "Hashtbl.hash_param";
        "Hashtbl.seeded_hash";
        "Hashtbl.seeded_hash_param";
        "Domain.self";
      ];
    prim_prefixes = [ "Random." ];
    source_files = [ "lib/dist/clock.ml" ];
    cut_files =
      [ "lib/prng/"; "lib/obs/prof.ml"; "lib/obs/probe.ml"; "lib/shard/checkpoint.ml" ];
    sink_modules =
      [
        "Core.Engine";
        "Shard.Shard_engine";
        "Faults.Engine";
        "Net.Async_engine";
        "Workload.Engine";
        "Irregular.Iengine";
        "Trace";
        "Shard.Checkpoint";
        "Dist.Wal";
      ];
    spawn_fns = [ "Domain.spawn" ];
    mutable_heads =
      [
        "ref";
        "bytes";
        "Buffer.t";
        "Hashtbl.t";
        "Queue.t";
        "Stack.t";
        "Bigarray.Array1.t";
        "Bigarray.Array2.t";
        "Bigarray.Genarray.t";
      ];
    safe_heads =
      [
        "Atomic.t";
        "Mutex.t";
        "Condition.t";
        "Semaphore.Counting.t";
        "Semaphore.Binary.t";
      ];
    wire =
      [
        {
          wire_module = "Dist.Msg";
          wire_type = "t";
          wire_version = "version";
          wire_contract = "bin/wire_contract";
        };
      ];
    exit_contract = Some "bin/exit_contract";
  }

type stale = { sw_where : string; sw_detail : string }

type report = {
  findings : Finding.t list;
  stale : stale list;
  errors : Scan.error list;
  units : int;
  files : int;
}

(* --- small helpers --- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let relativize ~root path =
  let path = normalize path and root = normalize root in
  let strip pfx p =
    if String.starts_with ~prefix:pfx p then
      String.sub p (String.length pfx) (String.length p - String.length pfx)
    else p
  in
  let p = if root = "." || root = "" then path else strip (root ^ "/") path in
  strip "./" p

let file_matches pats file = List.exists (fun p -> contains ~sub:p file) pats

let hop_of_loc sym (l : Callgraph.loc) =
  {
    Finding.hop_sym = sym;
    hop_file = l.Callgraph.file;
    hop_line = l.Callgraph.line;
    hop_col = l.Callgraph.col;
  }

let finding_at (l : Callgraph.loc) ~rule ~msg ~chain =
  Finding.make ~chain ~file:l.Callgraph.file ~line:l.Callgraph.line
    ~col:l.Callgraph.col ~rule ~msg ()

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let words line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* --- T1: determinism taint --- *)

type taint = { root_sym : string; trail : (string * Callgraph.loc) list }

let is_prim cfg sym =
  let s = Cmts.strip_stdlib sym in
  List.mem s cfg.prim_sources
  || List.exists (fun p -> String.starts_with ~prefix:p s) cfg.prim_prefixes

let sink_of cfg sym =
  List.find_opt
    (fun m -> String.starts_with ~prefix:(m ^ ".") sym)
    cfg.sink_modules

let t1 cfg cg =
  let defs = Callgraph.defs_in_order cg in
  let in_cut f = file_matches cfg.cut_files f in
  let in_source f = file_matches cfg.source_files f in
  let taints : (string, taint) Hashtbl.t = Hashtbl.create 128 in
  let q = Queue.create () in
  let set sym taint =
    if not (Hashtbl.mem taints sym) then begin
      Hashtbl.replace taints sym taint;
      Queue.push sym q
    end
  in
  (* reverse call edges over resolved defs *)
  let rev : (string, (Callgraph.def * Callgraph.loc) list) Hashtbl.t =
    Hashtbl.create 128
  in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (tgt, loc) ->
          if tgt <> d.Callgraph.d_sym && Callgraph.find_def cg tgt <> None then
            Hashtbl.replace rev tgt
              ((d, loc) :: (Option.value ~default:[] (Hashtbl.find_opt rev tgt))))
        d.Callgraph.d_refs)
    defs;
  (* seeds: definitions in source files, and direct primitive references *)
  List.iter
    (fun (d : Callgraph.def) ->
      if in_cut d.Callgraph.d_file then ()
      else if in_source d.Callgraph.d_file then
        set d.Callgraph.d_sym { root_sym = d.Callgraph.d_sym; trail = [] }
      else
        match List.find_opt (fun (t, _) -> is_prim cfg t) d.Callgraph.d_refs with
        | Some (t, loc) ->
          let t = Cmts.strip_stdlib t in
          set d.Callgraph.d_sym { root_sym = t; trail = [ (t, loc) ] }
        | None -> ())
    defs;
  (* BFS over reverse edges: shortest source chains win *)
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    let tb = Hashtbl.find taints b in
    List.iter
      (fun ((caller : Callgraph.def), loc) ->
        if not (in_cut caller.Callgraph.d_file) then
          set caller.Callgraph.d_sym
            { root_sym = tb.root_sym; trail = (b, loc) :: tb.trail })
      (Option.value ~default:[] (Hashtbl.find_opt rev b))
  done;
  (* findings *)
  let hops_of_trail trail = List.map (fun (s, l) -> hop_of_loc s l) trail in
  List.concat_map
    (fun (d : Callgraph.def) ->
      match Hashtbl.find_opt taints d.Callgraph.d_sym with
      | None -> []
      | Some t ->
        if in_source d.Callgraph.d_file || in_cut d.Callgraph.d_file then []
        else
          let dmod = Callgraph.module_of d.Callgraph.d_sym in
          if List.mem dmod cfg.sink_modules then
            [
              finding_at d.Callgraph.d_loc ~rule:Finding.T1
                ~msg:
                  (Printf.sprintf
                     "%s: determinism taint reaches replay-critical module \
                      %s: %s is transitively clock/randomness-dependent"
                     t.root_sym dmod d.Callgraph.d_sym)
                ~chain:
                  (hop_of_loc d.Callgraph.d_sym d.Callgraph.d_loc
                  :: hops_of_trail t.trail);
            ]
          else
            List.filter_map
              (fun (tgt, loc) ->
                match sink_of cfg tgt with
                | None -> None
                | Some smod ->
                  Some
                    (finding_at loc ~rule:Finding.T1
                       ~msg:
                         (Printf.sprintf
                            "%s: timing/randomness taint flows from %s into \
                             sink %s (module %s)"
                            t.root_sym d.Callgraph.d_sym tgt smod)
                       ~chain:
                         (hop_of_loc tgt loc
                         :: hop_of_loc d.Callgraph.d_sym d.Callgraph.d_loc
                         :: hops_of_trail t.trail)))
              d.Callgraph.d_refs)
    defs

(* --- T2: domain safety --- *)

let classify_head cfg cg head =
  let rec go fuel head =
    let h = Cmts.strip_stdlib head in
    if List.mem h cfg.safe_heads then `Safe
    else if List.mem h cfg.mutable_heads || String.starts_with ~prefix:"Bigarray." h
    then `Mutable h
    else
      match Callgraph.find_decl cg head with
      | Some { Callgraph.t_kind = Callgraph.Record fields; _ } ->
        let muts =
          List.filter (fun f -> f.Callgraph.f_mutable) fields
          |> List.map (fun f -> f.Callgraph.f_name)
        in
        if muts = [] then `Safe
        else if
          List.exists
            (fun f ->
              match f.Callgraph.f_head with
              | Some fh -> Cmts.strip_stdlib fh = "Mutex.t"
              | None -> false)
            fields
        then `Guarded
        else `Mutable_record (h, muts)
      | Some { Callgraph.t_kind = Callgraph.Alias (Some h2); _ } when fuel > 0 ->
        go (fuel - 1) h2
      | Some _ | None -> `Safe
  in
  go 4 head

let t2 cfg cg (units : Cmts.unit_info list) =
  let findings = ref [] in
  let analyze_spawn ~modname ~file ~spawn_loc (closure : Typedtree.expression) =
    let bound = Hashtbl.create 16 in
    let captured = ref [] in
    let super = Tast_iterator.default_iterator in
    let pat : 'k. Tast_iterator.iterator -> 'k Typedtree.general_pattern -> unit
        =
     fun (type k) this (p : k Typedtree.general_pattern) ->
      (match p.Typedtree.pat_desc with
      | Typedtree.Tpat_var (id, _) ->
        Hashtbl.replace bound (Ident.unique_name id) ()
      | Typedtree.Tpat_alias (_, id, _) ->
        Hashtbl.replace bound (Ident.unique_name id) ()
      | _ -> ());
      super.Tast_iterator.pat this p
    in
    let expr this (e : Typedtree.expression) =
      (match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) ->
        captured :=
          (id, e.Typedtree.exp_type, e.Typedtree.exp_loc) :: !captured
      | _ -> ());
      super.Tast_iterator.expr this e
    in
    let it = { super with Tast_iterator.pat; expr } in
    it.Tast_iterator.expr it closure;
    let reported = Hashtbl.create 8 in
    List.iter
      (fun (id, ty, loc) ->
        let uname = Ident.unique_name id in
        if (not (Hashtbl.mem bound uname)) && not (Hashtbl.mem reported uname)
        then begin
          Hashtbl.add reported uname ();
          match Callgraph.type_head ~modname ty with
          | None -> ()
          | Some head -> (
            let name = Ident.name id in
            let ref_loc = Callgraph.loc_of ~file loc in
            let chain =
              [ hop_of_loc name ref_loc; hop_of_loc "Domain.spawn" spawn_loc ]
            in
            match classify_head cfg cg head with
            | `Safe | `Guarded -> ()
            | `Mutable h ->
              findings :=
                finding_at ref_loc ~rule:Finding.T2
                  ~msg:
                    (Printf.sprintf
                       "%s: mutable %s escapes into a Domain.spawn closure \
                        without atomic or mutex protection; use Atomic.t, \
                        guard it with a mutex, or allocate it inside the \
                        domain"
                       name h)
                  ~chain
                :: !findings
            | `Mutable_record (h, muts) ->
              findings :=
                finding_at ref_loc ~rule:Finding.T2
                  ~msg:
                    (Printf.sprintf
                       "%s: record %s with mutable field%s %s escapes into a \
                        Domain.spawn closure and carries no guarding Mutex.t \
                        field"
                       name h
                       (if List.length muts = 1 then "" else "s")
                       (String.concat ", " muts))
                  ~chain
                :: !findings)
        end)
      (List.rev !captured)
  in
  List.iter
    (fun (u : Cmts.unit_info) ->
      let modname = u.Cmts.modname and file = u.Cmts.source in
      let super = Tast_iterator.default_iterator in
      let expr this (e : Typedtree.expression) =
        (match e.Typedtree.exp_desc with
        | Typedtree.Texp_apply ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
          when List.mem
                 (Cmts.strip_stdlib (Cmts.canonical_sym ~modname (Path.name p)))
                 cfg.spawn_fns -> (
          match List.rev (List.filter_map snd args) with
          | closure :: _ ->
            analyze_spawn ~modname ~file
              ~spawn_loc:(Callgraph.loc_of ~file e.Typedtree.exp_loc)
              closure
          | [] -> ())
        | _ -> ());
        super.Tast_iterator.expr this e
      in
      let it = { super with Tast_iterator.expr = expr } in
      it.Tast_iterator.structure it u.Cmts.structure)
    units;
  List.rev !findings

(* --- T3: wire/versioning contract --- *)

let rec is_wildcard_pat : 'k. 'k Typedtree.general_pattern -> bool =
 fun (type k) (p : k Typedtree.general_pattern) ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any -> true
  (* Tpat_alias is NOT a wildcard: `_ as x` and `(x : t)` both elaborate
     to alias-over-any, and they bind the whole value like a var
     pattern — total without defeating anything. *)
  | Typedtree.Tpat_or (a, b, _) -> is_wildcard_pat a || is_wildcard_pat b
  | Typedtree.Tpat_value v ->
    is_wildcard_pat (v :> Typedtree.value Typedtree.general_pattern)
  | _ -> false

let find_version_binding (u : Cmts.unit_info) name =
  let result = ref None in
  let rec go_str (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (id, _) when Ident.name id = name -> (
                match vb.Typedtree.vb_expr.Typedtree.exp_desc with
                | Typedtree.Texp_constant (Asttypes.Const_char c) ->
                  result := Some (Char.code c)
                | Typedtree.Texp_constant (Asttypes.Const_int n) ->
                  result := Some n
                | _ -> ())
              | _ -> ())
            vbs
        | Typedtree.Tstr_module
            { Typedtree.mb_expr = { Typedtree.mod_desc = Typedtree.Tmod_structure s; _ }; _ } ->
          go_str s
        | _ -> ())
      str.Typedtree.str_items
  in
  go_str u.Cmts.structure;
  !result

(* Parse `module X` / `version N` / `fingerprint H` blocks. *)
let parse_wire_contract lines =
  let blocks = Hashtbl.create 4 in
  let current = ref None in
  List.iter
    (fun line ->
      match words line with
      | [ "module"; m ] ->
        current := Some m;
        if not (Hashtbl.mem blocks m) then Hashtbl.replace blocks m (None, None)
      | [ "version"; v ] -> (
        match (!current, int_of_string_opt v) with
        | Some m, Some n ->
          let _, fp = Hashtbl.find blocks m in
          Hashtbl.replace blocks m (Some n, fp)
        | _ -> ())
      | [ "fingerprint"; f ] -> (
        match !current with
        | Some m ->
          let v, _ = Hashtbl.find blocks m in
          Hashtbl.replace blocks m (v, Some f)
        | None -> ())
      | _ -> ())
    lines;
  blocks

let t3 cfg cg (units : Cmts.unit_info list) =
  let findings = ref [] and errors = ref [] in
  List.iter
    (fun spec ->
      let type_sym = spec.wire_module ^ "." ^ spec.wire_type in
      match Callgraph.find_decl cg type_sym with
      | None | Some { Callgraph.t_kind = Callgraph.Record _ | Callgraph.Alias _ | Callgraph.Opaque; _ } ->
        errors :=
          {
            Scan.path = spec.wire_contract;
            message =
              Printf.sprintf
                "wire type %s not found as a variant declaration in the \
                 loaded units"
                type_sym;
          }
          :: !errors
      | Some { Callgraph.t_kind = Callgraph.Variant shapes; t_loc } -> (
        let fingerprint = fnv64 (String.concat ";" shapes) in
        let version =
          List.find_map
            (fun (u : Cmts.unit_info) ->
              if u.Cmts.modname = spec.wire_module then
                find_version_binding u spec.wire_version
              else None)
            units
        in
        let contract_path = Filename.concat cfg.root spec.wire_contract in
        if not (Sys.file_exists contract_path) then
          findings :=
            finding_at t_loc ~rule:Finding.T3
              ~msg:
                (Printf.sprintf
                   "%s: no recorded wire contract at %s; record the current \
                    shape with `lb_lint --wire-update`"
                   type_sym spec.wire_contract)
              ~chain:[]
            :: !findings
        else
          let blocks = parse_wire_contract (read_lines contract_path) in
          match Hashtbl.find_opt blocks spec.wire_module with
          | None ->
            findings :=
              finding_at t_loc ~rule:Finding.T3
                ~msg:
                  (Printf.sprintf
                     "%s: %s has no block for module %s; re-record with \
                      `lb_lint --wire-update`"
                     type_sym spec.wire_contract spec.wire_module)
                ~chain:[]
              :: !findings
          | Some (c_version, c_fingerprint) ->
            let fp_ok = c_fingerprint = Some fingerprint in
            let v_ok = version <> None && c_version = version in
            if fp_ok && v_ok then ()
            else if (not fp_ok) && v_ok then
              findings :=
                finding_at t_loc ~rule:Finding.T3
                  ~msg:
                    (Printf.sprintf
                       "%s: wire type shape changed (fingerprint %s, \
                        contract records %s) without bumping %s.%s; bump the \
                        version and re-record with `lb_lint --wire-update`"
                       type_sym fingerprint
                       (Option.value ~default:"<none>" c_fingerprint)
                       spec.wire_module spec.wire_version)
                  ~chain:[]
                :: !findings
            else if fp_ok && not v_ok then
              findings :=
                finding_at t_loc ~rule:Finding.T3
                  ~msg:
                    (Printf.sprintf
                       "%s: %s.%s is %s but %s records %s; re-record with \
                        `lb_lint --wire-update`"
                       type_sym spec.wire_module spec.wire_version
                       (match version with
                       | Some v -> string_of_int v
                       | None -> "<missing>")
                       spec.wire_contract
                       (match c_version with
                       | Some v -> string_of_int v
                       | None -> "<missing>")
                       )
                  ~chain:[]
                :: !findings
            else
              findings :=
                finding_at t_loc ~rule:Finding.T3
                  ~msg:
                    (Printf.sprintf
                       "%s: wire type shape and version both moved; verify \
                        every encode/decode site, then re-record the \
                        contract with `lb_lint --wire-update`"
                       type_sym)
                  ~chain:[]
                :: !findings);
      (* wildcard dispatch arms over the wire type, anywhere *)
      List.iter
        (fun (u : Cmts.unit_info) ->
          let modname = u.Cmts.modname and file = u.Cmts.source in
          let check_case :
              'k. 'k Typedtree.case -> unit =
           fun (type k) (c : k Typedtree.case) ->
            let pat = c.Typedtree.c_lhs in
            match
              Callgraph.type_head ~modname pat.Typedtree.pat_type
            with
            | Some head
              when Cmts.strip_stdlib head = type_sym && is_wildcard_pat pat ->
              let loc = Callgraph.loc_of ~file pat.Typedtree.pat_loc in
              findings :=
                finding_at loc ~rule:Finding.T3
                  ~msg:
                    (Printf.sprintf
                       "%s: wildcard match arm over the wire type defeats \
                        constructor-total dispatch; enumerate the \
                        constructors so adding one forces this site to be \
                        revisited"
                       type_sym)
                  ~chain:[]
                :: !findings
            | _ -> ()
          in
          let super = Tast_iterator.default_iterator in
          let expr this (e : Typedtree.expression) =
            (match e.Typedtree.exp_desc with
            | Typedtree.Texp_match (_, cases, _) ->
              List.iter (fun c -> check_case c) cases
            | Typedtree.Texp_function { cases; _ } ->
              List.iter (fun c -> check_case c) cases
            | _ -> ());
            super.Tast_iterator.expr this e
          in
          let it = { super with Tast_iterator.expr = expr } in
          it.Tast_iterator.structure it u.Cmts.structure)
        units)
    cfg.wire;
  (List.rev !findings, List.rev !errors)

let write_wire_contract cfg =
  let build_dir =
    if Filename.is_relative cfg.build_dir then
      Filename.concat cfg.root cfg.build_dir
    else cfg.build_dir
  in
  match Cmts.load ~build_dir ~roots:cfg.roots with
  | Error e -> Error e
  | Ok { Cmts.units; _ } -> (
    let cg = Callgraph.build units in
    let blocks =
      List.filter_map
        (fun spec ->
          let type_sym = spec.wire_module ^ "." ^ spec.wire_type in
          match Callgraph.find_decl cg type_sym with
          | Some { Callgraph.t_kind = Callgraph.Variant shapes; _ } ->
            let version =
              List.find_map
                (fun (u : Cmts.unit_info) ->
                  if u.Cmts.modname = spec.wire_module then
                    find_version_binding u spec.wire_version
                  else None)
                units
            in
            Some
              ( spec.wire_contract,
                Printf.sprintf "module %s\nversion %s\nfingerprint %s\n"
                  spec.wire_module
                  (match version with
                  | Some v -> string_of_int v
                  | None -> "0")
                  (fnv64 (String.concat ";" shapes)) )
          | _ -> None)
        cfg.wire
    in
    match blocks with
    | [] -> Error "no wire types found; nothing to record"
    | _ ->
      (* group blocks per contract file *)
      let by_file = Hashtbl.create 4 in
      List.iter
        (fun (file, block) ->
          Hashtbl.replace by_file file
            (block :: Option.value ~default:[] (Hashtbl.find_opt by_file file)))
        blocks;
      let files =
        (* lint: allow R1 — fold feeds List.sort_uniq, order-insensitive *)
        Hashtbl.fold (fun file _ acc -> file :: acc) by_file []
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun file ->
          let blocks = Hashtbl.find by_file file in
          let path = Filename.concat cfg.root file in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc
                "# wire contract, recorded by `lb_lint --wire-update`\n\
                 # T3 compares the live Dist.Msg shape against this file.\n";
              List.iter (output_string oc) (List.rev blocks)))
        files;
      Ok files)

(* --- T4: exit-code contract --- *)

type exit_contract = { codes : (int * string) list; returners : string list }

let parse_exit_contract lines =
  List.fold_left
    (fun acc line ->
      match words line with
      | "code" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
          { acc with codes = acc.codes @ [ (n, String.concat " " rest) ] }
        | None -> acc)
      | [ "returner"; s ] -> { acc with returners = acc.returners @ [ s ] }
      | _ -> acc)
    { codes = []; returners = [] }
    lines

let t4 cfg (units : Cmts.unit_info list) =
  let findings = ref [] and errors = ref [] in
  (match cfg.exit_contract with
  | None -> ()
  | Some contract_file ->
    let contract_path = Filename.concat cfg.root contract_file in
    let contract =
      if Sys.file_exists contract_path then
        Some (parse_exit_contract (read_lines contract_path))
      else begin
        errors :=
          {
            Scan.path = contract_file;
            message =
              "exit-code contract file missing; T4 has nothing to check \
               against";
          }
          :: !errors;
        None
      end
    in
    match contract with
    | None -> ()
    | Some contract ->
      let is_returner sym =
        List.mem (Cmts.strip_stdlib sym) contract.returners
      in
      let rec exit_arg_ok (e : Typedtree.expression) ~modname =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_constant (Asttypes.Const_int n) ->
          if List.mem_assoc n contract.codes then `Ok else `Bad_code n
        | Typedtree.Texp_ifthenelse (_, t, Some f) -> (
          match exit_arg_ok t ~modname with
          | `Ok -> exit_arg_ok f ~modname
          | bad -> bad)
        | Typedtree.Texp_ifthenelse (_, t, None) -> exit_arg_ok t ~modname
        | Typedtree.Texp_match (_, cases, _) ->
          List.fold_left
            (fun acc (c : Typedtree.computation Typedtree.case) ->
              match acc with
              | `Ok -> exit_arg_ok c.Typedtree.c_rhs ~modname
              | bad -> bad)
            `Ok cases
        | Typedtree.Texp_sequence (_, e) | Typedtree.Texp_let (_, _, e) ->
          exit_arg_ok e ~modname
        | Typedtree.Texp_apply ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _)
          when is_returner (Cmts.canonical_sym ~modname (Path.name p)) ->
          `Ok
        | Typedtree.Texp_ident (p, _, _)
          when is_returner (Cmts.canonical_sym ~modname (Path.name p)) ->
          `Ok
        | _ -> `Opaque
      in
      List.iter
        (fun (u : Cmts.unit_info) ->
          let modname = u.Cmts.modname and file = u.Cmts.source in
          let in_lib = String.starts_with ~prefix:"lib/" file in
          let super = Tast_iterator.default_iterator in
          let expr this (e : Typedtree.expression) =
            (match e.Typedtree.exp_desc with
            | Typedtree.Texp_apply ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args)
              when Cmts.strip_stdlib (Cmts.canonical_sym ~modname (Path.name p))
                   = "exit" -> (
              let loc = Callgraph.loc_of ~file e.Typedtree.exp_loc in
              if in_lib then
                findings :=
                  finding_at loc ~rule:Finding.T4
                    ~msg:
                      "exit: library code must not terminate the process; \
                       raise and let bin/ decide the outcome"
                    ~chain:[]
                  :: !findings
              else
                match List.filter_map snd args with
                | [ arg ] -> (
                  match exit_arg_ok arg ~modname with
                  | `Ok -> ()
                  | `Bad_code n ->
                    findings :=
                      finding_at loc ~rule:Finding.T4
                        ~msg:
                          (Printf.sprintf
                             "exit %d: code %d is not in the documented \
                              contract %s; add a `code %d <meaning>` line \
                              or use a documented code"
                             n n contract_file n)
                        ~chain:[]
                      :: !findings
                  | `Opaque ->
                    findings :=
                      finding_at loc ~rule:Finding.T4
                        ~msg:
                          (Printf.sprintf
                             "exit: code computed by an expression the \
                              analyzer cannot tie to the contract %s; use \
                              literal contract codes or a sanctioned \
                              returner"
                             contract_file)
                        ~chain:[]
                      :: !findings)
                | _ -> ())
            | _ -> ());
            super.Tast_iterator.expr this e
          in
          let it = { super with Tast_iterator.expr = expr } in
          it.Tast_iterator.structure it u.Cmts.structure)
        units);
  (List.rev !findings, List.rev !errors)

(* --- driver --- *)

let rel_finding ~root (f : Finding.t) =
  {
    f with
    Finding.file = relativize ~root f.Finding.file;
    chain =
      List.map
        (fun (h : Finding.hop) ->
          { h with Finding.hop_file = relativize ~root h.Finding.hop_file })
        f.Finding.chain;
  }

let run cfg =
  let scan_paths = List.map (Filename.concat cfg.root) cfg.roots in
  match Scan.run ~allow:cfg.allow scan_paths with
  | Error e -> Error e
  | Ok syn -> (
    let rel = relativize ~root:cfg.root in
    let syn_findings = List.map (rel_finding ~root:cfg.root) syn.Scan.findings in
    let syn_errors =
      List.map
        (fun (e : Scan.error) -> { e with Scan.path = rel e.Scan.path })
        syn.Scan.errors
    in
    let syn_suppressed =
      List.map
        (fun (f, w) -> (rel_finding ~root:cfg.root f, w))
        syn.Scan.suppressed
    in
    let annotations =
      List.map (fun (p, a) -> (rel p, a)) syn.Scan.annotations
    in
    let files =
      match Scan.collect_files scan_paths with
      | Ok fs -> List.length fs
      | Error _ -> 0
    in
    let build_dir =
      if Filename.is_relative cfg.build_dir then
        Filename.concat cfg.root cfg.build_dir
      else cfg.build_dir
    in
    match Cmts.load ~build_dir ~roots:cfg.roots with
    | Error e -> Error e
    | Ok { Cmts.units; load_errors } ->
      let cg = Callgraph.build units in
      let t3_findings, t3_errors = t3 cfg cg units in
      let t4_findings, t4_errors = t4 cfg units in
      let typed_raw = t1 cfg cg @ t2 cfg cg units @ t3_findings @ t4_findings in
      let empty_anns = Allow.annotations_of_source "" in
      let ann_for file =
        Option.value ~default:empty_anns (List.assoc_opt file annotations)
      in
      let typed_kept, typed_supp =
        List.fold_left
          (fun (kept, supp) (f : Finding.t) ->
            let k, s =
              Scan.apply_waivers ~allow:cfg.allow ~anns:(ann_for f.Finding.file)
                ~path:f.Finding.file [ f ]
            in
            (kept @ k, supp @ s))
          ([], []) typed_raw
      in
      let suppressed = syn_suppressed @ typed_supp in
      (* stale waivers: allow entries and annotations that cover nothing *)
      let used_entries =
        List.filter_map
          (function _, Scan.Entry i -> Some i | _ -> None)
          suppressed
      in
      let used_anns =
        List.filter_map
          (function
            | (f : Finding.t), Scan.Annotation l -> Some (f.Finding.file, l)
            | _ -> None)
          suppressed
      in
      let allow_label = Option.value ~default:"<allow-list>" cfg.allow_path in
      let stale_entries =
        List.filteri
          (fun i _ -> not (List.mem i used_entries))
          (Allow.entries cfg.allow)
        |> List.map (fun (lineno, raw) ->
               {
                 sw_where = Printf.sprintf "%s:%d" allow_label lineno;
                 sw_detail =
                   Printf.sprintf "allow entry `%s` suppresses nothing" raw;
               })
      in
      let stale_anns =
        List.concat_map
          (fun (file, anns) ->
            Allow.annotation_sites anns
            |> List.filter (fun l -> not (List.mem (file, l) used_anns))
            |> List.map (fun l ->
                   {
                     sw_where = Printf.sprintf "%s:%d" file l;
                     sw_detail = "(* lint: ... *) annotation suppresses nothing";
                   }))
          annotations
      in
      let load_errs =
        List.map
          (fun (path, message) -> { Scan.path = rel path; message })
          load_errors
      in
      Ok
        {
          findings = List.sort Finding.compare (syn_findings @ typed_kept);
          stale = stale_entries @ stale_anns;
          errors = syn_errors @ load_errs @ t3_errors @ t4_errors;
          units = List.length units;
          files;
        })
