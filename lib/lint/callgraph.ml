type loc = { file : string; line : int; col : int }

let loc_of ~file (l : Location.t) =
  let p = l.Location.loc_start in
  { file; line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

type def = {
  d_sym : string;
  d_file : string;
  d_loc : loc;
  d_refs : (string * loc) list;
}

type field_info = { f_name : string; f_mutable : bool; f_head : string option }

type decl_kind =
  | Record of field_info list
  | Variant of string list
  | Alias of string option
  | Opaque

type decl = { t_kind : decl_kind; t_loc : loc }

type t = {
  defs : (string, def) Hashtbl.t;
  mutable order : string list;  (* reverse traversal order while building *)
  decls : (string, decl) Hashtbl.t;
}

let is_predef name =
  List.exists (fun (n, _) -> n = name) Predef.builtin_idents

let canon_type_path ~modname p =
  match p with
  | Path.Pident id ->
    let n = Ident.name id in
    if is_predef n then n else modname ^ "." ^ n
  | _ -> Cmts.canonical_modname (Path.name p)

(* A stable structural rendering of a type expression: used both for the
   wire fingerprint (T3) and for classifying captured values (T2).
   Deliberately hand-rolled rather than Printtyp so the output does not
   depend on printing context or compiler version details. *)
let rec shape ~modname depth (ty : Types.type_expr) =
  if depth > 6 then "..."
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> (
      let head = canon_type_path ~modname p in
      match args with
      | [] -> head
      | args ->
        head ^ "("
        ^ String.concat "," (List.map (shape ~modname (depth + 1)) args)
        ^ ")")
    | Ttuple tys ->
      "(" ^ String.concat "*" (List.map (shape ~modname (depth + 1)) tys) ^ ")"
    | Tarrow (_, a, b, _) ->
      shape ~modname (depth + 1) a ^ "->" ^ shape ~modname (depth + 1) b
    | Tvar _ | Tunivar _ -> "'v"
    | Tpoly (t, _) -> shape ~modname (depth + 1) t
    | _ -> "?"

let rec type_head ~modname (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> Some (canon_type_path ~modname p)
  | Tpoly (t, _) -> type_head ~modname t
  | _ -> None

(* --- reference collection --- *)

let collect_refs ~modname ~file expr =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let super = Tast_iterator.default_iterator in
  let expr_it this (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) ->
      let sym = Cmts.canonical_sym ~modname (Path.name p) in
      if not (Hashtbl.mem seen sym) then begin
        Hashtbl.add seen sym ();
        out := (sym, loc_of ~file e.Typedtree.exp_loc) :: !out
      end
    | _ -> ());
    super.Tast_iterator.expr this e
  in
  let it = { super with Tast_iterator.expr = expr_it } in
  it.Tast_iterator.expr it expr;
  List.rev !out

let rec pat_vars (p : Typedtree.pattern) acc =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> (Ident.name id, p.Typedtree.pat_loc) :: acc
  | Typedtree.Tpat_alias (q, id, _) ->
    pat_vars q ((Ident.name id, p.Typedtree.pat_loc) :: acc)
  | Typedtree.Tpat_tuple ps -> List.fold_left (fun a q -> pat_vars q a) acc ps
  | Typedtree.Tpat_construct (_, _, ps, _) ->
    List.fold_left (fun a q -> pat_vars q a) acc ps
  | Typedtree.Tpat_record (fields, _) ->
    List.fold_left (fun a (_, _, q) -> pat_vars q a) acc fields
  | Typedtree.Tpat_array ps -> List.fold_left (fun a q -> pat_vars q a) acc ps
  | Typedtree.Tpat_or (a, b, _) -> pat_vars b (pat_vars a acc)
  | Typedtree.Tpat_lazy q -> pat_vars q acc
  | _ -> acc

(* --- building --- *)

let add_def t ~sym ~file ~loc ~refs =
  match Hashtbl.find_opt t.defs sym with
  | None ->
    Hashtbl.replace t.defs sym { d_sym = sym; d_file = file; d_loc = loc; d_refs = refs };
    t.order <- sym :: t.order
  | Some d ->
    (* shadowed or re-bound name: merge reference edges (sound
       overapproximation for the taint walk) *)
    let known = List.map fst d.d_refs in
    let extra = List.filter (fun (s, _) -> not (List.mem s known)) refs in
    Hashtbl.replace t.defs sym { d with d_refs = d.d_refs @ extra }

let add_type_decl t ~modpath ~file (td : Typedtree.type_declaration) =
  let name = modpath ^ "." ^ Ident.name td.Typedtree.typ_id in
  let loc = loc_of ~file td.Typedtree.typ_loc in
  let kind =
    match td.Typedtree.typ_kind with
    | Typedtree.Ttype_record lds ->
      Record
        (List.map
           (fun (ld : Typedtree.label_declaration) ->
             {
               f_name = Ident.name ld.Typedtree.ld_id;
               f_mutable = ld.Typedtree.ld_mutable = Asttypes.Mutable;
               f_head =
                 type_head ~modname:modpath
                   ld.Typedtree.ld_type.Typedtree.ctyp_type;
             })
           lds)
    | Typedtree.Ttype_variant cds ->
      Variant
        (List.map
           (fun (cd : Typedtree.constructor_declaration) ->
             let args =
               match cd.Typedtree.cd_args with
               | Typedtree.Cstr_tuple [] -> ""
               | Typedtree.Cstr_tuple cts ->
                 "("
                 ^ String.concat ","
                     (List.map
                        (fun (ct : Typedtree.core_type) ->
                          shape ~modname:modpath 0 ct.Typedtree.ctyp_type)
                        cts)
                 ^ ")"
               | Typedtree.Cstr_record lds ->
                 "{"
                 ^ String.concat ";"
                     (List.map
                        (fun (ld : Typedtree.label_declaration) ->
                          (if ld.Typedtree.ld_mutable = Asttypes.Mutable then
                             "mut "
                           else "")
                          ^ Ident.name ld.Typedtree.ld_id ^ ":"
                          ^ shape ~modname:modpath 0
                              ld.Typedtree.ld_type.Typedtree.ctyp_type)
                        lds)
                 ^ "}"
             in
             Ident.name cd.Typedtree.cd_id ^ args)
           cds)
    | Typedtree.Ttype_abstract -> (
      match td.Typedtree.typ_manifest with
      | Some ct ->
        Alias (type_head ~modname:modpath ct.Typedtree.ctyp_type)
      | None -> Opaque)
    | Typedtree.Ttype_open -> Opaque
  in
  if not (Hashtbl.mem t.decls name) then
    Hashtbl.replace t.decls name { t_kind = kind; t_loc = loc }

let rec add_structure t ~modpath ~file (str : Typedtree.structure) =
  List.iter (add_item t ~modpath ~file) str.Typedtree.str_items

and add_item t ~modpath ~file (item : Typedtree.structure_item) =
  match item.Typedtree.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        let refs = collect_refs ~modname:modpath ~file vb.Typedtree.vb_expr in
        let vars = pat_vars vb.Typedtree.vb_pat [] in
        let vars =
          match vars with
          | [] ->
            let loc = loc_of ~file vb.Typedtree.vb_loc in
            [ (Printf.sprintf "(entry:%d)" loc.line, vb.Typedtree.vb_loc) ]
          | vs -> List.rev vs
        in
        List.iter
          (fun (name, ploc) ->
            add_def t ~sym:(modpath ^ "." ^ name) ~file
              ~loc:(loc_of ~file ploc) ~refs)
          vars)
      vbs
  | Typedtree.Tstr_eval (e, _) ->
    let loc = loc_of ~file item.Typedtree.str_loc in
    add_def t
      ~sym:(Printf.sprintf "%s.(entry:%d)" modpath loc.line)
      ~file ~loc
      ~refs:(collect_refs ~modname:modpath ~file e)
  | Typedtree.Tstr_type (_, tds) ->
    List.iter (add_type_decl t ~modpath ~file) tds
  | Typedtree.Tstr_module mb -> add_module t ~modpath ~file mb
  | Typedtree.Tstr_recmodule mbs ->
    List.iter (add_module t ~modpath ~file) mbs
  | _ -> ()

and add_module t ~modpath ~file (mb : Typedtree.module_binding) =
  let name =
    match mb.Typedtree.mb_name.Location.txt with Some n -> n | None -> "_"
  in
  add_module_expr t ~modpath:(modpath ^ "." ^ name) ~file
    mb.Typedtree.mb_expr

and add_module_expr t ~modpath ~file (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure str -> add_structure t ~modpath ~file str
  | Typedtree.Tmod_constraint (me, _, _, _) ->
    add_module_expr t ~modpath ~file me
  | _ -> ()

let build (units : Cmts.unit_info list) =
  let t = { defs = Hashtbl.create 256; order = []; decls = Hashtbl.create 64 } in
  List.iter
    (fun (u : Cmts.unit_info) ->
      add_structure t ~modpath:u.Cmts.modname ~file:u.Cmts.source
        u.Cmts.structure)
    units;
  t.order <- List.rev t.order;
  t

let find_def t sym = Hashtbl.find_opt t.defs sym
let find_decl t name = Hashtbl.find_opt t.decls name
let defs_in_order t = List.filter_map (Hashtbl.find_opt t.defs) t.order

let module_of sym =
  match String.rindex_opt sym '.' with
  | Some i -> String.sub sym 0 i
  | None -> sym
