(** Suppression machinery: the built-in R1 module allowlist, the
    [bin/lint_allow] file, and in-source [(* lint: ... *)] annotations. *)

type t
(** Parsed allowlist file (plus the built-ins). *)

val empty : t
(** Built-ins only: no file entries. *)

val load : string -> (t, string) result
(** Parse an allowlist file. Each non-comment line is
    [<path-substring> <rule> [<rule> ...]] where a rule is an id ("R5"),
    an alias ("io"), "all", or a scoped form ["R1[Unix.gettimeofday]"]
    that only suppresses findings led by that dotted identifier.
    Returns [Error msg] on a malformed line. *)

val of_lines : string list -> (t, string) result
(** Same, from in-memory lines (for tests). *)

val builtin_r1_exempt : string -> bool
(** True when the path is one of the sanctioned nondeterminism modules:
    lib/prng/*, lib/obs/prof.ml, lib/obs/probe.ml, lib/shard/checkpoint.ml. *)

val file_allows : t -> path:string -> msg:string -> Finding.rule -> bool
(** True when an allowlist-file entry matches [path] and covers the rule;
    a scoped entry additionally requires the finding message to start
    with the scoped identifier at a token boundary. *)

val file_allows_entry : t -> path:string -> msg:string -> Finding.rule -> int option
(** Like {!file_allows} but returns the 0-based index of the first
    matching entry, so callers can track which waivers are live. *)

val entries : t -> (int * string) list
(** All file entries as [(line-number, text)], in file order — index [i]
    of this list is the index {!file_allows_entry} reports. *)

type annotations
(** Per-file suppression sites harvested from [(* lint: ... *)] comments. *)

val annotations_of_source : string -> annotations
(** Scan raw source text. Recognized forms, on the offending line or the
    line directly above it:
    - [(* lint: allow R1 R2 *)] — suppress the listed rules
    - [(* lint: total *)] — shorthand for allowing R3
    - [(* lint: allow all *)] — suppress every rule.
    Unknown words after [lint:] are ignored so prose justifications can
    share the comment. *)

val annotation_allows : annotations -> line:int -> Finding.rule -> bool
(** True when an annotation on [line] or [line - 1] covers the rule. *)

val annotation_match : annotations -> line:int -> Finding.rule -> int option
(** Like {!annotation_allows} but returns the annotation's own line, so
    callers can track which annotations are live. *)

val annotation_sites : annotations -> int list
(** The lines carrying a recognized [(* lint: ... *)] annotation. *)
