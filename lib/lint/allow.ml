type scoped_rule = { rule : Finding.rule; only : string option }
(* [only = Some ident] narrows the suppression to findings whose message
   starts with that dotted identifier (e.g. "R1[Unix.gettimeofday]"),
   so a real-I/O module can be sanctioned for one construct without a
   blanket waiver for the whole rule. *)

type entry = { pattern : string; rules : scoped_rule list option }
(* [rules = None] means "all rules". *)

type t = { entries : entry list }

let empty = { entries = [] }

(* Normalize a path to forward slashes so patterns written in the allow
   file match on every platform and however the scanner was invoked. *)
let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

(* "R1" → unscoped; "R1[Unix.gettimeofday]" → scoped to that identifier. *)
let parse_rule_word w =
  match String.index_opt w '[' with
  | None -> (
    match Finding.rule_of_string w with
    | Some r -> Ok { rule = r; only = None }
    | None -> Error (Printf.sprintf "unknown rule %S" w))
  | Some i ->
    if String.length w = 0 || w.[String.length w - 1] <> ']' then
      Error (Printf.sprintf "malformed scoped rule %S (expected R?[ident])" w)
    else
      let rule_part = String.sub w 0 i in
      let scope = String.sub w (i + 1) (String.length w - i - 2) in
      if scope = "" then
        Error (Printf.sprintf "empty scope in %S (expected R?[ident])" w)
      else (
        match Finding.rule_of_string rule_part with
        | Some r -> Ok { rule = r; only = Some scope }
        | None -> Error (Printf.sprintf "unknown rule %S" rule_part))

let parse_rule_words words =
  let rec go acc = function
    | [] -> Ok (Some (List.rev acc))
    | w :: rest -> (
      if String.lowercase_ascii w = "all" then Ok None
      else
        match parse_rule_word w with
        | Ok sr -> go (sr :: acc) rest
        | Error e -> Error e)
  in
  go [] words

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let of_lines lines =
  let rec go acc lineno = function
    | [] -> Ok { entries = List.rev acc }
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_words line with
      | [] -> go acc (lineno + 1) rest
      | [ _ ] ->
        Error
          (Printf.sprintf "line %d: expected `<path-pattern> <rule>...`"
             lineno)
      | pattern :: rule_words -> (
        match parse_rule_words rule_words with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok rules ->
          go ({ pattern = normalize pattern; rules } :: acc) (lineno + 1) rest)
      )
  in
  go [] 1 lines

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> (
    match of_lines lines with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let builtin_r1_exempt path =
  let p = normalize path in
  contains ~sub:"/prng/" p
  || contains ~sub:"obs/prof.ml" p
  || contains ~sub:"obs/probe.ml" p
  || contains ~sub:"shard/checkpoint.ml" p

(* A scope covers a finding when the message starts with the scoped
   identifier at a token boundary — rule messages lead with the dotted
   identifier they flag ("Unix.gettimeofday: wall-clock read ..."). *)
let scope_matches ~msg scope =
  let m = String.length msg and s = String.length scope in
  m >= s
  && String.sub msg 0 s = scope
  && (m = s
     ||
     match msg.[s] with
     | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' -> false
     | _ -> true)

let file_allows t ~path ~msg rule =
  let p = normalize path in
  List.exists
    (fun e ->
      contains ~sub:e.pattern p
      &&
      match e.rules with
      | None -> true
      | Some rs ->
        List.exists
          (fun sr ->
            sr.rule = rule
            &&
            match sr.only with
            | None -> true
            | Some scope -> scope_matches ~msg scope)
          rs)
    t.entries

(* --- in-source annotations --- *)

type annotations = (int * Finding.rule list option) list
(* (line, rules); [None] = all rules. *)

let annotation_re_scan line =
  (* Find "lint:" inside a comment opener on this line and collect the
     words that follow up to the comment close (or end of line). *)
  let find sub s from =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go from
  in
  match find "(*" line 0 with
  | None -> None
  | Some open_i -> (
    match find "lint:" line open_i with
    | None -> None
    | Some i ->
      let start = i + String.length "lint:" in
      let stop =
        match find "*)" line start with
        | Some j -> j
        | None -> String.length line
      in
      Some (String.sub line start (stop - start)))

let annotations_of_source src : annotations =
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> List.rev acc
    | line :: rest ->
      let acc =
        match annotation_re_scan line with
        | None -> acc
        | Some body ->
          let words = split_words body in
          let words =
            List.filter
              (fun w ->
                let w = String.lowercase_ascii w in
                w <> "allow" && w <> "-" && w <> "--")
              words
          in
          let all = List.exists (fun w -> String.lowercase_ascii w = "all") words in
          let rules = List.filter_map Finding.rule_of_string words in
          if all then (lineno, None) :: acc
          else if rules <> [] then (lineno, Some rules) :: acc
          else acc
      in
      go (lineno + 1) acc rest
  in
  go 1 [] lines

let annotation_allows (anns : annotations) ~line rule =
  List.exists
    (fun (l, rules) ->
      (l = line || l = line - 1)
      && match rules with None -> true | Some rs -> List.mem rule rs)
    anns
