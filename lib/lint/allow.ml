type scoped_rule = { rule : Finding.rule; only : string option }
(* [only = Some ident] narrows the suppression to findings whose message
   starts with that dotted identifier (e.g. "R1[Unix.gettimeofday]"),
   so a real-I/O module can be sanctioned for one construct without a
   blanket waiver for the whole rule. *)

type entry = {
  pattern : string;
  rules : scoped_rule list option;
  lineno : int; (* 1-based line in the allow file, for stale reporting *)
  raw : string; (* the line as written, comment stripped *)
}
(* [rules = None] means "all rules". *)

type t = { entries : entry list }

let empty = { entries = [] }

let entries t = List.map (fun e -> (e.lineno, e.raw)) t.entries

(* Normalize a path to forward slashes so patterns written in the allow
   file match on every platform and however the scanner was invoked. *)
let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

(* "R1" → unscoped; "R1[Unix.gettimeofday]" → scoped to that identifier. *)
let parse_rule_word w =
  match String.index_opt w '[' with
  | None -> (
    match Finding.rule_of_string w with
    | Some r -> Ok { rule = r; only = None }
    | None -> Error (Printf.sprintf "unknown rule %S" w))
  | Some i ->
    if String.length w = 0 || w.[String.length w - 1] <> ']' then
      Error (Printf.sprintf "malformed scoped rule %S (expected R?[ident])" w)
    else
      let rule_part = String.sub w 0 i in
      let scope = String.sub w (i + 1) (String.length w - i - 2) in
      if scope = "" then
        Error (Printf.sprintf "empty scope in %S (expected R?[ident])" w)
      else (
        match Finding.rule_of_string rule_part with
        | Some r -> Ok { rule = r; only = Some scope }
        | None -> Error (Printf.sprintf "unknown rule %S" rule_part))

let parse_rule_words words =
  let rec go acc = function
    | [] -> Ok (Some (List.rev acc))
    | w :: rest -> (
      if String.lowercase_ascii w = "all" then Ok None
      else
        match parse_rule_word w with
        | Ok sr -> go (sr :: acc) rest
        | Error e -> Error e)
  in
  go [] words

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let of_lines lines =
  let rec go acc lineno = function
    | [] -> Ok { entries = List.rev acc }
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_words line with
      | [] -> go acc (lineno + 1) rest
      | [ _ ] ->
        Error
          (Printf.sprintf "line %d: expected `<path-pattern> <rule>...`"
             lineno)
      | pattern :: rule_words -> (
        match parse_rule_words rule_words with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok rules ->
          go
            ({
               pattern = normalize pattern;
               rules;
               lineno;
               raw = String.trim line;
             }
            :: acc)
            (lineno + 1) rest))
  in
  go [] 1 lines

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | lines -> (
    match of_lines lines with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let builtin_r1_exempt path =
  let p = normalize path in
  contains ~sub:"/prng/" p
  || contains ~sub:"obs/prof.ml" p
  || contains ~sub:"obs/probe.ml" p
  || contains ~sub:"shard/checkpoint.ml" p

(* A scope covers a finding when the message starts with the scoped
   identifier at a token boundary — rule messages lead with the dotted
   identifier they flag ("Unix.gettimeofday: wall-clock read ..."). *)
let scope_matches ~msg scope =
  let m = String.length msg and s = String.length scope in
  m >= s
  && String.sub msg 0 s = scope
  && (m = s
     ||
     match msg.[s] with
     | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' -> false
     | _ -> true)

let file_allows_entry t ~path ~msg rule =
  let p = normalize path in
  let rec go i = function
    | [] -> None
    | e :: rest ->
      let covers =
        contains ~sub:e.pattern p
        &&
        match e.rules with
        | None -> true
        | Some rs ->
          List.exists
            (fun sr ->
              sr.rule = rule
              &&
              match sr.only with
              | None -> true
              | Some scope -> scope_matches ~msg scope)
            rs
      in
      if covers then Some i else go (i + 1) rest
  in
  go 0 t.entries

let file_allows t ~path ~msg rule =
  file_allows_entry t ~path ~msg rule <> None

(* --- in-source annotations --- *)

type annotations = (int * Finding.rule list option) list
(* (line, rules); [None] = all rules. *)

(* Extract "lint:" directives from a comment body: the token must sit at
   a word boundary (so "lb_lint:" in prose does not register), and only
   the words after it count. *)
let annotation_of_comment body =
  let n = String.length body and m = String.length "lint:" in
  let rec find i =
    if i + m > n then None
    else if
      String.sub body i m = "lint:"
      && (i = 0
         ||
         match body.[i - 1] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> false
         | _ -> true)
    then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let words =
      split_words (String.sub body start (n - start))
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter (fun w ->
             let w = String.lowercase_ascii w in
             w <> "" && w <> "allow" && w <> "-" && w <> "--")
    in
    let all = List.exists (fun w -> String.lowercase_ascii w = "all") words in
    let rules = List.filter_map Finding.rule_of_string words in
    if all then Some None
    else if rules <> [] then Some (Some rules)
    else None

(* A small lexer rather than a per-line regex scan: string literals and
   comment nesting are tracked, so source (or the linter's own help
   text) that *mentions* the annotation syntax inside a string does not
   register as a live waiver. *)
let annotations_of_source src : annotations =
  let n = String.length src in
  let anns = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let buf = Buffer.create 64 in
  let next c = if c = '\n' then incr line in
  let rec skip_string () =
    (* body of a string literal; handles escapes *)
    if !i < n then begin
      let c = src.[!i] in
      next c;
      if c = '\\' && !i + 1 < n then begin
        next src.[!i + 1];
        i := !i + 2;
        skip_string ()
      end
      else begin
        incr i;
        if c <> '"' then skip_string ()
      end
    end
  in
  let rec in_comment depth =
    (* collect comment text; comments nest *)
    if !i < n then
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        Buffer.add_string buf "(*";
        i := !i + 2;
        in_comment (depth + 1)
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        i := !i + 2;
        if depth > 1 then begin
          Buffer.add_string buf "*)";
          in_comment (depth - 1)
        end
      end
      else begin
        let c = src.[!i] in
        next c;
        Buffer.add_char buf c;
        incr i;
        in_comment depth
      end
  in
  while !i < n do
    let c = src.[!i] in
    if !i + 1 < n && c = '(' && src.[!i + 1] = '*' then begin
      i := !i + 2;
      Buffer.clear buf;
      in_comment 1;
      (* attach to the line the comment ends on, so a trailing
         single-line annotation covers its own line and a comment block
         directly above the offending line still matches *)
      match annotation_of_comment (Buffer.contents buf) with
      | Some rules -> anns := (!line, rules) :: !anns
      | None -> ()
    end
    else if c = '"' then begin
      incr i;
      skip_string ()
    end
    else if
      (* char literal: skip '"' and escaped forms so the quote inside
         does not open a bogus string *)
      c = '\''
      && ((!i + 2 < n && src.[!i + 2] = '\'')
         || (!i + 1 < n && src.[!i + 1] = '\\'))
    then begin
      let j = ref (!i + 1) in
      if src.[!j] = '\\' then incr j;
      (* advance past the closing quote *)
      while !j < n && src.[!j] <> '\'' do
        next src.[!j];
        incr j
      done;
      i := !j + 1
    end
    else begin
      next c;
      incr i
    end
  done;
  List.rev !anns

let annotation_match (anns : annotations) ~line rule =
  let rec go = function
    | [] -> None
    | (l, rules) :: rest ->
      if
        (l = line || l = line - 1)
        && match rules with None -> true | Some rs -> List.mem rule rs
      then Some l
      else go rest
  in
  go anns

let annotation_allows (anns : annotations) ~line rule =
  annotation_match anns ~line rule <> None

let annotation_sites (anns : annotations) = List.map fst anns
