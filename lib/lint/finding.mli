(** A single lint finding and the rule catalogue.

    Rules come in two families: the syntactic R1–R5 (Parsetree, no build
    needed) and the typed T1–T4 (Typedtree over [.cmt] files, see
    {!Typed}).  A finding optionally carries a [chain]: the
    interprocedural path (source → call chain → sink) that produced it,
    with a source position at every hop. *)

type rule = R1 | R2 | R3 | R4 | R5 | T1 | T2 | T3 | T4

type hop = { hop_file : string; hop_line : int; hop_col : int; hop_sym : string }

type t = {
  file : string;  (** path as given to the scanner (normalized separators) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  rule : rule;
  msg : string;
  chain : hop list;  (** interprocedural path, sink-first; [] for R-rules *)
}

val rule_id : rule -> string
(** ["R1"] .. ["T4"]. *)

val rule_title : rule -> string
(** Short human name, e.g. ["determinism taint"]. *)

val rule_doc : rule -> string
(** One-paragraph description used by [lb_lint --rules] / [--explain]. *)

val all_rules : rule list
(** In catalogue order R1..R5, T1..T4. *)

val rule_of_string : string -> rule option
(** Accepts ids ("R1", "T3", case-insensitive) and aliases
    ("determinism", "taint", "wire", "domain", ...). *)

val make :
  ?chain:hop list ->
  file:string ->
  line:int ->
  col:int ->
  rule:rule ->
  msg:string ->
  unit ->
  t

val to_string : t -> string
(** [path:line:col: [Rn] message] — the stable diagnostic format
    (chain not included; see {!chain_to_strings}). *)

val chain_to_strings : t -> string list
(** Indented trace-path lines, one per hop, printed under {!to_string}. *)

val to_jsonl : t -> string
(** One-line JSON object: {"kind":"finding",...,"chain":[...]}. *)

val json_escape : string -> string
(** Escape a string for embedding in JSON string literals. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule) for stable output. *)
