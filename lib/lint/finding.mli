(** Lint findings: what a rule reported, and where.

    Rules are identified by a small closed enum so that suppression
    (annotations, allowlist file) and reporting stay table-driven. *)

type rule = R1 | R2 | R3 | R4 | R5

type t = {
  file : string;  (** path as given to the scanner (normalized separators) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  rule : rule;
  msg : string;
}

val rule_id : rule -> string
(** ["R1"] .. ["R5"]. *)

val rule_title : rule -> string
(** Short human name, e.g. ["determinism"]. *)

val rule_doc : rule -> string
(** One-paragraph description used by [lb_lint --rules]. *)

val all_rules : rule list
(** In catalogue order R1..R5. *)

val rule_of_string : string -> rule option
(** Accepts ids ("R1", case-insensitive) and aliases
    ("determinism", "float", "total", "mli", "io", ...). *)

val make : file:string -> line:int -> col:int -> rule:rule -> msg:string -> t

val to_string : t -> string
(** [path:line:col: [Rn] message] — the stable diagnostic format. *)

val compare : t -> t -> int
(** Orders by (file, line, col, rule) for stable output. *)
