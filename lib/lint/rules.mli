(** The rule catalogue applied to a parsed implementation file. *)

type scope = Lib | Bin | Other
(** Which rule set applies: [Lib] gets R1/R2/R3/R5 (R4 is checked by the
    scanner from the filesystem), [Bin] gets R2 only, [Other] nothing. *)

val scope_of_path : string -> scope
(** Classify by path components: a ["lib"] component (or a path under a
    directory named [lib]) is [Lib]; ["bin"] is [Bin]; test files
    ([test] component or [test_*.ml]) and everything else are [Other]. *)

val check_structure :
  file:string -> scope:scope -> Parsetree.structure -> Finding.t list
(** Run the AST-level rules (R1/R2/R3/R5) over one implementation.
    Findings are unsuppressed — the scanner applies annotations and the
    allowlist. Sorted by position. *)
