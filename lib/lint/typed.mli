(** The typed, interprocedural pass: loads [.cmt] trees ({!Cmts}), builds
    the cross-module call graph ({!Callgraph}), and runs the T1–T4 rule
    families on top of the syntactic R1–R5 scan, with stale-waiver
    accounting across both passes.

    - {b T1 determinism taint}: timing/randomness sources propagated
      through the call graph; flagged when a tainted function lives in —
      or feeds — a replay-critical sink module.
    - {b T2 domain safety}: unprotected mutable state captured by
      [Domain.spawn] closures.
    - {b T3 wire/versioning contract}: wildcard dispatch over the wire
      type, and structural fingerprint + version checked against a
      recorded contract file.
    - {b T4 exit-code contract}: every [exit n] in bin/ must use a
      documented code or a sanctioned returner; lib/ must never exit. *)

type wire_spec = {
  wire_module : string;  (** e.g. ["Dist.Msg"] *)
  wire_type : string;  (** e.g. ["t"] *)
  wire_version : string;  (** version binding name, e.g. ["version"] *)
  wire_contract : string;  (** root-relative contract file *)
}

type config = {
  root : string;  (** repository root; findings are reported relative to it *)
  build_dir : string;  (** where the cmts live, default [_build/default] *)
  roots : string list;  (** source roots to analyze, default [lib; bin] *)
  allow : Allow.t;
  allow_path : string option;  (** for stale-waiver reporting *)
  prim_sources : string list;  (** exact taint-source symbols *)
  prim_prefixes : string list;  (** taint-source symbol prefixes *)
  source_files : string list;  (** files whose defs are taint roots *)
  cut_files : string list;  (** files where taint propagation stops *)
  sink_modules : string list;  (** replay-critical modules *)
  spawn_fns : string list;  (** domain-spawn entry points *)
  mutable_heads : string list;  (** type heads considered mutable *)
  safe_heads : string list;  (** type heads considered domain-safe *)
  wire : wire_spec list;
  exit_contract : string option;  (** root-relative exit contract file *)
}

val default_config :
  ?root:string -> ?allow_path:string -> allow:Allow.t -> unit -> config
(** The repository's own policy: clock.ml as taint root, prng/prof/probe/
    checkpoint as cuts, the engines + Trace + Checkpoint + Wal as sinks,
    [bin/wire_contract] and [bin/exit_contract] as recorded contracts. *)

type stale = { sw_where : string; sw_detail : string }
(** A waiver (allow-list entry or in-source annotation) that suppressed
    zero findings across both passes — dead weight to prune. *)

type report = {
  findings : Finding.t list;  (** merged syntactic + typed, sorted *)
  stale : stale list;
  errors : Scan.error list;
  units : int;  (** cmt units analyzed *)
  files : int;  (** source files syntactically scanned *)
}

val run : config -> (report, string) result
(** Full pass. [Error] for setup problems: unreadable roots, or missing
    [.cmt] files (suggests [dune build @check]). *)

val write_wire_contract : config -> (string list, string) result
(** Record the current wire fingerprint(s) and version(s) into the
    contract file(s); returns the root-relative paths written. *)
