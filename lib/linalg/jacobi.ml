type decomposition = {
  eigenvalues : float array;
  eigenvectors : Mat.t;
}

let off_diagonal_norm a n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = Mat.get a i j in
        s := !s +. (v *. v)
      end
    done
  done;
  sqrt !s

let decompose ?(max_sweeps = 100) ?(tol = 1e-12) m =
  if not (Mat.is_symmetric ~eps:1e-9 m) then
    invalid_arg "Jacobi.decompose: matrix is not symmetric";
  let n = Mat.dim m in
  let a = Mat.init n (fun i j -> Mat.get m i j) in
  let v = Mat.identity n in
  let rotate p q =
    let apq = Mat.get a p q in
    if abs_float apq > 1e-300 then begin
      let app = Mat.get a p p and aqq = Mat.get a q q in
      let theta = (aqq -. app) /. (2.0 *. apq) in
      (* Stable tangent choice: smaller root. *)
      let t =
        let sign = if theta >= 0.0 then 1.0 else -1.0 in
        sign /. (abs_float theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      let tau = s /. (1.0 +. c) in
      Mat.set a p p (app -. (t *. apq));
      Mat.set a q q (aqq +. (t *. apq));
      Mat.set a p q 0.0;
      Mat.set a q p 0.0;
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          let aip = Mat.get a i p and aiq = Mat.get a i q in
          let aip' = aip -. (s *. (aiq +. (tau *. aip))) in
          let aiq' = aiq +. (s *. (aip -. (tau *. aiq))) in
          Mat.set a i p aip';
          Mat.set a p i aip';
          Mat.set a i q aiq';
          Mat.set a q i aiq'
        end;
        let vip = Mat.get v i p and viq = Mat.get v i q in
        Mat.set v i p (vip -. (s *. (viq +. (tau *. vip))));
        Mat.set v i q (viq +. (s *. (vip -. (tau *. viq))))
      done
    end
  in
  let sweeps = ref 0 in
  while off_diagonal_norm a n > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  (* Sort eigenpairs in descending eigenvalue order. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (Mat.get a j j) (Mat.get a i i)) order;
  {
    eigenvalues = Array.map (fun i -> Mat.get a i i) order;
    eigenvectors = Mat.init n (fun i j -> Mat.get v i order.(j));
  }

let reconstruct { eigenvalues; eigenvectors = x } =
  let n = Array.length eigenvalues in
  let xl = Mat.init n (fun i j -> Mat.get x i j *. eigenvalues.(j)) in
  Mat.mul xl (Mat.transpose x)

let eigenvalues_of_transition p = (decompose (Csr.to_dense p)).eigenvalues
