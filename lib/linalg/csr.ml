type t = {
  n : int;
  row_ptr : int array; (* length n+1 *)
  col : int array;
  value : float array;
}

let of_triplets ~n entries =
  if n < 0 then invalid_arg "Csr.of_triplets: negative dimension";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Csr.of_triplets: index out of range")
    entries;
  (* Sort by (row, col) and merge duplicates. *)
  let arr = Array.of_list entries in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) ->
      if i1 <> i2 then Int.compare i1 i2 else Int.compare j1 j2)
    arr;
  let merged = ref [] in
  Array.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i' = i && j' = j -> merged := (i, j, v +. v') :: rest
      | _ -> merged := (i, j, v) :: !merged)
    arr;
  let cells = Array.of_list (List.rev !merged) in
  let nnz = Array.length cells in
  let row_ptr = Array.make (n + 1) 0 in
  Array.iter (fun (i, _, _) -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1) cells;
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col = Array.make nnz 0 and value = Array.make nnz 0.0 in
  Array.iteri
    (fun k (_, j, v) ->
      col.(k) <- j;
      value.(k) <- v)
    cells;
  { n; row_ptr; col; value }

let dim m = m.n
let nnz m = Array.length m.col

let get m i j =
  if i < 0 || i >= m.n || j < 0 || j >= m.n then invalid_arg "Csr.get";
  let res = ref 0.0 in
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    if m.col.(k) = j then res := m.value.(k)
  done;
  !res

let mul_vec_into m x out =
  if Array.length x <> m.n || Array.length out <> m.n then
    invalid_arg "Csr.mul_vec_into: dimension mismatch";
  for i = 0 to m.n - 1 do
    let s = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      s := !s +. (m.value.(k) *. x.(m.col.(k)))
    done;
    out.(i) <- !s
  done

let mul_vec m x =
  let out = Array.make m.n 0.0 in
  mul_vec_into m x out;
  out

let row_sums m =
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
        s := !s +. m.value.(k)
      done;
      !s)

let to_dense m =
  let d = Mat.make m.n 0.0 in
  for i = 0 to m.n - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Mat.set d i m.col.(k) (Mat.get d i m.col.(k) +. m.value.(k))
    done
  done;
  d

let iter_row m i f =
  if i < 0 || i >= m.n then invalid_arg "Csr.iter_row";
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col.(k) m.value.(k)
  done
