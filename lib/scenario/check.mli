(** The static checker: from a concrete (variable-free) scenario to a
    fully typed run description, or a positioned error.

    Checking enforces the cross-clause typing rules the individual
    engines only discover at run time (or not at all):

    - exactly one horizon: [steps] (closed system) xor [rounds]
      (open system / cluster);
    - [arrivals]/[lifetime]/[warmup]/[workload-seed] require [rounds];
    - a [net] clause needs at least one channel field — [staleness]
      alone is rejected ("staleness without a net layer");
    - [partition] requires a [dist] clause (no distributed run to cut);
    - [dist] excludes the in-process layers ([net], [faults],
      [arrivals], …) and requires [rounds];
    - every numeric value is range-checked against the target engine's
      documented preconditions (drop < 1, crash fraction ≤ 1, fault
      steps inside the horizon, arrival nodes inside the graph, …);
    - the [mimic] balancer is closed-system, fault-free only (it
      simulates the continuous process from the same start, which
      arrivals and crashes invalidate).

    The result is the compiler's input: plain OCaml values with every
    default applied, no scalars left. *)

type arrival =
  | Uniform of int
  | Poisson of float
  | Point of { node : int; batch : int }
  | Hotspot of int
  | Flash of { size : int; at : int; node : int; width : int }
  | Diurnal of { period : int; amplitude : float; body : arrival }
  | Plus of arrival * arrival

type lifetime =
  | Immortal
  | Work of int
  | Service of int
  | Geometric of float
  | Fixed of int

type warmup = Auto | Fixed_warmup of int

type net = {
  channel : Net.Channel.config;
  staleness : int;
  degrade : bool;
  net_seed : int;
}

type cluster = {
  shards : int;
  cluster_faults : Dist.Super.fault list;
  cluster_drop : float;
  delay_prob : float;
  delay_max : float;
  partitions : Dist.Loss.window list;
}

type run =
  | Closed of { steps : int; faults : Faults.Schedule.spec list; net : net option }
  | Open of {
      rounds : int;
      arrival : arrival;
      lifetime : lifetime;
      warmup : warmup;
      workload_seed : int;
      faults : Faults.Schedule.spec list;
      net : net option;
    }
  | Cluster of { rounds : int; cluster : cluster }

type typed = {
  graph : Harness.Experiment.graph_spec;
  init : Harness.Experiment.init_spec;
  algo_name : string;
  self_loops : int option;
  algo_seed : int option;
  fault_seed : int;  (** the [seed] clause; realizes fault plans *)
  run : run;
}

val nodes : Harness.Experiment.graph_spec -> int
(** Network size implied by a graph spec (2^r for hypercubes, side²
    for tori, …). *)

val scenario : at:Ast.pos -> Ast.scenario -> (typed, string * Ast.pos) result
(** Check one concrete scenario.  [at] positions errors that have no
    clause to point at (e.g. a missing [graph]).  Scenarios must be
    variable-free: a surviving [$var] reports "unbound sweep
    variable". *)
