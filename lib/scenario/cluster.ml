open Ast

let i = int_scalar
let f = float_scalar

let graph_of_spec : Harness.Experiment.graph_spec -> graph = function
  | Harness.Experiment.Cycle n -> Cycle (i n)
  | Harness.Experiment.Torus2d side -> Torus (i side, i side)
  | Harness.Experiment.Hypercube r -> Hypercube (i r)
  | Harness.Experiment.Complete n -> Complete (i n)
  | Harness.Experiment.Clique_circulant { n; d } -> Clique (i n, i d)
  | Harness.Experiment.Random_regular { n; d; seed } -> Random (i n, i d, i seed)

let init_of_spec : Harness.Experiment.init_spec -> init = function
  | Harness.Experiment.Point_mass t -> Point (i t)
  | Harness.Experiment.Bimodal { high; low } -> Bimodal (i high, i low)
  | Harness.Experiment.Uniform_random { total; seed } -> Uniform_random (i total, i seed)

let file (sc : Dist.Chaos.scenario) =
  match
    ( Harness.Experiment.graph_of_string sc.graph,
      Harness.Experiment.init_of_string sc.init )
  with
  | Error e, _ | _, Error e -> Error e
  | Ok gspec, Ok ispec ->
    let kills, terms, coord_kills =
      List.fold_left
        (fun (k, t, c) fault ->
          match fault with
          | Dist.Super.Kill_shard { shard; round } -> (k @ [ (i shard, i round) ], t, c)
          | Dist.Super.Term_shard { shard; round } -> (k, t @ [ (i shard, i round) ], c)
          | Dist.Super.Kill_coord { round } -> (k, t, c @ [ i round ]))
        ([], [], []) sc.faults
    in
    let opt_pos v = if v > 0.0 then Some (f v) else None in
    let dist =
      { shards = Some (i sc.shards);
        kills;
        terms;
        coord_kills;
        dist_drop = opt_pos sc.drop;
        delay_prob = opt_pos sc.delay_prob;
        delay_max = (if sc.delay_prob > 0.0 then Some (f sc.delay_max) else None) }
    in
    let cl c = { c; cpos = no_pos } in
    let clauses =
      [ cl (Graph (graph_of_spec gspec));
        cl (Init (init_of_spec ispec));
        cl (Balancer { bname = sc.algo; self_loops = None; algo_seed = None });
        cl (Rounds (i sc.rounds));
        cl (Seed (i sc.seed));
        cl (Dist dist) ]
      @ List.map
          (fun (w : Dist.Loss.window) ->
            cl
              (Partition
                 { cut = List.map i w.cut; from_s = f w.from_s; until_s = f w.until_s }))
          sc.partitions
    in
    Ok
      [ { dname = "main";
          dpos = no_pos;
          body = { e = Scenario clauses; epos = no_pos } } ]

let to_string sc = Result.map Pretty.file (file sc)
