open Ast

type arrival =
  | Uniform of int
  | Poisson of float
  | Point of { node : int; batch : int }
  | Hotspot of int
  | Flash of { size : int; at : int; node : int; width : int }
  | Diurnal of { period : int; amplitude : float; body : arrival }
  | Plus of arrival * arrival

type lifetime =
  | Immortal
  | Work of int
  | Service of int
  | Geometric of float
  | Fixed of int

type warmup = Auto | Fixed_warmup of int

type net = {
  channel : Net.Channel.config;
  staleness : int;
  degrade : bool;
  net_seed : int;
}

type cluster = {
  shards : int;
  cluster_faults : Dist.Super.fault list;
  cluster_drop : float;
  delay_prob : float;
  delay_max : float;
  partitions : Dist.Loss.window list;
}

type run =
  | Closed of { steps : int; faults : Faults.Schedule.spec list; net : net option }
  | Open of {
      rounds : int;
      arrival : arrival;
      lifetime : lifetime;
      warmup : warmup;
      workload_seed : int;
      faults : Faults.Schedule.spec list;
      net : net option;
    }
  | Cluster of { rounds : int; cluster : cluster }

type typed = {
  graph : Harness.Experiment.graph_spec;
  init : Harness.Experiment.init_spec;
  algo_name : string;
  self_loops : int option;
  algo_seed : int option;
  fault_seed : int;
  run : run;
}

exception Reject of string * pos

let fail pos fmt = Printf.ksprintf (fun m -> raise (Reject (m, pos))) fmt

(* ---- scalar extraction ---- *)

let as_int what s =
  match s.sv with
  | Int k -> k
  | Float _ -> fail s.spos "%s must be an integer" what
  | Var v -> fail s.spos "unbound sweep variable '$%s' (in %s)" v what

let as_float what s =
  match s.sv with
  | Int k -> float_of_int k
  | Float f ->
    if Float.is_nan f || not (Float.is_finite f) then
      fail s.spos "%s must be a finite number" what
    else f
  | Var v -> fail s.spos "unbound sweep variable '$%s' (in %s)" v what

let int_min what lo s =
  let k = as_int what s in
  if k < lo then fail s.spos "%s must be >= %d (got %d)" what lo k;
  k

let float_min what lo s =
  let f = as_float what s in
  if f < lo then fail s.spos "%s must be >= %g (got %g)" what lo f;
  f

let prob what s =
  let f = as_float what s in
  if f < 0.0 || f > 1.0 then fail s.spos "%s must be in [0, 1] (got %g)" what f;
  f

let prob_lt1 what s =
  let f = as_float what s in
  if f < 0.0 || f >= 1.0 then fail s.spos "%s must be in [0, 1) (got %g)" what f;
  f

(* ---- graph / init / balancer ---- *)

let nodes = function
  | Harness.Experiment.Cycle n -> n
  | Harness.Experiment.Torus2d side -> side * side
  | Harness.Experiment.Hypercube r -> 1 lsl r
  | Harness.Experiment.Random_regular { n; _ } -> n
  | Harness.Experiment.Complete n -> n
  | Harness.Experiment.Clique_circulant { n; _ } -> n

let check_graph pos = function
  | Cycle n -> Harness.Experiment.Cycle (int_min "cycle size" 3 n)
  | Torus (a, b) ->
    let a' = int_min "torus side" 3 a and b' = int_min "torus side" 3 b in
    if a' <> b' then
      fail pos "torus sides must be equal (the harness grammar is torus:NxN), got %dx%d"
        a' b';
    Harness.Experiment.Torus2d a'
  | Hypercube r ->
    let r' = int_min "hypercube dimension" 1 r in
    if r' > 16 then fail r.spos "hypercube dimension must be <= 16 (got %d)" r';
    Harness.Experiment.Hypercube r'
  | Complete n -> Harness.Experiment.Complete (int_min "complete-graph size" 2 n)
  | Clique (n, d) ->
    let n' = int_min "clique-circulant size" 2 n in
    let d' = int_min "clique-circulant degree" 1 d in
    if n' <= 2 * (d' / 2) then
      fail pos "clique(%d, %d) needs n > 2*(d/2)" n' d';
    if d' mod 2 = 1 && n' mod 2 = 1 then
      fail pos "clique with odd degree %d needs an even n (antipodal matching)" d';
    Harness.Experiment.Clique_circulant { n = n'; d = d' }
  | Random (n, d, s) ->
    let n' = int_min "random-regular size" 4 n in
    let d' = int_min "random-regular degree" 3 d in
    if d' >= n' then fail d.spos "random-regular degree must be < n (got d=%d, n=%d)" d' n';
    if n' * d' mod 2 = 1 then fail pos "random(%d, %d): n*d must be even" n' d';
    Harness.Experiment.Random_regular { n = n'; d = d'; seed = as_int "graph seed" s }

let check_init = function
  | Ast.Point t -> Harness.Experiment.Point_mass (int_min "init total" 0 t)
  | Ast.Bimodal (h, l) ->
    Harness.Experiment.Bimodal
      { high = int_min "bimodal high" 0 h; low = int_min "bimodal low" 0 l }
  | Ast.Uniform_random (t, s) ->
    Harness.Experiment.Uniform_random
      { total = int_min "init total" 0 t; seed = as_int "init seed" s }

let degree = function
  | Harness.Experiment.Cycle _ -> 2
  | Harness.Experiment.Torus2d _ -> 4
  | Harness.Experiment.Hypercube r -> r
  | Harness.Experiment.Random_regular { d; _ } -> d
  | Harness.Experiment.Complete n -> n - 1
  | Harness.Experiment.Clique_circulant { d; _ } -> d

let check_balancer pos ~degree (b : Ast.balancer) =
  (match Harness.Experiment.algo_of_string b.bname with
  | Ok _ -> ()
  | Error m -> fail pos "%s" m);
  let self_loops = Option.map (int_min "self-loops" 0) b.self_loops in
  (* the d° override each constructor will actually accept *)
  (match (b.bname, self_loops) with
  | "rotor-router-star", Some _ ->
    fail pos "rotor-router-star takes no self-loops override (d° = d is the scheme)"
  | ("send-floor" | "random-rounding" | "mimic"), Some k when k < 1 ->
    fail pos "%s needs self-loops >= 1 (a loop holds the residue)" b.bname
  | "send-round", Some k when k < degree ->
    fail pos "send-round needs self-loops >= the graph degree %d (they absorb the rounding)"
      degree
  | _ -> ());
  (match (b.bname, b.algo_seed) with
  | ("random-extra" | "random-rounding"), _ | _, None -> ()
  | _, Some s ->
    fail s.spos "algo-seed only applies to the randomized schemes (random-extra, \
                 random-rounding)");
  let algo_seed = Option.map (as_int "algo-seed") b.algo_seed in
  (b.bname, self_loops, algo_seed)

(* ---- workload ---- *)

let rec contains_windowed = function
  | Ast.Flash _ | Ast.Diurnal _ -> true
  | Ast.Plus (a, b) -> contains_windowed a || contains_windowed b
  | Ast.Uniform _ | Ast.Poisson _ | Ast.Point_arrival _ | Ast.Hotspot _ -> false

let rec check_arrival ~n ~rounds pos = function
  | Ast.Uniform k -> Uniform (int_min "uniform batch" 0 k)
  | Ast.Poisson r -> Poisson (float_min "poisson rate" 0.0 r)
  | Ast.Point_arrival (node, k) ->
    let node' = int_min "arrival node" 0 node in
    if node' >= n then
      fail node.spos "arrival node %d is outside the %d-node graph" node' n;
    Point { node = node'; batch = int_min "point batch" 0 k }
  | Ast.Hotspot k -> Hotspot (int_min "hotspot batch" 0 k)
  | Ast.Flash { size; at; node; width } ->
    let node' = int_min "flash node" 0 node in
    if node' >= n then fail node.spos "flash node %d is outside the %d-node graph" node' n;
    let at' = int_min "flash round" 1 at in
    if at' > rounds then
      fail at.spos "flash round %d is past the %d-round horizon" at' rounds;
    Flash
      { size = int_min "flash size" 0 size;
        at = at';
        node = node';
        width = (match width with None -> 1 | Some w -> int_min "flash width" 1 w) }
  | Ast.Diurnal { period; amplitude; body } ->
    if contains_windowed body then
      fail pos "diurnal cannot modulate a flash or diurnal source";
    Diurnal
      { period = int_min "diurnal period" 1 period;
        amplitude = prob "diurnal amplitude" amplitude;
        body = check_arrival ~n ~rounds pos body }
  | Ast.Plus (a, b) ->
    Plus (check_arrival ~n ~rounds pos a, check_arrival ~n ~rounds pos b)

let check_lifetime = function
  | Ast.Immortal -> Immortal
  | Ast.Work k -> Work (int_min "work attempts" 0 k)
  | Ast.Service r -> Service (int_min "service rate" 0 r)
  | Ast.Geometric m -> Geometric (float_min "geometric mean" 1.0 m)
  | Ast.Fixed r -> Fixed (int_min "fixed lifetime" 1 r)

(* ---- faults / net / dist ---- *)

let check_fault ~n ~horizon it =
  match it.f with
  | Crash { frac; step; state; tokens } ->
    let step' = int_min "crash step" 1 step in
    if step' > horizon then
      fail step.spos "crash step %d is past the %d-step horizon" step' horizon;
    Faults.Schedule.Crash_fraction
      { fraction = prob "crash fraction" frac;
        step = step';
        state = (match state with Wipe -> Faults.Schedule.Wipe_state | Keep -> Keep_state);
        tokens = (match tokens with Lose -> Faults.Schedule.Lose_tokens | Spill -> Spill_tokens) }
  | Outage { rate; step; duration } ->
    let step' = int_min "outage step" 1 step in
    let duration' = int_min "outage duration" 1 duration in
    if step' + duration' - 1 > horizon then
      fail step.spos "outage through step %d is past the %d-step horizon"
        (step' + duration' - 1)
        horizon;
    Faults.Schedule.Edge_outage_rate { rate = prob "outage rate" rate; step = step'; duration = duration' }
  | Shock { amount; step; node } ->
    let step' = int_min "shock step" 1 step in
    if step' > horizon then
      fail step.spos "shock step %d is past the %d-step horizon" step' horizon;
    let node' =
      Option.map
        (fun s ->
          let k = int_min "shock node" 0 s in
          if k >= n then fail s.spos "shock node %d is outside the %d-node graph" k n;
          k)
        node
    in
    Faults.Schedule.Shock { node = node'; amount = int_min "shock amount" 0 amount; step = step' }

let check_net pos (a : Ast.net) =
  let has_channel_field =
    a.drop <> None || a.dup <> None || a.reorder <> None || a.delay <> None
  in
  if not has_channel_field then
    if a.staleness <> None then
      fail pos "staleness without a net layer (add drop, dup, reorder or delay)"
    else
      fail pos "net clause needs at least one channel field (drop, dup, reorder, delay)";
  let channel =
    { Net.Channel.drop = (match a.drop with None -> 0.0 | Some s -> prob_lt1 "net drop" s);
      dup = (match a.dup with None -> 0.0 | Some s -> prob "net dup" s);
      reorder = (match a.reorder with None -> 0.0 | Some s -> prob "net reorder" s);
      delay = (match a.delay with None -> 0 | Some s -> int_min "net delay" 0 s) }
  in
  { channel;
    staleness = (match a.staleness with None -> 0 | Some s -> int_min "staleness" 0 s);
    degrade = (match a.degrade with None | Some On -> true | Some Off -> false);
    net_seed = (match a.net_seed with None -> 1 | Some s -> as_int "net seed" s) }

let check_dist pos ~rounds (d : Ast.dist) ~partitions =
  let shards =
    match d.shards with
    | None -> fail pos "dist needs a shards field"
    | Some s ->
      let k = int_min "shards" 2 s in
      if k > 16 then fail s.spos "shards must be <= 16 (got %d)" k;
      k
  in
  let shard_round what (s, r) =
    let sh = int_min (what ^ " shard") 0 s in
    if sh >= shards then
      fail s.spos "%s shard %d is outside the %d-shard cluster" what sh shards;
    let rd = int_min (what ^ " round") 1 r in
    if rd > rounds then
      fail r.spos "%s round %d is past the %d-round horizon" what rd rounds;
    (sh, rd)
  in
  let kills =
    List.map
      (fun p ->
        let shard, round = shard_round "kill" p in
        Dist.Super.Kill_shard { shard; round })
      d.kills
  in
  let terms =
    List.map
      (fun p ->
        let shard, round = shard_round "term" p in
        Dist.Super.Term_shard { shard; round })
      d.terms
  in
  let coord_kills =
    List.map
      (fun r ->
        let rd = int_min "kill-coord round" 1 r in
        if rd > rounds then
          fail r.spos "kill-coord round %d is past the %d-round horizon" rd rounds;
        Dist.Super.Kill_coord { round = rd })
      d.coord_kills
  in
  let windows =
    List.map
      (fun (p : Ast.partition) ->
        if p.cut = [] then fail pos "partition cut is empty";
        let cut =
          List.map
            (fun s ->
              let k = int_min "partition shard" 0 s in
              if k >= shards then
                fail s.spos "partition shard %d is outside the %d-shard cluster" k shards;
              k)
            p.cut
        in
        let distinct = List.sort_uniq Int.compare cut in
        if List.length distinct <> List.length cut then
          fail pos "partition cut lists a shard twice";
        if List.length cut >= shards then
          fail pos "partition cut must leave a majority side (cut %d of %d shards)"
            (List.length cut) shards;
        let from_s = float_min "partition start" 0.0 p.from_s in
        let until_s = float_min "partition end" 0.0 p.until_s in
        if until_s <= from_s then
          fail p.until_s.spos "partition window must end after it starts (%g .. %g)"
            from_s until_s;
        { Dist.Loss.cut; from_s; until_s })
      partitions
  in
  { shards;
    cluster_faults = kills @ terms @ coord_kills;
    cluster_drop = (match d.dist_drop with None -> 0.0 | Some s -> prob_lt1 "dist drop" s);
    delay_prob = (match d.delay_prob with None -> 0.0 | Some s -> prob "dist delay-prob" s);
    delay_max = (match d.delay_max with None -> 0.0 | Some s -> float_min "dist delay-max" 0.0 s);
    partitions = windows }

(* ---- the scenario rule ---- *)

type slot = { v : clause_v; pos : pos }

let scenario ~at (sc : Ast.scenario) =
  try
    (* one slot per clause kind, duplicates rejected; [partition] is
       the one repeatable clause (several windows may cut a cluster) *)
    let partition_clauses : (partition * pos) list ref = ref [] in
    let slots : (string * slot) list ref = ref [] in
    List.iter
      (fun cl ->
        match cl.c with
        | Partition p -> partition_clauses := !partition_clauses @ [ (p, cl.cpos) ]
        | _ ->
          let kind = clause_kind cl.c in
          (match List.assoc_opt kind !slots with
          | Some prev ->
            fail cl.cpos "duplicate '%s' clause (first at %d:%d)" kind prev.pos.line
              prev.pos.col
          | None -> ());
          slots := !slots @ [ (kind, { v = cl.c; pos = cl.cpos }) ])
      sc;
    let find kind = List.assoc_opt kind !slots in
    let require kind =
      match find kind with
      | Some s -> s
      | None -> fail at "scenario is missing its '%s' clause" kind
    in
    let graph_slot = require "graph" in
    let graph =
      match graph_slot.v with
      | Graph g -> check_graph graph_slot.pos g
      | _ -> fail graph_slot.pos "internal: graph slot mismatch"
    in
    let n = nodes graph in
    let init_slot = require "init" in
    let init =
      match init_slot.v with
      | Init i -> check_init i
      | _ -> fail init_slot.pos "internal: init slot mismatch"
    in
    let bal_slot = require "balancer" in
    let algo_name, self_loops, algo_seed =
      match bal_slot.v with
      | Balancer b -> check_balancer bal_slot.pos ~degree:(degree graph) b
      | _ -> fail bal_slot.pos "internal: balancer slot mismatch"
    in
    let fault_seed =
      match find "seed" with
      | Some { v = Seed s; _ } -> as_int "seed" s
      | _ -> 1
    in
    let steps_c = find "steps" and rounds_c = find "rounds" in
    let dist_c = find "dist" in
    let net_c = find "net" and faults_c = find "faults" in
    let open_clauses =
      List.filter_map
        (fun k -> Option.map (fun s -> (k, s)) (find k))
        [ "arrivals"; "lifetime"; "warmup"; "workload-seed" ]
    in
    (match (steps_c, rounds_c) with
    | Some _, Some { pos; _ } ->
      fail pos "steps and rounds are mutually exclusive (closed vs open horizon)"
    | None, None -> fail at "scenario needs a horizon: steps (closed) or rounds (open)"
    | _ -> ());
    (match (!partition_clauses, dist_c) with
    | (_, pos) :: _, None ->
      fail pos "partition requires a dist clause (no distributed run to cut)"
    | _ -> ());
    let run =
      match dist_c with
      | Some { v = Dist d; pos = dpos } ->
        List.iter
          (fun (k, (s : slot)) ->
            fail s.pos "dist runs cannot also have a '%s' clause (shards own the %s layer)"
              k
              (if k = "net" || k = "faults" then "fault/loss" else "workload"))
          (List.filter_map
             (fun k -> Option.map (fun s -> (k, s)) (find k))
             ([ "net"; "faults"; "steps" ] @ List.map fst open_clauses));
        let rounds =
          match rounds_c with
          | Some { v = Rounds r; _ } -> int_min "rounds" 1 r
          | _ -> fail dpos "dist needs a rounds horizon"
        in
        if self_loops <> None || algo_seed <> None then
          fail bal_slot.pos
            "dist runs take the balancer name only (self-loops/algo-seed do not cross \
             the process boundary)";
        Cluster
          { rounds;
            cluster = check_dist dpos ~rounds d ~partitions:(List.map fst !partition_clauses) }
      | _ ->
        let faults_of horizon =
          match faults_c with
          | Some { v = Faults []; pos } -> fail pos "faults clause is empty"
          | Some { v = Faults fs; _ } -> List.map (check_fault ~n ~horizon) fs
          | _ -> []
        in
        let net =
          match net_c with
          | Some { v = Net a; pos } -> Some (check_net pos a)
          | _ -> None
        in
        (match steps_c with
        | Some { v = Steps s; _ } ->
          (match open_clauses with
          | (k, slot) :: _ ->
            fail slot.pos "'%s' is an open-system clause; use rounds instead of steps" k
          | [] -> ());
          let steps = int_min "steps" 1 s in
          let faults = faults_of steps in
          if algo_name = "mimic" && (faults <> [] || net <> None) then
            fail bal_slot.pos
              "the mimic balancer is closed-system and fault-free only";
          Closed { steps; faults; net }
        | _ ->
          let rounds =
            match rounds_c with
            | Some { v = Rounds r; _ } -> int_min "rounds" 1 r
            | _ -> fail at "internal: horizon resolution"
          in
          let arrival =
            match find "arrivals" with
            | Some { v = Arrivals a; pos } -> check_arrival ~n ~rounds pos a
            | _ -> fail at "an open-system run (rounds) needs an arrivals clause"
          in
          if algo_name = "mimic" then
            fail bal_slot.pos "the mimic balancer is closed-system and fault-free only";
          let lifetime =
            match find "lifetime" with
            | Some { v = Lifetime l; _ } -> check_lifetime l
            | _ -> Immortal
          in
          let warmup =
            match find "warmup" with
            | Some { v = Warmup Ast.Auto; _ } -> Auto
            | Some { v = Warmup (Ast.Fixed_rounds k); _ } ->
              Fixed_warmup (int_min "warmup" 0 k)
            | _ -> Auto
          in
          let workload_seed =
            match find "workload-seed" with
            | Some { v = Workload_seed s; _ } -> as_int "workload-seed" s
            | _ -> 1
          in
          Open
            { rounds; arrival; lifetime; warmup; workload_seed;
              faults = faults_of rounds; net })
    in
    Ok { graph; init; algo_name; self_loops; algo_seed; fault_seed; run }
  with Reject (m, p) -> Error (m, p)
