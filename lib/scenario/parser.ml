open Ast

exception Err of string * pos

type st = { toks : Lexer.token array; mutable k : int }

let peek st = st.toks.(st.k)

let next st =
  let t = st.toks.(st.k) in
  (match t.Lexer.t with Lexer.EOF -> () | _ -> st.k <- st.k + 1);
  t

let fail pos fmt = Printf.ksprintf (fun m -> raise (Err (m, pos))) fmt

let expect st tv what =
  let t = next st in
  if t.Lexer.t = tv then t.Lexer.tpos
  else fail t.Lexer.tpos "expected %s, got %s" what (Lexer.token_name t.Lexer.t)

let ident st what =
  let t = next st in
  match t.Lexer.t with
  | Lexer.IDENT s -> (s, t.Lexer.tpos)
  | tv -> fail t.Lexer.tpos "expected %s, got %s" what (Lexer.token_name tv)

let keyword st kw =
  let s, p = ident st (Printf.sprintf "'%s'" kw) in
  if s = kw then p else fail p "expected '%s', got identifier %S" kw s

let peek_ident st =
  match (peek st).Lexer.t with Lexer.IDENT s -> Some s | _ -> None

let reserved = [ "let"; "scenario"; "overlay"; "with"; "sweep"; "in"; "seq"; "experiment" ]

(* ---- scalars and argument lists ---- *)

let scalar st =
  let t = next st in
  match t.Lexer.t with
  | Lexer.INT k -> { sv = Int k; spos = t.Lexer.tpos }
  | Lexer.FLOAT f -> { sv = Float f; spos = t.Lexer.tpos }
  | Lexer.DOLLAR ->
    let n, _ = ident st "a variable name after '$'" in
    { sv = Var n; spos = t.Lexer.tpos }
  | tv ->
    fail t.Lexer.tpos "expected a number or '$var', got %s" (Lexer.token_name tv)

(* comma-separated scalars inside parentheses *)
let scalar_args st =
  let _ = expect st Lexer.LPAREN "'('" in
  let rec more acc =
    match (peek st).Lexer.t with
    | Lexer.COMMA ->
      let _ = next st in
      more (scalar st :: acc)
    | _ ->
      let _ = expect st Lexer.RPAREN "')'" in
      List.rev acc
  in
  more [ scalar st ]

let one_arg st what =
  match scalar_args st with
  | [ a ] -> a
  | a :: _ -> fail a.spos "%s takes exactly one argument" what
  | [] -> fail no_pos "%s takes exactly one argument" what

(* a single parenthesized scalar, e.g. self-loops(1) *)
let paren_scalar st =
  let _ = expect st Lexer.LPAREN "'('" in
  let s = scalar st in
  let _ = expect st Lexer.RPAREN "')'" in
  s

(* ---- clause payloads ---- *)

let graph_spec st =
  let name, p = ident st "a graph family" in
  let args = scalar_args st in
  let arity k = fail p "graph family '%s' expects %d argument(s)" name k in
  match (name, args) with
  | "cycle", [ n ] -> Graph (Cycle n)
  | "cycle", _ -> arity 1
  | "torus", [ a; b ] -> Graph (Torus (a, b))
  | "torus", _ -> arity 2
  | "hypercube", [ r ] -> Graph (Hypercube r)
  | "hypercube", _ -> arity 1
  | "complete", [ n ] -> Graph (Complete n)
  | "complete", _ -> arity 1
  | "clique", [ n; d ] -> Graph (Clique (n, d))
  | "clique", _ -> arity 2
  | "random", [ n; d; s ] -> Graph (Random (n, d, s))
  | "random", _ -> arity 3
  | _ -> fail p "unknown graph family '%s'" name

let init_spec st =
  let name, p = ident st "an initial-load kind" in
  let args = scalar_args st in
  let arity k = fail p "init '%s' expects %d argument(s)" name k in
  match (name, args) with
  | "point", [ t ] -> Init (Point t)
  | "point", _ -> arity 1
  | "bimodal", [ h; l ] -> Init (Bimodal (h, l))
  | "bimodal", _ -> arity 2
  | "random", [ t; s ] -> Init (Uniform_random (t, s))
  | "random", _ -> arity 2
  | _ -> fail p "unknown init kind '%s'" name

let balancer_spec st =
  let bname, _ = ident st "a balancer name" in
  let self_loops = ref None and algo_seed = ref None in
  let rec opts () =
    match peek_ident st with
    | Some "self-loops" ->
      let _, p = ident st "option" in
      if !self_loops <> None then fail p "duplicate self-loops option";
      self_loops := Some (paren_scalar st);
      opts ()
    | Some "algo-seed" ->
      let _, p = ident st "option" in
      if !algo_seed <> None then fail p "duplicate algo-seed option";
      algo_seed := Some (paren_scalar st);
      opts ()
    | _ -> ()
  in
  opts ();
  Balancer { bname; self_loops = !self_loops; algo_seed = !algo_seed }

let rec arrival_atom st =
  match (peek st).Lexer.t with
  | Lexer.LPAREN ->
    let _ = next st in
    let a = arrival_expr st in
    let _ = expect st Lexer.RPAREN "')'" in
    a
  | _ ->
    let name, p = ident st "an arrival kind" in
    let arity k = fail p "arrival '%s' expects %d argument(s)" name k in
    (match name with
    | "uniform" -> Uniform (one_arg st "uniform")
    | "poisson" -> Poisson (one_arg st "poisson")
    | "hotspot" -> Hotspot (one_arg st "hotspot")
    | "point" -> (
      match scalar_args st with
      | [ n; k ] -> Point_arrival (n, k)
      | _ -> arity 2)
    | "flash" -> (
      match scalar_args st with
      | [ size; at; node ] -> Flash { size; at; node; width = None }
      | [ size; at; node; w ] -> Flash { size; at; node; width = Some w }
      | _ -> fail p "arrival 'flash' expects 3 or 4 arguments")
    | "diurnal" ->
      let _ = expect st Lexer.LPAREN "'('" in
      let period = scalar st in
      let _ = expect st Lexer.COMMA "','" in
      let amplitude = scalar st in
      let _ = expect st Lexer.COMMA "','" in
      let body = arrival_expr st in
      let _ = expect st Lexer.RPAREN "')'" in
      Diurnal { period; amplitude; body }
    | _ -> fail p "unknown arrival kind '%s'" name)

and arrival_expr st =
  let rec plus acc =
    match (peek st).Lexer.t with
    | Lexer.PLUS ->
      let _ = next st in
      plus (Plus (acc, arrival_atom st))
    | _ -> acc
  in
  plus (arrival_atom st)

let lifetime_spec st =
  let name, p = ident st "a lifetime kind" in
  match name with
  | "immortal" -> Lifetime Immortal
  | "work" -> Lifetime (Work (one_arg st "work"))
  | "service" -> Lifetime (Service (one_arg st "service"))
  | "geometric" -> Lifetime (Geometric (one_arg st "geometric"))
  | "fixed" -> Lifetime (Fixed (one_arg st "fixed"))
  | _ -> fail p "unknown lifetime kind '%s'" name

let warmup_spec st =
  match peek_ident st with
  | Some "auto" ->
    let _ = next st in
    Warmup Auto
  | _ -> Warmup (Fixed_rounds (scalar st))

let fault_item st =
  let name, p = ident st "a fault kind" in
  match name with
  | "crash" ->
    let _ = expect st Lexer.LPAREN "'('" in
    let frac = scalar st in
    let _ = expect st Lexer.COMMA "','" in
    let step = scalar st in
    let _ = expect st Lexer.COMMA "','" in
    let state =
      match ident st "'wipe' or 'keep'" with
      | "wipe", _ -> Wipe
      | "keep", _ -> Keep
      | s, sp -> fail sp "expected 'wipe' or 'keep', got %S" s
    in
    let _ = expect st Lexer.COMMA "','" in
    let tokens =
      match ident st "'lose' or 'spill'" with
      | "lose", _ -> Lose
      | "spill", _ -> Spill
      | s, sp -> fail sp "expected 'lose' or 'spill', got %S" s
    in
    let _ = expect st Lexer.RPAREN "')'" in
    { f = Crash { frac; step; state; tokens }; fpos = p }
  | "outage" -> (
    match scalar_args st with
    | [ rate; step; duration ] -> { f = Outage { rate; step; duration }; fpos = p }
    | _ -> fail p "fault 'outage' expects 3 arguments (rate, step, duration)")
  | "shock" -> (
    match scalar_args st with
    | [ amount; step ] -> { f = Shock { amount; step; node = None }; fpos = p }
    | [ amount; step; node ] -> { f = Shock { amount; step; node = Some node }; fpos = p }
    | _ -> fail p "fault 'shock' expects 2 or 3 arguments (amount, step[, node])")
  | _ -> fail p "unknown fault kind '%s' (crash, outage or shock)" name

let faults_spec st =
  let _ = expect st Lexer.LBRACKET "'['" in
  let rec more acc =
    match (peek st).Lexer.t with
    | Lexer.SEMI ->
      let _ = next st in
      more (fault_item st :: acc)
    | _ ->
      let _ = expect st Lexer.RBRACKET "']'" in
      List.rev acc
  in
  Faults (more [ fault_item st ])

let net_spec st =
  let _ = expect st Lexer.LBRACE "'{'" in
  let n = ref empty_net in
  let dup_check field got p = if got then fail p "duplicate net field '%s'" field in
  let rec fields () =
    match (peek st).Lexer.t with
    | Lexer.RBRACE ->
      let _ = next st in
      ()
    | _ ->
      let name, p = ident st "a net field" in
      (match name with
      | "drop" ->
        dup_check name (!n.drop <> None) p;
        n := { !n with drop = Some (scalar st) }
      | "dup" ->
        dup_check name (!n.dup <> None) p;
        n := { !n with dup = Some (scalar st) }
      | "reorder" ->
        dup_check name (!n.reorder <> None) p;
        n := { !n with reorder = Some (scalar st) }
      | "delay" ->
        dup_check name (!n.delay <> None) p;
        n := { !n with delay = Some (scalar st) }
      | "staleness" ->
        dup_check name (!n.staleness <> None) p;
        n := { !n with staleness = Some (scalar st) }
      | "degrade" ->
        dup_check name (!n.degrade <> None) p;
        let v =
          match ident st "'on' or 'off'" with
          | "on", _ -> On
          | "off", _ -> Off
          | s, sp -> fail sp "expected 'on' or 'off', got %S" s
        in
        n := { !n with degrade = Some v }
      | "seed" ->
        dup_check name (!n.net_seed <> None) p;
        n := { !n with net_seed = Some (scalar st) }
      | _ -> fail p "unknown net field '%s'" name);
      fields ()
  in
  fields ();
  Net !n

let dist_spec st =
  let _ = expect st Lexer.LBRACE "'{'" in
  let d = ref empty_dist in
  let dup_check field got p = if got then fail p "duplicate dist field '%s'" field in
  let pair st =
    let _ = expect st Lexer.LPAREN "'('" in
    let a = scalar st in
    let _ = expect st Lexer.COMMA "','" in
    let b = scalar st in
    let _ = expect st Lexer.RPAREN "')'" in
    (a, b)
  in
  let rec fields () =
    match (peek st).Lexer.t with
    | Lexer.RBRACE ->
      let _ = next st in
      ()
    | _ ->
      let name, p = ident st "a dist field" in
      (match name with
      | "shards" ->
        dup_check name (!d.shards <> None) p;
        d := { !d with shards = Some (scalar st) }
      | "kill" ->
        let k = pair st in
        d := { !d with kills = !d.kills @ [ k ] }
      | "term" ->
        let k = pair st in
        d := { !d with terms = !d.terms @ [ k ] }
      | "kill-coord" -> d := { !d with coord_kills = !d.coord_kills @ [ paren_scalar st ] }
      | "drop" ->
        dup_check name (!d.dist_drop <> None) p;
        d := { !d with dist_drop = Some (scalar st) }
      | "delay-prob" ->
        dup_check name (!d.delay_prob <> None) p;
        d := { !d with delay_prob = Some (scalar st) }
      | "delay-max" ->
        dup_check name (!d.delay_max <> None) p;
        d := { !d with delay_max = Some (scalar st) }
      | _ -> fail p "unknown dist field '%s'" name);
      fields ()
  in
  fields ();
  Dist !d

let partition_spec st =
  let _ = expect st Lexer.LBRACKET "'['" in
  let rec more acc =
    match (peek st).Lexer.t with
    | Lexer.COMMA ->
      let _ = next st in
      more (scalar st :: acc)
    | _ ->
      let _ = expect st Lexer.RBRACKET "']'" in
      List.rev acc
  in
  let cut = more [ scalar st ] in
  let _ = expect st Lexer.AT "'@'" in
  let from_s = scalar st in
  let _ = expect st Lexer.DOTDOT "'..'" in
  let until_s = scalar st in
  Partition { cut; from_s; until_s }

let clause st =
  let name, p = ident st "a clause keyword" in
  let c =
    match name with
    | "graph" -> graph_spec st
    | "init" -> init_spec st
    | "balancer" -> balancer_spec st
    | "steps" -> Steps (scalar st)
    | "rounds" -> Rounds (scalar st)
    | "arrivals" -> Arrivals (arrival_expr st)
    | "lifetime" -> lifetime_spec st
    | "warmup" -> warmup_spec st
    | "workload-seed" -> Workload_seed (scalar st)
    | "seed" -> Seed (scalar st)
    | "faults" -> faults_spec st
    | "net" -> net_spec st
    | "dist" -> dist_spec st
    | "partition" -> partition_spec st
    | _ -> fail p "unknown clause '%s'" name
  in
  { c; cpos = p }

let clause_block st =
  let _ = expect st Lexer.LBRACE "'{'" in
  let rec more acc =
    match (peek st).Lexer.t with
    | Lexer.RBRACE ->
      let _ = next st in
      List.rev acc
    | _ -> more (clause st :: acc)
  in
  more []

(* ---- expressions ---- *)

let sweep_values st =
  match (peek st).Lexer.t with
  | Lexer.LBRACKET ->
    let _ = next st in
    let rec more acc =
      match (peek st).Lexer.t with
      | Lexer.COMMA ->
        let _ = next st in
        more (scalar st :: acc)
      | _ ->
        let _ = expect st Lexer.RBRACKET "']'" in
        List.rev acc
    in
    more [ scalar st ]
  | _ ->
    let lo = scalar st in
    let _ = expect st Lexer.DOTDOT "'..' (or a '[v, ...]' list)" in
    let hi = scalar st in
    let int_of s =
      match s.sv with
      | Int k -> k
      | _ -> fail s.spos "range bounds must be integer literals"
    in
    let a = int_of lo and b = int_of hi in
    if a > b then fail lo.spos "empty range %d .. %d" a b;
    List.init (b - a + 1) (fun i -> { sv = Int (a + i); spos = lo.spos })

let rec expr st =
  let t = peek st in
  match t.Lexer.t with
  | Lexer.LPAREN ->
    let _ = next st in
    let e = expr st in
    let _ = expect st Lexer.RPAREN "')'" in
    e
  | Lexer.IDENT "scenario" ->
    let _ = next st in
    { e = Scenario (clause_block st); epos = t.Lexer.tpos }
  | Lexer.IDENT "overlay" ->
    let _ = next st in
    let base = expr st in
    let _ = keyword st "with" in
    { e = Overlay (base, clause_block st); epos = t.Lexer.tpos }
  | Lexer.IDENT "sweep" ->
    let _ = next st in
    let _ = expect st Lexer.DOLLAR "'$'" in
    let var, _ = ident st "a sweep variable name" in
    let _ = keyword st "in" in
    let values = sweep_values st in
    let body = expr st in
    { e = Sweep { var; values; body }; epos = t.Lexer.tpos }
  | Lexer.IDENT "seq" ->
    let _ = next st in
    let _ = expect st Lexer.LBRACKET "'['" in
    let rec more acc =
      match (peek st).Lexer.t with
      | Lexer.SEMI ->
        let _ = next st in
        more (expr st :: acc)
      | _ ->
        let _ = expect st Lexer.RBRACKET "']'" in
        List.rev acc
    in
    let es = more [ expr st ] in
    { e = Seq es; epos = t.Lexer.tpos }
  | Lexer.IDENT "experiment" ->
    let _ = next st in
    let id, _ = ident st "an experiment id" in
    { e = Experiment id; epos = t.Lexer.tpos }
  | Lexer.IDENT name when not (List.mem name reserved) ->
    let _ = next st in
    { e = Ref name; epos = t.Lexer.tpos }
  | tv ->
    fail t.Lexer.tpos "expected a scenario expression, got %s" (Lexer.token_name tv)

let file st =
  let rec decls acc =
    match (peek st).Lexer.t with
    | Lexer.EOF -> List.rev acc
    | _ ->
      let _ = keyword st "let" in
      let dname, dpos = ident st "a binding name" in
      if List.mem dname reserved then
        fail dpos "'%s' is a reserved word and cannot name a binding" dname;
      let _ = expect st Lexer.EQUALS "'='" in
      let body = expr st in
      decls ({ dname; dpos; body } :: acc)
  in
  decls []

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
    let st = { toks = Array.of_list toks; k = 0 } in
    try Ok (file st) with Err (m, p) -> Error (m, p))
