open Ast

type payload =
  | Run of Check.typed
  | Exper of string

type item = { label : string; at : Ast.pos; payload : payload }

exception Exp_err of string * pos

let fail pos fmt = Printf.ksprintf (fun m -> raise (Exp_err (m, pos))) fmt

(* ---- substitution: replace $var with its sweep value, keeping the
   use-site position so checker errors point into the source ---- *)

let subst_scalar env s =
  match s.sv with
  | Var v -> (
    match List.assoc_opt v env with
    | Some (value : scalar) -> { sv = value.sv; spos = s.spos }
    | None -> s)
  | Int _ | Float _ -> s

let subst_opt env = Option.map (subst_scalar env)

let subst_graph env = function
  | Cycle n -> Cycle (subst_scalar env n)
  | Torus (a, b) -> Torus (subst_scalar env a, subst_scalar env b)
  | Hypercube r -> Hypercube (subst_scalar env r)
  | Complete n -> Complete (subst_scalar env n)
  | Clique (n, d) -> Clique (subst_scalar env n, subst_scalar env d)
  | Random (n, d, s) -> Random (subst_scalar env n, subst_scalar env d, subst_scalar env s)

let subst_init env = function
  | Point t -> Point (subst_scalar env t)
  | Bimodal (h, l) -> Bimodal (subst_scalar env h, subst_scalar env l)
  | Uniform_random (t, s) -> Uniform_random (subst_scalar env t, subst_scalar env s)

let subst_balancer env (b : balancer) =
  { b with self_loops = subst_opt env b.self_loops; algo_seed = subst_opt env b.algo_seed }

let rec subst_arrival env = function
  | Uniform k -> Uniform (subst_scalar env k)
  | Poisson r -> Poisson (subst_scalar env r)
  | Point_arrival (n, k) -> Point_arrival (subst_scalar env n, subst_scalar env k)
  | Hotspot k -> Hotspot (subst_scalar env k)
  | Flash { size; at; node; width } ->
    Flash
      { size = subst_scalar env size; at = subst_scalar env at;
        node = subst_scalar env node; width = subst_opt env width }
  | Diurnal { period; amplitude; body } ->
    Diurnal
      { period = subst_scalar env period; amplitude = subst_scalar env amplitude;
        body = subst_arrival env body }
  | Plus (a, b) -> Plus (subst_arrival env a, subst_arrival env b)

let subst_lifetime env = function
  | Immortal -> Immortal
  | Work k -> Work (subst_scalar env k)
  | Service r -> Service (subst_scalar env r)
  | Geometric m -> Geometric (subst_scalar env m)
  | Fixed r -> Fixed (subst_scalar env r)

let subst_fault env it =
  let f =
    match it.f with
    | Crash c -> Crash { c with frac = subst_scalar env c.frac; step = subst_scalar env c.step }
    | Outage o ->
      Outage
        { rate = subst_scalar env o.rate; step = subst_scalar env o.step;
          duration = subst_scalar env o.duration }
    | Shock s ->
      Shock
        { amount = subst_scalar env s.amount; step = subst_scalar env s.step;
          node = subst_opt env s.node }
  in
  { it with f }

let subst_net env (n : net) =
  { drop = subst_opt env n.drop; dup = subst_opt env n.dup;
    reorder = subst_opt env n.reorder; delay = subst_opt env n.delay;
    staleness = subst_opt env n.staleness; degrade = n.degrade;
    net_seed = subst_opt env n.net_seed }

let subst_dist env (d : dist) =
  { shards = subst_opt env d.shards;
    kills = List.map (fun (s, r) -> (subst_scalar env s, subst_scalar env r)) d.kills;
    terms = List.map (fun (s, r) -> (subst_scalar env s, subst_scalar env r)) d.terms;
    coord_kills = List.map (subst_scalar env) d.coord_kills;
    dist_drop = subst_opt env d.dist_drop; delay_prob = subst_opt env d.delay_prob;
    delay_max = subst_opt env d.delay_max }

let subst_partition env (p : partition) =
  { cut = List.map (subst_scalar env) p.cut; from_s = subst_scalar env p.from_s;
    until_s = subst_scalar env p.until_s }

let subst_clause env cl =
  let c =
    match cl.c with
    | Graph g -> Graph (subst_graph env g)
    | Init i -> Init (subst_init env i)
    | Balancer b -> Balancer (subst_balancer env b)
    | Steps s -> Steps (subst_scalar env s)
    | Rounds r -> Rounds (subst_scalar env r)
    | Arrivals a -> Arrivals (subst_arrival env a)
    | Lifetime l -> Lifetime (subst_lifetime env l)
    | Warmup Auto -> Warmup Auto
    | Warmup (Fixed_rounds k) -> Warmup (Fixed_rounds (subst_scalar env k))
    | Workload_seed s -> Workload_seed (subst_scalar env s)
    | Seed s -> Seed (subst_scalar env s)
    | Faults fs -> Faults (List.map (subst_fault env) fs)
    | Net n -> Net (subst_net env n)
    | Dist d -> Dist (subst_dist env d)
    | Partition p -> Partition (subst_partition env p)
  in
  { cl with c }

let subst_scenario env sc = List.map (subst_clause env) sc

(* ---- expansion ---- *)

(* overlay: every clause kind present in [over] replaces all base
   clauses of that kind; the overlay's clauses are appended in order.
   (An overlay that duplicates a non-repeatable kind is caught by the
   checker's duplicate-clause rule afterwards.) *)
let merge base over =
  let over_kinds = List.map (fun o -> clause_kind o.c) over in
  List.filter (fun b -> not (List.mem (clause_kind b.c) over_kinds)) base @ over

type concrete = C_scenario of Ast.scenario | C_exper of string

(* [decls] is the file in order; a binding sees only bindings with a
   smaller index, so references can never cycle *)
let rec expand_expr ~decls ~limit ~env ~label ex =
  match ex.e with
  | Scenario sc -> [ (label, ex.epos, C_scenario (subst_scenario env sc)) ]
  | Experiment id -> [ (label, ex.epos, C_exper id) ]
  | Ref n -> (
    let found = ref None in
    List.iteri
      (fun i (d : decl) -> if i < limit && d.dname = n then found := Some (i, d))
      decls;
    match !found with
    | Some (i, d) -> expand_expr ~decls ~limit:i ~env ~label d.body
    | None ->
      fail ex.epos "unknown binding '%s' (bindings are visible after their definition)" n)
  | Overlay (base, sc) ->
    let over = subst_scenario env sc in
    List.map
      (fun (l, p, c) ->
        match c with
        | C_scenario b -> (l, p, C_scenario (merge b over))
        | C_exper _ -> fail ex.epos "cannot overlay an experiment target")
      (expand_expr ~decls ~limit ~env ~label base)
  | Sweep { var; values; body } ->
    if values = [] then fail ex.epos "sweep over an empty value list";
    List.concat_map
      (fun v ->
        let v = subst_scalar env v in
        (match v.sv with
        | Var u -> fail v.spos "unbound sweep variable '$%s' (in sweep values)" u
        | Int _ | Float _ -> ());
        let label = Printf.sprintf "%s[%s=%s]" label var (Pretty.scalar v) in
        expand_expr ~decls ~limit ~env:((var, v) :: env) ~label body)
      values
  | Seq es ->
    List.concat
      (List.mapi
         (fun i e ->
           let label =
             match e.e with
             | Ref n -> n
             | _ -> Printf.sprintf "%s#%d" label (i + 1)
           in
           expand_expr ~decls ~limit ~env ~label e)
         es)

let plan ?root (file : Ast.file) =
  try
    (match file with [] -> fail no_pos "empty scenario file (no let bindings)" | _ -> ());
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (d : decl) ->
        if Hashtbl.mem seen d.dname then fail d.dpos "duplicate binding '%s'" d.dname;
        Hashtbl.add seen d.dname ())
      file;
    let indexed = List.mapi (fun i d -> (i, d)) file in
    let root_index, root_decl =
      match root with
      | Some n -> (
        match List.find_opt (fun (_, (d : decl)) -> d.dname = n) indexed with
        | Some (i, d) -> (i, d)
        | None -> fail no_pos "no binding named '%s' in this file" n)
      | None -> (
        match List.find_opt (fun (_, (d : decl)) -> d.dname = "main") indexed with
        | Some (i, d) -> (i, d)
        | None -> (
          match List.rev indexed with
          | (i, d) :: _ -> (i, d)
          | [] -> fail no_pos "empty scenario file (no let bindings)"))
    in
    let concrete =
      expand_expr ~decls:file ~limit:root_index ~env:[] ~label:root_decl.dname
        root_decl.body
    in
    let items =
      List.map
        (fun (label, at, c) ->
          match c with
          | C_scenario sc -> (
            match Check.scenario ~at sc with
            | Ok typed -> { label; at; payload = Run typed }
            | Error (m, p) -> raise (Exp_err (m, p)))
          | C_exper id -> (
            match Harness.Suite.find id with
            | Some e -> { label; at; payload = Exper e.Harness.Suite.id }
            | None ->
              fail at "unknown experiment '%s' (valid: %s)" id
                (String.concat ", " Harness.Suite.ids)))
        concrete
    in
    Ok items
  with Exp_err (m, p) -> Error (m, p)

(* ---- lowering ---- *)

let spec_of_graph = function
  | Harness.Experiment.Cycle n -> Printf.sprintf "cycle:%d" n
  | Harness.Experiment.Torus2d side -> Printf.sprintf "torus:%dx%d" side side
  | Harness.Experiment.Hypercube r -> Printf.sprintf "hypercube:%d" r
  | Harness.Experiment.Complete n -> Printf.sprintf "complete:%d" n
  | Harness.Experiment.Clique_circulant { n; d } -> Printf.sprintf "clique:%d,%d" n d
  | Harness.Experiment.Random_regular { n; d; seed } ->
    Printf.sprintf "random:%d,%d,%d" n d seed

let spec_of_init = function
  | Harness.Experiment.Point_mass t -> Printf.sprintf "point:%d" t
  | Harness.Experiment.Bimodal { high; low } -> Printf.sprintf "bimodal:%d,%d" high low
  | Harness.Experiment.Uniform_random { total; seed } ->
    Printf.sprintf "random:%d,%d" total seed

let kind (t : Check.typed) =
  match t.run with
  | Check.Closed { faults; net; _ } ->
    "closed"
    ^ (if faults <> [] then "+faults" else "")
    ^ (if net <> None then "+net" else "")
  | Check.Open { faults; net; _ } ->
    "open"
    ^ (if faults <> [] then "+faults" else "")
    ^ (if net <> None then "+net" else "")
  | Check.Cluster _ -> "cluster"

let build_balancer_fn (t : Check.typed) graph init =
  let spec_fn =
    match
      Harness.Experiment.algo_of_string ?self_loops:t.self_loops ?seed:t.algo_seed
        t.algo_name
    with
    | Ok f -> f
    | Error m -> invalid_arg m (* unreachable: the checker validated the name *)
  in
  let spec = spec_fn ~degree:(Graphs.Graph.degree graph) in
  fun () -> Harness.Experiment.build_balancer spec graph ~init

let async_config (net : Check.net) =
  { Net.Async_engine.default_config with
    channel = net.channel;
    staleness = net.staleness;
    degrade = net.degrade;
    seed = net.net_seed }

let rec build_arrival ~rng = function
  | Check.Uniform k -> Workload.Arrival.uniform ~rng ~per_round:k
  | Check.Poisson r -> Workload.Arrival.poisson ~rng ~rate:r
  | Check.Point { node; batch } -> Workload.Arrival.point ~node ~per_round:batch
  | Check.Hotspot k -> Workload.Arrival.hotspot ~per_round:k
  | Check.Flash { size; at; node; width } ->
    Workload.Arrival.flash_crowd ~width ~at ~size ~node ()
  | Check.Diurnal { period; amplitude; body } ->
    Workload.Arrival.diurnal ~period ~amplitude (build_arrival ~rng body)
  | Check.Plus (a, b) ->
    Workload.Arrival.overlay (build_arrival ~rng a) (build_arrival ~rng b)

let build_lifetime ~rng = function
  | Check.Immortal -> Workload.Lifetime.immortal
  | Check.Work k -> Workload.Lifetime.uniform_attempts ~rng ~per_round:k
  | Check.Service r -> Workload.Lifetime.service ~rate:r
  | Check.Geometric m -> Workload.Lifetime.geometric ~rng ~mean:m
  | Check.Fixed r -> Workload.Lifetime.fixed ~rng ~rounds:r

type outcome = {
  kind : string;
  rounds : int;
  final_loads : int array;
  discrepancy : int;
  initial_total : int;
  final_total : int;
  injected : int;
  removed : int;
  conserved : bool;
  drained : bool;
}

let outcome_of ~kind ~rounds ~init ~final ~injected ~removed ~drained =
  let initial_total = Core.Loads.total init in
  let final_total = Core.Loads.total final in
  { kind;
    rounds;
    final_loads = final;
    discrepancy = Core.Loads.discrepancy final;
    initial_total;
    final_total;
    injected;
    removed;
    conserved = final_total = initial_total + injected - removed;
    drained }

let execute_exn (t : Check.typed) =
  let k = kind t in
  match t.run with
  | Check.Cluster _ ->
    Error
      "dist scenarios are compile-only in-process: use 'lb_scn compile' and run the \
       printed lb_cluster command"
  | Check.Closed { steps; faults; net } -> (
    let graph = Harness.Experiment.build_graph t.graph in
    let n = Graphs.Graph.n graph in
    let init = Harness.Experiment.build_init t.init ~n in
    let make_balancer = build_balancer_fn t graph init in
    let plan =
      match faults with
      | [] -> []
      | specs -> Faults.Schedule.realize ~seed:t.fault_seed ~graph specs
    in
    match net with
    | Some net_cfg ->
      let report =
        Net.Async_engine.run ~config:(async_config net_cfg) ~plan ~graph
          ~balancer:(make_balancer ()) ~init ~steps ()
      in
      Ok
        (outcome_of ~kind:k ~rounds:report.Net.Async_engine.result.Core.Engine.steps_run
           ~init ~final:report.Net.Async_engine.result.Core.Engine.final_loads
           ~injected:report.Net.Async_engine.injected
           ~removed:report.Net.Async_engine.lost ~drained:report.Net.Async_engine.drained)
    | None ->
      if plan = [] then
        let r = Core.Engine.run ~graph ~balancer:(make_balancer ()) ~init ~steps () in
        Ok
          (outcome_of ~kind:k ~rounds:r.Core.Engine.steps_run ~init
             ~final:r.Core.Engine.final_loads ~injected:0 ~removed:0 ~drained:true)
      else
        let report = Faults.Engine.run ~graph ~make_balancer ~plan ~init ~steps () in
        Ok
          (outcome_of ~kind:k
             ~rounds:report.Faults.Engine.result.Core.Engine.steps_run ~init
             ~final:report.Faults.Engine.result.Core.Engine.final_loads
             ~injected:report.Faults.Engine.injected ~removed:report.Faults.Engine.lost
             ~drained:true))
  | Check.Open { rounds; arrival; lifetime; warmup; workload_seed; faults; net } ->
    let graph = Harness.Experiment.build_graph t.graph in
    let n = Graphs.Graph.n graph in
    let init = Harness.Experiment.build_init t.init ~n in
    let make_balancer = build_balancer_fn t graph init in
    (* lb_sim's PRNG convention: one master stream, arrival then
       lifetime split off in that order *)
    let master = Prng.Splitmix.create workload_seed in
    let arrival_rng = Prng.Splitmix.split master in
    let lifetime_rng = Prng.Splitmix.split master in
    let arrival = build_arrival ~rng:arrival_rng arrival in
    let lifetime = build_lifetime ~rng:lifetime_rng lifetime in
    let wl_warmup =
      match warmup with
      | Check.Auto -> Workload.Engine.Auto
      | Check.Fixed_warmup w -> Workload.Engine.Fixed_warmup w
    in
    let config = Workload.Engine.config ~warmup:wl_warmup ~arrival ~lifetime ~rounds () in
    let plan =
      match faults with
      | [] -> []
      | specs -> Faults.Schedule.realize ~seed:t.fault_seed ~graph specs
    in
    let mode =
      match net with
      | Some net_cfg ->
        Harness.Openrun.Lossy { config = async_config net_cfg; plan }
      | None -> (
        match plan with
        | [] -> Harness.Openrun.Plain
        | _ -> Harness.Openrun.Faulty { plan })
    in
    let r = Harness.Openrun.run ~mode ~config ~graph ~balancer:(make_balancer ()) ~init () in
    Ok
      (outcome_of ~kind:k ~rounds:r.Workload.Engine.rounds_run ~init
         ~final:r.Workload.Engine.final_loads
         ~injected:(r.Workload.Engine.total_arrivals + r.Workload.Engine.fault_injected)
         ~removed:(r.Workload.Engine.total_departures + r.Workload.Engine.fault_lost)
         ~drained:r.Workload.Engine.conserved)

(* A constructor precondition the checker missed must surface as a
   compile error, not a crash — the fuzzer counts on it. *)
let execute t = try execute_exn t with Invalid_argument m -> Error m

let cluster_command (t : Check.typed) =
  match t.run with
  | Check.Cluster { rounds; cluster } ->
    Some
      (Dist.Chaos.command_line
         { Dist.Chaos.index = 0;
           shards = cluster.Check.shards;
           rounds;
           graph = spec_of_graph t.graph;
           init = spec_of_init t.init;
           algo = t.algo_name;
           seed = t.fault_seed;
           drop = cluster.Check.cluster_drop;
           delay_prob = cluster.Check.delay_prob;
           delay_max = cluster.Check.delay_max;
           faults = cluster.Check.cluster_faults;
           partitions = cluster.Check.partitions })
  | Check.Closed _ | Check.Open _ -> None

let describe it =
  match it.payload with
  | Exper id -> [ Printf.sprintf "%s: experiment %s (Harness.Suite registry)" it.label id ]
  | Run t -> (
    let head =
      Printf.sprintf "%s: %s  graph=%s init=%s algo=%s seed=%d" it.label (kind t)
        (spec_of_graph t.graph) (spec_of_init t.init) t.algo_name t.fault_seed
    in
    match t.run with
    | Check.Cluster _ -> (
      match cluster_command t with
      | Some cmd -> [ head; "  target: multi-process cluster"; "  " ^ cmd ]
      | None -> [ head ])
    | Check.Closed { steps; faults; net } ->
      [ head;
        Printf.sprintf "  target: %s  steps=%d faults=%d%s"
          (match (net, faults) with
          | Some _, _ -> "Net.Async_engine.run"
          | None, [] -> "Core.Engine.run"
          | None, _ -> "Faults.Engine.run")
          steps (List.length faults)
          (match net with
          | Some nc ->
            Printf.sprintf " channel=%s staleness=%d"
              (Net.Channel.config_to_string nc.Check.channel)
              nc.Check.staleness
          | None -> "") ]
    | Check.Open { rounds; faults; net; workload_seed; _ } ->
      [ head;
        Printf.sprintf "  target: Harness.Openrun.run (%s)  rounds=%d workload-seed=%d faults=%d%s"
          (match (net, faults) with
          | Some _, _ -> "Lossy"
          | None, [] -> "Plain"
          | None, _ -> "Faulty")
          rounds workload_seed (List.length faults)
          (match net with
          | Some nc ->
            Printf.sprintf " channel=%s"
              (Net.Channel.config_to_string nc.Check.channel)
          | None -> "") ])
