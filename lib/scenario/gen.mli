(** Seeded scenario generator and shrinker — the property-based
    machinery behind [lb_scn fuzz] (experiment E18).

    {!scenario} is a pure function of [(seed, index)] (SplitMix64), so
    a failing case reproduces anywhere from the two integers.  Every
    generated scenario is well-typed by construction ({!Check.scenario}
    accepts it — a rejection is itself a finding) and in-process
    executable: closed and open-system runs over small graphs, with
    optional fault plans and lossy-network layers, sized so a
    1000-scenario sweep finishes in seconds.  The [mimic] balancer and
    [dist] clauses are never generated (the first is deliberately
    restricted by the checker, the second needs the multi-process
    harness).

    {!shrink} proposes strictly simpler variants piecewise — drop a
    whole layer, drop one fault, unwrap a modulated arrival, halve the
    horizon, collapse the graph — and {!minimize} iterates them
    greedily while the failure predicate keeps holding, mirroring
    {!Dist.Chaos.minimize}. *)

val scenario : seed:int -> index:int -> Ast.scenario
(** Concrete, variable-free, position-free scenario [index] of stream
    [seed]. *)

val to_file : Ast.scenario -> Ast.file
(** Wrap as the single binding [let main = scenario { … }] — what the
    minimizer writes next to the replayable command line. *)

val file : seed:int -> index:int -> Ast.file
(** A syntactically well-formed file exercising the whole grammar —
    bindings, [overlay], [sweep] (with [$var] uses), [seq],
    [experiment] — for the [parse ∘ print = id] round-trip property.
    Unlike {!scenario}, the result need not type-check. *)

val shrink : Ast.scenario -> Ast.scenario list
(** Strictly simpler candidates, most aggressive first. *)

val minimize : fails:(Ast.scenario -> bool) -> Ast.scenario -> Ast.scenario
(** Greedy fixpoint: repeatedly adopt the first {!shrink} candidate on
    which [fails] still holds. *)
