type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

type scalar_v = Int of int | Float of float | Var of string
type scalar = { sv : scalar_v; spos : pos }

let int_scalar k = { sv = Int k; spos = no_pos }
let float_scalar f = { sv = Float f; spos = no_pos }

type graph =
  | Cycle of scalar
  | Torus of scalar * scalar
  | Hypercube of scalar
  | Complete of scalar
  | Clique of scalar * scalar
  | Random of scalar * scalar * scalar

type init =
  | Point of scalar
  | Bimodal of scalar * scalar
  | Uniform_random of scalar * scalar

type balancer = {
  bname : string;
  self_loops : scalar option;
  algo_seed : scalar option;
}

type arrival =
  | Uniform of scalar
  | Poisson of scalar
  | Point_arrival of scalar * scalar
  | Hotspot of scalar
  | Flash of { size : scalar; at : scalar; node : scalar; width : scalar option }
  | Diurnal of { period : scalar; amplitude : scalar; body : arrival }
  | Plus of arrival * arrival

type lifetime =
  | Immortal
  | Work of scalar
  | Service of scalar
  | Geometric of scalar
  | Fixed of scalar

type warmup = Auto | Fixed_rounds of scalar

type state_loss = Wipe | Keep
type token_policy = Lose | Spill

type fault =
  | Crash of { frac : scalar; step : scalar; state : state_loss; tokens : token_policy }
  | Outage of { rate : scalar; step : scalar; duration : scalar }
  | Shock of { amount : scalar; step : scalar; node : scalar option }

type fault_item = { f : fault; fpos : pos }

type onoff = On | Off

type net = {
  drop : scalar option;
  dup : scalar option;
  reorder : scalar option;
  delay : scalar option;
  staleness : scalar option;
  degrade : onoff option;
  net_seed : scalar option;
}

let empty_net =
  { drop = None; dup = None; reorder = None; delay = None; staleness = None;
    degrade = None; net_seed = None }

type dist = {
  shards : scalar option;
  kills : (scalar * scalar) list;
  terms : (scalar * scalar) list;
  coord_kills : scalar list;
  dist_drop : scalar option;
  delay_prob : scalar option;
  delay_max : scalar option;
}

let empty_dist =
  { shards = None; kills = []; terms = []; coord_kills = []; dist_drop = None;
    delay_prob = None; delay_max = None }

type partition = { cut : scalar list; from_s : scalar; until_s : scalar }

type clause_v =
  | Graph of graph
  | Init of init
  | Balancer of balancer
  | Steps of scalar
  | Rounds of scalar
  | Arrivals of arrival
  | Lifetime of lifetime
  | Warmup of warmup
  | Workload_seed of scalar
  | Seed of scalar
  | Faults of fault_item list
  | Net of net
  | Dist of dist
  | Partition of partition

type clause = { c : clause_v; cpos : pos }
type scenario = clause list

type expr_v =
  | Scenario of scenario
  | Overlay of expr * scenario
  | Sweep of { var : string; values : scalar list; body : expr }
  | Seq of expr list
  | Experiment of string
  | Ref of string

and expr = { e : expr_v; epos : pos }

type decl = { dname : string; dpos : pos; body : expr }
type file = decl list

let clause_kind = function
  | Graph _ -> "graph"
  | Init _ -> "init"
  | Balancer _ -> "balancer"
  | Steps _ -> "steps"
  | Rounds _ -> "rounds"
  | Arrivals _ -> "arrivals"
  | Lifetime _ -> "lifetime"
  | Warmup _ -> "warmup"
  | Workload_seed _ -> "workload-seed"
  | Seed _ -> "seed"
  | Faults _ -> "faults"
  | Net _ -> "net"
  | Dist _ -> "dist"
  | Partition _ -> "partition"

(* ---- position stripping (structural equality modulo positions) ---- *)

let strip_scalar s = { s with spos = no_pos }
let strip_opt = Option.map strip_scalar

let strip_graph = function
  | Cycle n -> Cycle (strip_scalar n)
  | Torus (a, b) -> Torus (strip_scalar a, strip_scalar b)
  | Hypercube r -> Hypercube (strip_scalar r)
  | Complete n -> Complete (strip_scalar n)
  | Clique (n, d) -> Clique (strip_scalar n, strip_scalar d)
  | Random (n, d, s) -> Random (strip_scalar n, strip_scalar d, strip_scalar s)

let strip_init = function
  | Point t -> Point (strip_scalar t)
  | Bimodal (h, l) -> Bimodal (strip_scalar h, strip_scalar l)
  | Uniform_random (t, s) -> Uniform_random (strip_scalar t, strip_scalar s)

let strip_balancer b =
  { b with self_loops = strip_opt b.self_loops; algo_seed = strip_opt b.algo_seed }

let rec strip_arrival = function
  | Uniform k -> Uniform (strip_scalar k)
  | Poisson r -> Poisson (strip_scalar r)
  | Point_arrival (n, k) -> Point_arrival (strip_scalar n, strip_scalar k)
  | Hotspot k -> Hotspot (strip_scalar k)
  | Flash { size; at; node; width } ->
    Flash
      { size = strip_scalar size; at = strip_scalar at; node = strip_scalar node;
        width = strip_opt width }
  | Diurnal { period; amplitude; body } ->
    Diurnal
      { period = strip_scalar period; amplitude = strip_scalar amplitude;
        body = strip_arrival body }
  | Plus (a, b) -> Plus (strip_arrival a, strip_arrival b)

let strip_lifetime = function
  | Immortal -> Immortal
  | Work k -> Work (strip_scalar k)
  | Service r -> Service (strip_scalar r)
  | Geometric m -> Geometric (strip_scalar m)
  | Fixed r -> Fixed (strip_scalar r)

let strip_warmup = function
  | Auto -> Auto
  | Fixed_rounds k -> Fixed_rounds (strip_scalar k)

let strip_fault = function
  | Crash c -> Crash { c with frac = strip_scalar c.frac; step = strip_scalar c.step }
  | Outage o ->
    Outage
      { rate = strip_scalar o.rate; step = strip_scalar o.step;
        duration = strip_scalar o.duration }
  | Shock s ->
    Shock
      { amount = strip_scalar s.amount; step = strip_scalar s.step;
        node = strip_opt s.node }

let strip_net n =
  { drop = strip_opt n.drop; dup = strip_opt n.dup; reorder = strip_opt n.reorder;
    delay = strip_opt n.delay; staleness = strip_opt n.staleness;
    degrade = n.degrade; net_seed = strip_opt n.net_seed }

let strip_dist d =
  { shards = strip_opt d.shards;
    kills = List.map (fun (s, r) -> (strip_scalar s, strip_scalar r)) d.kills;
    terms = List.map (fun (s, r) -> (strip_scalar s, strip_scalar r)) d.terms;
    coord_kills = List.map strip_scalar d.coord_kills;
    dist_drop = strip_opt d.dist_drop; delay_prob = strip_opt d.delay_prob;
    delay_max = strip_opt d.delay_max }

let strip_partition p =
  { cut = List.map strip_scalar p.cut; from_s = strip_scalar p.from_s;
    until_s = strip_scalar p.until_s }

let strip_clause_v = function
  | Graph g -> Graph (strip_graph g)
  | Init i -> Init (strip_init i)
  | Balancer b -> Balancer (strip_balancer b)
  | Steps s -> Steps (strip_scalar s)
  | Rounds r -> Rounds (strip_scalar r)
  | Arrivals a -> Arrivals (strip_arrival a)
  | Lifetime l -> Lifetime (strip_lifetime l)
  | Warmup w -> Warmup (strip_warmup w)
  | Workload_seed s -> Workload_seed (strip_scalar s)
  | Seed s -> Seed (strip_scalar s)
  | Faults fs -> Faults (List.map (fun i -> { f = strip_fault i.f; fpos = no_pos }) fs)
  | Net n -> Net (strip_net n)
  | Dist d -> Dist (strip_dist d)
  | Partition p -> Partition (strip_partition p)

let strip_scenario sc =
  List.map (fun cl -> { c = strip_clause_v cl.c; cpos = no_pos }) sc

let rec strip_expr ex =
  let e =
    match ex.e with
    | Scenario sc -> Scenario (strip_scenario sc)
    | Overlay (b, sc) -> Overlay (strip_expr b, strip_scenario sc)
    | Sweep { var; values; body } ->
      Sweep { var; values = List.map strip_scalar values; body = strip_expr body }
    | Seq es -> Seq (List.map strip_expr es)
    | Experiment id -> Experiment id
    | Ref n -> Ref n
  in
  { e; epos = no_pos }

let strip_file f =
  List.map (fun d -> { d with dpos = no_pos; body = strip_expr d.body }) f
