(** Chaos findings as scenario files.

    [lb_chaos] shrinks a failing cluster schedule down to a minimal
    {!Dist.Chaos.scenario} and prints a replayable [lb_cluster] command
    line.  {!file} renders that same scenario as a [.lbs] file (one
    [let main = scenario { … dist { … } }] binding), so a finding can be
    archived, diffed and re-checked with [lb_scn check] like any other
    scenario.  The mapping is exact: compiling the emitted file with
    {!Compile.cluster_command} reproduces the command line. *)

val file : Dist.Chaos.scenario -> (Ast.file, string) result
(** [Error] only if the scenario carries an unparsable graph/init spec
    string — impossible for {!Dist.Chaos.generate} output. *)

val to_string : Dist.Chaos.scenario -> (string, string) result
(** {!file} pretty-printed, ready to write next to the command line. *)
