(** The scenario compiler: expansion, checking and lowering onto the
    existing engine stack.

    {!plan} turns a parsed file into a flat list of runnable items:
    [sweep]s are unrolled ([$var] substituted at every use site, the
    binding recorded in the item label as ["name[d=0.05]"]), [overlay]s
    are merged clause-wise (an overlay clause replaces the base clause
    of the same kind, new kinds are appended), [seq]s are concatenated
    and references resolved (a binding sees only the bindings declared
    before it).  Every concrete scenario then goes through {!Check};
    [experiment] targets are resolved against the {!Harness.Suite}
    registry.

    {!execute} lowers a checked scenario onto the engine it selects:

    - closed, fault-free, reliable → {!Core.Engine.run};
    - closed + faults → {!Faults.Engine.run} under
      {!Faults.Schedule.realize};
    - closed + net (faults optional) → {!Net.Async_engine.run};
    - open system → {!Harness.Openrun.run} with the matching
      [Plain]/[Faulty]/[Lossy] mode, mirroring [lb_sim]'s PRNG
      convention (master stream from [workload-seed], arrival and
      lifetime streams split off in that order) so equal seeds replay
      the CLI bit for bit;
    - [dist] scenarios are compile-only: {!cluster_command} renders the
      equivalent multi-process [lb_cluster] invocation.

    Everything here is pure apart from the engines' own computation —
    printing belongs to the [lb_scn] binary. *)

type payload =
  | Run of Check.typed
  | Exper of string  (** validated {!Harness.Suite} id, upper-cased *)

type item = { label : string; at : Ast.pos; payload : payload }

val plan : ?root:string -> Ast.file -> (item list, string * Ast.pos) result
(** Expand + check the file.  [root] names the binding to compile
    (default: the binding named ["main"], else the last one). *)

type outcome = {
  kind : string;  (** "closed", "open+faults+net", … *)
  rounds : int;  (** rounds/steps actually executed *)
  final_loads : int array;
  discrepancy : int;
  initial_total : int;
  final_total : int;
  injected : int;  (** arrivals + fault shocks *)
  removed : int;  (** departures + crash-lost tokens *)
  conserved : bool;  (** final = initial + injected − removed *)
  drained : bool;  (** lossy transport quiesced (true when no net) *)
}

val kind : Check.typed -> string

val execute : Check.typed -> (outcome, string) result
(** Run one checked scenario in-process.  [Error] only for [dist]
    scenarios, which need the multi-process harness. *)

val cluster_command : Check.typed -> string option
(** The replayable [lb_cluster] invocation of a [dist] scenario,
    [None] for in-process scenarios. *)

val describe : item -> string list
(** Human-readable lowering summary, one string per line — what
    [lb_scn compile] prints. *)
