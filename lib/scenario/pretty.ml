open Ast

let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%g" f in
    match float_of_string_opt s with
    | Some g when Float.equal g f -> s
    | _ -> Printf.sprintf "%.17g" f

let scalar s =
  match s.sv with
  | Int k -> string_of_int k
  | Float f -> float_str f
  | Var v -> "$" ^ v

let call name args = Printf.sprintf "%s(%s)" name (String.concat ", " (List.map scalar args))

let graph_str = function
  | Cycle n -> call "cycle" [ n ]
  | Torus (a, b) -> call "torus" [ a; b ]
  | Hypercube r -> call "hypercube" [ r ]
  | Complete n -> call "complete" [ n ]
  | Clique (n, d) -> call "clique" [ n; d ]
  | Random (n, d, s) -> call "random" [ n; d; s ]

let init_str = function
  | Point t -> call "point" [ t ]
  | Bimodal (h, l) -> call "bimodal" [ h; l ]
  | Uniform_random (t, s) -> call "random" [ t; s ]

let balancer_str b =
  let opt name = function
    | None -> ""
    | Some s -> Printf.sprintf " %s(%s)" name (scalar s)
  in
  b.bname ^ opt "self-loops" b.self_loops ^ opt "algo-seed" b.algo_seed

let rec arrival_str = function
  | Uniform k -> call "uniform" [ k ]
  | Poisson r -> call "poisson" [ r ]
  | Point_arrival (n, k) -> call "point" [ n; k ]
  | Hotspot k -> call "hotspot" [ k ]
  | Flash { size; at; node; width = None } -> call "flash" [ size; at; node ]
  | Flash { size; at; node; width = Some w } -> call "flash" [ size; at; node; w ]
  | Diurnal { period; amplitude; body } ->
    Printf.sprintf "diurnal(%s, %s, %s)" (scalar period) (scalar amplitude)
      (arrival_str body)
  | Plus (a, b) -> Printf.sprintf "%s + %s" (arrival_str a) (arrival_str b)

let lifetime_str = function
  | Immortal -> "immortal"
  | Work k -> call "work" [ k ]
  | Service r -> call "service" [ r ]
  | Geometric m -> call "geometric" [ m ]
  | Fixed r -> call "fixed" [ r ]

let fault_str it =
  match it.f with
  | Crash { frac; step; state; tokens } ->
    Printf.sprintf "crash(%s, %s, %s, %s)" (scalar frac) (scalar step)
      (match state with Wipe -> "wipe" | Keep -> "keep")
      (match tokens with Lose -> "lose" | Spill -> "spill")
  | Outage { rate; step; duration } -> call "outage" [ rate; step; duration ]
  | Shock { amount; step; node = None } -> call "shock" [ amount; step ]
  | Shock { amount; step; node = Some n } -> call "shock" [ amount; step; n ]

let net_str n =
  let b = Buffer.create 64 in
  let field name = function
    | None -> ()
    | Some s -> Buffer.add_string b (Printf.sprintf " %s %s" name (scalar s))
  in
  Buffer.add_string b "{";
  field "drop" n.drop;
  field "dup" n.dup;
  field "reorder" n.reorder;
  field "delay" n.delay;
  field "staleness" n.staleness;
  (match n.degrade with
  | None -> ()
  | Some On -> Buffer.add_string b " degrade on"
  | Some Off -> Buffer.add_string b " degrade off");
  field "seed" n.net_seed;
  Buffer.add_string b " }";
  Buffer.contents b

let dist_str d =
  let b = Buffer.create 64 in
  Buffer.add_string b "{";
  (match d.shards with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf " shards %s" (scalar s)));
  List.iter
    (fun (s, r) -> Buffer.add_string b (Printf.sprintf " kill(%s, %s)" (scalar s) (scalar r)))
    d.kills;
  List.iter
    (fun (s, r) -> Buffer.add_string b (Printf.sprintf " term(%s, %s)" (scalar s) (scalar r)))
    d.terms;
  List.iter
    (fun r -> Buffer.add_string b (Printf.sprintf " kill-coord(%s)" (scalar r)))
    d.coord_kills;
  (match d.dist_drop with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf " drop %s" (scalar s)));
  (match d.delay_prob with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf " delay-prob %s" (scalar s)));
  (match d.delay_max with
  | None -> ()
  | Some s -> Buffer.add_string b (Printf.sprintf " delay-max %s" (scalar s)));
  Buffer.add_string b " }";
  Buffer.contents b

let pad n = String.make n ' '

let clause_str ~indent cl =
  let p = pad indent in
  match cl.c with
  | Graph g -> Printf.sprintf "%sgraph %s\n" p (graph_str g)
  | Init i -> Printf.sprintf "%sinit %s\n" p (init_str i)
  | Balancer b -> Printf.sprintf "%sbalancer %s\n" p (balancer_str b)
  | Steps s -> Printf.sprintf "%ssteps %s\n" p (scalar s)
  | Rounds r -> Printf.sprintf "%srounds %s\n" p (scalar r)
  | Arrivals a -> Printf.sprintf "%sarrivals %s\n" p (arrival_str a)
  | Lifetime l -> Printf.sprintf "%slifetime %s\n" p (lifetime_str l)
  | Warmup Auto -> Printf.sprintf "%swarmup auto\n" p
  | Warmup (Fixed_rounds k) -> Printf.sprintf "%swarmup %s\n" p (scalar k)
  | Workload_seed s -> Printf.sprintf "%sworkload-seed %s\n" p (scalar s)
  | Seed s -> Printf.sprintf "%sseed %s\n" p (scalar s)
  | Faults [] -> Printf.sprintf "%sfaults [ ]\n" p
  | Faults fs ->
    let items = List.map (fun it -> pad (indent + 2) ^ fault_str it) fs in
    Printf.sprintf "%sfaults [\n%s\n%s]\n" p (String.concat ";\n" items) p
  | Net n -> Printf.sprintf "%snet %s\n" p (net_str n)
  | Dist d -> Printf.sprintf "%sdist %s\n" p (dist_str d)
  | Partition { cut; from_s; until_s } ->
    Printf.sprintf "%spartition [%s] @ %s .. %s\n" p
      (String.concat ", " (List.map scalar cut))
      (scalar from_s) (scalar until_s)

let scenario ~indent sc = String.concat "" (List.map (clause_str ~indent) sc)

let rec expr ~indent ex =
  let p = pad indent in
  match ex.e with
  | Scenario sc -> Printf.sprintf "scenario {\n%s%s}" (scenario ~indent:(indent + 2) sc) p
  | Overlay (base, sc) ->
    Printf.sprintf "overlay %s with {\n%s%s}" (expr ~indent base)
      (scenario ~indent:(indent + 2) sc)
      p
  | Sweep { var; values; body } ->
    Printf.sprintf "sweep $%s in [%s] %s" var
      (String.concat ", " (List.map scalar values))
      (expr ~indent body)
  | Seq es ->
    let items = List.map (fun e -> pad (indent + 2) ^ expr ~indent:(indent + 2) e) es in
    Printf.sprintf "seq [\n%s\n%s]" (String.concat ";\n" items) p
  | Experiment id -> "experiment " ^ id
  | Ref n -> n

let file decls =
  String.concat "\n"
    (List.map (fun d -> Printf.sprintf "let %s = %s\n" d.dname (expr ~indent:0 d.body)) decls)
