open Ast
module Sm = Prng.Splitmix

let i = int_scalar
let f = float_scalar
let pick rng xs =
  match List.nth_opt xs (Sm.int rng (List.length xs)) with
  | Some x -> x
  | None -> invalid_arg "Gen.pick: empty list"
let chance rng p = Sm.bernoulli rng p

(* ---- graphs, inits, balancers ---- *)

let gen_graph rng =
  match Sm.int rng 6 with
  | 0 -> Cycle (i (Sm.int_in rng 4 12))
  | 1 ->
    let side = Sm.int_in rng 3 4 in
    Torus (i side, i side)
  | 2 -> Hypercube (i (Sm.int_in rng 2 4))
  | 3 -> Complete (i (Sm.int_in rng 4 8))
  | 4 -> Clique (i (Sm.int_in rng 8 12), i 4)
  | _ ->
    let d = Sm.int_in rng 3 4 in
    let n0 = Sm.int_in rng 8 12 in
    let n = if n0 * d mod 2 = 1 then n0 + 1 else n0 in
    Random (i n, i d, i (Sm.int_in rng 1 5))

let graph_nodes = function
  | Cycle { sv = Int n; _ } -> n
  | Torus ({ sv = Int a; _ }, _) -> a * a
  | Hypercube { sv = Int r; _ } -> 1 lsl r
  | Complete { sv = Int n; _ } -> n
  | Clique ({ sv = Int n; _ }, _) -> n
  | Random ({ sv = Int n; _ }, _, _) -> n
  | _ -> 4 (* unreachable for generated graphs *)

let gen_init rng =
  match Sm.int rng 3 with
  | 0 -> Point (i (Sm.int_in rng 0 200))
  | 1 -> Bimodal (i (Sm.int_in rng 0 30), i (Sm.int_in rng 0 5))
  | _ -> Uniform_random (i (Sm.int_in rng 0 120), i (Sm.int_in rng 1 9))

let graph_degree = function
  | Cycle _ -> 2
  | Torus _ -> 4
  | Hypercube { sv = Int r; _ } -> r
  | Complete { sv = Int n; _ } -> n - 1
  | Clique (_, { sv = Int d; _ }) -> d
  | Random (_, { sv = Int d; _ }, _) -> d
  | _ -> 2 (* unreachable for generated graphs *)

let gen_balancer rng ~degree =
  let bname =
    pick rng
      [ "rotor-router"; "rotor-router-star"; "send-floor"; "send-round";
        "random-extra"; "random-rounding" ]
  in
  (* each constructor's d° floor, so every draw builds *)
  let floor =
    match bname with
    | "send-round" -> Some degree
    | "send-floor" | "random-rounding" -> Some 1
    | "random-extra" | "rotor-router" -> Some 0
    | _ -> None (* rotor-router-star takes no override *)
  in
  let self_loops =
    match floor with
    | Some lo when chance rng 0.3 -> Some (i (Sm.int_in rng lo (lo + 3)))
    | _ -> None
  in
  let algo_seed =
    match bname with
    | ("random-extra" | "random-rounding") when chance rng 0.3 ->
      Some (i (Sm.int_in rng 1 9))
    | _ -> None
  in
  { bname; self_loops; algo_seed }

(* ---- layers ---- *)

let gen_fault rng ~n ~horizon =
  let step = i (Sm.int_in rng 1 horizon) in
  match Sm.int rng 3 with
  | 0 ->
    Crash
      { frac = f (float_of_int (Sm.int_in rng 0 5) /. 10.0);
        step;
        state = (if Sm.bool rng then Wipe else Keep);
        tokens = (if Sm.bool rng then Lose else Spill) }
  | 1 ->
    let at = Sm.int_in rng 1 horizon in
    let duration = Sm.int_in rng 1 (max 1 (horizon - at + 1)) in
    Outage
      { rate = f (float_of_int (Sm.int_in rng 0 5) /. 10.0); step = i at;
        duration = i duration }
  | _ ->
    Shock
      { amount = i (Sm.int_in rng 0 40);
        step;
        node = (if Sm.bool rng then Some (i (Sm.int rng n)) else None) }

let gen_faults rng ~n ~horizon =
  List.init (Sm.int_in rng 1 2) (fun _ -> { f = gen_fault rng ~n ~horizon; fpos = no_pos })

let gen_net rng =
  let pct hi = f (float_of_int (Sm.int_in rng 1 hi) /. 100.0) in
  (* at least one channel field, or the checker (rightly) rejects it *)
  let base =
    match Sm.int rng 4 with
    | 0 -> { empty_net with drop = Some (pct 30) }
    | 1 -> { empty_net with dup = Some (pct 20) }
    | 2 -> { empty_net with reorder = Some (pct 30) }
    | _ -> { empty_net with delay = Some (i (Sm.int_in rng 1 2)) }
  in
  let base = if chance rng 0.4 then { base with drop = Some (pct 30) } else base in
  let base =
    if chance rng 0.5 then { base with staleness = Some (i (Sm.int_in rng 0 3)) } else base
  in
  let base =
    if chance rng 0.3 then { base with degrade = Some (if Sm.bool rng then On else Off) }
    else base
  in
  if chance rng 0.5 then { base with net_seed = Some (i (Sm.int_in rng 1 9)) } else base

let gen_base_arrival rng ~n =
  match Sm.int rng 4 with
  | 0 -> Uniform (i (Sm.int_in rng 0 6))
  | 1 -> Poisson (f (float_of_int (Sm.int_in rng 0 8) /. 2.0))
  | 2 -> Point_arrival (i (Sm.int rng n), i (Sm.int_in rng 0 6))
  | _ -> Hotspot (i (Sm.int_in rng 0 4))

let gen_arrival rng ~n ~rounds =
  let base = gen_base_arrival rng ~n in
  let base =
    if chance rng 0.3 then
      Diurnal
        { period = i (Sm.int_in rng 2 10);
          amplitude = f (float_of_int (Sm.int_in rng 0 10) /. 10.0);
          body = base }
    else base
  in
  if chance rng 0.3 then
    Plus
      ( base,
        Flash
          { size = i (Sm.int_in rng 0 30);
            at = i (Sm.int_in rng 1 rounds);
            node = i (Sm.int rng n);
            width = (if Sm.bool rng then Some (i (Sm.int_in rng 1 3)) else None) } )
  else base

let gen_lifetime rng =
  match Sm.int rng 5 with
  | 0 -> Immortal
  | 1 -> Work (i (Sm.int_in rng 0 5))
  | 2 -> Service (i (Sm.int_in rng 0 3))
  | 3 -> Geometric (f (float_of_int (Sm.int_in rng 2 10) /. 2.0))
  | _ -> Fixed (i (Sm.int_in rng 1 5))

(* ---- scenarios ---- *)

let cl c = { c; cpos = no_pos }

let scenario ~seed ~index =
  let rng = Sm.create ((seed * 1_000_003) + index) in
  let graph = gen_graph rng in
  let n = graph_nodes graph in
  let base =
    [ cl (Graph graph); cl (Init (gen_init rng));
      cl (Balancer (gen_balancer rng ~degree:(graph_degree graph))) ]
  in
  let closed = Sm.bool rng in
  let horizon = Sm.int_in rng (if closed then 5 else 8) 40 in
  let with_faults = chance rng 0.4 in
  let with_net = chance rng 0.4 in
  let tail =
    if closed then
      [ cl (Steps (i horizon)) ]
    else
      [ cl (Rounds (i horizon)); cl (Arrivals (gen_arrival rng ~n ~rounds:horizon)) ]
      @ (if chance rng 0.7 then [ cl (Lifetime (gen_lifetime rng)) ] else [])
      @ (if chance rng 0.4 then
           [ cl (Warmup (if Sm.bool rng then Auto else Fixed_rounds (i (Sm.int_in rng 0 5)))) ]
         else [])
      @
      if chance rng 0.5 then [ cl (Workload_seed (i (Sm.int_in rng 1 99))) ] else []
  in
  let layers =
    (if with_faults then [ cl (Faults (gen_faults rng ~n ~horizon)) ] else [])
    @ (if with_net then [ cl (Net (gen_net rng)) ] else [])
    @
    if chance rng 0.3 then [ cl (Seed (i (Sm.int_in rng 1 9))) ] else []
  in
  base @ tail @ layers

let to_file sc = [ { dname = "main"; dpos = no_pos; body = { e = Scenario sc; epos = no_pos } } ]

let file ~seed ~index =
  let rng = Sm.create ((seed * 2_000_003) + index) in
  let sc () = scenario ~seed:(seed + 7) ~index:(Sm.int rng 1_000_000) in
  let a = { dname = "a"; dpos = no_pos; body = { e = Scenario (sc ()); epos = no_pos } } in
  let refa = { e = Ref "a"; epos = no_pos } in
  let overlay_body =
    { e =
        Overlay
          ( refa,
            [ cl (Steps { sv = Var "x"; spos = no_pos });
              cl (Net { empty_net with drop = Some (f 0.05) }) ] );
      epos = no_pos }
  in
  let main_body =
    match Sm.int rng 5 with
    | 0 -> refa
    | 1 -> { e = Seq [ refa; { e = Scenario (sc ()); epos = no_pos } ]; epos = no_pos }
    | 2 ->
      { e =
          Sweep
            { var = "x";
              values = List.init (Sm.int_in rng 1 3) (fun k -> i (5 + k));
              body = overlay_body };
        epos = no_pos }
    | 3 -> { e = Overlay (refa, [ cl (Rounds (i 9)); cl (Arrivals (Uniform (i 2))) ]); epos = no_pos }
    | _ -> { e = Seq [ refa; { e = Experiment "e15"; epos = no_pos } ]; epos = no_pos }
  in
  [ a; { dname = "main"; dpos = no_pos; body = main_body } ]

(* ---- shrinking ---- *)

let replace_clause sc kind c' =
  List.map (fun x -> if clause_kind x.c = kind then cl c' else x) sc

let drop_clause sc kind = List.filter (fun x -> clause_kind x.c <> kind) sc

let has_clause sc kind = List.exists (fun x -> clause_kind x.c = kind) sc

let find_clause sc kind = List.find_opt (fun x -> clause_kind x.c = kind) sc

let rec shrink_arrival = function
  | Plus (a, b) -> [ a; b ] @ List.map (fun a' -> Plus (a', b)) (shrink_arrival a)
  | Diurnal { body; _ } -> [ body ]
  | Flash ({ width = Some _; _ } as fl) -> [ Flash { fl with width = None } ]
  | Uniform _ | Poisson _ | Point_arrival _ | Hotspot _ | Flash _ -> []

let halve s =
  match s.sv with
  | Int k when k > 1 -> [ i (k / 2) ]
  | _ -> []

let shrink sc =
  let drops =
    List.filter_map
      (fun kind -> if has_clause sc kind then Some (drop_clause sc kind) else None)
      [ "net"; "faults"; "partition"; "lifetime"; "warmup"; "workload-seed"; "seed" ]
  in
  let fault_drops =
    match find_clause sc "faults" with
    | Some { c = Faults fs; _ } when List.length fs > 1 ->
      List.mapi (fun k _ -> replace_clause sc "faults" (Faults (List.filteri (fun j _ -> j <> k) fs))) fs
    | _ -> []
  in
  let arrival_shrinks =
    match find_clause sc "arrivals" with
    | Some { c = Arrivals a; _ } ->
      List.map (fun a' -> replace_clause sc "arrivals" (Arrivals a')) (shrink_arrival a)
    | _ -> []
  in
  let horizon_shrinks =
    (match find_clause sc "steps" with
    | Some { c = Steps s; _ } -> List.map (fun s' -> replace_clause sc "steps" (Steps s')) (halve s)
    | _ -> [])
    @
    match find_clause sc "rounds" with
    | Some { c = Rounds s; _ } ->
      List.map (fun s' -> replace_clause sc "rounds" (Rounds s')) (halve s)
    | _ -> []
  in
  let graph_shrinks =
    match find_clause sc "graph" with
    | Some { c = Graph (Cycle { sv = Int 4; _ }); _ } -> []
    | Some { c = Graph _; _ } -> [ replace_clause sc "graph" (Graph (Cycle (i 4))) ]
    | _ -> []
  in
  let init_shrinks =
    match find_clause sc "init" with
    | Some { c = Init (Point { sv = Int k; _ }); _ } when k <= 16 -> []
    | Some { c = Init _; _ } -> [ replace_clause sc "init" (Init (Point (i 16))) ]
    | _ -> []
  in
  let balancer_shrinks =
    match find_clause sc "balancer" with
    | Some { c = Balancer b; _ } when b.self_loops <> None || b.algo_seed <> None ->
      [ replace_clause sc "balancer"
          (Balancer { b with self_loops = None; algo_seed = None }) ]
    | _ -> []
  in
  drops @ graph_shrinks @ init_shrinks @ horizon_shrinks @ fault_drops @ arrival_shrinks
  @ balancer_shrinks

let minimize ~fails sc =
  let budget = ref 200 in
  let rec go sc =
    if !budget <= 0 then sc
    else
      match List.find_opt (fun c -> decr budget; !budget >= 0 && fails c) (shrink sc) with
      | Some smaller -> go smaller
      | None -> sc
  in
  go sc
