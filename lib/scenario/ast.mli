(** Abstract syntax of the [.lbs] scenario language.

    A scenario is a declarative experiment: a graph family, an initial
    load vector, a balancer, a workload (closed [steps] horizon or an
    open-system arrival/lifetime stream), and optional fault, network
    and distributed-cluster layers.  Scenario {e expressions} compose
    atomic scenarios with [overlay] (clause-wise override), [sweep]
    (parameter ranges via [$var] substitution) and [seq] (run several
    in order); a file is a list of [let] bindings.

    Every node carries the source position of its leading token so the
    checker ({!Check}) and the expander ({!Compile}) can report
    [line:col]-addressed errors; {!strip_file} erases positions, giving
    the structural equality the [parse ∘ print = id] round-trip tests
    use. *)

type pos = { line : int; col : int }

val no_pos : pos
(** [{line = 0; col = 0}], the position of synthesized nodes. *)

type scalar_v =
  | Int of int
  | Float of float
  | Var of string  (** [$x], bound by an enclosing [sweep] *)

type scalar = { sv : scalar_v; spos : pos }

val int_scalar : int -> scalar
(** Position-free literal, for programmatic construction. *)

val float_scalar : float -> scalar

type graph =
  | Cycle of scalar
  | Torus of scalar * scalar  (** sides; must be square (harness grammar) *)
  | Hypercube of scalar  (** dimension *)
  | Complete of scalar
  | Clique of scalar * scalar  (** n, d — the Theorem 4.2 circulant *)
  | Random of scalar * scalar * scalar  (** n, d, seed *)

type init =
  | Point of scalar  (** total, all on node 0 *)
  | Bimodal of scalar * scalar  (** high, low *)
  | Uniform_random of scalar * scalar  (** total, seed *)

type balancer = {
  bname : string;  (** {!Harness.Experiment.algo_of_string} name *)
  self_loops : scalar option;
  algo_seed : scalar option;  (** seed of the randomized baselines *)
}

type arrival =
  | Uniform of scalar  (** exact batch per round *)
  | Poisson of scalar  (** mean rate *)
  | Point_arrival of scalar * scalar  (** node, batch *)
  | Hotspot of scalar  (** batch at the max-loaded node *)
  | Flash of { size : scalar; at : scalar; node : scalar; width : scalar option }
  | Diurnal of { period : scalar; amplitude : scalar; body : arrival }
  | Plus of arrival * arrival  (** {!Workload.Arrival.overlay} *)

type lifetime =
  | Immortal
  | Work of scalar  (** uniform completion attempts per round *)
  | Service of scalar  (** per-node service rate *)
  | Geometric of scalar  (** mean lifetime *)
  | Fixed of scalar  (** deterministic lifetime in rounds *)

type warmup = Auto | Fixed_rounds of scalar

type state_loss = Wipe | Keep
type token_policy = Lose | Spill

type fault =
  | Crash of { frac : scalar; step : scalar; state : state_loss; tokens : token_policy }
  | Outage of { rate : scalar; step : scalar; duration : scalar }
  | Shock of { amount : scalar; step : scalar; node : scalar option }

type fault_item = { f : fault; fpos : pos }

type onoff = On | Off

type net = {
  drop : scalar option;
  dup : scalar option;
  reorder : scalar option;
  delay : scalar option;
  staleness : scalar option;
  degrade : onoff option;
  net_seed : scalar option;
}

val empty_net : net

type dist = {
  shards : scalar option;
  kills : (scalar * scalar) list;  (** shard \@ round *)
  terms : (scalar * scalar) list;
  coord_kills : scalar list;
  dist_drop : scalar option;
  delay_prob : scalar option;
  delay_max : scalar option;
}

val empty_dist : dist

type partition = {
  cut : scalar list;  (** isolated shard group *)
  from_s : scalar;  (** window opens, seconds *)
  until_s : scalar;
}

type clause_v =
  | Graph of graph
  | Init of init
  | Balancer of balancer
  | Steps of scalar  (** closed-system horizon *)
  | Rounds of scalar  (** open-system / cluster horizon *)
  | Arrivals of arrival
  | Lifetime of lifetime
  | Warmup of warmup
  | Workload_seed of scalar
  | Seed of scalar  (** fault-plan realization seed *)
  | Faults of fault_item list
  | Net of net
  | Dist of dist
  | Partition of partition

type clause = { c : clause_v; cpos : pos }

type scenario = clause list

type expr_v =
  | Scenario of scenario
  | Overlay of expr * scenario  (** [overlay e with { … }] *)
  | Sweep of { var : string; values : scalar list; body : expr }
  | Seq of expr list
  | Experiment of string  (** a {!Harness.Suite} registry id *)
  | Ref of string

and expr = { e : expr_v; epos : pos }

type decl = { dname : string; dpos : pos; body : expr }

type file = decl list

val clause_kind : clause_v -> string
(** The clause keyword ("graph", "net", …), for duplicate-clause
    diagnostics and overlay merging. *)

val strip_file : file -> file
(** Erase every position (to {!no_pos}); [strip_file a = strip_file b]
    is equality modulo positions. *)

val strip_scenario : scenario -> scenario
