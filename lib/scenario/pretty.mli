(** Canonical printer for [.lbs] files.

    [Parser.parse (file f) = Ok (Ast.strip_file f)] for every file [f]
    built from parseable values (non-negative numeric literals); this
    is the round-trip property the qcheck suite exercises.  Floats are
    printed so they re-lex to the same IEEE value: integral floats as
    ["5.0"], others via [%g] when that round-trips and [%.17g]
    otherwise. *)

val scalar : Ast.scalar -> string

val scenario : indent:int -> Ast.scenario -> string
(** The clause lines of a scenario body, each indented by [indent]
    spaces and newline-terminated (the surrounding braces are the
    caller's). *)

val expr : indent:int -> Ast.expr -> string

val file : Ast.file -> string
(** The whole file: one [let] binding per declaration, separated by
    blank lines, trailing newline. *)
