type token_v =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | AT
  | DOLLAR
  | EQUALS
  | PLUS
  | DOTDOT
  | EOF

type token = { t : token_v; tpos : Ast.pos }

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT k -> Printf.sprintf "integer %d" k
  | FLOAT f -> Printf.sprintf "number %g" f
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | AT -> "'@'"
  | DOLLAR -> "'$'"
  | EQUALS -> "'='"
  | PLUS -> "'+'"
  | DOTDOT -> "'..'"
  | EOF -> "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_rest c = is_alpha c || is_digit c || c = '_' || c = '-'

let tokenize src =
  let len = String.length src in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let toks = ref [] in
  let error = ref None in
  let pos () = { Ast.line = !line; Ast.col = !col } in
  let advance () =
    (if !i < len && src.[!i] = '\n' then begin
       incr line;
       col := 0
     end);
    incr i;
    incr col
  in
  let push t p = toks := { t; tpos = p } :: !toks in
  while !error = None && !i < len do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < len && src.[!i] <> '\n' do
        advance ()
      done
    else begin
      let p = pos () in
      match c with
      | '{' -> push LBRACE p; advance ()
      | '}' -> push RBRACE p; advance ()
      | '(' -> push LPAREN p; advance ()
      | ')' -> push RPAREN p; advance ()
      | '[' -> push LBRACKET p; advance ()
      | ']' -> push RBRACKET p; advance ()
      | ',' -> push COMMA p; advance ()
      | ';' -> push SEMI p; advance ()
      | '@' -> push AT p; advance ()
      | '$' -> push DOLLAR p; advance ()
      | '=' -> push EQUALS p; advance ()
      | '+' -> push PLUS p; advance ()
      | '.' ->
        if !i + 1 < len && src.[!i + 1] = '.' then begin
          push DOTDOT p;
          advance ();
          advance ()
        end
        else error := Some ("stray '.' (ranges are written 'a .. b')", p)
      | c when is_digit c ->
        let start = !i in
        while !i < len && is_digit src.[!i] do
          advance ()
        done;
        let is_float = ref false in
        (if
           !i + 1 < len
           && src.[!i] = '.'
           && src.[!i + 1] <> '.'
           && is_digit src.[!i + 1]
         then begin
           is_float := true;
           advance ();
           while !i < len && is_digit src.[!i] do
             advance ()
           done
         end);
        (if !i < len && (src.[!i] = 'e' || src.[!i] = 'E') then begin
           let save_i = !i and save_col = !col in
           advance ();
           if !i < len && (src.[!i] = '+' || src.[!i] = '-') then advance ();
           if !i < len && is_digit src.[!i] then begin
             is_float := true;
             while !i < len && is_digit src.[!i] do
               advance ()
             done
           end
           else begin
             (* not an exponent after all; rewind to before the 'e' so
                it lexes as the start of an identifier *)
             i := save_i;
             col := save_col
           end
         end);
        let text = String.sub src start (!i - start) in
        if !is_float then
          match float_of_string_opt text with
          | Some f -> push (FLOAT f) p
          | None -> error := Some (Printf.sprintf "bad number %S" text, p)
        else (
          match int_of_string_opt text with
          | Some k -> push (INT k) p
          | None -> error := Some (Printf.sprintf "integer %S out of range" text, p))
      | c when is_alpha c ->
        let start = !i in
        while !i < len && is_ident_rest src.[!i] do
          advance ()
        done;
        push (IDENT (String.sub src start (!i - start))) p
      | c ->
        error := Some (Printf.sprintf "unexpected character %C" c, p)
    end
  done;
  match !error with
  | Some e -> Error e
  | None ->
    push EOF (pos ());
    Ok (List.rev !toks)
