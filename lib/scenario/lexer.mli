(** Hand-written lexer for the [.lbs] concrete syntax.

    Tokens carry 1-based [line:col] source positions.  Comments run
    from [#] to end of line.  Identifiers are
    [[A-Za-z][A-Za-z0-9_-]*] — the ['-'] lets CLI-style names like
    [rotor-router] and [kill-coord] lex as single tokens.  Numbers are
    unsigned decimal with an optional fraction and exponent; a ['.'] is
    only part of a number when a digit follows, so range syntax like
    [100..200] lexes as [INT 100; DOTDOT; INT 200]. *)

type token_v =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | AT
  | DOLLAR
  | EQUALS
  | PLUS
  | DOTDOT
  | EOF

type token = { t : token_v; tpos : Ast.pos }

val token_name : token_v -> string
(** Human description for parse errors ("'{'", "identifier", …). *)

val tokenize : string -> (token list, string * Ast.pos) result
(** The token stream of a source text, ending in [EOF].  [Error] is a
    message plus the offending position. *)
