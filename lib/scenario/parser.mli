(** Recursive-descent parser for the [.lbs] concrete syntax.

    The grammar (clause keywords are contextual — only [let],
    [scenario], [overlay], [with], [sweep], [in], [seq] and
    [experiment] are reserved as binding names):

    {v
    file     ::= ("let" NAME "=" expr)*
    expr     ::= "scenario" "{" clause* "}"
               | "overlay" expr "with" "{" clause* "}"
               | "sweep" "$" NAME "in" values expr
               | "seq" "[" expr (";" expr)* "]"
               | "experiment" NAME
               | "(" expr ")"
               | NAME
    values   ::= "[" scalar ("," scalar)* "]" | INT ".." INT
    clause   ::= "graph" FAMILY "(" scalars ")"
               | "init" KIND "(" scalars ")"
               | "balancer" NAME opt*        opt ::= ("self-loops"|"algo-seed") "(" scalar ")"
               | ("steps"|"rounds"|"workload-seed"|"seed") scalar
               | "arrivals" arrival          arrival ::= atom ("+" atom)*
               | "lifetime" ("immortal" | KIND "(" scalars ")")
               | "warmup" ("auto" | scalar)
               | "faults" "[" fault (";" fault)* "]"
               | "net" "{" netfield* "}"
               | "dist" "{" distfield* "}"
               | "partition" "[" scalars "]" "@" scalar ".." scalar
    scalar   ::= INT | FLOAT | "$" NAME
    v}

    Integer ranges [a .. b] in [values] expand inclusively at parse
    time.  Parsing is syntax-only: arity and spelling of each construct
    are enforced here, typing rules (clause compatibility, value
    bounds) live in {!Check}. *)

val parse : string -> (Ast.file, string * Ast.pos) result
(** Tokenize and parse a whole [.lbs] source text. *)
