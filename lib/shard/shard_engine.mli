(** Domain-parallel execution of the synchronous balancing model.

    [run] produces {e bit-identical} results to [Core.Engine.run] — the
    same [result] record, field for field — for every deterministic
    balancer, while executing the per-node [assign] loop on one OCaml 5
    domain per shard.  The argument is a balancer {e factory}: each
    shard gets its own instance, so per-node mutable state (rotor
    positions, cumulative-flow accumulators) is owned by exactly one
    domain and never contended.

    Each step runs as two pooled phases separated by barriers:

    + {b assign}: every shard runs [assign] for its own nodes,
      accumulating sends into a private buffer whose slots are
      pre-resolved to either a local node or a halo (outbox) slot — one
      per distinct external neighbor;
    + {b halo merge}: every shard writes its own nodes' next loads and
      adds in the outbox contributions other shards accumulated for it,
      then computes its local min/max load for the discrepancy series.

    Token counts are integers and addition is commutative, so the merge
    order cannot perturb results — determinism needs no further care.
    Randomized balancers (PRNG state advanced in [assign] call order)
    still run correctly but produce a different — equally valid —
    trajectory than the sequential engine.

    Why a factory is safe: every balancer in this repository keeps
    {e per-node} state only, so shard [s]'s instance sees exactly the
    same call sequence for the nodes it owns as the sequential engine
    does.  Instances that derive global trajectories (e.g. the
    continuous-mimicking balancer) recompute them identically in every
    shard from the same inputs. *)

type checkpoint_config = {
  path : string;  (** checkpoint file, atomically overwritten *)
  every : int;    (** write after every [every]-th completed step *)
}

val run :
  ?audit:bool ->
  ?sample_every:int ->
  ?hook:(int -> int array -> unit) ->
  ?stop_at_discrepancy:int ->
  ?strategy:Partition.strategy ->
  ?checkpoint:checkpoint_config ->
  ?resume:Checkpoint.snapshot ->
  shards:int ->
  graph:Graphs.Graph.t ->
  make_balancer:(unit -> Core.Balancer.t) ->
  init:int array ->
  steps:int ->
  unit ->
  Core.Engine.result
(** Options shared with [Core.Engine.run] ([audit], [sample_every],
    [hook], [stop_at_discrepancy]) behave identically; [hook] observes
    the shared load vector (do not mutate).

    - [strategy] (default [Contiguous]): how nodes map to shards.
    - [checkpoint]: periodically snapshot (step, loads, balancer state,
      partial result) so the run can survive a kill; requires a
      checkpointable balancer ([Balancer.resumable]).
    - [resume]: continue from a {!Checkpoint.snapshot}; the final
      result equals the uninterrupted run's, including [steps_run] and
      the series prefix.  The shard count may differ from the run that
      wrote the snapshot.

    @raise Invalid_argument on bad sizes, a degree mismatch, or a
    factory that builds non-identical instances.
    @raise Core.Engine.Invariant_violation as the sequential engine.
    @raise Checkpoint.Checkpoint_error on an incompatible [resume]
    snapshot or an un-checkpointable balancer. *)
