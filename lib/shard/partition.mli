(** Node partitioner for the sharded engine.

    Splits the nodes of a regular graph into [shards] disjoint parts.
    The partition fixes which domain owns (reads the load of, assigns
    the tokens of, and writes the next load of) each node; every edge
    whose endpoints live in different parts becomes halo traffic at the
    per-step exchange. *)

type strategy =
  | Contiguous   (** node [u] → block [u·k/n]: ideal for cycles/tori as
                     generated (index-local neighborhoods). *)
  | Round_robin  (** node [u] → [u mod k]: worst-case cut, useful as a
                     stress test of the halo exchange. *)
  | Bfs_blocks   (** contiguous blocks of the BFS order from node 0:
                     approximates a low-cut partition on any connected
                     graph without an external partitioner. *)

val strategy_name : strategy -> string

type t = {
  shards : int;
  strategy : strategy;
  owner : int array;        (** node → shard *)
  parts : int array array;  (** shard → owned nodes, ascending *)
  local_index : int array;  (** node → its index within [parts.(owner)] *)
}

type stats = {
  sizes : int array;          (** nodes per shard *)
  cut_edges : int;            (** edges crossing shards (halo volume) *)
  internal_edges : int;
  boundary_nodes : int array; (** per shard: own nodes incident to a cut edge *)
  max_imbalance : float;      (** max part size / ideal part size *)
}

val make : ?strategy:strategy -> shards:int -> Graphs.Graph.t -> t
(** Parts are balanced to within one node for every strategy.  Parts may
    be empty when [shards > n].
    @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int
val owner : t -> int -> int
val nodes_of : t -> int -> int array

val stats : t -> Graphs.Graph.t -> stats
val pp_stats : Format.formatter -> stats -> unit
