type state = {
  mutable job : (int -> unit) option;
  mutable generation : int;
  mutable pending : int;
  mutable failure : (int * exn) option; (* lowest worker index wins *)
  mutable stopping : bool;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
}

type t = {
  size : int;
  st : state;
  domains : unit Domain.t array;
}

let worker_loop st w =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock st.mutex;
    while st.generation = !seen && not st.stopping do
      Condition.wait st.work_ready st.mutex
    done;
    if st.stopping then Mutex.unlock st.mutex
    else begin
      seen := st.generation;
      let job =
        match st.job with
        | Some job -> job
        | None -> invalid_arg "Shard.Pool: work signalled with no job installed"
      in
      Mutex.unlock st.mutex;
      let outcome = try Ok (job w) with e -> Error e in
      Mutex.lock st.mutex;
      (match outcome with
      | Ok () -> ()
      | Error e -> (
        match st.failure with
        | Some (w0, _) when w0 <= w -> ()
        | _ -> st.failure <- Some (w, e)));
      st.pending <- st.pending - 1;
      if st.pending = 0 then Condition.signal st.work_done;
      Mutex.unlock st.mutex;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let st =
    {
      job = None;
      generation = 0;
      pending = 0;
      failure = None;
      stopping = false;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
    }
  in
  let doms = Array.init domains (fun w -> Domain.spawn (fun () -> worker_loop st w)) in
  { size = domains; st; domains = doms }

let size t = t.size

let run t job =
  let st = t.st in
  Mutex.lock st.mutex;
  if st.stopping then begin
    Mutex.unlock st.mutex;
    invalid_arg "Pool.run: pool is shut down"
  end;
  st.job <- Some job;
  st.generation <- st.generation + 1;
  st.pending <- t.size;
  Condition.broadcast st.work_ready;
  while st.pending > 0 do
    Condition.wait st.work_done st.mutex
  done;
  let failure = st.failure in
  st.failure <- None;
  st.job <- None;
  Mutex.unlock st.mutex;
  match failure with None -> () | Some (_, e) -> raise e

let shutdown t =
  let st = t.st in
  Mutex.lock st.mutex;
  if not st.stopping then begin
    st.stopping <- true;
    Condition.broadcast st.work_ready
  end;
  Mutex.unlock st.mutex;
  Array.iter Domain.join t.domains

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map t f items =
  let n = Array.length items in
  let results = Array.make n None in
  let cursor = Atomic.make 0 in
  run t (fun _w ->
      let rec pull () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (f items.(i));
          pull ()
        end
      in
      pull ());
  Array.map (function Some v -> v | None -> assert false) results
