(** Crash-resumable checkpoints for long simulation runs.

    A checkpoint captures everything {!Shard_engine.run} needs to
    continue a run as if it had never stopped: the completed step, the
    full load vector, the balancer's per-node state (via
    [Balancer.persist]), and the already-accumulated pieces of the
    result record (series, minimum load, target hit).  The on-disk
    format is a magic string + version + [Marshal] payload, written to a
    temp file and renamed so a crash can never leave a truncated
    checkpoint behind.

    Checkpoints are shard-count independent: state is stored per node,
    so a run checkpointed with 8 shards can resume with 2 (or
    sequentially). *)

exception Checkpoint_error of string

type snapshot = {
  balancer_name : string;       (** for mismatch detection on resume *)
  n : int;
  degree : int;
  total_steps : int;            (** the horizon of the original run *)
  step : int;                   (** last completed step *)
  loads : int array;            (** load vector after [step] *)
  balancer_state : int array option;
      (** merged per-node balancer state; [None] for stateless balancers *)
  series_rev : (int * int) list;
      (** (step, discrepancy) samples so far, newest first *)
  min_load_seen : int;
  reached_target : int option;
}

val save : path:string -> snapshot -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path]. *)

val load : path:string -> snapshot
(** @raise Checkpoint_error on a missing, foreign or corrupt file. *)

val describe : snapshot -> string
(** One-line human summary (for CLI logging). *)
