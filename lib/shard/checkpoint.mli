(** Crash-resumable checkpoints for long simulation runs.

    A checkpoint captures everything {!Shard_engine.run} needs to
    continue a run as if it had never stopped: the completed step, the
    full load vector, the balancer's per-node state (via
    [Balancer.persist]), and the already-accumulated pieces of the
    result record (series, minimum load, target hit).

    Durability guarantees (see DESIGN.md §8.3):
    - the on-disk format is magic + version + payload length + CRC-32 +
      [Marshal] payload, so truncation and bit rot are detected on load
      rather than deserialized into silently wrong state;
    - writes go to a temp file that is [fsync]ed before being renamed
      into place, so a crash can never publish a torn checkpoint;
    - before the rename, the previous good checkpoint is rotated to
      [path ^ ".prev"]; {!recover} falls back to it automatically when
      the primary is missing or fails validation.

    Checkpoints are shard-count independent: state is stored per node,
    so a run checkpointed with 8 shards can resume with 2 (or
    sequentially). *)

type error =
  | Missing of string  (** no file at the path *)
  | Bad_magic of string  (** not a checkpoint file at all *)
  | Bad_version of { path : string; found : int; expected : int }
  | Truncated of string  (** shorter than its header claims *)
  | Bad_checksum of { path : string; stored : int32; computed : int32 }
      (** payload bytes fail CRC-32 — torn write or bit rot *)
  | Bad_payload of string  (** payload deserialized but is inconsistent *)
  | Mismatch of string
      (** a valid snapshot that does not fit the run being resumed
          (different graph, balancer, or horizon) *)
  | Unrecoverable of {
      path : string;  (** the primary path {!recover} was asked for *)
      attempts : int;  (** total load sequences tried (1 + retries) *)
      rejected : (string * error) list;
          (** every file rejected by the final attempt, with the
              validation each one failed — the full report a supervisor
              needs to decide whether a restart is worth retrying *)
    }

exception Checkpoint_error of error

val error_message : error -> string
(** Human-readable one-liner naming the failed validation. *)

type snapshot = {
  balancer_name : string;       (** for mismatch detection on resume *)
  n : int;
  degree : int;
  total_steps : int;            (** the horizon of the original run *)
  step : int;                   (** last completed step *)
  loads : int array;            (** load vector after [step] *)
  balancer_state : int array option;
      (** merged per-node balancer state; [None] for stateless balancers *)
  series_rev : (int * int) list;
      (** (step, discrepancy) samples so far, newest first *)
  min_load_seen : int;
  reached_target : int option;
}

val save : path:string -> snapshot -> unit
(** Durable publish: writes and fsyncs [path ^ ".tmp"], rotates any
    existing checkpoint to [path ^ ".prev"], then renames the temp file
    over [path]. *)

val load : path:string -> snapshot
(** Load and validate one file.  @raise Checkpoint_error naming the
    specific validation that failed (magic, version, truncation,
    checksum, payload). *)

val prev_path : string -> string
(** The rotated-copy path: [path ^ ".prev"]. *)

type source = Primary | Rotated

type recovery = {
  snapshot : snapshot;
  source : source;  (** which file the snapshot came from *)
  rejected : (string * error) list;
      (** files that failed validation before one succeeded, for logging *)
}

val recover : ?retries:int -> ?backoff:float -> path:string -> unit -> recovery
(** [recover ~path ()] loads the newest usable checkpoint: the primary
    if it validates, otherwise the rotated [.prev] copy.  When both fail
    the whole sequence is retried up to [retries] more times (default 2)
    with exponentially growing sleeps starting at [backoff] seconds
    (default 0.05) — a checkpoint being written concurrently by a dying
    run settles after its rename.  Both knobs are caller-configurable so
    a supervisor restarting a crashed process can choose its own budget
    (e.g. [lb_node --recover-retries]).  @raise Checkpoint_error with
    {!Unrecoverable} — carrying the attempt count and the per-file
    rejection report — when no attempt produces a usable snapshot. *)

val describe : snapshot -> string
(** One-line human summary (for CLI logging). *)
