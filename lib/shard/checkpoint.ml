exception Checkpoint_error of string

let magic = "LOADBAL-CKPT"
let version = 1

type snapshot = {
  balancer_name : string;
  n : int;
  degree : int;
  total_steps : int;
  step : int;
  loads : int array;
  balancer_state : int array option;
  series_rev : (int * int) list;
  min_load_seen : int;
  reached_target : int option;
}

let save ~path snap =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc snap []);
  (* Atomic publish: a crash mid-write leaves the previous checkpoint
     intact, never a truncated file. *)
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then
    raise (Checkpoint_error (Printf.sprintf "no checkpoint at %s" path));
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        let header = really_input_string ic (String.length magic) in
        if header <> magic then
          raise (Checkpoint_error (Printf.sprintf "%s: not a checkpoint file" path));
        let v = input_binary_int ic in
        if v <> version then
          raise
            (Checkpoint_error
               (Printf.sprintf "%s: checkpoint version %d, expected %d" path v version));
        let snap : snapshot = Marshal.from_channel ic in
        if Array.length snap.loads <> snap.n then
          raise (Checkpoint_error (Printf.sprintf "%s: corrupt checkpoint" path));
        snap
      with End_of_file | Failure _ ->
        (* Truncated file or a Marshal payload that does not parse. *)
        raise (Checkpoint_error (Printf.sprintf "%s: corrupt checkpoint" path)))

let describe snap =
  Printf.sprintf "%s: step %d/%d, n=%d, d=%d%s" snap.balancer_name snap.step
    snap.total_steps snap.n snap.degree
    (match snap.balancer_state with
    | Some _ -> ", with balancer state"
    | None -> "")
