type error =
  | Missing of string
  | Bad_magic of string
  | Bad_version of { path : string; found : int; expected : int }
  | Truncated of string
  | Bad_checksum of { path : string; stored : int32; computed : int32 }
  | Bad_payload of string
  | Mismatch of string
  | Unrecoverable of {
      path : string;
      attempts : int;
      rejected : (string * error) list;
    }

exception Checkpoint_error of error

let rec error_message = function
  | Missing path -> Printf.sprintf "no checkpoint at %s" path
  | Bad_magic path -> Printf.sprintf "%s: not a checkpoint file (bad magic)" path
  | Bad_version { path; found; expected } ->
    Printf.sprintf "%s: checkpoint version %d, expected %d" path found expected
  | Truncated path -> Printf.sprintf "%s: truncated checkpoint (torn write?)" path
  | Bad_checksum { path; stored; computed } ->
    Printf.sprintf "%s: checksum mismatch (stored %08lx, computed %08lx)" path stored
      computed
  | Bad_payload path -> Printf.sprintf "%s: corrupt checkpoint payload" path
  | Mismatch msg -> msg
  | Unrecoverable { path; attempts; rejected } ->
    Printf.sprintf "%s: unrecoverable after %d attempt%s: %s" path attempts
      (if attempts = 1 then "" else "s")
      (String.concat "; "
         (List.map
            (fun (p, e) -> Printf.sprintf "%s [%s]" p (error_message e))
            rejected))

let fail e = raise (Checkpoint_error e)

let magic = "LOADBAL-CKPT"
let version = 2

type snapshot = {
  balancer_name : string;
  n : int;
  degree : int;
  total_steps : int;
  step : int;
  loads : int array;
  balancer_state : int array option;
  series_rev : (int * int) list;
  min_load_seen : int;
  reached_target : int option;
}

let prev_path path = path ^ ".prev"

let save ~path snap =
  let payload = Marshal.to_string snap [] in
  let probing = Obs.Probe.enabled () in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      output_binary_int oc (String.length payload);
      output_binary_int oc (Int32.to_int (Crc32.string payload));
      output_string oc payload;
      (* Durability before visibility: the bytes must be on disk before
         the rename makes them the checkpoint. *)
      let t0 = if probing then Unix.gettimeofday () else 0.0 in
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      if probing then
        Obs.Probe.on_checkpoint
          ~bytes:(String.length magic + 12 + String.length payload)
          ~fsync_seconds:(Unix.gettimeofday () -. t0));
  (* Keep the previous good checkpoint as a fallback: if this process is
     killed between the two renames, [recover] still finds [.prev]. *)
  if Sys.file_exists path then Sys.rename path (prev_path path);
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then fail (Missing path);
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        try really_input_string ic (String.length magic)
        with End_of_file -> fail (Truncated path)
      in
      if header <> magic then fail (Bad_magic path);
      let v = try input_binary_int ic with End_of_file -> fail (Truncated path) in
      if v <> version then fail (Bad_version { path; found = v; expected = version });
      let len = try input_binary_int ic with End_of_file -> fail (Truncated path) in
      if len < 0 then fail (Bad_payload path);
      let stored =
        try Int32.of_int (input_binary_int ic) with End_of_file -> fail (Truncated path)
      in
      let payload =
        try really_input_string ic len with End_of_file -> fail (Truncated path)
      in
      let computed = Crc32.string payload in
      if stored <> computed then fail (Bad_checksum { path; stored; computed });
      let snap : snapshot =
        (* The checksum already vouches for the bytes; a Marshal failure
           here means the payload was written by something else. *)
        try Marshal.from_string payload 0 with Failure _ -> fail (Bad_payload path)
      in
      if Array.length snap.loads <> snap.n then fail (Bad_payload path);
      snap)

type source = Primary | Rotated

type recovery = {
  snapshot : snapshot;
  source : source;
  rejected : (string * error) list;
}

let recover ?(retries = 2) ?(backoff = 0.05) ~path () =
  let attempt () =
    match load ~path with
    | snap -> Ok { snapshot = snap; source = Primary; rejected = [] }
    | exception Checkpoint_error primary_err -> (
      let prev = prev_path path in
      match load ~path:prev with
      | snap ->
        Ok { snapshot = snap; source = Rotated; rejected = [ (path, primary_err) ] }
      | exception Checkpoint_error prev_err ->
        Error [ (path, primary_err); (prev, prev_err) ])
  in
  let attempts = 1 + max 0 retries in
  let rec go attempts_left sleep =
    match attempt () with
    | Ok r -> r
    | Error rejected when attempts_left <= 1 ->
      (* Surface the full rejected-file report: the caller (e.g. a
         restarting lb_node) needs to know which files failed and why,
         not just the primary's first error. *)
      fail (Unrecoverable { path; attempts; rejected })
    | Error _ ->
      Unix.sleepf sleep;
      go (attempts_left - 1) (sleep *. 2.0)
  in
  go attempts backoff

let describe snap =
  Printf.sprintf "%s: step %d/%d, n=%d, d=%d%s" snap.balancer_name snap.step
    snap.total_steps snap.n snap.degree
    (match snap.balancer_state with
    | Some _ -> ", with balancer state"
    | None -> "")
