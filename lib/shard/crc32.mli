(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    Used to checksum checkpoint payloads so that a file torn by a crash
    mid-write — or flipped bits from a bad disk — is detected on load
    instead of being deserialized into silently wrong state. *)

val string : string -> int32
(** Checksum of a whole string. *)

val digest : ?init:int32 -> string -> pos:int -> len:int -> int32
(** Incremental form: [digest ~init s ~pos ~len] extends a running
    checksum ([init] defaults to the empty-string state) over a
    substring.  [string s = digest s ~pos:0 ~len:(String.length s)].
    @raise Invalid_argument on an out-of-range substring. *)
