type checkpoint_config = { path : string; every : int }

(* Everything one worker domain needs for its part of a step.  [acc] is
   the shard's accumulation buffer: slots [0 .. m-1] are the next loads
   of its own m nodes, slots [m ..] are outbox slots, one per distinct
   external neighbor (the halo).  [targets] pre-resolves every
   (local node, port) pair to an [acc] slot, so the hot loop is a single
   indexed add with no ownership branch. *)
type shard_ctx = {
  mine : int array;
  targets : int array;       (* length m * d *)
  acc : int array;           (* length m + ext_count *)
  ports : int array;         (* per-worker assign buffer, length d+ *)
  inbox_shard : int array;   (* halo: which shard's acc to read *)
  inbox_slot : int array;    (* ... at which slot *)
  inbox_local : int array;   (* ... added into which of my local nodes *)
  tracker : Core.Fairness.t option;
  mutable lo : int;          (* per-step min/max over my nodes *)
  mutable hi : int;
  mutable moved : int;       (* per-step tokens sent on original ports *)
}

let scan_discrepancy_and_min loads =
  let lo = ref loads.(0) and hi = ref loads.(0) in
  for i = 1 to Array.length loads - 1 do
    let x = loads.(i) in
    if x < !lo then lo := x;
    if x > !hi then hi := x
  done;
  (!hi - !lo, !lo)

let build_contexts ~graph ~part ~d ~dp ~audit ~self_loops =
  let shards = part.Partition.shards in
  let adj = Graphs.Graph.adjacency graph in
  let n = Graphs.Graph.n graph in
  let ext_nodes = Array.make shards [||] in
  let ctxs =
    Array.init shards (fun s ->
        let mine = part.Partition.parts.(s) in
        let m = Array.length mine in
        let targets = Array.make (m * d) 0 in
        let ext_slot = Hashtbl.create 64 in
        let ext_rev = ref [] in
        let ext_count = ref 0 in
        for i = 0 to m - 1 do
          let base = mine.(i) * d in
          for k = 0 to d - 1 do
            let v = adj.(base + k) in
            targets.((i * d) + k) <-
              (if part.Partition.owner.(v) = s then part.Partition.local_index.(v)
               else
                 m
                 +
                 match Hashtbl.find_opt ext_slot v with
                 | Some j -> j
                 | None ->
                   let j = !ext_count in
                   Hashtbl.add ext_slot v j;
                   ext_rev := v :: !ext_rev;
                   incr ext_count;
                   j)
          done
        done;
        ext_nodes.(s) <- Array.of_list (List.rev !ext_rev);
        {
          mine;
          targets;
          acc = Array.make (m + !ext_count) 0;
          ports = Array.make dp 0;
          inbox_shard = [||];
          inbox_slot = [||];
          inbox_local = [||];
          tracker =
            (if audit then Some (Core.Fairness.create ~degree:d ~self_loops ~n)
             else None);
          lo = max_int;
          hi = min_int;
          moved = 0;
        })
  in
  (* Halo wiring: every outbox slot of shard o targeting a node of shard
     s becomes an inbox entry of s. *)
  let inboxes = Array.make shards [] in
  for o = 0 to shards - 1 do
    let m_o = Array.length ctxs.(o).mine in
    Array.iteri
      (fun j v ->
        let s = part.Partition.owner.(v) in
        inboxes.(s) <- (o, m_o + j, part.Partition.local_index.(v)) :: inboxes.(s))
      ext_nodes.(o)
  done;
  Array.mapi
    (fun s ctx ->
      let entries = Array.of_list (List.rev inboxes.(s)) in
      {
        ctx with
        inbox_shard = Array.map (fun (o, _, _) -> o) entries;
        inbox_slot = Array.map (fun (_, j, _) -> j) entries;
        inbox_local = Array.map (fun (_, _, li) -> li) entries;
      })
    ctxs

let merged_balancer_state ~part ~balancers ~n =
  match balancers.(0).Core.Balancer.persist with
  | None -> None
  | Some _ ->
    let combined = Array.make n 0 in
    Array.iteri
      (fun s b ->
        match b.Core.Balancer.persist with
        | None -> assert false
        | Some p ->
          let saved = p.Core.Balancer.state_save () in
          Array.iter (fun u -> combined.(u) <- saved.(u)) part.Partition.parts.(s))
      balancers;
    Some combined

let run ?(audit = false) ?(sample_every = 1) ?hook ?stop_at_discrepancy
    ?(strategy = Partition.Contiguous) ?checkpoint ?resume ~shards ~graph
    ~make_balancer ~init ~steps () =
  if shards < 1 then invalid_arg "Shard_engine.run: shards must be >= 1";
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  if Array.length init <> n then invalid_arg "Shard_engine.run: init length mismatch";
  if steps < 0 then invalid_arg "Shard_engine.run: negative step count";
  if sample_every <= 0 then
    invalid_arg "Shard_engine.run: sample_every must be positive";
  let part = Partition.make ~strategy ~shards graph in
  let balancers = Array.init shards (fun _ -> make_balancer ()) in
  let b0 = balancers.(0) in
  if b0.Core.Balancer.degree <> d then
    invalid_arg
      (Printf.sprintf
         "Shard_engine.run: balancer %s built for degree %d, graph has %d"
         b0.Core.Balancer.name b0.Core.Balancer.degree d);
  Array.iter
    (fun b ->
      if
        b.Core.Balancer.name <> b0.Core.Balancer.name
        || b.Core.Balancer.degree <> b0.Core.Balancer.degree
        || b.Core.Balancer.self_loops <> b0.Core.Balancer.self_loops
      then
        invalid_arg
          "Shard_engine.run: make_balancer must build identical instances")
    balancers;
  let dp = Core.Balancer.d_plus b0 in
  (match checkpoint with
  | Some { every; _ } when every <= 0 ->
    invalid_arg "Shard_engine.run: checkpoint every must be positive"
  | Some _ when not (Core.Balancer.resumable b0) ->
    raise
      (Checkpoint.Checkpoint_error
         (Checkpoint.Mismatch
            (Printf.sprintf
               "balancer %s is not checkpointable (stateful without a persist \
                capability)"
               b0.Core.Balancer.name)))
  | _ -> ());
  let cur =
    match resume with None -> Array.copy init | Some s -> Array.copy s.Checkpoint.loads
  in
  (* Resume: rebuild the exact mid-run state the snapshot captured. *)
  let start, series0, min0, reached0 =
    match resume with
    | None ->
      let d0, m0 = scan_discrepancy_and_min cur in
      let reached =
        match stop_at_discrepancy with
        | Some target when d0 <= target -> Some 0
        | _ -> None
      in
      (0, [ (0, d0) ], m0, reached)
    | Some snap ->
      if snap.Checkpoint.n <> n || snap.Checkpoint.degree <> d then
        raise
          (Checkpoint.Checkpoint_error
             (Checkpoint.Mismatch
                (Printf.sprintf "checkpoint is for n=%d d=%d, run has n=%d d=%d"
                   snap.Checkpoint.n snap.Checkpoint.degree n d)));
      if snap.Checkpoint.balancer_name <> b0.Core.Balancer.name then
        raise
          (Checkpoint.Checkpoint_error
             (Checkpoint.Mismatch
                (Printf.sprintf "checkpoint is for balancer %s, run uses %s"
                   snap.Checkpoint.balancer_name b0.Core.Balancer.name)));
      if snap.Checkpoint.step > steps then
        raise
          (Checkpoint.Checkpoint_error
             (Checkpoint.Mismatch
                (Printf.sprintf "checkpoint is at step %d, past the %d-step horizon"
                   snap.Checkpoint.step steps)));
      (match (snap.Checkpoint.balancer_state, b0.Core.Balancer.persist) with
      | Some state, Some _ ->
        Array.iter
          (fun b ->
            match b.Core.Balancer.persist with
            | Some p -> p.Core.Balancer.state_restore state
            | None -> assert false)
          balancers
      | None, None when b0.Core.Balancer.props.Core.Balancer.stateless -> ()
      | _ ->
        raise
          (Checkpoint.Checkpoint_error
             (Checkpoint.Mismatch
                "checkpoint balancer state does not match the balancer's persist \
                 capability")));
      ( snap.Checkpoint.step,
        snap.Checkpoint.series_rev,
        snap.Checkpoint.min_load_seen,
        snap.Checkpoint.reached_target )
  in
  let ctxs =
    build_contexts ~graph ~part ~d ~dp ~audit
      ~self_loops:b0.Core.Balancer.self_loops
  in
  (* Observation only — same bit-identical guarantee as Core.Engine.
     Workers accumulate into their own ctx; the coordinator reduces, so
     no cross-domain races. *)
  let probing = Obs.Probe.enabled () in
  let series = ref series0 in
  let min_seen = ref min0 in
  let reached = ref reached0 in
  let steps_done = ref start in
  let phase_assign t w =
    let ctx = ctxs.(w) in
    let b = balancers.(w) in
    let assign = b.Core.Balancer.assign in
    let mine = ctx.mine and targets = ctx.targets in
    let acc = ctx.acc and ports = ctx.ports in
    let m = Array.length mine in
    Array.fill acc 0 (Array.length acc) 0;
    ctx.moved <- 0;
    for i = 0 to m - 1 do
      let u = mine.(i) in
      let x = cur.(u) in
      assign ~step:t ~node:u ~load:x ~ports;
      (* Same invariant enforcement (and messages) as Core.Engine.run. *)
      let sum = ref 0 in
      for k = 0 to dp - 1 do
        sum := !sum + ports.(k);
        if k < d && ports.(k) < 0 then
          raise
            (Core.Engine.Invariant_violation
               (Printf.sprintf
                  "%s: node %d step %d sends %d (< 0) on original port %d"
                  b.Core.Balancer.name u t ports.(k) k))
      done;
      if !sum <> x then
        raise
          (Core.Engine.Invariant_violation
             (Printf.sprintf "%s: node %d step %d assigned %d tokens of load %d"
                b.Core.Balancer.name u t !sum x));
      (match ctx.tracker with
      | Some tr -> Core.Fairness.observe tr ~node:u ~load:x ~ports
      | None -> ());
      let base = i * d in
      for k = 0 to d - 1 do
        acc.(targets.(base + k)) <- acc.(targets.(base + k)) + ports.(k)
      done;
      let kept = ref 0 in
      for k = d to dp - 1 do
        kept := !kept + ports.(k)
      done;
      if probing then ctx.moved <- ctx.moved + (x - !kept);
      acc.(i) <- acc.(i) + !kept
    done
  in
  let phase_merge w =
    let ctx = ctxs.(w) in
    let mine = ctx.mine and acc = ctx.acc in
    let m = Array.length mine in
    for i = 0 to m - 1 do
      cur.(mine.(i)) <- acc.(i)
    done;
    for e = 0 to Array.length ctx.inbox_shard - 1 do
      let u = mine.(ctx.inbox_local.(e)) in
      cur.(u) <- cur.(u) + ctxs.(ctx.inbox_shard.(e)).acc.(ctx.inbox_slot.(e))
    done;
    let lo = ref max_int and hi = ref min_int in
    for i = 0 to m - 1 do
      let x = cur.(mine.(i)) in
      if x < !lo then lo := x;
      if x > !hi then hi := x
    done;
    ctx.lo <- !lo;
    ctx.hi <- !hi
  in
  let write_checkpoint t =
    match checkpoint with
    | Some { path; every } when t mod every = 0 && t < steps ->
      Obs.Prof.time "shard.checkpoint" @@ fun () ->
      Checkpoint.save ~path
        {
          Checkpoint.balancer_name = b0.Core.Balancer.name;
          n;
          degree = d;
          total_steps = steps;
          step = t;
          loads = Array.copy cur;
          balancer_state = merged_balancer_state ~part ~balancers ~n;
          series_rev = !series;
          min_load_seen = !min_seen;
          reached_target = !reached;
        }
    | _ -> ()
  in
  Pool.with_pool ~domains:shards (fun pool ->
      try
        for t = start + 1 to steps do
          if !reached <> None && stop_at_discrepancy <> None then raise Exit;
          let sp = Obs.Prof.start "shard.assign" in
          Pool.run pool (phase_assign t);
          Obs.Prof.stop sp;
          let sp = Obs.Prof.start "shard.merge" in
          Pool.run pool phase_merge;
          Obs.Prof.stop sp;
          steps_done := t;
          let lo = ref max_int and hi = ref min_int in
          Array.iter
            (fun ctx ->
              if ctx.lo < !lo then lo := ctx.lo;
              if ctx.hi > !hi then hi := ctx.hi)
            ctxs;
          let disc = !hi - !lo and mn = !lo in
          if probing then begin
            let moved = Array.fold_left (fun a ctx -> a + ctx.moved) 0 ctxs in
            Obs.Probe.on_round ~engine:"shard" ~d_plus:dp ~step:t
              ~tokens_moved:moved ~discrepancy:disc ~max_load:!hi ~min_load:mn
              ~loads:cur
          end;
          if mn < !min_seen then min_seen := mn;
          if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
          Obs.Export.poll ();
          (match hook with Some f -> f t cur | None -> ());
          (match stop_at_discrepancy with
          | Some target when disc <= target && !reached = None -> reached := Some t
          | _ -> ());
          write_checkpoint t
        done
      with Exit -> ());
  {
    Core.Engine.steps_run = !steps_done;
    final_loads = cur;
    series = Array.of_list (List.rev !series);
    min_load_seen = !min_seen;
    reached_target = !reached;
    fairness =
      (if audit then
         Some
           (Core.Fairness.merge_reports
              (Array.to_list ctxs
              |> List.filter_map (fun ctx -> Option.map Core.Fairness.report ctx.tracker)))
       else None);
  }
