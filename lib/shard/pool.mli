(** A pool of long-lived OCaml 5 domains with barrier-style dispatch.

    One abstraction serves both parallelism levels in this repository:

    - {e replica-level}: independent tasks (one experiment per seed)
      pulled off a shared queue with {!map} — used by
      [Harness.Parallel];
    - {e shard-level}: SPMD steps where every worker must run one phase
      and all must finish before the next phase starts — {!run} is a
      dispatch {e and} a barrier, which is exactly the per-step
      synchronization the sharded engine needs.

    Workers block on a condition variable between dispatches, so a pool
    can drive millions of fine-grained phases without respawning
    domains.  [run]/[map] must only be called from the thread that
    created the pool. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (≥ 1). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run pool job] executes [job w] on every worker [w] in
    [0 .. size-1] simultaneously and returns when {e all} have finished
    (a full barrier, with the mutex acquire/release providing the
    happens-before edge that makes each worker's writes visible to every
    participant of the next phase).  If any job raised, the exception of
    the lowest-indexed failing worker is re-raised here — after the
    barrier, so the pool stays usable. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Task-parallel map: workers pull items off an atomic cursor.  Order
    of results matches the input.  Exceptions propagate like {!run}
    (items after a failure on the same worker are skipped). *)

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and always shuts
    it down, even if [f] raises. *)
