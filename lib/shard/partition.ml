type strategy = Contiguous | Round_robin | Bfs_blocks

let strategy_name = function
  | Contiguous -> "contiguous"
  | Round_robin -> "round-robin"
  | Bfs_blocks -> "bfs-blocks"

type t = {
  shards : int;
  strategy : strategy;
  owner : int array;
  parts : int array array;
  local_index : int array;
}

type stats = {
  sizes : int array;
  cut_edges : int;
  internal_edges : int;
  boundary_nodes : int array;
  max_imbalance : float;
}

let of_owner ~strategy ~shards owner =
  let n = Array.length owner in
  let counts = Array.make shards 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= shards then invalid_arg "Partition: owner out of range";
      counts.(s) <- counts.(s) + 1)
    owner;
  let parts = Array.map (fun c -> Array.make c 0) counts in
  let next = Array.make shards 0 in
  let local_index = Array.make n 0 in
  for u = 0 to n - 1 do
    let s = owner.(u) in
    parts.(s).(next.(s)) <- u;
    local_index.(u) <- next.(s);
    next.(s) <- next.(s) + 1
  done;
  { shards; strategy; owner; parts; local_index }

(* Balanced block boundaries: the first (n mod k) blocks get one extra
   node, so sizes differ by at most one. *)
let block_owner ~n ~shards u =
  let q = n / shards and r = n mod shards in
  let cut = r * (q + 1) in
  if u < cut then u / (q + 1) else r + ((u - cut) / max q 1)

let bfs_order g =
  let n = Graphs.Graph.n g in
  let order = Array.make n 0 in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let filled = ref 0 in
  for root = 0 to n - 1 do
    if not seen.(root) then begin
      seen.(root) <- true;
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        order.(!filled) <- u;
        incr filled;
        Graphs.Graph.iter_ports g u (fun _ v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.add v queue
            end)
      done
    end
  done;
  order

let make ?(strategy = Contiguous) ~shards g =
  if shards < 1 then invalid_arg "Partition.make: shards must be >= 1";
  let n = Graphs.Graph.n g in
  let owner =
    match strategy with
    | Contiguous -> Array.init n (fun u -> block_owner ~n ~shards u)
    | Round_robin -> Array.init n (fun u -> u mod shards)
    | Bfs_blocks ->
      let order = bfs_order g in
      let owner = Array.make n 0 in
      Array.iteri (fun pos u -> owner.(u) <- block_owner ~n ~shards pos) order;
      owner
  in
  of_owner ~strategy ~shards owner

let shards t = t.shards
let owner t u = t.owner.(u)
let nodes_of t s = t.parts.(s)

let stats t g =
  let n = Graphs.Graph.n g in
  let sizes = Array.map Array.length t.parts in
  let cut = ref 0 and internal = ref 0 in
  let boundary = Array.make t.shards 0 in
  let is_boundary = Array.make n false in
  Array.iter
    (fun (u, v) ->
      if t.owner.(u) = t.owner.(v) then incr internal
      else begin
        incr cut;
        is_boundary.(u) <- true;
        is_boundary.(v) <- true
      end)
    (Graphs.Graph.edges g);
  for u = 0 to n - 1 do
    if is_boundary.(u) then boundary.(t.owner.(u)) <- boundary.(t.owner.(u)) + 1
  done;
  let ideal = float_of_int n /. float_of_int t.shards in
  let max_imbalance =
    Array.fold_left
      (fun acc c -> Float.max acc (float_of_int c /. ideal))
      0.0 sizes
  in
  { sizes; cut_edges = !cut; internal_edges = !internal;
    boundary_nodes = boundary; max_imbalance }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>shard sizes: [%s]@ cut edges: %d (internal %d)@ boundary nodes: [%s]@ \
     max imbalance: %.3f@]"
    (String.concat "; " (Array.to_list (Array.map string_of_int s.sizes)))
    s.cut_edges s.internal_edges
    (String.concat "; " (Array.to_list (Array.map string_of_int s.boundary_nodes)))
    s.max_imbalance
