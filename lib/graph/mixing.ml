type t = {
  n : int;
  p : Linalg.Mat.t;
  mutable powers : Linalg.Mat.t list; (* powers.(k) = P^k, P^0 = I, newest last *)
  gap : float;
}

let create g ~self_loops =
  let p_sparse = Spectral.transition_matrix g ~self_loops in
  let p = Linalg.Csr.to_dense p_sparse in
  let n = Graph.n g in
  let eigs = Linalg.Jacobi.eigenvalues_of_transition p_sparse in
  (* λ₁ = 1; the mixing rate is the largest remaining |λ|. *)
  let lambda2 =
    Array.fold_left
      (fun acc l -> max acc (abs_float l))
      0.0
      (Array.sub eigs 1 (Array.length eigs - 1))
  in
  { n; p; powers = [ Linalg.Mat.identity n ]; gap = max 1e-15 (1.0 -. lambda2) }

let power t k =
  if k < 0 then invalid_arg "Mixing.power: negative exponent";
  let rec last_exn = function
    | [] -> invalid_arg "Mixing.power: empty power cache (P^0 = I missing)"
    | [ m ] -> m
    | _ :: rest -> last_exn rest
  in
  let rec extend () =
    if List.length t.powers <= k then begin
      let last = last_exn t.powers in
      t.powers <- t.powers @ [ Linalg.Mat.mul last t.p ];
      extend ()
    end
  in
  extend ();
  match List.nth_opt t.powers k with
  | Some m -> m
  | None -> invalid_arg "Mixing.power: power cache failed to extend"

let error_term t k =
  let pk = power t k in
  let inv_n = 1.0 /. float_of_int t.n in
  Linalg.Mat.init t.n (fun i j -> Linalg.Mat.get pk i j -. inv_n)

let error_operator_norm_inf t k =
  let e = error_term t k in
  let best = ref 0.0 in
  for w = 0 to t.n - 1 do
    let s = ref 0.0 in
    for v = 0 to t.n - 1 do
      s := !s +. abs_float (Linalg.Mat.get e w v)
    done;
    if !s > !best then best := !s
  done;
  !best

let apply_error t k q =
  if Array.length q <> t.n then invalid_arg "Mixing.apply_error: dimension mismatch";
  Linalg.Mat.mul_vec (error_term t k) q

let lemma_a1_i_bound t ~q k =
  if Array.length q <> t.n then invalid_arg "Mixing.lemma_a1_i_bound";
  let qbar = Linalg.Vec.mean q in
  let dev = Array.fold_left (fun acc x -> max acc (abs_float (x -. qbar))) 0.0 q in
  float_of_int (t.n * t.n) *. ((1.0 -. t.gap) ** float_of_int k) *. dev

let current_sum t ~horizon =
  if horizon < 0 then invalid_arg "Mixing.current_sum: negative horizon";
  let total = ref 0.0 in
  for a = 0 to horizon do
    let pa = power t a and pa1 = power t (a + 1) in
    let best = ref 0.0 in
    for w = 0 to t.n - 1 do
      let s = ref 0.0 in
      for v = 0 to t.n - 1 do
        s := !s +. abs_float (Linalg.Mat.get pa1 v w -. Linalg.Mat.get pa v w)
      done;
      if !s > !best then best := !s
    done;
    total := !total +. !best
  done;
  !total

let spectral_gap t = t.gap
