(** Token lifetimes: how long work stays in the system before it
    completes and leaves.

    A lifetime model decides, once per round and after arrivals, how
    many tokens depart and from where.  Every model clamps at zero — a
    departure aimed at an empty node is skipped, never counted — so
    loads stay non-negative and the conservation identity
    [injected − departed = Δ in-flight] holds exactly.  Randomized
    models draw from a caller-supplied {!Prng.Splitmix} stream and
    replay bit-identically under equal seeds. *)

type t

val name : t -> string
(** Human-readable description ("service[μ=2]", "geometric[mean=50]"). *)

val immortal : t
(** Tokens never leave — the closed-system limit. *)

val uniform_attempts : rng:Prng.Splitmix.t -> per_round:int -> t
(** Each round, [per_round] completion attempts at independently
    uniform nodes; an attempt at a non-empty node removes one token —
    exactly {!Core.Dynamic}'s historical [Uniform_work] semantics,
    draw for draw.  @raise Invalid_argument on a negative count. *)

val service : rate:int -> t
(** Deterministic capacity model: every node completes up to [rate]
    tokens per round.  System-wide capacity is [n·rate] tokens/round,
    the reference line the E17 stability sweep pushes λ against.
    @raise Invalid_argument on a negative rate. *)

val geometric : rng:Prng.Splitmix.t -> mean:float -> t
(** Memoryless service times: each in-flight token independently
    completes this round with probability [1/mean], i.e. lifetimes are
    geometric with the given mean.  Cost is one Bernoulli draw per
    in-flight token per round.
    @raise Invalid_argument unless [mean ≥ 1]. *)

val fixed : rng:Prng.Splitmix.t -> rounds:int -> t
(** Deterministic lifetimes: every token departs exactly [rounds]
    rounds after it arrived.  Departures are taken from uniformly
    drawn nodes (walking cyclically to the next non-empty node), since
    the balancer may have moved the physical tokens; the count is
    clamped to the current in-flight total.
    @raise Invalid_argument unless [rounds ≥ 1]. *)

val depart : t -> round:int -> arrivals:int -> loads:int array -> int
(** Apply one round of departures ([round] is 1-based, [arrivals] is
    this round's injection count, needed by {!fixed}'s calendar).
    Mutates [loads] in place; returns the number departed. *)
