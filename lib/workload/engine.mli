(** The open-system driver: arrivals → departures → one balancing step
    per round, with streaming steady-state accounting.

    The balancing step itself is abstracted as a {!stepper} closure so
    this module stays below [lib/core] in the dependency order —
    {!Core.Dynamic} delegates here, and {!Harness.Openrun} supplies
    steppers that route the step through the fault engine or the lossy
    asynchronous network.  A stepper reports any token mass the step
    itself injected or lost (fault ledgers), so the conservation
    identity is checked exactly even under crashes and load shocks. *)

type step_result = {
  loads : int array;  (** the load vector after the balancing step *)
  injected : int;  (** tokens the step added (e.g. fault load shocks) *)
  lost : int;  (** tokens the step destroyed (e.g. crash token loss) *)
}

type stepper = round:int -> int array -> step_result
(** One synchronous balancing step over the given loads ([round] is
    1-based).  Must not mutate its input array. *)

type warmup =
  | Auto  (** MSER cutoff estimated from the discrepancy series *)
  | Fixed_warmup of int  (** discard exactly this many leading rounds *)

type config

val config :
  ?warmup:warmup ->
  ?probe_label:string ->
  arrival:Arrival.t ->
  lifetime:Lifetime.t ->
  rounds:int ->
  unit ->
  config
(** [warmup] defaults to [Auto]; [probe_label] (default ["workload"])
    tags this run's [lb_workload_*] metrics when probes are enabled.
    @raise Invalid_argument on negative [rounds]. *)

type result = {
  rounds_run : int;
  final_loads : int array;
  discrepancy_series : (int * int) array;  (** (round, max − min) *)
  inflight_series : (int * int) array;  (** (round, total tokens) *)
  overload_series : (int * float) array;
      (** (round, p99 node load ÷ mean node load); 0 when empty *)
  total_arrivals : int;
  total_departures : int;
  fault_injected : int;  (** summed from the stepper's ledger *)
  fault_lost : int;
  conserved : bool;
      (** final total = init + arrivals + fault_injected − departures −
          fault_lost *)
  warmup_end : int;  (** rounds discarded before the steady window *)
  steady_discrepancy : Steady.summary;
  steady_inflight : Steady.summary;
  steady_overload : Steady.summary;
  throughput : float;  (** completed tokens per round over the run *)
  diverged : bool;
      (** the in-flight backlog trends up without settling — the
          over-capacity signature ({!Steady.diverging} on the
          post-warm-up backlog) *)
}

val run : config -> init:int array -> stepper -> result
(** Run the open system for [rounds] rounds from the initial load
    vector.  Each round: {!Arrival.inject}, {!Lifetime.depart}, then
    the stepper; the three series record the post-step state.  Probes
    ({!Obs.Probe.on_workload}) only observe — probes-on runs are
    bit-identical to probes-off.
    @raise Invalid_argument when the arrival process fails
    {!Arrival.validate} against the network size. *)
