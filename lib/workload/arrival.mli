(** Seeded arrival processes for the open-system traffic engine.

    An arrival process decides, once per round, how many new tokens
    enter the network and where they land.  All randomness is drawn
    from a caller-supplied {!Prng.Splitmix} stream, so equal seeds
    replay the identical arrival trace bit for bit — the property every
    downstream steady-state measurement relies on.

    Processes are composable values: {!overlay} sums independent
    sources (e.g. a Poisson base plus a one-shot {!flash_crowd}), and
    {!diurnal} modulates a source's rate over time.  Placement order
    within one round is the overlay's list order; since injection is
    pure addition, final loads do not depend on that order, only the
    PRNG draw sequence does. *)

type t

val name : t -> string
(** Human-readable description ("poisson[λ=12]+flash[512@300+1→node0]"). *)

val uniform : rng:Prng.Splitmix.t -> per_round:int -> t
(** Exactly [per_round] tokens per round, each at an independently
    uniform node — one [Splitmix.int] draw per token, the stream
    {!Core.Dynamic} has always used.
    @raise Invalid_argument on a negative batch. *)

val poisson : rng:Prng.Splitmix.t -> rate:float -> t
(** Poisson-distributed batch with mean [rate] tokens per round, each
    token at an independently uniform node.  The count is sampled by
    Knuth's product-of-uniforms method (split recursively above mean
    30, using Poisson additivity, so no [exp] underflow at high rates).
    @raise Invalid_argument on a negative or non-finite rate. *)

val point : node:int -> per_round:int -> t
(** The whole batch lands on one fixed node every round (adversarial,
    PRNG-free).  The node index is range-checked by {!validate}.
    @raise Invalid_argument on a negative batch or node. *)

val hotspot : per_round:int -> t
(** Worst case: the batch lands on the currently max-loaded node
    (lowest index on ties), evaluated against the loads at injection
    time.  PRNG-free.  @raise Invalid_argument on a negative batch. *)

val flash_crowd : ?width:int -> at:int -> size:int -> node:int -> unit -> t
(** A spike: [size] tokens land on [node] in rounds
    [at .. at + width - 1] ([width] defaults to 1) and never again.
    Overlay it on a base process to measure time-to-absorb-a-burst
    ({!Steady.absorb_time}).
    @raise Invalid_argument unless [at ≥ 1], [width ≥ 1], [size ≥ 0]
    and [node ≥ 0]. *)

val diurnal : period:int -> amplitude:float -> t -> t
(** Modulate every source's rate by the smooth diurnal factor
    [1 + amplitude·sin(2π·round/period)] — deterministic bursty load.
    Fixed-batch sources round the scaled batch to nearest; Poisson
    sources scale their mean.
    @raise Invalid_argument unless [period ≥ 1] and [amplitude ∈ [0,1]],
    or if the process is already modulated or windowed. *)

val overlay : t -> t -> t
(** Sum of two independent processes (left sources inject first). *)

val validate : t -> n:int -> (unit, string) result
(** Check fixed node targets against the network size — called once by
    {!Engine.run} before the first round. *)

val inject : t -> round:int -> loads:int array -> int
(** Apply one round of arrivals ([round] is 1-based), mutating [loads]
    in place; returns the number of tokens injected. *)
