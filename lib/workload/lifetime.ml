type t =
  | Immortal
  | Uniform_attempts of { rng : Prng.Splitmix.t; per_round : int }
  | Service of { rate : int }
  | Geometric of { rng : Prng.Splitmix.t; mean : float }
  | Fixed of { rng : Prng.Splitmix.t; rounds : int; calendar : int array }

let immortal = Immortal

let uniform_attempts ~rng ~per_round =
  if per_round < 0 then invalid_arg "Lifetime.uniform_attempts: negative count";
  Uniform_attempts { rng; per_round }

let service ~rate =
  if rate < 0 then invalid_arg "Lifetime.service: negative rate";
  Service { rate }

let geometric ~rng ~mean =
  if mean < 1.0 || not (Float.is_finite mean) then
    invalid_arg "Lifetime.geometric: mean must be finite and >= 1";
  Geometric { rng; mean }

let fixed ~rng ~rounds =
  if rounds < 1 then invalid_arg "Lifetime.fixed: rounds must be >= 1";
  (* Ring calendar: slot (r mod (rounds+1)) holds the tokens due to
     depart at round r.  A slot is consumed exactly rounds+1 rounds
     after it was written, so one extra slot suffices. *)
  Fixed { rng; rounds; calendar = Array.make (rounds + 1) 0 }

let total loads = Array.fold_left ( + ) 0 loads

(* Remove [count] tokens starting from a uniformly drawn node, walking
   cyclically to the next non-empty node.  The caller guarantees
   count <= total loads. *)
let remove_uniform rng loads count =
  let n = Array.length loads in
  for _ = 1 to count do
    let u = ref (Prng.Splitmix.int rng n) in
    while loads.(!u) = 0 do
      u := (!u + 1) mod n
    done;
    loads.(!u) <- loads.(!u) - 1
  done

let depart t ~round ~arrivals ~loads =
  let n = Array.length loads in
  match t with
  | Immortal -> 0
  | Uniform_attempts { rng; per_round } ->
    let departed = ref 0 in
    for _ = 1 to per_round do
      let u = Prng.Splitmix.int rng n in
      if loads.(u) > 0 then begin
        loads.(u) <- loads.(u) - 1;
        incr departed
      end
    done;
    !departed
  | Service { rate } ->
    let departed = ref 0 in
    for u = 0 to n - 1 do
      let c = min loads.(u) rate in
      loads.(u) <- loads.(u) - c;
      departed := !departed + c
    done;
    !departed
  | Geometric { rng; mean } ->
    let p = 1.0 /. mean in
    let departed = ref 0 in
    for u = 0 to n - 1 do
      let completions = ref 0 in
      for _ = 1 to loads.(u) do
        if Prng.Splitmix.bernoulli rng p then incr completions
      done;
      loads.(u) <- loads.(u) - !completions;
      departed := !departed + !completions
    done;
    !departed
  | Fixed { rng; rounds; calendar } ->
    let slots = rounds + 1 in
    let due_slot = round mod slots in
    calendar.((round + rounds) mod slots) <- arrivals;
    let due = calendar.(due_slot) in
    calendar.(due_slot) <- 0;
    let removable = min due (total loads) in
    remove_uniform rng loads removable;
    removable

let name = function
  | Immortal -> "immortal"
  | Uniform_attempts { per_round; _ } -> Printf.sprintf "work[%d/r]" per_round
  | Service { rate } -> Printf.sprintf "service[μ=%d]" rate
  | Geometric { mean; _ } -> Printf.sprintf "geometric[mean=%g]" mean
  | Fixed { rounds; _ } -> Printf.sprintf "fixed[%dr]" rounds
