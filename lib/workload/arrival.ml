type placement =
  | Uniform_nodes of Prng.Splitmix.t
  | At_node of int
  | At_max_loaded

type counting =
  | Const of int
  | Poisson of { rng : Prng.Splitmix.t; rate : float }

type shape =
  | Flat
  | Diurnal of { period : int; amplitude : float }
  | Window of { from_round : int; width : int }

type src = { placement : placement; counting : counting; shape : shape }
type t = src list

(* Poisson additivity keeps Knuth's product-of-uniforms method in the
   regime where exp(-rate) is comfortably above the float underflow
   threshold: rates above 30 are split in half recursively. *)
let rec poisson_draw rng rate =
  if rate <= 0.0 then 0
  else if rate > 30.0 then
    let half = rate /. 2.0 in
    poisson_draw rng half + poisson_draw rng (rate -. half)
  else begin
    let l = exp (-.rate) in
    let k = ref 0 in
    let p = ref 1.0 in
    let running = ref true in
    while !running do
      p := !p *. Prng.Splitmix.float rng 1.0;
      if !p <= l then running := false else incr k
    done;
    !k
  end

let factor shape ~round =
  match shape with
  | Flat -> 1.0
  | Diurnal { period; amplitude } ->
    1.0
    +. amplitude
       *. sin (2.0 *. Float.pi *. float_of_int round /. float_of_int period)
  | Window { from_round; width } ->
    if round >= from_round && round < from_round + width then 1.0 else 0.0

(* The count drawn for one source this round.  A Flat Const source must
   cost zero PRNG draws and return the batch exactly — the bit-compat
   contract with the historical Core.Dynamic stream. *)
let count src ~round =
  match (src.counting, src.shape) with
  | Const b, Flat -> b
  | Const b, shape ->
    let f = factor shape ~round in
    if f <= 0.0 then 0
    else max 0 (int_of_float (Float.round (float_of_int b *. f)))
  | Poisson { rng; rate }, shape ->
    let f = factor shape ~round in
    if f <= 0.0 then 0 else poisson_draw rng (rate *. f)

let argmax loads =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > loads.(!best) then best := i) loads;
  !best

let inject_src src ~round loads =
  let n = Array.length loads in
  let c = count src ~round in
  if c <= 0 then 0
  else begin
    (match src.placement with
    | Uniform_nodes rng ->
      for _ = 1 to c do
        let u = Prng.Splitmix.int rng n in
        loads.(u) <- loads.(u) + 1
      done
    | At_node u -> loads.(u) <- loads.(u) + c
    | At_max_loaded ->
      let u = argmax loads in
      loads.(u) <- loads.(u) + c);
    c
  end

let inject t ~round ~loads =
  List.fold_left (fun acc src -> acc + inject_src src ~round loads) 0 t

let uniform ~rng ~per_round =
  if per_round < 0 then invalid_arg "Arrival.uniform: negative batch";
  [ { placement = Uniform_nodes rng; counting = Const per_round; shape = Flat } ]

let poisson ~rng ~rate =
  if rate < 0.0 || not (Float.is_finite rate) then
    invalid_arg "Arrival.poisson: rate must be finite and non-negative";
  [ { placement = Uniform_nodes rng; counting = Poisson { rng; rate }; shape = Flat } ]

let point ~node ~per_round =
  if per_round < 0 then invalid_arg "Arrival.point: negative batch";
  if node < 0 then invalid_arg "Arrival.point: negative node";
  [ { placement = At_node node; counting = Const per_round; shape = Flat } ]

let hotspot ~per_round =
  if per_round < 0 then invalid_arg "Arrival.hotspot: negative batch";
  [ { placement = At_max_loaded; counting = Const per_round; shape = Flat } ]

let flash_crowd ?(width = 1) ~at ~size ~node () =
  if at < 1 then invalid_arg "Arrival.flash_crowd: at must be >= 1";
  if width < 1 then invalid_arg "Arrival.flash_crowd: width must be >= 1";
  if size < 0 then invalid_arg "Arrival.flash_crowd: negative size";
  if node < 0 then invalid_arg "Arrival.flash_crowd: negative node";
  [
    {
      placement = At_node node;
      counting = Const size;
      shape = Window { from_round = at; width };
    };
  ]

let diurnal ~period ~amplitude t =
  if period < 1 then invalid_arg "Arrival.diurnal: period must be >= 1";
  if amplitude < 0.0 || amplitude > 1.0 then
    invalid_arg "Arrival.diurnal: amplitude must be in [0, 1]";
  List.map
    (fun src ->
      match src.shape with
      | Flat -> { src with shape = Diurnal { period; amplitude } }
      | Diurnal _ | Window _ ->
        invalid_arg "Arrival.diurnal: process is already modulated")
    t

let overlay a b = a @ b

let validate t ~n =
  let bad =
    List.find_opt
      (fun src ->
        match src.placement with
        | At_node u -> u >= n
        | Uniform_nodes _ | At_max_loaded -> false)
      t
  in
  match bad with
  | Some { placement = At_node u; _ } ->
    Error (Printf.sprintf "arrival targets node %d, network has %d nodes" u n)
  | Some _ | None -> if n <= 0 then Error "empty network" else Ok ()

let src_name src =
  let base =
    match (src.placement, src.counting) with
    | Uniform_nodes _, Const b -> Printf.sprintf "uniform[%d/r]" b
    | Uniform_nodes _, Poisson { rate; _ } -> Printf.sprintf "poisson[λ=%g]" rate
    | At_node u, Const b -> Printf.sprintf "point[%d/r→node%d]" b u
    | At_node u, Poisson { rate; _ } ->
      Printf.sprintf "point[λ=%g→node%d]" rate u
    | At_max_loaded, Const b -> Printf.sprintf "hotspot[%d/r]" b
    | At_max_loaded, Poisson { rate; _ } -> Printf.sprintf "hotspot[λ=%g]" rate
  in
  match src.shape with
  | Flat -> base
  | Diurnal { period; amplitude } ->
    Printf.sprintf "diurnal[p=%d,a=%g](%s)" period amplitude base
  | Window { from_round; width } ->
    Printf.sprintf "flash(%s@%d+%d)" base from_round width

let name t = String.concat "+" (List.map src_name t)
