(** Steady-state estimators for open-system runs.

    Pure, deterministic statistics over per-round series: warm-up
    detection (MSER), long-run distribution summaries with tail
    percentiles, a divergence detector for over-capacity workloads,
    and time-to-absorb-a-burst.  Percentile semantics match
    {!Harness.Stats} (sort, then linear interpolation at rank
    [p/100·(n−1)]); the module is self-contained so {!Core.Dynamic}
    can use it without a dependency cycle. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

val empty_summary : summary
(** All-zero summary, returned for empty post-warm-up windows. *)

val percentile : float array -> float -> float
(** [percentile sorted p] linearly interpolates the [p]-th percentile
    of an ascending-sorted sample.
    @raise Invalid_argument on an empty sample. *)

val summarize : float array -> summary
(** Distribution summary of a (not necessarily sorted) sample;
    {!empty_summary} on an empty one. *)

val warmup_cutoff : float array -> int
(** MSER warm-up truncation: the deletion point [d ∈ [0, n/2]]
    minimizing [stddev(x[d:]) / √(n − d)] — the prefix whose removal
    makes the remaining mean maximally stable.  Returns the smallest
    minimizer; [0] when the series has fewer than 8 points. *)

val diverging : float array -> bool
(** True when the series trends up without settling: split the tail
    into four equal windows, require strictly increasing window means
    with total growth exceeding [max(0.25·|m₁|, 4.0)].  Detects the
    linearly growing backlog of an over-capacity arrival rate while
    ignoring bounded noise.  Always false under 8 points. *)

val absorb_time : series:(int * int) array -> at:int -> band:int -> int option
(** [absorb_time ~series ~at ~band] is the number of rounds after
    round [at] (e.g. a flash crowd's injection round) until the series
    value first returns to [band] or below — [Some 0] if already
    within band at [at]; [None] if it never recovers. *)
