type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let empty_summary =
  { count = 0; mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0; p999 = 0.0; max = 0.0 }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Steady.percentile: empty sample";
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = min (lo + 1) (n - 1) in
  let frac = rank -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then empty_summary
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    {
      count = n;
      mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n;
      p50 = percentile sorted 50.0;
      p95 = percentile sorted 95.0;
      p99 = percentile sorted 99.0;
      p999 = percentile sorted 99.9;
      max = sorted.(n - 1);
    }
  end

(* MSER (White 1997): delete the prefix that minimizes the standard
   error of the remaining mean.  Suffix sums make the scan O(n). *)
let warmup_cutoff xs =
  let n = Array.length xs in
  if n < 8 then 0
  else begin
    (* suffix.(d) = Σ_{i≥d} x_i, suffix2.(d) = Σ_{i≥d} x_i² *)
    let suffix = Array.make (n + 1) 0.0 in
    let suffix2 = Array.make (n + 1) 0.0 in
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) +. xs.(i);
      suffix2.(i) <- suffix2.(i + 1) +. (xs.(i) *. xs.(i))
    done;
    let best_d = ref 0 and best = ref infinity in
    for d = 0 to n / 2 do
      let m = float_of_int (n - d) in
      let mean = suffix.(d) /. m in
      let var = Float.max 0.0 ((suffix2.(d) /. m) -. (mean *. mean)) in
      let mser = sqrt var /. sqrt m in
      if mser < !best then begin
        best := mser;
        best_d := d
      end
    done;
    !best_d
  end

let diverging xs =
  let n = Array.length xs in
  if n < 8 then false
  else begin
    let w = n / 4 in
    let start = n - (4 * w) in
    let mean_of k =
      let s = ref 0.0 in
      for i = start + (k * w) to start + ((k + 1) * w) - 1 do
        s := !s +. xs.(i)
      done;
      !s /. float_of_int w
    in
    let m0 = mean_of 0 and m1 = mean_of 1 and m2 = mean_of 2 and m3 = mean_of 3 in
    m0 < m1 && m1 < m2 && m2 < m3
    && m3 -. m0 > Float.max (0.25 *. Float.abs m0) 4.0
  end

let absorb_time ~series ~at ~band =
  let n = Array.length series in
  let rec scan i =
    if i >= n then None
    else begin
      let r, v = series.(i) in
      if r >= at && v <= band then Some (r - at) else scan (i + 1)
    end
  in
  scan 0
