type step_result = { loads : int array; injected : int; lost : int }
type stepper = round:int -> int array -> step_result
type warmup = Auto | Fixed_warmup of int

type config = {
  arrival : Arrival.t;
  lifetime : Lifetime.t;
  rounds : int;
  warmup : warmup;
  probe_label : string;
}

let config ?(warmup = Auto) ?(probe_label = "workload") ~arrival ~lifetime ~rounds
    () =
  if rounds < 0 then invalid_arg "Workload.Engine.config: negative rounds";
  (match warmup with
  | Fixed_warmup k when k < 0 ->
    invalid_arg "Workload.Engine.config: negative warmup"
  | Auto | Fixed_warmup _ -> ());
  { arrival; lifetime; rounds; warmup; probe_label }

type result = {
  rounds_run : int;
  final_loads : int array;
  discrepancy_series : (int * int) array;
  inflight_series : (int * int) array;
  overload_series : (int * float) array;
  total_arrivals : int;
  total_departures : int;
  fault_injected : int;
  fault_lost : int;
  conserved : bool;
  warmup_end : int;
  steady_discrepancy : Steady.summary;
  steady_inflight : Steady.summary;
  steady_overload : Steady.summary;
  throughput : float;
  diverged : bool;
}

let total loads = Array.fold_left ( + ) 0 loads

let discrepancy loads =
  let mx = ref loads.(0) and mn = ref loads.(0) in
  Array.iter
    (fun x ->
      if x > !mx then mx := x;
      if x < !mn then mn := x)
    loads;
  !mx - !mn

(* p99 node load over mean node load — the per-round overload factor.
   1.0 means perfectly flat; large values mean a heavy tail of hot
   nodes.  0.0 by convention when the system is empty. *)
let overload loads =
  let t = total loads in
  if t = 0 then 0.0
  else begin
    let n = Array.length loads in
    let sorted = Array.map float_of_int loads in
    Array.sort Float.compare sorted;
    let p99 = Steady.percentile sorted 99.0 in
    p99 /. (float_of_int t /. float_of_int n)
  end

(* Steady window = series after the warm-up cutoff.  Fixed cutoffs are
   clamped to the series length; Auto uses MSER on the discrepancy
   trace (the quantity E17's band is about). *)
let cut xs d = Array.sub xs d (Array.length xs - d)

let run config ~init stepper =
  let n = Array.length init in
  (match Arrival.validate config.arrival ~n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Workload.Engine.run: " ^ msg));
  let loads = ref (Array.copy init) in
  let arrivals = ref 0 and departures = ref 0 in
  let fault_injected = ref 0 and fault_lost = ref 0 in
  let disc_series = Array.make config.rounds (0, 0) in
  let inflight_series = Array.make config.rounds (0, 0) in
  let overload_series = Array.make config.rounds (0, 0.0) in
  for round = 1 to config.rounds do
    let a = Arrival.inject config.arrival ~round ~loads:!loads in
    arrivals := !arrivals + a;
    let d = Lifetime.depart config.lifetime ~round ~arrivals:a ~loads:!loads in
    departures := !departures + d;
    let step = stepper ~round !loads in
    loads := step.loads;
    fault_injected := !fault_injected + step.injected;
    fault_lost := !fault_lost + step.lost;
    let disc = discrepancy !loads in
    let inflight = total !loads in
    disc_series.(round - 1) <- (round, disc);
    inflight_series.(round - 1) <- (round, inflight);
    overload_series.(round - 1) <- (round, overload !loads);
    if Obs.Probe.enabled () then
      Obs.Probe.on_workload ~engine:config.probe_label ~round ~arrivals:a
        ~departures:d ~inflight ~discrepancy:disc;
    Obs.Export.poll ()
  done;
  let disc_f = Array.map (fun (_, d) -> float_of_int d) disc_series in
  let inflight_f = Array.map (fun (_, t) -> float_of_int t) inflight_series in
  let overload_f = Array.map snd overload_series in
  let warmup_end =
    match config.warmup with
    | Auto -> Steady.warmup_cutoff disc_f
    | Fixed_warmup k -> min k config.rounds
  in
  let steady_of xs =
    let tail = cut xs warmup_end in
    if Array.length tail = 0 then Steady.empty_summary else Steady.summarize tail
  in
  let diverged =
    (* The backlog ramps during its own warm-up even below capacity, so
       the divergence test gets the backlog's MSER cutoff, not the
       discrepancy's. *)
    let tail = cut inflight_f (Steady.warmup_cutoff inflight_f) in
    Steady.diverging tail
  in
  let conserved =
    total !loads
    = total init + !arrivals + !fault_injected - !departures - !fault_lost
  in
  {
    rounds_run = config.rounds;
    final_loads = !loads;
    discrepancy_series = disc_series;
    inflight_series;
    overload_series;
    total_arrivals = !arrivals;
    total_departures = !departures;
    fault_injected = !fault_injected;
    fault_lost = !fault_lost;
    conserved;
    warmup_end;
    steady_discrepancy = steady_of disc_f;
    steady_inflight = steady_of inflight_f;
    steady_overload = steady_of overload_f;
    throughput = float_of_int !departures /. float_of_int (max 1 config.rounds);
    diverged;
  }
