type bag = int array
type state = bag array

type policy = Oblivious | Largest_first

type result = {
  steps_run : int;
  final : state;
  weight_series : (int * int) array;
}

let node_weight bag = Array.fold_left ( + ) 0 bag
let total_weight state = Array.fold_left (fun acc b -> acc + node_weight b) 0 state
let token_count state = Array.fold_left (fun acc b -> acc + Array.length b) 0 state

let weighted_discrepancy state =
  if Array.length state = 0 then invalid_arg "Wtokens.weighted_discrepancy: empty";
  let ws = Array.map node_weight state in
  Array.fold_left max ws.(0) ws - Array.fold_left min ws.(0) ws

let count_discrepancy state =
  if Array.length state = 0 then invalid_arg "Wtokens.count_discrepancy: empty";
  let cs = Array.map Array.length state in
  Array.fold_left max cs.(0) cs - Array.fold_left min cs.(0) cs

let max_token_weight state =
  Array.fold_left
    (fun acc bag -> Array.fold_left max acc bag)
    0 state

let check_weights bag =
  Array.iter (fun w -> if w < 1 then invalid_arg "Wtokens: token weights must be >= 1") bag

let point_mass ~n ~weights =
  if n <= 0 then invalid_arg "Wtokens.point_mass: n <= 0";
  check_weights weights;
  Array.init n (fun i -> if i = 0 then Array.copy weights else [||])

let uniform_random rng ~n ~tokens ~max_weight =
  if n <= 0 || tokens < 0 || max_weight < 1 then invalid_arg "Wtokens.uniform_random";
  let bags = Array.make n [] in
  for _ = 1 to tokens do
    let u = Prng.Splitmix.int rng n in
    let w = 1 + Prng.Splitmix.int rng max_weight in
    bags.(u) <- w :: bags.(u)
  done;
  Array.map Array.of_list bags

let run ?(sample_every = 1) policy ~graph ~self_loops ~init ~steps =
  if self_loops < 0 then invalid_arg "Wtokens.run: self_loops < 0";
  if steps < 0 then invalid_arg "Wtokens.run: negative steps";
  if sample_every <= 0 then invalid_arg "Wtokens.run: sample_every must be positive";
  let n = Graphs.Graph.n graph in
  if Array.length init <> n then invalid_arg "Wtokens.run: init length mismatch";
  Array.iter check_weights init;
  let d = Graphs.Graph.degree graph in
  let dp = d + self_loops in
  let order = Core.Rotor_router.default_order ~degree:d ~self_loops in
  let rotor = Array.make n 0 in
  let cur = ref (Array.map Array.copy init) in
  let series = ref [ (0, weighted_discrepancy !cur) ] in
  let steps_done = ref 0 in
  for t = 1 to steps do
    let next : int list array = Array.make n [] in
    for u = 0 to n - 1 do
      let bag = !cur.(u) in
      let tokens =
        match policy with
        | Oblivious -> bag
        | Largest_first ->
          let s = Array.copy bag in
          Array.sort (fun a b -> Int.compare b a) s;
          s
      in
      let r = rotor.(u) in
      Array.iteri
        (fun i w ->
          let port = order.((r + i) mod dp) in
          let dest = if port < d then Graphs.Graph.neighbor graph u port else u in
          next.(dest) <- w :: next.(dest))
        tokens;
      rotor.(u) <- (r + Array.length tokens) mod dp
    done;
    cur := Array.map Array.of_list next;
    steps_done := t;
    if t mod sample_every = 0 || t = steps then
      series := (t, weighted_discrepancy !cur) :: !series
  done;
  {
    steps_run = !steps_done;
    final = !cur;
    weight_series = Array.of_list (List.rev !series);
  }
