type config = {
  channel : Channel.config;
  protocol : Protocol.config;
  staleness : int;
  degrade : bool;
  seed : int;
  max_drain_rounds : int;
}

let default_config =
  {
    channel = Channel.reliable;
    protocol = Protocol.default_config;
    staleness = 0;
    degrade = true;
    seed = 1;
    max_drain_rounds = 100_000;
  }

type report = {
  result : Core.Engine.result;
  channel_stats : Channel.stats;
  protocol_stats : Protocol.stats;
  degraded_rounds : int;
  stalled_rounds : int;
  drain_rounds : int;
  drained : bool;
  injected : int;
  lost : int;
  spilled : int;
  initial_total : int;
  final_total : int;
  watchdog_checks : int;
}

let conserved r =
  r.drained && r.final_total = r.initial_total + r.injected - r.lost

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let validate_plan ~n ~d ~steps plan =
  List.iter
    (fun { Faults.Schedule.step; event } ->
      if step < 1 || step > max 1 steps then
        invalid_arg
          (Printf.sprintf "Net.Async_engine.run: fault at step %d outside [1, %d]"
             step steps);
      match event with
      | Faults.Schedule.Crash { node; _ } | Faults.Schedule.Load_shock { node; _ } ->
        if node < 0 || node >= n then
          invalid_arg
            (Printf.sprintf "Net.Async_engine.run: node %d out of range" node)
      | Faults.Schedule.Edge_outage { node; port; last_step } ->
        if node < 0 || node >= n then
          invalid_arg
            (Printf.sprintf "Net.Async_engine.run: node %d out of range" node);
        if port < 0 || port >= d then
          invalid_arg
            (Printf.sprintf "Net.Async_engine.run: port %d out of range" port);
        if last_step < step then
          invalid_arg "Net.Async_engine.run: outage ends before it starts")
    plan

let run ?(config = default_config) ?(plan = []) ?(watchdog = true)
    ?(sample_every = 1) ?hook ?on_message ~graph ~balancer ~init ~steps () =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  if balancer.Core.Balancer.degree <> d then
    invalid_arg
      (Printf.sprintf
         "Net.Async_engine.run: balancer %s built for degree %d, graph has %d"
         balancer.Core.Balancer.name balancer.Core.Balancer.degree d);
  if Array.length init <> n then
    invalid_arg "Net.Async_engine.run: init length mismatch";
  if steps < 0 then invalid_arg "Net.Async_engine.run: negative step count";
  if sample_every <= 0 then
    invalid_arg "Net.Async_engine.run: sample_every must be positive";
  if config.staleness < 0 then
    invalid_arg "Net.Async_engine.run: negative staleness bound";
  if config.max_drain_rounds < 0 then
    invalid_arg "Net.Async_engine.run: negative drain bound";
  validate_plan ~n ~d ~steps plan;
  let adj = Graphs.Graph.adjacency graph in
  let dp = Core.Balancer.d_plus balancer in
  let emit = match on_message with Some f -> f | None -> fun _ -> () in
  let on_drop ~now ~edge payload =
    match payload with
    | Channel.Data { seq; tokens } ->
      emit
        { Trace.m_step = now; m_kind = Trace.Msg_drop; m_edge = edge;
          m_seq = seq; m_tokens = tokens }
    | Channel.Ack _ -> ()
  in
  let channel =
    Channel.create ~on_drop ~seed:config.seed ~config:config.channel ~n ~degree:d
      ()
  in
  let proto =
    Protocol.create ~on_message:emit ~graph ~channel ~config:config.protocol ()
  in
  let initial_total = Core.Loads.total init in
  let wd =
    if not watchdog then None
    else
      Some
        (Faults.Watchdog.create
           ?state_range:
             (if has_prefix ~prefix:"rotor-router" balancer.Core.Balancer.name
              then Some (0, dp)
              else None)
           ~state_sources:
             (match balancer.Core.Balancer.persist with
             | Some p -> [ (fun () -> p.Core.Balancer.state_save ()) ]
             | None -> [])
           ~extra_mass:(fun () -> Protocol.in_flight_tokens proto)
           ~name:balancer.Core.Balancer.name
           ~never_negative:
             balancer.Core.Balancer.props.Core.Balancer.never_negative
           ~expected_total:initial_total ())
  in
  let injected = ref 0 and lost = ref 0 and spilled = ref 0 in
  let wipe_state node =
    match balancer.Core.Balancer.persist with
    | None -> ()
    | Some p ->
      let s = p.Core.Balancer.state_save () in
      if s.(node) <> 0 then begin
        s.(node) <- 0;
        p.Core.Balancer.state_restore s
      end
  in
  let cur = Array.copy init in
  let apply_events ~step events =
    let ep_injected = ref 0 and ep_lost = ref 0 in
    List.iter
      (fun event ->
        match event with
        | Faults.Schedule.Crash { node; state; tokens } ->
          let x = cur.(node) in
          (match tokens with
          | Faults.Schedule.Lose_tokens ->
            cur.(node) <- 0;
            ep_lost := !ep_lost + x
          | Faults.Schedule.Spill_tokens ->
            (* Spilled locally, as in Faults.Engine: the crash handler
               dumps the node's tokens on its neighbors directly, it
               does not get to use the network. *)
            if x > 0 then begin
              let q = x / d and r = x mod d in
              let base = node * d in
              for k = 0 to d - 1 do
                let v = adj.(base + k) in
                cur.(v) <- cur.(v) + q + (if k < r then 1 else 0)
              done;
              cur.(node) <- 0
            end;
            spilled := !spilled + x);
          (match state with
          | Faults.Schedule.Wipe_state -> wipe_state node
          | Faults.Schedule.Keep_state -> ())
        | Faults.Schedule.Edge_outage { node; port; last_step } ->
          Channel.set_outage channel ~edge:((node * d) + port) ~until:last_step
        | Faults.Schedule.Load_shock { node; amount } ->
          cur.(node) <- cur.(node) + amount;
          ep_injected := !ep_injected + amount)
      events;
    ignore step;
    injected := !injected + !ep_injected;
    lost := !lost + !ep_lost;
    match wd with
    | Some w -> Faults.Watchdog.adjust_expected w (!ep_injected - !ep_lost)
    | None -> ()
  in
  let ports = Array.make dp 0 in
  let degraded = ref 0 and stalled = ref 0 in
  (* Observation only, same bit-identical guarantee as Core.Engine: the
     probes never touch the channel's randomness or the protocol state. *)
  let probing = Obs.Probe.enabled () in
  let moved = ref 0 in
  let mirror_net_stats () =
    let c = Channel.stats channel and p = Protocol.stats proto in
    Obs.Probe.on_net ~engine:"net" ~sent:p.Protocol.messages_sent
      ~tokens:p.Protocol.tokens_sent ~retransmissions:p.Protocol.retransmissions
      ~dropped:(c.Channel.dropped + c.Channel.outage_dropped)
      ~acks:p.Protocol.acks_sent ~duplicates:p.Protocol.duplicates_discarded
      ~degraded:!degraded ~stalled:!stalled
  in
  let series = ref [] in
  let scan () =
    let lo = ref cur.(0) and hi = ref cur.(0) in
    for i = 1 to n - 1 do
      let x = cur.(i) in
      if x < !lo then lo := x;
      if x > !hi then hi := x
    done;
    (!hi - !lo, !lo)
  in
  let d0, m0 = scan () in
  let min_seen = ref m0 in
  series := (0, d0) :: !series;
  let deliver ~node ~tokens = cur.(node) <- cur.(node) + tokens in
  for t = 1 to steps do
    (match Faults.Schedule.events_at plan ~step:t with
    | [] -> ()
    | evs -> apply_events ~step:t evs);
    let sp = Obs.Prof.start "net.assign" in
    moved := 0;
    for u = 0 to n - 1 do
      let stale =
        config.staleness >= 0
        &&
        match Protocol.oldest_pending proto ~node:u with
        | Some r -> r <= t - 1 - config.staleness
        | None -> false
      in
      if stale && not config.degrade then incr stalled
      else begin
        if stale then incr degraded;
        let x = cur.(u) in
        balancer.Core.Balancer.assign ~step:t ~node:u ~load:x ~ports;
        (* Same inline validation as Core.Engine: conservation and
           non-negative sends on original ports. *)
        let sum = ref 0 in
        for k = 0 to dp - 1 do
          sum := !sum + ports.(k);
          if k < d && ports.(k) < 0 then
            raise
              (Core.Engine.Invariant_violation
                 (Printf.sprintf
                    "%s: node %d step %d sends %d (< 0) on original port %d"
                    balancer.Core.Balancer.name u t ports.(k) k))
        done;
        if !sum <> x then
          raise
            (Core.Engine.Invariant_violation
               (Printf.sprintf "%s: node %d step %d assigned %d tokens of load %d"
                  balancer.Core.Balancer.name u t !sum x));
        let kept = ref 0 in
        for k = d to dp - 1 do
          kept := !kept + ports.(k)
        done;
        if probing then moved := !moved + (x - !kept);
        cur.(u) <- !kept;
        for k = 0 to d - 1 do
          if ports.(k) <> 0 then
            Protocol.send proto ~now:t ~node:u ~port:k ~tokens:ports.(k)
        done
      end
    done;
    Obs.Prof.stop sp;
    let sp = Obs.Prof.start "net.tick" in
    Protocol.tick proto ~now:t ~deliver;
    Obs.Prof.stop sp;
    (match wd with
    | Some w -> Faults.Watchdog.check w ~step:t ~loads:cur
    | None -> ());
    let disc, mn = scan () in
    if probing then begin
      Obs.Probe.on_round ~engine:"net" ~d_plus:dp ~step:t ~tokens_moved:!moved
        ~discrepancy:disc ~max_load:(mn + disc) ~min_load:mn ~loads:cur;
      mirror_net_stats ()
    end;
    if mn < !min_seen then min_seen := mn;
    if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
    Obs.Export.poll ();
    match hook with Some f -> f t cur | None -> ()
  done;
  (* Drain: protocol-only rounds until every in-flight token has landed
     and every message is acknowledged, so the ledger closes exactly. *)
  let drain_rounds = ref 0 in
  let sp = Obs.Prof.start "net.drain" in
  while
    (not (Protocol.quiesced proto)) && !drain_rounds < config.max_drain_rounds
  do
    incr drain_rounds;
    let now = steps + !drain_rounds in
    Protocol.tick proto ~now ~deliver;
    match wd with
    | Some w -> Faults.Watchdog.check w ~step:now ~loads:cur
    | None -> ()
  done;
  Obs.Prof.stop sp;
  let drained = Protocol.quiesced proto in
  if probing then begin
    mirror_net_stats ();
    Obs.Probe.on_watchdog ~engine:"net"
      ~checks:(match wd with Some w -> Faults.Watchdog.checks w | None -> 0)
  end;
  {
    result =
      {
        Core.Engine.steps_run = steps;
        final_loads = cur;
        series = Array.of_list (List.rev !series);
        min_load_seen = !min_seen;
        reached_target = None;
        fairness = None;
      };
    channel_stats = Channel.stats channel;
    protocol_stats = Protocol.stats proto;
    degraded_rounds = !degraded;
    stalled_rounds = !stalled;
    drain_rounds = !drain_rounds;
    drained;
    injected = !injected;
    lost = !lost;
    spilled = !spilled;
    initial_total;
    final_total = Core.Loads.total cur;
    watchdog_checks =
      (match wd with Some w -> Faults.Watchdog.checks w | None -> 0);
  }

let report_lines r =
  let c = r.channel_stats and p = r.protocol_stats in
  let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  [
    Printf.sprintf
      "transport:    %d transmissions: %d dropped (%.1f%%), %d outage-dropped, \
       %d duplicated, %d delayed"
      c.Channel.transmissions c.Channel.dropped
      (pct c.Channel.dropped c.Channel.transmissions)
      c.Channel.outage_dropped c.Channel.duplicated c.Channel.delayed;
    Printf.sprintf
      "protocol:     %d messages (%d tokens), %d retransmissions (%.1f%% \
       overhead), %d acks, %d dup-discarded, %d out-of-order, max in-flight %d"
      p.Protocol.messages_sent p.Protocol.tokens_sent p.Protocol.retransmissions
      (pct p.Protocol.retransmissions p.Protocol.messages_sent)
      p.Protocol.acks_sent p.Protocol.duplicates_discarded
      p.Protocol.out_of_order p.Protocol.max_in_flight_tokens;
    Printf.sprintf "staleness:    %d degraded node-rounds, %d stalled node-rounds"
      r.degraded_rounds r.stalled_rounds;
    Printf.sprintf "drain:        %d extra rounds%s" r.drain_rounds
      (if r.drained then "" else " — DID NOT QUIESCE within the bound");
    Printf.sprintf "net ledger:   injected %d, lost %d, spilled %d; total %d → %d%s"
      r.injected r.lost r.spilled r.initial_total r.final_total
      (if conserved r then " (conserved)" else " (CONSERVATION VIOLATED)");
  ]
  @
  if r.watchdog_checks > 0 then
    [ Printf.sprintf "watchdog:     %d checks, all invariants held" r.watchdog_checks ]
  else []
