(** The balancing engine over an unreliable network.

    Replaces {!Core.Engine}'s perfectly synchronous delivery — every
    token sent in round [t] arrives in round [t] — with a seeded lossy
    {!Channel} and the exactly-once retry {!Protocol}.  Each round:

    + scheduled faults ({!Faults.Schedule}) are applied: crashes and
      load shocks mutate the loads and the ledger, edge outages black
      out channel edges (the retry protocol recovers those tokens once
      the outage lifts);
    + every node runs its balancer on the load it currently holds;
      tokens assigned to original ports enter the transport, self-loop
      tokens stay — subject to the {e bounded-staleness} gate below;
    + the transport delivers what falls due this round, the protocol
      retransmits what timed out, and the {!Faults.Watchdog} audits
      [Σ loads + in-flight = ledger] plus the per-scheme invariants.

    {b Bounded staleness.} A node is {e stale} in round [t] if some
    message addressed to it, sent in a round ≤ [t − 1 − σ], has still
    not been applied ([staleness] = σ).  A fresh node balances
    normally.  A stale node either {e degrades gracefully} — balances
    the load it last knew about, i.e. what it currently holds
    ([degrade = true], the default) — or {e stalls} (skips its
    balancing pass) when [degrade = false].

    {b Equivalence.} With the {!Channel.reliable} configuration,
    σ = 0 and no fault plan, every message is delivered in its send
    round, no node is ever stale, and the run is bit-identical to
    {!Core.Engine.run} — same per-step load vectors, discrepancy
    series and final loads — for every deterministic balancer.

    {b Drain.} After the last balancing round the engine keeps ticking
    the protocol (no balancing) until it quiesces, so the final ledger
    can be checked exactly: [Σ final loads = Σ init + injected − lost]. *)

type config = {
  channel : Channel.config;
  protocol : Protocol.config;
  staleness : int;  (** σ ≥ 0 *)
  degrade : bool;
      (** stale nodes balance their held load instead of stalling *)
  seed : int;  (** channel fault stream ([--net-seed]) *)
  max_drain_rounds : int;
      (** bound on post-run protocol-only rounds (safety valve; the
          protocol quiesces with probability 1 whenever drop < 1) *)
}

val default_config : config
(** Reliable channel, {!Protocol.default_config}, σ = 0,
    degrade = true, seed 1, drain bound 100_000. *)

type report = {
  result : Core.Engine.result;
      (** series/min-load sampled after each round's deliveries;
          [fairness] is always [None] *)
  channel_stats : Channel.stats;
  protocol_stats : Protocol.stats;
  degraded_rounds : int;  (** node-rounds balanced while stale *)
  stalled_rounds : int;  (** node-rounds skipped while stale *)
  drain_rounds : int;  (** protocol-only rounds appended after the run *)
  drained : bool;  (** the protocol quiesced within the drain bound *)
  injected : int;  (** tokens added by fault shocks *)
  lost : int;  (** tokens destroyed by lose-token crashes *)
  spilled : int;  (** tokens redistributed by spill-token crashes *)
  initial_total : int;
  final_total : int;
      (** equals [initial_total + injected − lost] iff conservation
          held and the drain completed *)
  watchdog_checks : int;
}

val conserved : report -> bool
(** [final_total = initial_total + injected − lost] and [drained]. *)

val report_lines : report -> string list
(** Human-readable transport/staleness/ledger summary for the CLI. *)

val run :
  ?config:config ->
  ?plan:Faults.Schedule.plan ->
  ?watchdog:bool ->
  ?sample_every:int ->
  ?hook:(int -> int array -> unit) ->
  ?on_message:(Trace.message_event -> unit) ->
  graph:Graphs.Graph.t ->
  balancer:Core.Balancer.t ->
  init:int array ->
  steps:int ->
  unit ->
  report
(** [run ~graph ~balancer ~init ~steps ()] executes [steps] rounds over
    the unreliable network, then drains.

    - [config] (default {!default_config});
    - [plan]: fault events composed with the channel faults (crashes
      and shocks as in {!Faults.Engine.run}; outages become channel
      blackouts);
    - [watchdog] (default true): audit conservation (including
      in-flight mass), NL non-negativity and balancer state range
      after every round;
    - [hook]: called after each round with the live load vector;
    - [on_message]: observes every transport event for tracing.

    @raise Invalid_argument on mismatched dimensions, a negative step
    count, an invalid config, or a plan referencing steps/nodes/ports
    out of range.
    @raise Core.Engine.Invariant_violation on a misbehaving balancer.
    @raise Faults.Watchdog.Invariant_violation on a broken run
    invariant when the watchdog is enabled. *)
