type backoff = Fixed | Exponential

let backoff_of_string = function
  | "fixed" -> Ok Fixed
  | "exp" | "exponential" -> Ok Exponential
  | other ->
    Error (Printf.sprintf "unknown backoff %S (expected fixed or exp)" other)

let backoff_name = function Fixed -> "fixed" | Exponential -> "exponential"

type config = { timeout : int; backoff : backoff; cap : int }

let default_config = { timeout = 4; backoff = Exponential; cap = 64 }

let validate_config c =
  if c.timeout < 1 then
    Error (Printf.sprintf "retransmit timeout %d must be >= 1" c.timeout)
  else if c.cap < c.timeout then
    Error
      (Printf.sprintf "backoff cap %d below the base timeout %d" c.cap c.timeout)
  else Ok ()

let config_to_string c =
  Printf.sprintf "retx timeout %d (%s, cap %d)" c.timeout (backoff_name c.backoff)
    c.cap

type stats = {
  messages_sent : int;
  tokens_sent : int;
  retransmissions : int;
  duplicates_discarded : int;
  out_of_order : int;
  acks_sent : int;
  max_in_flight_tokens : int;
}

(* One unacknowledged message on the sender side. *)
type unacked = {
  u_seq : int;
  u_tokens : int;
  mutable u_retries : int;
  mutable u_next_retx : int;
}

type t = {
  channel : Channel.t;
  config : config;
  on_message : Trace.message_event -> unit;
  degree : int;
  adj : int array;  (** flat adjacency: destination of each edge *)
  rev : int array;  (** reverse directed edge of each edge *)
  incoming : int array array;  (** per node: incoming directed edges *)
  next_seq : int array;  (** per edge: next sequence number to assign *)
  unacked : unacked Queue.t array;  (** per edge, in seq order *)
  expect : int array;  (** per edge: next in-order seq at the receiver *)
  ooo : (int, int) Hashtbl.t array;  (** per edge: seq → tokens stash *)
  pending_round : int Queue.t array;
      (** per edge: first-send rounds of undelivered messages, seq order *)
  mutable in_flight : int;
  mutable unacked_count : int;
  mutable messages_sent : int;
  mutable tokens_sent : int;
  mutable retransmissions : int;
  mutable duplicates_discarded : int;
  mutable out_of_order : int;
  mutable acks_sent : int;
  mutable max_in_flight : int;
}

let create ?(on_message = fun _ -> ()) ~graph ~channel ~config () =
  (match validate_config config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Net.Protocol.create: " ^ m));
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let edges = n * d in
  let adj = Graphs.Graph.adjacency graph in
  let rev = Array.make edges 0 in
  let incoming_lists = Array.make n [] in
  for u = 0 to n - 1 do
    for k = 0 to d - 1 do
      let e = (u * d) + k in
      let v = adj.(e) in
      rev.(e) <- (v * d) + Graphs.Graph.reverse_port graph u k;
      incoming_lists.(v) <- e :: incoming_lists.(v)
    done
  done;
  {
    channel;
    config;
    on_message;
    degree = d;
    adj;
    rev;
    incoming = Array.map (fun l -> Array.of_list (List.rev l)) incoming_lists;
    next_seq = Array.make edges 1;
    unacked = Array.init edges (fun _ -> Queue.create ());
    expect = Array.make edges 1;
    ooo = Array.init edges (fun _ -> Hashtbl.create 4);
    pending_round = Array.init edges (fun _ -> Queue.create ());
    in_flight = 0;
    unacked_count = 0;
    messages_sent = 0;
    tokens_sent = 0;
    retransmissions = 0;
    duplicates_discarded = 0;
    out_of_order = 0;
    acks_sent = 0;
    max_in_flight = 0;
  }

let event t ~now kind ~edge ~seq ~tokens =
  t.on_message
    { Trace.m_step = now; m_kind = kind; m_edge = edge; m_seq = seq;
      m_tokens = tokens }

let retx_delay config ~retries =
  if retries < 0 then invalid_arg "Net.Protocol.retx_delay: negative retries";
  match config.backoff with
  | Fixed -> config.timeout
  | Exponential ->
    if retries >= 30 then config.cap
    else min config.cap (config.timeout lsl retries)

let next_timeout t retries = retx_delay t.config ~retries

let send t ~now ~node ~port ~tokens =
  if tokens <= 0 then invalid_arg "Net.Protocol.send: tokens must be positive";
  if port < 0 || port >= t.degree then invalid_arg "Net.Protocol.send: bad port";
  let edge = (node * t.degree) + port in
  let seq = t.next_seq.(edge) in
  t.next_seq.(edge) <- seq + 1;
  Queue.add
    { u_seq = seq; u_tokens = tokens; u_retries = 0;
      u_next_retx = now + t.config.timeout }
    t.unacked.(edge);
  t.unacked_count <- t.unacked_count + 1;
  Queue.add now t.pending_round.(edge);
  t.in_flight <- t.in_flight + tokens;
  if t.in_flight > t.max_in_flight then t.max_in_flight <- t.in_flight;
  t.messages_sent <- t.messages_sent + 1;
  t.tokens_sent <- t.tokens_sent + tokens;
  event t ~now Trace.Msg_send ~edge ~seq ~tokens;
  Channel.send t.channel ~now ~edge (Channel.Data { seq; tokens })

let send_ack t ~now ~data_edge =
  t.acks_sent <- t.acks_sent + 1;
  Channel.send t.channel ~now ~edge:t.rev.(data_edge)
    (Channel.Ack { cum = t.expect.(data_edge) - 1 })

let apply_in_order t ~now ~edge ~deliver tokens =
  let node = t.adj.(edge) in
  deliver ~node ~tokens;
  t.in_flight <- t.in_flight - tokens;
  ignore (Queue.pop t.pending_round.(edge));
  event t ~now Trace.Msg_deliver ~edge ~seq:t.expect.(edge) ~tokens;
  t.expect.(edge) <- t.expect.(edge) + 1

let handle_data t ~now ~deliver ~edge ~seq ~tokens =
  if seq < t.expect.(edge) then
    t.duplicates_discarded <- t.duplicates_discarded + 1
  else if seq = t.expect.(edge) then begin
    apply_in_order t ~now ~edge ~deliver tokens;
    (* Drain any stashed successors that are now in order. *)
    let rec drain () =
      match Hashtbl.find_opt t.ooo.(edge) t.expect.(edge) with
      | None -> ()
      | Some tk ->
        Hashtbl.remove t.ooo.(edge) t.expect.(edge);
        apply_in_order t ~now ~edge ~deliver tk;
        drain ()
    in
    drain ()
  end
  else if Hashtbl.mem t.ooo.(edge) seq then
    t.duplicates_discarded <- t.duplicates_discarded + 1
  else begin
    Hashtbl.replace t.ooo.(edge) seq tokens;
    t.out_of_order <- t.out_of_order + 1
  end;
  (* Every data packet — fresh, early or duplicate — refreshes the
     cumulative ACK, so a lost ACK is repaired by the next arrival. *)
  send_ack t ~now ~data_edge:edge

let handle_ack t ~edge ~cum =
  (* [edge] is the edge the ACK travelled on; it acknowledges the data
     stream of the reverse edge. *)
  let data_edge = t.rev.(edge) in
  let q = t.unacked.(data_edge) in
  let rec trim () =
    match Queue.peek_opt q with
    | Some u when u.u_seq <= cum ->
      ignore (Queue.pop q);
      t.unacked_count <- t.unacked_count - 1;
      trim ()
    | _ -> ()
  in
  trim ()

let retransmit_pass t ~now =
  let fired = ref 0 in
  Array.iteri
    (fun edge q ->
      Queue.iter
        (fun u ->
          if u.u_next_retx <= now then begin
            u.u_retries <- u.u_retries + 1;
            u.u_next_retx <- now + next_timeout t u.u_retries;
            t.retransmissions <- t.retransmissions + 1;
            incr fired;
            event t ~now Trace.Msg_retransmit ~edge ~seq:u.u_seq
              ~tokens:u.u_tokens;
            Channel.send t.channel ~now ~edge
              (Channel.Data { seq = u.u_seq; tokens = u.u_tokens })
          end)
        q)
    t.unacked;
  !fired

let tick t ~now ~deliver =
  let handle ~edge payload =
    match payload with
    | Channel.Data { seq; tokens } -> handle_data t ~now ~deliver ~edge ~seq ~tokens
    | Channel.Ack { cum } -> handle_ack t ~edge ~cum
  in
  (* Retransmissions can be delivered within the same round (zero-delay
     channel), so alternate deliver/retransmit until stable. *)
  let rec go () =
    Channel.deliver t.channel ~now handle;
    if retransmit_pass t ~now > 0 then go ()
  in
  go ()

let in_flight_tokens t = t.in_flight
let quiesced t = t.in_flight = 0 && t.unacked_count = 0

let oldest_pending t ~node =
  Array.fold_left
    (fun acc edge ->
      match (Queue.peek_opt t.pending_round.(edge), acc) with
      | None, _ -> acc
      | Some r, None -> Some r
      | Some r, Some best -> if r < best then Some r else acc)
    None t.incoming.(node)

let stats t =
  {
    messages_sent = t.messages_sent;
    tokens_sent = t.tokens_sent;
    retransmissions = t.retransmissions;
    duplicates_discarded = t.duplicates_discarded;
    out_of_order = t.out_of_order;
    acks_sent = t.acks_sent;
    max_in_flight_tokens = t.max_in_flight;
  }
