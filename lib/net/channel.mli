(** Unreliable message transport: per-edge delivery faults, seeded.

    A channel carries packets over the directed edges of a d-regular
    graph (edge index [u·d + port], {!Graphs.Graph.directed_edge_index}).
    Each transmission is independently subjected to

    - {e drop}: the packet vanishes (probability [drop]);
    - {e duplication}: a second copy is enqueued, with its own delay
      (probability [dup]);
    - {e delay}: delivery is postponed by a uniform number of extra
      rounds in [0, delay];
    - {e reorder}: the packet is held back one extra round, letting
      later traffic on the same edge overtake it (probability
      [reorder]).

    All randomness comes from one {!Prng.Splitmix} stream derived from
    the seed, so equal (seed, config, send sequence) replay the
    identical fault pattern — lossy runs are reproducible bit for bit.

    Within a round, packets are handed out in transmission order;
    out-of-order delivery arises when delay, reorder or
    drop-plus-retransmission pushes a packet into a later round than a
    younger one.  A packet sent in round [t] with zero delay is
    delivered in round [t] — the paper's synchronous model is the
    all-zero {!reliable} configuration.

    Edge outages (the {!Faults.Schedule.Edge_outage} fault) compose
    with the probabilistic faults: while an edge is down, {e every}
    transmission on it is dropped, and the retry protocol layered on
    top recovers the tokens once the outage lifts. *)

type config = {
  drop : float;  (** per-transmission loss probability, in [0, 1) *)
  dup : float;  (** per-transmission duplication probability, in [0, 1] *)
  reorder : float;  (** per-transmission hold-back probability, in [0, 1] *)
  delay : int;  (** max extra delivery delay in rounds, ≥ 0 *)
}

val reliable : config
(** No faults: drop = dup = reorder = 0, delay = 0. *)

val is_reliable : config -> bool

val validate_config : config -> (unit, string) result
(** [drop] must be < 1 (otherwise a retry protocol can never drain). *)

val config_to_string : config -> string

type payload =
  | Data of { seq : int; tokens : int }
  | Ack of { cum : int }  (** cumulative: all seqs ≤ [cum] received *)

type stats = {
  transmissions : int;  (** send attempts, including retransmissions *)
  dropped : int;  (** lost to probabilistic drops *)
  outage_dropped : int;  (** lost to scheduled edge outages *)
  duplicated : int;  (** extra copies injected *)
  delayed : int;  (** packets delivered later than the minimum round *)
  delivered : int;  (** packets handed to the receiver *)
}

type t

val create :
  ?on_drop:(now:int -> edge:int -> payload -> unit) ->
  seed:int ->
  config:config ->
  n:int ->
  degree:int ->
  unit ->
  t
(** [on_drop] observes every transmission lost to a probabilistic drop
    or an outage (for tracing), with the round it was sent in.
    @raise Invalid_argument on an invalid config (see
    {!validate_config}) or non-positive dimensions. *)

val set_outage : t -> edge:int -> until:int -> unit
(** Drop every transmission on [edge] in all rounds ≤ [until]
    (extends, never shortens, an existing outage). *)

val send : t -> now:int -> edge:int -> payload -> unit
(** Transmit one packet in round [now]; it is delivered (0, 1 or 2
    times) by {!deliver} calls of rounds ≥ [now]. *)

val deliver : t -> now:int -> (edge:int -> payload -> unit) -> unit
(** Hand over every packet whose delivery round is ≤ [now], in
    deterministic (round, transmission) order.  Packets enqueued by the
    callback itself (e.g. ACKs answering a delivery) are included if
    they too fall due in round [now]. *)

val pending : t -> int
(** Packets accepted but not yet delivered. *)

val stats : t -> stats
