(** Exactly-once token transfer over a lossy {!Channel}.

    Every directed edge is an independent ARQ stream: the sender stamps
    each transfer with a per-edge sequence number (1, 2, …) and keeps
    it buffered until acknowledged; the receiver delivers strictly in
    sequence order, stashes out-of-order arrivals, discards duplicates,
    and answers every data packet with a {e cumulative} ACK (largest
    seq below which everything was received).  Unacknowledged messages
    are retransmitted after a timeout that backs off exponentially up
    to a cap ({!config}).

    Invariants (audited by {!Faults.Watchdog} through
    {!in_flight_tokens}):

    - {e exactly-once}: each sequence number's tokens are added to the
      receiving node's load exactly once, no matter how often the
      channel duplicates or the sender retransmits;
    - {e conservation}: [Σ loads + in_flight_tokens] is constant —
      tokens are either held by a node or in exactly one unacknowledged,
      undelivered message;
    - {e in-order}: per edge, tokens are applied in send order, so a
      drained protocol leaves the same per-edge token totals as a
      reliable network. *)

type backoff = Fixed | Exponential

val backoff_of_string : string -> (backoff, string) result
(** ["fixed"] or ["exp"]/["exponential"]. *)

val backoff_name : backoff -> string

type config = {
  timeout : int;
      (** rounds an unacked message waits before its first
          retransmission, ≥ 1 *)
  backoff : backoff;
  cap : int;  (** upper bound on the backed-off timeout, ≥ [timeout] *)
}

val default_config : config
(** timeout 4, exponential backoff, cap 64. *)

val validate_config : config -> (unit, string) result
val config_to_string : config -> string

val retx_delay : config -> retries:int -> int
(** Delay before the next retransmission of a message already resent
    [retries] times: [timeout] under {!Fixed}; [timeout * 2^retries]
    clamped to [cap] under {!Exponential} (shift-safe for any
    [retries]).  Pure — the dist runtime reuses it for real-time
    socket backoff.  Raises [Invalid_argument] on negative [retries]. *)

type stats = {
  messages_sent : int;  (** distinct sequence numbers first-sent *)
  tokens_sent : int;  (** tokens they carried *)
  retransmissions : int;
  duplicates_discarded : int;  (** data packets the receiver had seen *)
  out_of_order : int;  (** arrivals stashed awaiting an earlier seq *)
  acks_sent : int;
  max_in_flight_tokens : int;
}

type t

val create :
  ?on_message:(Trace.message_event -> unit) ->
  graph:Graphs.Graph.t ->
  channel:Channel.t ->
  config:config ->
  unit ->
  t
(** One protocol instance per run.  [on_message] observes every
    transport event (send / deliver / drop / retransmit) as a
    {!Trace.message_event} for recording. *)

val send : t -> now:int -> node:int -> port:int -> tokens:int -> unit
(** Hand [tokens] > 0 to the transport for the directed edge
    [(node, port)] in round [now].  The tokens leave the caller's
    ledger and are accounted in {!in_flight_tokens} until delivered. *)

val tick : t -> now:int -> deliver:(node:int -> tokens:int -> unit) -> unit
(** Drive one round: pull channel deliveries due in [now] (applying
    data in-order via [deliver], processing ACKs), then retransmit
    every timed-out unacknowledged message. *)

val in_flight_tokens : t -> int
(** Tokens sent but not yet applied to a receiving node — the mass the
    conservation audit must add to [Σ loads]. *)

val quiesced : t -> bool
(** No undelivered tokens and no unacknowledged messages. *)

val oldest_pending : t -> node:int -> int option
(** The send round of the oldest message addressed to [node] whose
    tokens have not yet been applied — the engine's staleness gauge. *)

val stats : t -> stats
