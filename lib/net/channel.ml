type config = {
  drop : float;
  dup : float;
  reorder : float;
  delay : int;
}

let reliable = { drop = 0.0; dup = 0.0; reorder = 0.0; delay = 0 }

let is_reliable c =
  c.drop = 0.0 && c.dup = 0.0 && c.reorder = 0.0 && c.delay = 0

let validate_config c =
  if c.drop < 0.0 || c.drop >= 1.0 then
    Error
      (Printf.sprintf
         "drop probability %g must be in [0, 1) — at 1 no retry protocol can drain"
         c.drop)
  else if c.dup < 0.0 || c.dup > 1.0 then
    Error (Printf.sprintf "dup probability %g outside [0, 1]" c.dup)
  else if c.reorder < 0.0 || c.reorder > 1.0 then
    Error (Printf.sprintf "reorder probability %g outside [0, 1]" c.reorder)
  else if c.delay < 0 then
    Error (Printf.sprintf "max delay %d must be non-negative" c.delay)
  else Ok ()

let config_to_string c =
  Printf.sprintf "drop %g, dup %g, reorder %g, delay ≤%d" c.drop c.dup c.reorder
    c.delay

type payload = Data of { seq : int; tokens : int } | Ack of { cum : int }

type stats = {
  transmissions : int;
  dropped : int;
  outage_dropped : int;
  duplicated : int;
  delayed : int;
  delivered : int;
}

type packet = { id : int; p_edge : int; p_payload : payload }

type t = {
  config : config;
  on_drop : now:int -> edge:int -> payload -> unit;
  rng : Prng.Splitmix.t;
  edges : int;  (** n·degree directed edges *)
  outage_until : int array;
  buckets : (int, packet list) Hashtbl.t;  (** arrival round → packets *)
  mutable next_id : int;
  mutable in_flight : int;
  mutable transmissions : int;
  mutable dropped : int;
  mutable outage_dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable delivered : int;
}

let create ?(on_drop = fun ~now:_ ~edge:_ _ -> ()) ~seed ~config ~n ~degree () =
  (match validate_config config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Net.Channel.create: " ^ m));
  if n <= 0 || degree <= 0 then
    invalid_arg "Net.Channel.create: non-positive dimensions";
  {
    config;
    on_drop;
    rng = Prng.Splitmix.create seed;
    edges = n * degree;
    outage_until = Array.make (n * degree) 0;
    buckets = Hashtbl.create 64;
    next_id = 0;
    in_flight = 0;
    transmissions = 0;
    dropped = 0;
    outage_dropped = 0;
    duplicated = 0;
    delayed = 0;
    delivered = 0;
  }

let check_edge t edge =
  if edge < 0 || edge >= t.edges then
    invalid_arg (Printf.sprintf "Net.Channel: edge %d outside [0, %d)" edge t.edges)

let set_outage t ~edge ~until =
  check_edge t edge;
  if t.outage_until.(edge) < until then t.outage_until.(edge) <- until

let enqueue t ~arrive ~edge payload =
  let pkt = { id = t.next_id; p_edge = edge; p_payload = payload } in
  t.next_id <- t.next_id + 1;
  t.in_flight <- t.in_flight + 1;
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.buckets arrive) in
  Hashtbl.replace t.buckets arrive (pkt :: prev)

(* One physical transmission attempt: outage, then drop, then delay /
   hold-back.  The PRNG draw order is fixed so equal seeds replay the
   identical fault pattern. *)
let transmit t ~now ~edge payload =
  t.transmissions <- t.transmissions + 1;
  if t.outage_until.(edge) >= now then begin
    t.outage_dropped <- t.outage_dropped + 1;
    t.on_drop ~now ~edge payload
  end
  else if t.config.drop > 0.0 && Prng.Splitmix.bernoulli t.rng t.config.drop then begin
    t.dropped <- t.dropped + 1;
    t.on_drop ~now ~edge payload
  end
  else begin
    let extra =
      if t.config.delay > 0 then Prng.Splitmix.int t.rng (t.config.delay + 1) else 0
    in
    let held =
      t.config.reorder > 0.0 && Prng.Splitmix.bernoulli t.rng t.config.reorder
    in
    let extra = extra + (if held then 1 else 0) in
    if extra > 0 then t.delayed <- t.delayed + 1;
    enqueue t ~arrive:(now + extra) ~edge payload
  end

let send t ~now ~edge payload =
  check_edge t edge;
  transmit t ~now ~edge payload;
  if t.config.dup > 0.0 && Prng.Splitmix.bernoulli t.rng t.config.dup then begin
    t.duplicated <- t.duplicated + 1;
    transmit t ~now ~edge payload
  end

let due_rounds t ~now =
  (* lint: allow R1 — order-insensitive key harvest, sorted on the next line *)
  Hashtbl.fold (fun r _ acc -> if r <= now then r :: acc else acc) t.buckets []
  |> List.sort Int.compare

let deliver t ~now f =
  (* Handing a packet over can enqueue replies that fall due in this
     same round (zero-delay ACKs), so sweep until no due bucket is
     left. *)
  let rec sweep () =
    match due_rounds t ~now with
    | [] -> ()
    | rounds ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt t.buckets r with
          | None -> ()
          | Some pkts ->
            Hashtbl.remove t.buckets r;
            let pkts =
              List.sort (fun a b -> Int.compare a.id b.id) pkts
            in
            List.iter
              (fun p ->
                t.in_flight <- t.in_flight - 1;
                t.delivered <- t.delivered + 1;
                f ~edge:p.p_edge p.p_payload)
              pkts)
        rounds;
      sweep ()
  in
  sweep ()

let pending t = t.in_flight

let stats t =
  {
    transmissions = t.transmissions;
    dropped = t.dropped;
    outage_dropped = t.outage_dropped;
    duplicated = t.duplicated;
    delayed = t.delayed;
    delivered = t.delivered;
  }
