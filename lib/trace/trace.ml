type message_kind = Msg_send | Msg_deliver | Msg_drop | Msg_retransmit

type message_event = {
  m_step : int;
  m_kind : message_kind;
  m_edge : int;
  m_seq : int;
  m_tokens : int;
}

type t = {
  n : int;
  degree : int;
  self_loops : int;
  steps : int;
  edges : (int * int) array;
  init : int array;
  assignments : int array array array;
  messages : message_event array;
}

let message_kind_char = function
  | Msg_send -> 's'
  | Msg_deliver -> 'd'
  | Msg_drop -> 'x'
  | Msg_retransmit -> 'r'

let with_messages t events = { t with messages = Array.of_list events }

let record ~graph ~balancer ~init ~steps =
  let n = Graphs.Graph.n graph in
  let dp = Core.Balancer.d_plus balancer in
  let assignments =
    Array.init steps (fun _ -> Array.init n (fun _ -> Array.make dp 0))
  in
  let on_assign ~step ~node ~load:_ ~ports =
    Array.blit ports 0 assignments.(step - 1).(node) 0 dp
  in
  let tapped = Core.Tap.wrap balancer ~on_assign in
  let result = Core.Engine.run ~graph ~balancer:tapped ~init ~steps () in
  let trace =
    {
      n;
      degree = balancer.Core.Balancer.degree;
      self_loops = balancer.Core.Balancer.self_loops;
      steps;
      edges = Graphs.Graph.edges graph;
      init = Array.copy init;
      assignments;
      messages = [||];
    }
  in
  (trace, result)

let graph_of t = Graphs.Graph.of_edges ~n:t.n (Array.to_list t.edges)

let playback_balancer t =
  let dp = t.degree + t.self_loops in
  {
    Core.Balancer.name = "trace-playback";
    degree = t.degree;
    self_loops = t.self_loops;
    props = Core.Balancer.paper_deterministic;
    assign =
      (fun ~step ~node ~load:_ ~ports ->
        if step < 1 || step > t.steps then
          invalid_arg "Trace.replay: step outside recorded range";
        Array.blit t.assignments.(step - 1).(node) 0 ports 0 dp);
    persist = None;
  }

let replay t =
  let graph = graph_of t in
  Core.Engine.run ~graph ~balancer:(playback_balancer t) ~init:t.init ~steps:t.steps ()

let final_loads t =
  let r = replay t in
  r.Core.Engine.final_loads

let verify t =
  match replay t with
  | (_ : Core.Engine.result) -> Ok ()
  | exception Core.Engine.Invariant_violation msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* --- serialization --- *)

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "loadbal-trace 1\n";
      Printf.fprintf oc "graph %d %d %d %d\n" t.n t.degree t.self_loops t.steps;
      output_string oc "edges";
      Array.iter (fun (u, v) -> Printf.fprintf oc " %d %d" u v) t.edges;
      output_char oc '\n';
      output_string oc "init";
      Array.iter (fun x -> Printf.fprintf oc " %d" x) t.init;
      output_char oc '\n';
      for step = 1 to t.steps do
        for u = 0 to t.n - 1 do
          Printf.fprintf oc "a %d %d" step u;
          Array.iter (fun p -> Printf.fprintf oc " %d" p) t.assignments.(step - 1).(u);
          output_char oc '\n'
        done
      done;
      Array.iter
        (fun m ->
          Printf.fprintf oc "m %c %d %d %d %d\n" (message_kind_char m.m_kind)
            m.m_step m.m_edge m.m_seq m.m_tokens)
        t.messages)

exception Parse_error of { line : int; reason : string }

let parse_error_message = function
  | Parse_error { line; reason } ->
    Some (Printf.sprintf "trace parse error at line %d: %s" line reason)
  | _ -> None

let tokens_of_line line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun reason -> raise (Parse_error { line = !lineno; reason }))
          fmt
      in
      let int_of_token tok =
        match int_of_string_opt tok with
        | Some v -> v
        | None -> fail "bad integer %S" tok
      in
      (* Distinguishes the legal end of the assignment stream from a file
         that ends mid-header, without matching on exception strings. *)
      let exception End_of_input in
      let line () =
        match In_channel.input_line ic with
        | Some l ->
          incr lineno;
          l
        | None ->
          incr lineno;
          raise End_of_input
      in
      let header_line what =
        match line () with
        | l -> l
        | exception End_of_input -> fail "unexpected end of file (expected %s)" what
      in
      (match tokens_of_line (header_line "magic") with
      | [ "loadbal-trace"; "1" ] -> ()
      | _ -> fail "bad magic (expected 'loadbal-trace 1')");
      let n, degree, self_loops, steps =
        match tokens_of_line (header_line "graph line") with
        | [ "graph"; a; b; c; d ] ->
          (int_of_token a, int_of_token b, int_of_token c, int_of_token d)
        | _ -> fail "bad graph line (expected 'graph N DEGREE SELF_LOOPS STEPS')"
      in
      let edges =
        match tokens_of_line (header_line "edges line") with
        | "edges" :: rest ->
          let vals = List.map int_of_token rest in
          let rec pair = function
            | [] -> []
            | u :: v :: rest -> (u, v) :: pair rest
            | [ _ ] -> fail "odd edge endpoint count"
          in
          Array.of_list (pair vals)
        | _ -> fail "bad edges line (expected 'edges U1 V1 U2 V2 ...')"
      in
      let init =
        match tokens_of_line (header_line "init line") with
        | "init" :: rest ->
          let a = Array.of_list (List.map int_of_token rest) in
          if Array.length a <> n then
            fail "init has %d loads, graph line declared n = %d" (Array.length a) n;
          a
        | _ -> fail "bad init line (expected 'init X1 ... Xn')"
      in
      let dp = degree + self_loops in
      let assignments =
        Array.init steps (fun _ -> Array.init n (fun _ -> Array.make dp 0))
      in
      let seen = Array.make_matrix steps n false in
      let messages = ref [] in
      let message_kind_of_token = function
        | "s" -> Msg_send
        | "d" -> Msg_deliver
        | "x" -> Msg_drop
        | "r" -> Msg_retransmit
        | tok -> fail "bad message kind %S (expected s, d, x or r)" tok
      in
      (try
         while true do
           let l = line () in
           match tokens_of_line l with
           | "a" :: s :: u :: ports ->
             let step = int_of_token s and node = int_of_token u in
             if step < 1 || step > steps || node < 0 || node >= n then
               fail "assignment record (step %d, node %d) out of range" step node;
             let ports = List.map int_of_token ports in
             if List.length ports <> dp then
               fail "assignment has %d ports, expected d⁺ = %d"
                 (List.length ports) dp;
             List.iteri (fun k p -> assignments.(step - 1).(node).(k) <- p) ports;
             seen.(step - 1).(node) <- true
           | [ "m"; kind; s; e; q; toks ] ->
             let m_kind = message_kind_of_token kind in
             let m_step = int_of_token s and m_edge = int_of_token e in
             let m_seq = int_of_token q and m_tokens = int_of_token toks in
             if m_edge < 0 || m_edge >= n * degree then
               fail "message record edge %d outside [0, %d)" m_edge (n * degree);
             if m_seq < 1 then fail "message record seq %d < 1" m_seq;
             messages := { m_step; m_kind; m_edge; m_seq; m_tokens } :: !messages
           | "m" :: _ ->
             fail "bad message record %S (expected 'm KIND STEP EDGE SEQ TOKENS')" l
           | [] -> ()
           | _ -> fail "bad line %S" l
         done
       with End_of_input -> ());
      Array.iteri
        (fun s row ->
          Array.iteri
            (fun u present ->
              if not present then
                fail "missing assignment for step %d node %d" (s + 1) u)
            row)
        seen;
      { n; degree; self_loops; steps; edges; init; assignments;
        messages = Array.of_list (List.rev !messages) })
