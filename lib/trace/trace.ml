type t = {
  n : int;
  degree : int;
  self_loops : int;
  steps : int;
  edges : (int * int) array;
  init : int array;
  assignments : int array array array;
}

let record ~graph ~balancer ~init ~steps =
  let n = Graphs.Graph.n graph in
  let dp = Core.Balancer.d_plus balancer in
  let assignments =
    Array.init steps (fun _ -> Array.init n (fun _ -> Array.make dp 0))
  in
  let on_assign ~step ~node ~load:_ ~ports =
    Array.blit ports 0 assignments.(step - 1).(node) 0 dp
  in
  let tapped = Core.Tap.wrap balancer ~on_assign in
  let result = Core.Engine.run ~graph ~balancer:tapped ~init ~steps () in
  let trace =
    {
      n;
      degree = balancer.Core.Balancer.degree;
      self_loops = balancer.Core.Balancer.self_loops;
      steps;
      edges = Graphs.Graph.edges graph;
      init = Array.copy init;
      assignments;
    }
  in
  (trace, result)

let graph_of t = Graphs.Graph.of_edges ~n:t.n (Array.to_list t.edges)

let playback_balancer t =
  let dp = t.degree + t.self_loops in
  {
    Core.Balancer.name = "trace-playback";
    degree = t.degree;
    self_loops = t.self_loops;
    props = Core.Balancer.paper_deterministic;
    assign =
      (fun ~step ~node ~load:_ ~ports ->
        if step < 1 || step > t.steps then
          invalid_arg "Trace.replay: step outside recorded range";
        Array.blit t.assignments.(step - 1).(node) 0 ports 0 dp);
    persist = None;
  }

let replay t =
  let graph = graph_of t in
  Core.Engine.run ~graph ~balancer:(playback_balancer t) ~init:t.init ~steps:t.steps ()

let final_loads t =
  let r = replay t in
  r.Core.Engine.final_loads

let verify t =
  match replay t with
  | (_ : Core.Engine.result) -> Ok ()
  | exception Core.Engine.Invariant_violation msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* --- serialization --- *)

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "loadbal-trace 1\n";
      Printf.fprintf oc "graph %d %d %d %d\n" t.n t.degree t.self_loops t.steps;
      output_string oc "edges";
      Array.iter (fun (u, v) -> Printf.fprintf oc " %d %d" u v) t.edges;
      output_char oc '\n';
      output_string oc "init";
      Array.iter (fun x -> Printf.fprintf oc " %d" x) t.init;
      output_char oc '\n';
      for step = 1 to t.steps do
        for u = 0 to t.n - 1 do
          Printf.fprintf oc "a %d %d" step u;
          Array.iter (fun p -> Printf.fprintf oc " %d" p) t.assignments.(step - 1).(u);
          output_char oc '\n'
        done
      done)

let tokens_of_line line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let int_of_token line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Trace.load: bad integer %S in line %S" tok line)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> failwith "Trace.load: unexpected end of file"
      in
      (match tokens_of_line (line ()) with
      | [ "loadbal-trace"; "1" ] -> ()
      | _ -> failwith "Trace.load: bad magic (expected 'loadbal-trace 1')");
      let n, degree, self_loops, steps =
        let l = line () in
        match tokens_of_line l with
        | [ "graph"; a; b; c; d ] ->
          (int_of_token l a, int_of_token l b, int_of_token l c, int_of_token l d)
        | _ -> failwith "Trace.load: bad graph line"
      in
      let edges =
        let l = line () in
        match tokens_of_line l with
        | "edges" :: rest ->
          let vals = List.map (int_of_token l) rest in
          let rec pair = function
            | [] -> []
            | u :: v :: rest -> (u, v) :: pair rest
            | [ _ ] -> failwith "Trace.load: odd edge endpoint count"
          in
          Array.of_list (pair vals)
        | _ -> failwith "Trace.load: bad edges line"
      in
      let init =
        let l = line () in
        match tokens_of_line l with
        | "init" :: rest ->
          let a = Array.of_list (List.map (int_of_token l) rest) in
          if Array.length a <> n then failwith "Trace.load: init length mismatch";
          a
        | _ -> failwith "Trace.load: bad init line"
      in
      let dp = degree + self_loops in
      let assignments =
        Array.init steps (fun _ -> Array.init n (fun _ -> Array.make dp 0))
      in
      let seen = Array.make_matrix steps n false in
      (try
         while true do
           let l = line () in
           match tokens_of_line l with
           | "a" :: s :: u :: ports ->
             let step = int_of_token l s and node = int_of_token l u in
             if step < 1 || step > steps || node < 0 || node >= n then
               failwith "Trace.load: assignment record out of range";
             let ports = List.map (int_of_token l) ports in
             if List.length ports <> dp then
               failwith "Trace.load: wrong port count in assignment";
             List.iteri (fun k p -> assignments.(step - 1).(node).(k) <- p) ports;
             seen.(step - 1).(node) <- true
           | [] -> ()
           | _ -> failwith (Printf.sprintf "Trace.load: bad line %S" l)
         done
       with Failure msg when msg = "Trace.load: unexpected end of file" -> ());
      Array.iteri
        (fun s row ->
          Array.iteri
            (fun u present ->
              if not present then
                failwith
                  (Printf.sprintf "Trace.load: missing assignment for step %d node %d"
                     (s + 1) u))
            row)
        seen;
      { n; degree; self_loops; steps; edges; init; assignments })
