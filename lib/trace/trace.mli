(** Record / replay of balancing runs.

    A trace captures the graph, the initial loads and every port
    assignment of a run in a line-oriented text format, so that a
    simulation can be (a) re-executed bit-for-bit later — determinism
    check, regression anchoring — and (b) audited offline
    (conservation, fairness) without re-running the algorithm.

    Format (whitespace-separated, one record per line):
    {v
    loadbal-trace 1          # magic + version
    graph <n> <degree> <self_loops> <steps>
    edges <u_1> <v_1> <u_2> <v_2> ...
    init <x_1> ... <x_n>
    a <step> <node> <p_0> ... <p_(d⁺-1)>   # one per node per step
    m <kind> <step> <edge> <seq> <tokens>  # optional message events
    v}

    Message records capture the transport-level life of a token transfer
    under the unreliable-network engine ({!Net.Async_engine}): [kind] is
    [s] (send), [d] (deliver), [x] (drop) or [r] (retransmit); [edge] is
    the directed edge index [u·d + port].  Traces recorded by the
    synchronous engine carry none. *)

type message_kind =
  | Msg_send  (** first transmission of a sequence number *)
  | Msg_deliver  (** in-order delivery to the application *)
  | Msg_drop  (** the channel dropped a transmission *)
  | Msg_retransmit  (** sender re-sent an unacknowledged message *)

type message_event = {
  m_step : int;  (** round the event happened in *)
  m_kind : message_kind;
  m_edge : int;  (** directed edge index [u·degree + port] *)
  m_seq : int;  (** per-edge sequence number (1-based) *)
  m_tokens : int;  (** tokens carried (0 for token-free events) *)
}

type t = {
  n : int;
  degree : int;
  self_loops : int;
  steps : int;
  edges : (int * int) array;
  init : int array;
  assignments : int array array array;
      (** [assignments.(t).(u)] = ports of node [u] at step [t+1];
          length d⁺ each *)
  messages : message_event array;
      (** transport events in emission order; [[||]] for synchronous
          traces *)
}

val record :
  graph:Graphs.Graph.t ->
  balancer:Core.Balancer.t ->
  init:int array ->
  steps:int ->
  t * Core.Engine.result
(** Run the balancer under a recording tap. *)

val graph_of : t -> Graphs.Graph.t
(** Rebuild the graph the trace was recorded on (ports in the recorded
    order). *)

val save : path:string -> t -> unit

exception Parse_error of { line : int; reason : string }
(** Raised by {!load} on a malformed file, naming the 1-based line the
    parse failed on.  An end-of-file mid-header reports the line after
    the last one read. *)

val parse_error_message : exn -> string option
(** [Some human_message] for a {!Parse_error}, [None] otherwise —
    convenience for CLI catch sites. *)

val load : path:string -> t
(** @raise Parse_error on a malformed file (bad magic, malformed header,
    non-integer token, out-of-range or missing assignment records,
    malformed message records).
    @raise Sys_error if the file cannot be opened. *)

val with_messages : t -> message_event list -> t
(** Attach transport events (in emission order) to a trace. *)

val message_kind_char : message_kind -> char
(** The one-character record tag: [s], [d], [x] or [r]. *)

val replay : t -> Core.Engine.result
(** Re-execute the recorded assignments through the engine (via a
    playback balancer); all engine invariants are re-checked. *)

val verify : t -> (unit, string) Result.t
(** Offline structural check: every record conserves its node's implied
    load and no original port is negative. *)

val final_loads : t -> int array
(** The load vector after the recorded steps, computed from the trace
    alone. *)
