(** Record / replay of balancing runs.

    A trace captures the graph, the initial loads and every port
    assignment of a run in a line-oriented text format, so that a
    simulation can be (a) re-executed bit-for-bit later — determinism
    check, regression anchoring — and (b) audited offline
    (conservation, fairness) without re-running the algorithm.

    Format (whitespace-separated, one record per line):
    {v
    loadbal-trace 1          # magic + version
    graph <n> <degree> <self_loops> <steps>
    edges <u_1> <v_1> <u_2> <v_2> ...
    init <x_1> ... <x_n>
    a <step> <node> <p_0> ... <p_(d⁺-1)>   # one per node per step
    v} *)

type t = {
  n : int;
  degree : int;
  self_loops : int;
  steps : int;
  edges : (int * int) array;
  init : int array;
  assignments : int array array array;
      (** [assignments.(t).(u)] = ports of node [u] at step [t+1];
          length d⁺ each *)
}

val record :
  graph:Graphs.Graph.t ->
  balancer:Core.Balancer.t ->
  init:int array ->
  steps:int ->
  t * Core.Engine.result
(** Run the balancer under a recording tap. *)

val graph_of : t -> Graphs.Graph.t
(** Rebuild the graph the trace was recorded on (ports in the recorded
    order). *)

val save : path:string -> t -> unit

exception Parse_error of { line : int; reason : string }
(** Raised by {!load} on a malformed file, naming the 1-based line the
    parse failed on.  An end-of-file mid-header reports the line after
    the last one read. *)

val parse_error_message : exn -> string option
(** [Some human_message] for a {!Parse_error}, [None] otherwise —
    convenience for CLI catch sites. *)

val load : path:string -> t
(** @raise Parse_error on a malformed file (bad magic, malformed header,
    non-integer token, out-of-range or missing assignment records).
    @raise Sys_error if the file cannot be opened. *)

val replay : t -> Core.Engine.result
(** Re-execute the recorded assignments through the engine (via a
    playback balancer); all engine invariants are re-checked. *)

val verify : t -> (unit, string) Result.t
(** Offline structural check: every record conserves its node's implied
    load and no original port is negative. *)

val final_loads : t -> int array
(** The load vector after the recorded steps, computed from the trace
    alone. *)
