let make g ~self_loops =
  if self_loops < 1 then invalid_arg "Send_floor.make: needs at least one self-loop";
  let d = Graphs.Graph.degree g in
  let dp = d + self_loops in
  let assign ~step:_ ~node:_ ~load ~ports =
    if load < 0 then invalid_arg "Send_floor: negative load";
    let q = load / dp and e = load mod dp in
    Array.fill ports 0 dp q;
    ports.(d) <- q + e
  in
  {
    Balancer.name = Printf.sprintf "send-floor(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props = Balancer.paper_stateless;
    assign;
    persist = None;
  }
