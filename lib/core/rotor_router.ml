let default_order ~degree ~self_loops =
  let dp = degree + self_loops in
  (* Bresenham-style merge: spread the original ports as evenly as
     possible among the self-loop ports around the cycle. *)
  let out = Array.make dp 0 in
  let next_orig = ref 0 and next_self = ref degree in
  let err = ref (degree - self_loops) in
  for i = 0 to dp - 1 do
    if (!next_orig < degree && !err > 0) || !next_self >= dp then begin
      out.(i) <- !next_orig;
      incr next_orig;
      err := !err - (2 * self_loops)
    end
    else begin
      out.(i) <- !next_self;
      incr next_self;
      err := !err + (2 * degree)
    end
  done;
  out

let validate_order ~d_plus order =
  if Array.length order <> d_plus then
    invalid_arg "Rotor_router: order is not a permutation (wrong length)";
  let seen = Array.make d_plus false in
  Array.iter
    (fun k ->
      if k < 0 || k >= d_plus || seen.(k) then
        invalid_arg "Rotor_router: order is not a permutation";
      seen.(k) <- true)
    order;
  order

let make ?order ?init_rotor g ~self_loops =
  if self_loops < 0 then invalid_arg "Rotor_router.make: self_loops < 0";
  let d = Graphs.Graph.degree g in
  let dp = d + self_loops in
  let n = Graphs.Graph.n g in
  let shared_default = default_order ~degree:d ~self_loops in
  let orders =
    match order with
    | None -> Array.make n shared_default
    | Some f -> Array.init n (fun u -> validate_order ~d_plus:dp (Array.copy (f u)))
  in
  let rotor =
    Array.init n (fun u ->
        match init_rotor with
        | None -> 0
        | Some f ->
          let r = f u in
          if r < 0 || r >= dp then
            invalid_arg "Rotor_router.make: initial rotor out of range";
          r)
  in
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then
      invalid_arg "Rotor_router: negative load (rotor-router never produces one)";
    let q = load / dp and e = load mod dp in
    Array.fill ports 0 dp q;
    let ord = orders.(node) in
    let r = rotor.(node) in
    for i = 0 to e - 1 do
      let k = ord.((r + i) mod dp) in
      ports.(k) <- ports.(k) + 1
    done;
    rotor.(node) <- (r + e) mod dp
  in
  {
    Balancer.name = Printf.sprintf "rotor-router(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props = Balancer.paper_deterministic;
    assign;
    persist = Balancer.per_node_persistence rotor;
  }
