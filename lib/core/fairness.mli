(** Online auditors for the paper's algorithm-class definitions.

    Feed every (node, load, port assignment) the engine executes into a
    tracker; the final report states which class memberships the run
    actually exhibited:

    - Definition 2.1 (cumulative δ-fairness): the empirical δ — the
      largest spread, over any node and any time prefix, of cumulative
      flow across that node's original edges — and whether every port
      always received at least ⌊x/d⁺⌋ tokens.
    - Definition 3.1 (good s-balancer): round-fairness (every port gets
      ⌊x/d⁺⌋ or ⌈x/d⁺⌉), the ceiling cap, and the empirical s of
      s-self-preference.

    All checks treat loads with Euclidean floor/ceil so that runs of
    negative-load baselines still produce meaningful reports (they
    simply fail the checks). *)

type t

type report = {
  observations : int;       (** node-steps audited *)
  cumulative_delta : int;   (** empirical δ of Definition 2.1 *)
  floor_share_ok : bool;    (** Definition 2.1(i): every port ≥ ⌊x/d⁺⌋ *)
  round_fair : bool;        (** every port ∈ {⌊x/d⁺⌋, ⌈x/d⁺⌉} *)
  ceil_cap_ok : bool;       (** Definition 3.1(3): every port ≤ ⌈x/d⁺⌉ *)
  self_pref_s : int option; (** empirical max s of Definition 3.1(2);
                                [None] means unconstrained (any s ≤ d° works) *)
  eq3_deviation : float;
      (** the Theorem 2.3 proof's equation (3): the largest
          |F_t(e) − F_out_t(u)/d⁺| over original edges — ≤ δ after the
          Proposition A.2 transformation, and directly audited here *)
}

val create : degree:int -> self_loops:int -> n:int -> t

val observe : t -> node:int -> load:int -> ports:int array -> unit
(** Must be called exactly once per node per step, in any node order. *)

val node_spread : t -> int -> int
(** Current cumulative-flow spread over the original edges of one node
    (exposed for tests). *)

val report : t -> report

val merge_reports : report list -> report
(** Combine reports from trackers that audited {e disjoint} node sets of
    the same run (e.g. one tracker per shard).  Exact: every field is a
    sum, max, min or conjunction over per-node observations.
    @raise Invalid_argument on the empty list. *)

val pp_report : Format.formatter -> report -> unit
