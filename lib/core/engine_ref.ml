(* One token at a time, via lists of (destination, count) pairs built
   per node and folded into an association list of deliveries.  No flat
   arrays, no in-place accumulation: maximally different from Engine. *)

let run ~graph ~balancer ~init ~steps =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let dp = Balancer.d_plus balancer in
  if Array.length init <> n then failwith "Engine_ref.run: init length mismatch";
  let loads = ref (Array.to_list (Array.mapi (fun u x -> (u, x)) init)) in
  let load_of u = List.assoc u !loads in
  for t = 1 to steps do
    let deliveries = ref [] in
    let deliver dest count =
      let cur = try List.assoc dest !deliveries with Not_found -> 0 in
      deliveries := (dest, cur + count) :: List.remove_assoc dest !deliveries
    in
    List.iter
      (fun (u, x) ->
        let ports = Array.make dp 0 in
        balancer.Balancer.assign ~step:t ~node:u ~load:x ~ports;
        let assigned = Array.fold_left ( + ) 0 ports in
        if assigned <> x then
          failwith
            (Printf.sprintf "Engine_ref: conservation broken at node %d step %d" u t);
        Array.iteri
          (fun k c ->
            if k < d then begin
              if c < 0 then
                failwith
                  (Printf.sprintf "Engine_ref: negative send at node %d step %d" u t);
              (* token-by-token, pedantically *)
              for _ = 1 to c do
                deliver (Graphs.Graph.neighbor graph u k) 1
              done
            end
            else deliver u c)
          ports)
      (List.sort
         (fun (u1, c1) (u2, c2) ->
           let c = Int.compare u1 u2 in
           if c <> 0 then c else Int.compare c1 c2)
         !loads);
    loads :=
      List.init n (fun u ->
          (u, try List.assoc u !deliveries with Not_found -> 0))
  done;
  Array.init n load_of
