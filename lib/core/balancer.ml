type properties = {
  deterministic : bool;
  stateless : bool;
  never_negative : bool;
  no_communication : bool;
}

type persistence = {
  state_save : unit -> int array;
  state_restore : int array -> unit;
}

type t = {
  name : string;
  degree : int;
  self_loops : int;
  props : properties;
  assign : step:int -> node:int -> load:int -> ports:int array -> unit;
  persist : persistence option;
}

let d_plus b = b.degree + b.self_loops

let resumable b = b.props.stateless || b.persist <> None

let per_node_persistence arr =
  Some
    {
      state_save = (fun () -> Array.copy arr);
      state_restore =
        (fun saved ->
          if Array.length saved <> Array.length arr then
            invalid_arg "Balancer.state_restore: state length mismatch";
          Array.blit saved 0 arr 0 (Array.length arr));
    }

let paper_deterministic =
  { deterministic = true; stateless = false; never_negative = true; no_communication = true }

let paper_stateless =
  { deterministic = true; stateless = true; never_negative = true; no_communication = true }

let validate_assignment b ~load ~ports =
  let dp = d_plus b in
  if Array.length ports <> dp then
    Error (Printf.sprintf "%s: ports buffer has length %d, expected %d"
             b.name (Array.length ports) dp)
  else begin
    let sum = ref 0 in
    let bad_original = ref None in
    for k = 0 to dp - 1 do
      sum := !sum + ports.(k);
      if k < b.degree && ports.(k) < 0 && !bad_original = None then
        bad_original := Some k
    done;
    match !bad_original with
    | Some k ->
      Error (Printf.sprintf "%s: negative tokens (%d) on original port %d"
               b.name ports.(k) k)
    | None ->
      if !sum <> load then
        Error (Printf.sprintf "%s: conservation violated (assigned %d of load %d)"
                 b.name !sum load)
      else Ok ()
  end
