type t = {
  degree : int;
  d_plus : int;
  cumulative : int array; (* n * degree: per directed original edge *)
  mutable observations : int;
  mutable cumulative_delta : int;
  mutable floor_share_ok : bool;
  mutable round_fair : bool;
  mutable ceil_cap_ok : bool;
  mutable s_cap : int; (* max_int = unconstrained *)
  cum_out : int array; (* per node: cumulative outgoing flow = Σ loads seen *)
  mutable eq3_num : int; (* max |F(e)·d⁺ − F_out| over original edges *)
}

type report = {
  observations : int;
  cumulative_delta : int;
  floor_share_ok : bool;
  round_fair : bool;
  ceil_cap_ok : bool;
  self_pref_s : int option;
  eq3_deviation : float;
}

let create ~degree ~self_loops ~n =
  if degree <= 0 || self_loops < 0 || n <= 0 then invalid_arg "Fairness.create";
  {
    degree;
    d_plus = degree + self_loops;
    cumulative = Array.make (n * degree) 0;
    observations = 0;
    cumulative_delta = 0;
    floor_share_ok = true;
    round_fair = true;
    ceil_cap_ok = true;
    s_cap = max_int;
    cum_out = Array.make n 0;
    eq3_num = 0;
  }

(* Euclidean floor division: rounds toward negative infinity. *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)

let observe t ~node ~load ~ports =
  if Array.length ports <> t.d_plus then invalid_arg "Fairness.observe: bad ports length";
  t.observations <- t.observations + 1;
  let q = fdiv load t.d_plus in
  let e = load - (q * t.d_plus) in
  (* e in [0, d_plus); ceil share is q+1 iff e > 0. *)
  let ceil_share = if e > 0 then q + 1 else q in
  let ceil_count_self = ref 0 in
  for k = 0 to t.d_plus - 1 do
    let v = ports.(k) in
    if v < q then t.floor_share_ok <- false;
    if v < q || v > ceil_share then t.round_fair <- false;
    if v > ceil_share then t.ceil_cap_ok <- false;
    if k >= t.degree && v >= q + 1 then incr ceil_count_self
  done;
  if e > 0 && !ceil_count_self < e then
    t.s_cap <- min t.s_cap !ceil_count_self;
  (* Cumulative flow spread over original edges, and the equation (3)
     deviation |F(e) - F_out/d+| (scaled by d+ to stay integral).
     F_out is the outflow of the Proposition A.2 reformulation A′ —
     original sends plus d° virtual self-loop sends of ports.(0) — so
     the remainder A′ holds back is excluded, exactly as in the proof. *)
  let orig_sum = ref 0 in
  for k = 0 to t.degree - 1 do
    orig_sum := !orig_sum + ports.(k)
  done;
  t.cum_out.(node) <-
    t.cum_out.(node) + !orig_sum + ((t.d_plus - t.degree) * ports.(0));
  let f_out = t.cum_out.(node) in
  let base = node * t.degree in
  let lo = ref max_int and hi = ref min_int in
  for k = 0 to t.degree - 1 do
    let c = t.cumulative.(base + k) + ports.(k) in
    t.cumulative.(base + k) <- c;
    if c < !lo then lo := c;
    if c > !hi then hi := c;
    let dev = abs ((c * t.d_plus) - f_out) in
    if dev > t.eq3_num then t.eq3_num <- dev
  done;
  if !hi - !lo > t.cumulative_delta then t.cumulative_delta <- !hi - !lo

let node_spread t node =
  let base = node * t.degree in
  let lo = ref max_int and hi = ref min_int in
  for k = 0 to t.degree - 1 do
    let c = t.cumulative.(base + k) in
    if c < !lo then lo := c;
    if c > !hi then hi := c
  done;
  if t.degree = 0 then 0 else !hi - !lo

let report t =
  let s_cap = t.s_cap in
  {
    observations = t.observations;
    cumulative_delta = t.cumulative_delta;
    floor_share_ok = t.floor_share_ok;
    round_fair = t.round_fair;
    ceil_cap_ok = t.ceil_cap_ok;
    self_pref_s = (if s_cap = max_int then None else Some s_cap);
    eq3_deviation = float_of_int t.eq3_num /. float_of_int t.d_plus;
  }

let merge_reports reports =
  match reports with
  | [] -> invalid_arg "Fairness.merge_reports: empty list"
  | first :: rest ->
    (* Every per-observation check is local to one node, and every report
       field is a sum / max / min / conjunction over observations — so
       merging per-shard reports of disjoint node sets is exact. *)
    List.fold_left
      (fun acc r ->
        {
          observations = acc.observations + r.observations;
          cumulative_delta = max acc.cumulative_delta r.cumulative_delta;
          floor_share_ok = acc.floor_share_ok && r.floor_share_ok;
          round_fair = acc.round_fair && r.round_fair;
          ceil_cap_ok = acc.ceil_cap_ok && r.ceil_cap_ok;
          self_pref_s =
            (match (acc.self_pref_s, r.self_pref_s) with
            | None, s | s, None -> s
            | Some a, Some b -> Some (min a b));
          eq3_deviation = Float.max acc.eq3_deviation r.eq3_deviation;
        })
      first rest

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>observations: %d@ empirical δ: %d@ floor-share ok: %b@ round-fair: %b@ \
     ceil-cap ok: %b@ empirical s: %s@ eq(3) deviation: %.2f@]"
    r.observations r.cumulative_delta r.floor_share_ok r.round_fair r.ceil_cap_ok
    (match r.self_pref_s with None -> "unconstrained" | Some s -> string_of_int s)
    r.eq3_deviation
