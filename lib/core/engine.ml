exception Invariant_violation of string

type result = {
  steps_run : int;
  final_loads : int array;
  series : (int * int) array;
  min_load_seen : int;
  reached_target : int option;
  fairness : Fairness.report option;
}

let scan_discrepancy_and_min loads =
  let lo = ref loads.(0) and hi = ref loads.(0) in
  for i = 1 to Array.length loads - 1 do
    let x = loads.(i) in
    if x < !lo then lo := x;
    if x > !hi then hi := x
  done;
  (!hi - !lo, !lo)

let run ?(audit = false) ?(sample_every = 1) ?hook ?stop_at_discrepancy ~graph
    ~balancer ~init ~steps () =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  if balancer.Balancer.degree <> d then
    invalid_arg
      (Printf.sprintf "Engine.run: balancer %s built for degree %d, graph has %d"
         balancer.Balancer.name balancer.Balancer.degree d);
  if Array.length init <> n then invalid_arg "Engine.run: init length mismatch";
  if steps < 0 then invalid_arg "Engine.run: negative step count";
  if sample_every <= 0 then invalid_arg "Engine.run: sample_every must be positive";
  let dp = Balancer.d_plus balancer in
  let tracker =
    if audit then
      Some (Fairness.create ~degree:d ~self_loops:balancer.Balancer.self_loops ~n)
    else None
  in
  let adj = Graphs.Graph.adjacency graph in
  (* Probes only read; with them disabled this costs one branch per
     node, and either way the dynamics are untouched (bit-identical
     results — property-tested in test_obs.ml). *)
  let probing = Obs.Probe.enabled () in
  let moved = ref 0 in
  let cur = ref (Array.copy init) in
  let next = ref (Array.make n 0) in
  let ports = Array.make dp 0 in
  let series = ref [] in
  let reached = ref None in
  let d0, m0 = scan_discrepancy_and_min !cur in
  let min_seen = ref m0 in
  series := (0, d0) :: !series;
  (match stop_at_discrepancy with
   | Some target when d0 <= target -> reached := Some 0
   | _ -> ());
  let steps_done = ref 0 in
  (try
     for t = 1 to steps do
       if !reached <> None && stop_at_discrepancy <> None then raise Exit;
       let sp = Obs.Prof.start "core.assign" in
       moved := 0;
       let cur_a = !cur and next_a = !next in
       Array.fill next_a 0 n 0;
       for u = 0 to n - 1 do
         let x = cur_a.(u) in
         balancer.Balancer.assign ~step:t ~node:u ~load:x ~ports;
         (* Inline validation: conservation and non-negative sends. *)
         let sum = ref 0 in
         for k = 0 to dp - 1 do
           sum := !sum + ports.(k);
           if k < d && ports.(k) < 0 then
             raise
               (Invariant_violation
                  (Printf.sprintf
                     "%s: node %d step %d sends %d (< 0) on original port %d"
                     balancer.Balancer.name u t ports.(k) k))
         done;
         if !sum <> x then
           raise
             (Invariant_violation
                (Printf.sprintf
                   "%s: node %d step %d assigned %d tokens of load %d"
                   balancer.Balancer.name u t !sum x));
         (match tracker with
          | Some tr -> Fairness.observe tr ~node:u ~load:x ~ports
          | None -> ());
         let base = u * d in
         let kept = ref 0 in
         for k = 0 to d - 1 do
           let v = adj.(base + k) in
           next_a.(v) <- next_a.(v) + ports.(k)
         done;
         for k = d to dp - 1 do
           kept := !kept + ports.(k)
         done;
         if probing then moved := !moved + (x - !kept);
         next_a.(u) <- next_a.(u) + !kept
       done;
       Obs.Prof.stop sp;
       let tmp = !cur in
       cur := !next;
       next := tmp;
       steps_done := t;
       let sp = Obs.Prof.start "core.scan" in
       let disc, mn = scan_discrepancy_and_min !cur in
       Obs.Prof.stop sp;
       if probing then
         Obs.Probe.on_round ~engine:"core" ~d_plus:dp ~step:t ~tokens_moved:!moved
           ~discrepancy:disc ~max_load:(mn + disc) ~min_load:mn ~loads:!cur;
       if mn < !min_seen then min_seen := mn;
       if t mod sample_every = 0 || t = steps then series := (t, disc) :: !series;
       (* Round boundary: service any pending SIGUSR1 scrape request
          (the handler itself only sets a flag). *)
       Obs.Export.poll ();
       (match hook with Some f -> f t !cur | None -> ());
       (match stop_at_discrepancy with
        | Some target when disc <= target && !reached = None -> reached := Some t
        | _ -> ())
     done
   with Exit -> ());
  {
    steps_run = !steps_done;
    final_loads = !cur;
    series = Array.of_list (List.rev !series);
    min_load_seen = !min_seen;
    reached_target = !reached;
    fairness = Option.map Fairness.report tracker;
  }

let discrepancy_after ~graph ~balancer ~init ~steps =
  let r = run ~graph ~balancer ~init ~steps () in
  match r.series with
  | [||] -> 0
  | s -> snd s.(Array.length s - 1)
