let make ?init_rotor g =
  let d = Graphs.Graph.degree g in
  let n = Graphs.Graph.n g in
  let dp = 2 * d in
  let rotor_ports = dp - 1 in
  (* Special self-loop = last port (index dp - 1); the rotor serves the
     d original edges interleaved with the d - 1 plain self-loops. *)
  let order = Rotor_router.default_order ~degree:d ~self_loops:(d - 1) in
  let rotor =
    Array.init n (fun u ->
        match init_rotor with
        | None -> 0
        | Some f ->
          let r = f u in
          if r < 0 || r >= rotor_ports then
            invalid_arg "Rotor_router_star.make: initial rotor out of range";
          r)
  in
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then invalid_arg "Rotor_router_star: negative load";
    let special = (load + dp - 1) / dp in
    (* ⌈x / 2d⌉ *)
    let y = load - special in
    let q = y / rotor_ports and e = y mod rotor_ports in
    Array.fill ports 0 rotor_ports q;
    ports.(dp - 1) <- special;
    let r = rotor.(node) in
    for i = 0 to e - 1 do
      let k = order.((r + i) mod rotor_ports) in
      ports.(k) <- ports.(k) + 1
    done;
    rotor.(node) <- (r + e) mod rotor_ports
  in
  {
    Balancer.name = "rotor-router*";
    degree = d;
    self_loops = d;
    props = Balancer.paper_deterministic;
    assign;
    persist = Balancer.per_node_persistence rotor;
  }
