(** The balancer interface: what a load-balancing algorithm is.

    A balancer controls one d-regular graph node per call.  In step [t],
    a node [u] holding [load] tokens must place every token on one of
    its [d⁺ = d + self_loops] ports:

    - ports [0 .. d-1] are [u]'s original edges, in the graph's port
      order — tokens placed there move to the corresponding neighbor;
    - ports [d .. d⁺-1] are [u]'s self-loops — tokens placed there stay.

    The engine calls [assign] once per node per step; the balancer
    writes token counts into the provided [ports] buffer (length d⁺).
    Invariants enforced by the engine:

    - conservation: the entries sum to [load];
    - original entries (ports [0 .. d-1]) are non-negative.

    Self-loop entries may be negative only for algorithms that, like the
    continuous-mimicking scheme of Akbari et al. [4], deliberately incur
    negative load (the NL=✗ rows of Table 1). *)

type properties = {
  deterministic : bool;  (** D column of Table 1 *)
  stateless : bool;      (** SL column: assignment depends only on the current load *)
  never_negative : bool; (** NL column: cannot produce negative loads *)
  no_communication : bool; (** NC column: needs no info beyond its own load *)
}

type persistence = {
  state_save : unit -> int array;
  (** Snapshot the balancer's mutable state as a per-node int array
      (entry [u] is node [u]'s state).  Used by checkpointing and by the
      sharded engine, which merges per-shard snapshots by node owner. *)
  state_restore : int array -> unit;
  (** Overwrite the balancer's state with a previously saved snapshot.
      @raise Invalid_argument on a length mismatch. *)
}

type t = {
  name : string;
  degree : int;       (** d: original edges per node *)
  self_loops : int;   (** d°: self-loops per node in G⁺ *)
  props : properties;
  assign : step:int -> node:int -> load:int -> ports:int array -> unit;
  persist : persistence option;
  (** Checkpoint capability.  [None] for balancers whose state cannot be
      captured as a per-node int vector (or that have none — stateless
      balancers need no persistence to be resumable). *)
}

val d_plus : t -> int
(** d⁺ = degree + self_loops. *)

val resumable : t -> bool
(** A balancer can be checkpoint-resumed iff it is stateless (nothing to
    save) or provides a {!persistence} capability. *)

val per_node_persistence : int array -> persistence option
(** [per_node_persistence arr] is the standard capability for a balancer
    whose whole mutable state is the per-node int array [arr] (e.g. a
    rotor position per node): save copies it, restore blits into it. *)

val paper_deterministic : properties
(** D ✓, SL ✗, NL ✓, NC ✓ — rotor-router-style. *)

val paper_stateless : properties
(** D ✓, SL ✓, NL ✓, NC ✓ — SEND-style. *)

val validate_assignment :
  t -> load:int -> ports:int array -> (unit, string) Result.t
(** The engine's invariant check, exposed for tests: conservation and
    non-negative original ports. *)
