let make g ~self_loops =
  let d = Graphs.Graph.degree g in
  if self_loops < d then
    invalid_arg "Send_round.make: needs d° >= d (self-loops absorb the rounding)";
  let dp = d + self_loops in
  let assign ~step:_ ~node:_ ~load ~ports =
    if load < 0 then invalid_arg "Send_round: negative load";
    let q = load / dp and e = load mod dp in
    let round_up = 2 * e >= dp in
    let share = if round_up then q + 1 else q in
    (* Original edges all get [x/d+]. *)
    for k = 0 to d - 1 do
      ports.(k) <- share
    done;
    (* Self-loops: base q each, then one extra per loop until the load is
       exhausted.  extra = e - d if the originals rounded up, else e;
       both are in [0, self_loops] (requires d° >= d). *)
    let extra = if round_up then e - d else e in
    for k = d to dp - 1 do
      ports.(k) <- q + (if k - d < extra then 1 else 0)
    done
  in
  {
    Balancer.name = Printf.sprintf "send-round(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props = Balancer.paper_stateless;
    assign;
    persist = None;
  }
