(* Compatibility shim: the open-system loop itself lives in
   lib/workload (Workload.Engine); this module keeps the historical API
   and maps its injection/departure variants onto Workload.Arrival /
   Workload.Lifetime.  The PRNG draw order is identical, so seeded runs
   reproduce the pre-refactor results bit for bit. *)

type injection =
  | Uniform_batch of { rng : Prng.Splitmix.t; per_round : int }
  | Point_batch of { node : int; per_round : int }
  | Max_loaded_batch of { per_round : int }

type departure =
  | No_departure
  | Uniform_work of { rng : Prng.Splitmix.t; per_round : int }

type result = {
  rounds_run : int;
  final_loads : int array;
  series : (int * int) array;
  steady_mean : float;
  steady_p95 : float;
  steady_max : int;
  total_injected : int;
  total_departed : int;
}

let run ?(departure = No_departure) ~graph ~balancer ~injection ~init ~rounds () =
  let n = Graphs.Graph.n graph in
  if Array.length init <> n then invalid_arg "Dynamic.run: init length mismatch";
  if rounds < 0 then invalid_arg "Dynamic.run: negative rounds";
  (match injection with
  | Point_batch { node; _ } when node < 0 || node >= n ->
    invalid_arg "Dynamic.run: injection node out of range"
  | Uniform_batch { per_round; _ } | Point_batch { per_round; _ }
  | Max_loaded_batch { per_round } ->
    if per_round < 0 then invalid_arg "Dynamic.run: negative batch");
  let arrival =
    match injection with
    | Uniform_batch { rng; per_round } -> Workload.Arrival.uniform ~rng ~per_round
    | Point_batch { node; per_round } -> Workload.Arrival.point ~node ~per_round
    | Max_loaded_batch { per_round } -> Workload.Arrival.hotspot ~per_round
  in
  let lifetime =
    match departure with
    | No_departure -> Workload.Lifetime.immortal
    | Uniform_work { rng; per_round } ->
      Workload.Lifetime.uniform_attempts ~rng ~per_round
  in
  let stepper ~round:_ loads =
    let r = Engine.run ~graph ~balancer ~init:loads ~steps:1 () in
    { Workload.Engine.loads = r.Engine.final_loads; injected = 0; lost = 0 }
  in
  let config =
    Workload.Engine.config ~probe_label:"dynamic" ~arrival ~lifetime ~rounds ()
  in
  let w = Workload.Engine.run config ~init stepper in
  (* Historical steady-window convention: the second half of the series,
     with interpolated percentiles (same semantics as Steady). *)
  let series = w.Workload.Engine.discrepancy_series in
  let tail_start = Array.length series / 2 in
  let tail =
    Array.map
      (fun (_, d) -> float_of_int d)
      (Array.sub series tail_start (Array.length series - tail_start))
  in
  let steady_mean, steady_p95, steady_max =
    if Array.length tail = 0 then (0.0, 0.0, 0)
    else begin
      let s = Workload.Steady.summarize tail in
      (s.Workload.Steady.mean, s.Workload.Steady.p95, int_of_float s.Workload.Steady.max)
    end
  in
  {
    rounds_run = w.Workload.Engine.rounds_run;
    final_loads = w.Workload.Engine.final_loads;
    series;
    steady_mean;
    steady_p95;
    steady_max;
    total_injected = w.Workload.Engine.total_arrivals;
    total_departed = w.Workload.Engine.total_departures;
  }
