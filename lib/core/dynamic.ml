type injection =
  | Uniform_batch of { rng : Prng.Splitmix.t; per_round : int }
  | Point_batch of { node : int; per_round : int }
  | Max_loaded_batch of { per_round : int }

type departure =
  | No_departure
  | Uniform_work of { rng : Prng.Splitmix.t; per_round : int }

type result = {
  rounds_run : int;
  final_loads : int array;
  series : (int * int) array;
  steady_mean : float;
  steady_p95 : float;
  steady_max : int;
  total_injected : int;
  total_departed : int;
}

let argmax loads =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > loads.(!best) then best := i) loads;
  !best

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let run ?(departure = No_departure) ~graph ~balancer ~injection ~init ~rounds () =
  let n = Graphs.Graph.n graph in
  if Array.length init <> n then invalid_arg "Dynamic.run: init length mismatch";
  if rounds < 0 then invalid_arg "Dynamic.run: negative rounds";
  (match injection with
  | Point_batch { node; _ } when node < 0 || node >= n ->
    invalid_arg "Dynamic.run: injection node out of range"
  | Uniform_batch { per_round; _ } | Point_batch { per_round; _ }
  | Max_loaded_batch { per_round } ->
    if per_round < 0 then invalid_arg "Dynamic.run: negative batch");
  let loads = ref (Array.copy init) in
  let injected = ref 0 and departed = ref 0 in
  let series = ref [] in
  for round = 1 to rounds do
    (* 1. arrivals *)
    (match injection with
    | Uniform_batch { rng; per_round } ->
      for _ = 1 to per_round do
        let u = Prng.Splitmix.int rng n in
        !loads.(u) <- !loads.(u) + 1
      done;
      injected := !injected + per_round
    | Point_batch { node; per_round } ->
      !loads.(node) <- !loads.(node) + per_round;
      injected := !injected + per_round
    | Max_loaded_batch { per_round } ->
      let u = argmax !loads in
      !loads.(u) <- !loads.(u) + per_round;
      injected := !injected + per_round);
    (* 2. departures *)
    (match departure with
    | No_departure -> ()
    | Uniform_work { rng; per_round } ->
      for _ = 1 to per_round do
        let u = Prng.Splitmix.int rng n in
        if !loads.(u) > 0 then begin
          !loads.(u) <- !loads.(u) - 1;
          incr departed
        end
      done);
    (* 3. one synchronous balancing step (balancer state persists). *)
    let r = Engine.run ~graph ~balancer ~init:!loads ~steps:1 () in
    loads := r.Engine.final_loads;
    series := (round, Loads.discrepancy !loads) :: !series
  done;
  let series = Array.of_list (List.rev !series) in
  let tail_start = Array.length series / 2 in
  let tail =
    Array.map
      (fun (_, d) -> float_of_int d)
      (Array.sub series tail_start (Array.length series - tail_start))
  in
  let steady_mean, steady_p95, steady_max =
    if Array.length tail = 0 then (0.0, 0.0, 0)
    else begin
      let sorted = Array.copy tail in
      Array.sort Float.compare sorted;
      ( Array.fold_left ( +. ) 0.0 tail /. float_of_int (Array.length tail),
        percentile sorted 95.0,
        int_of_float sorted.(Array.length sorted - 1) )
    end
  in
  {
    rounds_run = rounds;
    final_loads = !loads;
    series;
    steady_mean;
    steady_p95;
    steady_max;
    total_injected = !injected;
    total_departed = !departed;
  }
