let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let choice g a =
  if Array.length a = 0 then invalid_arg "Sample.choice: empty array";
  a.(Splitmix.int g (Array.length a))

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Sample.sample_without_replacement";
  (* Partial Fisher–Yates: only the first k slots are materialized. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Splitmix.int g (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let multinomial_tokens g ~tokens ~bins =
  if bins <= 0 then invalid_arg "Sample.multinomial_tokens: bins <= 0";
  if tokens < 0 then invalid_arg "Sample.multinomial_tokens: tokens < 0";
  let occ = Array.make bins 0 in
  for _ = 1 to tokens do
    let b = Splitmix.int g bins in
    occ.(b) <- occ.(b) + 1
  done;
  occ

let geometric_split g ~total ~parts =
  if parts <= 0 then invalid_arg "Sample.geometric_split: parts <= 0";
  if total < 0 then invalid_arg "Sample.geometric_split: total < 0";
  (* Stars and bars: choose parts-1 cut points among total+parts-1 slots. *)
  if parts = 1 then [| total |]
  else begin
    let cuts = sample_without_replacement g (parts - 1) (total + parts - 1) in
    Array.sort Int.compare cuts;
    let out = Array.make parts 0 in
    let prev = ref (-1) in
    for i = 0 to parts - 2 do
      out.(i) <- cuts.(i) - !prev - 1;
      prev := cuts.(i)
    done;
    out.(parts - 1) <- total + parts - 2 - !prev;
    out
  end
