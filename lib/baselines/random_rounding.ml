(* Euclidean floor division (loads can be negative here). *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)

let make rng g ~self_loops =
  if self_loops < 1 then
    invalid_arg "Random_rounding.make: needs a self-loop to hold the residue";
  let d = Graphs.Graph.degree g in
  let dp = d + self_loops in
  let assign ~step:_ ~node:_ ~load ~ports =
    let q = fdiv load dp in
    let e = load - (q * dp) in
    let frac = float_of_int e /. float_of_int dp in
    let sent = ref 0 in
    for k = 0 to d - 1 do
      (* Negative loads would make q negative; clamp sends at 0 so the
         assignment stays legal (the residue absorbs the difference). *)
      let s = max 0 (q + if Prng.Splitmix.bernoulli rng frac then 1 else 0) in
      ports.(k) <- s;
      sent := !sent + s
    done;
    ports.(d) <- load - !sent;
    for k = d + 1 to dp - 1 do
      ports.(k) <- 0
    done
  in
  {
    Core.Balancer.name = Printf.sprintf "random-rounding(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props =
      {
        deterministic = false;
        stateless = true;
        never_negative = false;
        no_communication = true;
      };
    assign;
    persist = None;
  }
