let graph ~n ~d = Graphs.Gen.clique_circulant ~n ~d

let clique_size ~d = d / 2

(* Adversarial slot -> port permutation: clique node i's j-th rule slot
   (j < ℓ) is wired to its edge towards clique member (i+1+j) mod h, so
   the freeze argument's cyclic routing holds; remaining slots take the
   leftover ports in natural order.  Non-clique nodes keep identity. *)
let adversarial_permutation g ~d ~h u =
  if u >= h then Array.init d (fun k -> k)
  else begin
    let ell = h - 1 in
    let port_towards = Hashtbl.create d in
    Graphs.Graph.iter_ports g u (fun k v ->
        if v < h && v <> u && not (Hashtbl.mem port_towards v) then
          Hashtbl.add port_towards v k);
    let perm = Array.make d (-1) in
    let used = Array.make d false in
    for j = 0 to ell - 1 do
      let target = (u + 1 + j) mod h in
      match Hashtbl.find_opt port_towards target with
      | Some k ->
        perm.(j) <- k;
        used.(k) <- true
      | None ->
        invalid_arg "Adversary_stateless: clique nodes are not mutually adjacent"
    done;
    let next = ref ell in
    for k = 0 to d - 1 do
      if not used.(k) then begin
        perm.(!next) <- k;
        incr next
      end
    done;
    perm
  end

let make_general g ~d ~rule =
  let n = Graphs.Graph.n g in
  if Graphs.Graph.degree g <> d then
    invalid_arg "Adversary_stateless.make_general: graph degree mismatch";
  let h = clique_size ~d in
  if h < 2 then invalid_arg "Adversary_stateless.make_general: d too small for a clique";
  let ell = h - 1 in
  (* Sanity-check the rule on the loads the frozen run will feed it. *)
  List.iter
    (fun x ->
      let v = rule x in
      if Array.length v <> d + 1 then
        invalid_arg "Adversary_stateless: rule must return d+1 values";
      if Array.exists (fun p -> p < 0) v then
        invalid_arg "Adversary_stateless: rule must be non-negative";
      if Array.fold_left ( + ) 0 v <> x then
        invalid_arg "Adversary_stateless: rule must conserve load")
    [ 0; ell ];
  let perms = Array.init n (fun u -> adversarial_permutation g ~d ~h u) in
  let assign ~step:_ ~node ~load ~ports =
    if load < 0 then invalid_arg "Adversary_stateless: negative load";
    let v = rule load in
    Array.fill ports 0 (d + 1) 0;
    let perm = perms.(node) in
    for j = 0 to d - 1 do
      ports.(perm.(j)) <- v.(j)
    done;
    ports.(d) <- v.(d)
  in
  let init = Array.init n (fun u -> if u < h then ell else 0) in
  let balancer =
    {
      Core.Balancer.name = "adversary-stateless(general)";
      degree = d;
      self_loops = 1;
      props =
        {
          deterministic = true;
          stateless = true;
          never_negative = true;
          no_communication = true;
        };
      assign;
      persist = None;
    }
  in
  (balancer, init)

(* The concrete instantiation used throughout: unit-send — one token on
   each of the first min(x, d) slots, keep the rest. *)
let unit_send_rule ~d x =
  let v = Array.make (d + 1) 0 in
  let sends = min x d in
  for j = 0 to sends - 1 do
    v.(j) <- 1
  done;
  v.(d) <- x - sends;
  v

let make g ~d =
  let balancer, init = make_general g ~d ~rule:(unit_send_rule ~d) in
  ({ balancer with Core.Balancer.name = "adversary-stateless(unit-send)" }, init)
