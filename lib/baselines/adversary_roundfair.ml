let build ?(root = 0) g =
  let n = Graphs.Graph.n g in
  let d = Graphs.Graph.degree g in
  let b = Graphs.Props.bfs_distances g root in
  Array.iter
    (fun dist ->
      if dist = max_int then
        invalid_arg "Adversary_roundfair: graph must be connected")
    b;
  (* flow.(u * d + k): constant flow node u pushes through port k. *)
  let flow = Array.make (n * d) 0 in
  let init = Array.make n 0 in
  for u = 0 to n - 1 do
    let acc = ref b.(u) in
    Graphs.Graph.iter_ports g u (fun k v ->
        let f = min b.(u) b.(v) in
        flow.((u * d) + k) <- f;
        acc := !acc + f);
    init.(u) <- !acc
  done;
  (flow, init)

let make ?root g =
  let d = Graphs.Graph.degree g in
  let flow, init = build ?root g in
  let assign ~step:_ ~node ~load ~ports =
    let base = node * d in
    let sent = ref 0 in
    for k = 0 to d - 1 do
      ports.(k) <- flow.(base + k);
      sent := !sent + flow.(base + k)
    done;
    (* The keep slot: in steady state this is exactly b(node). *)
    ports.(d) <- load - !sent
  in
  let balancer =
    {
      Core.Balancer.name = "adversary-roundfair";
      degree = d;
      self_loops = 1;
      props =
        {
          deterministic = true;
          stateless = false;
          never_negative = true;
          no_communication = true;
        };
      assign;
      persist = None;
    }
  in
  (balancer, init)

let expected_discrepancy ?root g =
  let _, init = build ?root g in
  Core.Loads.discrepancy init
