(* Negative loads are possible; use Euclidean floor so the "send
   ⌊share + acc⌋" rule stays monotone in the share. *)
let floor_div_frac x =
  let f = floor x in
  (int_of_float f, x -. f)

let make g ~self_loops =
  if self_loops < 1 then
    invalid_arg "Quasirandom.make: needs a self-loop to hold the residue";
  let n = Graphs.Graph.n g in
  let d = Graphs.Graph.degree g in
  let dp = d + self_loops in
  let acc = Array.make (n * d) 0.0 in
  let assign ~step:_ ~node ~load ~ports =
    let share = float_of_int load /. float_of_int dp in
    let base = node * d in
    let sent = ref 0 in
    for k = 0 to d - 1 do
      let send, residue = floor_div_frac (share +. acc.(base + k)) in
      (* A deeply negative load would give a negative send; clamp and
         leave the deficit in the accumulator (the residue absorbs it
         next round). *)
      let send = max send 0 in
      ports.(k) <- send;
      acc.(base + k) <- residue;
      sent := !sent + send
    done;
    ports.(d) <- load - !sent;
    for k = d + 1 to dp - 1 do
      ports.(k) <- 0
    done
  in
  let inspector () = Array.fold_left (fun m a -> max m (abs_float a)) 0.0 acc in
  ( {
      Core.Balancer.name = Printf.sprintf "quasirandom(d°=%d)" self_loops;
      degree = d;
      self_loops;
      props =
        {
          deterministic = true;
          stateless = false;
          never_negative = false;
          no_communication = true;
        };
      assign;
      persist = None;
    },
    inspector )
