let make g ~self_loops ~init =
  if self_loops < 1 then invalid_arg "Mimic.make: needs a self-loop to hold the residue";
  let n = Graphs.Graph.n g in
  let d = Graphs.Graph.degree g in
  if Array.length init <> n then invalid_arg "Mimic.make: init length mismatch";
  let dp = d + self_loops in
  (* Internal continuous trajectory and per-directed-edge cumulative flows. *)
  let xc = ref (Array.map float_of_int init) in
  let xc_next = ref (Array.make n 0.0) in
  let w = Array.make (n * d) 0.0 in
  let f = Array.make (n * d) 0 in
  let last_step = ref 0 in
  let advance_continuous () =
    (* Accumulate this step's continuous flows, then advance the state. *)
    let dpf = float_of_int dp in
    for u = 0 to n - 1 do
      let share = !xc.(u) /. dpf in
      let base = u * d in
      for k = 0 to d - 1 do
        w.(base + k) <- w.(base + k) +. share
      done
    done;
    Continuous.step_into g ~self_loops !xc !xc_next;
    let tmp = !xc in
    xc := !xc_next;
    xc_next := tmp
  in
  let assign ~step ~node ~load ~ports =
    if step <> !last_step then begin
      if step <> !last_step + 1 then
        invalid_arg "Mimic: engine must run steps consecutively from 1";
      advance_continuous ();
      last_step := step
    end;
    let base = node * d in
    let sent = ref 0 in
    for k = 0 to d - 1 do
      (* Keep cumulative discrete flow at the nearest integer of the
         cumulative continuous flow.  W is non-decreasing, so the target
         never drops below the already-sent total. *)
      let target = int_of_float (Float.round w.(base + k)) in
      let s = target - f.(base + k) in
      ports.(k) <- s;
      f.(base + k) <- target;
      sent := !sent + s
    done;
    (* Residue (possibly negative: the node may promise tokens it does
       not hold — the NL ✗ column) sits on the first self-loop. *)
    ports.(d) <- load - !sent;
    for k = d + 1 to dp - 1 do
      ports.(k) <- 0
    done
  in
  {
    Core.Balancer.name = Printf.sprintf "mimic-continuous(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props =
      {
        deterministic = true;
        stateless = false;
        never_negative = false;
        no_communication = false;
      };
    assign;
    persist = None;
  }
