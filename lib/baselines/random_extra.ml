let make rng g ~self_loops =
  if self_loops < 0 then invalid_arg "Random_extra.make: self_loops < 0";
  let d = Graphs.Graph.degree g in
  let dp = d + self_loops in
  let assign ~step:_ ~node:_ ~load ~ports =
    if load < 0 then invalid_arg "Random_extra: negative load";
    let q = load / dp and e = load mod dp in
    Array.fill ports 0 dp q;
    for _ = 1 to e do
      let k = Prng.Splitmix.int rng dp in
      ports.(k) <- ports.(k) + 1
    done
  in
  {
    Core.Balancer.name = Printf.sprintf "random-extra(d°=%d)" self_loops;
    degree = d;
    self_loops;
    props =
      {
        deterministic = false;
        stateless = true;
        never_negative = true;
        no_communication = true;
      };
    assign;
    persist = None;
  }
