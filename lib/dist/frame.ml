(* Length-prefixed CRC-framed messages over a byte stream.

   Wire layout per frame:

     +----------------+----------------+===================+
     | length (BE 32) | CRC-32 (BE 32) | payload bytes ... |
     +----------------+----------------+===================+

   The CRC covers the payload only, so a frame torn by a dying peer or
   flipped in transit is rejected at the framing layer instead of being
   deserialized into garbage (same policy as Shard.Checkpoint's on-disk
   format, reusing its CRC-32). *)

let max_payload = 1 lsl 24 (* 16 MiB: far above any transfer batch *)

type error =
  | Oversized of { claimed : int; limit : int }
  | Bad_crc of { stored : int32; computed : int32 }

let error_message = function
  | Oversized { claimed; limit } ->
    Printf.sprintf "frame claims %d bytes (limit %d) — corrupt or hostile header"
      claimed limit
  | Bad_crc { stored; computed } ->
    Printf.sprintf "frame CRC mismatch: stored %08lx, computed %08lx" stored
      computed

let header_bytes = 8

let encode payload =
  let len = String.length payload in
  if len > max_payload then
    invalid_arg
      (Printf.sprintf "Dist.Frame.encode: payload %d exceeds %d" len max_payload);
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int32_be b 4 (Shard.Crc32.string payload);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int; (* first unconsumed byte *)
  mutable stop : int; (* end of valid data *)
  mutable failed : error option; (* sticky: a framing error kills the stream *)
}

let create () = { buf = Bytes.create 4096; start = 0; stop = 0; failed = None }

let buffered d = d.stop - d.start

let ensure_room d extra =
  let used = buffered d in
  if d.start > 0 && used > 0 then Bytes.blit d.buf d.start d.buf 0 used;
  d.start <- 0;
  d.stop <- used;
  if used + extra > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while used + extra > !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 used;
    d.buf <- bigger
  end

let feed d src pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Dist.Frame.feed: out-of-range slice";
  ensure_room d len;
  Bytes.blit src pos d.buf d.stop len;
  d.stop <- d.stop + len

let next d =
  match d.failed with
  | Some e -> Some (Error e)
  | None ->
    if buffered d < header_bytes then None
    else begin
      let claimed = Int32.to_int (Bytes.get_int32_be d.buf d.start) in
      if claimed < 0 || claimed > max_payload then begin
        let e = Oversized { claimed; limit = max_payload } in
        d.failed <- Some e;
        Some (Error e)
      end
      else if buffered d < header_bytes + claimed then None
      else begin
        let stored = Bytes.get_int32_be d.buf (d.start + 4) in
        let payload =
          Bytes.sub_string d.buf (d.start + header_bytes) claimed
        in
        let computed = Shard.Crc32.string payload in
        if not (Int32.equal stored computed) then begin
          let e = Bad_crc { stored; computed } in
          d.failed <- Some e;
          Some (Error e)
        end
        else begin
          d.start <- d.start + header_bytes + claimed;
          if buffered d = 0 then begin
            d.start <- 0;
            d.stop <- 0
          end;
          Some (Ok payload)
        end
      end
    end
