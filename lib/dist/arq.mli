(** Real-time ARQ for the lossy data plane.

    The round-based transport in {!Net.Protocol} proves the scheme; this
    module re-implements its sender/receiver halves clocked by wall time
    so the distributed runtime can run it over real sockets.  Backoff is
    shared with the simulator: a message already resent [retries] times
    waits [tick * Net.Protocol.retx_delay config ~retries] seconds.

    One sender and one receiver per directed shard pair and per epoch —
    membership changes discard the instances wholesale, never reusing
    sequence numbers across epochs. *)

type 'a sender

val sender : config:Net.Protocol.config -> tick:float -> 'a sender
(** [tick] converts the protocol's round-denominated delays to seconds.
    @raise Invalid_argument on a non-positive tick or invalid config. *)

val send : 'a sender -> now:float -> 'a -> int
(** Queue a payload; returns its sequence number (0, 1, …).  The first
    transmission happens on the next {!due} sweep. *)

val ack : 'a sender -> upto:int -> unit
(** Cumulative acknowledgement: discard every queued seq [<= upto]. *)

val due : 'a sender -> now:float -> (int * 'a) list
(** Payloads to (re)transmit now, in ascending seq order; reschedules
    each per the backoff before returning it. *)

val next_deadline : 'a sender -> float option
(** Earliest future retransmission time, for the event-loop timeout. *)

val unacked : 'a sender -> int
val retransmissions : 'a sender -> int

type 'a receiver

val receiver : unit -> 'a receiver

val accept : 'a receiver -> seq:int -> 'a -> 'a list
(** Feed an arrival; returns the payloads newly deliverable {e in
    order} (empty for gaps and duplicates). *)

val cumulative_ack : 'a receiver -> int
(** Largest seq below which everything was delivered; [-1] initially.
    Echoed back after every arrival, including duplicates. *)

val duplicates : 'a receiver -> int
