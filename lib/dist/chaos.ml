(* Seeded chaos-schedule fuzzer: scenario generation and shrinking.

   A scenario is a complete, replayable cluster run: experiment specs,
   a loss configuration, partition windows, and a fault schedule over
   the Super supervisor (shard kill -9, graceful SIGTERM, coordinator
   kill -9 — all pinned to committed rounds).  Generation is a pure
   function of (seed, index) via a splitmix64 stream, so a failing
   index reproduces on any machine from the two integers alone.

   When a scenario violates a universal invariant (conservation, band
   re-entry, termination), [minimize] greedily shrinks it: drop one
   fault, drop one partition window, silence the loss shim, halve the
   horizon — accepting any simpler scenario that still fails, until
   none does.  The result prints as a single lb_cluster command line. *)

type scenario = {
  index : int;
  shards : int;
  rounds : int;
  graph : string;
  init : string;
  algo : string;
  seed : int;
  drop : float;
  delay_prob : float;
  delay_max : float;
  faults : Super.fault list;
  partitions : Loss.window list;
}

(* --- splitmix64 (the lint bans stdlib Random in lib/) --- *)

type rng = { mutable s : int64 }

let next_u64 g =
  g.s <- Int64.add g.s 0x9E3779B97F4A7C15L;
  let z = g.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand g n =
  if n <= 0 then invalid_arg "Dist.Chaos.rand: n must be > 0";
  Int64.to_int (Int64.rem (Int64.logand (next_u64 g) Int64.max_int) (Int64.of_int n))

let pick g arr = arr.(rand g (Array.length arr))

(* --- generation --- *)

let graphs = [| "cycle:24"; "hypercube:4"; "torus:5x5"; "complete:12" |]
let inits = [| "point:2048"; "point:4096"; "random:3000"; "bimodal:40,2" |]
let algos = [| "rotor-router"; "send-floor" |]
let drops = [| 0.0; 0.0; 0.05; 0.15 |]
let delays = [| 0.0; 0.0; 0.1 |]

let gen_faults g ~shards ~rounds =
  let count = rand g 4 in
  (* At most one fault per shard and one coordinator kill: stacking
     several signals on one target mostly tests signal races in the
     harness, not the protocol. *)
  let used_shard = Array.make shards false in
  let used_coord = ref false in
  let faults = ref [] in
  for _ = 1 to count do
    let round = 1 + rand g (max 1 (rounds - 2)) in
    match rand g 3 with
    | 0 | 1 ->
      let shard = rand g shards in
      if not used_shard.(shard) then begin
        used_shard.(shard) <- true;
        let f =
          if rand g 3 = 0 then Super.Term_shard { shard; round }
          else Super.Kill_shard { shard; round }
        in
        faults := f :: !faults
      end
    | _ ->
      if not !used_coord then begin
        used_coord := true;
        faults := Super.Kill_coord { round } :: !faults
      end
  done;
  List.rev !faults

let gen_partitions g ~shards =
  if rand g 3 <> 0 then []
  else begin
    let from_s = 0.1 +. (0.1 *. float_of_int (rand g 4)) in
    let until_s = from_s +. 0.15 +. (0.1 *. float_of_int (rand g 3)) in
    [ { Loss.cut = [ rand g shards ]; from_s; until_s } ]
  end

let generate ~seed ~index =
  let g =
    { s = Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
            (Int64.of_int index) }
  in
  (* Burn a few outputs so nearby (seed, index) pairs decorrelate. *)
  let _ = next_u64 g and _ = next_u64 g in
  let shards = 2 + rand g 3 in
  let rounds = 6 + rand g 10 in
  {
    index;
    shards;
    rounds;
    graph = pick g graphs;
    init = pick g inits;
    algo = pick g algos;
    seed = 1 + rand g 1000;
    drop = pick g drops;
    delay_prob = pick g delays;
    delay_max = 0.02;
    faults = gen_faults g ~shards ~rounds;
    partitions = gen_partitions g ~shards;
  }

(* --- shrinking --- *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Strictly simpler variants, most aggressive first.  Every candidate
   keeps (seed, index) so the experiment itself stays fixed. *)
let shrink s =
  let without_faults =
    List.mapi (fun i _ -> { s with faults = drop_nth s.faults i }) s.faults
  in
  let without_partitions =
    List.mapi
      (fun i _ -> { s with partitions = drop_nth s.partitions i })
      s.partitions
  in
  let lossless =
    if s.drop > 0.0 || s.delay_prob > 0.0 then
      [ { s with drop = 0.0; delay_prob = 0.0 } ]
    else []
  in
  let shorter =
    if s.rounds > 4 then begin
      let rounds = max 4 (s.rounds / 2) in
      let fits r = r < rounds in
      [ { s with
          rounds;
          faults =
            List.filter
              (function
                | Super.Kill_shard { round; _ }
                | Super.Term_shard { round; _ }
                | Super.Kill_coord { round } -> fits round)
              s.faults;
        } ]
    end
    else []
  in
  without_faults @ without_partitions @ lossless @ shorter

let rec minimize ~fails s =
  match List.find_opt fails (shrink s) with
  | Some simpler -> minimize ~fails simpler
  | None -> s

(* --- printing --- *)

let fault_flag = function
  | Super.Kill_shard { shard; round } -> Printf.sprintf "--kill %d@%d" shard round
  | Super.Term_shard { shard; round } -> Printf.sprintf "--term %d@%d" shard round
  | Super.Kill_coord { round } -> Printf.sprintf "--kill-coord %d" round

let partition_flag (w : Loss.window) =
  Printf.sprintf "--partition %s@%g-%g"
    (String.concat "," (List.map string_of_int w.Loss.cut))
    w.Loss.from_s w.Loss.until_s

let command_line s =
  let base =
    Printf.sprintf
      "lb_cluster --graph %s --init %s --algo %s --rounds %d --shards %d \
       --seed %d --band auto"
      s.graph s.init s.algo s.rounds s.shards s.seed
  in
  let loss =
    (if s.drop > 0.0 then [ Printf.sprintf "--drop %g" s.drop ] else [])
    @
    if s.delay_prob > 0.0 then
      [ Printf.sprintf "--delay-prob %g --delay-max %g" s.delay_prob s.delay_max ]
    else []
  in
  String.concat " "
    ((base :: loss)
    @ List.map fault_flag s.faults
    @ List.map partition_flag s.partitions)

let describe s =
  Printf.sprintf "#%d %s/%s/%s rounds=%d shards=%d drop=%g delay=%g %s%s"
    s.index s.graph s.init s.algo s.rounds s.shards s.drop s.delay_prob
    (match s.faults with
     | [] -> "no faults"
     | fs -> String.concat ", " (List.map Super.describe_fault fs))
    (match s.partitions with
     | [] -> ""
     | ws ->
       "; "
       ^ String.concat ", "
           (List.map
              (fun (w : Loss.window) ->
                Printf.sprintf "partition [%s] %g-%gs"
                  (String.concat "," (List.map string_of_int w.Loss.cut))
                  w.Loss.from_s w.Loss.until_s)
              ws))
