(** Shared experiment construction for the cluster binaries.

    lb_cluster, lb_node and lb_coord must build {e identical} graph,
    initial vector and balancer from the same textual specs (the
    grammar of {!Harness.Experiment}); the cluster's determinism — and
    its bit-for-bit equality with [lb_sim --dump-loads] — hinges on
    it. *)

type spec = {
  graph : string;  (** e.g. ["cycle:64"], ["torus:8x8"] *)
  init : string;  (** e.g. ["point:4096"], ["random:65536,7"] *)
  algo : string;  (** e.g. ["rotor-router"], ["send-round"] *)
  seed : int;
  self_loops : int option;
}

type built = {
  graph : Graphs.Graph.t;
  init : int array;
  make_balancer : unit -> Core.Balancer.t;
  name : string;
  self_loops : int;
}

val build : spec -> (built, string) result
(** Rejects unparseable specs and non-resumable balancers (the cluster
    needs checkpoint/rollback capability). *)

val theorem_band : built -> int
(** The closed-system discrepancy band ({!Harness.Faultsweep.theorem_band}). *)

val parse_band : built -> string -> (int option, string) result
(** ["auto"] = {!theorem_band}, ["none"] = no check, else an integer. *)
