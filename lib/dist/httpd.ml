(* Minimal single-shot HTTP responder for the live /metrics endpoint.

   One listening socket per process; each accepted client gets one
   response and is closed — exactly the access pattern of a Prometheus
   scrape or a curl in CI.  Served inline from the event loop (the
   response body is built synchronously), so no threads and no shared
   state beyond the metrics registry itself. *)

type t = { fd : Unix.file_descr; port : int; registry : Obs.Metrics.t }

let create ?(port = 0) ~registry () =
  let fd, port = Transport.listen_loopback ~port () in
  { fd; port; registry }

let port t = t.port
let fd t = t.fd

let respond client ~status ~body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\nConnection: close\r\n\r\n"
      status (String.length body)
  in
  let s = head ^ body in
  Transport.write_all client s 0 (String.length s)

(* Serve one pending client.  Call after select reports the listening
   socket readable. *)
let serve_ready t =
  let client = Transport.accept t.fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      (* Read one request chunk; we only need the request line. *)
      let buf = Bytes.create 4096 in
      let n =
        try Unix.read client buf 0 4096
        with Unix.Unix_error _ -> 0
      in
      let req = Bytes.sub_string buf 0 (max n 0) in
      let is_metrics =
        (* GET /metrics (any HTTP version); anything else is a 404. *)
        String.length req >= 12 && String.equal (String.sub req 0 12) "GET /metrics"
      in
      try
        if is_metrics then
          respond client ~status:"200 OK"
            ~body:(Obs.Export.prometheus ~registry:t.registry ())
        else respond client ~status:"404 Not Found" ~body:"not found\n"
      with Unix.Unix_error _ -> () (* client went away; nothing to do *))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
