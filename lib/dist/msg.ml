(* Cluster protocol messages.

   The control plane (Hello/Welcome/Start/Abort/Round_done/Heartbeat/
   Shutdown/Result) rides the reliable coordinator connection directly;
   the data plane (Data/Data_ack) is additionally subjected to the
   seeded loss shim and recovered by the per-pair ARQ, so it carries
   sequence numbers and the epoch that guards against stale frames
   surviving a membership change.

   Encoding is a version byte plus [Marshal] of the (pure, closure-free)
   variant — portable across the cluster's processes, which all run the
   same binary or binaries built by the same compiler. *)

type transfer = { dest : int; tokens : int }

type source_choice = Use_staged | Use_primary | Use_rotated | Use_fresh

type t =
  | Hello of {
      shard : int;
      staged_round : int option; (* round of the staged (pre-commit) checkpoint *)
      primary_round : int option; (* round of the primary checkpoint, if valid *)
      rotated_round : int option; (* round of the .prev checkpoint, if valid *)
    }
  | Welcome of {
      epoch : int;
      round : int; (* first round the member will execute *)
      members : int list;
      use : source_choice; (* which state to restart from *)
    }
  | Start of { epoch : int; round : int; members : int list }
      (* begin [round]; doubles as the commit of [round - 1] *)
  | Abort of { epoch : int; round : int; members : int list }
      (* discard any progress on [round], roll back to the committed
         state and re-run it under the new epoch/membership *)
  | Data of {
      src : int;
      dst : int;
      epoch : int;
      round : int;
      seq : int;
      transfers : transfer list;
      fin : bool; (* last data frame from [src] to [dst] this round *)
    }
  | Data_ack of { src : int; dst : int; epoch : int; ack : int }
      (* cumulative: every seq <= ack received in order *)
  | Round_done of {
      shard : int;
      epoch : int;
      round : int;
      load_sum : int;
      min_load : int; (* over the shard's owned nodes, for the band check *)
      max_load : int;
    }
      (* sent after the round's state is checkpointed durably *)
  | Heartbeat of { shard : int; epoch : int; round : int; load_sum : int }
  | Shutdown of { epoch : int }
      (* final round committed: report results and exit.  Carries the
         epoch so a delayed shutdown from a fenced-off coordinator
         incarnation cannot tear down a healthy successor cluster. *)
  | Result of { shard : int; loads : (int * int) list } (* (node, load) *)

let version = '\002'

let encode (msg : t) =
  let payload = Marshal.to_string msg [] in
  let b = Bytes.create (1 + String.length payload) in
  Bytes.set b 0 version;
  Bytes.blit_string payload 0 b 1 (String.length payload);
  Bytes.unsafe_to_string b

let decode s =
  if String.length s < 1 then Error "empty message"
  else if not (Char.equal s.[0] version) then
    Error
      (Printf.sprintf "unknown protocol version %d (expected %d)"
         (Char.code s.[0]) (Char.code version))
  else
    match (Marshal.from_string s 1 : t) with
    | msg -> Ok msg
    | exception Failure m -> Error ("undecodable message: " ^ m)
    | exception Invalid_argument m -> Error ("undecodable message: " ^ m)

let choice_name = function
  | Use_staged -> "staged"
  | Use_primary -> "primary"
  | Use_rotated -> "rotated"
  | Use_fresh -> "fresh"

let describe = function
  | Hello { shard; staged_round; primary_round; rotated_round } ->
    let r = function None -> "-" | Some k -> string_of_int k in
    Printf.sprintf "hello shard=%d ckpt=%s/%s/%s" shard (r staged_round)
      (r primary_round) (r rotated_round)
  | Welcome { epoch; round; members; use } ->
    Printf.sprintf "welcome e=%d r=%d members=%d use=%s" epoch round
      (List.length members) (choice_name use)
  | Start { epoch; round; members } ->
    Printf.sprintf "start e=%d r=%d members=%d" epoch round (List.length members)
  | Abort { epoch; round; members } ->
    Printf.sprintf "abort e=%d r=%d members=%d" epoch round (List.length members)
  | Data { src; dst; epoch; round; seq; transfers; fin } ->
    Printf.sprintf "data %d->%d e=%d r=%d seq=%d pairs=%d%s" src dst epoch round
      seq (List.length transfers)
      (if fin then " fin" else "")
  | Data_ack { src; dst; epoch; ack } ->
    Printf.sprintf "ack %d->%d e=%d upto=%d" src dst epoch ack
  | Round_done { shard; epoch; round; load_sum; min_load; max_load } ->
    Printf.sprintf "done shard=%d e=%d r=%d sum=%d loads=[%d,%d]" shard epoch
      round load_sum min_load max_load
  | Heartbeat { shard; epoch; round; load_sum } ->
    Printf.sprintf "hb shard=%d e=%d r=%d sum=%d" shard epoch round load_sum
  | Shutdown { epoch } -> Printf.sprintf "shutdown e=%d" epoch
  | Result { shard; loads } ->
    Printf.sprintf "result shard=%d nodes=%d" shard (List.length loads)
