(* The single sanctioned wall-clock read in lib/dist (see bin/lint_allow:
   R1[Unix.gettimeofday] is scoped to this file).  Every time-dependent
   component — heartbeat pacing, ARQ retransmit timers, connect backoff —
   takes `~now` as an argument, so their logic stays pure and replayable
   under test; only the event loops in Node and Coord call [now]. *)

let now () = Unix.gettimeofday ()
