(* The lb_node daemon: one process owning one shard of the graph.

   Life cycle: connect to the coordinator (capped-backoff retries) →
   Hello (reporting which checkpoint rounds are on disk) → Welcome
   (restore the directed state: fresh init or a checkpoint) → rounds.

   Each round r is a local transaction:

   1. run [assign] for every owned node (ascending), accumulating
      local transfers into the staging vector and remote transfers into
      per-destination-shard batches (tokens for dead shards stay at the
      sender — the frozen-node semantics of degraded mode);
   2. ship the batches through the per-pair ARQ; every live peer gets
      at least one frame (the [fin] marker), so receivers can detect
      round completion;
   3. once every peer's fin arrived and all own sends are acked, save
      the {e staged} checkpoint (fsync'd) and send [Round_done] — the
      coordinator's commit can therefore always rely on the state
      being on disk;
   4. [Start (r+1)] commits: staging becomes the committed load vector
      and the {e primary} checkpoint; [Abort] rolls back to the
      committed state (balancer state included) and re-runs r under a
      new epoch; [Shutdown] is the final commit, answered with the
      owned slice of the load vector.

   The data plane (Data / Data_ack) passes the seeded loss shim on the
   way out; control messages do not.  All frames flow over the single
   coordinator connection, which relays them to the destination
   shard.

   The coordinator link is expendable: EOF, a corrupt stream, or a
   send failure tears the session down to Waiting_welcome and
   reconnects (capped cycles), re-reporting the on-disk checkpoints in
   a fresh Hello — this is how a shard survives a coordinator restart
   or a healed partition.  The current epoch survives reconnects, so
   control messages from a fenced-off coordinator incarnation (or
   delayed packets from an old partition) are rejected as stale. *)

type injection =
  | No_injection
  | Misreport_once of int
      (* lie (+1) in the first Round_done for this round; honest after
         the poisoned commit rolls back and the round re-runs *)
  | Misreport_from of int
      (* lie in every Round_done from this round on: the audit can
         never pass, so the coordinator's poison budget must trip *)

type config = {
  shard : int;
  shards : int;
  port : int; (* coordinator listen port on 127.0.0.1 *)
  graph : Graphs.Graph.t;
  init : int array;
  make_balancer : unit -> Core.Balancer.t;
  rounds : int;
  ckpt_dir : string;
  loss : Loss.config;
  protocol : Net.Protocol.config;
  tick : float; (* seconds per protocol round-unit (retransmit clock) *)
  hb_interval : float;
  metrics_port : int option;
  reconnects : int; (* consecutive lost-coordinator cycles tolerated *)
  graceful_term : bool; (* catch SIGTERM; exit 0 at the next barrier *)
  injection : injection; (* conservation-audit fault injection (tests) *)
  verbose : bool;
}

exception Fatal of int * string

exception Reconnect of string
(* the coordinator link failed; tear the session down and re-hello *)

type phase = Waiting_welcome | Running | Await_commit | Idle_done

type peer_state = {
  sender : (int * Msg.transfer list * bool) Arq.sender;
      (* payload: round, transfers, fin *)
  receiver : (Msg.transfer list * bool * int) Arq.receiver;
      (* payload: transfers, fin, round *)
  mutable future : (Msg.transfer list * bool * int) list;
      (* in-order deliveries for a round we have not started yet *)
}

type t = {
  cfg : config;
  mutable conn : Transport.conn;
  part : Shard.Partition.t;
  owned : int array;
  mutable balancer : Core.Balancer.t;
  n : int;
  d : int;
  dp : int;
  ports : int array; (* assign scratch *)
  loads : int array; (* committed loads; authoritative for owned nodes *)
  staged : int array; (* next-loads accumulator for the running round *)
  mutable committed_state : int array option;
  mutable epoch : int;
  mutable round : int;
  mutable members : int list;
  member_of : bool array;
  mutable phase : phase;
  peers : peer_state option array; (* per shard; Some for live peers *)
  fin_from : bool array;
  shim : Loss.t;
  mutable delayed : (float * string) list; (* release time, framed bytes *)
  hb : Heartbeat.pacer;
  httpd : Httpd.t option;
  mutable stop : int option;
  started : float; (* partition windows are relative to this *)
  mutable term : bool; (* SIGTERM seen; leave at the next barrier *)
  mutable lied : bool; (* Misreport_once already fired *)
  mutable reconnects_left : int;
  (* metrics *)
  m_reconnects : Obs.Metrics.counter;
  m_rounds : Obs.Metrics.counter;
  m_aborts : Obs.Metrics.counter;
  m_retx : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  m_hb : Obs.Metrics.counter;
  m_epoch : Obs.Metrics.gauge;
  m_load : Obs.Metrics.gauge;
}

let logf t fmt =
  if t.cfg.verbose then
    Printf.eprintf ("lb_node[%d]: " ^^ fmt ^^ "\n%!") t.cfg.shard
  else Printf.ifprintf stderr fmt

let primary_path cfg = Filename.concat cfg.ckpt_dir (Printf.sprintf "shard%d.ckpt" cfg.shard)
let staged_path cfg = Filename.concat cfg.ckpt_dir (Printf.sprintf "shard%d.staged" cfg.shard)

let checkpoint_round path =
  match Shard.Checkpoint.load ~path with
  | snap -> Some snap.Shard.Checkpoint.step
  | exception Shard.Checkpoint.Checkpoint_error _ -> None
  | exception Sys_error _ -> None

let persist t = t.balancer.Core.Balancer.persist

let save_state t = match persist t with Some p -> Some (p.Core.Balancer.state_save ()) | None -> None

let restore_state t = function
  | None -> ()
  | Some arr -> (
    match persist t with
    | Some p -> p.Core.Balancer.state_restore arr
    | None -> ())

let snapshot t ~step ~loads =
  let mn = ref 0 in
  Array.iter (fun u -> if loads.(u) < !mn then mn := loads.(u)) t.owned;
  {
    Shard.Checkpoint.balancer_name = t.balancer.Core.Balancer.name;
    n = t.n;
    degree = t.d;
    total_steps = t.cfg.rounds;
    step;
    loads;
    balancer_state = save_state t;
    series_rev = [];
    min_load_seen = !mn;
    reached_target = None;
  }

let owned_slice t src =
  let out = Array.make t.n 0 in
  Array.iter (fun u -> out.(u) <- src.(u)) t.owned;
  out

let committed_sum t =
  let s = ref 0 in
  Array.iter (fun u -> s := !s + t.loads.(u)) t.owned;
  !s

(* Every write to the coordinator link goes through here: a dead peer
   surfaces as EPIPE/ECONNRESET (SIGPIPE is ignored by the launchers),
   which means "tear down and reconnect", never "die". *)
let send_ctl t msg =
  try Transport.send t.conn msg
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise (Reconnect "send failed")

(* An open partition window cuts this shard off from the coordinator —
   and, the cluster being a star, from everyone. *)
let muted t ~now =
  Loss.cut t.cfg.loss ~elapsed:(now -. t.started) ~src:t.cfg.shard ~dst:(-1)

(* --- data-plane output through the loss shim --- *)

let emit_data t ~dst msg =
  match Loss.decide t.shim ~src:t.cfg.shard ~dst with
  | Loss.Deliver -> send_ctl t msg
  | Loss.Drop -> Obs.Metrics.inc t.m_dropped 1
  | Loss.Delay dt ->
    let release = Clock.now () +. dt in
    t.delayed <- (release, Frame.encode (Msg.encode msg)) :: t.delayed

let release_delayed t ~now =
  let due, later = List.partition (fun (r, _) -> r <= now) t.delayed in
  t.delayed <- later;
  (* Oldest first: preserves per-link order among same-instant releases. *)
  List.iter
    (fun (_, framed) ->
      try
        Transport.write_all (Transport.fd t.conn) framed 0
          (String.length framed)
      with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise (Reconnect "send failed"))
    (List.rev due)

let flush_arq t ~now =
  List.iter
    (fun p ->
      if p <> t.cfg.shard then
        match t.peers.(p) with
        | None -> ()
        | Some ps ->
          List.iter
            (fun (seq, (round, transfers, fin)) ->
              emit_data t ~dst:p
                (Msg.Data
                   {
                     src = t.cfg.shard;
                     dst = p;
                     epoch = t.epoch;
                     round;
                     seq;
                     transfers;
                     fin;
                   }))
            (Arq.due ps.sender ~now))
    t.members

let reset_peers t =
  Array.fill t.peers 0 t.cfg.shards None;
  Array.fill t.member_of 0 t.cfg.shards false;
  List.iter
    (fun p ->
      t.member_of.(p) <- true;
      if p <> t.cfg.shard then
        t.peers.(p) <-
          Some
            {
              sender = Arq.sender ~config:t.cfg.protocol ~tick:t.cfg.tick;
              receiver = Arq.receiver ();
              future = [];
            })
    t.members;
  t.delayed <- []

(* --- round execution --- *)

let batch_size = 64

let stage_round t =
  t.phase <- Running;
  Array.fill t.staged 0 t.n 0;
  Array.fill t.fin_from 0 t.cfg.shards false;
  let out = Array.make t.cfg.shards [] in
  let self = t.cfg.shard in
  Array.iter
    (fun u ->
      let x = t.loads.(u) in
      t.balancer.Core.Balancer.assign ~step:t.round ~node:u ~load:x
        ~ports:t.ports;
      (match Core.Balancer.validate_assignment t.balancer ~load:x ~ports:t.ports with
       | Ok () -> ()
       | Error m ->
         raise
           (Fatal (4, Printf.sprintf "node %d round %d: %s" u t.round m)));
      let kept = ref 0 in
      for k = 0 to t.d - 1 do
        let tk = t.ports.(k) in
        if tk <> 0 then begin
          let v = Graphs.Graph.neighbor t.cfg.graph u k in
          let ow = t.part.Shard.Partition.owner.(v) in
          if ow = self then t.staged.(v) <- t.staged.(v) + tk
          else if t.member_of.(ow) then out.(ow) <- (v, tk) :: out.(ow)
          else kept := !kept + tk (* dead destination: tokens stay here *)
        end
      done;
      for k = t.d to t.dp - 1 do
        kept := !kept + t.ports.(k)
      done;
      t.staged.(u) <- t.staged.(u) + !kept)
    t.owned;
  let now = Clock.now () in
  List.iter
    (fun p ->
      if p <> self then
        match t.peers.(p) with
        | None -> ()
        | Some ps ->
          let transfers =
            List.rev_map
              (fun (v, tk) -> { Msg.dest = v; tokens = tk })
              out.(p)
          in
          let rec chunks = function
            | [] -> [ ([], true) ]
            | l ->
              let rec take k acc rest =
                match rest with
                | x :: tl when k < batch_size -> take (k + 1) (x :: acc) tl
                | _ -> (List.rev acc, rest)
              in
              let chunk, rest = take 0 [] l in
              if rest = [] then [ (chunk, true) ]
              else (chunk, false) :: chunks rest
          in
          List.iter
            (fun (chunk, fin) ->
              ignore (Arq.send ps.sender ~now (t.round, chunk, fin)))
            (chunks transfers)
    )
    t.members;
  flush_arq t ~now

let round_quiescent t =
  t.phase = Running
  && List.for_all
       (fun p -> p = t.cfg.shard || t.fin_from.(p))
       t.members
  && List.for_all
       (fun p ->
         p = t.cfg.shard
         ||
         match t.peers.(p) with
         | None -> true
         | Some ps -> Arq.unacked ps.sender = 0)
       t.members

let stage_done t =
  let sum = ref 0 and mn = ref max_int and mx = ref min_int in
  Array.iter
    (fun u ->
      let v = t.staged.(u) in
      sum := !sum + v;
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    t.owned;
  let mn = if Array.length t.owned = 0 then 0 else !mn in
  let mx = if Array.length t.owned = 0 then 0 else !mx in
  Shard.Checkpoint.save ~path:(staged_path t.cfg)
    (snapshot t ~step:t.round ~loads:(owned_slice t t.staged));
  (* Fault injection for the quarantine/fuzzer tests: misreport the
     staged sum so the coordinator's conservation audit trips.  The
     durable state stays honest — exactly the shape of a flaky reporter
     or a memory-corrupted counter. *)
  let reported =
    match t.cfg.injection with
    | Misreport_once r when r = t.round && not t.lied ->
      t.lied <- true;
      !sum + 1
    | Misreport_from r when t.round >= r -> !sum + 1
    | No_injection | Misreport_once _ | Misreport_from _ -> !sum
  in
  send_ctl t
    (Msg.Round_done
       {
         shard = t.cfg.shard;
         epoch = t.epoch;
         round = t.round;
         load_sum = reported;
         min_load = mn;
         max_load = mx;
       });
  t.phase <- Await_commit;
  logf t "round %d staged (sum=%d)" t.round reported

let check_complete t = if round_quiescent t then stage_done t

let apply_delivery t ~src (transfers, fin, r) =
  if r = t.round && t.phase = Running then begin
    List.iter
      (fun { Msg.dest; tokens } -> t.staged.(dest) <- t.staged.(dest) + tokens)
      transfers;
    if fin then t.fin_from.(src) <- true
  end
  else begin
    (* The peer already advanced to the next round (it saw the commit
       before we did); hold its traffic until our Start arrives. *)
    match t.peers.(src) with
    | None -> ()
    | Some ps -> ps.future <- ps.future @ [ (transfers, fin, r) ]
  end

let drain_future t =
  List.iter
    (fun p ->
      if p <> t.cfg.shard then
        match t.peers.(p) with
        | None -> ()
        | Some ps ->
          let pending = ps.future in
          ps.future <- [];
          List.iter (fun d -> apply_delivery t ~src:p d) pending)
    t.members

let commit t =
  Array.iter (fun u -> t.loads.(u) <- t.staged.(u)) t.owned;
  t.committed_state <- save_state t;
  Shard.Checkpoint.save ~path:(primary_path t.cfg)
    (snapshot t ~step:t.round ~loads:(owned_slice t t.loads));
  Obs.Metrics.inc t.m_rounds 1;
  Obs.Metrics.set t.m_load (float_of_int (committed_sum t))

let start_round t ~round =
  t.round <- round;
  stage_round t;
  drain_future t;
  check_complete t

(* --- control messages --- *)

let on_welcome t ~epoch ~round ~members ~use =
  if t.phase <> Waiting_welcome then
    (* A live session has no use for a Welcome; if the coordinator
       really wants a re-handshake it closes our connection first and
       we arrive here through the reconnect path. *)
    logf t "ignoring welcome outside the handshake (e=%d r=%d)" epoch round
  else if epoch < t.epoch then
    logf t "fencing stale welcome (e=%d < local %d)" epoch t.epoch
  else begin
  (match use with
   | Msg.Use_fresh ->
     (* A fresh start must also shed any balancer state left from a
        previous session of this same process (reconnect after the
        coordinator lost our round-0 hello). *)
     t.balancer <- t.cfg.make_balancer ();
     Array.blit t.cfg.init 0 t.loads 0 t.n
   | Msg.Use_primary | Msg.Use_staged | Msg.Use_rotated ->
     let path =
       match use with
       | Msg.Use_primary -> primary_path t.cfg
       | Msg.Use_staged -> staged_path t.cfg
       | Msg.Use_rotated -> Shard.Checkpoint.prev_path (primary_path t.cfg)
       | Msg.Use_fresh -> assert false
     in
     let snap =
       match Shard.Checkpoint.load ~path with
       | snap -> snap
       | exception Shard.Checkpoint.Checkpoint_error e ->
         raise
           (Fatal
              ( 3,
                Printf.sprintf "cannot load directed checkpoint %s: %s" path
                  (Shard.Checkpoint.error_message e) ))
     in
     if
       snap.Shard.Checkpoint.n <> t.n
       || snap.Shard.Checkpoint.degree <> t.d
       || not (String.equal snap.Shard.Checkpoint.balancer_name t.balancer.Core.Balancer.name)
     then raise (Fatal (3, "checkpoint does not match this run's spec"));
     Array.blit snap.Shard.Checkpoint.loads 0 t.loads 0 t.n;
     restore_state t snap.Shard.Checkpoint.balancer_state;
     logf t "restored %s (%s)" path (Msg.choice_name use));
  t.committed_state <- save_state t;
  (* Promote the restored state to the primary checkpoint so the next
     recovery is uniform. *)
  Shard.Checkpoint.save ~path:(primary_path t.cfg)
    (snapshot t ~step:(round - 1) ~loads:(owned_slice t t.loads));
  t.epoch <- epoch;
  t.members <- members;
  t.reconnects_left <- t.cfg.reconnects;
  reset_peers t;
  Obs.Metrics.set t.m_epoch (float_of_int epoch);
  Obs.Metrics.set t.m_load (float_of_int (committed_sum t));
  if round <= t.cfg.rounds then start_round t ~round
  else t.phase <- Idle_done
  end

let on_start t ~epoch ~round ~members =
  match t.phase with
  | Await_commit when round = t.round + 1 && epoch >= t.epoch ->
    commit t;
    t.members <- members;
    if epoch <> t.epoch then begin
      t.epoch <- epoch;
      reset_peers t;
      Obs.Metrics.set t.m_epoch (float_of_int epoch)
    end;
    start_round t ~round
  | Waiting_welcome | Running | Await_commit | Idle_done ->
    logf t "ignoring stale start (e=%d r=%d)" epoch round

let on_abort t ~epoch ~round ~members =
  match t.phase with
  | (Running | Await_commit) when epoch > t.epoch ->
    Obs.Metrics.inc t.m_aborts 1;
    restore_state t t.committed_state;
    t.epoch <- epoch;
    t.members <- members;
    reset_peers t;
    Obs.Metrics.set t.m_epoch (float_of_int epoch);
    logf t "abort: re-running round %d under epoch %d" round epoch;
    start_round t ~round
  | Waiting_welcome | Running | Await_commit | Idle_done ->
    logf t "ignoring stale abort (e=%d r=%d)" epoch round

let on_shutdown t ~epoch =
  if epoch < t.epoch then
    (* A fenced-off coordinator incarnation (or a delayed frame from an
       old partition) cannot tear down a cluster that moved on. *)
    logf t "fencing stale shutdown (e=%d < local %d)" epoch t.epoch
  else begin
    if t.phase = Await_commit then commit t;
    let loads = Array.map (fun u -> (u, t.loads.(u))) t.owned in
    send_ctl t
      (Msg.Result { shard = t.cfg.shard; loads = Array.to_list loads });
    t.stop <- Some 0
  end

let handle t msg =
  match msg with
  | Msg.Welcome { epoch; round; members; use } ->
    on_welcome t ~epoch ~round ~members ~use
  | Msg.Start { epoch; round; members } -> on_start t ~epoch ~round ~members
  | Msg.Abort { epoch; round; members } -> on_abort t ~epoch ~round ~members
  | Msg.Shutdown { epoch } -> on_shutdown t ~epoch
  | Msg.Data { src; dst; epoch; round; seq; transfers; fin } ->
    if dst = t.cfg.shard && epoch = t.epoch then (
      match t.peers.(src) with
      | None -> ()
      | Some ps ->
        let delivered = Arq.accept ps.receiver ~seq (transfers, fin, round) in
        emit_data t ~dst:src
          (Msg.Data_ack
             {
               src = t.cfg.shard;
               dst = src;
               epoch = t.epoch;
               ack = Arq.cumulative_ack ps.receiver;
             });
        List.iter (fun d -> apply_delivery t ~src d) delivered;
        check_complete t)
  | Msg.Data_ack { src; dst; epoch; ack } ->
    if dst = t.cfg.shard && epoch = t.epoch then (
      match t.peers.(src) with
      | None -> ()
      | Some ps ->
        Arq.ack ps.sender ~upto:ack;
        check_complete t)
  | Msg.Hello _ | Msg.Round_done _ | Msg.Heartbeat _ | Msg.Result _ ->
    logf t "ignoring unexpected %s" (Msg.describe msg)

(* --- event loop --- *)

let next_deadline t ~now =
  let dl = ref (Heartbeat.next_due t.hb) in
  let keep d = if d < !dl then dl := d in
  List.iter
    (fun p ->
      if p <> t.cfg.shard then
        match t.peers.(p) with
        | None -> ()
        | Some ps -> (
          match Arq.next_deadline ps.sender with
          | Some d -> keep d
          | None -> ()))
    t.members;
  List.iter (fun (r, _) -> keep r) t.delayed;
  Float.max 0.002 (Float.min 0.25 (!dl -. now))

let tickers t =
  let now = Clock.now () in
  if Heartbeat.due t.hb ~now then begin
    Obs.Metrics.inc t.m_hb 1;
    send_ctl t
      (Msg.Heartbeat
         {
           shard = t.cfg.shard;
           epoch = t.epoch;
           round = t.round;
           load_sum = committed_sum t;
         })
  end;
  release_delayed t ~now;
  flush_arq t ~now;
  (* retransmission counter mirrors the sum over live senders *)
  let retx = ref 0 in
  List.iter
    (fun p ->
      if p <> t.cfg.shard then
        match t.peers.(p) with
        | None -> ()
        | Some ps -> retx := !retx + Arq.retransmissions ps.sender)
    t.members;
  Obs.Metrics.set_counter t.m_retx !retx

let validate cfg =
  let fail m = raise (Fatal (2, m)) in
  if cfg.shards < 1 then fail "shards must be >= 1";
  if cfg.shard < 0 || cfg.shard >= cfg.shards then fail "shard id out of range";
  if cfg.rounds < 1 then fail "rounds must be >= 1";
  if cfg.tick <= 0.0 then fail "tick must be > 0";
  if cfg.hb_interval <= 0.0 then fail "heartbeat interval must be > 0";
  if cfg.reconnects < 0 then fail "reconnect budget must be >= 0";
  if Array.length cfg.init <> Graphs.Graph.n cfg.graph then
    fail "init vector does not match the graph";
  (match Loss.validate cfg.loss with Ok () -> () | Error m -> fail m);
  (match Net.Protocol.validate_config cfg.protocol with
   | Ok () -> ()
   | Error m -> fail m)

let connect cfg =
  match
    Transport.connect_loopback ~port:cfg.port ~config:cfg.protocol
      ~tick:cfg.tick ~attempts:8
  with
  | fd -> Transport.of_fd ~peer:"coordinator" fd
  | exception Transport.Connect_failed m -> raise (Reconnect m)

let hello t =
  send_ctl t
    (Msg.Hello
       {
         shard = t.cfg.shard;
         staged_round = checkpoint_round (staged_path t.cfg);
         primary_round = checkpoint_round (primary_path t.cfg);
         rotated_round =
           checkpoint_round (Shard.Checkpoint.prev_path (primary_path t.cfg));
       })

let run cfg =
  validate cfg;
  let balancer = cfg.make_balancer () in
  if not (Core.Balancer.resumable balancer) then
    raise
      (Fatal
         ( 2,
           Printf.sprintf "balancer %s cannot be checkpointed/rolled back"
             balancer.Core.Balancer.name ));
  if balancer.Core.Balancer.degree <> Graphs.Graph.degree cfg.graph then
    raise (Fatal (2, "balancer degree does not match the graph"));
  let part =
    Shard.Partition.make ~strategy:Shard.Partition.Contiguous
      ~shards:cfg.shards cfg.graph
  in
  let conn =
    try connect cfg with Reconnect m -> raise (Fatal (3, "coordinator: " ^ m))
  in
  let n = Graphs.Graph.n cfg.graph in
  let d = Graphs.Graph.degree cfg.graph in
  let registry = Obs.Metrics.default in
  let metric name help = Obs.Metrics.counter ~registry ~help name in
  let t =
    {
      cfg;
      conn;
      part;
      owned = part.Shard.Partition.parts.(cfg.shard);
      balancer;
      n;
      d;
      dp = Core.Balancer.d_plus balancer;
      ports = Array.make (Core.Balancer.d_plus balancer) 0;
      loads = Array.make n 0;
      staged = Array.make n 0;
      committed_state = None;
      epoch = 0;
      round = 0;
      members = [];
      member_of = Array.make cfg.shards false;
      phase = Waiting_welcome;
      peers = Array.make cfg.shards None;
      fin_from = Array.make cfg.shards false;
      shim = Loss.create cfg.loss;
      delayed = [];
      hb = Heartbeat.pacer ~interval:cfg.hb_interval ~now:(Clock.now ());
      httpd =
        (match cfg.metrics_port with
         | None -> None
         | Some p -> Some (Httpd.create ~port:p ~registry ()));
      stop = None;
      started = Clock.now ();
      term = false;
      lied = false;
      reconnects_left = cfg.reconnects;
      m_reconnects =
        metric "lb_node_reconnects_total" "coordinator link reconnects";
      m_rounds = metric "lb_node_rounds_committed_total" "rounds committed";
      m_aborts = metric "lb_node_aborts_total" "rounds aborted and re-run";
      m_retx = metric "lb_node_retransmissions_total" "ARQ retransmissions";
      m_dropped = metric "lb_node_frames_dropped_total" "frames dropped by the loss shim";
      m_hb = metric "lb_node_heartbeats_total" "heartbeats sent";
      m_epoch = Obs.Metrics.gauge ~registry ~help:"current epoch" "lb_node_epoch";
      m_load =
        Obs.Metrics.gauge ~registry ~help:"committed owned token sum"
          "lb_node_load_sum";
    }
  in
  if cfg.graceful_term then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> t.term <- true));
  hello t;
  (* One connected session.  Raises Reconnect when the coordinator link
     fails; returns the exit code once t.stop is set. *)
  let rec session () =
    match t.stop with
    | Some code -> code
    | None ->
      let now = Clock.now () in
      (* Graceful SIGTERM: leave at a round barrier, never mid-round —
         by Await_commit the staged checkpoint is durable, so a
         replacement (or a rejoin) resumes without losing a token. *)
      if t.term && t.phase <> Running then begin
        logf t "SIGTERM: leaving at the round barrier (round %d)" t.round;
        t.stop <- Some 0;
        session ()
      end
      else begin
        let m = muted t ~now in
        if not m then tickers t;
        let now = Clock.now () in
        let timeout = if m then 0.05 else next_deadline t ~now in
        let fds =
          (if m then [] else [ Transport.fd t.conn ])
          @ (match t.httpd with None -> [] | Some h -> [ Httpd.fd h ])
        in
        let readable, _, _ =
          try Unix.select fds [] [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        (match t.httpd with
         | Some h when List.memq (Httpd.fd h) readable -> Httpd.serve_ready h
         | Some _ | None -> ());
        if (not m) && List.memq (Transport.fd t.conn) readable then begin
          match Transport.read_step t.conn with
          | Transport.Msgs msgs -> List.iter (handle t) msgs
          | Transport.Closed ->
            if t.stop = None then raise (Reconnect "connection closed")
          | Transport.Corrupt m ->
            (* A corrupt coordinator stream poisons only this session's
               decoder; a fresh connection resynchronizes from scratch. *)
            raise (Reconnect ("stream corrupt: " ^ m))
        end;
        session ()
      end
  in
  let rec lifecycle () =
    match session () with
    | code -> code
    | exception Reconnect reason ->
      Obs.Metrics.inc t.m_reconnects 1;
      logf t "coordinator link lost (%s); reconnecting" reason;
      Transport.close t.conn;
      t.phase <- Waiting_welcome;
      t.members <- [];
      reset_peers t;
      let rec re () =
        if t.reconnects_left <= 0 then
          raise
            (Fatal
               (3, "coordinator link lost and the reconnect budget is spent"));
        t.reconnects_left <- t.reconnects_left - 1;
        match connect t.cfg with
        | conn -> (
          t.conn <- conn;
          (* Re-report the on-disk checkpoints: the coordinator (same
             incarnation or a WAL-restarted one) re-elects our source. *)
          try hello t
          with Reconnect _ ->
            Transport.close t.conn;
            re ())
        | exception Reconnect _ -> re ()
      in
      re ();
      lifecycle ()
  in
  Fun.protect
    ~finally:(fun () ->
      Transport.close t.conn;
      match t.httpd with Some h -> Httpd.close h | None -> ())
    lifecycle

let main cfg =
  match run cfg with
  | code -> code
  | exception Fatal (code, msg) ->
    Printf.eprintf "lb_node[%d]: %s\n%!" cfg.shard msg;
    code
  | exception Unix.Unix_error (e, fn, _) ->
    Printf.eprintf "lb_node[%d]: %s: %s\n%!" cfg.shard fn (Unix.error_message e);
    3
