(* Membership and round-barrier controller: the coordinator's brain as a
   pure state machine.

   Every socket-level event (Hello received, Round_done received, a
   shard declared dead) is fed in as a call; the controller returns the
   list of actions the imperative shell must perform (send a message,
   audit sums, respawn a process, fail the run).  Nothing here touches
   sockets or clocks, so every membership scenario is unit-testable.

   Rounds are transactions.  Round [r = committed + 1] runs under an
   epoch; [Start {round = r + 1}] doubles as the commit of [r], a death
   mid-round always aborts [r] (a new epoch re-runs it without the dead
   shard, whose nodes freeze: tokens destined to them stay at the
   sender), and [Shutdown] is the final commit.  A shard's death point
   is therefore always a committed round boundary — [frozen_round] —
   and the replacement process restarts from whichever of its reported
   checkpoints carries exactly that round (see [choose_source]):

   - died mid-round [r] with no staged save yet: its last commit-time
     save has round [committed];
   - died after its [Round_done { round = r }] but the cluster aborted
     [r]: frozen at [r - 1] = its primary (commit-time) checkpoint;
   - died after [Round_done { round = r }] and the cluster committed
     [r]: frozen at [r] = its staged (done-time) checkpoint.

   The rotated [.prev] copy is accepted as a further fallback against a
   torn primary. *)

type status =
  | Waiting_hello
  | Alive
  | Dead of { frozen_round : int; frozen_sum : int }
  | Joining of {
      use : Msg.source_choice;
      frozen_round : int;
      frozen_sum : int;
    }

type phase = Boot | Running | Stalled | Finishing

type action =
  | Tell of { shard : int; msg : Msg.t }
  | Committed of { round : int; sums : int array; min_load : int; max_load : int }
  | Respawn of { shard : int }
  | Fail of { code : int; reason : string }
  | Finished

type t = {
  shards : int;
  rounds : int;
  mutable epoch : int;
  mutable committed : int;
  mutable phase : phase;
  status : status array;
  last_sum : int array; (* committed (or frozen) token sum per shard *)
  last_min : int array; (* committed min load over the shard's nodes *)
  last_max : int array;
  done_r : (int * int * int) option array; (* (sum, min, max) for committed+1 *)
}

let create ~shards ~rounds ~init_sums ~init_mins ~init_maxs =
  if shards < 1 then invalid_arg "Dist.Member.create: shards must be >= 1";
  if rounds < 1 then invalid_arg "Dist.Member.create: rounds must be >= 1";
  if
    Array.length init_sums <> shards
    || Array.length init_mins <> shards
    || Array.length init_maxs <> shards
  then invalid_arg "Dist.Member.create: init arrays must have one entry per shard";
  {
    shards;
    rounds;
    epoch = 0;
    committed = 0;
    phase = Boot;
    status = Array.make shards Waiting_hello;
    last_sum = Array.copy init_sums;
    last_min = Array.copy init_mins;
    last_max = Array.copy init_maxs;
    done_r = Array.make shards None;
  }

let epoch t = t.epoch
let committed t = t.committed
let phase t = t.phase

let status t shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Dist.Member.status: shard out of range";
  t.status.(shard)

let alive t =
  let acc = ref [] in
  for s = t.shards - 1 downto 0 do
    match t.status.(s) with Alive -> acc := s :: !acc | _ -> ()
  done;
  !acc

let all_alive t =
  let ok = ref true in
  Array.iter (fun st -> match st with Alive -> () | _ -> ok := false) t.status;
  !ok

let clear_done t = Array.fill t.done_r 0 t.shards None

let choose_source ~frozen_round ~staged ~primary ~rotated =
  let is r o = match o with Some k -> k = r | None -> false in
  if is frozen_round primary then Ok Msg.Use_primary
  else if is frozen_round staged then Ok Msg.Use_staged
  else if is frozen_round rotated then Ok Msg.Use_rotated
  else if frozen_round = 0 && staged = None && primary = None && rotated = None
  then Ok Msg.Use_fresh
  else
    let show = function None -> "-" | Some k -> string_of_int k in
    Error
      (Printf.sprintf
         "no checkpoint carries the frozen round %d (staged=%s primary=%s \
          rotated=%s)"
         frozen_round (show staged) (show primary) (show rotated))

let global_min t =
  let m = ref max_int in
  Array.iter (fun (v : int) -> if v < !m then m := v) t.last_min;
  !m

let global_max t =
  let m = ref min_int in
  Array.iter (fun (v : int) -> if v > !m then m := v) t.last_max;
  !m

(* Start the next round (or shut down) after a commit, a stall
   resolution, or boot completion.  Admits pending joiners first. *)
let advance t =
  let old_members = alive t in
  let joiners = ref [] in
  for s = t.shards - 1 downto 0 do
    match t.status.(s) with
    | Joining { use; _ } -> joiners := (s, use) :: !joiners
    | Waiting_hello | Alive | Dead _ -> ()
  done;
  let joiners = !joiners in
  if joiners <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter (fun (s, _) -> t.status.(s) <- Alive) joiners
  end;
  let members = alive t in
  if members = [] then begin
    t.phase <- Stalled;
    []
  end
  else if t.committed >= t.rounds then begin
    (* Horizon reached.  Joiners still load their frozen state (round
       beyond the horizon tells them to idle), then everyone shuts
       down once the roster is complete. *)
    let welcomes =
      List.map
        (fun (s, use) ->
          Tell
            {
              shard = s;
              msg =
                Msg.Welcome
                  { epoch = t.epoch; round = t.rounds + 1; members; use };
            })
        joiners
    in
    if all_alive t then begin
      t.phase <- Finishing;
      welcomes
      @ List.map (fun s -> Tell { shard = s; msg = Msg.Shutdown }) members
      @ [ Finished ]
    end
    else begin
      t.phase <- Stalled;
      welcomes
    end
  end
  else begin
    clear_done t;
    t.phase <- Running;
    let round = t.committed + 1 in
    List.map
      (fun (s, use) ->
        Tell
          {
            shard = s;
            msg = Msg.Welcome { epoch = t.epoch; round; members; use };
          })
      joiners
    @ List.map
        (fun s ->
          Tell { shard = s; msg = Msg.Start { epoch = t.epoch; round; members } })
        old_members
  end

let boot_complete t =
  let ok = ref true in
  Array.iter
    (fun st -> match st with Joining _ -> () | _ -> ok := false)
    t.status;
  !ok

(* Everyone said hello: emit the round-0 baseline (the watchdog's first
   audit point) and start round 1. *)
let complete_boot t =
  Committed
    {
      round = 0;
      sums = Array.copy t.last_sum;
      min_load = global_min t;
      max_load = global_max t;
    }
  :: advance t

let on_hello t ~shard ~staged_round ~primary_round ~rotated_round =
  if shard < 0 || shard >= t.shards then
    [ Fail { code = 2; reason = Printf.sprintf "hello from unknown shard %d" shard } ]
  else
    match t.status.(shard) with
    | Waiting_hello -> (
      match
        choose_source ~frozen_round:0 ~staged:staged_round ~primary:primary_round
          ~rotated:rotated_round
      with
      | Error reason ->
        [ Fail { code = 3; reason = Printf.sprintf "shard %d: %s" shard reason } ]
      | Ok use ->
        t.status.(shard) <-
          Joining { use; frozen_round = 0; frozen_sum = t.last_sum.(shard) };
        if boot_complete t then complete_boot t else [])
    | Dead { frozen_round; frozen_sum } -> (
      match
        choose_source ~frozen_round ~staged:staged_round ~primary:primary_round
          ~rotated:rotated_round
      with
      | Error reason ->
        [ Fail { code = 3; reason = Printf.sprintf "shard %d: %s" shard reason } ]
      | Ok use -> (
        t.status.(shard) <- Joining { use; frozen_round; frozen_sum };
        match t.phase with
        | Boot -> if boot_complete t then complete_boot t else []
        | Stalled -> advance t
        | Running -> [] (* admitted at the next commit *)
        | Finishing ->
          (* The cluster already shut down; hand the joiner its state
             and its shutdown directly. *)
          t.status.(shard) <- Alive;
          [
            Tell
              {
                shard;
                msg =
                  Msg.Welcome
                    {
                      epoch = t.epoch;
                      round = t.rounds + 1;
                      members = alive t;
                      use;
                    };
              };
            Tell { shard; msg = Msg.Shutdown };
          ]))
    | Alive ->
      [
        Fail
          {
            code = 2;
            reason = Printf.sprintf "duplicate hello from live shard %d" shard;
          };
      ]
    | Joining _ -> []

let on_round_done t ~shard ~epoch ~round ~load_sum ~min_load ~max_load =
  if
    t.phase <> Running || epoch <> t.epoch
    || round <> t.committed + 1
    || shard < 0
    || shard >= t.shards
  then []
  else
    match t.status.(shard) with
    | Alive -> (
      t.done_r.(shard) <- Some (load_sum, min_load, max_load);
      let members = alive t in
      let complete =
        List.for_all (fun s -> t.done_r.(s) <> None) members
      in
      if not complete then []
      else begin
        t.committed <- round;
        List.iter
          (fun s ->
            match t.done_r.(s) with
            | Some (sum, mn, mx) ->
              t.last_sum.(s) <- sum;
              t.last_min.(s) <- mn;
              t.last_max.(s) <- mx
            | None -> ())
          members;
        Committed
          {
            round;
            sums = Array.copy t.last_sum;
            min_load = global_min t;
            max_load = global_max t;
          }
        :: advance t
      end)
    | Waiting_hello | Dead _ | Joining _ -> []

let on_death t ~shard =
  if shard < 0 || shard >= t.shards then []
  else
    match t.status.(shard) with
    | Dead _ -> []
    | Waiting_hello -> [ Respawn { shard } ]
    | Joining { frozen_round; frozen_sum; _ } ->
      t.status.(shard) <- Dead { frozen_round; frozen_sum };
      [ Respawn { shard } ]
    | Alive -> (
      t.status.(shard) <-
        Dead { frozen_round = t.committed; frozen_sum = t.last_sum.(shard) };
      Respawn { shard }
      ::
      (match t.phase with
       | Running ->
         (* Abort the in-flight round: re-run it under a new epoch
            without the dead shard. *)
         t.epoch <- t.epoch + 1;
         clear_done t;
         let members = alive t in
         if members = [] then begin
           t.phase <- Stalled;
           []
         end
         else
           List.map
             (fun s ->
               Tell
                 {
                   shard = s;
                   msg =
                     Msg.Abort
                       { epoch = t.epoch; round = t.committed + 1; members };
                 })
             members
       | Boot | Stalled | Finishing -> []))
