(* Membership and round-barrier controller: the coordinator's brain as a
   pure state machine.

   Every socket-level event (Hello received, Round_done received, a
   shard declared dead) is fed in as a call; the controller returns the
   list of actions the imperative shell must perform (send a message,
   audit sums, respawn a process, fail the run).  Nothing here touches
   sockets or clocks, so every membership scenario is unit-testable.

   Rounds are transactions.  Round [r = committed + 1] runs under an
   epoch; [Start {round = r + 1}] doubles as the commit of [r], a death
   mid-round always aborts [r] (a new epoch re-runs it without the dead
   shard, whose nodes freeze: tokens destined to them stay at the
   sender), and [Shutdown] is the final commit.  A shard's death point
   is therefore always a committed round boundary — [frozen_round] —
   and the replacement process restarts from whichever of its reported
   checkpoints carries exactly that round (see [choose_source]):

   - died mid-round [r] with no staged save yet: its last commit-time
     save has round [committed];
   - died after its [Round_done { round = r }] but the cluster aborted
     [r]: frozen at [r - 1] = its primary (commit-time) checkpoint;
   - died after [Round_done { round = r }] and the cluster committed
     [r]: frozen at [r] = its staged (done-time) checkpoint.

   The rotated [.prev] copy is accepted as a further fallback against a
   torn primary. *)

type status =
  | Waiting_hello
  | Alive
  | Dead of { frozen_round : int; frozen_sum : int }
  | Joining of {
      use : Msg.source_choice;
      frozen_round : int;
      frozen_sum : int;
    }

type phase = Boot | Running | Stalled | Finishing | Recovering

type snapshot = {
  epoch : int;
  committed : int;
  sums : int array;
  mins : int array;
  maxs : int array;
  dead : (int * int * int) list; (* shard, frozen_round, frozen_sum *)
  admitted : (int * int * int) list; (* admitted at the last commit *)
}

type action =
  | Tell of { shard : int; msg : Msg.t }
  | Committed of { round : int; sums : int array; min_load : int; max_load : int }
  | Respawn of { shard : int }
  | Fail of { code : int; reason : string }
  | Finished

type t = {
  shards : int;
  rounds : int;
  mutable epoch : int;
  mutable committed : int;
  mutable phase : phase;
  status : status array;
  last_sum : int array; (* committed (or frozen) token sum per shard *)
  last_min : int array; (* committed min load over the shard's nodes *)
  last_max : int array;
  done_r : (int * int * int) option array; (* (sum, min, max) for committed+1 *)
  (* One-commit rollback window for quarantining a poisoned commit:
     the pre-commit sums/extremes, whether a rollback target exists,
     and the shards admitted by the latest advance (they must revert to
     their pre-admission frozen state, not to the rolled-back round). *)
  prev_sum : int array;
  prev_min : int array;
  prev_max : int array;
  mutable can_poison : bool;
  mutable admitted_last : (int * int * int) list; (* shard, frozen_round, frozen_sum *)
}

let create ~shards ~rounds ~init_sums ~init_mins ~init_maxs =
  if shards < 1 then invalid_arg "Dist.Member.create: shards must be >= 1";
  if rounds < 1 then invalid_arg "Dist.Member.create: rounds must be >= 1";
  if
    Array.length init_sums <> shards
    || Array.length init_mins <> shards
    || Array.length init_maxs <> shards
  then invalid_arg "Dist.Member.create: init arrays must have one entry per shard";
  {
    shards;
    rounds;
    epoch = 0;
    committed = 0;
    phase = Boot;
    status = Array.make shards Waiting_hello;
    last_sum = Array.copy init_sums;
    last_min = Array.copy init_mins;
    last_max = Array.copy init_maxs;
    done_r = Array.make shards None;
    prev_sum = Array.copy init_sums;
    prev_min = Array.copy init_mins;
    prev_max = Array.copy init_maxs;
    can_poison = false;
    admitted_last = [];
  }

let snapshot t =
  let dead = ref [] in
  for s = t.shards - 1 downto 0 do
    match t.status.(s) with
    | Dead { frozen_round; frozen_sum }
    | Joining { frozen_round; frozen_sum; _ } ->
      dead := (s, frozen_round, frozen_sum) :: !dead
    | Waiting_hello | Alive -> ()
  done;
  {
    epoch = t.epoch;
    committed = t.committed;
    sums = Array.copy t.last_sum;
    mins = Array.copy t.last_min;
    maxs = Array.copy t.last_max;
    dead = !dead;
    admitted = t.admitted_last;
  }

(* Rebuild the controller from a WAL snapshot after a coordinator
   restart.  Every shard starts Dead, frozen at the recorded committed
   round (or at its recorded frozen state), and must re-hello; the
   epoch is bumped past the recorded one so anything the previous
   incarnation sent — or anything still in flight from before the
   crash — is fenced off as stale. *)
let recover ~shards ~rounds snap =
  if shards < 1 then invalid_arg "Dist.Member.recover: shards must be >= 1";
  if rounds < 1 then invalid_arg "Dist.Member.recover: rounds must be >= 1";
  if
    Array.length snap.sums <> shards
    || Array.length snap.mins <> shards
    || Array.length snap.maxs <> shards
  then invalid_arg "Dist.Member.recover: snapshot does not match the cluster";
  let t =
    {
      shards;
      rounds;
      epoch = snap.epoch + 1;
      committed = snap.committed;
      phase = Recovering;
      status =
        Array.init shards (fun s ->
            Dead { frozen_round = snap.committed; frozen_sum = snap.sums.(s) });
      last_sum = Array.copy snap.sums;
      last_min = Array.copy snap.mins;
      last_max = Array.copy snap.maxs;
      done_r = Array.make shards None;
      prev_sum = Array.copy snap.sums;
      prev_min = Array.copy snap.mins;
      prev_max = Array.copy snap.maxs;
      can_poison = false;
      admitted_last = [];
    }
  in
  (* A shard admitted at the very commit the crash interrupted is
     recorded alive, but its checkpoints still carry only its old
     frozen round — demand that round back, not the global one. *)
  List.iter
    (fun (s, frozen_round, frozen_sum) ->
      if s >= 0 && s < shards then
        t.status.(s) <- Dead { frozen_round; frozen_sum })
    (snap.admitted @ snap.dead);
  t

let epoch t = t.epoch
let committed t = t.committed
let phase t = t.phase

let status t shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Dist.Member.status: shard out of range";
  t.status.(shard)

let alive t =
  let acc = ref [] in
  for s = t.shards - 1 downto 0 do
    match t.status.(s) with Alive -> acc := s :: !acc | _ -> ()
  done;
  !acc

let all_alive t =
  let ok = ref true in
  Array.iter (fun st -> match st with Alive -> () | _ -> ok := false) t.status;
  !ok

let clear_done t = Array.fill t.done_r 0 t.shards None

let choose_source ~frozen_round ~staged ~primary ~rotated =
  let is r o = match o with Some k -> k = r | None -> false in
  if is frozen_round primary then Ok Msg.Use_primary
  else if is frozen_round staged then Ok Msg.Use_staged
  else if is frozen_round rotated then Ok Msg.Use_rotated
  else if frozen_round = 0 && staged = None && primary = None && rotated = None
  then Ok Msg.Use_fresh
  else
    let show = function None -> "-" | Some k -> string_of_int k in
    Error
      (Printf.sprintf
         "no checkpoint carries the frozen round %d (staged=%s primary=%s \
          rotated=%s)"
         frozen_round (show staged) (show primary) (show rotated))

let global_min t =
  let m = ref max_int in
  Array.iter (fun (v : int) -> if v < !m then m := v) t.last_min;
  !m

let global_max t =
  let m = ref min_int in
  Array.iter (fun (v : int) -> if v > !m then m := v) t.last_max;
  !m

(* Start the next round (or shut down) after a commit, a stall
   resolution, or boot completion.  Admits pending joiners first. *)
let advance t =
  let old_members = alive t in
  let joiners = ref [] in
  for s = t.shards - 1 downto 0 do
    match t.status.(s) with
    | Joining { use; frozen_round; frozen_sum } ->
      joiners := (s, use, frozen_round, frozen_sum) :: !joiners
    | Waiting_hello | Alive | Dead _ -> ()
  done;
  let joiners = !joiners in
  t.admitted_last <-
    List.map (fun (s, _, fr, fs) -> (s, fr, fs)) joiners;
  if joiners <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter (fun (s, _, _, _) -> t.status.(s) <- Alive) joiners
  end;
  let members = alive t in
  if members = [] then begin
    t.phase <- Stalled;
    []
  end
  else if t.committed >= t.rounds then begin
    (* Horizon reached.  Joiners still load their frozen state (round
       beyond the horizon tells them to idle), then everyone shuts
       down once the roster is complete. *)
    let welcomes =
      List.map
        (fun (s, use, _, _) ->
          Tell
            {
              shard = s;
              msg =
                Msg.Welcome
                  { epoch = t.epoch; round = t.rounds + 1; members; use };
            })
        joiners
    in
    if all_alive t then begin
      t.phase <- Finishing;
      welcomes
      @ List.map
          (fun s -> Tell { shard = s; msg = Msg.Shutdown { epoch = t.epoch } })
          members
      @ [ Finished ]
    end
    else begin
      t.phase <- Stalled;
      welcomes
    end
  end
  else begin
    clear_done t;
    t.phase <- Running;
    let round = t.committed + 1 in
    List.map
      (fun (s, use, _, _) ->
        Tell
          {
            shard = s;
            msg = Msg.Welcome { epoch = t.epoch; round; members; use };
          })
      joiners
    @ List.map
        (fun s ->
          Tell { shard = s; msg = Msg.Start { epoch = t.epoch; round; members } })
        old_members
  end

let boot_complete t =
  let ok = ref true in
  Array.iter
    (fun st -> match st with Joining _ -> () | _ -> ok := false)
    t.status;
  !ok

(* Everyone said hello: emit the round-0 baseline (the watchdog's first
   audit point) and start round 1. *)
let complete_boot t =
  Committed
    {
      round = 0;
      sums = Array.copy t.last_sum;
      min_load = global_min t;
      max_load = global_max t;
    }
  :: advance t

(* Every shard re-helloed after a coordinator restart (or a poisoned
   commit): re-emit the frozen round's Committed as a fresh audit
   point, then resume exactly where the log (or the rollback) left
   off.  [can_poison] stays false — if THIS audit fails the durable
   state itself is bad and there is nothing left to roll back to. *)
let complete_recovery t =
  let acts = advance t in
  t.can_poison <- false;
  Committed
    {
      round = t.committed;
      sums = Array.copy t.last_sum;
      min_load = global_min t;
      max_load = global_max t;
    }
  :: acts

let on_death t ~shard =
  if shard < 0 || shard >= t.shards then []
  else
    match t.status.(shard) with
    | Dead _ -> []
    | Waiting_hello -> [ Respawn { shard } ]
    | Joining { frozen_round; frozen_sum; _ } ->
      t.status.(shard) <- Dead { frozen_round; frozen_sum };
      [ Respawn { shard } ]
    | Alive -> (
      (* A shard admitted at the last commit has not committed a round
         of its own yet: freeze it back at its pre-admission round, the
         newest its checkpoints can actually serve. *)
      (match List.find_opt (fun (j, _, _) -> j = shard) t.admitted_last with
      | Some (_, frozen_round, frozen_sum) ->
        t.status.(shard) <- Dead { frozen_round; frozen_sum }
      | None ->
        t.status.(shard) <-
          Dead { frozen_round = t.committed; frozen_sum = t.last_sum.(shard) });
      Respawn { shard }
      ::
      (match t.phase with
       | Running ->
         (* Abort the in-flight round: re-run it under a new epoch
            without the dead shard. *)
         t.epoch <- t.epoch + 1;
         clear_done t;
         let members = alive t in
         if members = [] then begin
           t.phase <- Stalled;
           []
         end
         else
           List.map
             (fun s ->
               Tell
                 {
                   shard = s;
                   msg =
                     Msg.Abort
                       { epoch = t.epoch; round = t.committed + 1; members };
                 })
             members
       | Boot | Stalled | Finishing | Recovering -> []))

let rec on_hello t ~shard ~staged_round ~primary_round ~rotated_round =
  if shard < 0 || shard >= t.shards then
    [ Fail { code = 2; reason = Printf.sprintf "hello from unknown shard %d" shard } ]
  else
    match t.status.(shard) with
    | Waiting_hello -> (
      match
        choose_source ~frozen_round:0 ~staged:staged_round ~primary:primary_round
          ~rotated:rotated_round
      with
      | Error reason ->
        [ Fail { code = 3; reason = Printf.sprintf "shard %d: %s" shard reason } ]
      | Ok use ->
        t.status.(shard) <-
          Joining { use; frozen_round = 0; frozen_sum = t.last_sum.(shard) };
        if boot_complete t then complete_boot t else [])
    | Dead { frozen_round; frozen_sum } -> (
      match
        choose_source ~frozen_round ~staged:staged_round ~primary:primary_round
          ~rotated:rotated_round
      with
      | Error reason ->
        [ Fail { code = 3; reason = Printf.sprintf "shard %d: %s" shard reason } ]
      | Ok use -> (
        t.status.(shard) <- Joining { use; frozen_round; frozen_sum };
        match t.phase with
        | Boot -> if boot_complete t then complete_boot t else []
        | Recovering ->
          (* Recovery is a barrier: every shard must re-hello before
             the frozen round resumes, so the resumed run is the same
             synchronous computation the crash interrupted. *)
          if boot_complete t then complete_recovery t else []
        | Stalled -> advance t
        | Running -> [] (* admitted at the next commit *)
        | Finishing ->
          (* The cluster already shut down; hand the joiner its state
             and its shutdown directly.  No commit will ever refresh
             its checkpoints, so remember the admission: a recovery
             after this point must still demand its frozen round. *)
          t.admitted_last <-
            (shard, frozen_round, frozen_sum)
            :: List.filter (fun (j, _, _) -> j <> shard) t.admitted_last;
          t.status.(shard) <- Alive;
          [
            Tell
              {
                shard;
                msg =
                  Msg.Welcome
                    {
                      epoch = t.epoch;
                      round = t.rounds + 1;
                      members = alive t;
                      use;
                    };
              };
            Tell { shard; msg = Msg.Shutdown { epoch = t.epoch } };
          ]))
    | Alive ->
      (* Not a misconfiguration: a lost Welcome or a reconnect racing
         the admission leaves the shard convinced it never joined.
         Demote it through the death path (suppressing the respawn —
         the shard is alive and talking to us) and replay the hello
         against the frozen state it just re-announced.  Two processes
         claiming one shard id are caught at the relay, which retires
         the older connection. *)
      let demote =
        List.filter
          (function Respawn _ -> false | _ -> true)
          (on_death t ~shard)
      in
      demote @ on_hello t ~shard ~staged_round ~primary_round ~rotated_round
    | Joining _ -> []

let on_round_done t ~shard ~epoch ~round ~load_sum ~min_load ~max_load =
  if
    t.phase <> Running || epoch <> t.epoch
    || round <> t.committed + 1
    || shard < 0
    || shard >= t.shards
  then []
  else
    match t.status.(shard) with
    | Alive -> (
      t.done_r.(shard) <- Some (load_sum, min_load, max_load);
      let members = alive t in
      let complete =
        List.for_all (fun s -> t.done_r.(s) <> None) members
      in
      if not complete then []
      else begin
        (* Keep the pre-commit committed state around: if the audit of
           THIS commit fails, on_poison rolls back to it. *)
        Array.blit t.last_sum 0 t.prev_sum 0 t.shards;
        Array.blit t.last_min 0 t.prev_min 0 t.shards;
        Array.blit t.last_max 0 t.prev_max 0 t.shards;
        t.can_poison <- true;
        t.committed <- round;
        List.iter
          (fun s ->
            match t.done_r.(s) with
            | Some (sum, mn, mx) ->
              t.last_sum.(s) <- sum;
              t.last_min.(s) <- mn;
              t.last_max.(s) <- mx
            | None -> ())
          members;
        Committed
          {
            round;
            sums = Array.copy t.last_sum;
            min_load = global_min t;
            max_load = global_max t;
          }
        :: advance t
      end)
    | Waiting_hello | Dead _ | Joining _ -> []

(* The audit of the just-committed round failed: quarantine the commit
   instead of killing the run.  Roll the controller back one commit,
   freeze every live shard at the rolled-back round (shards admitted by
   that very commit revert to their pre-admission frozen state — their
   Welcome was never sent), fence the epoch, and wait for every shard
   to re-hello; the round then re-runs from CRC-verified checkpoints.
   The shell closes all shard connections so the re-hello happens.
   Unrecoverable (no commit in the rollback window) -> Fail 4. *)
let on_poison t ~reason =
  if not t.can_poison || t.committed < 1 then
    [
      Fail
        {
          code = 4;
          reason =
            Printf.sprintf "%s (no commit to roll back: audit failure is in \
                            the durable state itself)" reason;
        };
    ]
  else begin
    t.committed <- t.committed - 1;
    Array.blit t.prev_sum 0 t.last_sum 0 t.shards;
    Array.blit t.prev_min 0 t.last_min 0 t.shards;
    Array.blit t.prev_max 0 t.last_max 0 t.shards;
    clear_done t;
    t.epoch <- t.epoch + 1;
    for s = 0 to t.shards - 1 do
      match t.status.(s) with
      | Alive -> (
        match List.find_opt (fun (j, _, _) -> j = s) t.admitted_last with
        | Some (_, frozen_round, frozen_sum) ->
          t.status.(s) <- Dead { frozen_round; frozen_sum }
        | None ->
          t.status.(s) <-
            Dead { frozen_round = t.committed; frozen_sum = t.last_sum.(s) })
      | Waiting_hello | Dead _ | Joining _ -> ()
    done;
    t.phase <- Recovering;
    t.can_poison <- false;
    t.admitted_last <- [];
    []
  end
