(** Loopback TCP plumbing for the cluster: framed connections with
    EINTR-safe blocking I/O and connect retries on the shared backoff
    schedule ({!Net.Protocol.retx_delay}).

    The cluster is a star: every node holds one connection to the
    coordinator, which relays data-plane frames between shards.  All
    addresses are 127.0.0.1. *)

type conn

val of_fd : peer:string -> Unix.file_descr -> conn
(** Wrap an already-connected socket ([peer] labels diagnostics). *)

val fd : conn -> Unix.file_descr
val peer_name : conn -> string

val listen_loopback : ?port:int -> ?backlog:int -> unit -> Unix.file_descr * int
(** Bind and listen on 127.0.0.1; port 0 (default) lets the kernel pick.
    Returns the socket and the bound port. *)

val accept : Unix.file_descr -> Unix.file_descr
(** EINTR-safe accept; enables [TCP_NODELAY] on the client. *)

exception Connect_failed of string

val connect_loopback :
  port:int -> config:Net.Protocol.config -> tick:float -> attempts:int ->
  Unix.file_descr
(** Connect with capped exponential backoff between attempts: attempt
    [k] sleeps [tick * retx_delay config ~retries:k] seconds.
    @raise Connect_failed when every attempt is refused. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** [write_all fd s pos len]: blocking, EINTR-safe full write. *)

val send : conn -> Msg.t -> unit
(** Frame and write a message (blocking, EINTR-safe). *)

val send_frame : conn -> string -> unit
(** Frame and write a raw payload (for relaying without re-encoding). *)

type read_result =
  | Msgs of Msg.t list
  | Closed  (** EOF or connection reset *)
  | Corrupt of string  (** framing or decode failure: peer untrusted *)

val read_step : conn -> read_result
(** One readiness-driven read: pull available bytes, return every
    complete message.  Call only after [select] reports the fd
    readable. *)

val close : conn -> unit
(** Idempotent. *)
