(** Cluster protocol messages and their wire encoding.

    Control plane (Hello/Welcome/Start/Abort/Round_done/Heartbeat/
    Shutdown/Result) is delivered reliably over the coordinator link;
    the data plane (Data/Data_ack) additionally passes the seeded loss
    shim and is recovered by the per-pair ARQ, hence its sequence
    numbers and epoch guard. *)

type transfer = { dest : int; tokens : int }

type source_choice = Use_staged | Use_primary | Use_rotated | Use_fresh
(** Which on-disk state a restarting shard must load: the staged
    (pre-commit) checkpoint, the primary (committed) one, its rotated
    [.prev] copy, or the initial load vector.  Only the coordinator
    knows the cluster's committed round, so only it can choose. *)

type t =
  | Hello of {
      shard : int;
      staged_round : int option;
      primary_round : int option;
      rotated_round : int option;
    }
  | Welcome of {
      epoch : int;
      round : int;
      members : int list;
      use : source_choice;
    }
  | Start of { epoch : int; round : int; members : int list }
  | Abort of { epoch : int; round : int; members : int list }
  | Data of {
      src : int;
      dst : int;
      epoch : int;
      round : int;
      seq : int;
      transfers : transfer list;
      fin : bool;
    }
  | Data_ack of { src : int; dst : int; epoch : int; ack : int }
  | Round_done of {
      shard : int;
      epoch : int;
      round : int;
      load_sum : int;
      min_load : int;
      max_load : int;
    }
  | Heartbeat of { shard : int; epoch : int; round : int; load_sum : int }
  | Shutdown of { epoch : int }
      (** final commit; stale-epoch shutdowns are fenced off by shards *)
  | Result of { shard : int; loads : (int * int) list }

val encode : t -> string
(** Version byte + [Marshal] payload (pure data, no closures). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects unknown versions and undecodable
    payloads instead of raising. *)

val choice_name : source_choice -> string

val describe : t -> string
(** One-line summary for logs. *)
