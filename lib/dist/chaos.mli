(** Seeded chaos-schedule fuzzer: scenario generation and shrinking.

    {!generate} is a pure function of [(seed, index)] (splitmix64), so
    a failing scenario reproduces anywhere from the two integers.
    {!minimize} greedily simplifies a failing scenario — drop a fault,
    drop a partition window, silence the loss, halve the horizon —
    while the caller-supplied predicate keeps failing, and
    {!command_line} renders the result as a replayable [lb_cluster]
    invocation.  Execution lives in the [lb_chaos] binary; this module
    is pure. *)

type scenario = {
  index : int;
  shards : int;
  rounds : int;
  graph : string;  (** Harness.Experiment graph spec *)
  init : string;
  algo : string;
  seed : int;
  drop : float;
  delay_prob : float;
  delay_max : float;
  faults : Super.fault list;
  partitions : Loss.window list;
}

val generate : seed:int -> index:int -> scenario
(** Deterministic scenario [index] of stream [seed]: 2–4 shards, 6–15
    rounds, a small graph/init/algo mix, optional loss, 0–3 faults
    (at most one per shard, at most one coordinator kill), and an
    optional partition window. *)

val shrink : scenario -> scenario list
(** Strictly simpler candidate scenarios, most aggressive first. *)

val minimize : fails:(scenario -> bool) -> scenario -> scenario
(** Greedy shrink: repeatedly adopt the first {!shrink} candidate on
    which [fails] still holds.  [fails] typically runs the cluster, so
    expect one run per candidate tried. *)

val command_line : scenario -> string
(** A replayable [lb_cluster] invocation for the scenario. *)

val describe : scenario -> string
(** One-line summary for progress logs. *)
