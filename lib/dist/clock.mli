(** Wall-clock access for the distributed runtime.

    The only module in lib/dist allowed to read real time (scoped lint
    waiver in bin/lint_allow).  Everything downstream takes [~now]
    parameters so heartbeat, ARQ and membership logic stay pure. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)
