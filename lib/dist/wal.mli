(** Coordinator write-ahead log: append-only CRC-framed records of the
    {!Member} controller's durable state.

    Every state-bearing record embeds a full {!Member.snapshot}, so
    replay is a fold to the last snapshot.  The coordinator appends and
    fsyncs {e before} any external effect of the logged transition —
    a crash leaves the log at or ahead of every shard's view, never
    behind — and replay tolerates a torn tail (a partial append from
    the dying write is discarded; nothing downstream can have observed
    it).  See DESIGN.md §14. *)

type record =
  | Boot of {
      time : float;
      shards : int;
      rounds : int;
      expected_total : int;
      snap : Member.snapshot;
    }  (** run parameters + the round-0 state; always the first record *)
  | Commit of { time : float; snap : Member.snapshot }
      (** a round committed (logged before the Start that announces it) *)
  | Epoch of { time : float; reason : string; snap : Member.snapshot }
      (** membership/epoch transition without a commit: death, abort,
          admission, poisoned-commit rollback, restart fencing *)
  | Elect of {
      time : float;
      shard : int;
      round : int;
      use : Msg.source_choice;
    }  (** checkpoint-source election carried by a Welcome *)

(** {1 Writer} *)

type t

val create : path:string -> t
(** Open (or create) the log for appending.  An existing torn tail is
    truncated away first, so records appended by this writer always
    extend the valid prefix.
    @raise Unix.Unix_error when the path is unwritable. *)

val path : t -> string

val append : t -> record -> unit
(** Append one framed record (no implicit sync). *)

val sync : t -> unit
(** [fsync] the log — call after the appends of a transition, before
    any of its external effects. *)

val close : t -> unit

(** {1 Replay} *)

type recovered = {
  shards : int;
  rounds : int;
  expected_total : int;
  snap : Member.snapshot;  (** last logged state *)
  commits : int;  (** Commit records seen *)
  torn_tail : bool;  (** a trailing partial/corrupt frame was discarded *)
}

val replay : path:string -> (recovered option, string) result
(** Fold the log: [Ok None] for a missing or empty file (fresh boot),
    [Ok (Some r)] for a non-empty valid prefix, [Error _] when the file
    is unreadable or does not begin with a Boot record. *)

val read_records : path:string -> (record list * bool, string) result
(** The raw valid prefix plus the torn-tail flag, for supervisors that
    tail the log and for tests. *)

val commit_times : path:string -> (float list, string) result
(** Timestamps of Boot and Commit records, oldest first — the
    recovery-stall metric is the largest inter-commit gap. *)

val committed_round : record -> int option
(** The committed round a record advances to, for WAL tailers. *)
