(* Whole-cluster supervisor: coordinator and shards as children.

   Unlike Launch (which runs the coordinator in the calling process),
   Super forks the coordinator too, so it can be killed -9 mid-round
   like any shard.  The parent binds the loopback listener ONCE and
   never accepts on it: the coordinator child inherits the fd, and
   between coordinator incarnations the kernel backlog simply holds the
   nodes' reconnect attempts until the next incarnation starts
   accepting — no port race, no connection-refused storm.

   The parent drives the fault schedule by tailing the coordinator's
   WAL: a Commit record reaching round r fires every fault scheduled at
   r (SIGKILL/SIGTERM a shard, SIGKILL the coordinator).  The WAL is
   re-read from the start on every poll — it is O(rounds) small, and
   re-reading makes the tail robust to the truncation a restarting
   coordinator applies to a torn tail.

   Respawn policy: a shard that dies by signal or a non-zero exit is
   respawned from its per-shard budget; a shard that exits 0 is only
   respawned when this supervisor terminated it on purpose (a --term
   fault — the exit is graceful but the run is not over).  A
   coordinator killed by signal is respawned from its own budget and
   recovers by WAL replay; a coordinator that EXITS carries the run's
   verdict, and its code becomes the supervisor's. *)

type fault =
  | Kill_shard of { shard : int; round : int }
  | Term_shard of { shard : int; round : int }
  | Kill_coord of { round : int }

let describe_fault = function
  | Kill_shard { shard; round } -> Printf.sprintf "kill -9 shard %d@%d" shard round
  | Term_shard { shard; round } -> Printf.sprintf "SIGTERM shard %d@%d" shard round
  | Kill_coord { round } -> Printf.sprintf "kill -9 coordinator@%d" round

type config = {
  shards : int;
  node_cfg : port:int -> int -> Node.config;
  coord_cfg : listen_fd:Unix.file_descr -> Coord.config;
  wal_path : string; (* must match the coordinator's [wal] *)
  faults : fault list;
  deadline : float option; (* parent-level backstop, seconds *)
  coord_respawns : int;
  node_respawns : int; (* per shard *)
  verbose : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  mutable coord_pid : int; (* -1 when none *)
  node_pids : int array;
  node_budget : int array;
  node_expected : bool array; (* we signalled it: respawn even on exit 0 *)
  mutable coord_budget : int;
  mutable coord_recovering : bool; (* a respawned coordinator is waiting
                                      for the re-hello barrier *)
  fired : bool array; (* per cfg.faults entry *)
  mutable term : bool;
  mutable forwarded : bool;
  started : float;
  mutable code : int option;
}

let logf t fmt =
  if t.cfg.verbose then Printf.eprintf ("lb_super: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let soft_kill signal pid =
  if pid > 0 then try Unix.kill pid signal with Unix.Unix_error _ -> ()

let spawn_node t shard =
  match Unix.fork () with
  | 0 ->
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let code =
      try Node.main (t.cfg.node_cfg ~port:t.port shard)
      with e ->
        Printf.eprintf "lb_node[%d]: uncaught %s\n%!" shard
          (Printexc.to_string e);
        3
    in
    Unix._exit code
  | pid ->
    t.node_pids.(shard) <- pid;
    logf t "shard %d -> pid %d" shard pid

let spawn_coord t =
  match Unix.fork () with
  | 0 ->
    let code =
      try Coord.main (t.cfg.coord_cfg ~listen_fd:t.listen_fd)
      with e ->
        Printf.eprintf "lb_coord: uncaught %s\n%!" (Printexc.to_string e);
        3
    in
    Unix._exit code
  | pid ->
    t.coord_pid <- pid;
    logf t "coordinator -> pid %d" pid

let on_coord_exit t status =
  t.coord_pid <- -1;
  match status with
  | Unix.WEXITED c ->
    (* The coordinator's own verdict ends the run. *)
    logf t "coordinator exited with %d" c;
    t.coord_recovering <- false;
    t.code <- Some c
  | Unix.WSIGNALED s ->
    if t.coord_budget > 0 then begin
      t.coord_budget <- t.coord_budget - 1;
      logf t "coordinator killed by signal %d; restarting (WAL replay)" s;
      t.coord_recovering <- true;
      spawn_coord t;
      (* Recovery is a re-hello barrier over the FULL roster.  A shard
         that already exited cleanly — the kill can land between the
         final commit and the coordinator's own exit, after Shutdown
         was broadcast — would never come back on its own, so the
         barrier would starve.  Restart every missing shard; each
         rejoins from its checkpoints and at worst idles through the
         shutdown sequence again. *)
      Array.iteri
        (fun shard pid ->
          if pid <= 0 && t.node_budget.(shard) > 0 then begin
            t.node_budget.(shard) <- t.node_budget.(shard) - 1;
            logf t "respawning shard %d for coordinator recovery" shard;
            spawn_node t shard
          end)
        t.node_pids
    end
    else begin
      Printf.eprintf
        "lb_super: coordinator killed by signal %d with no respawn budget\n%!"
        s;
      t.code <- Some 3
    end
  | Unix.WSTOPPED _ -> ()

let on_node_exit t shard status =
  t.node_pids.(shard) <- -1;
  let expected = t.node_expected.(shard) in
  t.node_expected.(shard) <- false;
  let wants_respawn =
    match status with
    | Unix.WSIGNALED _ -> true
    | Unix.WEXITED 0 ->
      (* Graceful --term mid-run, or a clean post-Shutdown exit racing
         a coordinator recovery: either way the barrier needs it back. *)
      expected || t.coord_recovering
    | Unix.WEXITED _ -> true
    | Unix.WSTOPPED _ -> false
  in
  if wants_respawn && t.code = None && not t.term then begin
    if t.node_budget.(shard) > 0 then begin
      t.node_budget.(shard) <- t.node_budget.(shard) - 1;
      logf t "respawning shard %d" shard;
      spawn_node t shard
    end
    else
      Printf.eprintf
        "lb_super: shard %d died with no respawn budget; the run will stall\n%!"
        shard
  end

let reap t =
  let continue = ref true in
  while !continue do
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> continue := false
    | pid, status ->
      if pid = t.coord_pid then on_coord_exit t status
      else
        Array.iteri
          (fun s p -> if p = pid then on_node_exit t s status)
          t.node_pids
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Fire every not-yet-fired fault whose round the WAL shows committed.
   The Commit record is fsync'd before the Start that opens the next
   round, so "committed >= r" lands the kill inside round r+1's
   execution — genuinely mid-round. *)
let fire_faults t =
  match Wal.read_records ~path:t.cfg.wal_path with
  | Error _ -> ()
  | Ok (records, _) ->
    let committed =
      List.fold_left
        (fun acc r ->
          match Wal.committed_round r with
          | Some c -> if c > acc then c else acc
          | None -> acc)
        (-1) records
    in
    List.iteri
      (fun i f ->
        if not t.fired.(i) then
          match f with
          | Kill_shard { shard; round } when committed >= round ->
            t.fired.(i) <- true;
            logf t "firing %s" (describe_fault f);
            t.node_expected.(shard) <- true;
            soft_kill Sys.sigkill t.node_pids.(shard)
          | Term_shard { shard; round } when committed >= round ->
            t.fired.(i) <- true;
            logf t "firing %s" (describe_fault f);
            t.node_expected.(shard) <- true;
            soft_kill Sys.sigterm t.node_pids.(shard)
          | Kill_coord { round } when committed >= round ->
            t.fired.(i) <- true;
            logf t "firing %s" (describe_fault f);
            soft_kill Sys.sigkill t.coord_pid
          | Kill_shard _ | Term_shard _ | Kill_coord _ -> ())
      t.cfg.faults

let forward_term t =
  logf t "SIGTERM: forwarding to the cluster";
  soft_kill Sys.sigterm t.coord_pid;
  Array.iter (soft_kill Sys.sigterm) t.node_pids;
  t.forwarded <- true

let shutdown t =
  (* Close the listener first: orphaned nodes fail their reconnects
     fast instead of parking in the backlog forever. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  soft_kill Sys.sigkill t.coord_pid;
  Array.iter (soft_kill Sys.sigterm) t.node_pids;
  let waited = ref 0 in
  reap t;
  while
    (Array.exists (fun p -> p > 0) t.node_pids || t.coord_pid > 0)
    && !waited < 20
  do
    Unix.sleepf 0.05;
    incr waited;
    reap t
  done;
  Array.iteri
    (fun s p ->
      if p > 0 then begin
        soft_kill Sys.sigkill p;
        (try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ());
        t.node_pids.(s) <- -1
      end)
    t.node_pids;
  if t.coord_pid > 0 then begin
    (try ignore (Unix.waitpid [] t.coord_pid) with Unix.Unix_error _ -> ());
    t.coord_pid <- -1
  end

let validate cfg =
  if cfg.shards < 1 then invalid_arg "Dist.Super.run: shards must be >= 1";
  if String.length cfg.wal_path = 0 then
    invalid_arg "Dist.Super.run: wal_path must be non-empty";
  if cfg.coord_respawns < 0 || cfg.node_respawns < 0 then
    invalid_arg "Dist.Super.run: respawn budgets must be >= 0";
  List.iter
    (fun f ->
      match f with
      | Kill_shard { shard; round } | Term_shard { shard; round } ->
        if shard < 0 || shard >= cfg.shards then
          invalid_arg "Dist.Super.run: fault shard out of range";
        if round < 0 then invalid_arg "Dist.Super.run: fault round < 0"
      | Kill_coord { round } ->
        if round < 0 then invalid_arg "Dist.Super.run: fault round < 0")
    cfg.faults

let run cfg =
  validate cfg;
  Launch.ignore_sigpipe ();
  let listen_fd, port = Transport.listen_loopback () in
  let t =
    {
      cfg;
      listen_fd;
      port;
      coord_pid = -1;
      node_pids = Array.make cfg.shards (-1);
      node_budget = Array.make cfg.shards cfg.node_respawns;
      node_expected = Array.make cfg.shards false;
      coord_budget = cfg.coord_respawns;
      coord_recovering = false;
      fired = Array.make (List.length cfg.faults) false;
      term = false;
      forwarded = false;
      started = Clock.now ();
      code = None;
    }
  in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> t.term <- true))
  in
  spawn_coord t;
  for shard = 0 to cfg.shards - 1 do
    spawn_node t shard
  done;
  let rec loop () =
    match t.code with
    | Some code -> code
    | None ->
      if t.term && not t.forwarded then forward_term t;
      (match t.cfg.deadline with
       | Some d when Clock.now () -. t.started > d ->
         Printf.eprintf "lb_super: deadline of %.0f s exceeded\n%!" d;
         t.code <- Some 3
       | Some _ | None -> ());
      if t.code = None then begin
        reap t;
        if t.code = None then begin
          fire_faults t;
          Unix.sleepf 0.02
        end
      end;
      loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown t;
      Sys.set_signal Sys.sigterm prev_term)
    loop
