(* Loopback TCP plumbing: framed connections with EINTR-safe I/O,
   connect retries with the protocol's backoff schedule, and a
   select-based readiness helper.

   All sockets are blocking; writers rely on the kernel buffer being
   ample for this traffic (frames are small and the cluster is
   loopback-only), readers only read after select reports readiness. *)

let chunk = 65536

type conn = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  buf : Bytes.t;
  peer : string; (* for diagnostics *)
}

let of_fd ~peer fd = { fd; decoder = Frame.create (); buf = Bytes.create chunk; peer }

let peer_name c = c.peer
let fd c = c.fd

let listen_loopback ?(port = 0) ?(backlog = 32) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound)

let rec accept fd =
  match Unix.accept fd with
  | client, _addr ->
    Unix.setsockopt client Unix.TCP_NODELAY true;
    client
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd

exception Connect_failed of string

(* Retry refused/absent listeners with the shared backoff schedule:
   attempt [k] sleeps [tick * Net.Protocol.retx_delay config ~retries:k]
   seconds, capped by the config, for at most [attempts] tries. *)
let connect_loopback ~port ~config ~tick ~attempts =
  if attempts < 1 then invalid_arg "Dist.Transport.connect_loopback: attempts";
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let rec go k =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      fd
    | exception Unix.Unix_error (err, _, _) ->
      Unix.close fd;
      if k + 1 >= attempts then
        raise
          (Connect_failed
             (Printf.sprintf "127.0.0.1:%d after %d attempts: %s" port attempts
                (Unix.error_message err)))
      else begin
        Unix.sleepf
          (tick *. float_of_int (Net.Protocol.retx_delay config ~retries:k));
        go (k + 1)
      end
  in
  go 0

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s pos len

let send_frame c payload =
  let framed = Frame.encode payload in
  write_all c.fd framed 0 (String.length framed)

let send c msg = send_frame c (Msg.encode msg)

type read_result =
  | Msgs of Msg.t list
  | Closed  (** EOF or connection reset *)
  | Corrupt of string  (** framing or decode failure: peer untrusted *)

(* One readiness-driven read: pull whatever the kernel has and drain
   every complete frame. *)
let read_step c =
  match Unix.read c.fd c.buf 0 chunk with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Msgs []
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Closed
  | 0 -> Closed
  | n -> (
    Frame.feed c.decoder c.buf 0 n;
    let rec drain acc =
      match Frame.next c.decoder with
      | None -> Ok (List.rev acc)
      | Some (Error e) -> Error (Frame.error_message e)
      | Some (Ok payload) -> (
        match Msg.decode payload with
        | Ok msg -> drain (msg :: acc)
        | Error m -> Error m)
    in
    match drain [] with Ok msgs -> Msgs msgs | Error m -> Corrupt m)

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
