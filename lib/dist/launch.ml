(* Fork-based single-machine supervisor.

   lb_cluster runs the coordinator in the parent process and forks one
   child per shard.  The coordinator's listener is bound BEFORE the
   first fork, so children can connect immediately (the backlog holds
   their Hello until the parent starts accepting) — no boot race.

   Children never [exit]: after Node.main returns (or dies) they leave
   through [Unix._exit], skipping at_exit handlers inherited from the
   parent (buffered channels, temp-file cleanups) that must run exactly
   once, in the parent. *)

type t = {
  shards : int;
  pids : int array; (* current pid per shard; -1 when none *)
  listen_fd : Unix.file_descr;
  node_cfg : int -> Node.config;
  verbose : bool;
}

let ignore_sigpipe () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let create ~listen_fd ~node_cfg ~shards ~verbose =
  if shards < 1 then invalid_arg "Dist.Launch.create: shards must be >= 1";
  { shards; pids = Array.make shards (-1); listen_fd; node_cfg; verbose }

let logf t fmt =
  if t.verbose then Printf.eprintf ("lb_cluster: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let spawn t shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Dist.Launch.spawn: shard out of range";
  match Unix.fork () with
  | 0 ->
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let code =
      try Node.main (t.node_cfg shard)
      with e ->
        Printf.eprintf "lb_node[%d]: uncaught %s\n%!" shard
          (Printexc.to_string e);
        3
    in
    Unix._exit code
  | pid ->
    t.pids.(shard) <- pid;
    logf t "shard %d -> pid %d" shard pid

let spawn_all t =
  for shard = 0 to t.shards - 1 do
    spawn t shard
  done

let pid t shard = t.pids.(shard)

let kill t shard =
  let pid = t.pids.(shard) in
  if pid > 0 then begin
    logf t "kill -9 shard %d (pid %d)" shard pid;
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
  end

(* Non-blocking zombie sweep; call before every respawn and at the end. *)
let reap t =
  let continue = ref true in
  while !continue do
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> continue := false
    | pid, status ->
      (match status with
       | Unix.WEXITED c -> logf t "pid %d exited with %d" pid c
       | Unix.WSIGNALED s -> logf t "pid %d killed by signal %d" pid s
       | Unix.WSTOPPED _ -> ());
      Array.iteri (fun s p -> if p = pid then t.pids.(s) <- -1) t.pids
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* Give surviving children a moment to exit on coordinator EOF, then
   force the stragglers. *)
let shutdown t =
  reap t;
  let waited = ref 0 in
  while Array.exists (fun p -> p > 0) t.pids && !waited < 20 do
    Unix.sleepf 0.05;
    incr waited;
    reap t
  done;
  Array.iteri
    (fun shard p ->
      if p > 0 then begin
        kill t shard;
        (try ignore (Unix.waitpid [] p) with Unix.Unix_error _ -> ());
        t.pids.(shard) <- -1
      end)
    t.pids
