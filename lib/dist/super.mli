(** Whole-cluster supervisor: coordinator and shards as children.

    Unlike {!Launch}, the coordinator itself is forked, so it can be
    SIGKILLed mid-round like any shard and restarted into WAL replay.
    The parent binds the loopback listener once and never accepts on
    it: between coordinator incarnations the kernel backlog holds the
    nodes' reconnects.  The fault schedule is driven by tailing the
    coordinator's WAL — a fault at round [r] fires once the log shows
    round [r] committed, i.e. inside round [r+1]'s execution.  See
    DESIGN.md §14. *)

type fault =
  | Kill_shard of { shard : int; round : int }
      (** SIGKILL the shard once round [round] commits *)
  | Term_shard of { shard : int; round : int }
      (** SIGTERM the shard (graceful: it exits 0 at its barrier and is
          respawned) *)
  | Kill_coord of { round : int }
      (** SIGKILL the coordinator; its replacement replays the WAL *)

val describe_fault : fault -> string

type config = {
  shards : int;
  node_cfg : port:int -> int -> Node.config;
      (** per-shard config, given the bound coordinator port *)
  coord_cfg : listen_fd:Unix.file_descr -> Coord.config;
      (** coordinator config, given the pre-bound listener; its [wal]
          must be [Some wal_path] for the schedule (and coordinator
          respawn) to work *)
  wal_path : string;
  faults : fault list;
  deadline : float option;  (** parent-level backstop, seconds *)
  coord_respawns : int;
      (** coordinator restarts tolerated (signal deaths only — a
          coordinator that exits ends the run with its code) *)
  node_respawns : int;  (** per-shard respawn budget *)
  verbose : bool;
}

val run : config -> int
(** Fork everything, supervise to completion, return the coordinator's
    exit code (or 3 when the coordinator is lost beyond its budget or
    the deadline passes).  Forwards SIGTERM to the whole cluster.
    @raise Invalid_argument on an ill-formed config. *)
