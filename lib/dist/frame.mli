(** Length-prefixed, CRC-checked message framing over a byte stream.

    Each frame is an 8-byte header (payload length and CRC-32, both
    big-endian) followed by the payload.  The decoder accumulates
    arbitrary byte slices (as delivered by [read]) and yields complete
    validated payloads; truncation simply waits for more input, while a
    corrupt header or checksum poisons the stream permanently — a peer
    whose framing broke cannot be trusted to resynchronize. *)

val max_payload : int
(** Largest accepted payload (16 MiB); bigger claims are rejected as
    corruption. *)

type error =
  | Oversized of { claimed : int; limit : int }
      (** header length field exceeds {!max_payload} (or is negative) *)
  | Bad_crc of { stored : int32; computed : int32 }
      (** payload bytes fail the checksum *)

val error_message : error -> string

val encode : string -> string
(** Wrap a payload in a frame.  @raise Invalid_argument beyond
    {!max_payload}. *)

type decoder

val create : unit -> decoder

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d buf pos len] appends a received slice.
    @raise Invalid_argument on an out-of-range slice. *)

val next : decoder -> (string, error) result option
(** Pop the next complete frame: [None] while more bytes are needed,
    [Some (Ok payload)] per decoded frame, [Some (Error e)] once the
    stream is corrupt (sticky — every later call returns the error). *)

val buffered : decoder -> int
(** Bytes accumulated but not yet consumed. *)
