(** The lb_coord coordinator: membership, round barrier, relay, audit.

    The imperative shell around {!Member}: accepts node connections on
    a pre-bound loopback listener, relays data-plane frames between
    shards (star topology), runs heartbeat failure detection, audits
    every committed round's token sums with {!Faults.Watchdog}, and —
    once every shard reports its final loads — checks exact
    conservation and the discrepancy band, optionally writing the
    merged load vector (one integer per line, [cmp]-comparable with
    [lb_sim --dump-loads]).

    With [wal] set, every commit and epoch transition is appended to a
    {!Wal} and fsync'd before any of its external effects, and a
    restart replays the log: the controller resumes the frozen round
    under a fenced epoch once every shard re-helloes.  A corrupt shard
    stream quarantines that shard (exclusion + checkpointed
    re-admission) instead of ending the run; a failed conservation
    audit rolls the poisoned commit back once per round before
    declaring the fault durable.  See DESIGN.md §14. *)

type config = {
  shards : int;
  rounds : int;
  graph : Graphs.Graph.t;
  init : int array;
  balancer_name : string;  (** names the run in watchdog diagnostics *)
  listen_fd : Unix.file_descr;
      (** pre-bound listener ({!Transport.listen_loopback}); binding
          before forking nodes means no connect race at boot *)
  suspect_timeout : float;  (** heartbeat silence before suspicion, s *)
  band : int option;  (** final discrepancy must be [<=] this *)
  out_path : string option;  (** write merged final loads here *)
  metrics_port : int option;
  respawn : (int -> unit) option;
      (** supervisor callback: fork a replacement for the shard *)
  on_commit : (int -> unit) option;
      (** chaos hook, called after every committed round (incl. 0) *)
  deadline : float option;  (** overall wall-clock budget, seconds *)
  wal : string option;
      (** write-ahead log path; replayed (crash recovery) when the file
          is non-empty, appended to either way *)
  graceful_term : bool;
      (** catch SIGTERM and exit 0 — the WAL and the shards'
          checkpoints make any stopping point resumable *)
  verbose : bool;
}

exception Fatal of int * string

val main : config -> int
(** Run to completion; returns the exit code (0 ok, 2 config,
    3 recovery/timeout, 4 invariant: conservation or band). *)
