(** Fork-based single-machine supervisor for lb_cluster.

    The parent binds the coordinator's listener first, forks one child
    per shard (each runs {!Node.main} and leaves via [Unix._exit]),
    then runs {!Coord.main} itself, passing {!spawn} as the respawn
    callback and {!kill} to the chaos schedule. *)

type t

val ignore_sigpipe : unit -> unit
(** Call once in the parent before forking: a dying peer must surface
    as [EPIPE]/[ECONNRESET], not a process-killing signal. *)

val create :
  listen_fd:Unix.file_descr ->
  node_cfg:(int -> Node.config) ->
  shards:int ->
  verbose:bool ->
  t

val spawn : t -> int -> unit
(** Fork a (replacement) process for the shard.  The child closes the
    inherited listener and never returns. *)

val spawn_all : t -> unit

val pid : t -> int -> int
(** Current pid of the shard's process, [-1] if none. *)

val kill : t -> int -> unit
(** SIGKILL the shard's current process (the chaos injector). *)

val reap : t -> unit
(** Non-blocking zombie sweep; forgets reaped pids. *)

val shutdown : t -> unit
(** Wait briefly for children to exit (they see the coordinator's EOF),
    then SIGKILL and reap any stragglers. *)
