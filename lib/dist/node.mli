(** The lb_node daemon: one process owning one shard of the graph.

    Connects to the coordinator, reports its on-disk checkpoints
    (Hello), restores the directed state (Welcome), then executes
    rounds as local transactions: stage the assignment, ship remote
    transfers through the per-pair ARQ (under the seeded loss shim),
    durably save the staged checkpoint, report [Round_done], and
    commit/abort on the coordinator's signal.  See DESIGN.md §13.

    The coordinator link is expendable: EOF, a corrupt stream, or a
    send failure tears the session down and reconnects (up to
    [reconnects] consecutive cycles), re-reporting the on-disk
    checkpoints in a fresh Hello.  Control messages carrying an epoch
    below the local one are rejected (fencing); partition windows in
    the loss config mute the link entirely while open.  See DESIGN.md
    §14 for the failure model. *)

type injection =
  | No_injection
  | Misreport_once of int
      (** misreport the staged sum (+1) in the first [Round_done] for
          this round — the poisoned commit must roll back and re-run *)
  | Misreport_from of int
      (** misreport every round from this one on — the coordinator's
          poison budget must trip (exit 4) *)

type config = {
  shard : int;  (** this process's shard id, [0 .. shards-1] *)
  shards : int;
  port : int;  (** coordinator's listen port on 127.0.0.1 *)
  graph : Graphs.Graph.t;
  init : int array;
  make_balancer : unit -> Core.Balancer.t;
      (** fresh instance per process, as for {!Shard.Shard_engine} *)
  rounds : int;
  ckpt_dir : string;
      (** holds [shardN.ckpt] (committed), its [.prev] rotation, and
          [shardN.staged] (pre-commit) *)
  loss : Loss.config;  (** applied to outgoing data-plane frames *)
  protocol : Net.Protocol.config;  (** ARQ backoff schedule *)
  tick : float;  (** seconds per protocol round-unit *)
  hb_interval : float;
  metrics_port : int option;  (** serve [/metrics] when set (0 = ephemeral) *)
  reconnects : int;
      (** consecutive coordinator-link losses tolerated before exit 3 *)
  graceful_term : bool;
      (** catch SIGTERM and exit 0 at the next round barrier (the
          staged checkpoint is durable by then) instead of dying
          mid-round *)
  injection : injection;  (** audit-fault injection, for tests/fuzzing *)
  verbose : bool;
}

exception Fatal of int * string
(** Internal failure carrying the exit code; {!main} catches it. *)

val main : config -> int
(** Run the daemon to completion; returns the process exit code
    (0 ok, 2 config, 3 recovery/connection, 4 invariant). *)
