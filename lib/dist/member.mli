(** Membership and round-barrier controller — the coordinator's brain
    as a pure state machine.

    Socket-level events are fed in ({!on_hello}, {!on_round_done},
    {!on_death}); each call returns the actions the imperative shell
    must perform.  No I/O, no clock: every crash/rejoin scenario is
    unit-testable.

    Rounds are transactions over the current {e epoch} (membership
    generation): [Start {round = r + 1}] doubles as the commit of [r];
    a death mid-round aborts and re-runs [r] under a new epoch without
    the dead shard (whose nodes freeze — tokens destined to them stay
    at the sender); a restarting shard is re-admitted at the next
    commit, resuming from the checkpoint that carries exactly its
    frozen round; [Shutdown] is the final commit.  See DESIGN.md §13
    for the full state machine. *)

type status =
  | Waiting_hello  (** never connected (initial boot) *)
  | Alive
  | Dead of { frozen_round : int; frozen_sum : int }
      (** excluded from the barrier; its nodes hold [frozen_sum] tokens
          as of committed round [frozen_round] *)
  | Joining of {
      use : Msg.source_choice;
      frozen_round : int;
      frozen_sum : int;
    }  (** replacement said hello; admitted at the next commit *)

type phase =
  | Boot
  | Running
  | Stalled
  | Finishing
  | Recovering
      (** after a coordinator restart or a poisoned commit: every shard
          must re-hello before the frozen round resumes *)

type snapshot = {
  epoch : int;
  committed : int;
  sums : int array;
  mins : int array;
  maxs : int array;
  dead : (int * int * int) list;
      (** (shard, frozen_round, frozen_sum) for excluded shards *)
  admitted : (int * int * int) list;
      (** (shard, frozen_round, frozen_sum) for shards admitted at the
          most recent commit: they are alive, but their checkpoints
          still carry only the frozen round — a recovery must demand
          that round from them, not the global committed round *)
}
(** The controller's durable state, as logged to the WAL at every
    commit and epoch transition.  [O(shards)] small, pure data. *)

type action =
  | Tell of { shard : int; msg : Msg.t }
  | Committed of { round : int; sums : int array; min_load : int; max_load : int }
      (** a round committed: per-shard token sums (frozen shards keep
          their frozen sums) plus the global load extremes — feed the
          conservation watchdog and the band tracker *)
  | Respawn of { shard : int }  (** ask the supervisor to fork a replacement *)
  | Fail of { code : int; reason : string }
      (** unrecoverable: exit with [code] (2 config, 3 recovery) *)
  | Finished  (** [Shutdown] sent to every shard; collect [Result]s *)

type t

val create :
  shards:int ->
  rounds:int ->
  init_sums:int array ->
  init_mins:int array ->
  init_maxs:int array ->
  t
(** Per-shard token sums and load extremes of the initial vector — the
    round-0 committed state.  @raise Invalid_argument on empty
    clusters, a non-positive horizon, or mis-sized arrays. *)

val on_hello :
  t ->
  shard:int ->
  staged_round:int option ->
  primary_round:int option ->
  rotated_round:int option ->
  action list
(** A shard connected and reported which checkpoint rounds it holds.
    The controller matches them against the shard's frozen round to
    direct recovery (the [use] field of the resulting [Welcome]).  A
    hello from a shard believed alive is a lost [Welcome] or a
    reconnect that raced the admission: the shard is demoted through
    the death path (without a respawn) and the hello replayed against
    its frozen state. *)

val on_round_done :
  t ->
  shard:int ->
  epoch:int ->
  round:int ->
  load_sum:int ->
  min_load:int ->
  max_load:int ->
  action list
(** A shard finished (and durably staged) the round.  Stale epochs and
    rounds are ignored.  When the last live member reports, the round
    commits. *)

val on_death : t -> shard:int -> action list
(** A shard was declared dead (connection loss or heartbeat suspicion).
    Idempotent per incarnation. *)

val on_poison : t -> reason:string -> action list
(** The audit of the just-committed round failed (conservation broken).
    Rolls the controller back one commit, freezes every live shard at
    the rolled-back round under a new epoch, and enters [Recovering]
    so the round re-runs from CRC-verified checkpoints once every
    shard re-helloes; the shell must close all shard connections to
    force those re-helloes.  Returns [Fail 4] when there is no commit
    in the rollback window (the durable state itself is bad). *)

val snapshot : t -> snapshot
(** The current durable state, for the WAL. *)

val recover : shards:int -> rounds:int -> snapshot -> t
(** Rebuild the controller from a replayed WAL snapshot: phase
    [Recovering], every shard [Dead] at its recorded frozen state, and
    the epoch bumped past the recorded one so anything the previous
    coordinator incarnation sent is fenced off as stale.
    @raise Invalid_argument when the snapshot does not fit the
    cluster. *)

val choose_source :
  frozen_round:int ->
  staged:int option ->
  primary:int option ->
  rotated:int option ->
  (Msg.source_choice, string) result
(** The recovery-matching rule, exposed for tests: which reported
    checkpoint carries exactly [frozen_round] (primary preferred, then
    staged, then rotated; fresh only for a never-checkpointed round-0
    restart). *)

val epoch : t -> int
val committed : t -> int
val phase : t -> phase
val status : t -> int -> status
val alive : t -> int list
