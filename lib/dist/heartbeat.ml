(* Heartbeat pacing (node side) and fixed-timeout failure detection
   (coordinator side).  Pure state machines over a caller-supplied
   clock; nothing here reads the wall clock (see Clock).

   The monitor keeps an explicit sorted membership list alongside the
   beat table so every traversal is in shard order — deterministic
   output without iterating the hash table. *)

(* Shared sanity gate for the --hb-timeout flag: a timeout that is not
   a positive finite number can never fire sensibly, and one at or
   below twice the beat interval suspects healthy shards on any
   scheduling hiccup (a single missed beat). *)
let validate_timeout ?interval ~timeout () =
  if not (Float.is_finite timeout) || timeout <= 0.0 then
    Error
      (Printf.sprintf "heartbeat timeout must be a positive number (got %g)"
         timeout)
  else
    match interval with
    | Some i when not (Float.is_finite i) || i <= 0.0 ->
      Error
        (Printf.sprintf "heartbeat interval must be a positive number (got %g)"
           i)
    | Some i when timeout <= 2.0 *. i ->
      Error
        (Printf.sprintf
           "heartbeat timeout %g s must exceed twice the beat interval %g s \
            (one missed beat would read as a death)"
           timeout i)
    | Some _ | None -> Ok ()

type pacer = { interval : float; mutable last : float }

let pacer ~interval ~now =
  if interval <= 0.0 then invalid_arg "Dist.Heartbeat.pacer: interval must be > 0";
  { interval; last = now }

let due p ~now =
  if now -. p.last >= p.interval then begin
    p.last <- now;
    true
  end
  else false

let next_due p = p.last +. p.interval

type monitor = {
  timeout : float; (* suspicion threshold, seconds since last beat *)
  beats : (int, float) Hashtbl.t; (* shard -> last beat time *)
  mutable members : int list; (* watched shards, ascending *)
}

let monitor ~timeout =
  if timeout <= 0.0 then invalid_arg "Dist.Heartbeat.monitor: timeout must be > 0";
  { timeout; beats = Hashtbl.create 16; members = [] }

let watch m ~now shard =
  if not (Hashtbl.mem m.beats shard) then
    m.members <- List.sort Int.compare (shard :: m.members);
  Hashtbl.replace m.beats shard now

let beat m ~now shard = if Hashtbl.mem m.beats shard then Hashtbl.replace m.beats shard now

let unwatch m shard =
  Hashtbl.remove m.beats shard;
  m.members <- List.filter (fun s -> s <> shard) m.members

let last_beat m shard =
  match Hashtbl.find_opt m.beats shard with
  | Some t -> t
  | None -> neg_infinity

let suspects m ~now =
  List.filter (fun shard -> now -. last_beat m shard > m.timeout) m.members

let watched m = m.members

let next_deadline m =
  List.fold_left
    (fun acc shard ->
      let d = last_beat m shard +. m.timeout in
      match acc with None -> Some d | Some e -> Some (Float.min d e))
    None m.members
