(* Real-time ARQ: per-directed-pair reliable delivery over the lossy
   data plane.

   Same scheme as Net.Protocol's round-based transport — per-pair
   sequence numbers, cumulative ACKs, retransmission with the protocol's
   backoff schedule — but clocked by wall time instead of rounds: a
   message resent [retries] times waits
   [tick *. float (Net.Protocol.retx_delay config ~retries)] seconds
   before the next attempt.  Senders and receivers are created fresh on
   every epoch change, which is how stale traffic is fenced (frames also
   carry the epoch; see Msg).

   Because acknowledgements are cumulative, the pending window is always
   the contiguous range [lowest_unacked, next_seq): sweeping that range
   in order keeps every traversal deterministic without ever iterating
   the hash table. *)

type 'a pending_item = {
  payload : 'a;
  mutable next_due : float;
  mutable retries : int;
}

type 'a sender = {
  config : Net.Protocol.config;
  tick : float;
  mutable next_seq : int;
  pending : (int, 'a pending_item) Hashtbl.t; (* seq -> unacked *)
  mutable lowest_unacked : int;
  mutable retransmissions : int;
}

let sender ~config ~tick =
  if tick <= 0.0 then invalid_arg "Dist.Arq.sender: tick must be > 0";
  (match Net.Protocol.validate_config config with
   | Ok () -> ()
   | Error m -> invalid_arg ("Dist.Arq.sender: " ^ m));
  {
    config;
    tick;
    next_seq = 0;
    pending = Hashtbl.create 64;
    lowest_unacked = 0;
    retransmissions = 0;
  }

let send t ~now payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* next_due = now: the first transmission happens on the next [due]
     sweep, which callers run immediately after queueing. *)
  Hashtbl.replace t.pending seq { payload; next_due = now; retries = 0 };
  seq

let ack t ~upto =
  (* Cumulative: every seq <= upto is delivered. *)
  while t.lowest_unacked <= upto && t.lowest_unacked < t.next_seq do
    Hashtbl.remove t.pending t.lowest_unacked;
    t.lowest_unacked <- t.lowest_unacked + 1
  done

let due t ~now =
  let out = ref [] in
  for seq = t.next_seq - 1 downto t.lowest_unacked do
    match Hashtbl.find_opt t.pending seq with
    | None -> ()
    | Some item ->
      if item.next_due <= now then begin
        if item.retries > 0 then t.retransmissions <- t.retransmissions + 1;
        let delay =
          t.tick
          *. float_of_int (Net.Protocol.retx_delay t.config ~retries:item.retries)
        in
        item.next_due <- now +. delay;
        item.retries <- item.retries + 1;
        out := (seq, item.payload) :: !out
      end
  done;
  !out

let next_deadline t =
  let acc = ref None in
  for seq = t.lowest_unacked to t.next_seq - 1 do
    match Hashtbl.find_opt t.pending seq with
    | None -> ()
    | Some item -> (
      match !acc with
      | None -> acc := Some item.next_due
      | Some d -> acc := Some (Float.min d item.next_due))
  done;
  !acc

let unacked t = Hashtbl.length t.pending
let retransmissions t = t.retransmissions

type 'a receiver = {
  mutable expected : int;
  stash : (int, 'a) Hashtbl.t; (* out-of-order arrivals *)
  mutable duplicates : int;
}

let receiver () = { expected = 0; stash = Hashtbl.create 16; duplicates = 0 }

let accept t ~seq payload =
  if seq < t.expected then begin
    t.duplicates <- t.duplicates + 1;
    []
  end
  else if seq = t.expected then begin
    let delivered = ref [ payload ] in
    t.expected <- t.expected + 1;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt t.stash t.expected with
      | Some p ->
        Hashtbl.remove t.stash t.expected;
        delivered := p :: !delivered;
        t.expected <- t.expected + 1
      | None -> continue := false
    done;
    List.rev !delivered
  end
  else begin
    if Hashtbl.mem t.stash seq then t.duplicates <- t.duplicates + 1
    else Hashtbl.replace t.stash seq payload;
    []
  end

let cumulative_ack t = t.expected - 1
let duplicates t = t.duplicates
