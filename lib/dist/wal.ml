(* Coordinator write-ahead log.

   An append-only file of CRC-framed records (the same length+CRC-32
   framing as the wire protocol, see Frame) carrying the Member
   controller's durable state.  Every record that matters embeds a full
   Member.snapshot — O(shards) small — so replay is simply "fold to the
   last snapshot": no delta reconstruction, no ambiguity about which
   records compose.

   Durability contract: the coordinator appends and fsyncs BEFORE any
   external effect of the logged transition (sending Start/Welcome,
   firing the chaos hook).  A crash therefore leaves the WAL at or
   ahead of every shard's view, never behind: a shard's primary
   checkpoint can trail the logged committed round (it missed the
   Start), but can never lead it.  Replay tolerates a torn tail — a
   partial append from the dying write is discarded, because nothing
   downstream can have observed it. *)

type record =
  | Boot of {
      time : float;
      shards : int;
      rounds : int;
      expected_total : int;
      snap : Member.snapshot;
    }
  | Commit of { time : float; snap : Member.snapshot }
  | Epoch of { time : float; reason : string; snap : Member.snapshot }
  | Elect of {
      time : float;
      shard : int;
      round : int;
      use : Msg.source_choice;
    }

let record_version = '\001'

let encode_record (r : record) =
  let payload = Marshal.to_string r [] in
  let b = Bytes.create (1 + String.length payload) in
  Bytes.set b 0 record_version;
  Bytes.blit_string payload 0 b 1 (String.length payload);
  Frame.encode (Bytes.unsafe_to_string b)

let decode_record s =
  if String.length s < 1 then Error "empty WAL record"
  else if not (Char.equal s.[0] record_version) then
    Error
      (Printf.sprintf "unknown WAL record version %d (expected %d)"
         (Char.code s.[0])
         (Char.code record_version))
  else
    match (Marshal.from_string s 1 : record) with
    | r -> Ok r
    | exception Failure m -> Error ("undecodable WAL record: " ^ m)

(* --- writer --- *)

type t = { fd : Unix.file_descr; path : string }

(* Byte length of the valid record prefix.  The streaming decoder
   leaves unconsumed bytes buffered when it stops (incomplete tail,
   framing error), and a frame whose payload fails [decode_record] has
   already been consumed — subtract both. *)
let valid_prefix_len ~path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let dec = Frame.create () in
        let buf = Bytes.create 65536 in
        let total = ref 0 in
        let eof = ref false in
        (try
           while not !eof do
             match Unix.read fd buf 0 (Bytes.length buf) with
             | 0 -> eof := true
             | n ->
               total := !total + n;
               Frame.feed dec buf 0 n
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
           done
         with Unix.Unix_error _ -> eof := true);
        let valid = ref 0 in
        let stop = ref false in
        while not !stop do
          match Frame.next dec with
          | None | Some (Error _) -> stop := true
          | Some (Ok payload) -> (
            let frame_len = 8 + String.length payload in
            match decode_record payload with
            | Ok _ -> valid := !valid + frame_len
            | Error _ -> stop := true)
        done;
        Some !valid)

let create ~path =
  (* Drop a torn tail before appending: with O_APPEND, new records
     would otherwise land after garbage that replay cannot cross. *)
  (match valid_prefix_len ~path with
   | Some valid when valid >= 0 -> (
     match Unix.stat path with
     | { Unix.st_size; _ } when st_size > valid ->
       (try Unix.truncate path valid with Unix.Unix_error _ -> ())
     | _ -> ()
     | exception Unix.Unix_error _ -> ())
   | Some _ | None -> ());
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; path }

let path t = t.path

let append t r =
  let framed = encode_record r in
  Transport.write_all t.fd framed 0 (String.length framed)

let sync t = Unix.fsync t.fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- replay --- *)

type recovered = {
  shards : int;
  rounds : int;
  expected_total : int;
  snap : Member.snapshot; (* last logged state *)
  commits : int; (* Commit records seen *)
  torn_tail : bool; (* a trailing partial/corrupt frame was discarded *)
}

let read_records ~path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ([], false)
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot read WAL %s: %s" path (Unix.error_message e))
  | fd -> (
    try
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let dec = Frame.create () in
          let buf = Bytes.create 65536 in
          let eof = ref false in
          while not !eof do
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> eof := true
            | n -> Frame.feed dec buf 0 n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          let records = ref [] in
          let torn = ref false in
          let stop = ref false in
          while not !stop do
            match Frame.next dec with
            | None ->
              (* Bytes may remain: a torn append from a dying writer. *)
              if Frame.buffered dec > 0 then torn := true;
              stop := true
            | Some (Error _) ->
              (* The framing broke mid-file; everything from here on is
                 untrustworthy.  Keep the valid prefix. *)
              torn := true;
              stop := true
            | Some (Ok payload) -> (
              match decode_record payload with
              | Ok r -> records := r :: !records
              | Error _ ->
                torn := true;
                stop := true)
          done;
          Ok (List.rev !records, !torn))
    with Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot read WAL %s: %s" path (Unix.error_message e)))

let replay ~path =
  match read_records ~path with
  | Error _ as e -> e
  | Ok ([], _) -> Ok None
  | Ok (first :: rest, torn_tail) -> (
    match first with
    | Commit _ | Epoch _ | Elect _ ->
      Error
        (Printf.sprintf "WAL %s does not begin with a Boot record" path)
    | Boot { shards; rounds; expected_total; snap; _ } ->
      let state = ref snap in
      let commits = ref 0 in
      List.iter
        (fun r ->
          match r with
          | Boot b -> state := b.snap (* re-boot over an old log *)
          | Commit { snap; _ } ->
            incr commits;
            state := snap
          | Epoch { snap; _ } -> state := snap
          | Elect _ -> ())
        rest;
      Ok
        (Some
           {
             shards;
             rounds;
             expected_total;
             snap = !state;
             commits = !commits;
             torn_tail;
           }))

(* Commit timestamps, oldest first — the recovery-stall metric in the
   dist bench is the largest gap between consecutive commit records
   (the WAL is the one observer that survives coordinator death). *)
let commit_times ~path =
  match read_records ~path with
  | Error _ as e -> e
  | Ok (records, _) ->
    Ok
      (List.filter_map
         (function
           | Commit { time; _ } -> Some time
           | Boot { time; _ } -> Some time
           | Epoch _ | Elect _ -> None)
         records)

(* Committed rounds in log order, for supervisors tailing the WAL. *)
let committed_round = function
  | Boot { snap; _ } | Commit { snap; _ } -> Some snap.Member.committed
  | Epoch _ | Elect _ -> None
