(** Seeded lossy transport shim: drop/delay injection below the ARQ.

    Verdicts come from per-directed-link Splitmix streams keyed on
    (seed, src, dst), so runs are replayable — the k-th transmission on
    a link receives the same verdict in every execution with the same
    seed, regardless of timing.  Applied to data-plane frames only; the
    control plane (membership, heartbeats) stays lossless. *)

type window = {
  cut : int list;  (** the isolated shard group (non-empty) *)
  from_s : float;  (** window opens, seconds after the observer started *)
  until_s : float;  (** window closes *)
}
(** A network partition: for [elapsed] in [[from_s, until_s)] no frame
    crosses between the [cut] group and the rest of the cluster (the
    coordinator is always on the majority side). *)

type config = {
  drop : float;  (** P(frame silently discarded), in [0, 1) *)
  delay_prob : float;  (** P(frame held back), evaluated after drop *)
  delay_max : float;  (** held frames release after U(0, delay_max) seconds *)
  seed : int;
  partitions : window list;
}

val none : config
(** Lossless: every verdict is [Deliver] without consuming randomness. *)

val cut : config -> elapsed:float -> src:int -> dst:int -> bool
(** True when an open partition window separates [src] from [dst]
    (use [-1] for the coordinator).  Deterministic in [elapsed]. *)

val validate : config -> (unit, string) result

type verdict = Deliver | Drop | Delay of float

type t

val create : config -> t

val decide : t -> src:int -> dst:int -> verdict
(** Verdict for the next transmission on the directed link. *)

val dropped : t -> int
val delayed : t -> int
