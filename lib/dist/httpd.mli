(** Live [/metrics] endpoint: a minimal one-shot HTTP responder.

    Each cluster process (coordinator and every node) owns one instance
    and serves its {!Obs.Metrics} registry in Prometheus text format.
    Single-threaded: add {!fd} to the event loop's [select] set and
    call {!serve_ready} when it reports readable; each client gets one
    response and is closed. *)

type t

val create : ?port:int -> registry:Obs.Metrics.t -> unit -> t
(** Listen on 127.0.0.1; port 0 (default) lets the kernel pick. *)

val port : t -> int
val fd : t -> Unix.file_descr

val serve_ready : t -> unit
(** Accept one pending client and answer it: [GET /metrics] gets the
    registry rendering, anything else a 404.  Blocking but bounded —
    one read, one write, close. *)

val close : t -> unit
