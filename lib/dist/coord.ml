(* The lb_coord coordinator: membership, round barrier, relay, audit.

   A thin imperative shell around the pure Member controller: sockets,
   select, heartbeat suspicion, and the relay of data-plane frames
   between shards (the cluster is a star — nodes only connect here).
   Every membership decision comes out of Member as an action list;
   this module executes them and turns the Committed stream into
   watchdog audits, the discrepancy series, and the chaos hook.

   Exit codes: 0 ok, 2 config error, 3 recovery/timeout failure,
   4 invariant violation (conservation or final band). *)

type config = {
  shards : int;
  rounds : int;
  graph : Graphs.Graph.t;
  init : int array;
  balancer_name : string; (* diagnostics: names the run in the watchdog *)
  listen_fd : Unix.file_descr; (* pre-bound loopback listener *)
  suspect_timeout : float;
  band : int option; (* final discrepancy must be <= band *)
  out_path : string option; (* final loads, one integer per line *)
  metrics_port : int option;
  respawn : (int -> unit) option; (* supervisor callback (fork replacement) *)
  on_commit : (int -> unit) option; (* chaos hook, called per committed round *)
  deadline : float option; (* overall wall-clock budget, seconds *)
  verbose : bool;
}

exception Fatal of int * string

type t = {
  cfg : config;
  member : Member.t;
  monitor : Heartbeat.monitor;
  watchdog : Faults.Watchdog.t;
  expected_total : int;
  conns : Transport.conn option array; (* shard-bound connections *)
  mutable pending : Transport.conn list; (* accepted, awaiting Hello *)
  results : (int * int) list option array;
  mutable stop : int option;
  started : float;
  httpd : Httpd.t option;
  m_commits : Obs.Metrics.counter;
  m_deaths : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  m_disc : Obs.Metrics.gauge;
  m_epoch : Obs.Metrics.gauge;
}

let logf t fmt =
  if t.cfg.verbose then Printf.eprintf ("lb_coord: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let drop_conn t shard =
  match t.conns.(shard) with
  | None -> ()
  | Some c ->
    Transport.close c;
    t.conns.(shard) <- None;
    Heartbeat.unwatch t.monitor shard

let rec do_actions t acts = List.iter (do_action t) acts

and do_action t = function
  | Member.Tell { shard; msg } -> (
    match t.conns.(shard) with
    | None -> logf t "shard %d unreachable; dropping %s" shard (Msg.describe msg)
    | Some c -> (
      try Transport.send c msg
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        declare_dead t shard))
  | Member.Committed { round; sums; min_load; max_load } -> (
    Obs.Metrics.inc t.m_commits 1;
    let disc = max_load - min_load in
    Obs.Metrics.set t.m_disc (float_of_int disc);
    Obs.Metrics.set t.m_epoch (float_of_int (Member.epoch t.member));
    logf t "committed round %d (discrepancy %d)" round disc;
    (match Faults.Watchdog.check t.watchdog ~step:round ~loads:sums with
     | () -> ()
     | exception Faults.Watchdog.Invariant_violation d ->
       Printf.eprintf "lb_coord: %s\n%!" (Faults.Watchdog.to_string d);
       t.stop <- Some 4);
    match t.cfg.on_commit with Some f -> f round | None -> ())
  | Member.Respawn { shard } -> (
    Obs.Metrics.inc t.m_respawns 1;
    match t.cfg.respawn with
    | Some f -> f shard
    | None -> logf t "shard %d dead; waiting for an external restart" shard)
  | Member.Fail { code; reason } ->
    Printf.eprintf "lb_coord: %s\n%!" reason;
    t.stop <- Some code
  | Member.Finished -> logf t "all rounds committed; collecting results"

and declare_dead t shard =
  Obs.Metrics.inc t.m_deaths 1;
  logf t "shard %d declared dead" shard;
  drop_conn t shard;
  do_actions t (Member.on_death t.member ~shard)

let finalize t =
  let n = Graphs.Graph.n t.cfg.graph in
  let merged = Array.make n 0 in
  let seen = Array.make n false in
  let fail code m = raise (Fatal (code, m)) in
  Array.iteri
    (fun shard result ->
      match result with
      | None -> fail 3 (Printf.sprintf "no result from shard %d" shard)
      | Some pairs ->
        List.iter
          (fun (u, load) ->
            if u < 0 || u >= n then
              fail 4 (Printf.sprintf "result names node %d outside the graph" u);
            if seen.(u) then fail 4 (Printf.sprintf "node %d reported twice" u);
            seen.(u) <- true;
            merged.(u) <- load)
          pairs)
    t.results;
  Array.iteri
    (fun u s -> if not s then fail 4 (Printf.sprintf "node %d unreported" u))
    seen;
  let total = Array.fold_left ( + ) 0 merged in
  if total <> t.expected_total then
    fail 4
      (Printf.sprintf "final tokens %d, expected %d: conservation broken" total
         t.expected_total);
  let mn = ref merged.(0) and mx = ref merged.(0) in
  Array.iter
    (fun (v : int) ->
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    merged;
  let disc = !mx - !mn in
  (match t.cfg.band with
   | Some band when disc > band ->
     fail 4
       (Printf.sprintf "final discrepancy %d outside the band %d" disc band)
   | Some _ | None -> ());
  (match t.cfg.out_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Array.iter (fun v -> Printf.fprintf oc "%d\n" v) merged;
     close_out oc);
  logf t "final discrepancy %d, %d tokens conserved" disc total;
  t.stop <- Some 0

let on_result t ~shard loads =
  if shard >= 0 && shard < t.cfg.shards then begin
    t.results.(shard) <- Some loads;
    (* The shard's work is done; it will exit as soon as it pleases.
       Stop monitoring so its silence / closed socket reads as a clean
       departure, not a death needing a respawn. *)
    Heartbeat.unwatch t.monitor shard;
    let all = ref true in
    Array.iter (fun r -> if r = None then all := false) t.results;
    if !all then finalize t
  end

let handle_shard_msg t ~shard msg =
  Heartbeat.beat t.monitor ~now:(Clock.now ()) shard;
  match msg with
  | Msg.Data { dst; _ } | Msg.Data_ack { dst; _ } -> (
    match t.conns.(dst) with
    | None -> () (* destination dead; the sender's ARQ covers the gap *)
    | Some c -> (
      try Transport.send c msg
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        declare_dead t dst))
  | Msg.Round_done { shard = s; epoch; round; load_sum; min_load; max_load } ->
    if s = shard then
      do_actions t
        (Member.on_round_done t.member ~shard ~epoch ~round ~load_sum ~min_load
           ~max_load)
  | Msg.Heartbeat _ -> () (* the beat above is the signal *)
  | Msg.Result { shard = s; loads } -> if s = shard then on_result t ~shard loads
  | Msg.Hello _ ->
    Printf.eprintf "lb_coord: duplicate hello from bound shard %d\n%!" shard;
    t.stop <- Some 2
  | Msg.Welcome _ | Msg.Start _ | Msg.Abort _ | Msg.Shutdown ->
    logf t "ignoring coordinator-bound %s from shard %d" (Msg.describe msg) shard

let handle_pending_msg t conn msg =
  match msg with
  | Msg.Hello { shard; staged_round; primary_round; rotated_round } ->
    t.pending <- List.filter (fun c -> c != conn) t.pending;
    if shard < 0 || shard >= t.cfg.shards then begin
      Printf.eprintf "lb_coord: hello from unknown shard %d\n%!" shard;
      Transport.close conn;
      t.stop <- Some 2
    end
    else begin
      (* A replacement may connect before the old socket's EOF was
         processed: retire the old incarnation first (suppressing the
         respawn — the replacement is this very connection). *)
      (match t.conns.(shard) with
       | Some _ ->
         drop_conn t shard;
         do_actions t
           (List.filter
              (function Member.Respawn _ -> false | _ -> true)
              (Member.on_death t.member ~shard))
       | None -> ());
      t.conns.(shard) <- Some conn;
      Heartbeat.watch t.monitor ~now:(Clock.now ()) shard;
      logf t "%s" (Msg.describe msg);
      do_actions t
        (Member.on_hello t.member ~shard ~staged_round ~primary_round
           ~rotated_round)
    end
  | _ ->
    logf t "closing connection that sent %s before hello" (Msg.describe msg);
    Transport.close conn;
    t.pending <- List.filter (fun c -> c != conn) t.pending

let shard_of_conn t conn =
  let found = ref None in
  Array.iteri
    (fun shard c ->
      match c with Some c when c == conn -> found := Some shard | Some _ | None -> ())
    t.conns;
  !found

let per_shard_init cfg =
  let part =
    Shard.Partition.make ~strategy:Shard.Partition.Contiguous ~shards:cfg.shards
      cfg.graph
  in
  let sums = Array.make cfg.shards 0 in
  let mins = Array.make cfg.shards 0 in
  let maxs = Array.make cfg.shards 0 in
  Array.iteri
    (fun s nodes ->
      if Array.length nodes = 0 then
        raise
          (Fatal
             (2, Printf.sprintf "shard %d owns no nodes (too many shards)" s));
      let sum = ref 0 in
      let mn = ref max_int and mx = ref min_int in
      Array.iter
        (fun u ->
          let v = cfg.init.(u) in
          sum := !sum + v;
          if v < !mn then mn := v;
          if v > !mx then mx := v)
        nodes;
      sums.(s) <- !sum;
      mins.(s) <- !mn;
      maxs.(s) <- !mx)
    part.Shard.Partition.parts;
  (sums, mins, maxs)

let validate cfg =
  let fail m = raise (Fatal (2, m)) in
  if cfg.shards < 1 then fail "shards must be >= 1";
  if cfg.rounds < 1 then fail "rounds must be >= 1";
  if cfg.suspect_timeout <= 0.0 then fail "suspect timeout must be > 0";
  if Array.length cfg.init <> Graphs.Graph.n cfg.graph then
    fail "init vector does not match the graph"

let run cfg =
  validate cfg;
  let init_sums, init_mins, init_maxs = per_shard_init cfg in
  let expected_total = Array.fold_left ( + ) 0 cfg.init in
  let registry = Obs.Metrics.default in
  let t =
    {
      cfg;
      member =
        Member.create ~shards:cfg.shards ~rounds:cfg.rounds ~init_sums
          ~init_mins ~init_maxs;
      monitor = Heartbeat.monitor ~timeout:cfg.suspect_timeout;
      watchdog =
        Faults.Watchdog.create ~name:cfg.balancer_name ~never_negative:false
          ~expected_total ();
      expected_total;
      conns = Array.make cfg.shards None;
      pending = [];
      results = Array.make cfg.shards None;
      stop = None;
      started = Clock.now ();
      httpd =
        (match cfg.metrics_port with
         | None -> None
         | Some p -> Some (Httpd.create ~port:p ~registry ()));
      m_commits =
        Obs.Metrics.counter ~registry ~help:"rounds committed"
          "lb_coord_rounds_committed_total";
      m_deaths =
        Obs.Metrics.counter ~registry ~help:"shard deaths observed"
          "lb_coord_deaths_total";
      m_respawns =
        Obs.Metrics.counter ~registry ~help:"respawns requested"
          "lb_coord_respawns_total";
      m_disc =
        Obs.Metrics.gauge ~registry ~help:"committed discrepancy"
          "lb_coord_discrepancy";
      m_epoch =
        Obs.Metrics.gauge ~registry ~help:"membership epoch" "lb_coord_epoch";
    }
  in
  let rec loop () =
    match t.stop with
    | Some code -> code
    | None ->
      let now = Clock.now () in
      (match t.cfg.deadline with
       | Some d when now -. t.started > d ->
         raise (Fatal (3, Printf.sprintf "deadline of %.0f s exceeded" d))
       | Some _ | None -> ());
      List.iter (fun s -> declare_dead t s) (Heartbeat.suspects t.monitor ~now);
      (match t.stop with
       | Some _ -> ()
       | None ->
         let bound = ref [] in
         Array.iter
           (fun c -> match c with Some c -> bound := c :: !bound | None -> ())
           t.conns;
         let fds =
           (t.cfg.listen_fd
            :: (match t.httpd with None -> [] | Some h -> [ Httpd.fd h ]))
           @ List.map Transport.fd !bound
           @ List.map Transport.fd t.pending
         in
         let timeout =
           let dl =
             match Heartbeat.next_deadline t.monitor with
             | Some d -> Float.min d (now +. 0.2)
             | None -> now +. 0.2
           in
           Float.max 0.002 (dl -. now)
         in
         let readable, _, _ =
           try Unix.select fds [] [] timeout
           with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
         in
         if List.memq t.cfg.listen_fd readable then begin
           let client = Transport.accept t.cfg.listen_fd in
           t.pending <-
             Transport.of_fd ~peer:"node" client :: t.pending
         end;
         (match t.httpd with
          | Some h when List.memq (Httpd.fd h) readable -> Httpd.serve_ready h
          | Some _ | None -> ());
         Array.iteri
           (fun shard c ->
             match c with
             | Some conn when List.memq (Transport.fd conn) readable -> (
               match Transport.read_step conn with
               | Transport.Msgs msgs ->
                 List.iter
                   (fun m ->
                     let still_bound =
                       match t.conns.(shard) with
                       | Some c -> c == conn
                       | None -> false
                     in
                     if t.stop = None && still_bound then
                       handle_shard_msg t ~shard m)
                   msgs
               | Transport.Closed ->
                 if t.results.(shard) = None then declare_dead t shard
                 else drop_conn t shard (* clean exit after its Result *)
               | Transport.Corrupt m ->
                 logf t "shard %d stream corrupt (%s)" shard m;
                 declare_dead t shard)
             | Some _ | None -> ())
           t.conns;
         List.iter
           (fun conn ->
             if List.memq (Transport.fd conn) readable then
               match Transport.read_step conn with
               | Transport.Msgs msgs ->
                 (* The first message (Hello) binds the connection to a
                    shard; anything batched behind it routes there. *)
                 List.iter
                   (fun m ->
                     if t.stop = None then
                       match shard_of_conn t conn with
                       | Some shard -> handle_shard_msg t ~shard m
                       | None -> handle_pending_msg t conn m)
                   msgs
               | Transport.Closed | Transport.Corrupt _ ->
                 Transport.close conn;
                 t.pending <- List.filter (fun c -> c != conn) t.pending)
           t.pending);
      loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun s _ -> drop_conn t s) t.conns;
      List.iter Transport.close t.pending;
      (match t.httpd with Some h -> Httpd.close h | None -> ());
      try Unix.close t.cfg.listen_fd with Unix.Unix_error _ -> ())
    loop

let main cfg =
  match run cfg with
  | code -> code
  | exception Fatal (code, msg) ->
    Printf.eprintf "lb_coord: %s\n%!" msg;
    code
  | exception Unix.Unix_error (e, fn, _) ->
    Printf.eprintf "lb_coord: %s: %s\n%!" fn (Unix.error_message e);
    3
