(* The lb_coord coordinator: membership, round barrier, relay, audit.

   A thin imperative shell around the pure Member controller: sockets,
   select, heartbeat suspicion, and the relay of data-plane frames
   between shards (the cluster is a star — nodes only connect here).
   Every membership decision comes out of Member as an action list;
   this module executes them and turns the Committed stream into
   watchdog audits, the discrepancy series, and the chaos hook.

   With a WAL configured, every commit and epoch transition is
   appended and fsync'd BEFORE any of its external effects (Start /
   Welcome sends, the chaos hook), so a coordinator killed at any
   instant restarts into Member.recover with a state no shard is ahead
   of: shards block at the commit barrier, reconnect, re-hello, and
   the frozen round resumes exactly.

   Failure containment instead of failure propagation: a corrupt shard
   stream quarantines that shard (freeze + exclude + re-admit from a
   CRC-verified checkpoint under a new epoch) rather than killing the
   run, and a failed conservation audit poisons the commit — the
   controller rolls back one round, fences the epoch, disconnects
   everyone, and re-runs from checkpoints; only a second audit failure
   of the same round (a persistent liar) or an audit failure with no
   rollback window ends the run with exit 4.

   Exit codes: 0 ok, 2 config error, 3 recovery/timeout failure,
   4 invariant violation (conservation or final band). *)

type config = {
  shards : int;
  rounds : int;
  graph : Graphs.Graph.t;
  init : int array;
  balancer_name : string; (* diagnostics: names the run in the watchdog *)
  listen_fd : Unix.file_descr; (* pre-bound loopback listener *)
  suspect_timeout : float;
  band : int option; (* final discrepancy must be <= band *)
  out_path : string option; (* final loads, one integer per line *)
  metrics_port : int option;
  respawn : (int -> unit) option; (* supervisor callback (fork replacement) *)
  on_commit : (int -> unit) option; (* chaos hook, called per committed round *)
  deadline : float option; (* overall wall-clock budget, seconds *)
  wal : string option; (* write-ahead log path; replayed when non-empty *)
  graceful_term : bool; (* catch SIGTERM and leave with exit 0 *)
  verbose : bool;
}

exception Fatal of int * string

type t = {
  cfg : config;
  member : Member.t;
  monitor : Heartbeat.monitor;
  watchdog : Faults.Watchdog.t;
  expected_total : int;
  conns : Transport.conn option array; (* shard-bound connections *)
  mutable pending : Transport.conn list; (* accepted, awaiting Hello *)
  results : (int * int) list option array;
  mutable stop : int option;
  started : float;
  httpd : Httpd.t option;
  wal : Wal.t option;
  mutable logged_epoch : int; (* last epoch recorded in the WAL *)
  mutable wal_reason : string; (* reason tag for the next Epoch record *)
  mutable abandon : bool; (* poison: skip the rest of this action batch *)
  mutable last_poisoned : int option; (* poison budget: one rollback per round *)
  mutable term : bool; (* SIGTERM seen *)
  quarantines : int array; (* corrupt-stream quarantines per shard *)
  m_commits : Obs.Metrics.counter;
  m_deaths : Obs.Metrics.counter;
  m_respawns : Obs.Metrics.counter;
  m_poisons : Obs.Metrics.counter;
  m_quarantines : Obs.Metrics.counter;
  m_stale : Obs.Metrics.counter;
  m_disc : Obs.Metrics.gauge;
  m_epoch : Obs.Metrics.gauge;
}

(* Repeated framing corruption on one shard's link means its process
   (not the link) is the liar; stop trying after this many exclusions. *)
let quarantine_limit = 5

let logf t fmt =
  if t.cfg.verbose then Printf.eprintf ("lb_coord: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let drop_conn t shard =
  match t.conns.(shard) with
  | None -> ()
  | Some c ->
    Transport.close c;
    t.conns.(shard) <- None;
    Heartbeat.unwatch t.monitor shard

(* Make a Member transition's durable consequences (commit, epoch
   bump, checkpoint-source elections) hit the disk BEFORE any of its
   external effects run.  Called by [dispatch] with the action batch a
   Member.on_* call returned, while no send has happened yet. *)
let wal_note t acts =
  match t.wal with
  | None -> ()
  | Some w ->
    let time = Clock.now () in
    let dirty = ref false in
    let committed =
      List.exists (function Member.Committed _ -> true | _ -> false) acts
    in
    if committed then begin
      Wal.append w (Wal.Commit { time; snap = Member.snapshot t.member });
      dirty := true
    end
    else if Member.epoch t.member <> t.logged_epoch then begin
      Wal.append w
        (Wal.Epoch { time; reason = t.wal_reason; snap = Member.snapshot t.member });
      dirty := true
    end;
    List.iter
      (fun a ->
        match a with
        | Member.Tell { shard; msg = Msg.Welcome { round; use; _ } } ->
          Wal.append w (Wal.Elect { time; shard; round; use });
          dirty := true
        | Member.Tell _ | Member.Committed _ | Member.Respawn _
        | Member.Fail _ | Member.Finished -> ())
      acts;
    if !dirty then Wal.sync w;
    t.logged_epoch <- Member.epoch t.member;
    t.wal_reason <- "membership change"

(* Execute a Member action batch, WAL first.  A poisoned commit midway
   abandons the rest of the batch (its Tells belong to a rolled-back
   state); the nested on_poison dispatch saves and restores the flag. *)
let rec dispatch t acts =
  wal_note t acts;
  let outer = t.abandon in
  t.abandon <- false;
  List.iter
    (fun a -> if (not t.abandon) && t.stop = None then do_action t a)
    acts;
  t.abandon <- outer

and do_action t = function
  | Member.Tell { shard; msg } -> (
    match t.conns.(shard) with
    | None -> logf t "shard %d unreachable; dropping %s" shard (Msg.describe msg)
    | Some c -> (
      try Transport.send c msg
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        declare_dead t shard))
  | Member.Committed { round; sums; min_load; max_load } -> (
    Obs.Metrics.inc t.m_commits 1;
    let disc = max_load - min_load in
    Obs.Metrics.set t.m_disc (float_of_int disc);
    Obs.Metrics.set t.m_epoch (float_of_int (Member.epoch t.member));
    logf t "committed round %d (discrepancy %d)" round disc;
    match Faults.Watchdog.check t.watchdog ~step:round ~loads:sums with
    | () -> ( match t.cfg.on_commit with Some f -> f round | None -> ())
    | exception Faults.Watchdog.Invariant_violation d ->
      poison t ~round ~reason:(Faults.Watchdog.to_string d))
  | Member.Respawn { shard } -> (
    Obs.Metrics.inc t.m_respawns 1;
    match t.cfg.respawn with
    | Some f -> f shard
    | None -> logf t "shard %d dead; waiting for an external restart" shard)
  | Member.Fail { code; reason } ->
    Printf.eprintf "lb_coord: %s\n%!" reason;
    t.stop <- Some code
  | Member.Finished -> logf t "all rounds committed; collecting results"

and declare_dead t shard =
  Obs.Metrics.inc t.m_deaths 1;
  logf t "shard %d declared dead" shard;
  drop_conn t shard;
  t.wal_reason <- "shard death";
  dispatch t (Member.on_death t.member ~shard)

(* The conservation audit of a just-committed round failed.  Once per
   round we assume a transient liar: roll the commit back, fence the
   epoch, and disconnect everyone so the round re-runs from the
   CRC-verified checkpoints.  The same round failing its audit twice
   means the fault is durable — exit 4 as the watchdog would have. *)
and poison t ~round ~reason =
  match t.last_poisoned with
  | Some r when r = round ->
    Printf.eprintf
      "lb_coord: round %d failed its audit again after a rollback: %s\n%!"
      round reason;
    t.stop <- Some 4
  | Some _ | None ->
    t.last_poisoned <- Some round;
    Obs.Metrics.inc t.m_poisons 1;
    Printf.eprintf
      "lb_coord: poisoned commit of round %d quarantined, rolling back: %s\n%!"
      round reason;
    t.abandon <- true;
    (* Close every link (bound and pending): shards hit EOF, reconnect,
       and re-hello into the fenced epoch; nothing from the poisoned
       commit escapes. *)
    Array.iteri (fun s _ -> drop_conn t s) t.conns;
    List.iter Transport.close t.pending;
    t.pending <- [];
    t.wal_reason <- "poisoned commit rollback";
    dispatch t (Member.on_poison t.member ~reason)

(* A corrupt frame on a bound shard link: the CRC caught a byte-level
   lie.  Quarantine the shard — freeze and exclude it like a death, so
   it re-admits only from a CRC-verified checkpoint under the next
   epoch — rather than killing the run.  A shard that keeps corrupting
   its stream is broken hardware or a broken process: give up on the
   run after [quarantine_limit] exclusions. *)
and quarantine t shard m =
  t.quarantines.(shard) <- t.quarantines.(shard) + 1;
  Obs.Metrics.inc t.m_quarantines 1;
  if t.quarantines.(shard) > quarantine_limit then begin
    Printf.eprintf
      "lb_coord: shard %d corrupted its stream %d times; giving up: %s\n%!"
      shard t.quarantines.(shard) m;
    t.stop <- Some 3
  end
  else begin
    Printf.eprintf "lb_coord: quarantining shard %d: corrupt stream (%s)\n%!"
      shard m;
    Obs.Metrics.inc t.m_deaths 1;
    drop_conn t shard;
    t.wal_reason <- "shard quarantine";
    dispatch t (Member.on_death t.member ~shard)
  end

let finalize t =
  let n = Graphs.Graph.n t.cfg.graph in
  let merged = Array.make n 0 in
  let seen = Array.make n false in
  let fail code m = raise (Fatal (code, m)) in
  Array.iteri
    (fun shard result ->
      match result with
      | None -> fail 3 (Printf.sprintf "no result from shard %d" shard)
      | Some pairs ->
        List.iter
          (fun (u, load) ->
            if u < 0 || u >= n then
              fail 4 (Printf.sprintf "result names node %d outside the graph" u);
            if seen.(u) then fail 4 (Printf.sprintf "node %d reported twice" u);
            seen.(u) <- true;
            merged.(u) <- load)
          pairs)
    t.results;
  Array.iteri
    (fun u s -> if not s then fail 4 (Printf.sprintf "node %d unreported" u))
    seen;
  let total = Array.fold_left ( + ) 0 merged in
  if total <> t.expected_total then
    fail 4
      (Printf.sprintf "final tokens %d, expected %d: conservation broken" total
         t.expected_total);
  let mn = ref merged.(0) and mx = ref merged.(0) in
  Array.iter
    (fun (v : int) ->
      if v < !mn then mn := v;
      if v > !mx then mx := v)
    merged;
  let disc = !mx - !mn in
  (match t.cfg.band with
   | Some band when disc > band ->
     fail 4
       (Printf.sprintf "final discrepancy %d outside the band %d" disc band)
   | Some _ | None -> ());
  (match t.cfg.out_path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Array.iter (fun v -> Printf.fprintf oc "%d\n" v) merged;
     close_out oc);
  logf t "final discrepancy %d, %d tokens conserved" disc total;
  t.stop <- Some 0

let on_result t ~shard loads =
  if shard >= 0 && shard < t.cfg.shards then begin
    t.results.(shard) <- Some loads;
    (* The shard's work is done; it will exit as soon as it pleases.
       Stop monitoring so its silence / closed socket reads as a clean
       departure, not a death needing a respawn. *)
    Heartbeat.unwatch t.monitor shard;
    let all = ref true in
    Array.iter (fun r -> if r = None then all := false) t.results;
    if !all then finalize t
  end

let handle_shard_msg t ~shard msg =
  Heartbeat.beat t.monitor ~now:(Clock.now ()) shard;
  match msg with
  | Msg.Data { dst; epoch; _ } | Msg.Data_ack { dst; epoch; _ } ->
    (* Fence the relay: frames from a previous epoch belong to an
       aborted or rolled-back round (a healed partition replays its
       backlog here) and must not leak into the current one. *)
    if epoch <> Member.epoch t.member then Obs.Metrics.inc t.m_stale 1
    else (
      match t.conns.(dst) with
      | None -> () (* destination dead; the sender's ARQ covers the gap *)
      | Some c -> (
        try Transport.send c msg
        with
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          declare_dead t dst))
  | Msg.Round_done { shard = s; epoch; round; load_sum; min_load; max_load } ->
    if s = shard then
      dispatch t
        (Member.on_round_done t.member ~shard ~epoch ~round ~load_sum ~min_load
           ~max_load)
  | Msg.Heartbeat _ -> () (* the beat above is the signal *)
  | Msg.Result { shard = s; loads } -> if s = shard then on_result t ~shard loads
  | Msg.Hello _ ->
    Printf.eprintf "lb_coord: duplicate hello from bound shard %d\n%!" shard;
    t.stop <- Some 2
  | Msg.Welcome _ | Msg.Start _ | Msg.Abort _ | Msg.Shutdown _ ->
    logf t "ignoring coordinator-bound %s from shard %d" (Msg.describe msg) shard

let handle_pending_msg t conn msg =
  match msg with
  | Msg.Hello { shard; staged_round; primary_round; rotated_round } ->
    t.pending <- List.filter (fun c -> c != conn) t.pending;
    if shard < 0 || shard >= t.cfg.shards then begin
      Printf.eprintf "lb_coord: hello from unknown shard %d\n%!" shard;
      Transport.close conn;
      t.stop <- Some 2
    end
    else begin
      (* A replacement may connect before the old socket's EOF was
         processed: retire the old incarnation first (suppressing the
         respawn — the replacement is this very connection). *)
      (match t.conns.(shard) with
       | Some _ ->
         drop_conn t shard;
         t.wal_reason <- "shard reconnect";
         dispatch t
           (List.filter
              (function Member.Respawn _ -> false | _ -> true)
              (Member.on_death t.member ~shard))
       | None -> ());
      t.conns.(shard) <- Some conn;
      Heartbeat.watch t.monitor ~now:(Clock.now ()) shard;
      logf t "%s" (Msg.describe msg);
      dispatch t
        (Member.on_hello t.member ~shard ~staged_round ~primary_round
           ~rotated_round)
    end
  | Msg.Welcome _ | Msg.Start _ | Msg.Abort _ | Msg.Data _ | Msg.Data_ack _
  | Msg.Round_done _ | Msg.Heartbeat _ | Msg.Shutdown _ | Msg.Result _ ->
    (* enumerated (not `_`) so a new wire constructor forces this site
       to be revisited: anything pre-hello is a protocol violation *)
    logf t "closing connection that sent %s before hello" (Msg.describe msg);
    Transport.close conn;
    t.pending <- List.filter (fun c -> c != conn) t.pending

let shard_of_conn t conn =
  let found = ref None in
  Array.iteri
    (fun shard c ->
      match c with Some c when c == conn -> found := Some shard | Some _ | None -> ())
    t.conns;
  !found

let per_shard_init cfg =
  let part =
    Shard.Partition.make ~strategy:Shard.Partition.Contiguous ~shards:cfg.shards
      cfg.graph
  in
  let sums = Array.make cfg.shards 0 in
  let mins = Array.make cfg.shards 0 in
  let maxs = Array.make cfg.shards 0 in
  Array.iteri
    (fun s nodes ->
      if Array.length nodes = 0 then
        raise
          (Fatal
             (2, Printf.sprintf "shard %d owns no nodes (too many shards)" s));
      let sum = ref 0 in
      let mn = ref max_int and mx = ref min_int in
      Array.iter
        (fun u ->
          let v = cfg.init.(u) in
          sum := !sum + v;
          if v < !mn then mn := v;
          if v > !mx then mx := v)
        nodes;
      sums.(s) <- !sum;
      mins.(s) <- !mn;
      maxs.(s) <- !mx)
    part.Shard.Partition.parts;
  (sums, mins, maxs)

let validate cfg =
  let fail m = raise (Fatal (2, m)) in
  if cfg.shards < 1 then fail "shards must be >= 1";
  if cfg.rounds < 1 then fail "rounds must be >= 1";
  if cfg.suspect_timeout <= 0.0 then fail "suspect timeout must be > 0";
  if Array.length cfg.init <> Graphs.Graph.n cfg.graph then
    fail "init vector does not match the graph"

let run cfg =
  validate cfg;
  let init_sums, init_mins, init_maxs = per_shard_init cfg in
  let expected_total = Array.fold_left ( + ) 0 cfg.init in
  (* Replay the WAL before anything else: a non-empty log means this is
     a restart, and the controller must resume the frozen round rather
     than re-run from scratch. *)
  let recovery, wal =
    match cfg.wal with
    | None -> (None, None)
    | Some path -> (
      match Wal.replay ~path with
      | Error m -> raise (Fatal (3, m))
      | Ok prior ->
        (match prior with
         | Some r
           when r.Wal.shards <> cfg.shards
                || r.Wal.rounds <> cfg.rounds
                || r.Wal.expected_total <> expected_total ->
           raise
             (Fatal
                ( 2,
                  Printf.sprintf
                    "WAL %s records a different run (%d shards, %d rounds, \
                     %d tokens)"
                    path r.Wal.shards r.Wal.rounds r.Wal.expected_total ))
         | Some _ | None -> ());
        (prior, Some (Wal.create ~path)))
  in
  let member =
    match recovery with
    | None ->
      Member.create ~shards:cfg.shards ~rounds:cfg.rounds ~init_sums ~init_mins
        ~init_maxs
    | Some r -> Member.recover ~shards:cfg.shards ~rounds:cfg.rounds r.Wal.snap
  in
  let registry = Obs.Metrics.default in
  let t =
    {
      cfg;
      member;
      monitor = Heartbeat.monitor ~timeout:cfg.suspect_timeout;
      watchdog =
        Faults.Watchdog.create ~name:cfg.balancer_name ~never_negative:false
          ~expected_total ();
      expected_total;
      conns = Array.make cfg.shards None;
      pending = [];
      results = Array.make cfg.shards None;
      stop = None;
      started = Clock.now ();
      httpd =
        (match cfg.metrics_port with
         | None -> None
         | Some p -> Some (Httpd.create ~port:p ~registry ()));
      wal;
      logged_epoch = Member.epoch member;
      wal_reason = "membership change";
      abandon = false;
      last_poisoned = None;
      term = false;
      quarantines = Array.make cfg.shards 0;
      m_commits =
        Obs.Metrics.counter ~registry ~help:"rounds committed"
          "lb_coord_rounds_committed_total";
      m_deaths =
        Obs.Metrics.counter ~registry ~help:"shard deaths observed"
          "lb_coord_deaths_total";
      m_respawns =
        Obs.Metrics.counter ~registry ~help:"respawns requested"
          "lb_coord_respawns_total";
      m_poisons =
        Obs.Metrics.counter ~registry ~help:"poisoned commits rolled back"
          "lb_coord_poisoned_commits_total";
      m_quarantines =
        Obs.Metrics.counter ~registry ~help:"corrupt-stream shard quarantines"
          "lb_coord_quarantines_total";
      m_stale =
        Obs.Metrics.counter ~registry ~help:"stale-epoch data frames fenced"
          "lb_coord_stale_frames_total";
      m_disc =
        Obs.Metrics.gauge ~registry ~help:"committed discrepancy"
          "lb_coord_discrepancy";
      m_epoch =
        Obs.Metrics.gauge ~registry ~help:"membership epoch" "lb_coord_epoch";
    }
  in
  (* Make the boot (or the restart's fenced epoch) durable before the
     first connection is accepted: a shard admitted under an unlogged
     epoch could outrun the log. *)
  (match (t.wal, recovery) with
   | None, _ -> ()
   | Some w, None ->
     Wal.append w
       (Wal.Boot
          {
            time = Clock.now ();
            shards = cfg.shards;
            rounds = cfg.rounds;
            expected_total;
            snap = Member.snapshot t.member;
          });
     Wal.sync w
   | Some w, Some r ->
     Wal.append w
       (Wal.Epoch
          {
            time = Clock.now ();
            reason = "coordinator restart";
            snap = Member.snapshot t.member;
          });
     Wal.sync w;
     Printf.eprintf
       "lb_coord: recovered from WAL: round %d committed, epoch %d, %d \
        commit(s)%s\n\
        %!"
       (Member.committed t.member)
       (Member.epoch t.member) r.Wal.commits
       (if r.Wal.torn_tail then " (torn tail discarded)" else ""));
  if cfg.graceful_term then
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> t.term <- true));
  let rec loop () =
    match t.stop with
    | Some code -> code
    | None ->
      let now = Clock.now () in
      (match t.cfg.deadline with
       | Some d when now -. t.started > d ->
         raise (Fatal (3, Printf.sprintf "deadline of %.0f s exceeded" d))
       | Some _ | None -> ());
      if t.term then begin
        (* The WAL (and every shard's checkpoints) are durable at all
           times; a graceful stop needs no extra staging here. *)
        Printf.eprintf
          "lb_coord: SIGTERM: leaving with round %d committed (epoch %d)\n%!"
          (Member.committed t.member)
          (Member.epoch t.member);
        t.stop <- Some 0
      end;
      List.iter (fun s -> declare_dead t s) (Heartbeat.suspects t.monitor ~now);
      (match t.stop with
       | Some _ -> ()
       | None ->
         let bound = ref [] in
         Array.iter
           (fun c -> match c with Some c -> bound := c :: !bound | None -> ())
           t.conns;
         let fds =
           (t.cfg.listen_fd
            :: (match t.httpd with None -> [] | Some h -> [ Httpd.fd h ]))
           @ List.map Transport.fd !bound
           @ List.map Transport.fd t.pending
         in
         let timeout =
           let dl =
             match Heartbeat.next_deadline t.monitor with
             | Some d -> Float.min d (now +. 0.2)
             | None -> now +. 0.2
           in
           Float.max 0.002 (dl -. now)
         in
         let readable, _, _ =
           try Unix.select fds [] [] timeout
           with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
         in
         if List.memq t.cfg.listen_fd readable then begin
           let client = Transport.accept t.cfg.listen_fd in
           t.pending <-
             Transport.of_fd ~peer:"node" client :: t.pending
         end;
         (match t.httpd with
          | Some h when List.memq (Httpd.fd h) readable -> Httpd.serve_ready h
          | Some _ | None -> ());
         Array.iteri
           (fun shard c ->
             match c with
             | Some conn when List.memq (Transport.fd conn) readable -> (
               match Transport.read_step conn with
               | Transport.Msgs msgs ->
                 List.iter
                   (fun m ->
                     let still_bound =
                       match t.conns.(shard) with
                       | Some c -> c == conn
                       | None -> false
                     in
                     if t.stop = None && still_bound then
                       handle_shard_msg t ~shard m)
                   msgs
               | Transport.Closed ->
                 if t.results.(shard) = None then declare_dead t shard
                 else drop_conn t shard (* clean exit after its Result *)
               | Transport.Corrupt m -> quarantine t shard m)
             | Some _ | None -> ())
           t.conns;
         List.iter
           (fun conn ->
             if List.memq (Transport.fd conn) readable then
               match Transport.read_step conn with
               | Transport.Msgs msgs ->
                 (* The first message (Hello) binds the connection to a
                    shard; anything batched behind it routes there. *)
                 List.iter
                   (fun m ->
                     if t.stop = None then
                       match shard_of_conn t conn with
                       | Some shard -> handle_shard_msg t ~shard m
                       | None -> handle_pending_msg t conn m)
                   msgs
               | Transport.Closed | Transport.Corrupt _ ->
                 Transport.close conn;
                 t.pending <- List.filter (fun c -> c != conn) t.pending)
           t.pending);
      loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun s _ -> drop_conn t s) t.conns;
      List.iter Transport.close t.pending;
      (match t.wal with Some w -> Wal.close w | None -> ());
      (match t.httpd with Some h -> Httpd.close h | None -> ());
      try Unix.close t.cfg.listen_fd with Unix.Unix_error _ -> ())
    loop

let main cfg =
  match run cfg with
  | code -> code
  | exception Fatal (code, msg) ->
    Printf.eprintf "lb_coord: %s\n%!" msg;
    code
  | exception Unix.Unix_error (e, fn, _) ->
    Printf.eprintf "lb_coord: %s: %s\n%!" fn (Unix.error_message e);
    3
