(* Shared experiment construction for the cluster binaries.

   lb_cluster, lb_node and lb_coord must all build IDENTICAL graph,
   initial vector and balancer from the same textual specs — the
   cluster's determinism (and its bit-for-bit equality with
   lb_sim --dump-loads) hinges on every process deriving the same
   objects from the same strings.  Centralizing the build keeps the
   three CLIs from drifting apart. *)

type spec = {
  graph : string;
  init : string;
  algo : string;
  seed : int;
  self_loops : int option;
}

type built = {
  graph : Graphs.Graph.t;
  init : int array;
  make_balancer : unit -> Core.Balancer.t;
  name : string; (* balancer display name, for logs and the watchdog *)
  self_loops : int; (* d° of G+, for the theorem band *)
}

let build (spec : spec) =
  match Harness.Experiment.graph_of_string spec.graph with
  | Error m -> Error ("--graph: " ^ m)
  | Ok gspec -> (
    match Harness.Experiment.init_of_string spec.init with
    | Error m -> Error ("--init: " ^ m)
    | Ok ispec -> (
      match
        Harness.Experiment.algo_of_string ?self_loops:spec.self_loops
          ~seed:spec.seed spec.algo
      with
      | Error m -> Error ("--algo: " ^ m)
      | Ok algo_of_degree ->
        let graph = Harness.Experiment.build_graph gspec in
        let n = Graphs.Graph.n graph in
        let degree = Graphs.Graph.degree graph in
        let init = Harness.Experiment.build_init ispec ~n in
        let algo = algo_of_degree ~degree in
        let make_balancer () =
          Harness.Experiment.build_balancer algo graph ~init
        in
        let probe = make_balancer () in
        if not (Core.Balancer.resumable probe) then
          Error
            (Printf.sprintf
               "balancer %s cannot be checkpointed; the cluster requires a \
                resumable balancer"
               probe.Core.Balancer.name)
        else
          Ok
            {
              graph;
              init;
              make_balancer;
              name = probe.Core.Balancer.name;
              self_loops =
                Harness.Experiment.algo_self_loops algo ~graph_degree:degree;
            }))

(* The closed-system discrepancy band the chaos run must re-enter:
   the paper's deterministic-scheme bound for this graph and d°. *)
let theorem_band built =
  Harness.Faultsweep.theorem_band ~graph:built.graph ~self_loops:built.self_loops

let parse_band built = function
  | "auto" -> Ok (Some (theorem_band built))
  | "none" -> Ok None
  | s -> (
    match int_of_string_opt s with
    | Some b when b >= 0 -> Ok (Some b)
    | Some _ | None ->
      Error "--band must be \"auto\", \"none\", or a non-negative integer")
