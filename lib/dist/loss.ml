(* Seeded lossy transport shim.

   Sits below the ARQ and above the socket: every data-plane frame about
   to be written consults [decide], which can deliver, drop, or delay
   it.  Decisions are drawn from a per-directed-link Prng.Splitmix
   stream keyed on (seed, src, dst), so a run is replayable: the k-th
   transmission on a link gets the same verdict in every execution with
   the same seed, independent of wall-clock timing or process
   interleaving.  Every call draws the same number of variates, keeping
   streams aligned across configurations. *)

type config = {
  drop : float; (* P(frame silently discarded) *)
  delay_prob : float; (* P(frame held back), evaluated after drop *)
  delay_max : float; (* held frames release after U(0, delay_max) seconds *)
  seed : int;
}

let none = { drop = 0.0; delay_prob = 0.0; delay_max = 0.0; seed = 0 }

let validate c =
  let prob what p =
    if p < 0.0 || p >= 1.0 then
      Error (Printf.sprintf "%s must be in [0, 1) (got %g)" what p)
    else Ok ()
  in
  match prob "drop" c.drop with
  | Error _ as e -> e
  | Ok () -> (
    match prob "delay probability" c.delay_prob with
    | Error _ as e -> e
    | Ok () ->
      if c.delay_max < 0.0 then
        Error (Printf.sprintf "delay max must be >= 0 (got %g)" c.delay_max)
      else Ok ())

type verdict = Deliver | Drop | Delay of float

type t = {
  config : config;
  streams : (int, Prng.Splitmix.t) Hashtbl.t; (* directed link -> stream *)
  mutable dropped : int;
  mutable delayed : int;
}

let create config = { config; streams = Hashtbl.create 16; dropped = 0; delayed = 0 }

let link_key ~src ~dst = (src lsl 20) lor dst

let stream t ~src ~dst =
  let key = link_key ~src ~dst in
  match Hashtbl.find_opt t.streams key with
  | Some s -> s
  | None ->
    (* Distinct deterministic seed per directed link. *)
    let s = Prng.Splitmix.create (t.config.seed lxor (key * 0x9E3779B1)) in
    Hashtbl.replace t.streams key s;
    s

let decide t ~src ~dst =
  let c = t.config in
  if c.drop = 0.0 && c.delay_prob = 0.0 then Deliver
  else begin
    let s = stream t ~src ~dst in
    (* Fixed draw count per decision keeps link streams aligned. *)
    let u = Prng.Splitmix.float s 1.0 in
    let v = Prng.Splitmix.float s 1.0 in
    let w = Prng.Splitmix.float s 1.0 in
    if u < c.drop then begin
      t.dropped <- t.dropped + 1;
      Drop
    end
    else if v < c.delay_prob && c.delay_max > 0.0 then begin
      t.delayed <- t.delayed + 1;
      Delay (w *. c.delay_max)
    end
    else Deliver
  end

let dropped t = t.dropped
let delayed t = t.delayed
