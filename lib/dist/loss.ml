(* Seeded lossy transport shim.

   Sits below the ARQ and above the socket: every data-plane frame about
   to be written consults [decide], which can deliver, drop, or delay
   it.  Decisions are drawn from a per-directed-link Prng.Splitmix
   stream keyed on (seed, src, dst), so a run is replayable: the k-th
   transmission on a link gets the same verdict in every execution with
   the same seed, independent of wall-clock timing or process
   interleaving.  Every call draws the same number of variates, keeping
   streams aligned across configurations. *)

type window = {
  cut : int list; (* the isolated shard group *)
  from_s : float;
  until_s : float;
}

type config = {
  drop : float; (* P(frame silently discarded) *)
  delay_prob : float; (* P(frame held back), evaluated after drop *)
  delay_max : float; (* held frames release after U(0, delay_max) seconds *)
  seed : int;
  partitions : window list;
}

let none =
  { drop = 0.0; delay_prob = 0.0; delay_max = 0.0; seed = 0; partitions = [] }

(* A partition separates the [cut] group from everything else (the
   coordinator, id -1, is always on the majority side): traffic whose
   endpoints straddle the cut is unreachable while the window is open.
   Windows are wall-clock intervals relative to the observer's start —
   the cluster is a star, so each node applies the cut to its own
   coordinator link, which severs both its control and (relayed) data
   plane exactly as a real partition would. *)
let cut c ~elapsed ~src ~dst =
  List.exists
    (fun w ->
      elapsed >= w.from_s
      && elapsed < w.until_s
      && List.mem src w.cut <> List.mem dst w.cut)
    c.partitions

let validate c =
  let prob what p =
    if p < 0.0 || p >= 1.0 then
      Error (Printf.sprintf "%s must be in [0, 1) (got %g)" what p)
    else Ok ()
  in
  match prob "drop" c.drop with
  | Error _ as e -> e
  | Ok () -> (
    match prob "delay probability" c.delay_prob with
    | Error _ as e -> e
    | Ok () ->
      if c.delay_max < 0.0 then
        Error (Printf.sprintf "delay max must be >= 0 (got %g)" c.delay_max)
      else
        let rec windows = function
          | [] -> Ok ()
          | w :: rest ->
            if w.cut = [] then Error "partition window isolates no shard"
            else if w.from_s < 0.0 || not (Float.is_finite w.from_s) then
              Error "partition window must start at time >= 0"
            else if w.until_s <= w.from_s || not (Float.is_finite w.until_s)
            then Error "partition window must end after it starts"
            else windows rest
        in
        windows c.partitions)

type verdict = Deliver | Drop | Delay of float

type t = {
  config : config;
  streams : (int, Prng.Splitmix.t) Hashtbl.t; (* directed link -> stream *)
  mutable dropped : int;
  mutable delayed : int;
}

let create config = { config; streams = Hashtbl.create 16; dropped = 0; delayed = 0 }

let link_key ~src ~dst = (src lsl 20) lor dst

let stream t ~src ~dst =
  let key = link_key ~src ~dst in
  match Hashtbl.find_opt t.streams key with
  | Some s -> s
  | None ->
    (* Distinct deterministic seed per directed link. *)
    let s = Prng.Splitmix.create (t.config.seed lxor (key * 0x9E3779B1)) in
    Hashtbl.replace t.streams key s;
    s

let decide t ~src ~dst =
  let c = t.config in
  if c.drop = 0.0 && c.delay_prob = 0.0 then Deliver
  else begin
    let s = stream t ~src ~dst in
    (* Fixed draw count per decision keeps link streams aligned. *)
    let u = Prng.Splitmix.float s 1.0 in
    let v = Prng.Splitmix.float s 1.0 in
    let w = Prng.Splitmix.float s 1.0 in
    if u < c.drop then begin
      t.dropped <- t.dropped + 1;
      Drop
    end
    else if v < c.delay_prob && c.delay_max > 0.0 then begin
      t.delayed <- t.delayed + 1;
      Delay (w *. c.delay_max)
    end
    else Deliver
  end

let dropped t = t.dropped
let delayed t = t.delayed
