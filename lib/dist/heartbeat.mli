(** Heartbeat pacing and fixed-timeout failure detection.

    Pure over a caller-supplied clock.  The node side paces outgoing
    heartbeats; the coordinator side marks a watched shard {e suspected}
    once no beat has arrived for [timeout] seconds.  Suspicion is acted
    on by {!Member} (round barrier exclusion); a late-but-alive process
    that reconnects simply rejoins through the normal Hello path. *)

val validate_timeout :
  ?interval:float -> timeout:float -> unit -> (unit, string) result
(** Gate for user-supplied failure-detector timeouts: rejects
    non-finite or non-positive values, and — when the beat [interval]
    is known — timeouts at or below twice the interval (a single
    missed beat would count as a death). *)

type pacer

val pacer : interval:float -> now:float -> pacer
(** First beat is due [interval] after [now].
    @raise Invalid_argument on a non-positive interval. *)

val due : pacer -> now:float -> bool
(** True when a beat should be sent; advances the schedule when so. *)

val next_due : pacer -> float
(** Time of the next beat, for the event-loop timeout. *)

type monitor

val monitor : timeout:float -> monitor
(** @raise Invalid_argument on a non-positive timeout. *)

val watch : monitor -> now:float -> int -> unit
(** Start (or restart) watching a shard; counts as a beat at [now]. *)

val beat : monitor -> now:float -> int -> unit
(** Record a heartbeat (or any sign of life) from a shard.  Ignored for
    shards not currently watched — a beat cannot resurrect a member the
    detector already declared dead. *)

val unwatch : monitor -> int -> unit
(** Stop watching (shard declared dead or shut down). *)

val suspects : monitor -> now:float -> int list
(** Watched shards silent for longer than the timeout, ascending. *)

val watched : monitor -> int list

val next_deadline : monitor -> float option
(** Earliest time a watched shard could become suspect. *)
