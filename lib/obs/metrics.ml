type meta = { m_name : string; m_help : string; m_labels : (string * string) list }

(* Log₂ bucket ladder shared by every histogram: upper bounds
   2^min_exp .. 2^max_exp, then an implicit +∞ bucket ([h_count] minus
   the finite buckets).  frexp makes insertion O(1). *)
let min_exp = -20
let max_exp = 20
let finite_buckets = max_exp - min_exp + 1
let bucket_upper i = ldexp 1.0 (min_exp + i)

type counter = { c_meta : meta; mutable c_value : int }
type gauge = { g_meta : meta; mutable g_value : float }

type histogram = {
  h_meta : meta;
  h_counts : int array; (* per-bucket, non-cumulative *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { table : (string * (string * string) list, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }
let default = create ()

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let compare_label (k1, v1) (k2, v2) =
  let c = String.compare k1 k2 in
  if c <> 0 then c else String.compare v1 v2

let rec compare_labels l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: r1, b :: r2 ->
    let c = compare_label a b in
    if c <> 0 then c else compare_labels r1 r2

let compare_meta m1 m2 =
  let c = String.compare m1.m_name m2.m_name in
  if c <> 0 then c else compare_labels m1.m_labels m2.m_labels

let make_meta ~name ~help ~labels =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S on %s" k name))
    labels;
  { m_name = name; m_help = help; m_labels = List.sort compare_label labels }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let intern registry meta make =
  let key = (meta.m_name, meta.m_labels) in
  match Hashtbl.find_opt registry.table key with
  | Some m -> m
  | None ->
    let m = make meta in
    Hashtbl.add registry.table key m;
    m

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  let meta = make_meta ~name ~help ~labels in
  match intern registry meta (fun m -> Counter { c_meta = m; c_value = 0 }) with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is already a %s" name (kind_name other))

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  let meta = make_meta ~name ~help ~labels in
  match intern registry meta (fun m -> Gauge { g_meta = m; g_value = 0.0 }) with
  | Gauge g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name other))

let histogram ?(registry = default) ?(help = "") ?(labels = []) name =
  let meta = make_meta ~name ~help ~labels in
  match
    intern registry meta (fun m ->
        Histogram
          { h_meta = m; h_counts = Array.make finite_buckets 0; h_sum = 0.0; h_count = 0 })
  with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is already a %s" name (kind_name other))

let inc c n =
  if n < 0 then invalid_arg "Metrics.inc: negative increment";
  c.c_value <- c.c_value + n

let set_counter c v = if v > c.c_value then c.c_value <- v
let set g v = g.g_value <- v

(* Index of the tightest bucket with [v <= bucket_upper i];
   [finite_buckets] means "only the +∞ bucket". *)
let bucket_index v =
  if v <> v (* nan *) || v <= bucket_upper 0 then 0
  else begin
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    let i = e - min_exp in
    if i < 0 then 0 else if i > finite_buckets then finite_buckets else i
  end

let observe h v =
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  let i = bucket_index v in
  if i < finite_buckets then h.h_counts.(i) <- h.h_counts.(i) + 1

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      cumulative : (float * int) list;
      sum : float;
      count : int;
    }

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

let histogram_cumulative h =
  let acc = ref 0 in
  let pairs = ref [] in
  for i = 0 to finite_buckets - 1 do
    if h.h_counts.(i) > 0 then begin
      acc := !acc + h.h_counts.(i);
      pairs := (bucket_upper i, !acc) :: !pairs
    end
  done;
  List.rev ((infinity, h.h_count) :: !pairs)

let snapshot ?(registry = default) () =
  let meta_of = function
    | Counter c -> c.c_meta
    | Gauge g -> g.g_meta
    | Histogram h -> h.h_meta
  in
  (* lint: allow R1 — order-insensitive harvest, sorted by meta just below *)
  Hashtbl.fold (fun _ m acc -> m :: acc) registry.table []
  |> List.sort (fun a b -> compare_meta (meta_of a) (meta_of b))
  |> List.map (fun m ->
         let meta = meta_of m in
         {
           name = meta.m_name;
           help = meta.m_help;
           labels = meta.m_labels;
           value =
             (match m with
             | Counter c -> Counter_value c.c_value
             | Gauge g -> Gauge_value g.g_value
             | Histogram h ->
               Histogram_value
                 {
                   cumulative = histogram_cumulative h;
                   sum = h.h_sum;
                   count = h.h_count;
                 });
         })

let reset ?(registry = default) () =
  (* lint: allow R1 — per-entry zeroing, insensitive to iteration order *)
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.h_counts 0 finite_buckets 0;
        h.h_sum <- 0.0;
        h.h_count <- 0)
    registry.table
