(** Scoped wall-clock + GC profiling of engine phases.

    When disabled (the default), [start] returns a null span and the
    whole facility costs one branch per instrumentation point.  When
    enabled, each span records elapsed wall-clock and the
    [Gc.quick_stat] deltas (minor/major words allocated, major
    collections), accumulated per phase name. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

type span

val start : string -> span
(** Open a span for the named phase; a no-op null span when disabled. *)

val stop : span -> unit
(** Close the span, folding its deltas into the phase.  Null spans are
    ignored. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()] inside a span (exception-safe). *)

type phase = {
  name : string;
  calls : int;
  seconds : float;
  minor_words : float;
  major_words : float;
  major_collections : int;
}

val phases : unit -> phase list
(** Accumulated phases, heaviest wall-clock first. *)

val report_lines : unit -> string list
(** Human-readable per-phase profile (header + one line per phase), or
    a single "no phases recorded" line. *)

val reset : unit -> unit
