let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP lines escape only backslash and newline (exposition format
   v0.0.4); quotes stay literal there. *)
let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
    ^ "}"

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_bound v = if v = infinity then "+Inf" else Printf.sprintf "%g" v

let kind_of = function
  | Metrics.Counter_value _ -> "counter"
  | Metrics.Gauge_value _ -> "gauge"
  | Metrics.Histogram_value _ -> "histogram"

let prometheus ?registry () =
  let samples = Metrics.snapshot ?registry () in
  let b = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.name <> !last_header then begin
        last_header := s.Metrics.name;
        if s.Metrics.help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" s.Metrics.name
               (escape_help s.Metrics.help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.Metrics.name (kind_of s.Metrics.value))
      end;
      let labels = render_labels s.Metrics.labels in
      match s.Metrics.value with
      | Metrics.Counter_value v ->
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" s.Metrics.name labels v)
      | Metrics.Gauge_value v ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" s.Metrics.name labels (render_float v))
      | Metrics.Histogram_value { cumulative; sum; count } ->
        List.iter
          (fun (le, c) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.Metrics.name
                 (render_labels (s.Metrics.labels @ [ ("le", render_bound le) ]))
                 c))
          cumulative;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" s.Metrics.name labels (render_float sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" s.Metrics.name labels count))
    samples;
  Buffer.contents b

(* Write the whole string through [Unix.write], restarting on EINTR and
   continuing after partial writes — a signal landing mid-dump (SIGUSR1
   is exactly the scrape trigger) must not truncate the file. *)
let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  done

let rec close_retry fd =
  try Unix.close fd
  with Unix.Unix_error (Unix.EINTR, _, _) -> close_retry fd

let write ~path ?registry () =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> close_retry fd)
    (fun () -> write_all fd (prometheus ?registry ()));
  Sys.rename tmp path

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let snapshot_json (s : Probe.snapshot) =
  Printf.sprintf
    "{\"at\": %.6f, \"engine\": \"%s\", \"step\": %d, \"discrepancy\": %d, \
     \"max\": %d, \"min\": %d, \"total\": %d, \"c\": %d, \"phi\": %d, \
     \"phi_prime\": %d, \"tokens_moved\": %d}"
    s.Probe.at (json_escape s.Probe.engine) s.Probe.step s.Probe.discrepancy
    s.Probe.max_load s.Probe.min_load s.Probe.total s.Probe.c_threshold
    s.Probe.phi s.Probe.phi_prime s.Probe.tokens_moved

(* SIGUSR1 scrape requests.  The handler is async-signal-safe: it only
   sets a flag — no allocation, no I/O, no registry traversal while an
   arbitrary piece of engine code is interrupted.  The dump itself
   happens in {!poll}, which the engines call at round boundaries. *)
let scrape_requested = ref false
let scrape_target : (string * Metrics.t option) option ref = ref None

let poll () =
  if !scrape_requested then begin
    scrape_requested := false;
    match !scrape_target with
    | None -> ()
    | Some (path, registry) -> write ~path ?registry ()
  end

let install_sigusr1 ~path ?registry () =
  scrape_target := Some (path, registry);
  match Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> scrape_requested := true)) with
  | () -> true
  | exception (Invalid_argument _ | Sys_error _) -> false
