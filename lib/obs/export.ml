let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* HELP lines escape only backslash and newline (exposition format
   v0.0.4); quotes stay literal there. *)
let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
    ^ "}"

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_bound v = if v = infinity then "+Inf" else Printf.sprintf "%g" v

let kind_of = function
  | Metrics.Counter_value _ -> "counter"
  | Metrics.Gauge_value _ -> "gauge"
  | Metrics.Histogram_value _ -> "histogram"

let prometheus ?registry () =
  let samples = Metrics.snapshot ?registry () in
  let b = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.name <> !last_header then begin
        last_header := s.Metrics.name;
        if s.Metrics.help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" s.Metrics.name
               (escape_help s.Metrics.help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.Metrics.name (kind_of s.Metrics.value))
      end;
      let labels = render_labels s.Metrics.labels in
      match s.Metrics.value with
      | Metrics.Counter_value v ->
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" s.Metrics.name labels v)
      | Metrics.Gauge_value v ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" s.Metrics.name labels (render_float v))
      | Metrics.Histogram_value { cumulative; sum; count } ->
        List.iter
          (fun (le, c) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.Metrics.name
                 (render_labels (s.Metrics.labels @ [ ("le", render_bound le) ]))
                 c))
          cumulative;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" s.Metrics.name labels (render_float sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" s.Metrics.name labels count))
    samples;
  Buffer.contents b

let write ~path ?registry () =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (prometheus ?registry ()));
  Sys.rename tmp path

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let snapshot_json (s : Probe.snapshot) =
  Printf.sprintf
    "{\"at\": %.6f, \"engine\": \"%s\", \"step\": %d, \"discrepancy\": %d, \
     \"max\": %d, \"min\": %d, \"total\": %d, \"c\": %d, \"phi\": %d, \
     \"phi_prime\": %d, \"tokens_moved\": %d}"
    s.Probe.at (json_escape s.Probe.engine) s.Probe.step s.Probe.discrepancy
    s.Probe.max_load s.Probe.min_load s.Probe.total s.Probe.c_threshold
    s.Probe.phi s.Probe.phi_prime s.Probe.tokens_moved

let install_sigusr1 ~path ?registry () =
  match
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> write ~path ?registry ()))
  with
  | () -> true
  | exception (Invalid_argument _ | Sys_error _) -> false
