type acc = {
  a_name : string;
  mutable a_calls : int;
  mutable a_seconds : float;
  mutable a_minor : float;
  mutable a_major : float;
  mutable a_collections : int;
}

let on = ref false
let table : (string, acc) Hashtbl.t = Hashtbl.create 16

let set_enabled b = on := b
let enabled () = !on

let acc_of name =
  match Hashtbl.find_opt table name with
  | Some a -> a
  | None ->
    let a =
      { a_name = name; a_calls = 0; a_seconds = 0.0; a_minor = 0.0; a_major = 0.0;
        a_collections = 0 }
    in
    Hashtbl.add table name a;
    a

type span =
  | Null
  | Span of {
      sp_acc : acc;
      sp_t0 : float;
      sp_minor0 : float;
      sp_major0 : float;
      sp_collections0 : int;
    }

let start name =
  if not !on then Null
  else begin
    let g = Gc.quick_stat () in
    Span
      {
        sp_acc = acc_of name;
        sp_t0 = Unix.gettimeofday ();
        (* Gc.minor_words () reads the allocation pointer directly;
           quick_stat's minor_words field only refreshes at collection
           boundaries on OCaml 5, which would hide small allocations. *)
        sp_minor0 = Gc.minor_words ();
        sp_major0 = g.Gc.major_words;
        sp_collections0 = g.Gc.major_collections;
      }
  end

let stop = function
  | Null -> ()
  | Span { sp_acc = a; sp_t0; sp_minor0; sp_major0; sp_collections0 } ->
    let t1 = Unix.gettimeofday () in
    let g = Gc.quick_stat () in
    a.a_calls <- a.a_calls + 1;
    a.a_seconds <- a.a_seconds +. (t1 -. sp_t0);
    a.a_minor <- a.a_minor +. (Gc.minor_words () -. sp_minor0);
    a.a_major <- a.a_major +. (g.Gc.major_words -. sp_major0);
    a.a_collections <- a.a_collections + (g.Gc.major_collections - sp_collections0)

let time name f =
  match start name with
  | Null -> f ()
  | sp -> Fun.protect ~finally:(fun () -> stop sp) f

type phase = {
  name : string;
  calls : int;
  seconds : float;
  minor_words : float;
  major_words : float;
  major_collections : int;
}

let phases () =
  Hashtbl.fold
    (fun _ a l ->
      {
        name = a.a_name;
        calls = a.a_calls;
        seconds = a.a_seconds;
        minor_words = a.a_minor;
        major_words = a.a_major;
        major_collections = a.a_collections;
      }
      :: l)
    table []
  |> List.sort (fun a b ->
         let c = Float.compare b.seconds a.seconds in
         if c <> 0 then c else String.compare b.name a.name)

let human_words w =
  if w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let report_lines () =
  match phases () with
  | [] -> [ "profile:      no phases recorded (enable with --profile)" ]
  | ps ->
    let total = List.fold_left (fun s p -> s +. p.seconds) 0.0 ps in
    Printf.sprintf "%-24s %10s %12s %12s %12s %8s" "phase" "calls" "total"
      "mean" "alloc/call" "majors"
    :: List.map
         (fun p ->
           let mean_us =
             if p.calls = 0 then 0.0 else p.seconds /. float_of_int p.calls *. 1e6
           in
           let per_call =
             if p.calls = 0 then 0.0
             else (p.minor_words +. p.major_words) /. float_of_int p.calls
           in
           Printf.sprintf "%-24s %10d %11.4fs %10.1fµs %12s %8d" p.name p.calls
             p.seconds mean_us (human_words per_call) p.major_collections)
         ps
    @ [ Printf.sprintf "%-24s %10s %11.4fs" "(all phases)" "" total ]

let reset () = Hashtbl.reset table
