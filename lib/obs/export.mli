(** Render the registry as Prometheus text exposition format (v0.0.4)
    and probe snapshots as JSONL, and dump on demand via SIGUSR1. *)

val prometheus : ?registry:Metrics.t -> unit -> string
(** The whole registry in text exposition format: one [# HELP] /
    [# TYPE] header per metric name, histograms as
    [_bucket{le=...}]/[_sum]/[_count] series. *)

val write : path:string -> ?registry:Metrics.t -> unit -> unit
(** Atomically (write-then-rename) write {!prometheus} to [path].
    Writes go through [Unix.write] with an EINTR/partial-write retry
    loop, so a signal landing mid-dump cannot truncate the file. *)

val snapshot_json : Probe.snapshot -> string
(** One probe snapshot as a single-line JSON object — append these to a
    file for a JSONL stream ([bin/jsonlint --jsonl] validates it). *)

val install_sigusr1 : path:string -> ?registry:Metrics.t -> unit -> bool
(** Arrange for SIGUSR1 to request a dump of {!prometheus} to [path]
    ("kill -USR1 <pid>" scrapes a live run).  The handler is
    async-signal-safe: it only sets a flag; the actual write happens at
    the next {!poll} call, which every engine makes at round boundaries
    (and the CLI makes once more at exit).  Returns false when signal
    handling is unavailable on the platform. *)

val poll : unit -> unit
(** Service a pending SIGUSR1 scrape request, if any: write the
    registry installed by {!install_sigusr1} to its path.  Cheap (one
    flag test) when no request is pending — engines call this once per
    round. *)
