(** Fixed-capacity ring buffer for periodic snapshots: post-run
    inspection of a long simulation without unbounded memory.  When
    full, the oldest entry is overwritten and counted as dropped. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val dropped : 'a t -> int
(** How many entries have been overwritten since creation/[clear]. *)

val to_array : 'a t -> 'a array
(** Retained entries, oldest first. *)

val last : 'a t -> 'a option
val clear : 'a t -> unit
