(** Instrumentation points the engines call.

    All probes are no-ops (one branch) until {!enable} is called, so a
    probes-off run is bit-identical to — and costs essentially the same
    as — an uninstrumented one.  Enabled probes only *observe*: they
    never touch engine state, so probes-on runs are bit-identical too.

    Per-round quantities (discrepancy, extrema, tokens moved) feed the
    registry on every round; every [every]-th round additionally takes
    a {!snapshot} — computing the paper's potentials φ and φ′ over the
    load vector — pushes it on the timeline, and hands it to the JSONL
    sink if one is installed. *)

type snapshot = {
  at : float;  (** seconds since {!enable} *)
  engine : string;  (** "core", "shard" or "net" *)
  step : int;
  discrepancy : int;
  max_load : int;
  min_load : int;
  total : int;
  c_threshold : int;
      (** the canonical height c = round(x̄ / d⁺) the potentials use *)
  phi : int;  (** φ_t(c) = Σ_v max(x_v − c·d⁺, 0), Lemma 3.5's potential *)
  phi_prime : int;
      (** φ′_t(c) with s = 0: Σ_v max(c·d⁺ − x_v, 0), Lemma 3.7's
          potential at the same height *)
  tokens_moved : int;  (** cumulative over the run, this engine *)
}

val enable :
  ?registry:Metrics.t -> ?every:int -> ?timeline_capacity:int -> unit -> unit
(** Switch probes on.  Resets the chosen registry (default
    {!Metrics.default}) and starts a fresh timeline; [every] (default
    1) is the snapshot cadence in rounds, [timeline_capacity] (default
    4096) bounds retained snapshots.
    @raise Invalid_argument on a non-positive [every] or capacity. *)

val disable : unit -> unit
(** Switch probes off and drop the sink.  The registry keeps its final
    values for export. *)

val enabled : unit -> bool

val set_sink : (snapshot -> unit) option -> unit
(** Install a streaming consumer for periodic snapshots (e.g. a JSONL
    writer).  Cleared by {!disable}. *)

val timeline : unit -> snapshot array
(** Retained snapshots, oldest first; [[||]] when disabled. *)

val timeline_dropped : unit -> int

(** {1 Engine-facing probes} — no-ops when disabled. *)

val on_round :
  engine:string ->
  d_plus:int ->
  step:int ->
  tokens_moved:int ->
  discrepancy:int ->
  max_load:int ->
  min_load:int ->
  loads:int array ->
  unit
(** One balancing round finished.  [tokens_moved] is this round's count
    of tokens sent over original (non-self-loop) ports; [loads] is read
    only on snapshot rounds. *)

val on_workload :
  engine:string ->
  round:int ->
  arrivals:int ->
  departures:int ->
  inflight:int ->
  discrepancy:int ->
  unit
(** One open-system round finished: feed the [lb_workload_*] counters,
    gauges and the per-round arrival histogram.  [engine] is the
    workload run's probe label. *)

val on_net :
  engine:string ->
  sent:int ->
  tokens:int ->
  retransmissions:int ->
  dropped:int ->
  acks:int ->
  duplicates:int ->
  degraded:int ->
  stalled:int ->
  unit
(** Mirror the network layer's cumulative message statistics. *)

val on_recovery : engine:string -> steps:int option -> unit
(** A fault episode closed: [Some k] means recovered in [k] steps,
    [None] means it never re-entered the band. *)

val on_watchdog : engine:string -> checks:int -> unit
(** Mirror the invariant watchdog's cumulative check count. *)

val on_checkpoint : bytes:int -> fsync_seconds:float -> unit
(** A checkpoint was durably written. *)
