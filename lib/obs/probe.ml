type snapshot = {
  at : float;
  engine : string;
  step : int;
  discrepancy : int;
  max_load : int;
  min_load : int;
  total : int;
  c_threshold : int;
  phi : int;
  phi_prime : int;
  tokens_moved : int;
}

(* Per-engine-label handle block, interned once so the per-round path is
   pure field updates. *)
type handles = {
  rounds : Metrics.counter;
  round_seconds : Metrics.histogram;
  tokens_moved : Metrics.counter;
  discrepancy : Metrics.gauge;
  load_max : Metrics.gauge;
  load_min : Metrics.gauge;
  load_total : Metrics.gauge;
  phi_gauge : Metrics.gauge;
  phi_prime_gauge : Metrics.gauge;
  mutable last_round_at : float;
}

(* Open-system (workload) handle block, interned per engine label like
   [handles] so the per-round path is pure field updates. *)
type workload_handles = {
  w_arrivals : Metrics.counter;
  w_departures : Metrics.counter;
  w_inflight : Metrics.gauge;
  w_discrepancy : Metrics.gauge;
  w_round_arrivals : Metrics.histogram;
}

type state = {
  registry : Metrics.t;
  every : int;
  timeline : snapshot Timeline.t;
  t0 : float;
  mutable sink : (snapshot -> unit) option;
  engines : (string, handles) Hashtbl.t;
  workloads : (string, workload_handles) Hashtbl.t;
}

let state : state option ref = ref None

let enable ?(registry = Metrics.default) ?(every = 1) ?(timeline_capacity = 4096) () =
  if every < 1 then invalid_arg "Probe.enable: every must be >= 1";
  Metrics.reset ~registry ();
  state :=
    Some
      {
        registry;
        every;
        timeline = Timeline.create ~capacity:timeline_capacity;
        t0 = Unix.gettimeofday ();
        sink = None;
        engines = Hashtbl.create 4;
        workloads = Hashtbl.create 4;
      }

let disable () = state := None
let enabled () = !state <> None

let set_sink f = match !state with None -> () | Some st -> st.sink <- f

let timeline () =
  match !state with None -> [||] | Some st -> Timeline.to_array st.timeline

let timeline_dropped () =
  match !state with None -> 0 | Some st -> Timeline.dropped st.timeline

let handles_of st engine =
  match Hashtbl.find_opt st.engines engine with
  | Some h -> h
  | None ->
    let registry = st.registry in
    let labels = [ ("engine", engine) ] in
    let h =
      {
        rounds =
          Metrics.counter ~registry ~labels ~help:"Balancing rounds executed."
            "lb_rounds_total";
        round_seconds =
          Metrics.histogram ~registry ~labels
            ~help:
              "Wall-clock seconds per round (mean over each snapshot window)."
            "lb_round_seconds";
        tokens_moved =
          Metrics.counter ~registry ~labels
            ~help:"Tokens sent over original (non-self-loop) ports."
            "lb_tokens_moved_total";
        discrepancy =
          Metrics.gauge ~registry ~labels
            ~help:"Current max load minus min load." "lb_discrepancy";
        load_max = Metrics.gauge ~registry ~labels ~help:"Current max load." "lb_load_max";
        load_min = Metrics.gauge ~registry ~labels ~help:"Current min load." "lb_load_min";
        load_total =
          Metrics.gauge ~registry ~labels ~help:"Total tokens in the load vector."
            "lb_load_total";
        phi_gauge =
          Metrics.gauge ~registry ~labels
            ~help:"Potential phi(c) at c = round(mean/d+), sampled every N rounds."
            "lb_potential_phi";
        phi_prime_gauge =
          Metrics.gauge ~registry ~labels
            ~help:"Potential phi'(c) with s=0 at the same height, sampled."
            "lb_potential_phi_prime";
        last_round_at = 0.0;
      }
    in
    Hashtbl.add st.engines engine h;
    h

(* φ/φ′ at the canonical height c = round(x̄ / d⁺): φ counts the tokens
   above c·d⁺, φ′ the gaps below it (Lemma 3.5 / 3.7 with s = 0).
   Recomputed from scratch only on snapshot rounds. *)
let potentials ~d_plus loads =
  let n = Array.length loads in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + loads.(i)
  done;
  let c =
    if n = 0 || d_plus <= 0 then 0
    else
      int_of_float
        (Float.round (float_of_int !total /. float_of_int n /. float_of_int d_plus))
  in
  let height = c * d_plus in
  let phi = ref 0 and phi' = ref 0 in
  for i = 0 to n - 1 do
    let x = loads.(i) in
    if x > height then phi := !phi + (x - height)
    else phi' := !phi' + (height - x)
  done;
  (!total, c, !phi, !phi')

let on_round ~engine ~d_plus ~step ~tokens_moved ~discrepancy ~max_load ~min_load
    ~loads =
  match !state with
  | None -> ()
  | Some st ->
    let h = handles_of st engine in
    Metrics.inc h.rounds 1;
    Metrics.inc h.tokens_moved tokens_moved;
    Metrics.set h.discrepancy (float_of_int discrepancy);
    Metrics.set h.load_max (float_of_int max_load);
    Metrics.set h.load_min (float_of_int min_load);
    if step mod st.every = 0 then begin
      (* Wall-clock only on snapshot rounds: one gettimeofday per window,
         recorded as the mean per-round time across it. *)
      let now = Unix.gettimeofday () in
      if h.last_round_at > 0.0 then
        Metrics.observe h.round_seconds
          ((now -. h.last_round_at) /. float_of_int st.every);
      h.last_round_at <- now;
      let total, c, phi, phi' = potentials ~d_plus loads in
      Metrics.set h.load_total (float_of_int total);
      Metrics.set h.phi_gauge (float_of_int phi);
      Metrics.set h.phi_prime_gauge (float_of_int phi');
      let snap =
        {
          at = now -. st.t0;
          engine;
          step;
          discrepancy;
          max_load;
          min_load;
          total;
          c_threshold = c;
          phi;
          phi_prime = phi';
          tokens_moved = Metrics.counter_value h.tokens_moved;
        }
      in
      Timeline.push st.timeline snap;
      match st.sink with Some f -> f snap | None -> ()
    end

let workload_handles_of st engine =
  match Hashtbl.find_opt st.workloads engine with
  | Some h -> h
  | None ->
    let registry = st.registry in
    let labels = [ ("engine", engine) ] in
    let h =
      {
        w_arrivals =
          Metrics.counter ~registry ~labels
            ~help:"Tokens injected by the arrival process."
            "lb_workload_arrivals_total";
        w_departures =
          Metrics.counter ~registry ~labels
            ~help:"Tokens completed and departed." "lb_workload_departures_total";
        w_inflight =
          Metrics.gauge ~registry ~labels
            ~help:"Tokens currently in the system." "lb_workload_inflight";
        w_discrepancy =
          Metrics.gauge ~registry ~labels
            ~help:"Open-system discrepancy after the balancing step."
            "lb_workload_discrepancy";
        w_round_arrivals =
          Metrics.histogram ~registry ~labels
            ~help:"Arrival batch size per round." "lb_workload_round_arrivals";
      }
    in
    Hashtbl.add st.workloads engine h;
    h

let on_workload ~engine ~round:_ ~arrivals ~departures ~inflight ~discrepancy =
  match !state with
  | None -> ()
  | Some st ->
    let h = workload_handles_of st engine in
    Metrics.inc h.w_arrivals arrivals;
    Metrics.inc h.w_departures departures;
    Metrics.set h.w_inflight (float_of_int inflight);
    Metrics.set h.w_discrepancy (float_of_int discrepancy);
    Metrics.observe h.w_round_arrivals (float_of_int arrivals)

let on_net ~engine ~sent ~tokens ~retransmissions ~dropped ~acks ~duplicates
    ~degraded ~stalled =
  match !state with
  | None -> ()
  | Some st ->
    let registry = st.registry in
    let labels = [ ("engine", engine) ] in
    let setc name help v =
      Metrics.set_counter (Metrics.counter ~registry ~labels ~help name) v
    in
    setc "lb_messages_sent_total" "Distinct protocol messages first-sent." sent;
    setc "lb_message_tokens_total" "Tokens carried by protocol messages." tokens;
    setc "lb_retransmissions_total" "Protocol retransmissions." retransmissions;
    setc "lb_messages_dropped_total" "Transmissions lost in the channel." dropped;
    setc "lb_acks_total" "Acknowledgements sent." acks;
    setc "lb_duplicates_total" "Duplicate data packets discarded." duplicates;
    Metrics.set_counter
      (Metrics.counter ~registry
         ~labels:(("mode", "degraded") :: labels)
         ~help:"Node-rounds balanced on stale information." "lb_stale_rounds_total")
      degraded;
    Metrics.set_counter
      (Metrics.counter ~registry
         ~labels:(("mode", "stalled") :: labels)
         ~help:"Node-rounds skipped past the staleness window." "lb_stale_rounds_total")
      stalled

let on_recovery ~engine ~steps =
  match !state with
  | None -> ()
  | Some st ->
    let registry = st.registry in
    let outcome = match steps with Some _ -> "recovered" | None -> "unrecovered" in
    Metrics.inc
      (Metrics.counter ~registry
         ~labels:[ ("engine", engine); ("outcome", outcome) ]
         ~help:"Fault recovery episodes by outcome." "lb_recovery_episodes_total")
      1;
    match steps with
    | Some k ->
      Metrics.observe
        (Metrics.histogram ~registry
           ~labels:[ ("engine", engine) ]
           ~help:"Steps from fault injection back into the recovery band."
           "lb_recovery_steps")
        (float_of_int k)
    | None -> ()

let on_watchdog ~engine ~checks =
  match !state with
  | None -> ()
  | Some st ->
    Metrics.set_counter
      (Metrics.counter ~registry:st.registry
         ~labels:[ ("engine", engine) ]
         ~help:"Invariant watchdog checks performed." "lb_watchdog_checks_total")
      checks

let on_checkpoint ~bytes ~fsync_seconds =
  match !state with
  | None -> ()
  | Some st ->
    let registry = st.registry in
    Metrics.inc
      (Metrics.counter ~registry ~help:"Checkpoints durably written."
         "lb_checkpoints_total")
      1;
    Metrics.inc
      (Metrics.counter ~registry ~help:"Checkpoint bytes written."
         "lb_checkpoint_bytes_total")
      bytes;
    Metrics.observe
      (Metrics.histogram ~registry
         ~help:"Seconds spent in flush+fsync per checkpoint."
         "lb_checkpoint_fsync_seconds")
      fsync_seconds
