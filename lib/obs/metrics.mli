(** Process-wide metrics registry: counters, gauges, and log-bucketed
    histograms, each optionally labeled.  Registration interns by
    (name, labels), so instrumentation points can re-register freely;
    the returned handle holds the mutable cell directly, making every
    hot-path update ([inc], [set], [observe]) an O(1) field write with
    no lookup.

    The catalogue of metric names the engines emit is in DESIGN.md §10. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry every probe uses unless told otherwise. *)

type counter
type gauge
type histogram

val counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] finds or creates the counter [name] with the given
    labels.  @raise Invalid_argument if the name is already registered
    as a different metric kind, or if the name/label names are not
    valid Prometheus identifiers. *)

val gauge :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Histograms use a fixed ladder of log₂ buckets with upper bounds
    2⁻²⁰ … 2²⁰ (plus +∞), covering sub-microsecond timings and
    million-token counts alike with 41 slots and O(1) insertion. *)

val inc : counter -> int -> unit
(** Add to a counter.  Negative increments are rejected. *)

val set_counter : counter -> int -> unit
(** Set a counter to an absolute cumulative value — for mirroring an
    externally accumulated monotone statistic (e.g. protocol stats).
    The value is clamped to never move backwards. *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      cumulative : (float * int) list;
          (** (upper bound, cumulative count) pairs in increasing bound
              order, ending with (+∞, total). Buckets whose cumulative
              count equals the previous entry are elided. *)
      sum : float;
      count : int;
    }

type sample = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

val snapshot : ?registry:t -> unit -> sample list
(** All registered metrics, sorted by (name, labels) — a deterministic
    order suitable for text exposition. *)

val reset : ?registry:t -> unit -> unit
(** Zero every metric's value; registrations survive. *)
