type 'a t = {
  data : 'a option array;
  mutable next : int; (* slot the next push writes *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Timeline.create: capacity must be >= 1";
  { data = Array.make capacity None; next = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.data
let length t = t.len
let dropped t = t.dropped

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.data.(t.next) <- Some x;
  t.next <- (t.next + 1) mod cap

let to_array t =
  let cap = Array.length t.data in
  let start = (t.next - t.len + cap) mod cap in
  Array.init t.len (fun i ->
      match t.data.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let last t =
  if t.len = 0 then None
  else t.data.((t.next - 1 + Array.length t.data) mod Array.length t.data)

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.next <- 0;
  t.len <- 0;
  t.dropped <- 0
