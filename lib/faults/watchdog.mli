(** Always-on invariant monitor: converts silent state corruption into
    structured diagnostics.

    The balancing engine already enforces per-assignment conservation
    and non-negative sends; the watchdog guards the invariants those
    checks cannot see — global token conservation across fault events,
    load-vector non-negativity for NL schemes (the NL column of
    Table 1), and balancer state staying within its legal range (rotor
    pointers in [0, d⁺)).  A violation names the step, the node and the
    balancer, so a corrupted run fails loudly at the first bad step
    instead of producing quietly wrong discrepancy numbers. *)

type kind =
  | Conservation  (** Σ loads drifted from the ledger-expected total *)
  | Negative_load  (** an NL scheme produced a negative load *)
  | State_range  (** per-node balancer state left its legal range *)

type diagnostic = {
  step : int;
  node : int option;  (** [None] for whole-vector invariants *)
  balancer : string;
  kind : kind;
  detail : string;
}

exception Invariant_violation of diagnostic

val kind_name : kind -> string
val to_string : diagnostic -> string

type t

val create :
  ?state_range:int * int ->
  ?state_sources:(unit -> int array) list ->
  ?extra_mass:(unit -> int) ->
  name:string ->
  never_negative:bool ->
  expected_total:int ->
  unit ->
  t
(** [create ~name ~never_negative ~expected_total ()] builds a monitor
    for a run of balancer [name] whose loads must always sum to the
    expected total.  [state_range] = [(lo, hi)] (exclusive [hi]) plus
    [state_sources] (one state snapshot function per balancer instance,
    e.g. each shard's [Balancer.persist.state_save]) enable the
    state-range check.  [extra_mass] (default: constant 0) reports
    legitimate token mass held outside the load vector — e.g. tokens in
    flight on an unreliable network — which the conservation check adds
    to [Σ loads] before comparing against the ledger. *)

val adjust_expected : t -> int -> unit
(** Record a legitimate change of total mass (fault ledger: shocks add,
    lost-token crashes subtract) so conservation keeps holding. *)

val expected_total : t -> int

val checks : t -> int
(** Number of [check] calls so far. *)

val check : t -> step:int -> loads:int array -> unit
(** Run all enabled invariants.  @raise Invariant_violation on the
    first failure, naming step/node/balancer. *)
