type state_loss = Wipe_state | Keep_state
type token_policy = Lose_tokens | Spill_tokens

type event =
  | Crash of { node : int; state : state_loss; tokens : token_policy }
  | Edge_outage of { node : int; port : int; last_step : int }
  | Load_shock of { node : int; amount : int }

type timed = { step : int; event : event }
type plan = timed list

type spec =
  | Crash_fraction of {
      fraction : float;
      step : int;
      state : state_loss;
      tokens : token_policy;
    }
  | Edge_outage_rate of { rate : float; step : int; duration : int }
  | Shock of { node : int option; amount : int; step : int }

let validate_spec = function
  | Crash_fraction { fraction; step; _ } ->
    if fraction < 0.0 || fraction > 1.0 then
      invalid_arg "Schedule.realize: crash fraction outside [0, 1]";
    if step < 1 then invalid_arg "Schedule.realize: crash step < 1"
  | Edge_outage_rate { rate; step; duration } ->
    if rate < 0.0 || rate > 1.0 then
      invalid_arg "Schedule.realize: outage rate outside [0, 1]";
    if step < 1 then invalid_arg "Schedule.realize: outage step < 1";
    if duration < 1 then invalid_arg "Schedule.realize: outage duration < 1"
  | Shock { amount; step; _ } ->
    if amount < 0 then invalid_arg "Schedule.realize: negative shock amount";
    if step < 1 then invalid_arg "Schedule.realize: shock step < 1"

let realize ~seed ~graph specs =
  List.iter validate_spec specs;
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let rng = Prng.Splitmix.create seed in
  let events =
    List.concat_map
      (fun spec ->
        match spec with
        | Crash_fraction { fraction; step; state; tokens } ->
          let count =
            min n (int_of_float (Float.round (fraction *. float_of_int n)))
          in
          let count = if fraction > 0.0 && count = 0 then 1 else count in
          let nodes = Prng.Sample.sample_without_replacement rng count n in
          Array.sort Int.compare nodes;
          Array.to_list nodes
          |> List.map (fun node -> { step; event = Crash { node; state; tokens } })
        | Edge_outage_rate { rate; step; duration } ->
          (* Draw once per undirected edge (canonical orientation), then
             emit both directed halves so the edge is fully down. *)
          let out = ref [] in
          for u = 0 to n - 1 do
            for k = 0 to d - 1 do
              let v = Graphs.Graph.neighbor graph u k in
              let k' = Graphs.Graph.reverse_port graph u k in
              if (u, k) < (v, k') && Prng.Splitmix.bernoulli rng rate then begin
                let last_step = step + duration - 1 in
                out :=
                  { step; event = Edge_outage { node = v; port = k'; last_step } }
                  :: { step; event = Edge_outage { node = u; port = k; last_step } }
                  :: !out
              end
            done
          done;
          List.rev !out
        | Shock { node; amount; step } ->
          let node =
            match node with
            | Some u ->
              if u < 0 || u >= n then
                invalid_arg "Schedule.realize: shock node out of range";
              u
            | None -> Prng.Splitmix.int rng n
          in
          [ { step; event = Load_shock { node; amount } } ])
      specs
  in
  List.stable_sort (fun a b -> Int.compare a.step b.step) events

(* --- CLI plan syntax --- *)

let spec_to_string = function
  | Crash_fraction { fraction; step; state; tokens } ->
    Printf.sprintf "crash:%g@%d:%s:%s" fraction step
      (match state with Wipe_state -> "wipe" | Keep_state -> "keep")
      (match tokens with Lose_tokens -> "lose" | Spill_tokens -> "spill")
  | Edge_outage_rate { rate; step; duration } ->
    Printf.sprintf "outage:%g@%d+%d" rate step duration
  | Shock { node; amount; step } -> (
    match node with
    | Some u -> Printf.sprintf "shock:%d@%d:node=%d" amount step u
    | None -> Printf.sprintf "shock:%d@%d" amount step)

let event_to_string = function
  | Crash { node; state; tokens } ->
    Printf.sprintf "crash node %d (%s state, %s tokens)" node
      (match state with Wipe_state -> "wipe" | Keep_state -> "keep")
      (match tokens with Lose_tokens -> "lose" | Spill_tokens -> "spill")
  | Edge_outage { node; port; last_step } ->
    Printf.sprintf "edge outage (node %d, port %d) through step %d" node port
      last_step
  | Load_shock { node; amount } ->
    Printf.sprintf "load shock: +%d tokens at node %d" amount node

let parse s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let float_of item x =
    match float_of_string_opt x with
    | Some v -> Ok v
    | None -> err "bad number %S in fault spec %S" x item
  in
  let int_of item x =
    match int_of_string_opt x with
    | Some v -> Ok v
    | None -> err "bad integer %S in fault spec %S" x item
  in
  let at_step item x =
    match String.split_on_char '@' x with
    | [ v; step ] ->
      let* step = int_of item step in
      Ok (v, step)
    | _ -> err "expected VALUE@STEP in fault spec %S" item
  in
  let parse_item item =
    match String.split_on_char ':' item with
    | "crash" :: spec :: flags ->
      let* frac, step = at_step item spec in
      let* fraction = float_of item frac in
      let* state, tokens =
        List.fold_left
          (fun acc flag ->
            let* state, tokens = acc in
            match flag with
            | "wipe" -> Ok (Wipe_state, tokens)
            | "keep" -> Ok (Keep_state, tokens)
            | "lose" -> Ok (state, Lose_tokens)
            | "spill" -> Ok (state, Spill_tokens)
            | f -> err "unknown crash flag %S in %S (wipe|keep|lose|spill)" f item)
          (Ok (Wipe_state, Lose_tokens))
          flags
      in
      Ok (Crash_fraction { fraction; step; state; tokens })
    | [ "outage"; spec ] -> (
      match String.split_on_char '@' spec with
      | [ rate_s; tail ] -> (
        let* rate = float_of item rate_s in
        match String.split_on_char '+' tail with
        | [ step_s; dur_s ] ->
          let* step = int_of item step_s in
          let* duration = int_of item dur_s in
          Ok (Edge_outage_rate { rate; step; duration })
        | _ -> err "outage spec %S needs RATE@STEP+DURATION" item)
      | _ -> err "outage spec %S needs RATE@STEP+DURATION" item)
    | [ "shock"; spec ] ->
      let* amount_s, step = at_step item spec in
      let* amount = int_of item amount_s in
      Ok (Shock { node = None; amount; step })
    | [ "shock"; spec; nodeflag ] -> (
      let* amount_s, step = at_step item spec in
      let* amount = int_of item amount_s in
      match String.split_on_char '=' nodeflag with
      | [ "node"; u ] ->
        let* u = int_of item u in
        Ok (Shock { node = Some u; amount; step })
      | _ -> err "unknown shock flag %S in %S (node=N)" nodeflag item)
    | _ ->
      err "unknown fault spec %S (expected crash:FRAC@STEP[:wipe|keep][:lose|spill], \
           outage:RATE@STEP+DUR or shock:AMOUNT@STEP[:node=N])"
        item
  in
  let items =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  if items = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc item ->
        let* specs = acc in
        let* spec = parse_item item in
        Ok (spec :: specs))
      (Ok []) items
    |> Result.map List.rev

let events_at plan ~step =
  List.filter_map (fun t -> if t.step = step then Some t.event else None) plan

let last_step plan =
  List.fold_left
    (fun acc t ->
      let upper =
        match t.event with Edge_outage { last_step; _ } -> last_step | _ -> t.step
      in
      max acc upper)
    0 plan
