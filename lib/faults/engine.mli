(** Fault-aware engine wrapper: run a balancer under a {!Schedule.plan}
    and measure recovery.

    The wrapper drives the ordinary engines — {!Core.Engine.run}
    sequentially or {!Shard.Shard_engine.run} across domains — through
    their [hook] mechanism: faults scheduled at step [t] are applied to
    the live load vector (and balancer state) between steps [t-1] and
    [t], so the balancing pass of step [t] sees the perturbed
    configuration.  Because both engines are bit-identical for
    deterministic balancers and the fault pass itself is deterministic,
    a fault-injected run is replayable: equal (plan, seed, mode) give
    equal fault events, recovery reports and final loads in both
    sequential and sharded modes.

    Edge outages are realized by a transparent balancer shim that adds
    one hidden self-loop port and, while an outage is active, moves the
    tokens a node assigned to the dead port onto that self-loop — the
    tokens stay put, exactly as if the link dropped the send.  The shim
    is only installed when the plan contains outages, so outage-free
    fault runs use the balancer unmodified.

    Recovery is reported per {e episode} (all events sharing a fault
    step): the discrepancy just before the faults hit ([pre]), just
    after ([shock]), the worst discrepancy seen until recovery, and the
    first step at which the discrepancy returned within [eps] of [pre] —
    the self-stabilization measurement that separates stateless
    (send-floor, cumulative-fair) from stateful (rotor-router) schemes. *)

type mode =
  | Sequential
  | Sharded of { shards : int; strategy : Shard.Partition.strategy }

type episode = {
  step : int;  (** faults applied before this step's balancing pass *)
  events : Schedule.event list;
  pre_discrepancy : int;  (** just before the faults hit *)
  shock_discrepancy : int;  (** just after *)
  worst_discrepancy : int;  (** maximum until recovery (or run end) *)
  recovered_at : int option;
      (** first step with discrepancy ≤ [pre_discrepancy + eps];
          [Some (step - 1)] when the shock never left the band *)
  injected : int;  (** tokens added by this episode's shocks *)
  lost : int;  (** tokens destroyed by lose-token crashes *)
  spilled : int;  (** tokens redistributed by spill-token crashes *)
}

val steps_to_recover : episode -> int option
(** Balancing steps from fault application to recovery: [recovered_at -
    step + 1], or [Some 0] if the shock stayed within the band. *)

type report = {
  result : Core.Engine.result;  (** the underlying engine result *)
  eps : int;
  episodes : episode list;  (** in fault-step order *)
  injected : int;
  lost : int;
  spilled : int;
  initial_total : int;  (** token mass of [init] *)
  final_total : int;
      (** always equals [initial_total + injected - lost] — enforced by
          the watchdog when enabled, recomputed here regardless *)
  watchdog_checks : int;  (** 0 when the watchdog was disabled *)
}

val all_recovered : report -> bool

val report_lines : report -> string list
(** Human-readable recovery report for CLI printing: one line per
    episode (event summary capped), plus the conservation ledger. *)

val run :
  ?mode:mode ->
  ?eps:int ->
  ?watchdog:bool ->
  ?sample_every:int ->
  ?hook:(int -> int array -> unit) ->
  graph:Graphs.Graph.t ->
  make_balancer:(unit -> Core.Balancer.t) ->
  plan:Schedule.plan ->
  init:int array ->
  steps:int ->
  unit ->
  report
(** [run ~graph ~make_balancer ~plan ~init ~steps ()] executes [steps]
    rounds with the plan's faults injected.

    - [mode] (default [Sequential]): which engine executes the rounds.
      [make_balancer] is called once (sequential) or once per shard.
    - [eps] (default: the graph degree d, the paper's O(d) band):
      recovery tolerance relative to the pre-fault discrepancy.
    - [watchdog] (default true): run {!Watchdog.check} after every
      step — conservation against the fault ledger, non-negative loads
      for NL schemes, rotor state in [0, d⁺) for rotor balancers.
    - [hook]: forwarded to the underlying engine (called after the
      watchdog and fault pass of each step).

    @raise Invalid_argument if the plan references steps outside
    [1, steps] or nodes/ports outside the graph, or [eps < 0].
    @raise Watchdog.Invariant_violation on corruption when enabled. *)
