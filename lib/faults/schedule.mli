(** Reproducible fault plans.

    A fault plan is a step-sorted list of concrete fault events — node
    crashes, transient edge outages, load shocks — produced
    deterministically from a compact {!spec} list, a graph and a single
    {!Prng.Splitmix} seed.  Equal (seed, graph, specs) always realize
    the same plan, so every fault-injected run is replayable bit for bit
    (the property the SL column of the paper's Table 1 makes
    interesting: stateless balancers self-stabilize from any perturbed
    configuration, stateful ones must also recover their state).

    Timing convention: an event scheduled at step [t] is applied to the
    configuration {e before} the balancing pass of step [t] runs, i.e.
    between steps [t-1] and [t].  Valid steps are [1 .. horizon]. *)

type state_loss =
  | Wipe_state  (** balancer per-node state at the node is reset to 0 *)
  | Keep_state  (** balancer state survives the crash (warm restart) *)

type token_policy =
  | Lose_tokens  (** the node's tokens vanish (tracked in the ledger) *)
  | Spill_tokens
      (** the node's tokens are redistributed to its neighbors, as
          evenly as the integers allow (ports in order get the
          remainder) — total mass is conserved *)

type event =
  | Crash of { node : int; state : state_loss; tokens : token_policy }
  | Edge_outage of { node : int; port : int; last_step : int }
      (** the directed port [(node, port)] is down through [last_step]
          inclusive: tokens assigned to it stay at [node].  {!realize}
          always emits outages symmetrically (both orientations of an
          undirected edge go down together). *)
  | Load_shock of { node : int; amount : int }
      (** [amount] extra tokens materialize at [node] (an adversarial
          burst, the fault-shaped cousin of {!Core.Dynamic} injections) *)

type timed = { step : int; event : event }

type plan = timed list  (** sorted by [step], ascending *)

type spec =
  | Crash_fraction of {
      fraction : float;  (** of all nodes, sampled without replacement *)
      step : int;
      state : state_loss;
      tokens : token_policy;
    }
  | Edge_outage_rate of {
      rate : float;  (** each undirected edge goes down independently *)
      step : int;
      duration : int;  (** steps the outage lasts, >= 1 *)
    }
  | Shock of {
      node : int option;  (** [None]: a seeded-random node *)
      amount : int;
      step : int;
    }

val realize : seed:int -> graph:Graphs.Graph.t -> spec list -> plan
(** Expand specs into concrete events using one SplitMix64 stream.
    Specs are consumed in list order; the resulting plan is sorted by
    step (stable).  @raise Invalid_argument on malformed specs
    (fractions/rates outside [0, 1], steps < 1, negative amounts or
    durations, out-of-range nodes). *)

val parse : string -> (spec list, string) result
(** Parse the CLI plan syntax: [;]-separated items of the form
    - [crash:FRAC\@STEP[:wipe|keep][:lose|spill]] (defaults wipe, lose)
    - [outage:RATE\@STEP+DURATION]
    - [shock:AMOUNT\@STEP[:node=N]] (default: seeded-random node)

    e.g. ["crash:0.1\@500:keep:spill;outage:0.05\@200+50;shock:1000\@800"]. *)

val spec_to_string : spec -> string
(** Round-trips through {!parse}. *)

val event_to_string : event -> string
(** Human description, used by recovery reports and CLI logging. *)

val events_at : plan -> step:int -> event list
val last_step : plan -> int
(** Largest scheduled step, 0 for the empty plan (outage durations
    count: an outage lasting through step 90 reports at least 90). *)
