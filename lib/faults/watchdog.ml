type kind = Conservation | Negative_load | State_range

type diagnostic = {
  step : int;
  node : int option;
  balancer : string;
  kind : kind;
  detail : string;
}

exception Invariant_violation of diagnostic

let kind_name = function
  | Conservation -> "conservation"
  | Negative_load -> "negative-load"
  | State_range -> "state-range"

let to_string d =
  Printf.sprintf "invariant violation [%s] at step %d%s (balancer %s): %s"
    (kind_name d.kind) d.step
    (match d.node with Some u -> Printf.sprintf ", node %d" u | None -> "")
    d.balancer d.detail

type t = {
  name : string;
  never_negative : bool;
  state_range : (int * int) option;
  state_sources : (unit -> int array) list;
  extra_mass : unit -> int;
  mutable expected : int;
  mutable checks : int;
}

let create ?state_range ?(state_sources = []) ?(extra_mass = fun () -> 0) ~name
    ~never_negative ~expected_total () =
  { name; never_negative; state_range; state_sources; extra_mass;
    expected = expected_total; checks = 0 }

let adjust_expected t delta = t.expected <- t.expected + delta
let expected_total t = t.expected
let checks t = t.checks

let violate t ~step ?node kind detail =
  raise (Invariant_violation { step; node; balancer = t.name; kind; detail })

let check t ~step ~loads =
  t.checks <- t.checks + 1;
  let total = ref 0 in
  let first_negative = ref (-1) in
  Array.iteri
    (fun u x ->
      total := !total + x;
      if x < 0 && !first_negative < 0 then first_negative := u)
    loads;
  let extra = t.extra_mass () in
  if !total + extra <> t.expected then
    violate t ~step Conservation
      (Printf.sprintf "load sum %d%s, ledger expects %d (drift %+d)" !total
         (if extra = 0 then "" else Printf.sprintf " + %d in flight" extra)
         t.expected
         (!total + extra - t.expected));
  if t.never_negative && !first_negative >= 0 then
    violate t ~step ~node:!first_negative Negative_load
      (Printf.sprintf "load %d at an NL scheme's node" loads.(!first_negative));
  match t.state_range with
  | None -> ()
  | Some (lo, hi) ->
    List.iter
      (fun save ->
        let state = save () in
        Array.iteri
          (fun u s ->
            if s < lo || s >= hi then
              violate t ~step ~node:u State_range
                (Printf.sprintf "state %d outside [%d, %d)" s lo hi))
          state)
      t.state_sources
