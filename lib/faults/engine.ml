type mode =
  | Sequential
  | Sharded of { shards : int; strategy : Shard.Partition.strategy }

type episode = {
  step : int;
  events : Schedule.event list;
  pre_discrepancy : int;
  shock_discrepancy : int;
  worst_discrepancy : int;
  recovered_at : int option;
  injected : int;
  lost : int;
  spilled : int;
}

let steps_to_recover e =
  Option.map (fun r -> max 0 (r - e.step + 1)) e.recovered_at

type report = {
  result : Core.Engine.result;
  eps : int;
  episodes : episode list;
  injected : int;
  lost : int;
  spilled : int;
  initial_total : int;
  final_total : int;
  watchdog_checks : int;
}

let all_recovered r = List.for_all (fun e -> e.recovered_at <> None) r.episodes

(* Mutable in-flight view of an episode; frozen into [episode] at the
   end of the run. *)
type tracker = {
  tk_step : int;
  tk_events : Schedule.event list;
  tk_pre : int;
  tk_shock : int;
  mutable tk_worst : int;
  mutable tk_recovered : int option;
  tk_injected : int;
  tk_lost : int;
  tk_spilled : int;
}

let validate_plan ~n ~d ~steps plan =
  List.iter
    (fun { Schedule.step; event } ->
      if step < 1 || step > steps then
        invalid_arg
          (Printf.sprintf "Faults.Engine.run: fault at step %d outside [1, %d]" step
             steps);
      match event with
      | Schedule.Crash { node; _ } | Schedule.Load_shock { node; _ } ->
        if node < 0 || node >= n then
          invalid_arg (Printf.sprintf "Faults.Engine.run: node %d out of range" node)
      | Schedule.Edge_outage { node; port; last_step } ->
        if node < 0 || node >= n then
          invalid_arg (Printf.sprintf "Faults.Engine.run: node %d out of range" node);
        if port < 0 || port >= d then
          invalid_arg (Printf.sprintf "Faults.Engine.run: port %d out of range" port);
        if last_step < step then
          invalid_arg "Faults.Engine.run: outage ends before it starts")
    plan

(* Outage shim: one extra hidden self-loop port; while (node, port) is
   down, tokens assigned to the dead original port stay home on it.
   Transparent otherwise — same name/props/persist, so the sharded
   engine's identical-instance check and checkpoint capability hold. *)
let wrap_outages b ~d ~outage_until =
  let dp_in = Core.Balancer.d_plus b in
  let inner_assign = b.Core.Balancer.assign in
  let assign ~step ~node ~load ~ports =
    ports.(dp_in) <- 0;
    inner_assign ~step ~node ~load ~ports;
    let base = node * d in
    for k = 0 to d - 1 do
      if outage_until.(base + k) >= step && ports.(k) <> 0 then begin
        ports.(dp_in) <- ports.(dp_in) + ports.(k);
        ports.(k) <- 0
      end
    done
  in
  { b with Core.Balancer.self_loops = b.Core.Balancer.self_loops + 1; assign }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run ?(mode = Sequential) ?eps ?(watchdog = true) ?(sample_every = 1) ?hook
    ~graph ~make_balancer ~plan ~init ~steps () =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let adj = Graphs.Graph.adjacency graph in
  if Array.length init <> n then invalid_arg "Faults.Engine.run: init length mismatch";
  validate_plan ~n ~d ~steps plan;
  let eps = match eps with Some e -> e | None -> d in
  if eps < 0 then invalid_arg "Faults.Engine.run: negative eps";
  let has_outages =
    List.exists
      (fun t -> match t.Schedule.event with Schedule.Edge_outage _ -> true | _ -> false)
      plan
  in
  let outage_until = if has_outages then Array.make (n * d) 0 else [||] in
  (* Pre-create every balancer instance the chosen engine will ask for,
     so state wipes and the watchdog can reach them even for faults
     scheduled before the first step. *)
  let instance_count = match mode with Sequential -> 1 | Sharded { shards; _ } -> shards in
  let inner_instances = List.init instance_count (fun _ -> make_balancer ()) in
  let engine_instances =
    if has_outages then List.map (fun b -> wrap_outages b ~d ~outage_until) inner_instances
    else inner_instances
  in
  let b0 =
    match inner_instances with
    | b :: _ -> b
    | [] -> invalid_arg "Faults.Engine.run: no balancer instances"
  in
  let dp_in = Core.Balancer.d_plus b0 in
  let initial_total = Core.Loads.total init in
  let wd =
    if not watchdog then None
    else
      Some
        (Watchdog.create
           ?state_range:
             (if has_prefix ~prefix:"rotor-router" b0.Core.Balancer.name then
                Some (0, dp_in)
              else None)
           ~state_sources:
             (List.filter_map
                (fun b ->
                  Option.map
                    (fun p () -> p.Core.Balancer.state_save ())
                    b.Core.Balancer.persist)
                inner_instances)
           ~name:b0.Core.Balancer.name
           ~never_negative:b0.Core.Balancer.props.Core.Balancer.never_negative
           ~expected_total:initial_total ())
  in
  let injected = ref 0 and lost = ref 0 and spilled = ref 0 in
  let trackers = ref [] in
  let wipe_state node =
    List.iter
      (fun b ->
        match b.Core.Balancer.persist with
        | None -> ()
        | Some p ->
          let s = p.Core.Balancer.state_save () in
          if s.(node) <> 0 then begin
            s.(node) <- 0;
            p.Core.Balancer.state_restore s
          end)
      inner_instances
  in
  let apply_episode ~loads ~step events =
    Obs.Prof.time "faults.episode" @@ fun () ->
    let pre = Core.Loads.discrepancy loads in
    let ep_injected = ref 0 and ep_lost = ref 0 and ep_spilled = ref 0 in
    List.iter
      (fun event ->
        match event with
        | Schedule.Crash { node; state; tokens } ->
          let x = loads.(node) in
          (match tokens with
          | Schedule.Lose_tokens ->
            loads.(node) <- 0;
            ep_lost := !ep_lost + x
          | Schedule.Spill_tokens ->
            (* Spread as evenly as the integers allow; ports in order
               absorb the remainder.  Mass is conserved. *)
            if x > 0 then begin
              let q = x / d and r = x mod d in
              let base = node * d in
              for k = 0 to d - 1 do
                let v = adj.(base + k) in
                loads.(v) <- loads.(v) + q + (if k < r then 1 else 0)
              done;
              loads.(node) <- 0
            end;
            ep_spilled := !ep_spilled + x);
          (match state with
          | Schedule.Wipe_state -> wipe_state node
          | Schedule.Keep_state -> ())
        | Schedule.Edge_outage { node; port; last_step } ->
          let slot = (node * d) + port in
          if outage_until.(slot) < last_step then outage_until.(slot) <- last_step
        | Schedule.Load_shock { node; amount } ->
          loads.(node) <- loads.(node) + amount;
          ep_injected := !ep_injected + amount)
      events;
    injected := !injected + !ep_injected;
    lost := !lost + !ep_lost;
    spilled := !spilled + !ep_spilled;
    (match wd with
    | Some w -> Watchdog.adjust_expected w (!ep_injected - !ep_lost)
    | None -> ());
    let shock = Core.Loads.discrepancy loads in
    let tk =
      {
        tk_step = step;
        tk_events = events;
        tk_pre = pre;
        tk_shock = shock;
        tk_worst = shock;
        tk_recovered = (if shock <= pre + eps then Some (step - 1) else None);
        tk_injected = !ep_injected;
        tk_lost = !ep_lost;
        tk_spilled = !ep_spilled;
      }
    in
    trackers := tk :: !trackers
  in
  let engine_hook t loads =
    (match wd with Some w -> Watchdog.check w ~step:t ~loads | None -> ());
    let open_tks = List.filter (fun tk -> tk.tk_recovered = None) !trackers in
    let events_next = Schedule.events_at plan ~step:(t + 1) in
    if open_tks <> [] || events_next <> [] then begin
      let disc = Core.Loads.discrepancy loads in
      List.iter
        (fun tk ->
          if disc > tk.tk_worst then tk.tk_worst <- disc;
          if disc <= tk.tk_pre + eps then tk.tk_recovered <- Some t)
        open_tks;
      if events_next <> [] then apply_episode ~loads ~step:(t + 1) events_next
    end;
    match hook with Some f -> f t loads | None -> ()
  in
  let cur = Array.copy init in
  (match Schedule.events_at plan ~step:1 with
  | [] -> ()
  | evs -> apply_episode ~loads:cur ~step:1 evs);
  let result =
    match mode with
    | Sequential ->
      let balancer =
        match engine_instances with
        | b :: _ -> b
        | [] -> invalid_arg "Faults.Engine.run: no balancer instances"
      in
      Core.Engine.run ~sample_every ~hook:engine_hook ~graph ~balancer
        ~init:cur ~steps ()
    | Sharded { shards; strategy } ->
      let queue = Queue.create () in
      List.iter (fun b -> Queue.add b queue) engine_instances;
      Shard.Shard_engine.run ~sample_every ~hook:engine_hook ~strategy ~shards
        ~graph
        ~make_balancer:(fun () ->
          match Queue.take_opt queue with
          | Some b -> b
          | None -> invalid_arg "Faults.Engine.run: engine requested extra balancers")
        ~init:cur ~steps ()
  in
  let episodes =
    List.rev_map
      (fun tk ->
        {
          step = tk.tk_step;
          events = tk.tk_events;
          pre_discrepancy = tk.tk_pre;
          shock_discrepancy = tk.tk_shock;
          worst_discrepancy = tk.tk_worst;
          recovered_at = tk.tk_recovered;
          injected = tk.tk_injected;
          lost = tk.tk_lost;
          spilled = tk.tk_spilled;
        })
      !trackers
  in
  let watchdog_checks = match wd with Some w -> Watchdog.checks w | None -> 0 in
  if Obs.Probe.enabled () then begin
    List.iter
      (fun e -> Obs.Probe.on_recovery ~engine:"faults" ~steps:(steps_to_recover e))
      episodes;
    Obs.Probe.on_watchdog ~engine:"faults" ~checks:watchdog_checks
  end;
  {
    result;
    eps;
    episodes;
    injected = !injected;
    lost = !lost;
    spilled = !spilled;
    initial_total;
    final_total = Core.Loads.total result.Core.Engine.final_loads;
    watchdog_checks;
  }

let summarize_events events =
  let crashes = ref 0 and outages = ref 0 and shocks = ref 0 in
  List.iter
    (fun e ->
      match e with
      | Schedule.Crash _ -> incr crashes
      | Schedule.Edge_outage _ -> incr outages
      | Schedule.Load_shock _ -> incr shocks)
    events;
  String.concat ", "
    (List.filter_map
       (fun (count, what) ->
         if count = 0 then None else Some (Printf.sprintf "%d %s" count what))
       [ (!crashes, "crashes"); (!outages, "outages"); (!shocks, "shocks") ])

let report_lines r =
  let episode_line e =
    let events_part =
      if List.length e.events <= 4 then
        String.concat "; " (List.map Schedule.event_to_string e.events)
      else summarize_events e.events
    in
    Printf.sprintf "  step %d: %s — pre %d, shock %d, worst %d, %s" e.step
      events_part e.pre_discrepancy e.shock_discrepancy e.worst_discrepancy
      (match steps_to_recover e with
      | Some 0 -> "never left the band"
      | Some k -> Printf.sprintf "recovered in %d steps" k
      | None -> "NOT RECOVERED within the horizon")
  in
  (Printf.sprintf "fault episodes (recovery band: pre-fault discrepancy + %d):" r.eps
  :: List.map episode_line r.episodes)
  @ [
      Printf.sprintf "ledger:       injected %d, lost %d, spilled %d; total %d → %d%s"
        r.injected r.lost r.spilled r.initial_total r.final_total
        (if r.final_total = r.initial_total + r.injected - r.lost then
           " (conserved)"
         else " (CONSERVATION VIOLATED)");
    ]
  @
  if r.watchdog_checks > 0 then
    [ Printf.sprintf "watchdog:     %d checks, all invariants held" r.watchdog_checks ]
  else []
