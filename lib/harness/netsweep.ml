type point = {
  graph : string;
  algo : string;
  drop : float;
  delay : int;
  backoff : string;
  staleness : int;
  band : int;
  final : int;
  inflation : float;
  retx_overhead : float;
  degraded_rounds : int;
  drain_rounds : int;
  drained : bool;
  conserved : bool;
}

let run_point ~graph_label ~graph ~algo_label ~make_balancer ~self_loops ~drop
    ~delay ~backoff ~staleness ~steps ~seed =
  let n = Graphs.Graph.n graph in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let band = Faultsweep.theorem_band ~graph ~self_loops in
  let config =
    {
      Net.Async_engine.channel = { Net.Channel.reliable with drop; delay };
      protocol = { Net.Protocol.default_config with backoff };
      staleness;
      degrade = true;
      seed;
      max_drain_rounds = 100_000;
    }
  in
  let report =
    Net.Async_engine.run ~config ~graph ~balancer:(make_balancer ()) ~init ~steps ()
  in
  let final = Core.Loads.discrepancy report.Net.Async_engine.result.Core.Engine.final_loads in
  let p = report.Net.Async_engine.protocol_stats in
  {
    graph = graph_label;
    algo = algo_label;
    drop;
    delay;
    backoff = Net.Protocol.backoff_name backoff;
    staleness;
    band;
    final;
    inflation = float_of_int final /. float_of_int (max 1 band);
    retx_overhead =
      (if p.Net.Protocol.messages_sent = 0 then 0.0
       else
         float_of_int p.Net.Protocol.retransmissions
         /. float_of_int p.Net.Protocol.messages_sent);
    degraded_rounds = report.Net.Async_engine.degraded_rounds;
    drain_rounds = report.Net.Async_engine.drain_rounds;
    drained = report.Net.Async_engine.drained;
    conserved = Net.Async_engine.conserved report;
  }

type algo = {
  label : string;
  self_loops : int -> int;
  make : Graphs.Graph.t -> unit -> Core.Balancer.t;
}

let algos =
  [
    {
      label = "rotor-router";
      self_loops = (fun d -> d);
      make = (fun g () -> Core.Rotor_router.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "rotor-router*";
      self_loops = (fun _ -> 1);
      make = (fun g () -> Core.Rotor_router_star.make g);
    };
    {
      label = "quasirandom";
      self_loops = (fun d -> d);
      make =
        (fun g () ->
          fst (Baselines.Quasirandom.make g ~self_loops:(Graphs.Graph.degree g)));
    };
  ]

let sweep ~quick () =
  let graphs =
    if quick then
      [
        ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ], 120);
        ("hypercube(6)", Graphs.Gen.hypercube 6, 80);
        ("rand-reg(64,6)", Graphs.Gen.random_regular (Prng.Splitmix.create 5) ~n:64 ~d:6, 80);
      ]
    else
      [
        ("torus(16x16)", Graphs.Gen.torus [ 16; 16 ], 400);
        ("hypercube(8)", Graphs.Gen.hypercube 8, 160);
        ("rand-reg(256,8)", Graphs.Gen.random_regular (Prng.Splitmix.create 5) ~n:256 ~d:8, 160);
      ]
  in
  let grid =
    if quick then [ (0.1, 0, Net.Protocol.Exponential); (0.1, 2, Net.Protocol.Exponential) ]
    else
      List.concat_map
        (fun drop ->
          List.concat_map
            (fun delay ->
              List.map
                (fun backoff -> (drop, delay, backoff))
                [ Net.Protocol.Fixed; Net.Protocol.Exponential ])
            [ 0; 2 ])
        [ 0.02; 0.1; 0.3 ]
  in
  List.concat_map
    (fun (graph_label, graph, steps) ->
      List.concat_map
        (fun algo ->
          List.map
            (fun (drop, delay, backoff) ->
              run_point ~graph_label ~graph ~algo_label:algo.label
                ~make_balancer:(algo.make graph)
                ~self_loops:(algo.self_loops (Graphs.Graph.degree graph))
                ~drop ~delay ~backoff ~staleness:2 ~steps ~seed:42)
            grid)
        algos)
    graphs

let to_rows points =
  List.map
    (fun p ->
      [
        p.graph;
        p.algo;
        Printf.sprintf "%g" p.drop;
        string_of_int p.delay;
        p.backoff;
        string_of_int p.band;
        string_of_int p.final;
        Printf.sprintf "%.2f" p.inflation;
        Printf.sprintf "%.2f" p.retx_overhead;
        string_of_int p.degraded_rounds;
        string_of_int p.drain_rounds;
        (if p.conserved then "yes" else "NO");
      ])
    points

let print_table points =
  Table.print
    ~align:
      [
        Table.Left; Table.Left; Table.Right; Table.Right; Table.Left; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left;
      ]
    ~header:
      [ "graph"; "algorithm"; "drop"; "delay"; "backoff"; "band"; "final";
        "inflation"; "retx-ovh"; "degraded"; "drain"; "conserved" ]
    ~rows:(to_rows points) ()
