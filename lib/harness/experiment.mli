(** Experiment registry: declarative specifications of graphs,
    algorithms, initial distributions and horizons, with one-call
    execution.  Both the CLI and the benchmark harness drive the system
    through this module, so every reported number is reproducible from a
    printable spec. *)

type graph_spec =
  | Cycle of int
  | Torus2d of int (** side length; n = side² *)
  | Hypercube of int (** dimension; n = 2^r *)
  | Random_regular of { n : int; d : int; seed : int }
  | Complete of int
  | Clique_circulant of { n : int; d : int }

val build_graph : graph_spec -> Graphs.Graph.t
val graph_name : graph_spec -> string

type algo_spec =
  | Rotor_router of { self_loops : int }
  | Rotor_router_star
  | Send_floor of { self_loops : int }
  | Send_round of { self_loops : int }
  | Mimic of { self_loops : int }
  | Random_extra of { self_loops : int; seed : int }
  | Random_rounding of { self_loops : int; seed : int }

val algo_name : algo_spec -> string

val algo_self_loops : algo_spec -> graph_degree:int -> int
(** The d° an algo spec will use on a graph of the given degree
    (resolves Rotor_router_star's implicit d° = d). *)

val build_balancer : algo_spec -> Graphs.Graph.t -> init:int array -> Core.Balancer.t
(** [init] is required because the mimic scheme simulates the continuous
    process from the same start. *)

type init_spec =
  | Point_mass of int (** total tokens, all on node 0 *)
  | Bimodal of { high : int; low : int }
  | Uniform_random of { total : int; seed : int }

val init_name : init_spec -> string
val build_init : init_spec -> n:int -> int array

(** {2 Spec parsing}

    The CLI grammar, shared by every front end (lb_sim, lb_cluster,
    lb_node) so one spec string selects the identical experiment
    everywhere. *)

val graph_of_string : string -> (graph_spec, string) result
(** ["cycle:N"], ["torus:AxA"], ["hypercube:R"], ["complete:N"],
    ["clique:N,D"], ["random:N,D[,SEED]"]. *)

val init_of_string : string -> (init_spec, string) result
(** ["point:TOTAL"], ["bimodal:HIGH,LOW"], ["random:TOTAL[,SEED]"]. *)

val algo_of_string :
  ?self_loops:int -> ?seed:int -> string -> (degree:int -> algo_spec, string) result
(** Algorithm by CLI name ("rotor-router", "send-floor", ...).  The
    result still needs the graph degree because the default d° is
    degree-dependent; [self_loops] overrides it, [seed] (default 1)
    seeds the randomized schemes. *)

type horizon =
  | Fixed_steps of int
  | Mixing_multiple of float
      (** c · ln(n·(K+2)) / µ, the paper's T with explicit constant c *)
  | Continuous_multiple of float
      (** c × the empirical step count at which continuous diffusion
          reaches discrepancy < 1 from the same start *)

val horizon_steps :
  graph:Graphs.Graph.t -> self_loops:int -> init:int array -> horizon -> int
(** Resolve a horizon to a concrete step count (≥ 1).  Spectral gaps are
    memoized per (graph, d°) so sweeps don't re-run power iteration. *)

val spectral_gap : graph:Graphs.Graph.t -> self_loops:int -> float
(** Memoized µ of the balancing graph. *)

type outcome = {
  graph_label : string;
  algo_label : string;
  n : int;
  degree : int;
  self_loops : int;
  gap : float;
  steps : int;                 (** steps actually executed *)
  horizon : int;               (** steps requested *)
  initial_discrepancy : int;
  final_discrepancy : int;
  time_to_target : int option; (** if [target] was given *)
  min_load_seen : int;
  fairness : Core.Fairness.report option;
}

val run :
  ?audit:bool ->
  ?target:int ->
  graph:graph_spec ->
  algo:algo_spec ->
  init:init_spec ->
  horizon:horizon ->
  unit ->
  outcome
(** Build everything from specs and execute one simulation.  [target]
    both records the first hitting time of that discrepancy and, when
    given, lets the run continue to the full horizon (no early stop) so
    the final discrepancy is still meaningful. *)

val run_prepared :
  ?audit:bool ->
  ?target:int ->
  ?stop_early:bool ->
  graph:Graphs.Graph.t ->
  graph_label:string ->
  balancer:Core.Balancer.t ->
  init:int array ->
  steps:int ->
  unit ->
  outcome
(** Same outcome record for callers that built the pieces themselves
    (sweeps that reuse one graph).  [stop_early] (default false) stops
    as soon as [target] is reached. *)
