let num_domains () = max 1 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let domains = match domains with Some d -> max 1 d | None -> num_domains () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let workers = min domains n in
    if workers = 1 then List.map f xs
    else
      (* Replica-level parallelism rides the same domain-pool abstraction
         as the sharded engine (Shard.Pool); workers pull items off an
         atomic cursor so uneven task costs still balance. *)
      Shard.Pool.with_pool ~domains:workers (fun pool ->
          Array.to_list (Shard.Pool.map pool f items))
  end

let replicate ?domains ~seeds f =
  if seeds = [] then invalid_arg "Parallel.replicate: no seeds";
  Series.summarize (Array.of_list (map ?domains f seeds))
