(** Arrival-rate sweep: the open-system stability band (experiment E17).

    Each point runs a (graph, algorithm, λ/capacity ratio) triple
    through {!Openrun} with Poisson arrivals at rate λ = ratio·n·µ and
    a deterministic per-node service rate µ.  Below capacity
    (ratio < 1) the steady-state discrepancy should be bounded near
    the Theorem 2.3 band and monotone in λ — the shape arXiv
    2302.12201 (Theorem 2.3 there) proves for dynamic averaging and
    the 2015 paper's local schemes inherit; above capacity the backlog
    grows linearly and the divergence detector fires. *)

type point = {
  graph : string;
  algo : string;
  ratio : float;  (** λ / (n·µ), the offered-load fraction of capacity *)
  lambda : float;  (** Poisson arrival rate, tokens per round *)
  mu : int;  (** per-node service rate, tokens per node per round *)
  band : int;  (** Theorem 2.3 closed-system band, the reference line *)
  steady_mean : float;  (** post-warm-up mean discrepancy *)
  steady_p95 : float;
  steady_p99 : float;
  inflight_mean : float;  (** post-warm-up mean backlog *)
  overload_p99 : float;  (** p99 of (p99 node load ÷ mean), post-warm-up *)
  throughput : float;  (** completed tokens per round *)
  diverged : bool;
  conserved : bool;
}

val sweep : quick:bool -> unit -> point list
(** Rotor-router and SEND([x/d⁺]) (round) on torus and hypercube,
    ratios spanning both sides of capacity.  [quick] shrinks graphs,
    horizons and the ratio ladder to smoke-test size. *)

val stable_below_capacity : point list -> bool
(** Every under-capacity point kept a bounded steady band (no
    divergence, conserved ledger, finite discrepancy). *)

val divergence_detected : point list -> bool
(** Every over-capacity point tripped the divergence detector. *)

val monotone_in_lambda : point list -> bool
(** Within each (graph, algo) group, the under-capacity steady mean
    does not *decrease* materially as λ grows (tolerant:
    [mean(λ₂) ≥ 0.75·mean(λ₁) − 1.0] for consecutive ratios). *)

val print_table : point list -> unit

val to_rows : point list -> string list list
(** CSV-shaped rows, one per point, in sweep order. *)
