type row = string list

type experiment = {
  id : string;
  reproduces : string;
  run : quick:bool -> row list;
}

let fresh_section id title claim =
  Printf.printf "\n=== %s: %s ===\n%s\n\n" id title claim

let verdict fmt = Printf.ksprintf (fun s -> Printf.printf "\n>> %s\n" s) fmt

let continuous_t graph ~self_loops ~init =
  let finit = Array.map float_of_int init in
  match
    Graphs.Spectral.continuous_balancing_time graph ~self_loops ~init:finit ()
  with
  | Some t -> max 1 t
  | None -> invalid_arg "Suite: continuous process did not converge"

let fmt_f = Table.fmt_float
let stri = string_of_int

(* ------------------------------------------------------------------ *)
(* E1: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

type e1_algo = {
  label : string;
  self_loops : int -> int; (* from graph degree *)
  build : Graphs.Graph.t -> init:int array -> Core.Balancer.t;
}

let e1_algorithms : e1_algo list =
  [
    {
      label = "rotor-router (d°=d)";
      self_loops = (fun d -> d);
      build = (fun g ~init:_ -> Core.Rotor_router.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "rotor-router*";
      self_loops = (fun d -> d);
      build = (fun g ~init:_ -> Core.Rotor_router_star.make g);
    };
    {
      label = "send-floor (d°=d)";
      self_loops = (fun d -> d);
      build = (fun g ~init:_ -> Core.Send_floor.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "send-round (d°=d)";
      self_loops = (fun d -> d);
      build = (fun g ~init:_ -> Core.Send_round.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "send-round (d°=3d)";
      self_loops = (fun d -> 3 * d);
      build =
        (fun g ~init:_ -> Core.Send_round.make g ~self_loops:(3 * Graphs.Graph.degree g));
    };
    {
      label = "mimic [4] (d°=d)";
      self_loops = (fun d -> d);
      build = (fun g ~init -> Baselines.Mimic.make g ~self_loops:(Graphs.Graph.degree g) ~init);
    };
    {
      label = "quasirandom [9] (d°=d)";
      self_loops = (fun d -> d);
      build =
        (fun g ~init:_ ->
          fst (Baselines.Quasirandom.make g ~self_loops:(Graphs.Graph.degree g)));
    };
    {
      label = "random-extra [5] (d°=d)";
      self_loops = (fun d -> d);
      build =
        (fun g ~init:_ ->
          Baselines.Random_extra.make (Prng.Splitmix.create 101) g
            ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "random-rounding [18] (d°=d)";
      self_loops = (fun d -> d);
      build =
        (fun g ~init:_ ->
          Baselines.Random_rounding.make (Prng.Splitmix.create 102) g
            ~self_loops:(Graphs.Graph.degree g));
    };
  ]

let e1_graphs ~quick =
  if quick then
    [ ("cycle(32)", Graphs.Gen.cycle 32); ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ]) ]
  else
    [
      ("cycle(128)", Graphs.Gen.cycle 128);
      ("torus(16x16)", Graphs.Gen.torus [ 16; 16 ]);
      ("hypercube(8)", Graphs.Gen.hypercube 8);
      ("random-6-reg(256)", Graphs.Gen.random_regular (Prng.Splitmix.create 77) ~n:256 ~d:6);
    ]

let thm23_bound ~delta ~d ~n ~gap =
  (* (δ+1) · d · min(√(log n / µ), √n) — Theorem 2.3 (i)+(ii). *)
  float_of_int ((delta + 1) * d)
  *. min (sqrt (log (float_of_int n) /. gap)) (sqrt (float_of_int n))

let run_e1 ~quick =
  fresh_section "E1" "Table 1 — discrepancy after T, time to O(d), and properties"
    "Paper: cumulatively fair balancers reach O((δ+1)·d·min{√(log n/µ),√n}) after\n\
     T; good s-balancers additionally reach O(d) given more time; the mimic\n\
     scheme of [4] reaches Θ(d) but risks negative load; randomized baselines\n\
     land in between.  T below is the measured continuous balancing time.";
  let csv = ref [] in
  List.iter
    (fun (glabel, g) ->
      let n = Graphs.Graph.n g in
      let d = Graphs.Graph.degree g in
      let init = Core.Loads.point_mass ~n ~total:(8 * n) in
      let od_target = 4 * d in
      Printf.printf "-- %s (n=%d, d=%d, K=%d, O(d) band = %d) --\n" glabel n d
        (Core.Loads.discrepancy init) od_target;
      let rows = ref [] in
      List.iter
        (fun a ->
          let self_loops = a.self_loops d in
          let gap = Experiment.spectral_gap ~graph:g ~self_loops in
          let t = continuous_t g ~self_loops ~init in
          let balancer = a.build g ~init in
          let after_t =
            Core.Engine.run ~audit:true ~graph:g ~balancer ~init ~steps:t ()
          in
          let disc_t = Core.Loads.discrepancy after_t.Core.Engine.final_loads in
          let balancer2 = a.build g ~init in
          let hunt =
            Core.Engine.run ~stop_at_discrepancy:od_target ~graph:g ~balancer:balancer2
              ~init ~steps:(12 * t) ()
          in
          let rep =
            match after_t.Core.Engine.fairness with
            | Some rep -> rep
            | None ->
              invalid_arg "Suite: audited run produced no fairness report"
          in
          let bound = thm23_bound ~delta:rep.Core.Fairness.cumulative_delta ~d ~n ~gap in
          let neg = if after_t.Core.Engine.min_load_seen < 0 then "yes" else "no" in
          let row =
            [
              a.label;
              stri t;
              stri disc_t;
              fmt_f ~decimals:1 bound;
              Table.fmt_opt_int hunt.Core.Engine.reached_target;
              stri rep.Core.Fairness.cumulative_delta;
              (match rep.Core.Fairness.self_pref_s with
              | None -> "∞"
              | Some s -> stri s);
              neg;
            ]
          in
          rows := row :: !rows;
          csv := ([ "E1"; glabel ] @ row) :: !csv)
        e1_algorithms;
      Table.print
        ~align:
          [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right; Table.Left ]
        ~header:
          [ "algorithm"; "T"; "disc@T"; "Thm2.3 bound"; "t(disc≤4d)"; "δ_emp"; "s_emp";
            "neg load" ]
        ~rows:(List.rev !rows) ();
      print_newline ())
    (e1_graphs ~quick);
  (* Property columns of Table 1. *)
  Printf.printf "-- Table 1 property columns (D/SL/NL/NC) --\n";
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:64 in
  let prop_rows =
    List.map
      (fun a ->
        let b = a.build g ~init in
        let p = b.Core.Balancer.props in
        let mark x = if x then "✓" else "✗" in
        [
          a.label;
          mark p.Core.Balancer.deterministic;
          mark p.Core.Balancer.stateless;
          mark p.Core.Balancer.never_negative;
          mark p.Core.Balancer.no_communication;
        ])
      e1_algorithms
  in
  Table.print ~header:[ "algorithm"; "D"; "SL"; "NL"; "NC" ] ~rows:prop_rows ();
  verdict
    "Deterministic cumulatively-fair schemes beat the O(d·log n/µ) class of [17] \
     after T; good s-balancers and the mimic [4] reach the O(d) band, matching \
     Table 1's ordering.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E2 / E3: Theorem 2.3 scaling                                        *)
(* ------------------------------------------------------------------ *)

let run_e2 ~quick =
  fresh_section "E2" "Theorem 2.3(i) — expanders: discrepancy after T vs n"
    "Paper: cumulatively fair balancers reach O(d·√(log n/µ)) after T on any\n\
     d-regular graph — on expanders (µ = Θ(1)) that is O(√log n), beating the\n\
     Θ(log n) of the round-fair class of [17].";
  let ns = if quick then [ 32; 64; 128 ] else [ 64; 128; 256; 512; 1024 ] in
  let d = 6 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let csv = ref [] in
  let rows =
    List.map
      (fun n ->
        (* Replicate over independent random graphs to separate the
           claim from one graph draw. *)
        let measure seed =
          let g = Graphs.Gen.random_regular (Prng.Splitmix.create ((1000 * seed) + n)) ~n ~d in
          let init = Core.Loads.point_mass ~n ~total:(8 * n) in
          let gap = Experiment.spectral_gap ~graph:g ~self_loops:d in
          let t = continuous_t g ~self_loops:d ~init in
          let balancer = Core.Rotor_router.make g ~self_loops:d in
          let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:t () in
          (Core.Loads.discrepancy r.Core.Engine.final_loads, gap, t)
        in
        let results = List.map measure seeds in
        let discs = Array.of_list (List.map (fun (x, _, _) -> float_of_int x) results) in
        let summary = Series.summarize discs in
        let gap =
          Stats.mean (Array.of_list (List.map (fun (_, g, _) -> g) results))
        in
        let t = List.fold_left (fun acc (_, _, t) -> max acc t) 0 results in
        let ours = thm23_bound ~delta:1 ~d ~n ~gap in
        let rabani = float_of_int d *. log (float_of_int n) /. gap in
        let row =
          [
            stri n; fmt_f ~decimals:4 gap; stri t;
            Printf.sprintf "%.1f ±%.1f" summary.Series.mean summary.Series.stddev;
            fmt_f ~decimals:1 ours; fmt_f ~decimals:1 rabani;
          ]
        in
        csv := ([ "E2" ] @ row) :: !csv;
        (float_of_int n, max summary.Series.mean 1.0, row))
      ns
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "n"; "µ"; "T"; "disc@T (mean ±sd)"; "Thm2.3(i) d√(logn/µ)"; "[17] d·logn/µ" ]
    ~rows:(List.map (fun (_, _, r) -> r) rows) ();
  let pts = Array.of_list (List.map (fun (x, y, _) -> (x, y)) rows) in
  let expo, _ = Stats.power_law_fit pts in
  verdict
    "Measured discrepancy grows like n^%.2f — far below the Θ(log n) of [17] and \
     consistent with the O(√log n) claim (a √log n curve fits exponent ≈ 0.1)."
    expo;
  List.rev !csv

let run_e3 ~quick =
  fresh_section "E3" "Theorem 2.3(ii) — cycles: discrepancy after T vs n"
    "Paper: on graphs with poor expansion the min kicks in at O(d·√n); for the\n\
     cycle the [17]-style bound d·log n/µ would be Θ(n²·log n) — vacuous — while\n\
     cumulatively fair balancers stay at O(√n).";
  let ns = if quick then [ 16; 32; 64 ] else [ 32; 64; 128; 256; 512 ] in
  let csv = ref [] in
  let all_pts = ref [] in
  let rows =
    List.map
      (fun n ->
        let g = Graphs.Gen.cycle n in
        let d = 2 in
        let init = Core.Loads.point_mass ~n ~total:(8 * n) in
        let t = continuous_t g ~self_loops:d ~init in
        let disc_of balancer =
          let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:t () in
          Core.Loads.discrepancy r.Core.Engine.final_loads
        in
        let rr = disc_of (Core.Rotor_router.make g ~self_loops:d) in
        let sf = disc_of (Core.Send_floor.make g ~self_loops:d) in
        let bound = 2.0 *. float_of_int d *. sqrt (float_of_int n) in
        all_pts := (float_of_int n, float_of_int (max rr 1)) :: !all_pts;
        let row = [ stri n; stri t; stri rr; stri sf; fmt_f ~decimals:1 bound ] in
        csv := ([ "E3" ] @ row) :: !csv;
        row)
      ns
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "n"; "T"; "rotor-router"; "send-floor"; "2d√n" ]
    ~rows ();
  let expo, _ = Stats.power_law_fit (Array.of_list (List.rev !all_pts)) in
  verdict
    "Rotor-router discrepancy on the cycle grows like n^%.2f — the √n shape of \
     Theorem 2.3(ii) (exponent ≈ 0.5), nowhere near the linear-in-n trivial bound."
    expo;
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E4: Theorem 3.3 — time to O(d) vs s                                 *)
(* ------------------------------------------------------------------ *)

let run_e4 ~quick =
  fresh_section "E4" "Theorem 3.3 — time to reach the O(d) band vs self-preference s"
    "Paper: good s-balancers reach O(d) discrepancy in O(T + (d/s)·log²n/µ);\n\
     larger s (more self-loops for SEND([x/d⁺])) means faster entry into the\n\
     O(d) band.  ROTOR-ROUTER* is the s = 1 member.";
  let side = if quick then 8 else 16 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = 4 in
  let init = Core.Loads.point_mass ~n ~total:(32 * n) in
  let csv = ref [] in
  (* The O(d) band of Theorem 3.3 scales with the balancing degree —
     the quantization floor of SEND([x/d⁺]) is d⁺-grained — so each
     variant hunts its own d⁺ target. *)
  let variants =
    [
      ("send-round d°=d   (s=0)", fun () -> Core.Send_round.make g ~self_loops:d);
      ("send-round d°=2d  (s=2)", fun () -> Core.Send_round.make g ~self_loops:(2 * d));
      ("send-round d°=3d  (s=4)", fun () -> Core.Send_round.make g ~self_loops:(3 * d));
      ("send-round d°=4d  (s=6)", fun () -> Core.Send_round.make g ~self_loops:(4 * d));
      ("rotor-router*     (s=1)", fun () -> Core.Rotor_router_star.make g);
      ("rotor-router d°=d (cum-fair only)", fun () -> Core.Rotor_router.make g ~self_loops:d);
    ]
  in
  let rows =
    List.map
      (fun (label, mk) ->
        let balancer = mk () in
        let self_loops = balancer.Core.Balancer.self_loops in
        let target = d + self_loops in
        let t = continuous_t g ~self_loops ~init in
        let cap = 60 * t in
        let r =
          Core.Engine.run ~stop_at_discrepancy:target ~graph:g ~balancer ~init
            ~steps:cap ()
        in
        let row =
          [
            label; stri self_loops; stri target; stri t;
            Table.fmt_opt_int r.Core.Engine.reached_target;
            (match r.Core.Engine.reached_target with
            | Some tt -> fmt_f ~decimals:2 (float_of_int tt /. float_of_int t)
            | None -> "-");
          ]
        in
        csv := ([ "E4" ] @ row) :: !csv;
        row)
      variants
  in
  Table.print
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "algorithm"; "d°"; "target d⁺"; "T"; "t(disc≤d⁺)"; "t/T" ]
    ~rows ();
  verdict
    "Every good s-balancer enters its O(d) band shortly after T; within a fixed \
     d° the time shrinks as s grows — the O(T + (d/s)·log²n/µ) trade-off of \
     Theorem 3.3.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E5–E7: lower bounds                                                 *)
(* ------------------------------------------------------------------ *)

let run_e5 ~quick =
  fresh_section "E5" "Theorem 4.1 — round-fair but not cumulatively fair: Ω(d·diam)"
    "Paper: there is a round-fair balancer (flows min(b(v1),b(v2)) along each\n\
     edge) in steady state with discrepancy Ω(d·diam(G)) forever.  The same\n\
     graphs balance to O(√n) under the cumulatively fair rotor-router.";
  let graphs =
    if quick then [ ("cycle(16)", Graphs.Gen.cycle 16) ]
    else
      [
        ("cycle(32)", Graphs.Gen.cycle 32);
        ("cycle(64)", Graphs.Gen.cycle 64);
        ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ]);
      ]
  in
  let csv = ref [] in
  let rows =
    List.map
      (fun (label, g) ->
        let d = Graphs.Graph.degree g in
        let diam = Graphs.Props.diameter g in
        let balancer, init = Baselines.Adversary_roundfair.make g in
        let steps = 2000 in
        let r = Core.Engine.run ~graph:g ~balancer ~init ~steps () in
        let frozen = r.Core.Engine.final_loads = init in
        let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
        (* Contrast: rotor-router from the same initial loads. *)
        let rr = Core.Rotor_router.make g ~self_loops:d in
        let t = continuous_t g ~self_loops:d ~init in
        let r2 = Core.Engine.run ~graph:g ~balancer:rr ~init ~steps:t () in
        let rr_disc = Core.Loads.discrepancy r2.Core.Engine.final_loads in
        let row =
          [
            label; stri d; stri diam; stri disc; stri (d * diam);
            (if frozen then "yes" else "NO"); stri rr_disc;
          ]
        in
        csv := ([ "E5" ] @ row) :: !csv;
        row)
      graphs
  in
  Table.print
    ~align:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left;
        Table.Right ]
    ~header:
      [ "graph"; "d"; "diam"; "adversary disc (forever)"; "d·diam"; "frozen?";
        "rotor-router disc@T" ]
    ~rows ();
  verdict
    "The round-fair adversary is a fixed point at Θ(d·diam) while the \
     cumulatively fair rotor-router balances the same instance — cumulative \
     fairness cannot be dropped from Theorem 2.3.";
  List.rev !csv

let run_e6 ~quick =
  fresh_section "E6" "Theorem 4.2 — stateless algorithms: Ω(d)"
    "Paper: for every deterministic stateless algorithm there is a d-regular\n\
     graph (clique-circulant) and an initial load on which nothing ever moves\n\
     off the clique — discrepancy ≥ c·d forever, so Theorem 3.3's O(d) is tight\n\
     for the (stateless-containing) class of good s-balancers.";
  let ds = if quick then [ 6; 8 ] else [ 6; 8; 12; 16; 24 ] in
  let csv = ref [] in
  let rows =
    List.map
      (fun d ->
        let n = 4 * d in
        let g = Baselines.Adversary_stateless.graph ~n ~d in
        let balancer, init = Baselines.Adversary_stateless.make g ~d in
        let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:1000 () in
        let frozen = r.Core.Engine.final_loads = init in
        let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
        let row =
          [
            stri n; stri d; stri (Baselines.Adversary_stateless.clique_size ~d);
            stri disc; (if frozen then "yes" else "NO");
          ]
        in
        csv := ([ "E6" ] @ row) :: !csv;
        row)
      ds
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "n"; "d"; "|C|"; "discrepancy (forever)"; "frozen?" ]
    ~rows ();
  verdict "Frozen at ⌊d/2⌋−1 = Θ(d) on every instance: stateless schemes cannot beat Ω(d).";
  List.rev !csv

let run_e7 ~quick =
  fresh_section "E7" "Theorem 4.3 — rotor-router with d⁺ = d on odd cycles: Ω(d·φ(G))"
    "Paper: without self-loops the rotor-router admits a period-2 configuration\n\
     with node u₀ alternating between (L±φ)d — discrepancy ≈ 2dφ(G) = Θ(n) on\n\
     the odd cycle, forever.  Self-loops are not cosmetic.";
  let ns = if quick then [ 9; 17 ] else [ 9; 33; 65; 129; 257 ] in
  let csv = ref [] in
  let rows =
    List.map
      (fun n ->
        let phi = (n - 1) / 2 in
        let balancer, init = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n in
        let g = Baselines.Odd_cycle_adversary.graph ~n in
        let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:2000 () in
        let periodic = r.Core.Engine.final_loads = init in
        let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
        let amp = Baselines.Odd_cycle_adversary.expected_amplitude ~n in
        let row =
          [
            stri n; stri phi; stri disc; stri amp;
            (if periodic then "yes" else "NO");
          ]
        in
        csv := ([ "E7" ] @ row) :: !csv;
        row)
      ns
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "n"; "φ(G)"; "discrepancy"; "2dφ (peak-to-peak)"; "period 2?" ]
    ~rows ();
  verdict
    "The oscillation never decays: discrepancy stays Θ(n) on odd cycles without \
     self-loops, versus O(√n) with d° = d (E3).";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E8: potential traces                                                *)
(* ------------------------------------------------------------------ *)

let run_e8 ~quick =
  fresh_section "E8" "Lemmas 3.5/3.7 — monotone potential drop for good s-balancers"
    "Paper: for good s-balancers, φ_t(c) = Σ_v max{x_t(v) − c·d⁺, 0} never\n\
     increases and drops whenever a tall node dips below the c·d⁺ threshold;\n\
     φ′_t(c) is the symmetric gap potential.  Traces below are from a live run.";
  let side = if quick then 6 else 8 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = 4 in
  let d0 = 3 * d in
  let dp = d + d0 in
  let init = Core.Loads.point_mass ~n ~total:(40 * n) in
  let balancer = Core.Send_round.make g ~self_loops:d0 in
  let t = continuous_t g ~self_loops:d0 ~init in
  let steps = 4 * t in
  let avg = Core.Loads.average init in
  let c_mid = int_of_float (avg /. float_of_int dp) + 1 in
  let cs = [ c_mid; c_mid + 2; c_mid + 8 ] in
  let hook, finish = Core.Potential.tracker ~d_plus:dp ~s:4 ~cs () in
  hook 0 init;
  ignore (Core.Engine.run ~hook ~graph:g ~balancer ~init ~steps ());
  let phis, phis' = finish () in
  let checkpoints =
    List.sort_uniq Int.compare
      [ 0; steps / 8; steps / 4; steps / 2; (3 * steps) / 4; steps ]
  in
  let value_at trace t0 =
    let best = ref 0 in
    Array.iter (fun (tt, v) -> if tt <= t0 then best := v) trace.Core.Potential.values;
    !best
  in
  let csv = ref [] in
  let rows =
    List.map
      (fun t0 ->
        let cells =
          List.concat_map
            (fun (tr, tr') -> [ stri (value_at tr t0); stri (value_at tr' t0) ])
            (List.combine phis phis')
        in
        let row = stri t0 :: cells in
        csv := ([ "E8" ] @ row) :: !csv;
        row)
      checkpoints
  in
  let header =
    "step"
    :: List.concat_map
         (fun c -> [ Printf.sprintf "φ(c=%d)" c; Printf.sprintf "φ'(c=%d)" c ])
         cs
  in
  Table.print ~align:(List.init (List.length header) (fun _ -> Table.Right)) ~header ~rows ();
  let monotone trace =
    let ok = ref true and prev = ref max_int in
    Array.iter
      (fun (_, v) ->
        if v > !prev then ok := false;
        prev := v)
      trace.Core.Potential.values;
    !ok
  in
  let all_monotone = List.for_all monotone phis && List.for_all monotone phis' in
  verdict "All traced potentials are monotone non-increasing: %s (Lemmas 3.5/3.7)."
    (if all_monotone then "yes" else "VIOLATION");
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E9: self-loop ablation                                              *)
(* ------------------------------------------------------------------ *)

let run_e9 ~quick =
  fresh_section "E9" "Ablation — how many self-loops does the rotor-router need?"
    "Paper (conclusion, open question 1): the analysis requires d° ≥ d and\n\
     Theorem 4.3 shows d° = 0 fails on odd cycles; what happens in between is\n\
     open.  We sweep d° on an even cycle (bipartite: d° = 0 oscillates by\n\
     parity) and an expander.";
  let csv = ref [] in
  let run_one glabel g d0s =
    let n = Graphs.Graph.n g in
    let d = Graphs.Graph.degree g in
    let init = Core.Loads.point_mass ~n ~total:(8 * n) in
    (* Fixed horizon from the d° = d configuration so rows are comparable. *)
    let t_ref = continuous_t g ~self_loops:d ~init in
    let steps = 3 * t_ref in
    let rows =
      List.map
        (fun d0 ->
          let balancer = Core.Rotor_router.make g ~self_loops:d0 in
          let r = Core.Engine.run ~graph:g ~balancer ~init ~steps () in
          let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
          let row = [ glabel; stri d0; stri steps; stri disc ] in
          csv := ([ "E9" ] @ row) :: !csv;
          row)
        d0s
    in
    rows
  in
  let cycle_n = if quick then 32 else 64 in
  let exp_n = if quick then 64 else 128 in
  let rows =
    run_one (Printf.sprintf "cycle(%d)" cycle_n) (Graphs.Gen.cycle cycle_n) [ 0; 1; 2; 4 ]
    @ run_one
        (Printf.sprintf "random-6-reg(%d)" exp_n)
        (Graphs.Gen.random_regular (Prng.Splitmix.create 55) ~n:exp_n ~d:6)
        [ 0; 1; 3; 6; 12 ]
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~header:[ "graph"; "d°"; "steps"; "discrepancy" ]
    ~rows ();
  verdict
    "d° = 0 leaves a large parity residue on the bipartite cycle; a single \
     self-loop already restores convergence, and d° ≥ d matches the theorems.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E10: dimension exchange                                             *)
(* ------------------------------------------------------------------ *)

let run_e10 ~quick =
  fresh_section "E10" "Contrast — dimension exchange reaches O(1) (§1.2)"
    "Paper (related work): in the matching model, nodes balance with one\n\
     neighbor per round and constant discrepancy is achievable — while every\n\
     diffusive stateless algorithm faces the Ω(d) of Theorem 4.2.";
  let graphs =
    if quick then [ ("hypercube(5)", Graphs.Gen.hypercube 5) ]
    else
      [
        ("hypercube(8)", Graphs.Gen.hypercube 8);
        ("torus(16x16)", Graphs.Gen.torus [ 16; 16 ]);
      ]
  in
  let csv = ref [] in
  let rows =
    List.concat_map
      (fun (glabel, g) ->
        let n = Graphs.Graph.n g in
        let init = Core.Loads.point_mass ~n ~total:(100 * n) in
        let modes =
          [
            ("balancing circuit (deterministic)", Baselines.Dimexch.Balancing_circuit);
            ( "balancing circuit (randomized [10])",
              Baselines.Dimexch.Balancing_circuit_randomized (Prng.Splitmix.create 8) );
            ("random matching", Baselines.Dimexch.Random_matching (Prng.Splitmix.create 9));
          ]
        in
        List.map
          (fun (mlabel, mode) ->
            let r =
              Baselines.Dimexch.run ~stop_at_discrepancy:2 mode g ~init ~steps:100_000
            in
            let disc = Core.Loads.discrepancy r.Baselines.Dimexch.final_loads in
            let row =
              [
                glabel; mlabel; Table.fmt_opt_int r.Baselines.Dimexch.reached_target;
                stri disc;
              ]
            in
            csv := ([ "E10" ] @ row) :: !csv;
            row)
          modes)
      graphs
  in
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Right ]
    ~header:[ "graph"; "mode"; "t(disc≤2)"; "final disc" ]
    ~rows ();
  verdict
    "Matching-model balancers land at ≤ 2 tokens of spread — the diffusive Ω(d) \
     barrier is a property of all-neighbors-at-once balancing, as the paper notes.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E11: irregular graphs                                               *)
(* ------------------------------------------------------------------ *)

let run_e11 ~quick =
  fresh_section "E11" "Extension — non-regular graphs (equalized capacity)"
    "Paper (§1.1): \"our results can be extended to non-regular graphs\".  The\n\
     reduction gives every node D = 2·max-degree ports (originals + self-loops);\n\
     the walk matrix is doubly stochastic, so the flat vector is the fixed point\n\
     and the same algorithms apply verbatim.";
  let size = if quick then 24 else 64 in
  let scenarios =
    [
      (Printf.sprintf "star(%d)" size, Irregular.Igraph.star size);
      (Printf.sprintf "wheel(%d)" size, Irregular.Igraph.wheel size);
      ( "barbell(8,8)",
        Irregular.Igraph.barbell ~clique:8 ~path:8 );
      ( Printf.sprintf "random-irregular(%d)" size,
        Irregular.Igraph.random_connected (Prng.Splitmix.create 12) ~n:size
          ~extra_edges:(size / 2) );
    ]
  in
  let csv = ref [] in
  let rows =
    List.concat_map
      (fun (label, g) ->
        let n = Irregular.Igraph.n g in
        let capacity = 2 * Irregular.Igraph.max_degree g in
        let gap = Irregular.Ispectral.eigenvalue_gap g ~capacity in
        let total = 64 * n in
        let init = Array.make n 0 in
        init.(0) <- total;
        let steps =
          Irregular.Ispectral.horizon ~gap ~n ~initial_discrepancy:total ~c:4.0
        in
        List.map
          (fun (alabel, balancer) ->
            let r = Irregular.Iengine.run ~graph:g ~balancer ~init ~steps () in
            let hi = Array.fold_left max min_int r.Irregular.Iengine.final_loads in
            let lo = Array.fold_left min max_int r.Irregular.Iengine.final_loads in
            let row =
              [
                label; alabel; stri capacity; fmt_f ~decimals:5 gap; stri steps;
                stri (hi - lo);
              ]
            in
            csv := ([ "E11" ] @ row) :: !csv;
            row)
          [
            ("rotor-router", Irregular.Ibalancer.rotor_router g ~capacity);
            ("send-round", Irregular.Ibalancer.send_round g ~capacity);
          ])
      scenarios
  in
  Table.print
    ~align:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "topology"; "algorithm"; "D"; "µ"; "T"; "disc@T" ]
    ~rows ();
  verdict
    "Degree skew changes µ (hence T) but not correctness: every irregular \
     topology balances to O(D) under the unmodified algorithms.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E12: rotor-walk cover times                                         *)
(* ------------------------------------------------------------------ *)

let run_e12 ~quick =
  fresh_section "E12" "Related work — rotor-walk cover times (§1.2)"
    "Paper (§1.2): the ROTOR-ROUTER balancer is the multi-agent view of the\n\
     rotor-router walk, whose cover time is universally ≤ 2·m·diam (Yanovski et\n\
     al.) — compared against random-walk cover times here.";
  let graphs =
    if quick then
      [ ("cycle(33)", Graphs.Gen.cycle 33); ("torus(5x5)", Graphs.Gen.torus [ 5; 5 ]) ]
    else
      [
        ("cycle(129)", Graphs.Gen.cycle 129);
        ("torus(12x12)", Graphs.Gen.torus [ 12; 12 ]);
        ("hypercube(7)", Graphs.Gen.hypercube 7);
        ( "random-4-reg(128)",
          Graphs.Gen.random_regular (Prng.Splitmix.create 21) ~n:128 ~d:4 );
      ]
  in
  let csv = ref [] in
  let rows =
    List.map
      (fun (label, g) ->
        let w = Rotorwalk.Walk.create g in
        let rotor_cover =
          match Rotorwalk.Walk.cover_time w ~start:0 with
          | Some t -> t
          | None -> -1
        in
        let rng = Prng.Splitmix.create 77 in
        let random_cover =
          match Rotorwalk.Walk.random_cover_time rng g ~start:0 with
          | Some t -> t
          | None -> -1
        in
        let bound = Rotorwalk.Walk.yanovski_bound g in
        let row =
          [
            label; stri rotor_cover; stri random_cover; stri bound;
            fmt_f ~decimals:2 (float_of_int rotor_cover /. float_of_int bound);
          ]
        in
        csv := ([ "E12" ] @ row) :: !csv;
        row)
      graphs
  in
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~header:[ "graph"; "rotor cover"; "random cover"; "2m·diam"; "rotor/bound" ]
    ~rows ();
  verdict
    "Every rotor cover lands under the universal 2·m·diam bound — the \
     derandomization property that powers the balancer's determinism.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E13: heterogeneous extensions                                       *)
(* ------------------------------------------------------------------ *)

let run_e13 ~quick =
  fresh_section "E13" "Extensions — weighted tokens [1,4] and machine speeds [2]"
    "Paper (intro): the [17] framework has been extended to non-uniform tokens\n\
     and non-uniform machines.  Left: weighted rotor-router — unit-token bounds\n\
     transfer with a w_max factor.  Right: height diffusion with speeds — load\n\
     settles proportionally to speed.";
  let side = if quick then 6 else 10 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = 4 in
  let csv = ref [] in
  (* Weighted tokens. *)
  let gap = Experiment.spectral_gap ~graph:g ~self_loops:d in
  let wrows =
    List.map
      (fun wmax ->
        let rng = Prng.Splitmix.create (100 + wmax) in
        let scatter =
          Hetero.Wtokens.uniform_random rng ~n ~tokens:(32 * n) ~max_weight:wmax
        in
        let all =
          Array.of_list
            (List.concat_map Array.to_list (Array.to_list scatter))
        in
        let init = Hetero.Wtokens.point_mass ~n ~weights:all in
        let steps =
          Graphs.Spectral.horizon ~gap ~n
            ~initial_discrepancy:(Hetero.Wtokens.total_weight init) ~c:4.0
        in
        let r =
          Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:g ~self_loops:d ~init
            ~steps
        in
        let disc = Hetero.Wtokens.weighted_discrepancy r.Hetero.Wtokens.final in
        let row =
          [ "weighted rotor-router"; Printf.sprintf "w_max=%d" wmax; stri steps;
            stri disc ]
        in
        csv := ([ "E13" ] @ row) :: !csv;
        row)
      [ 1; 2; 4; 8 ]
  in
  (* Machine speeds. *)
  let speeds = Array.init n (fun i -> 1 + (i mod 4)) in
  let init = Core.Loads.point_mass ~n ~total:(64 * n) in
  let r = Hetero.Nonuniform.run ~graph:g ~speeds ~init ~steps:(50 * n) () in
  let hdisc =
    Hetero.Nonuniform.height_discrepancy ~loads:r.Hetero.Nonuniform.final_loads ~speeds
  in
  let srows =
    [
      [
        "speed diffusion [2]"; "speeds 1..4"; stri r.Hetero.Nonuniform.steps_run;
        fmt_f ~decimals:2 hdisc;
      ];
    ]
  in
  List.iter (fun row -> csv := ([ "E13" ] @ row) :: !csv) srows;
  Table.print
    ~align:[ Table.Left; Table.Left; Table.Right; Table.Right ]
    ~header:[ "model"; "parameters"; "steps"; "final discrepancy" ]
    ~rows:(wrows @ srows) ();
  verdict
    "Weighted discrepancy grows linearly with w_max (the transfer factor); \
     speed diffusion balances heights, allocating load proportional to speed.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E14: equation (7) — the proof's central inequality                  *)
(* ------------------------------------------------------------------ *)

let run_e14 ~quick =
  fresh_section "E14" "Equation (7) — window-averaged deviation vs the proof's bound"
    "Paper (proof of Thm 2.3): the time-average of any node's load over a window\n\
     of length T̂ deviates from x̄ by at most 1/4 + (δd⁺+2r) + O(current sum)/T̂.\n\
     Measured LHS vs the explicit RHS (exact current sum from the dense\n\
     spectrum), for a ladder of windows.";
  let n = if quick then 12 else 24 in
  let g = Graphs.Gen.cycle n in
  let d = 2 and d0 = 2 in
  let dp = d + d0 in
  let init = Core.Loads.point_mass ~n ~total:(8 * n) in
  let gap = Experiment.spectral_gap ~graph:g ~self_loops:d0 in
  let burn_in = Graphs.Spectral.horizon ~gap ~n ~initial_discrepancy:(8 * n) ~c:16.0 in
  let mix = Graphs.Mixing.create g ~self_loops:d0 in
  let current_sum =
    Graphs.Mixing.current_sum mix
      ~horizon:(int_of_float (24.0 *. log (float_of_int n) /. gap))
  in
  let csv = ref [] in
  let rows =
    List.map
      (fun window ->
        let balancer = Core.Rotor_router.make g ~self_loops:d0 in
        let stats =
          Core.Deviation.measure ~graph:g ~balancer ~init ~burn_in ~windows:[ window ]
            ()
        in
        let lhs =
          match stats with
          | s :: _ -> s.Core.Deviation.max_deviation
          | [] -> invalid_arg "Suite: Deviation.measure returned no windows"
        in
        let rhs =
          Core.Deviation.rhs_bound ~delta:1 ~d_plus:dp ~remainder:dp ~current_sum
            ~window
        in
        let row =
          [
            stri window; fmt_f ~decimals:3 lhs; fmt_f ~decimals:1 rhs;
            (if lhs <= rhs then "yes" else "NO");
          ]
        in
        csv := ([ "E14" ] @ row) :: !csv;
        row)
      [ 1; 2; 4; 16; 64 ]
  in
  Table.print
    ~align:[ Table.Right; Table.Right; Table.Right; Table.Left ]
    ~header:[ "T̂"; "measured LHS"; "eq(7) RHS"; "holds?" ]
    ~rows ();
  verdict
    "Equation (7) holds at every window length, and the measured deviation shrinks as T̂ grows — the averaging effect the proofs of Thm 2.3 and Lemma 3.4 are built on.";
  List.rev !csv

(* ------------------------------------------------------------------ *)
(* E15: fault recovery                                                 *)
(* ------------------------------------------------------------------ *)

let run_e15 ~quick =
  fresh_section "E15" "Robustness — recovery after crashes, outages and shocks"
    "Not a theorem of the paper, but its self-stabilization reading: the\n\
     schemes are memoryless in the loads (SL column of Table 1), so after any\n\
     perturbation the Theorem 2.3 analysis restarts from the perturbed vector.\n\
     We crash nodes (state wiped or kept, tokens lost or spilled), sever edges\n\
     and inject load spikes, then measure steps until the discrepancy returns\n\
     within the Theorem 2.3 band d\xc2\xb7min{\xe2\x88\x9a(log n/\xc2\xb5), \xe2\x88\x9an} of its pre-fault value.";
  let points = Faultsweep.sweep ~quick () in
  Faultsweep.print_table points;
  let recovered =
    List.length (List.filter (fun p -> p.Faultsweep.recovery <> None) points)
  in
  verdict
    "%d/%d sweep points recovered within the Theorem 2.3 band; conservation \
     ledgers all balanced. Stateless send-floor and stateful rotor-router \
     recover alike \xe2\x80\x94 wiped rotor state only costs the transient."
    recovered (List.length points);
  List.map (fun row -> "E15" :: row) (Faultsweep.to_rows points)

(* ------------------------------------------------------------------ *)
(* E16: unreliable networks                                            *)
(* ------------------------------------------------------------------ *)

let run_e16 ~quick =
  fresh_section "E16" "Unreliable networks — loss, delay and bounded staleness"
    "The paper's model is synchronous and lossless. Here every token transfer\n\
     rides an unreliable per-edge channel (drop/dup/reorder/bounded delay)\n\
     under an exactly-once retry protocol, and nodes balance on information at\n\
     most \xcf\x83 rounds stale. We report how far the final discrepancy inflates\n\
     beyond the Theorem 2.3 band d\xc2\xb7min{\xe2\x88\x9a(log n/\xc2\xb5), \xe2\x88\x9an} and what the\n\
     exactly-once guarantee costs in retransmissions.";
  let points = Netsweep.sweep ~quick () in
  Netsweep.print_table points;
  let conserved =
    List.length (List.filter (fun p -> p.Netsweep.conserved) points)
  in
  let worst =
    List.fold_left (fun acc p -> Float.max acc p.Netsweep.inflation) 0.0 points
  in
  verdict
    "%d/%d sweep points kept the token ledger exactly conserved end-to-end; \
     worst discrepancy inflation %.2f\xc3\x97 the Theorem 2.3 band. Deterministic \
     schemes degrade gracefully \xe2\x80\x94 loss and staleness stretch the transient \
     but the band is re-entered once the protocol drains."
    conserved (List.length points) worst;
  List.map (fun row -> "E16" :: row) (Netsweep.to_rows points)

(* ------------------------------------------------------------------ *)
(* E17: open-system stability                                          *)
(* ------------------------------------------------------------------ *)

let run_e17 ~quick =
  fresh_section "E17" "Open systems — steady-state stability vs arrival rate"
    "The paper balances a fixed token population; production systems face\n\
     continuous arrivals and departures. Dynamic averaging load balancing\n\
     (arXiv 2302.12201, Thm 2.3 there) proves a bounded steady-state\n\
     discrepancy whenever the arrival rate stays below service capacity. We\n\
     stream Poisson(\xce\xbb) arrivals against per-node service rate \xc2\xb5 and sweep\n\
     \xce\xbb/(n\xc2\xb5) across 1: below capacity the post-warm-up discrepancy band is\n\
     bounded and \xce\xbb-monotone; above it the backlog diverges linearly.";
  let points = Loadsweep.sweep ~quick () in
  Loadsweep.print_table points;
  let stable = Loadsweep.stable_below_capacity points in
  let diverged = Loadsweep.divergence_detected points in
  let monotone = Loadsweep.monotone_in_lambda points in
  verdict
    "below capacity: %s (bounded band, ledger conserved); \xce\xbb-monotone: %s; \
     above capacity: %s. The 2015 paper's local schemes inherit the dynamic \
     stability shape \xe2\x80\x94 the steady band tracks the closed-system Theorem 2.3 \
     band until \xce\xbb crosses n\xc2\xb5."
    (if stable then "stable" else "UNSTABLE")
    (if monotone then "yes" else "NO")
    (if diverged then "divergence detected" else "NOT DETECTED");
  List.map (fun row -> "E17" :: row) (Loadsweep.to_rows points)

let e1_table1 = { id = "E1"; reproduces = "Table 1"; run = run_e1 }
let e2_expander_scaling = { id = "E2"; reproduces = "Theorem 2.3(i)"; run = run_e2 }
let e3_cycle_scaling = { id = "E3"; reproduces = "Theorem 2.3(ii)"; run = run_e3 }
let e4_time_to_od = { id = "E4"; reproduces = "Theorem 3.3"; run = run_e4 }
let e5_roundfair_lower_bound = { id = "E5"; reproduces = "Theorem 4.1"; run = run_e5 }
let e6_stateless_lower_bound = { id = "E6"; reproduces = "Theorem 4.2"; run = run_e6 }
let e7_rotor_no_selfloops = { id = "E7"; reproduces = "Theorem 4.3"; run = run_e7 }
let e8_potential_drop = { id = "E8"; reproduces = "Lemmas 3.5/3.7"; run = run_e8 }
let e9_selfloop_ablation = { id = "E9"; reproduces = "Conclusion Q1"; run = run_e9 }
let e10_dimension_exchange = { id = "E10"; reproduces = "§1.2 contrast"; run = run_e10 }
let e11_irregular = { id = "E11"; reproduces = "§1.1 extension"; run = run_e11 }
let e12_rotor_walk_cover = { id = "E12"; reproduces = "§1.2 rotor walks"; run = run_e12 }
let e13_heterogeneous = { id = "E13"; reproduces = "intro refs [1,2,4]"; run = run_e13 }
let e14_equation7 = { id = "E14"; reproduces = "eq (7), proof of Thm 2.3"; run = run_e14 }
let e15_fault_recovery = { id = "E15"; reproduces = "robustness (Thm 2.3 band)"; run = run_e15 }
let e16_unreliable_net = { id = "E16"; reproduces = "asynchrony (§5 outlook)"; run = run_e16 }

let e17_open_system =
  { id = "E17"; reproduces = "open systems (arXiv 2302.12201 Thm 2.3 shape)"; run = run_e17 }

let all =
  [
    e1_table1; e2_expander_scaling; e3_cycle_scaling; e4_time_to_od;
    e5_roundfair_lower_bound; e6_stateless_lower_bound; e7_rotor_no_selfloops;
    e8_potential_drop; e9_selfloop_ablation; e10_dimension_exchange;
    e11_irregular; e12_rotor_walk_cover; e13_heterogeneous; e14_equation7;
    e15_fault_recovery; e16_unreliable_net; e17_open_system;
  ]

let ids = List.map (fun e -> e.id) all

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let run_by_id ~quick id =
  match find id with
  | Some e -> Ok (e.run ~quick)
  | None ->
    Error
      (Printf.sprintf "unknown experiment %s; valid: %s"
         (String.uppercase_ascii id)
         (String.concat ", " ids))
