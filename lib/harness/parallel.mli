(** Parallel map over OCaml 5 domains — used to spread independent
    experiment replicas (different seeds, different n) across cores.
    Built on the shared domain-pool abstraction ([Shard.Pool]) that also
    powers the sharded engine.

    Tasks must be pure-ish and independent: they must not share mutable
    state (each task should build its own graphs/balancers/RNGs, which
    everything in this repository does given a seed). *)

val num_domains : unit -> int
(** Recommended domain count: [Domain.recommended_domain_count], at
    least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] evaluates [f] on every element, distributing work over
    up to [domains] (default {!num_domains}) additional domains in
    round-robin chunks; order is preserved.  Exceptions raised by a
    task are re-raised in the caller. *)

val replicate : ?domains:int -> seeds:int list -> (int -> float) -> Series.summary
(** Parallel version of {!Series.replicate}. *)
