let require_nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let mean a =
  require_nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  require_nonempty "variance" a;
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    ss /. float_of_int (n - 1)
  end

let stddev a =
  require_nonempty "stddev" a;
  sqrt (variance a)

let percentile a p =
  require_nonempty "percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median a = percentile a 50.0

let minimum a =
  require_nonempty "minimum" a;
  Array.fold_left min a.(0) a

let maximum a =
  require_nonempty "maximum" a;
  Array.fold_left max a.(0) a

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let a = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let b = (!sy -. (a *. !sx)) /. nf in
  (a, b)

let power_law_fit pts =
  Array.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then
        invalid_arg "Stats.power_law_fit: coordinates must be positive")
    pts;
  let logs = Array.map (fun (x, y) -> (log x, log y)) pts in
  let a, b = linear_fit logs in
  (a, exp b)

let correlation pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 points";
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxy := !sxy +. ((x -. mx) *. (y -. my));
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      syy := !syy +. ((y -. my) *. (y -. my)))
    pts;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
