(** Descriptive statistics and shape-fitting for experiment outputs.

    Every sample-taking function raises [Invalid_argument
    "Stats.<fn>: empty sample"] on an empty array — an empty sweep is a
    harness bug, and a loud error beats a silent [nan] propagating into
    a BENCH_*.json artifact. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (0 for a single point). *)

val stddev : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation. *)

val minimum : float array -> float
val maximum : float array -> float

val linear_fit : (float * float) array -> float * float
(** Least-squares [y = a·x + b]; returns [(a, b)].
    @raise Invalid_argument with fewer than 2 points or degenerate x. *)

val power_law_fit : (float * float) array -> float * float
(** Fit [y = c · x^a] by least squares in log–log space; returns
    [(a, c)].  Points with non-positive coordinates are rejected.
    Used to check growth shapes like "discrepancy ~ √n on the cycle". *)

val correlation : (float * float) array -> float
(** Pearson correlation coefficient. *)
