type graph_spec =
  | Cycle of int
  | Torus2d of int
  | Hypercube of int
  | Random_regular of { n : int; d : int; seed : int }
  | Complete of int
  | Clique_circulant of { n : int; d : int }

let build_graph = function
  | Cycle n -> Graphs.Gen.cycle n
  | Torus2d side -> Graphs.Gen.torus [ side; side ]
  | Hypercube r -> Graphs.Gen.hypercube r
  | Random_regular { n; d; seed } ->
    Graphs.Gen.random_regular (Prng.Splitmix.create seed) ~n ~d
  | Complete n -> Graphs.Gen.complete n
  | Clique_circulant { n; d } -> Graphs.Gen.clique_circulant ~n ~d

let graph_name = function
  | Cycle n -> Printf.sprintf "cycle(%d)" n
  | Torus2d side -> Printf.sprintf "torus2d(%dx%d)" side side
  | Hypercube r -> Printf.sprintf "hypercube(%d)" r
  | Random_regular { n; d; seed } -> Printf.sprintf "random-%d-regular(%d,seed=%d)" d n seed
  | Complete n -> Printf.sprintf "complete(%d)" n
  | Clique_circulant { n; d } -> Printf.sprintf "clique-circulant(%d,d=%d)" n d

type algo_spec =
  | Rotor_router of { self_loops : int }
  | Rotor_router_star
  | Send_floor of { self_loops : int }
  | Send_round of { self_loops : int }
  | Mimic of { self_loops : int }
  | Random_extra of { self_loops : int; seed : int }
  | Random_rounding of { self_loops : int; seed : int }

let algo_name = function
  | Rotor_router { self_loops } -> Printf.sprintf "rotor-router(d°=%d)" self_loops
  | Rotor_router_star -> "rotor-router*"
  | Send_floor { self_loops } -> Printf.sprintf "send-floor(d°=%d)" self_loops
  | Send_round { self_loops } -> Printf.sprintf "send-round(d°=%d)" self_loops
  | Mimic { self_loops } -> Printf.sprintf "mimic(d°=%d)" self_loops
  | Random_extra { self_loops; seed } ->
    Printf.sprintf "random-extra(d°=%d,seed=%d)" self_loops seed
  | Random_rounding { self_loops; seed } ->
    Printf.sprintf "random-rounding(d°=%d,seed=%d)" self_loops seed

let algo_self_loops spec ~graph_degree =
  match spec with
  | Rotor_router { self_loops }
  | Send_floor { self_loops }
  | Send_round { self_loops }
  | Mimic { self_loops }
  | Random_extra { self_loops; _ }
  | Random_rounding { self_loops; _ } -> self_loops
  | Rotor_router_star -> graph_degree

let build_balancer spec g ~init =
  match spec with
  | Rotor_router { self_loops } -> Core.Rotor_router.make g ~self_loops
  | Rotor_router_star -> Core.Rotor_router_star.make g
  | Send_floor { self_loops } -> Core.Send_floor.make g ~self_loops
  | Send_round { self_loops } -> Core.Send_round.make g ~self_loops
  | Mimic { self_loops } -> Baselines.Mimic.make g ~self_loops ~init
  | Random_extra { self_loops; seed } ->
    Baselines.Random_extra.make (Prng.Splitmix.create seed) g ~self_loops
  | Random_rounding { self_loops; seed } ->
    Baselines.Random_rounding.make (Prng.Splitmix.create seed) g ~self_loops

type init_spec =
  | Point_mass of int
  | Bimodal of { high : int; low : int }
  | Uniform_random of { total : int; seed : int }

let init_name = function
  | Point_mass total -> Printf.sprintf "point-mass(%d)" total
  | Bimodal { high; low } -> Printf.sprintf "bimodal(%d/%d)" high low
  | Uniform_random { total; seed } -> Printf.sprintf "uniform-random(%d,seed=%d)" total seed

let build_init spec ~n =
  match spec with
  | Point_mass total -> Core.Loads.point_mass ~n ~total
  | Bimodal { high; low } -> Core.Loads.bimodal ~n ~high ~low
  | Uniform_random { total; seed } ->
    Core.Loads.uniform_random (Prng.Splitmix.create seed) ~n ~total

(* --- spec parsers ---

   One grammar shared by every front end (lb_sim, lb_cluster, lb_node),
   so a spec string that works on the single-process simulator selects
   the identical experiment on the distributed runtime. *)

exception Parse_fail of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_fail m)) fmt

let parsed f = match f () with v -> Ok v | exception Parse_fail m -> Error m

let p_positive what v =
  if v <= 0 then parse_fail "%s must be positive (got %d)" what v;
  v

let p_non_negative what v =
  if v < 0 then parse_fail "%s must be non-negative (got %d)" what v;
  v

let graph_of_string s =
  parsed @@ fun () ->
  let fail () =
    parse_fail
      "bad graph spec %S (expected cycle:N, torus:AxB, hypercube:R, complete:N, \
       clique:N,D or random:N,D,SEED)"
      s
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "cycle"; n ] -> Cycle (p_positive "cycle size" (int_of n))
  | [ "hypercube"; r ] -> Hypercube (p_positive "hypercube dimension" (int_of r))
  | [ "complete"; n ] -> Complete (p_positive "complete-graph size" (int_of n))
  | [ "torus"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ a; b ] when a = b -> Torus2d (p_positive "torus side" (int_of a))
    | _ -> fail ())
  | [ "clique"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] ->
      Clique_circulant
        { n = p_positive "clique n" (int_of n);
          d = p_positive "clique degree" (int_of d) }
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] ->
      Random_regular
        { n = p_positive "graph size" (int_of n);
          d = p_positive "graph degree" (int_of d);
          seed = 1 }
    | [ n; d; seed ] ->
      Random_regular
        { n = p_positive "graph size" (int_of n);
          d = p_positive "graph degree" (int_of d);
          seed = int_of seed }
    | _ -> fail ())
  | _ -> fail ()

let init_of_string s =
  parsed @@ fun () ->
  let fail () =
    parse_fail
      "bad init spec %S (expected point:TOTAL, bimodal:HIGH,LOW or \
       random:TOTAL[,SEED])"
      s
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "point"; t ] -> Point_mass (p_non_negative "initial total" (int_of t))
  | [ "bimodal"; args ] -> (
    match String.split_on_char ',' args with
    | [ h; l ] ->
      Bimodal
        { high = p_non_negative "bimodal high" (int_of h);
          low = p_non_negative "bimodal low" (int_of l) }
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ t ] ->
      Uniform_random { total = p_non_negative "initial total" (int_of t); seed = 1 }
    | [ t; seed ] ->
      Uniform_random
        { total = p_non_negative "initial total" (int_of t); seed = int_of seed }
    | _ -> fail ())
  | _ -> fail ()

let algo_of_string ?self_loops ?(seed = 1) s =
  let sl default = match self_loops with Some k -> k | None -> default in
  match s with
  | "rotor-router" -> Ok (fun ~degree:d -> Rotor_router { self_loops = sl d })
  | "rotor-router-star" -> Ok (fun ~degree:_ -> Rotor_router_star)
  | "send-floor" -> Ok (fun ~degree:d -> Send_floor { self_loops = sl d })
  | "send-round" -> Ok (fun ~degree:d -> Send_round { self_loops = sl (2 * d) })
  | "mimic" -> Ok (fun ~degree:d -> Mimic { self_loops = sl d })
  | "random-extra" ->
    Ok (fun ~degree:d -> Random_extra { self_loops = sl d; seed })
  | "random-rounding" ->
    Ok (fun ~degree:d -> Random_rounding { self_loops = sl d; seed })
  | other ->
    Error
      (Printf.sprintf
         "unknown algorithm %S (expected rotor-router, rotor-router-star, \
          send-floor, send-round, mimic, random-extra or random-rounding)"
         other)

type horizon =
  | Fixed_steps of int
  | Mixing_multiple of float
  | Continuous_multiple of float

(* Spectral gaps are expensive on large graphs; memoize per graph shape.
   The key combines size, degree, d° and an FNV-1a fold of the flat
   adjacency — deterministic across runs and OCaml versions, unlike
   [Hashtbl.hash_param], and collision-safe enough for a cache of a
   handful of experiment graphs. *)
let gap_cache : (int * int * int * int, float) Hashtbl.t = Hashtbl.create 16

let adjacency_fingerprint (adj : int array) =
  Array.fold_left (fun h v -> (h lxor v) * 0x1000193) 0x811c9dc5 adj

let spectral_gap ~graph ~self_loops =
  let key =
    ( Graphs.Graph.n graph,
      Graphs.Graph.degree graph,
      self_loops,
      adjacency_fingerprint (Graphs.Graph.adjacency graph) )
  in
  match Hashtbl.find_opt gap_cache key with
  | Some g -> g
  | None ->
    let g = Graphs.Spectral.eigenvalue_gap graph ~self_loops in
    Hashtbl.add gap_cache key g;
    g

let horizon_steps ~graph ~self_loops ~init = function
  | Fixed_steps s ->
    if s < 1 then invalid_arg "Experiment.horizon_steps: need >= 1 step";
    s
  | Mixing_multiple c ->
    let gap = spectral_gap ~graph ~self_loops in
    Graphs.Spectral.horizon ~gap ~n:(Graphs.Graph.n graph)
      ~initial_discrepancy:(Core.Loads.discrepancy init) ~c
  | Continuous_multiple c ->
    let finit = Array.map float_of_int init in
    (match
       Graphs.Spectral.continuous_balancing_time graph ~self_loops ~init:finit ()
     with
     | Some t -> max 1 (int_of_float (ceil (c *. float_of_int (max t 1))))
     | None -> invalid_arg "Experiment.horizon_steps: continuous process did not converge")

type outcome = {
  graph_label : string;
  algo_label : string;
  n : int;
  degree : int;
  self_loops : int;
  gap : float;
  steps : int;
  horizon : int;
  initial_discrepancy : int;
  final_discrepancy : int;
  time_to_target : int option;
  min_load_seen : int;
  fairness : Core.Fairness.report option;
}

let run_prepared ?(audit = false) ?target ?(stop_early = false) ~graph ~graph_label
    ~balancer ~init ~steps () =
  let first_hit = ref None in
  let hook =
    match target with
    | Some tgt when not stop_early ->
      Some
        (fun t loads ->
          if !first_hit = None && Core.Loads.discrepancy loads <= tgt then
            first_hit := Some t)
    | _ -> None
  in
  let stop_at = if stop_early then target else None in
  let result =
    Core.Engine.run ~audit
      ~sample_every:(max 1 (steps / 64))
      ?hook ?stop_at_discrepancy:stop_at ~graph ~balancer ~init ~steps ()
  in
  let time_to_target =
    match (target, stop_early) with
    | None, _ -> None
    | Some _, true -> result.Core.Engine.reached_target
    | Some tgt, false ->
      if Core.Loads.discrepancy init <= tgt then Some 0 else !first_hit
  in
  {
    graph_label;
    algo_label = balancer.Core.Balancer.name;
    n = Graphs.Graph.n graph;
    degree = Graphs.Graph.degree graph;
    self_loops = balancer.Core.Balancer.self_loops;
    gap = spectral_gap ~graph ~self_loops:balancer.Core.Balancer.self_loops;
    steps = result.Core.Engine.steps_run;
    horizon = steps;
    initial_discrepancy = Core.Loads.discrepancy init;
    final_discrepancy = Core.Loads.discrepancy result.Core.Engine.final_loads;
    time_to_target;
    min_load_seen = result.Core.Engine.min_load_seen;
    fairness = result.Core.Engine.fairness;
  }

let run ?audit ?target ~graph ~algo ~init ~horizon () =
  let g = build_graph graph in
  let n = Graphs.Graph.n g in
  let init_loads = build_init init ~n in
  let balancer = build_balancer algo g ~init:init_loads in
  let self_loops = balancer.Core.Balancer.self_loops in
  let steps = horizon_steps ~graph:g ~self_loops ~init:init_loads horizon in
  run_prepared ?audit ?target ~graph:g ~graph_label:(graph_name graph) ~balancer
    ~init:init_loads ~steps ()
