(** Graceful-degradation sweep: balancing quality on unreliable networks.

    One sweep point runs a (graph, algorithm, channel-fault, backoff)
    combination through {!Net.Async_engine} — message loss, bounded
    delay and the exactly-once retry protocol underneath — and compares
    the final discrepancy against the Theorem 2.3 band
    d·min{√(log n/µ), √n} that the same scheme earns on the paper's
    synchronous, reliable network.  The inflation factor (final
    discrepancy / band) quantifies how gracefully each scheme degrades,
    and the retransmission overhead quantifies what the exactly-once
    guarantee costs in extra traffic. *)

type point = {
  graph : string;
  algo : string;
  drop : float;  (** per-transmission loss probability *)
  delay : int;  (** max extra delivery delay in rounds *)
  backoff : string;  (** retransmission backoff policy name *)
  staleness : int;  (** bounded-staleness window σ *)
  band : int;  (** Theorem 2.3 band on the reliable network *)
  final : int;  (** final discrepancy after the run + drain *)
  inflation : float;  (** final / band; ≤ 1 means within the theorem band *)
  retx_overhead : float;  (** retransmissions / first-copy messages *)
  degraded_rounds : int;  (** node-rounds balanced on stale information *)
  drain_rounds : int;  (** extra rounds needed to quiesce the protocol *)
  drained : bool;
  conserved : bool;  (** net ledger balanced after the final drain *)
}

val run_point :
  graph_label:string ->
  graph:Graphs.Graph.t ->
  algo_label:string ->
  make_balancer:(unit -> Core.Balancer.t) ->
  self_loops:int ->
  drop:float ->
  delay:int ->
  backoff:Net.Protocol.backoff ->
  staleness:int ->
  steps:int ->
  seed:int ->
  point
(** One cell of the sweep; a fresh balancer instance per call. *)

val sweep : quick:bool -> unit -> point list
(** Rotor-router, rotor-router* and quasirandom on torus, hypercube and
    a random-regular expander, across a drop-rate × delay × backoff
    grid (σ = 2, degrade-on-stale).  [quick] shrinks both the graphs
    and the grid to smoke-test size. *)

val print_table : point list -> unit

val to_rows : point list -> string list list
(** CSV-shaped rows, one per point, in sweep order. *)
