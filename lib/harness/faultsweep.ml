type point = {
  graph : string;
  algo : string;
  scenario : string;
  eps : int;
  pre : int;
  shock : int;
  worst : int;
  recovery : int option;
  episodes : int;
  conserved : bool;
}

let theorem_band ~graph ~self_loops =
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in
  let mu = Experiment.spectral_gap ~graph ~self_loops in
  let via_n = sqrt (float_of_int n) in
  (* A degenerate spectral gap (µ ≤ 0, or NaN from numerical noise on
     tiny graphs) would turn the √(log n/µ) branch into ∞ or NaN; the
     theorem's min then falls back to the unconditional √n branch. *)
  let via_gap =
    if Float.is_finite mu && mu > 0.0 then sqrt (log (float_of_int n) /. mu)
    else infinity
  in
  let band = float_of_int d *. Float.min via_gap via_n in
  if not (Float.is_finite band) then max 1 d
  else max 1 (int_of_float (ceil band))

type algo = {
  label : string;
  self_loops : int -> int;
  make : Graphs.Graph.t -> unit -> Core.Balancer.t;
}

let algos =
  [
    {
      label = "rotor-router";
      self_loops = (fun d -> d);
      make = (fun g () -> Core.Rotor_router.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "send-floor";
      self_loops = (fun _ -> 1);
      make = (fun g () -> Core.Send_floor.make g ~self_loops:1);
    };
  ]

(* The fault hits after a quarter of the horizon — late enough that the
   initial point mass has flattened, leaving 3/4 of the run to recover. *)
let scenarios ~n ~fault_step =
  [
    ("crash 10% (wipe,lose)", Printf.sprintf "crash:0.1@%d:wipe:lose" fault_step);
    ("crash 10% (keep,spill)", Printf.sprintf "crash:0.1@%d:keep:spill" fault_step);
    ("shock +4n", Printf.sprintf "shock:%d@%d" (4 * n) fault_step);
    ( "outage 20% for T/8",
      Printf.sprintf "outage:0.2@%d+%d" fault_step (max 1 (fault_step / 2)) );
  ]

let slowest_episode report =
  List.fold_left
    (fun acc (e : Faults.Engine.episode) ->
      let slower a b =
        match (Faults.Engine.steps_to_recover a, Faults.Engine.steps_to_recover b) with
        | None, _ -> a
        | _, None -> b
        | Some ka, Some kb -> if ka >= kb then a else b
      in
      match acc with None -> Some e | Some best -> Some (slower e best))
    None report.Faults.Engine.episodes

let run_point ?mode ~graph_label ~graph ~algo ~scenario_label ~spec ~steps () =
  let n = Graphs.Graph.n graph in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let specs =
    match Faults.Schedule.parse spec with
    | Ok s -> s
    | Error m -> invalid_arg ("Faultsweep: " ^ m)
  in
  let plan = Faults.Schedule.realize ~seed:1 ~graph specs in
  let eps = theorem_band ~graph ~self_loops:(algo.self_loops (Graphs.Graph.degree graph)) in
  let report =
    Faults.Engine.run ?mode ~eps ~sample_every:steps ~graph
      ~make_balancer:(algo.make graph) ~plan ~init ~steps ()
  in
  let episodes = List.length report.Faults.Engine.episodes in
  let pre, shock, worst, recovery =
    match slowest_episode report with
    | Some e ->
      ( e.Faults.Engine.pre_discrepancy,
        e.Faults.Engine.shock_discrepancy,
        e.Faults.Engine.worst_discrepancy,
        Faults.Engine.steps_to_recover e )
    | None -> (0, 0, 0, None)
  in
  {
    graph = graph_label;
    algo = algo.label;
    scenario = scenario_label;
    eps;
    pre;
    shock;
    worst;
    recovery;
    episodes;
    conserved =
      report.Faults.Engine.final_total
      = report.Faults.Engine.initial_total + report.Faults.Engine.injected
        - report.Faults.Engine.lost;
  }

let sweep ?mode ~quick () =
  let graphs =
    if quick then
      [
        ("cycle(64)", Graphs.Gen.cycle 64, 400);
        ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ], 200);
        ("hypercube(6)", Graphs.Gen.hypercube 6, 120);
      ]
    else
      [
        ("cycle(256)", Graphs.Gen.cycle 256, 4000);
        ("torus(16x16)", Graphs.Gen.torus [ 16; 16 ], 800);
        ("hypercube(8)", Graphs.Gen.hypercube 8, 240);
      ]
  in
  List.concat_map
    (fun (graph_label, graph, steps) ->
      List.concat_map
        (fun algo ->
          List.map
            (fun (scenario_label, spec) ->
              run_point ?mode ~graph_label ~graph ~algo ~scenario_label ~spec
                ~steps ())
            (scenarios ~n:(Graphs.Graph.n graph) ~fault_step:(steps / 4)))
        algos)
    graphs

let to_rows points =
  List.map
    (fun p ->
      [
        p.graph;
        p.algo;
        p.scenario;
        string_of_int p.eps;
        string_of_int p.pre;
        string_of_int p.shock;
        string_of_int p.worst;
        (* A plan can realize to zero episodes (e.g. a 10% crash on a
           graph too small to pick any node): nothing to recover from,
           which is "n/a", not "never recovered". *)
        (if p.episodes = 0 then "n/a"
         else match p.recovery with Some k -> string_of_int k | None -> "never");
        (if p.conserved then "yes" else "NO");
      ])
    points

let print_table points =
  Table.print
    ~align:
      [
        Table.Left; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Left;
      ]
    ~header:
      [ "graph"; "algorithm"; "fault"; "eps"; "pre"; "shock"; "worst";
        "recovered-in"; "conserved" ]
    ~rows:(to_rows points) ()
