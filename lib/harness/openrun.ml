type mode =
  | Plain
  | Faulty of { plan : Faults.Schedule.plan }
  | Lossy of { config : Net.Async_engine.config; plan : Faults.Schedule.plan }

(* Slice a multi-round plan down to what one round sees.  Point events
   (crashes, shocks) fire only in their scheduled round; an outage
   spanning [step, last_step] is re-emitted as a one-step outage in
   every round of that interval, so the link stays dark for the same
   rounds as in a closed-system run. *)
let plan_at plan ~round =
  List.filter_map
    (fun (t : Faults.Schedule.timed) ->
      match t.Faults.Schedule.event with
      | Faults.Schedule.Edge_outage { node; port; last_step } ->
        if t.Faults.Schedule.step <= round && round <= last_step then
          Some
            {
              Faults.Schedule.step = 1;
              event = Faults.Schedule.Edge_outage { node; port; last_step = 1 };
            }
        else None
      | Faults.Schedule.Crash _ | Faults.Schedule.Load_shock _ ->
        if t.Faults.Schedule.step = round then
          Some { t with Faults.Schedule.step = 1 }
        else None)
    plan

let plain_step ~graph ~balancer loads =
  let r = Core.Engine.run ~graph ~balancer ~init:loads ~steps:1 () in
  { Workload.Engine.loads = r.Core.Engine.final_loads; injected = 0; lost = 0 }

let stepper ?(mode = Plain) ~graph ~balancer () =
  match mode with
  | Plain -> fun ~round:_ loads -> plain_step ~graph ~balancer loads
  | Faulty { plan } ->
    fun ~round loads ->
      (match plan_at plan ~round with
      | [] -> plain_step ~graph ~balancer loads
      | slice ->
        let report =
          Faults.Engine.run ~mode:Faults.Engine.Sequential ~graph
            ~make_balancer:(fun () -> balancer)
            ~plan:slice ~init:loads ~steps:1 ()
        in
        {
          Workload.Engine.loads =
            report.Faults.Engine.result.Core.Engine.final_loads;
          injected = report.Faults.Engine.injected;
          lost = report.Faults.Engine.lost;
        })
  | Lossy { config; plan } ->
    fun ~round loads ->
      (* Per-round reseed keeps the channel's fault stream a pure
         function of (seed, round), independent of how many messages
         earlier rounds happened to send. *)
      let config = { config with Net.Async_engine.seed = config.seed + round } in
      let report =
        Net.Async_engine.run ~config ~plan:(plan_at plan ~round) ~graph
          ~balancer ~init:loads ~steps:1 ()
      in
      {
        Workload.Engine.loads =
          report.Net.Async_engine.result.Core.Engine.final_loads;
        injected = report.Net.Async_engine.injected;
        lost = report.Net.Async_engine.lost;
      }

let run ?(mode = Plain) ~config ~graph ~balancer ~init () =
  Workload.Engine.run config ~init (stepper ~mode ~graph ~balancer ())
