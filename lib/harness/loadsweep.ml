type point = {
  graph : string;
  algo : string;
  ratio : float;
  lambda : float;
  mu : int;
  band : int;
  steady_mean : float;
  steady_p95 : float;
  steady_p99 : float;
  inflight_mean : float;
  overload_p99 : float;
  throughput : float;
  diverged : bool;
  conserved : bool;
}

type algo = {
  label : string;
  self_loops : int -> int;
  make : Graphs.Graph.t -> Core.Balancer.t;
}

let algos =
  [
    {
      label = "rotor-router";
      self_loops = (fun d -> d);
      make = (fun g -> Core.Rotor_router.make g ~self_loops:(Graphs.Graph.degree g));
    };
    {
      label = "send-round";
      self_loops = (fun d -> d);
      make = (fun g -> Core.Send_round.make g ~self_loops:(Graphs.Graph.degree g));
    };
  ]

let mu = 2

let run_point ~graph_label ~graph ~algo ~ratio ~rounds ~seed =
  let n = Graphs.Graph.n graph in
  let lambda = ratio *. float_of_int (n * mu) in
  let master = Prng.Splitmix.create seed in
  let arrival_rng = Prng.Splitmix.split master in
  let arrival = Workload.Arrival.poisson ~rng:arrival_rng ~rate:lambda in
  let lifetime = Workload.Lifetime.service ~rate:mu in
  let config =
    Workload.Engine.config ~probe_label:"loadsweep" ~arrival ~lifetime ~rounds ()
  in
  let balancer = algo.make graph in
  let r =
    Openrun.run ~config ~graph ~balancer
      ~init:(Core.Loads.flat ~n ~value:0) ()
  in
  let band =
    Faultsweep.theorem_band ~graph
      ~self_loops:(algo.self_loops (Graphs.Graph.degree graph))
  in
  {
    graph = graph_label;
    algo = algo.label;
    ratio;
    lambda;
    mu;
    band;
    steady_mean = r.Workload.Engine.steady_discrepancy.Workload.Steady.mean;
    steady_p95 = r.Workload.Engine.steady_discrepancy.Workload.Steady.p95;
    steady_p99 = r.Workload.Engine.steady_discrepancy.Workload.Steady.p99;
    inflight_mean = r.Workload.Engine.steady_inflight.Workload.Steady.mean;
    overload_p99 = r.Workload.Engine.steady_overload.Workload.Steady.p99;
    throughput = r.Workload.Engine.throughput;
    diverged = r.Workload.Engine.diverged;
    conserved = r.Workload.Engine.conserved;
  }

let sweep ~quick () =
  let graphs =
    if quick then
      [ ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ]); ("hypercube(6)", Graphs.Gen.hypercube 6) ]
    else
      [
        ("torus(16x16)", Graphs.Gen.torus [ 16; 16 ]);
        ("hypercube(8)", Graphs.Gen.hypercube 8);
      ]
  in
  let ratios = if quick then [ 0.5; 0.9; 1.3 ] else [ 0.25; 0.5; 0.75; 0.9; 1.25 ] in
  let rounds = if quick then 400 else 1500 in
  List.concat_map
    (fun (graph_label, graph) ->
      List.concat_map
        (fun algo ->
          List.map
            (fun ratio ->
              run_point ~graph_label ~graph ~algo ~ratio ~rounds ~seed:17)
            ratios)
        algos)
    graphs

let under_capacity p = p.ratio < 1.0
let over_capacity p = p.ratio > 1.0

let stable_below_capacity points =
  List.for_all
    (fun p -> (not p.diverged) && p.conserved && Float.is_finite p.steady_mean)
    (List.filter under_capacity points)

let divergence_detected points =
  match List.filter over_capacity points with
  | [] -> false
  | over -> List.for_all (fun p -> p.diverged) over

(* Monotone up to noise: the steady band at a higher λ may wobble a
   little below the previous one (small integers, Poisson jitter), but
   it must not collapse — the tolerant inequality rejects only a real
   decrease. *)
let monotone_in_lambda points =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if under_capacity p then begin
        let key = p.graph ^ "/" ^ p.algo in
        let prev = try Hashtbl.find groups key with Not_found -> [] in
        Hashtbl.replace groups key (p :: prev)
      end)
    points;
  (* lint: allow R1 — conjunction over groups, order-insensitive *)
  Hashtbl.fold
    (fun _ group acc ->
      (* group is in reverse sweep order; restore ascending-λ order. *)
      let sorted = List.rev group in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          b.steady_mean >= (0.75 *. a.steady_mean) -. 1.0 && ok rest
        | [ _ ] | [] -> true
      in
      acc && ok sorted)
    groups true

let to_rows points =
  List.map
    (fun p ->
      [
        p.graph;
        p.algo;
        Printf.sprintf "%.2f" p.ratio;
        Printf.sprintf "%.1f" p.lambda;
        string_of_int p.band;
        Printf.sprintf "%.1f" p.steady_mean;
        Printf.sprintf "%.1f" p.steady_p95;
        Printf.sprintf "%.1f" p.steady_p99;
        Printf.sprintf "%.1f" p.inflight_mean;
        Printf.sprintf "%.2f" p.overload_p99;
        Printf.sprintf "%.1f" p.throughput;
        (if p.diverged then "DIVERGED" else "stable");
        (if p.conserved then "yes" else "NO");
      ])
    points

let print_table points =
  Table.print
    ~align:
      [
        Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Left; Table.Left;
      ]
    ~header:
      [ "graph"; "algorithm"; "λ/cap"; "λ"; "band"; "disc mean"; "p95"; "p99";
        "backlog"; "overload p99"; "thru/r"; "verdict"; "conserved" ]
    ~rows:(to_rows points) ()
