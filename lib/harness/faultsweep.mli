(** Recovery sweep: how fast does each scheme re-balance after faults?

    One sweep point runs a (graph, algorithm, fault scenario) triple
    through {!Faults.Engine.run} and keeps the slowest episode.  The
    recovery tolerance is the Theorem 2.3 discrepancy band
    d·min{{√(log n/µ)}, √n} — a scheme "recovers" when the post-fault
    discrepancy is back within that band of its pre-fault value, which
    is exactly the self-stabilization the paper's stateless (SL) schemes
    get for free and stateful schemes must re-earn after state loss. *)

type point = {
  graph : string;
  algo : string;
  scenario : string;
  eps : int;  (** Theorem 2.3 band used as the recovery tolerance *)
  pre : int;  (** discrepancy just before the (slowest) fault episode *)
  shock : int;  (** discrepancy just after it *)
  worst : int;  (** worst discrepancy until recovery *)
  recovery : int option;  (** steps to recover, slowest episode; None = never *)
  episodes : int;  (** fault episodes observed; 0 ⇒ recovery is n/a *)
  conserved : bool;  (** final total matched the fault ledger *)
}

val theorem_band : graph:Graphs.Graph.t -> self_loops:int -> int
(** ⌈d·min{√(log n/µ), √n}⌉, the Theorem 2.3 discrepancy bound.
    Degenerate spectral gaps (µ ≤ 0 or non-finite) fall back to the
    unconditional √n branch instead of dividing by zero. *)

val sweep : ?mode:Faults.Engine.mode -> quick:bool -> unit -> point list
(** Crash (wipe+lose), crash (keep+spill), load-shock and edge-outage
    scenarios across cycle/torus/hypercube for the stateful
    rotor-router vs the stateless send-floor.  [quick] shrinks the
    graphs to smoke-test size. *)

val print_table : point list -> unit

val to_rows : point list -> string list list
(** CSV-shaped rows, one per point, in sweep order. *)
