(** Open-system runs over the full engine stack.

    {!Workload.Engine} abstracts the balancing step as a closure so it
    can sit below [lib/core]; this module supplies the concrete
    steppers: the plain synchronous {!Core.Engine}, the fault engine
    ({!Faults.Engine}) under a realized schedule, and the lossy
    asynchronous network ({!Net.Async_engine}).  Faults and packet
    loss therefore compose with live traffic — the fault ledgers flow
    into the workload conservation check, and an undrained network
    round surfaces as [conserved = false]. *)

type mode =
  | Plain
  | Faulty of { plan : Faults.Schedule.plan }
      (** events are applied at their scheduled round, outages stay
          down through their [last_step] *)
  | Lossy of { config : Net.Async_engine.config; plan : Faults.Schedule.plan }
      (** every round's token transfers ride the unreliable channel
          and are drained before the next round; the channel's fault
          stream is re-seeded per round from [config.seed + round] so
          runs stay replayable *)

val plan_at : Faults.Schedule.plan -> round:int -> Faults.Schedule.plan
(** The single-round slice of a plan: events scheduled at [round]
    (rewritten to step 1) plus outages still active at [round]
    (re-emitted as one-step outages).  Empty for fault-free rounds. *)

val stepper :
  ?mode:mode ->
  graph:Graphs.Graph.t ->
  balancer:Core.Balancer.t ->
  unit ->
  Workload.Engine.stepper
(** The balancing step for {!Workload.Engine.run}.  The balancer
    instance is shared across rounds, so stateful schemes (rotor
    state, accumulators) persist exactly as in a closed-system run. *)

val run :
  ?mode:mode ->
  config:Workload.Engine.config ->
  graph:Graphs.Graph.t ->
  balancer:Core.Balancer.t ->
  init:int array ->
  unit ->
  Workload.Engine.result
(** [run ~config ~graph ~balancer ~init ()] drives the open system
    with the chosen stepper. *)
