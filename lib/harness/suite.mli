(** The experiment suite: one entry per table/figure-equivalent of the
    paper (see DESIGN.md §4 for the index).  Each experiment prints a
    paper-shaped table plus a one-line verdict relating the measurement
    to the theorem's claim, and returns its rows for the CSV writer.

    Experiments are exposed only through the named registry — every
    front end ([lb_experiments], the benchmark harness, the scenario
    compiler's [experiment eNN] target) resolves the same id through
    {!find}/{!run_by_id}, so one spelling selects the identical
    experiment everywhere.

    The roster:

    - E1: Table 1 (discrepancy after T, time to O(d), property columns)
    - E2: Theorem 2.3(i), expander scaling
    - E3: Theorem 2.3(ii), cycle scaling
    - E4: Theorem 3.3, time to O(d) vs self-preference
    - E5: Theorem 4.1, round-fair lower bound
    - E6: Theorem 4.2, stateless lower bound
    - E7: Theorem 4.3, rotor-router without self-loops
    - E8: Lemmas 3.5/3.7, potential drop traces
    - E9: Conclusion Q1, self-loop ablation
    - E10: §1.2 contrast, dimension exchange
    - E11: §1.1 extension, irregular graphs
    - E12: §1.2 rotor walks, cover times
    - E13: heterogeneous tokens and speeds
    - E14: equation (7) window-averaged deviation
    - E15: fault recovery into the Theorem 2.3 band ({!Faultsweep})
    - E16: unreliable network degradation ({!Netsweep})
    - E17: open-system stability band ({!Loadsweep})

    Sizes are chosen so the full suite runs in minutes on a laptop;
    [quick] shrinks every sweep to smoke-test size. *)

type row = string list

type experiment = {
  id : string;          (** "E1" .. "E17" *)
  reproduces : string;  (** which table/theorem of the paper *)
  run : quick:bool -> row list; (** prints its report; returns CSV rows *)
}

val all : experiment list
(** E1 .. E17 in order. *)

val ids : string list
(** The registry's ids, in {!all} order. *)

val find : string -> experiment option
(** Look an experiment up by id, case-insensitively. *)

val run_by_id : quick:bool -> string -> (row list, string) Result.t
(** Run one experiment by its id (case-insensitive); [Error] lists the
    valid ids when unknown. *)
