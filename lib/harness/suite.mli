(** The experiment suite: one entry per table/figure-equivalent of the
    paper (see DESIGN.md §4 for the index).  Each experiment prints a
    paper-shaped table plus a one-line verdict relating the measurement
    to the theorem's claim, and returns its rows for the CSV writer.

    Sizes are chosen so the full suite runs in minutes on a laptop;
    [quick] shrinks every sweep to smoke-test size. *)

type row = string list

type experiment = {
  id : string;          (** "E1" .. "E10" *)
  reproduces : string;  (** which table/theorem of the paper *)
  run : quick:bool -> row list; (** prints its report; returns CSV rows *)
}

val e1_table1 : experiment
(** Table 1: discrepancy after T and time-to-O(d) for all algorithms on
    four graph families, plus the D/SL/NL/NC property columns. *)

val e2_expander_scaling : experiment
(** Theorem 2.3(i): discrepancy after T vs n on random regular graphs;
    compares against d√(log n/µ) and the [17] bound d·log n/µ. *)

val e3_cycle_scaling : experiment
(** Theorem 2.3(ii): discrepancy after T vs n on cycles; fits the
    growth exponent (should be ≈ 1/2, i.e. √n). *)

val e4_time_to_od : experiment
(** Theorem 3.3: time to reach the O(d) band as a function of the
    self-preference s (via d° for SEND([x/d⁺])), plus rotor-router*. *)

val e5_roundfair_lower_bound : experiment
(** Theorem 4.1: the non-cumulatively-fair round-fair balancer freezes
    at Ω(d·diam). *)

val e6_stateless_lower_bound : experiment
(** Theorem 4.2: the stateless adversary freezes at Ω(d). *)

val e7_rotor_no_selfloops : experiment
(** Theorem 4.3: rotor-router with d⁺ = d on odd cycles oscillates at
    discrepancy 2dφ(G) forever. *)

val e8_potential_drop : experiment
(** Lemmas 3.5/3.7: monotone potential traces on a live good-s-balancer
    run. *)

val e9_selfloop_ablation : experiment
(** Conclusion, open question 1: discrepancy of the rotor-router as the
    number of self-loops d° varies from 0 to 2d. *)

val e10_dimension_exchange : experiment
(** Related-work contrast (§1.2): matching-model balancers reach O(1)
    discrepancy, beating the diffusive Ω(d) barrier. *)

val e11_irregular : experiment
(** Extension (§1.1 remark): the equalized-capacity reduction carries
    the results to non-regular graphs — stars, wheels, barbells. *)

val e12_rotor_walk_cover : experiment
(** Related-work substrate (§1.2 rotor walks): single-agent rotor-walk
    cover times vs the 2·m·diam bound and vs random walks. *)

val e13_heterogeneous : experiment
(** Extension (intro refs [1,2,4]): weighted tokens (discrepancy scales
    with w_max) and non-uniform machine speeds (height balancing). *)

val e14_equation7 : experiment
(** Equation (7) of the Theorem 2.3 proof: measured window-averaged
    deviation vs the explicit right-hand side (exact current sums). *)

val e15_fault_recovery : experiment
(** Robustness: recovery time back into the Theorem 2.3 band after node
    crashes, edge outages and load shocks, for the stateful rotor-router
    vs the stateless send-floor (see {!Faultsweep}). *)

val e16_unreliable_net : experiment
(** Beyond the paper's synchronous lossless model (§5 outlook): every
    token transfer rides an unreliable per-edge channel under an
    exactly-once retry protocol, with bounded staleness σ; reports the
    discrepancy inflation over the Theorem 2.3 band and the
    retransmission cost (see {!Netsweep}). *)

val e17_open_system : experiment
(** Open-system stability (arXiv 2302.12201 Theorem 2.3's shape):
    Poisson(λ) arrivals against per-node service rate µ.  Below
    capacity the steady-state discrepancy band is bounded and
    λ-monotone; above capacity the divergence detector fires (see
    {!Loadsweep}). *)

val all : experiment list
(** E1 .. E17 in order. *)

val run_by_id : quick:bool -> string -> (row list, string) Result.t
(** Run one experiment by its id (case-insensitive); [Error] lists the
    valid ids when unknown. *)
