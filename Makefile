.PHONY: all build test check bench-shard bench-net clean

all: build

build:
	dune build

test:
	dune runtest

# CI entry point: tier-1 tests plus the sharded-engine smoke (see bin/ci.sh).
check:
	sh bin/ci.sh

# Refresh the strong-scaling baseline (writes BENCH_shard.json).
bench-shard:
	dune exec bench/main.exe -- shard

# Refresh the lossy-network degradation sweep (writes BENCH_net.json).
bench-net:
	dune exec bench/main.exe -- net

clean:
	dune clean
