.PHONY: all build test lint check scenarios fuzz bench-shard bench-net \
	bench-faults bench-obs bench-workload bench-scenario bench-dist \
	bench-all clean

all: build

build:
	dune build

test:
	dune runtest

# Static analysis: the syntactic R1–R5 rules plus the typed,
# interprocedural T1–T4 families over the .cmt trees — determinism
# taint, domain safety, wire contract, exit-code contract (see
# DESIGN.md §16).  Exit 1 on findings or stale waivers.
lint:
	dune build @check
	dune exec bin/lb_lint.exe -- --typed lib bin

# CI entry point: tier-1 tests plus the sharded-engine smoke (see bin/ci.sh).
check:
	sh bin/ci.sh

# Type-check, canonically format and execute the example scenarios.
scenarios:
	dune exec bin/lb_scn.exe -- check examples/scenarios/*.lbs
	dune exec bin/lb_scn.exe -- run examples/scenarios/showcase.lbs

# Fuzz 1000 generated scenarios against the machine-wide invariants
# (token conservation, drain to quiescence, replay bit-determinism).
fuzz:
	dune exec bin/lb_scn.exe -- fuzz --seed 42 --count 1000

# Refresh the strong-scaling baseline (writes BENCH_shard.json).
bench-shard:
	dune exec bench/main.exe -- shard

# Refresh the lossy-network degradation sweep (writes BENCH_net.json).
bench-net:
	dune exec bench/main.exe -- net

# Refresh the fault-recovery sweep (writes BENCH_faults.json).
bench-faults:
	dune exec bench/main.exe -- faults

# Re-measure the observability overhead; exits non-zero if probes cost
# more than the 5% budget (writes BENCH_obs.json).
bench-obs:
	dune exec bench/main.exe -- obs

# Refresh the open-system stability sweep; exits non-zero if the
# stability shape breaks (writes BENCH_workload.json).
bench-workload:
	dune exec bench/main.exe -- workload

# Re-measure scenario-fuzz throughput; exits non-zero if any generated
# scenario breaks an invariant (writes BENCH_scenario.json).
bench-scenario:
	dune exec bench/main.exe -- scenario
	dune exec bin/jsonlint.exe -- BENCH_scenario.json

# Re-measure the forked-cluster throughput and crash-recovery stall;
# exits non-zero unless every run conserves tokens (writes
# BENCH_dist.json).
bench-dist:
	dune exec bench/main.exe -- dist
	dune exec bin/jsonlint.exe -- BENCH_dist.json

# Every bench section back to back, then validate every JSON artifact
# the sections hand-write.
bench-all:
	dune exec bench/main.exe -- shard faults net obs workload scenario dist
	dune exec bin/jsonlint.exe -- \
		BENCH_shard.json BENCH_faults.json BENCH_net.json BENCH_obs.json \
		BENCH_workload.json BENCH_scenario.json BENCH_dist.json

clean:
	dune clean
