(* Open-system traffic: jobs keep arriving (and completing) while the
   balancer runs — the regime the paper's one-shot model abstracts away
   and lib/workload models directly.

     dune exec examples/dynamic_arrivals.exe

   Part 1: four arrival processes of increasing adversarialness —
   Poisson, point, hotspot and diurnally modulated Poisson — stream
   into a 16x16 torus with per-node service capacity µ = 1 while
   SEND([x/d⁺]) keeps redistributing.  Because the paper's algorithms
   are local and never need a global restart, the discrepancy settles
   into a steady band of the same order as the static bound, instead
   of growing with the injected volume.

   Part 2: a flash crowd — 4096 tokens dumped on one node mid-run —
   and the time-to-absorb metric: rounds until the discrepancy returns
   to the Theorem 2.3 band. *)

module A = Workload.Arrival
module L = Workload.Lifetime
module S = Workload.Steady
module E = Workload.Engine

let () =
  let side = 16 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = Graphs.Graph.degree g in
  let rounds = 2000 in
  let batch = 64 in
  Printf.printf
    "16x16 torus, ~%d tokens/round arriving, service µ = 1 (capacity %d/round),\n\
     %d rounds of SEND([x/d⁺]) (d° = d):\n\n"
    batch n rounds;
  let scenarios =
    [
      ( "poisson arrivals",
        A.poisson ~rng:(Prng.Splitmix.create 99) ~rate:(float_of_int batch) );
      ("all on node 0", A.point ~node:0 ~per_round:batch);
      ("always on fullest node", A.hotspot ~per_round:batch);
      ( "diurnal poisson (p=500)",
        A.diurnal ~period:500 ~amplitude:0.5
          (A.poisson ~rng:(Prng.Splitmix.create 100) ~rate:(float_of_int batch)) );
    ]
  in
  let rows =
    List.map
      (fun (label, arrival) ->
        let balancer = Core.Send_round.make g ~self_loops:d in
        let config = E.config ~arrival ~lifetime:(L.service ~rate:1) ~rounds () in
        let r =
          Harness.Openrun.run ~config ~graph:g ~balancer
            ~init:(Core.Loads.flat ~n ~value:0) ()
        in
        let spark =
          Core.Metrics.sparkline
            (Array.map (fun (_, disc) -> float_of_int disc) r.E.discrepancy_series)
            ~width:40
        in
        [
          label;
          Printf.sprintf "%.1f" r.E.steady_discrepancy.S.mean;
          Printf.sprintf "%.1f" r.E.steady_discrepancy.S.p99;
          Printf.sprintf "%.1f" r.E.throughput;
          (if r.E.conserved then "yes" else "NO");
          spark;
        ])
      scenarios
  in
  Harness.Table.print
    ~align:
      [
        Harness.Table.Left; Harness.Table.Right; Harness.Table.Right;
        Harness.Table.Right; Harness.Table.Right; Harness.Table.Left;
      ]
    ~header:
      [
        "arrival process"; "steady mean"; "p99"; "thru/round"; "conserved";
        "discrepancy over time";
      ]
    ~rows ();
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let band =
    int_of_float (ceil (float_of_int d *. sqrt (log (float_of_int n) /. gap)))
  in
  Printf.printf
    "\nEven the adversarial patterns hold a bounded steady band near the one-shot\n\
     Theorem 2.3 bound (≈ %d at this size) — the injected volume never shows up\n\
     in the spread.\n\n" band;

  (* Part 2: flash crowd and time-to-absorb. *)
  let at = 500 and size = 4096 in
  let arrival =
    A.overlay
      (A.poisson ~rng:(Prng.Splitmix.create 7) ~rate:16.0)
      (A.flash_crowd ~at ~size ~node:0 ())
  in
  let balancer = Core.Send_round.make g ~self_loops:d in
  let config = E.config ~arrival ~lifetime:(L.service ~rate:1) ~rounds () in
  let r =
    Harness.Openrun.run ~config ~graph:g ~balancer
      ~init:(Core.Loads.flat ~n ~value:0) ()
  in
  Printf.printf
    "Flash crowd: %d tokens dumped on node 0 at round %d over quiet Poisson\n\
     traffic (λ = 16).  Discrepancy:\n\n  %s\n\n" size at
    (Core.Metrics.sparkline
       (Array.map (fun (_, disc) -> float_of_int disc) r.E.discrepancy_series)
       ~width:72);
  (match S.absorb_time ~series:r.E.discrepancy_series ~at ~band with
  | Some k ->
    Printf.printf
      "The spike is absorbed %d rounds after impact — the discrepancy is back\n\
       inside the Theorem 2.3 band (≤ %d) with no restart, no coordination.\n"
      k band
  | None ->
    Printf.printf
      "The spike was never absorbed within %d rounds (band %d).\n" rounds band);
  Printf.printf "Ledger: %d arrived, %d completed, %s.\n" r.E.total_arrivals
    r.E.total_departures
    (if r.E.conserved then "conserved" else "NOT conserved")
