(* lb_sim: run one load-balancing simulation from the command line.

   Examples:
     lb_sim --graph cycle:64 --algo rotor-router --init point:512
     lb_sim --graph torus:16x16 --algo send-round --self-loops 12 \
            --horizon continuous:2 --target 8 --audit
     lb_sim --graph random:256,6,42 --algo mimic --steps 500 --series
*)

exception Spec_error of string

let parse_graph s =
  let fail () =
    raise
      (Spec_error
         (Printf.sprintf
            "bad graph spec %S (expected cycle:N, torus:AxB, hypercube:R, \
             complete:N, clique:N,D or random:N,D,SEED)"
            s))
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "cycle"; n ] -> Harness.Experiment.Cycle (int_of n)
  | [ "hypercube"; r ] -> Harness.Experiment.Hypercube (int_of r)
  | [ "complete"; n ] -> Harness.Experiment.Complete (int_of n)
  | [ "torus"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ a; b ] when a = b -> Harness.Experiment.Torus2d (int_of a)
    | _ -> fail ())
  | [ "clique"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] -> Harness.Experiment.Clique_circulant { n = int_of n; d = int_of d }
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] -> Harness.Experiment.Random_regular { n = int_of n; d = int_of d; seed = 1 }
    | [ n; d; seed ] ->
      Harness.Experiment.Random_regular { n = int_of n; d = int_of d; seed = int_of seed }
    | _ -> fail ())
  | _ -> fail ()

let parse_init s =
  let fail () =
    raise
      (Spec_error
         (Printf.sprintf
            "bad init spec %S (expected point:TOTAL, bimodal:HIGH,LOW or \
             random:TOTAL[,SEED])"
            s))
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "point"; t ] -> Harness.Experiment.Point_mass (int_of t)
  | [ "bimodal"; args ] -> (
    match String.split_on_char ',' args with
    | [ h; l ] -> Harness.Experiment.Bimodal { high = int_of h; low = int_of l }
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ t ] -> Harness.Experiment.Uniform_random { total = int_of t; seed = 1 }
    | [ t; seed ] ->
      Harness.Experiment.Uniform_random { total = int_of t; seed = int_of seed }
    | _ -> fail ())
  | _ -> fail ()

let parse_algo ~self_loops ~seed s =
  let sl default = match self_loops with Some k -> k | None -> default in
  match s with
  | "rotor-router" -> Ok (fun d -> Harness.Experiment.Rotor_router { self_loops = sl d })
  | "rotor-router-star" -> Ok (fun _ -> Harness.Experiment.Rotor_router_star)
  | "send-floor" -> Ok (fun d -> Harness.Experiment.Send_floor { self_loops = sl d })
  | "send-round" -> Ok (fun d -> Harness.Experiment.Send_round { self_loops = sl (2 * d) })
  | "mimic" -> Ok (fun d -> Harness.Experiment.Mimic { self_loops = sl d })
  | "random-extra" ->
    Ok (fun d -> Harness.Experiment.Random_extra { self_loops = sl d; seed })
  | "random-rounding" ->
    Ok (fun d -> Harness.Experiment.Random_rounding { self_loops = sl d; seed })
  | other ->
    Error
      (Printf.sprintf
         "unknown algorithm %S (expected rotor-router, rotor-router-star, send-floor, \
          send-round, mimic, random-extra or random-rounding)"
         other)

let parse_horizon steps horizon =
  match (steps, horizon) with
  | Some s, None -> Ok (Harness.Experiment.Fixed_steps s)
  | None, None -> Ok (Harness.Experiment.Continuous_multiple 1.0)
  | None, Some h -> (
    match String.split_on_char ':' h with
    | [ "mixing"; c ] -> (
      match float_of_string_opt c with
      | Some c -> Ok (Harness.Experiment.Mixing_multiple c)
      | None -> Error "bad mixing multiple")
    | [ "continuous"; c ] -> (
      match float_of_string_opt c with
      | Some c -> Ok (Harness.Experiment.Continuous_multiple c)
      | None -> Error "bad continuous multiple")
    | _ -> Error "bad horizon (expected mixing:C or continuous:C)")
  | Some _, Some _ -> Error "--steps and --horizon are mutually exclusive"

let run graph algo self_loops init steps horizon target audit series seed =
  match
    try Ok (parse_graph graph, parse_init init) with Spec_error m -> Error m
  with
  | Error msg ->
    prerr_endline ("lb_sim: " ^ msg);
    exit 2
  | Ok (graph_spec, init_spec) ->
  match parse_algo ~self_loops ~seed algo with
  | Error msg ->
    prerr_endline ("lb_sim: " ^ msg);
    exit 2
  | Ok algo_of_degree -> (
    match parse_horizon steps horizon with
    | Error msg ->
      prerr_endline ("lb_sim: " ^ msg);
      exit 2
    | Ok horizon_spec ->
      let g = Harness.Experiment.build_graph graph_spec in
      let degree = Graphs.Graph.degree g in
      let algo_spec = algo_of_degree degree in
      let outcome =
        Harness.Experiment.run ~audit ?target ~graph:graph_spec ~algo:algo_spec
          ~init:init_spec ~horizon:horizon_spec ()
      in
      Printf.printf "graph:        %s (n=%d, d=%d)\n" outcome.Harness.Experiment.graph_label
        outcome.Harness.Experiment.n outcome.Harness.Experiment.degree;
      Printf.printf "algorithm:    %s (d°=%d, d⁺=%d)\n" outcome.Harness.Experiment.algo_label
        outcome.Harness.Experiment.self_loops
        (outcome.Harness.Experiment.degree + outcome.Harness.Experiment.self_loops);
      Printf.printf "spectral gap: µ = %.6g\n" outcome.Harness.Experiment.gap;
      Printf.printf "initial K:    %d\n" outcome.Harness.Experiment.initial_discrepancy;
      Printf.printf "steps run:    %d (horizon %d)\n" outcome.Harness.Experiment.steps
        outcome.Harness.Experiment.horizon;
      Printf.printf "final disc:   %d\n" outcome.Harness.Experiment.final_discrepancy;
      (match target with
      | Some t ->
        Printf.printf "time to ≤%d:  %s\n" t
          (match outcome.Harness.Experiment.time_to_target with
          | Some tt -> string_of_int tt
          | None -> "not reached")
      | None -> ());
      if outcome.Harness.Experiment.min_load_seen < 0 then
        Printf.printf "NEGATIVE LOAD observed (min %d)\n"
          outcome.Harness.Experiment.min_load_seen;
      (match outcome.Harness.Experiment.fairness with
      | Some rep -> Format.printf "fairness audit:@\n%a@." Core.Fairness.pp_report rep
      | None -> ());
      if series then begin
        (* Re-run with a fine-grained series for plotting. *)
        let n = Graphs.Graph.n g in
        let init_loads = Harness.Experiment.build_init init_spec ~n in
        let balancer = Harness.Experiment.build_balancer algo_spec g ~init:init_loads in
        let r =
          Core.Engine.run
            ~sample_every:(max 1 (outcome.Harness.Experiment.horizon / 50))
            ~graph:g ~balancer ~init:init_loads
            ~steps:outcome.Harness.Experiment.horizon ()
        in
        print_endline "step,discrepancy";
        Array.iter (fun (t, d) -> Printf.printf "%d,%d\n" t d) r.Core.Engine.series
      end)

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"SPEC"
        ~doc:"Graph: cycle:N, torus:AxA, hypercube:R, complete:N, clique:N,D, random:N,D[,SEED].")

let algo_arg =
  Arg.(
    value
    & opt string "rotor-router"
    & info [ "algo"; "a" ] ~docv:"NAME"
        ~doc:
          "Algorithm: rotor-router, rotor-router-star, send-floor, send-round, mimic, \
           random-extra, random-rounding.")

let self_loops_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "self-loops" ] ~docv:"K"
        ~doc:"Self-loops d° per node (default: algorithm-specific, usually d).")

let init_arg =
  Arg.(
    value
    & opt string "point:1024"
    & info [ "init"; "i" ] ~docv:"SPEC"
        ~doc:"Initial loads: point:TOTAL, bimodal:HIGH,LOW, random:TOTAL[,SEED].")

let steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "steps"; "s" ] ~docv:"N" ~doc:"Run exactly N steps.")

let horizon_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "horizon" ] ~docv:"SPEC"
        ~doc:
          "Horizon: mixing:C (C·ln(nK)/µ steps) or continuous:C (C× the continuous \
           balancing time; default continuous:1).")

let target_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "target" ] ~docv:"D" ~doc:"Also report the first step with discrepancy ≤ D.")

let audit_arg =
  Arg.(value & flag & info [ "audit" ] ~doc:"Run the Definition 2.1/3.1 fairness audit.")

let series_arg =
  Arg.(value & flag & info [ "series" ] ~doc:"Print a step,discrepancy CSV series.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Seed for randomized algorithms.")

let cmd =
  let doc = "simulate deterministic load-balancing schemes (Berenbrink et al., PODC 2015)" in
  Cmd.v
    (Cmd.info "lb_sim" ~version:"1.0.0" ~doc)
    Term.(
      const run $ graph_arg $ algo_arg $ self_loops_arg $ init_arg $ steps_arg
      $ horizon_arg $ target_arg $ audit_arg $ series_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
