(* lb_walk: rotor-router walk vs random walk on a graph — cover times
   and visit equidistribution.

   Example:
     lb_walk --graph torus:8x8 --seeds 5
*)

exception Spec_error of string

let parse_graph s =
  let fail () = raise (Spec_error (Printf.sprintf "bad graph spec %S" s)) in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "cycle"; n ] -> Graphs.Gen.cycle (int_of n)
  | [ "hypercube"; r ] -> Graphs.Gen.hypercube (int_of r)
  | [ "complete"; n ] -> Graphs.Gen.complete (int_of n)
  | [ "torus"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ a; b ] -> Graphs.Gen.torus [ int_of a; int_of b ]
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] ->
      Graphs.Gen.random_regular (Prng.Splitmix.create 1) ~n:(int_of n) ~d:(int_of d)
    | [ n; d; seed ] ->
      Graphs.Gen.random_regular
        (Prng.Splitmix.create (int_of seed))
        ~n:(int_of n) ~d:(int_of d)
    | _ -> fail ())
  | _ -> fail ()

let run graph seeds start =
  match try Ok (parse_graph graph) with Spec_error m -> Error m with
  | Error msg ->
    prerr_endline ("lb_walk: " ^ msg);
    exit 2
  | Ok g ->
    let n = Graphs.Graph.n g in
    if start < 0 || start >= n then begin
      prerr_endline "lb_walk: start node out of range";
      exit 2
    end;
    Printf.printf "graph: n=%d d=%d m=%d diam=%d\n" n (Graphs.Graph.degree g)
      (Graphs.Graph.edge_count g) (Graphs.Props.diameter g);
    let w = Rotorwalk.Walk.create g in
    (match Rotorwalk.Walk.cover_time w ~start with
    | Some t ->
      Printf.printf "rotor-walk cover time:   %d (Yanovski bound 2mD = %d)\n" t
        (Rotorwalk.Walk.yanovski_bound g)
    | None -> Printf.printf "rotor-walk cover time:   > cap\n");
    let covers =
      List.filter_map
        (fun seed ->
          let rng = Prng.Splitmix.create seed in
          Option.map float_of_int (Rotorwalk.Walk.random_cover_time rng g ~start))
        (List.init seeds (fun i -> i + 1))
    in
    if covers <> [] then begin
      let s = Harness.Series.summarize (Array.of_list covers) in
      Printf.printf "random-walk cover time:  mean %.0f ±%.0f over %d seeds (min %.0f, max %.0f)\n"
        s.Harness.Series.mean s.Harness.Series.stddev s.Harness.Series.n
        s.Harness.Series.min s.Harness.Series.max
    end;
    (* Visit equidistribution over a long walk. *)
    let fresh = Rotorwalk.Walk.create g in
    let steps = 200 * n in
    let visits = Rotorwalk.Walk.visits fresh ~start ~steps in
    let lo = Array.fold_left min max_int visits and hi = Array.fold_left max 0 visits in
    Printf.printf "visit counts after %d steps: min %d, max %d (spread %d)\n" steps lo hi
      (hi - lo)

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"SPEC"
        ~doc:"Graph: cycle:N, torus:AxB, hypercube:R, complete:N, random:N,D[,SEED].")

let seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"K" ~doc:"Random-walk replicas.")

let start_arg = Arg.(value & opt int 0 & info [ "start" ] ~docv:"NODE" ~doc:"Start node.")

let cmd =
  let doc = "rotor-router walks vs random walks (cover times, visit spread)" in
  Cmd.v
    (Cmd.info "lb_walk" ~version:"1.0.0" ~doc)
    Term.(const run $ graph_arg $ seeds_arg $ start_arg)

let () = exit (Cmd.eval cmd)
