(* lb_experiments: run the paper-reproduction experiment suite (E1–E10,
   DESIGN.md §4) from the command line.

   Examples:
     lb_experiments                 # everything, full size
     lb_experiments --quick e3 e7   # selected, smoke-test size
     lb_experiments --csv out.csv   # also dump the raw rows
*)

open Cmdliner

let run quick csv ids =
  let ids =
    match ids with [] -> List.map (fun e -> e.Harness.Suite.id) Harness.Suite.all | l -> l
  in
  let rows = ref [] in
  let ok = ref true in
  List.iter
    (fun id ->
      match Harness.Suite.run_by_id ~quick id with
      | Ok r -> rows := !rows @ r
      | Error msg ->
        prerr_endline ("lb_experiments: " ^ msg);
        ok := false)
    ids;
  (match csv with
  | Some path ->
    let width = List.fold_left (fun acc r -> max acc (List.length r)) 0 !rows in
    let header = List.init width (fun i -> if i = 0 then "experiment" else Printf.sprintf "c%d" i) in
    let pad r = r @ List.init (width - List.length r) (fun _ -> "") in
    Harness.Csv.write ~path ~header ~rows:(List.map pad !rows);
    Printf.printf "\nCSV written to %s\n" path
  | None -> ());
  if !ok then 0 else 2

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smoke-test sizes (seconds, not minutes).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Write all experiment rows to a CSV file.")

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e10).")

let cmd =
  let doc = "reproduce the tables and theorem shapes of Berenbrink et al. (PODC 2015)" in
  Cmd.v
    (Cmd.info "lb_experiments" ~version:"1.0.0" ~doc)
    Term.(const run $ quick_arg $ csv_arg $ ids_arg)

let () = exit (Cmd.eval' cmd)
