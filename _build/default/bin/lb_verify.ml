(* lb_verify: run every executable-proof validator on one configuration
   and print a certificate table.

   Checks performed (all from the paper's definitions/appendix):
     - Definition 2.1: cumulative δ-fairness + floor shares
     - Definition 3.1: round-fairness, ceiling cap, s-self-preference
     - equation (3) of the Theorem 2.3 proof: |F(e) − F_out/d⁺| bounded
     - Proposition A.2: remainder reformulation bound |r| ≤ d⁺
     - Lemma 3.5: black/red token coloring (φ argument)
     - Lemma 3.7: gap coloring (φ′ argument)
     - conservation + non-negativity (engine invariants; run aborts on
       violation)

   Example:
     lb_verify --graph torus:8x8 --algo send-round --self-loops 12 --steps 500
*)

exception Spec_error of string

let parse_graph s =
  let fail () = raise (Spec_error (Printf.sprintf "bad graph spec %S" s)) in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "cycle"; n ] -> Graphs.Gen.cycle (int_of n)
  | [ "hypercube"; r ] -> Graphs.Gen.hypercube (int_of r)
  | [ "complete"; n ] -> Graphs.Gen.complete (int_of n)
  | [ "torus"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ a; b ] -> Graphs.Gen.torus [ int_of a; int_of b ]
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] ->
      Graphs.Gen.random_regular (Prng.Splitmix.create 1) ~n:(int_of n) ~d:(int_of d)
    | _ -> fail ())
  | _ -> fail ()

let build_algo g ~self_loops = function
  | "rotor-router" ->
    let d0 = Option.value self_loops ~default:(Graphs.Graph.degree g) in
    Ok (fun () -> Core.Rotor_router.make g ~self_loops:d0)
  | "rotor-router-star" -> Ok (fun () -> Core.Rotor_router_star.make g)
  | "send-floor" ->
    let d0 = Option.value self_loops ~default:(Graphs.Graph.degree g) in
    Ok (fun () -> Core.Send_floor.make g ~self_loops:d0)
  | "send-round" ->
    let d0 = Option.value self_loops ~default:(2 * Graphs.Graph.degree g) in
    Ok (fun () -> Core.Send_round.make g ~self_loops:d0)
  | other -> Error (Printf.sprintf "unknown algorithm %S (deterministic core only)" other)

let mark ok = if ok then "PASS" else "FAIL"

let run graph algo self_loops total steps =
  match try Ok (parse_graph graph) with Spec_error m -> Error m with
  | Error msg ->
    prerr_endline ("lb_verify: " ^ msg);
    exit 2
  | Ok g -> (
    match build_algo g ~self_loops algo with
    | Error msg ->
      prerr_endline ("lb_verify: " ^ msg);
      exit 2
    | Ok mk ->
      let n = Graphs.Graph.n g in
      let probe = mk () in
      let d = probe.Core.Balancer.degree in
      let d0 = probe.Core.Balancer.self_loops in
      let dp = d + d0 in
      let init = Core.Loads.point_mass ~n ~total in
      Printf.printf "configuration: %s on %d nodes (d=%d, d°=%d), %d tokens, %d steps\n\n"
        probe.Core.Balancer.name n d d0 total steps;
      let failures = ref 0 in
      let record ok = if not ok then incr failures in
      (* 1. Fairness audit (Defs 2.1, 3.1 + eq (3)). *)
      let r = Core.Engine.run ~audit:true ~graph:g ~balancer:(mk ()) ~init ~steps () in
      let rep = Option.get r.Core.Engine.fairness in
      let rows1 =
        [
          [ "engine conservation + sends ≥ 0"; "PASS"; "(run completed)" ];
          [
            "Def 2.1(i) floor shares";
            mark rep.Core.Fairness.floor_share_ok;
            "every port ≥ ⌊x/d⁺⌋";
          ]
          [@warning "-a"];
          [
            "Def 2.1(ii) cumulative fairness";
            (if rep.Core.Fairness.cumulative_delta <= max 1 1 then "PASS" else "INFO");
            Printf.sprintf "empirical δ = %d" rep.Core.Fairness.cumulative_delta;
          ];
          [
            "Def 3.1 round-fairness";
            mark rep.Core.Fairness.round_fair;
            "every port ∈ {⌊⌋, ⌈⌉}";
          ];
          [
            "Def 3.1(3) ceiling cap";
            mark rep.Core.Fairness.ceil_cap_ok;
            "every port ≤ ⌈x/d⁺⌉";
          ];
          [
            "Def 3.1(2) self-preference";
            "INFO";
            (match rep.Core.Fairness.self_pref_s with
            | None -> "unconstrained (s up to d°)"
            | Some s -> Printf.sprintf "empirical s = %d" s);
          ];
          [
            "eq (3) deviation";
            (if rep.Core.Fairness.eq3_deviation <= 2.0 then "PASS" else "INFO");
            Printf.sprintf "max |F(e) − F_out/d⁺| = %.2f" rep.Core.Fairness.eq3_deviation;
          ];
        ]
      in
      record rep.Core.Fairness.floor_share_ok;
      (* 2. Proposition A.2. *)
      let wrapped, finish = Core.Remainder.wrap (mk ()) in
      ignore (Core.Engine.run ~graph:g ~balancer:wrapped ~init ~steps ());
      let arep = finish () in
      record arep.Core.Remainder.bound_ok;
      let rows2 =
        [
          [
            "Prop A.2 remainder bound";
            mark arep.Core.Remainder.bound_ok;
            Printf.sprintf "max |r| = %d ≤ d⁺ = %d" arep.Core.Remainder.max_abs_remainder
              arep.Core.Remainder.remainder_bound;
          ];
        ]
      in
      (* 3. Lemma 3.5 / 3.7 colorings around the average height. *)
      let avg_c = max 1 (int_of_float (Core.Loads.average init) / dp) in
      (* Verify the lemmas at the self-preference level the run actually
         exhibited (the audited s), not the nominal d° − d. *)
      let s_assumed =
        match rep.Core.Fairness.self_pref_s with
        | Some s -> max 1 s
        | None -> max 1 (d0 - d)
      in
      let col = Core.Coloring.check ~graph:g ~balancer:(mk ()) ~s:s_assumed ~c:avg_c ~init ~steps in
      let gap =
        Core.Coloring.check_gap ~graph:g ~balancer:(mk ()) ~s:s_assumed
          ~c:(max 1 (avg_c - 1)) ~init ~steps
      in
      let coloring_ok (r : Core.Coloring.report) =
        r.Core.Coloring.rule1_ok && r.Core.Coloring.no_forced_downgrade
        && r.Core.Coloring.drop_dominated && r.Core.Coloring.phi_equals_red
      in
      let note (r : Core.Coloring.report) =
        Printf.sprintf "c=%d: rule1 %b, no-downgrade %b, drop %b, φ-count %b"
          r.Core.Coloring.c r.Core.Coloring.rule1_ok r.Core.Coloring.no_forced_downgrade
          r.Core.Coloring.drop_dominated r.Core.Coloring.phi_equals_red
      in
      (* The colorings assume a good s-balancer (s ≥ 1); for merely
         cumulatively fair algorithms (audited s = 0, like the plain
         rotor-router) a coloring failure is informative, not fatal. *)
      let is_good_s =
        rep.Core.Fairness.round_fair && rep.Core.Fairness.ceil_cap_ok
        && rep.Core.Fairness.self_pref_s <> Some 0
      in
      if is_good_s then begin
        record (coloring_ok col);
        record (coloring_ok gap)
      end;
      let rows3 =
        [
          [
            "Lemma 3.5 coloring";
            (if coloring_ok col then "PASS" else if is_good_s then "FAIL" else "N/A");
            note col;
          ];
          [
            "Lemma 3.7 gap coloring";
            (if coloring_ok gap then "PASS" else if is_good_s then "FAIL" else "N/A");
            note gap;
          ];
        ]
      in
      Harness.Table.print
        ~header:[ "check"; "status"; "details" ]
        ~rows:(rows1 @ rows2 @ rows3) ();
      Printf.printf "\nfinal discrepancy after %d steps: %d (from K = %d)\n" steps
        (Core.Loads.discrepancy r.Core.Engine.final_loads)
        total;
      if !failures > 0 then begin
        Printf.printf "%d CHECK(S) FAILED\n" !failures;
        exit 1
      end
      else print_endline "all checks passed")

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"SPEC"
        ~doc:"Graph: cycle:N, torus:AxB, hypercube:R, complete:N, random:N,D.")

let algo_arg =
  Arg.(
    value
    & opt string "send-round"
    & info [ "algo"; "a" ] ~docv:"NAME"
        ~doc:"rotor-router, rotor-router-star, send-floor or send-round.")

let self_loops_arg =
  Arg.(value & opt (some int) None & info [ "self-loops" ] ~docv:"K" ~doc:"d° per node.")

let total_arg =
  Arg.(value & opt int 1024 & info [ "tokens" ] ~docv:"M" ~doc:"Total tokens (on node 0).")

let steps_arg =
  Arg.(value & opt int 500 & info [ "steps"; "s" ] ~docv:"N" ~doc:"Steps to verify over.")

let cmd =
  let doc = "execute the paper's proof obligations on a live run" in
  Cmd.v
    (Cmd.info "lb_verify" ~version:"1.0.0" ~doc)
    Term.(const run $ graph_arg $ algo_arg $ self_loops_arg $ total_arg $ steps_arg)

let () = exit (Cmd.eval cmd)
