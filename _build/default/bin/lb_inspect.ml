(* lb_inspect: structural and spectral analysis of a balancing graph.

   Examples:
     lb_inspect --graph cycle:64
     lb_inspect --graph random:256,6,7 --self-loops 0,1,6,12
*)

exception Spec_error of string

let parse_graph s =
  let fail () =
    raise
      (Spec_error
         (Printf.sprintf
            "bad graph spec %S (expected cycle:N, torus:AxA, hypercube:R, \
             complete:N, clique:N,D or random:N,D[,SEED])"
            s))
  in
  let int_of x = match int_of_string_opt x with Some v -> v | None -> fail () in
  match String.split_on_char ':' s with
  | [ "cycle"; n ] -> Harness.Experiment.Cycle (int_of n)
  | [ "hypercube"; r ] -> Harness.Experiment.Hypercube (int_of r)
  | [ "complete"; n ] -> Harness.Experiment.Complete (int_of n)
  | [ "torus"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ a; b ] when a = b -> Harness.Experiment.Torus2d (int_of a)
    | _ -> fail ())
  | [ "clique"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] -> Harness.Experiment.Clique_circulant { n = int_of n; d = int_of d }
    | _ -> fail ())
  | [ "random"; args ] -> (
    match String.split_on_char ',' args with
    | [ n; d ] -> Harness.Experiment.Random_regular { n = int_of n; d = int_of d; seed = 1 }
    | [ n; d; seed ] ->
      Harness.Experiment.Random_regular { n = int_of n; d = int_of d; seed = int_of seed }
    | _ -> fail ())
  | _ -> fail ()

let parse_self_loops d s =
  match s with
  | None -> [ 0; 1; d; 2 * d ]
  | Some s ->
    List.map
      (fun tok ->
        match int_of_string_opt (String.trim tok) with
        | Some v when v >= 0 -> v
        | _ -> raise (Spec_error (Printf.sprintf "bad self-loop count %S" tok)))
      (String.split_on_char ',' s)

let run graph self_loops k =
  match try Ok (parse_graph graph) with Spec_error m -> Error m with
  | Error msg ->
    prerr_endline ("lb_inspect: " ^ msg);
    exit 2
  | Ok spec -> (
    let g = Harness.Experiment.build_graph spec in
    let n = Graphs.Graph.n g in
    let d = Graphs.Graph.degree g in
    Printf.printf "graph:      %s\n" (Harness.Experiment.graph_name spec);
    Printf.printf "nodes:      %d\n" n;
    Printf.printf "degree:     %d\n" d;
    Printf.printf "edges:      %d\n" (Graphs.Graph.edge_count g);
    Printf.printf "connected:  %b\n" (Graphs.Props.is_connected g);
    Printf.printf "bipartite:  %b\n" (Graphs.Props.is_bipartite g);
    if Graphs.Props.is_connected g then
      Printf.printf "diameter:   %d\n" (Graphs.Props.diameter g);
    (match Graphs.Props.girth g with
    | Some girth -> Printf.printf "girth:      %d\n" girth
    | None -> Printf.printf "girth:      none (forest)\n");
    (match Graphs.Props.odd_girth g with
    | Some og -> Printf.printf "odd girth:  %d (φ(G) = %d)\n" og ((og - 1) / 2)
    | None -> Printf.printf "odd girth:  none (bipartite)\n");
    match try Ok (parse_self_loops d self_loops) with Spec_error m -> Error m with
    | Error msg ->
      prerr_endline ("lb_inspect: " ^ msg);
      exit 2
    | Ok loops ->
      Printf.printf "\nBalancing graph G⁺ per self-loop count (K = %d):\n" k;
      let rows =
        List.map
          (fun d0 ->
            let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d0 in
            (* A numerically-zero gap (|λ| = 1: disconnected, or bipartite
               with no laziness) means the walk never mixes. *)
            let degenerate = gap < 1e-9 in
            let t =
              if degenerate then "∞"
              else
                string_of_int
                  (Graphs.Spectral.horizon ~gap ~n ~initial_discrepancy:k ~c:1.0)
            in
            let bound =
              if degenerate then "-"
              else
                let bound_i = float_of_int d *. sqrt (log (float_of_int n) /. gap) in
                let bound_ii = float_of_int d *. sqrt (float_of_int n) in
                Printf.sprintf "%.1f" (min bound_i bound_ii)
            in
            [
              string_of_int d0;
              string_of_int (d + d0);
              (if degenerate then "~0" else Printf.sprintf "%.6f" gap);
              t;
              bound;
            ])
          loops
      in
      Harness.Table.print
        ~align:
          [
            Harness.Table.Right; Harness.Table.Right; Harness.Table.Right;
            Harness.Table.Right; Harness.Table.Right;
          ]
        ~header:[ "d°"; "d⁺"; "µ"; "T = ln(nK)/µ"; "Thm 2.3 bound" ]
        ~rows ())

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"SPEC"
        ~doc:"Graph: cycle:N, torus:AxA, hypercube:R, complete:N, clique:N,D, random:N,D[,SEED].")

let self_loops_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "self-loops" ] ~docv:"LIST"
        ~doc:"Comma-separated d° values to analyze (default 0,1,d,2d).")

let k_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "k" ] ~docv:"K" ~doc:"Initial discrepancy used in the horizon column.")

let cmd =
  let doc = "inspect a load-balancing graph: structure, spectrum, horizons" in
  Cmd.v
    (Cmd.info "lb_inspect" ~version:"1.0.0" ~doc)
    Term.(const run $ graph_arg $ self_loops_arg $ k_arg)

let () = exit (Cmd.eval cmd)
