(* Quickstart: the smallest end-to-end use of the library.

     dune exec examples/quickstart.exe

   Build a graph, drop all the tokens on one node, run the paper's
   ROTOR-ROUTER for the mixing-time horizon, and inspect the result. *)

let () =
  (* A 16×16 torus: 256 processors, each with 4 neighbors. *)
  let graph = Graphs.Gen.torus [ 16; 16 ] in
  let n = Graphs.Graph.n graph in
  let d = Graphs.Graph.degree graph in

  (* 8 tokens per node on average, all starting on node 0. *)
  let init = Core.Loads.point_mass ~n ~total:(8 * n) in
  Printf.printf "start: %d tokens on node 0 of a %d-node torus (discrepancy %d)\n"
    (Core.Loads.total init) n
    (Core.Loads.discrepancy init);

  (* The paper's balancing horizon T = O(log(Kn)/µ).  The spectral gap µ
     comes from the balancing graph G⁺ = G plus d self-loops per node. *)
  let gap = Graphs.Spectral.eigenvalue_gap graph ~self_loops:d in
  let steps =
    Graphs.Spectral.horizon ~gap ~n ~initial_discrepancy:(Core.Loads.discrepancy init)
      ~c:4.0
  in
  Printf.printf "spectral gap µ = %.5f, running T = %d steps\n" gap steps;

  (* ROTOR-ROUTER with d self-loops — a cumulatively 1-fair balancer, so
     Theorem 2.3 promises O(d·√(log n/µ)) discrepancy after T. *)
  let balancer = Core.Rotor_router.make graph ~self_loops:d in
  let result = Core.Engine.run ~audit:true ~graph ~balancer ~init ~steps () in

  Printf.printf "after %d steps: discrepancy %d (max %d, min %d, average %.1f)\n"
    result.Core.Engine.steps_run
    (Core.Loads.discrepancy result.Core.Engine.final_loads)
    (Core.Loads.max_load result.Core.Engine.final_loads)
    (Core.Loads.min_load result.Core.Engine.final_loads)
    (Core.Loads.average result.Core.Engine.final_loads);

  (* The audit verifies the class membership the theorem needs. *)
  match result.Core.Engine.fairness with
  | Some report ->
    Printf.printf "audited: cumulatively %d-fair, floor-share %b, round-fair %b\n"
      report.Core.Fairness.cumulative_delta report.Core.Fairness.floor_share_ok
      report.Core.Fairness.round_fair
  | None -> ()
