(* Irregular networks: the paper's §1.1 remark — "our results can be
   extended to non-regular graphs" — exercised on three topologies a
   regular model cannot express.

     dune exec examples/irregular_network.exe

   The equalized-capacity reduction gives every node D ports (originals
   + enough self-loops to reach D); the walk matrix is then doubly
   stochastic and the flat vector is again the fixed point, so the same
   algorithms apply verbatim. *)

let () =
  let scenarios =
    [
      ("star(64): one coordinator, 63 workers", Irregular.Igraph.star 64);
      ("wheel(64): hub + rim", Irregular.Igraph.wheel 64);
      ( "barbell(8,8): two clusters, thin bridge",
        Irregular.Igraph.barbell ~clique:8 ~path:8 );
      ( "random irregular (n=64)",
        Irregular.Igraph.random_connected (Prng.Splitmix.create 12) ~n:64 ~extra_edges:40
      );
    ]
  in
  let rows =
    List.map
      (fun (label, g) ->
        let n = Irregular.Igraph.n g in
        let dmax = Irregular.Igraph.max_degree g in
        let capacity = 2 * dmax in
        let gap = Irregular.Ispectral.eigenvalue_gap g ~capacity in
        let total = 64 * n in
        let init = Array.make n 0 in
        init.(0) <- total;
        let steps =
          Irregular.Ispectral.horizon ~gap ~n ~initial_discrepancy:total ~c:4.0
        in
        let balancer = Irregular.Ibalancer.rotor_router g ~capacity in
        let r = Irregular.Iengine.run ~graph:g ~balancer ~init ~steps () in
        let hi = Array.fold_left max min_int r.Irregular.Iengine.final_loads in
        let lo = Array.fold_left min max_int r.Irregular.Iengine.final_loads in
        [
          label;
          Printf.sprintf "%d..%d" (Irregular.Igraph.min_degree g) dmax;
          string_of_int capacity;
          Printf.sprintf "%.5f" gap;
          string_of_int steps;
          string_of_int (hi - lo);
        ])
      scenarios
  in
  print_endline
    "rotor-router on irregular graphs (equalized capacity D = 2·max-degree),\n\
     64 tokens/node average, all starting on node 0:\n";
  Harness.Table.print
    ~align:
      [
        Harness.Table.Left; Harness.Table.Right; Harness.Table.Right;
        Harness.Table.Right; Harness.Table.Right; Harness.Table.Right;
      ]
    ~header:[ "topology"; "degrees"; "D"; "µ"; "T"; "discrepancy@T" ]
    ~rows ();
  print_newline ();
  print_endline
    "Skew costs time, not correctness: the star's µ is tiny because the hub's\n\
     capacity dominates, yet the discrepancy still collapses to O(D)."
