(* Record & replay: capture a run as a portable trace file, audit it
   offline, and re-execute it bit-for-bit.

     dune exec examples/record_replay.exe [trace-file]

   Useful for regression anchoring (check in a trace; CI replays it) and
   for debugging randomized baselines (the trace freezes the coin
   flips). *)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "loadbal_demo.trace"
  in
  let g = Graphs.Gen.torus [ 8; 8 ] in
  let n = Graphs.Graph.n g in
  let init = Core.Loads.point_mass ~n ~total:(20 * n) in
  (* A randomized baseline: exactly the kind of run a trace freezes. *)
  let balancer = Baselines.Random_extra.make (Prng.Splitmix.create 2024) g ~self_loops:4 in

  let trace, original = Trace.record ~graph:g ~balancer ~init ~steps:200 in
  Trace.save ~path trace;
  Printf.printf "recorded 200 steps of %s into %s (%d bytes)\n"
    balancer.Core.Balancer.name path
    (Unix.stat path).Unix.st_size;

  let reloaded = Trace.load ~path in
  (match Trace.verify reloaded with
  | Ok () -> print_endline "offline verification: conservation + sends OK"
  | Error msg -> Printf.printf "offline verification FAILED: %s\n" msg);

  let replayed = Trace.replay reloaded in
  Printf.printf "replayed final discrepancy: %d (original: %d) — identical loads: %b\n"
    (Core.Loads.discrepancy replayed.Core.Engine.final_loads)
    (Core.Loads.discrepancy original.Core.Engine.final_loads)
    (replayed.Core.Engine.final_loads = original.Core.Engine.final_loads)
