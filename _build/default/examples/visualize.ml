(* Visualize: render a balancing run as SVG plots.

     dune exec examples/visualize.exe [output-dir]

   Produces, in the output directory (default "plots"):
     race.svg          discrepancy-vs-time curves for four algorithms
     torus_before.svg  load heatmap at t = 0 (point mass)
     torus_mid.svg     load heatmap at t = T/8
     torus_after.svg   load heatmap at t = T
     cycle_thm43.svg   the Theorem 4.3 frozen oscillation on an odd cycle *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "plots" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let side = 16 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = Graphs.Graph.degree g in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let finit = Array.map float_of_int init in
  let t =
    Option.get (Graphs.Spectral.continuous_balancing_time g ~self_loops:d ~init:finit ())
  in

  (* Discrepancy race. *)
  let contenders =
    [
      ("rotor-router", Core.Rotor_router.make g ~self_loops:d);
      ("send-round", Core.Send_round.make g ~self_loops:d);
      ("mimic [4]", Baselines.Mimic.make g ~self_loops:d ~init);
      ( "random-extra [5]",
        Baselines.Random_extra.make (Prng.Splitmix.create 3) g ~self_loops:d );
    ]
  in
  let series =
    List.map
      (fun (_, balancer) ->
        let r =
          Core.Engine.run ~sample_every:(max 1 (t / 60)) ~graph:g ~balancer ~init
            ~steps:t ()
        in
        r.Core.Engine.series)
      contenders
  in
  Viz.Svg.write
    ~path:(Filename.concat dir "race.svg")
    (Viz.Plots.discrepancy_plot ~series ~labels:(List.map fst contenders)
       ~title:(Printf.sprintf "16x16 torus, %d tokens on node 0, T = %d" (16 * n) t)
       ~log_y:true ());

  (* Heatmaps at three moments of the rotor-router run. *)
  let snapshot steps =
    let balancer = Core.Rotor_router.make g ~self_loops:d in
    if steps = 0 then init
    else
      (Core.Engine.run ~graph:g ~balancer ~init ~steps ()).Core.Engine.final_loads
  in
  List.iter
    (fun (name, steps) ->
      Viz.Svg.write
        ~path:(Filename.concat dir name)
        (Viz.Plots.torus_heatmap ~side ~loads:(snapshot steps)
           ~title:(Printf.sprintf "rotor-router, t = %d" steps)
           ()))
    [ ("torus_before.svg", 0); ("torus_mid.svg", t / 8); ("torus_after.svg", t) ];

  (* The Theorem 4.3 oscillation on an odd cycle. *)
  let n_cyc = 33 in
  let balancer, cyc_init = Baselines.Odd_cycle_adversary.setup ~n:n_cyc ~base_flow:n_cyc in
  let cg = Baselines.Odd_cycle_adversary.graph ~n:n_cyc in
  let r = Core.Engine.run ~graph:cg ~balancer ~init:cyc_init ~steps:101 () in
  Viz.Svg.write
    ~path:(Filename.concat dir "cycle_thm43.svg")
    (Viz.Plots.cycle_heatmap ~loads:r.Core.Engine.final_loads
       ~title:
         (Printf.sprintf "Thm 4.3: odd cycle n=%d after 101 steps (discrepancy %d, forever)"
            n_cyc
            (Core.Loads.discrepancy r.Core.Engine.final_loads))
       ());

  Printf.printf "wrote 5 SVG plots to %s/\n" dir
