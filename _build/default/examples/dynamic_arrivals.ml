(* Dynamic arrivals: the scenario the paper's model abstracts away —
   jobs keep arriving (and completing) while the balancer runs.

     dune exec examples/dynamic_arrivals.exe

   Every round, a batch of B new tokens lands on the network while
   SEND([x/d⁺]) keeps redistributing — under three arrival patterns of
   increasing adversarialness.  Because the paper's algorithms are local
   and never need a global restart, they handle this regime as-is: the
   discrepancy settles into a steady band of the same order as the
   static bound, instead of growing with the injected volume. *)

let () =
  let side = 16 in
  let g = Graphs.Gen.torus [ side; side ] in
  let n = side * side in
  let d = Graphs.Graph.degree g in
  let rounds = 2000 in
  let batch = 64 in
  Printf.printf
    "16x16 torus, %d tokens/round injected, %d rounds of SEND([x/d⁺]) (d° = d):\n\n"
    batch rounds;
  let scenarios =
    [
      ( "uniform arrivals",
        Core.Dynamic.Uniform_batch { rng = Prng.Splitmix.create 99; per_round = batch } );
      ("all on node 0", Core.Dynamic.Point_batch { node = 0; per_round = batch });
      ("always on fullest node", Core.Dynamic.Max_loaded_batch { per_round = batch });
    ]
  in
  let rows =
    List.map
      (fun (label, injection) ->
        let balancer = Core.Send_round.make g ~self_loops:d in
        let r =
          Core.Dynamic.run ~graph:g ~balancer ~injection
            ~init:(Core.Loads.flat ~n ~value:0) ~rounds ()
        in
        let spark =
          Core.Metrics.sparkline
            (Array.map (fun (_, disc) -> float_of_int disc) r.Core.Dynamic.series)
            ~width:40
        in
        [
          label;
          Printf.sprintf "%.1f" r.Core.Dynamic.steady_mean;
          Printf.sprintf "%.1f" r.Core.Dynamic.steady_p95;
          string_of_int r.Core.Dynamic.steady_max;
          spark;
        ])
      scenarios
  in
  Harness.Table.print
    ~align:
      [
        Harness.Table.Left; Harness.Table.Right; Harness.Table.Right;
        Harness.Table.Right; Harness.Table.Left;
      ]
    ~header:[ "arrival pattern"; "steady mean"; "p95"; "max"; "discrepancy over time" ]
    ~rows ();
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  Printf.printf
    "\n%d tokens were injected per run; for scale the one-shot Theorem 2.3 bound\n\
     at this size is ≈ %.0f.  Even the adversarial patterns hold a bounded\n\
     steady band — the injected volume (%d) never shows up in the spread.\n"
    (rounds * batch)
    (float_of_int d *. sqrt (log (float_of_int n) /. gap))
    (rounds * batch)
