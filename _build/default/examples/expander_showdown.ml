(* Expander showdown: every algorithm of Table 1 races on the same
   random regular graph — the setting where the paper's improvement over
   Rabani et al. [17] is starkest (O(√log n) vs Θ(log n)).

     dune exec examples/expander_showdown.exe

   The scenario is the paper's motivating one: a batch of jobs arrives
   at one server of a cluster whose interconnect is an expander, and the
   servers must spread them with no coordination beyond neighbor
   token transfers. *)

let () =
  let n = 512 and d = 6 in
  let graph = Graphs.Gen.random_regular (Prng.Splitmix.create 2024) ~n ~d in
  let jobs = 16 * n in
  let init = Core.Loads.point_mass ~n ~total:jobs in
  let gap = Graphs.Spectral.eigenvalue_gap graph ~self_loops:d in
  Printf.printf
    "cluster: random %d-regular graph on %d servers (µ = %.4f)\n\
     workload: %d jobs arriving at server 0\n\n"
    d n gap jobs;

  (* Horizon: the continuous process's own balancing time. *)
  let finit = Array.map float_of_int init in
  let t =
    Option.get
      (Graphs.Spectral.continuous_balancing_time graph ~self_loops:d ~init:finit ())
  in
  Printf.printf "continuous diffusion balances in T = %d steps; running every\n\
                 discrete algorithm for the same T:\n\n" t;

  let contenders =
    [
      ("rotor-router", Core.Rotor_router.make graph ~self_loops:d);
      ("rotor-router*", Core.Rotor_router_star.make graph);
      ("send-floor", Core.Send_floor.make graph ~self_loops:d);
      ("send-round", Core.Send_round.make graph ~self_loops:d);
      ("send-round 3d", Core.Send_round.make graph ~self_loops:(3 * d));
      ("mimic [4]", Baselines.Mimic.make graph ~self_loops:d ~init);
      ( "random-extra [5]",
        Baselines.Random_extra.make (Prng.Splitmix.create 1) graph ~self_loops:d );
      ( "random-rounding [18]",
        Baselines.Random_rounding.make (Prng.Splitmix.create 2) graph ~self_loops:d );
    ]
  in
  let rows =
    List.map
      (fun (name, balancer) ->
        let r = Core.Engine.run ~graph ~balancer ~init ~steps:t () in
        let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
        let neg = r.Core.Engine.min_load_seen < 0 in
        [ name; string_of_int disc; (if neg then "yes" else "no") ])
      contenders
  in
  Harness.Table.print
    ~align:[ Harness.Table.Left; Harness.Table.Right; Harness.Table.Left ]
    ~header:[ "algorithm"; "discrepancy after T"; "negative load?" ]
    ~rows ();
  Printf.printf
    "\nFor reference, Theorem 2.3(i) bounds the deterministic cumulatively fair\n\
     rows by d·√(log n/µ) ≈ %.0f, and the [17] class only by d·log n/µ ≈ %.0f.\n"
    (float_of_int d *. sqrt (log (float_of_int n) /. gap))
    (float_of_int d *. log (float_of_int n) /. gap)
