(* Lower bounds live: the paper's three adversarial constructions
   executed step by step, showing exactly how each well-behaved-looking
   scheme gets stuck.

     dune exec examples/lower_bounds.exe *)

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  (* Theorem 4.1: round-fair ≠ cumulatively fair. *)
  section "Theorem 4.1: a round-fair balancer frozen at Θ(d·diam)";
  let g = Graphs.Gen.cycle 32 in
  let balancer, init = Baselines.Adversary_roundfair.make g in
  let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:500 () in
  Printf.printf
    "cycle(32), diam %d: initial discrepancy %d, after 500 steps still %d\n\
    \  (loads identical to start: %b)\n"
    (Graphs.Props.diameter g)
    (Core.Loads.discrepancy init)
    (Core.Loads.discrepancy r.Core.Engine.final_loads)
    (r.Core.Engine.final_loads = init);
  let rr = Core.Rotor_router.make g ~self_loops:2 in
  let r2 = Core.Engine.run ~graph:g ~balancer:rr ~init ~steps:5000 () in
  Printf.printf "  the cumulatively fair rotor-router on the same start: %d\n"
    (Core.Loads.discrepancy r2.Core.Engine.final_loads);

  (* Theorem 4.2: stateless algorithms. *)
  section "Theorem 4.2: a stateless scheme frozen at Θ(d)";
  let d = 12 in
  let g = Baselines.Adversary_stateless.graph ~n:(4 * d) ~d in
  let balancer, init = Baselines.Adversary_stateless.make g ~d in
  let r = Core.Engine.run ~graph:g ~balancer ~init ~steps:500 () in
  Printf.printf
    "clique-circulant(n=%d, d=%d): the ℓ = %d tokens on each clique node just\n\
     circulate inside the clique forever — discrepancy %d after 500 steps\n\
     (frozen: %b)\n"
    (4 * d) d
    (Baselines.Adversary_stateless.clique_size ~d - 1)
    (Core.Loads.discrepancy r.Core.Engine.final_loads)
    (r.Core.Engine.final_loads = init);

  (* Theorem 4.3: rotor-router without self-loops. *)
  section "Theorem 4.3: rotor-router without self-loops oscillating at Θ(n)";
  let n = 65 in
  let balancer, init = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n in
  let g = Baselines.Odd_cycle_adversary.graph ~n in
  Printf.printf "odd cycle(%d), φ = %d: node 0 load over the first 6 steps: " n ((n - 1) / 2);
  let loads_of_node0 = ref [ init.(0) ] in
  let hook _ loads = loads_of_node0 := loads.(0) :: !loads_of_node0 in
  ignore (Core.Engine.run ~hook ~graph:g ~balancer ~init ~steps:6 ());
  List.iter (Printf.printf "%d ") (List.rev !loads_of_node0);
  print_newline ();
  let balancer2, _ = Baselines.Odd_cycle_adversary.setup ~n ~base_flow:n in
  let r = Core.Engine.run ~graph:g ~balancer:balancer2 ~init ~steps:10_001 () in
  Printf.printf
    "after 10001 steps the discrepancy is still %d (2dφ = %d); with d° = d\n\
     self-loops the same rotor-router would be at O(√n).\n"
    (Core.Loads.discrepancy r.Core.Engine.final_loads)
    (Baselines.Odd_cycle_adversary.expected_amplitude ~n)
