(* Torus vs cycle: how topology (through the spectral gap µ) governs
   both the balancing time and the residual discrepancy.

     dune exec examples/torus_vs_cycle.exe

   The scenario: the same 4096 tokens and the same SEND([x/d⁺]) firmware
   deployed on three interconnects of 64 nodes each — a cycle (worst
   expansion), a 2-D torus, and a hypercube (best expansion).  The paper
   predicts discrepancy O(d·min{√(log n/µ), √n}) after T = O(log(Kn)/µ):
   a cycle pays both a long T and a √n-type residue, while the hypercube
   is fast and tight. *)

let () =
  let n = 64 in
  let tokens = 4096 in
  let topologies =
    [
      ("cycle(64)", Graphs.Gen.cycle 64);
      ("torus(8x8)", Graphs.Gen.torus [ 8; 8 ]);
      ("hypercube(6)", Graphs.Gen.hypercube 6);
    ]
  in
  Printf.printf
    "same workload (%d tokens on node 0 of %d nodes), same algorithm\n\
     (SEND([x/d⁺]) with d° = d), three interconnects:\n\n"
    tokens n;
  let rows =
    List.map
      (fun (name, graph) ->
        let d = Graphs.Graph.degree graph in
        let init = Core.Loads.point_mass ~n ~total:tokens in
        let gap = Graphs.Spectral.eigenvalue_gap graph ~self_loops:d in
        let finit = Array.map float_of_int init in
        let t =
          Option.get
            (Graphs.Spectral.continuous_balancing_time graph ~self_loops:d ~init:finit ())
        in
        let balancer = Core.Send_round.make graph ~self_loops:d in
        let r = Core.Engine.run ~graph ~balancer ~init ~steps:t () in
        let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
        let bound =
          float_of_int d
          *. min (sqrt (log (float_of_int n) /. gap)) (sqrt (float_of_int n))
        in
        [
          name;
          string_of_int d;
          Printf.sprintf "%.5f" gap;
          string_of_int t;
          string_of_int disc;
          Printf.sprintf "%.1f" bound;
        ])
      topologies
  in
  Harness.Table.print
    ~align:
      [
        Harness.Table.Left; Harness.Table.Right; Harness.Table.Right;
        Harness.Table.Right; Harness.Table.Right; Harness.Table.Right;
      ]
    ~header:[ "topology"; "d"; "µ"; "T (steps)"; "discrepancy@T"; "Thm 2.3 bound" ]
    ~rows ();
  print_newline ();
  print_endline
    "The cycle needs three orders of magnitude more steps (µ = Θ(1/n²)) and\n\
     still lands on the √n branch of the bound; the hypercube balances in a\n\
     few dozen steps to within a handful of tokens."
