examples/dynamic_arrivals.ml: Array Core Graphs Harness List Printf Prng
