examples/quickstart.mli:
