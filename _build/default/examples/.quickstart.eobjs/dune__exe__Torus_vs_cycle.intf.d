examples/torus_vs_cycle.mli:
