examples/lower_bounds.ml: Array Baselines Core Graphs List Printf
