examples/visualize.mli:
