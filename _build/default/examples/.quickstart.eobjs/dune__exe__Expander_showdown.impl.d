examples/expander_showdown.ml: Array Baselines Core Graphs Harness List Option Printf Prng
