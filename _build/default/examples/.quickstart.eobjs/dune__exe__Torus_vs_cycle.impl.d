examples/torus_vs_cycle.ml: Array Core Graphs Harness List Option Printf
