examples/irregular_network.mli:
