examples/quickstart.ml: Core Graphs Printf
