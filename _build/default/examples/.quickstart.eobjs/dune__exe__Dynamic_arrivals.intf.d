examples/dynamic_arrivals.mli:
