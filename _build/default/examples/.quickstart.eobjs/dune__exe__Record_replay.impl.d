examples/record_replay.ml: Array Baselines Core Filename Graphs Printf Prng Sys Trace Unix
