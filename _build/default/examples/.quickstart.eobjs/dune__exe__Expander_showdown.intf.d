examples/expander_showdown.mli:
