examples/irregular_network.ml: Array Harness Irregular List Printf Prng
