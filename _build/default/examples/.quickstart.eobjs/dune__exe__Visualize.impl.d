examples/visualize.ml: Array Baselines Core Filename Graphs List Option Printf Prng Sys Viz
