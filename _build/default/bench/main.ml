(* The benchmark harness (deliverable (d)).

   One section per table/figure-equivalent of the paper — E1 (Table 1)
   through E10, see DESIGN.md §4 — plus Bechamel microbenchmarks of the
   engine's per-step throughput for each algorithm family.

   Usage:
     dune exec bench/main.exe                 # full suite + microbenchmarks
     dune exec bench/main.exe -- --quick      # smoke-test sizes
     dune exec bench/main.exe -- e3 e7        # selected experiments
     dune exec bench/main.exe -- micro        # microbenchmarks only
     dune exec bench/main.exe -- --csv out.csv e1
*)

let microbench_tests () =
  let open Bechamel in
  let mk_engine_test ~name ~graph ~balancer_of ~init ~steps =
    Test.make ~name
      (Staged.stage (fun () ->
           let balancer = balancer_of () in
           ignore (Core.Engine.run ~graph ~balancer ~init ~steps ())))
  in
  let n = 1024 in
  let d = 8 in
  let g = Graphs.Gen.random_regular (Prng.Splitmix.create 1) ~n ~d in
  let init = Core.Loads.point_mass ~n ~total:(16 * n) in
  let steps = 8 in
  [
    mk_engine_test ~name:"rotor-router/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Rotor_router.make g ~self_loops:d)
      ~init ~steps;
    mk_engine_test ~name:"rotor-router*/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Rotor_router_star.make g)
      ~init ~steps;
    mk_engine_test ~name:"send-floor/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Send_floor.make g ~self_loops:d)
      ~init ~steps;
    mk_engine_test ~name:"send-round/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Core.Send_round.make g ~self_loops:(2 * d))
      ~init ~steps;
    mk_engine_test ~name:"mimic/1024n-8steps" ~graph:g
      ~balancer_of:(fun () -> Baselines.Mimic.make g ~self_loops:d ~init)
      ~init ~steps;
    mk_engine_test ~name:"random-extra/1024n-8steps" ~graph:g
      ~balancer_of:(fun () ->
        Baselines.Random_extra.make (Prng.Splitmix.create 2) g ~self_loops:d)
      ~init ~steps;
    Test.make ~name:"continuous/1024n-8steps"
      (Staged.stage
         (let finit = Array.map float_of_int init in
          fun () ->
            ignore
              (Baselines.Continuous.run ~graph:g ~self_loops:d ~init:finit ~steps ())));
    Test.make ~name:"spectral-gap/torus16x16"
      (Staged.stage
         (let gt = Graphs.Gen.torus [ 16; 16 ] in
          fun () -> ignore (Graphs.Spectral.eigenvalue_gap gt ~self_loops:4)));
    Test.make ~name:"dimexch-circuit/1024n-8steps"
      (Staged.stage (fun () ->
           ignore
             (Baselines.Dimexch.run Baselines.Dimexch.Balancing_circuit g ~init ~steps)));
    Test.make ~name:"irregular-rotor/wheel256-8steps"
      (Staged.stage
         (let wg = Irregular.Igraph.wheel 256 in
          let cap = 2 * Irregular.Igraph.max_degree wg in
          let winit = Array.make 256 16 in
          fun () ->
            let balancer = Irregular.Ibalancer.rotor_router wg ~capacity:cap in
            ignore (Irregular.Iengine.run ~graph:wg ~balancer ~init:winit ~steps ())));
    Test.make ~name:"weighted-rotor/256n-8steps"
      (Staged.stage
         (let wg = Graphs.Gen.torus [ 16; 16 ] in
          let winit =
            Hetero.Wtokens.uniform_random (Prng.Splitmix.create 7) ~n:256 ~tokens:2048
              ~max_weight:4
          in
          fun () ->
            ignore
              (Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:wg ~self_loops:4
                 ~init:winit ~steps)));
    Test.make ~name:"rotor-walk-cover/torus16x16"
      (Staged.stage
         (let wg = Graphs.Gen.torus [ 16; 16 ] in
          fun () ->
            ignore (Rotorwalk.Walk.cover_time (Rotorwalk.Walk.create wg) ~start:0)));
  ]

let run_microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "\n=== Microbenchmarks: engine step throughput (Bechamel) ===\n";
  Printf.printf "%-32s %14s %10s\n" "benchmark" "time/run" "r²";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          let pretty =
            if time_ns > 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.3f µs" (time_ns /. 1e3)
            else Printf.sprintf "%.1f ns" time_ns
          in
          Printf.printf "%-32s %14s %10.4f\n" name pretty r2)
        analyzed)
    (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (microbench_tests ()))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let csv_path =
    let rec find = function
      | "--csv" :: path :: _ -> Some path
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let rec drop_csv = function
    | "--csv" :: _ :: rest -> drop_csv rest
    | x :: rest -> x :: drop_csv rest
    | [] -> []
  in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (drop_csv args)
  in
  let want_micro = selected = [] || List.mem "micro" selected in
  let experiment_ids =
    match List.filter (fun a -> String.lowercase_ascii a <> "micro") selected with
    | [] -> List.map (fun e -> e.Harness.Suite.id) Harness.Suite.all
    | ids -> ids
  in
  let experiment_ids = if selected = [] || experiment_ids <> [] then experiment_ids else [] in
  Printf.printf
    "Load-balancing benchmark harness — reproduction of Berenbrink et al.,\n\
     \"Improved Analysis of Deterministic Load-Balancing Schemes\" (PODC 2015).\n";
  if quick then Printf.printf "(quick mode: reduced sizes)\n";
  let csv_rows = ref [] in
  List.iter
    (fun id ->
      match Harness.Suite.run_by_id ~quick id with
      | Ok rows -> csv_rows := !csv_rows @ rows
      | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2)
    experiment_ids;
  (match csv_path with
  | Some path ->
    Harness.Csv.write ~path
      ~header:[ "experiment"; "c1"; "c2"; "c3"; "c4"; "c5"; "c6"; "c7"; "c8"; "c9" ]
      ~rows:
        (List.map
           (fun r ->
             let pad = List.init (max 0 (10 - List.length r)) (fun _ -> "") in
             let r = r @ pad in
             List.filteri (fun i _ -> i < 10) r)
           !csv_rows);
    Printf.printf "\nCSV written to %s\n" path
  | None -> ());
  if want_micro then run_microbenchmarks ()
