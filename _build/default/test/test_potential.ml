(* Tests for the Section 3 potential functions and the monotonicity of
   Lemmas 3.5 / 3.7 on live good-s-balancer runs. *)

let check_int = Alcotest.(check int)

let test_phi_values () =
  let loads = [| 10; 3; 0; 25 |] in
  (* d+ = 4, c = 2: threshold 8: max(10-8,0)+0+0+max(25-8,0) = 2+17 *)
  check_int "phi" 19 (Core.Potential.phi ~d_plus:4 ~c:2 loads);
  check_int "phi at high c" 0 (Core.Potential.phi ~d_plus:4 ~c:10 loads);
  (* phi' with s=1, c=2: threshold 9: (0)+(6)+(9)+(0) = 15 *)
  check_int "phi'" 15 (Core.Potential.phi' ~d_plus:4 ~s:1 ~c:2 loads)

let test_phi_zero_threshold () =
  let loads = [| 1; 2; 3 |] in
  check_int "phi(0) counts all tokens" 6 (Core.Potential.phi ~d_plus:4 ~c:0 loads)

let test_drop_formula () =
  (* d+ = 4, s = 2, c = 1 (threshold 4).  before = 9, after = 5:
     min(9-4, 2) - max(5-4, 0) = 2 - 1 = 1. *)
  check_int "drop" 1 (Core.Potential.drop ~d_plus:4 ~s:2 ~c:1 ~before:9 ~after:5);
  (* no drop when load stays above threshold band *)
  check_int "no drop (stays high)" 0
    (Core.Potential.drop ~d_plus:4 ~s:2 ~c:1 ~before:9 ~after:8);
  check_int "full s drop" 2 (Core.Potential.drop ~d_plus:4 ~s:2 ~c:1 ~before:9 ~after:4);
  check_int "no drop below" 0 (Core.Potential.drop ~d_plus:4 ~s:2 ~c:1 ~before:3 ~after:2)

let test_drop'_formula () =
  (* d+ = 4, s = 2, c = 1: band [4, 6].  before = 3, after = 6:
     min(3, 2, 2, 3) = 2. *)
  check_int "drop'" 2 (Core.Potential.drop' ~d_plus:4 ~s:2 ~c:1 ~before:3 ~after:6);
  check_int "no drop' when decreasing" 0
    (Core.Potential.drop' ~d_plus:4 ~s:2 ~c:1 ~before:6 ~after:3);
  check_int "no drop' when staying low" 0
    (Core.Potential.drop' ~d_plus:4 ~s:2 ~c:1 ~before:2 ~after:3)

let test_c_ladder () =
  Alcotest.(check (list int)) "ladder" [ 2; 3; 4 ]
    (Core.Potential.c_ladder ~d_plus:4 ~lo_load:8 ~hi_load:17);
  Alcotest.(check (list int)) "empty ladder" []
    (Core.Potential.c_ladder ~d_plus:4 ~lo_load:18 ~hi_load:17)

(* Lemma 3.5 / 3.7 monotonicity: run good s-balancers and check that
   both potentials never increase, for a ladder of thresholds. *)
let check_monotone_potentials ~graph ~balancer ~init ~steps ~s =
  let dp = Core.Balancer.d_plus balancer in
  let hi = Core.Loads.max_load init in
  let cs = Core.Potential.c_ladder ~d_plus:dp ~lo_load:(hi / 3) ~hi_load:hi in
  let cs = if cs = [] then [ 1 ] else cs in
  let hook, finish = Core.Potential.tracker ~d_plus:dp ~s ~cs () in
  (* Include step 0 by hand. *)
  hook 0 init;
  ignore (Core.Engine.run ~hook ~graph ~balancer ~init ~steps ());
  let phis, phis' = finish () in
  let assert_monotone name traces =
    List.iter
      (fun { Core.Potential.c; values } ->
        let prev = ref max_int in
        Array.iter
          (fun (t, v) ->
            if v > !prev then
              Alcotest.failf "%s(c=%d) increased at step %d: %d -> %d" name c t !prev v;
            prev := v)
          values)
      traces
  in
  assert_monotone "phi" phis;
  assert_monotone "phi'" phis'

let test_lemma_3_5_rotor_router_star () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Core.Loads.point_mass ~n:16 ~total:800 in
  check_monotone_potentials ~graph:g ~balancer:(Core.Rotor_router_star.make g) ~init
    ~steps:400 ~s:1

let test_lemma_3_5_send_round () =
  let g = Graphs.Gen.hypercube 4 in
  let d = 4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1111 in
  check_monotone_potentials ~graph:g
    ~balancer:(Core.Send_round.make g ~self_loops:(3 * d))
    ~init ~steps:400 ~s:d

let test_lemma_3_5_send_round_on_cycle () =
  let g = Graphs.Gen.cycle 15 in
  let init = Core.Loads.bimodal ~n:15 ~high:60 ~low:0 in
  check_monotone_potentials ~graph:g ~balancer:(Core.Send_round.make g ~self_loops:6)
    ~init ~steps:600 ~s:1

let prop_phi_nonnegative_antitone_in_c =
  QCheck.Test.make ~name:"phi is non-negative and antitone in c" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 30) (int_range 0 100))
    (fun loads ->
      let p c = Core.Potential.phi ~d_plus:4 ~c loads in
      p 0 >= p 1 && p 1 >= p 2 && p 5 >= p 10 && p 10 >= 0)

let prop_phi_drop_consistent =
  QCheck.Test.make ~name:"drop ≤ phi difference bound for single node" ~count:500
    QCheck.(quad (int_range 0 40) (int_range 0 40) (int_range 1 5) (int_range 1 4))
    (fun (before, after, s, c) ->
      let d_plus = 6 in
      let d = Core.Potential.drop ~d_plus ~s ~c ~before ~after in
      (* The drop claimed by the lemma can never exceed the actual
         single-node potential decrease when the load decreases. *)
      let p x = max (x - (c * d_plus)) 0 in
      d <= max (p before - p after + s) s && d >= 0)

let () =
  Alcotest.run "potential"
    [
      ( "formulas",
        [
          Alcotest.test_case "phi values" `Quick test_phi_values;
          Alcotest.test_case "phi zero threshold" `Quick test_phi_zero_threshold;
          Alcotest.test_case "drop" `Quick test_drop_formula;
          Alcotest.test_case "drop'" `Quick test_drop'_formula;
          Alcotest.test_case "c ladder" `Quick test_c_ladder;
        ] );
      ( "lemma 3.5/3.7 on live runs",
        [
          Alcotest.test_case "rotor-router* monotone" `Quick
            test_lemma_3_5_rotor_router_star;
          Alcotest.test_case "send-round monotone" `Quick test_lemma_3_5_send_round;
          Alcotest.test_case "send-round on cycle monotone" `Quick
            test_lemma_3_5_send_round_on_cycle;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_phi_nonnegative_antitone_in_c;
          QCheck_alcotest.to_alcotest prop_phi_drop_consistent;
        ] );
    ]
