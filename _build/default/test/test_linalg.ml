(* Tests for dense vectors/matrices, CSR sparse matrices and the
   eigen-solvers. *)

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let check_float msg a b =
  Alcotest.(check (float 1e-9)) msg a b

let check_bool = Alcotest.(check bool)

(* --- Vec --- *)

let test_vec_basic_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.0; 7.0; 9.0 |] (Linalg.Vec.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.0; -3.0; -3.0 |] (Linalg.Vec.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.0; 4.0; 6.0 |] (Linalg.Vec.scale 2.0 a);
  check_float "dot" 32.0 (Linalg.Vec.dot a b)

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Linalg.Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

let test_vec_norms () =
  let v = [| 3.0; -4.0 |] in
  check_float "norm1" 7.0 (Linalg.Vec.norm1 v);
  check_float "norm2" 5.0 (Linalg.Vec.norm2 v);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf v)

let test_vec_normalize () =
  let v = [| 3.0; 4.0 |] in
  Linalg.Vec.normalize2 v;
  check_float "unit norm" 1.0 (Linalg.Vec.norm2 v);
  let z = [| 0.0; 0.0 |] in
  Linalg.Vec.normalize2 z;
  check_float "zero vector unchanged" 0.0 (Linalg.Vec.norm2 z)

let test_vec_axpy () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Linalg.Vec.axpy ~alpha:3.0 ~x ~y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 13.0; 26.0 |] y

let test_vec_stats () =
  let v = [| 1.0; 5.0; 3.0 |] in
  check_float "sum" 9.0 (Linalg.Vec.sum v);
  check_float "mean" 3.0 (Linalg.Vec.mean v);
  check_float "max" 5.0 (Linalg.Vec.max_elt v);
  check_float "min" 1.0 (Linalg.Vec.min_elt v)

let test_vec_project_out () =
  let u = [| 1.0; 0.0 |] in
  let v = [| 3.0; 4.0 |] in
  Linalg.Vec.project_out ~unit_dir:u v;
  Alcotest.(check (array (float 1e-12))) "projected" [| 0.0; 4.0 |] v

(* --- Mat --- *)

let test_mat_identity_mul () =
  let i3 = Linalg.Mat.identity 3 in
  let v = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "I v = v" v (Linalg.Mat.mul_vec i3 v)

let test_mat_mul () =
  let a = Linalg.Mat.init 2 (fun i j -> float_of_int ((i * 2) + j + 1)) in
  (* [[1 2];[3 4]] *)
  let b = Linalg.Mat.mul a a in
  check_float "b00" 7.0 (Linalg.Mat.get b 0 0);
  check_float "b01" 10.0 (Linalg.Mat.get b 0 1);
  check_float "b10" 15.0 (Linalg.Mat.get b 1 0);
  check_float "b11" 22.0 (Linalg.Mat.get b 1 1)

let test_mat_transpose () =
  let a = Linalg.Mat.init 2 (fun i j -> float_of_int ((i * 2) + j)) in
  let t = Linalg.Mat.transpose a in
  check_float "t01" 2.0 (Linalg.Mat.get t 0 1);
  check_float "t10" 1.0 (Linalg.Mat.get t 1 0)

let test_mat_stochastic () =
  let p = Linalg.Mat.init 2 (fun _ _ -> 0.5) in
  check_bool "stochastic" true (Linalg.Mat.is_stochastic p);
  check_bool "symmetric" true (Linalg.Mat.is_symmetric p);
  let q = Linalg.Mat.init 2 (fun i j -> if i = j then 0.9 else 0.2) in
  check_bool "not stochastic" false (Linalg.Mat.is_stochastic q)

(* --- Csr --- *)

let test_csr_roundtrip () =
  let m = Linalg.Csr.of_triplets ~n:3 [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0) ] in
  check_float "get 0 1" 2.0 (Linalg.Csr.get m 0 1);
  check_float "get 1 2" 3.0 (Linalg.Csr.get m 1 2);
  check_float "get absent" 0.0 (Linalg.Csr.get m 0 2);
  Alcotest.(check int) "nnz" 3 (Linalg.Csr.nnz m)

let test_csr_duplicates_sum () =
  let m = Linalg.Csr.of_triplets ~n:2 [ (0, 1, 1.0); (0, 1, 2.5) ] in
  check_float "summed" 3.5 (Linalg.Csr.get m 0 1);
  Alcotest.(check int) "merged" 1 (Linalg.Csr.nnz m)

let test_csr_mul_vec () =
  let m = Linalg.Csr.of_triplets ~n:3 [ (0, 0, 1.0); (0, 2, 2.0); (2, 1, 3.0) ] in
  let v = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "product" [| 7.0; 0.0; 6.0 |]
    (Linalg.Csr.mul_vec m v)

let test_csr_matches_dense () =
  let g = Prng.Splitmix.create 77 in
  let n = 12 in
  let triplets = ref [] in
  for _ = 1 to 40 do
    triplets :=
      (Prng.Splitmix.int g n, Prng.Splitmix.int g n, Prng.Splitmix.float g 1.0)
      :: !triplets
  done;
  let sparse = Linalg.Csr.of_triplets ~n !triplets in
  let dense = Linalg.Csr.to_dense sparse in
  let v = Array.init n (fun i -> float_of_int i) in
  let a = Linalg.Csr.mul_vec sparse v in
  let b = Linalg.Mat.mul_vec dense v in
  Array.iteri (fun i x -> check_bool "agree" true (feq x b.(i))) a

let test_csr_row_sums () =
  let m = Linalg.Csr.of_triplets ~n:2 [ (0, 0, 1.0); (0, 1, 2.0); (1, 1, 5.0) ] in
  Alcotest.(check (array (float 1e-12))) "row sums" [| 3.0; 5.0 |] (Linalg.Csr.row_sums m)

let test_csr_out_of_range () =
  Alcotest.check_raises "bad triplet"
    (Invalid_argument "Csr.of_triplets: index out of range") (fun () ->
      ignore (Linalg.Csr.of_triplets ~n:2 [ (0, 2, 1.0) ]))

(* --- Eigen --- *)

let test_power_iteration_diagonal () =
  (* Operator diag(0.9, 0.5, 0.1): dominant eigenvalue 0.9. *)
  let apply v = [| 0.9 *. v.(0); 0.5 *. v.(1); 0.1 *. v.(2) |] in
  let r = Linalg.Eigen.power_iteration apply 3 in
  check_bool
    (Printf.sprintf "dominant %.6f" r.Linalg.Eigen.value)
    true
    (feq ~eps:1e-6 r.Linalg.Eigen.value 0.9)

let test_second_eigenvalue_complete_graph () =
  (* K_4 with d° = 3 self-loops: P = (A + 3I)/6; eigenvalues 1 and
     (3-1)/6 = 1/3. *)
  let g = Graphs.Gen.complete 4 in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:3 in
  let r = Linalg.Eigen.second_eigenvalue p in
  check_bool
    (Printf.sprintf "lambda2 %.6f" r.Linalg.Eigen.value)
    true
    (feq ~eps:1e-6 (abs_float r.Linalg.Eigen.value) (1.0 /. 3.0))

let test_spectral_gap_in_range () =
  let g = Graphs.Gen.cycle 8 in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:2 in
  let gap = Linalg.Eigen.spectral_gap p in
  check_bool "gap in (0,1]" true (gap > 0.0 && gap <= 1.0)

let prop_csr_mul_linear =
  QCheck.Test.make ~name:"Csr.mul_vec is linear" ~count:100
    QCheck.(int_range 1 20)
    (fun n ->
      let g = Prng.Splitmix.create n in
      let triplets =
        List.init (2 * n) (fun _ ->
            (Prng.Splitmix.int g n, Prng.Splitmix.int g n, Prng.Splitmix.float g 2.0))
      in
      let m = Linalg.Csr.of_triplets ~n triplets in
      let v = Array.init n (fun _ -> Prng.Splitmix.float g 1.0) in
      let w = Array.init n (fun _ -> Prng.Splitmix.float g 1.0) in
      let lhs = Linalg.Csr.mul_vec m (Linalg.Vec.add v w) in
      let rhs = Linalg.Vec.add (Linalg.Csr.mul_vec m v) (Linalg.Csr.mul_vec m w) in
      Array.for_all2 (fun a b -> feq ~eps:1e-9 a b) lhs rhs)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic_ops;
          Alcotest.test_case "dim mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "stats" `Quick test_vec_stats;
          Alcotest.test_case "project out" `Quick test_vec_project_out;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "mat mul" `Quick test_mat_mul;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "stochastic checks" `Quick test_mat_stochastic;
        ] );
      ( "csr",
        [
          Alcotest.test_case "roundtrip" `Quick test_csr_roundtrip;
          Alcotest.test_case "duplicates sum" `Quick test_csr_duplicates_sum;
          Alcotest.test_case "mul vec" `Quick test_csr_mul_vec;
          Alcotest.test_case "matches dense" `Quick test_csr_matches_dense;
          Alcotest.test_case "row sums" `Quick test_csr_row_sums;
          Alcotest.test_case "out of range" `Quick test_csr_out_of_range;
        ] );
      ( "eigen",
        [
          Alcotest.test_case "power iteration diagonal" `Quick
            test_power_iteration_diagonal;
          Alcotest.test_case "second eigenvalue K4" `Quick
            test_second_eigenvalue_complete_graph;
          Alcotest.test_case "gap in range" `Quick test_spectral_gap_in_range;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_csr_mul_linear ]);
    ]
