(* Tests for the Table 1 comparators: continuous diffusion, the mimic
   scheme of [4], and the randomized baselines of [5] and [18]. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- continuous diffusion --- *)

let test_continuous_conserves_mass () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let init = Array.make 16 0.0 in
  init.(3) <- 160.0;
  let r = Baselines.Continuous.run ~graph:g ~self_loops:4 ~init ~steps:50 () in
  Alcotest.(check (float 1e-6)) "mass" 160.0 (Array.fold_left ( +. ) 0.0 r.Baselines.Continuous.final)

let test_continuous_discrepancy_decreases () =
  let g = Graphs.Gen.cycle 8 in
  let init = Array.make 8 0.0 in
  init.(0) <- 80.0;
  let r = Baselines.Continuous.run ~graph:g ~self_loops:2 ~init ~steps:200 () in
  let series = r.Baselines.Continuous.series in
  let first = snd series.(0) and last = snd series.(Array.length series - 1) in
  check_bool "decreased" true (last < first /. 10.0);
  (* Discrepancy of the continuous process is non-increasing. *)
  let prev = ref infinity in
  Array.iter
    (fun (_, d) ->
      check_bool "monotone" true (d <= !prev +. 1e-9);
      prev := d)
    series

let test_continuous_converges_to_average () =
  let g = Graphs.Gen.complete 5 in
  let init = [| 10.0; 0.0; 0.0; 0.0; 0.0 |] in
  let r = Baselines.Continuous.run ~graph:g ~self_loops:4 ~init ~steps:300 () in
  Array.iter
    (fun x -> check_bool "near average" true (abs_float (x -. 2.0) < 1e-6))
    r.Baselines.Continuous.final

let test_continuous_early_stop () =
  let g = Graphs.Gen.complete 8 in
  let init = Array.make 8 0.0 in
  init.(0) <- 800.0;
  let r =
    Baselines.Continuous.run ~stop_at_discrepancy:1.0 ~graph:g ~self_loops:7 ~init
      ~steps:100_000 ()
  in
  check_bool "stopped early" true (r.Baselines.Continuous.steps_run < 1000);
  check_bool "reached target" true
    (Baselines.Continuous.discrepancy r.Baselines.Continuous.final <= 1.0)

let test_step_into_matches_csr () =
  let g = Graphs.Gen.torus [ 3; 3 ] in
  let p = Graphs.Spectral.transition_matrix g ~self_loops:4 in
  let x = Array.init 9 (fun i -> float_of_int ((i * 7) mod 5)) in
  let via_engine = Array.make 9 0.0 in
  Baselines.Continuous.step_into g ~self_loops:4 x via_engine;
  let via_csr = Linalg.Csr.mul_vec p x in
  Array.iteri
    (fun i v -> check_bool "matches csr" true (abs_float (v -. via_csr.(i)) < 1e-9))
    via_engine

(* --- mimic ([4]) --- *)

let test_mimic_reaches_2d () =
  (* The defining guarantee: discrepancy ≤ 2d once the continuous
     process has balanced. *)
  List.iter
    (fun (g, d0) ->
      let n = Graphs.Graph.n g in
      let d = Graphs.Graph.degree g in
      let init = Core.Loads.point_mass ~n ~total:(50 * n) in
      let bal = Baselines.Mimic.make g ~self_loops:d0 ~init in
      let finit = Array.map float_of_int init in
      let t =
        Option.get
          (Graphs.Spectral.continuous_balancing_time g ~self_loops:d0 ~init:finit ())
      in
      let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:(2 * t) () in
      let disc = Core.Loads.discrepancy r.Core.Engine.final_loads in
      check_bool
        (Printf.sprintf "%s: discrepancy %d ≤ 2d = %d" bal.Core.Balancer.name disc (2 * d))
        true
        (disc <= 2 * d))
    [
      (Graphs.Gen.cycle 16, 2);
      (Graphs.Gen.torus [ 4; 4 ], 4);
      (Graphs.Gen.hypercube 4, 4);
    ]

let test_mimic_conserves_mass () =
  let g = Graphs.Gen.cycle 10 in
  let init = Core.Loads.point_mass ~n:10 ~total:500 in
  let bal = Baselines.Mimic.make g ~self_loops:2 ~init in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:100 () in
  check_int "mass" 500 (Core.Loads.total r.Core.Engine.final_loads)

let test_mimic_props_match_table1 () =
  let g = Graphs.Gen.cycle 6 in
  let init = Core.Loads.flat ~n:6 ~value:1 in
  let bal = Baselines.Mimic.make g ~self_loops:2 ~init in
  let p = bal.Core.Balancer.props in
  check_bool "deterministic" true p.deterministic;
  check_bool "may go negative" false p.never_negative;
  check_bool "needs extra info" false p.no_communication

let test_mimic_can_go_negative () =
  (* With a tiny load and a large promised continuous flow, some node
     must overdraw: min_load_seen < 0 on a point mass of 1 token per
     node average but skewed start. *)
  let g = Graphs.Gen.cycle 12 in
  let init = Core.Loads.point_mass ~n:12 ~total:12 in
  let bal = Baselines.Mimic.make g ~self_loops:2 ~init in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:50 () in
  (* Not asserting it MUST go negative (depends on rounding), just that
     the engine tolerates this balancer and conserves mass. *)
  check_int "mass" 12 (Core.Loads.total r.Core.Engine.final_loads);
  check_bool "min load recorded" true (r.Core.Engine.min_load_seen <= 1)

(* --- randomized baselines --- *)

let test_random_extra_conserves_and_nonneg () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let rng = Prng.Splitmix.create 42 in
  let bal = Baselines.Random_extra.make rng g ~self_loops:4 in
  let init = Core.Loads.point_mass ~n:16 ~total:777 in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:200 () in
  check_int "mass" 777 (Core.Loads.total r.Core.Engine.final_loads);
  check_bool "never negative" true (r.Core.Engine.min_load_seen >= 0)

let test_random_extra_balances () =
  let n = 16 in
  let g = Graphs.Gen.complete n in
  let rng = Prng.Splitmix.create 7 in
  let bal = Baselines.Random_extra.make rng g ~self_loops:(n - 1) in
  let init = Core.Loads.point_mass ~n ~total:(n * 100) in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:300 () in
  check_bool
    (Printf.sprintf "balanced (got %d)" (Core.Loads.discrepancy r.Core.Engine.final_loads))
    true
    (Core.Loads.discrepancy r.Core.Engine.final_loads <= 4 * n)

let test_random_rounding_conserves () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let rng = Prng.Splitmix.create 43 in
  let bal = Baselines.Random_rounding.make rng g ~self_loops:4 in
  let init = Core.Loads.point_mass ~n:16 ~total:1600 in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:200 () in
  check_int "mass" 1600 (Core.Loads.total r.Core.Engine.final_loads)

let test_random_rounding_balances_expander () =
  let rng_g = Prng.Splitmix.create 3 in
  let g = Graphs.Gen.random_regular rng_g ~n:32 ~d:6 in
  let rng = Prng.Splitmix.create 44 in
  let bal = Baselines.Random_rounding.make rng g ~self_loops:6 in
  let init = Core.Loads.point_mass ~n:32 ~total:3200 in
  let r = Core.Engine.run ~graph:g ~balancer:bal ~init ~steps:400 () in
  check_bool
    (Printf.sprintf "balanced (got %d)" (Core.Loads.discrepancy r.Core.Engine.final_loads))
    true
    (Core.Loads.discrepancy r.Core.Engine.final_loads <= 40)

let test_randomized_props () =
  let g = Graphs.Gen.cycle 4 in
  let rng = Prng.Splitmix.create 1 in
  let extra = Baselines.Random_extra.make rng g ~self_loops:2 in
  let rounding = Baselines.Random_rounding.make rng g ~self_loops:2 in
  check_bool "extra not deterministic" false extra.Core.Balancer.props.deterministic;
  check_bool "extra never negative" true extra.Core.Balancer.props.never_negative;
  check_bool "rounding may go negative" false
    rounding.Core.Balancer.props.never_negative

let prop_random_extra_valid_assignment =
  QCheck.Test.make ~name:"random-extra assignments valid and ≥ floor" ~count:300
    QCheck.(pair small_int (int_range 0 5000))
    (fun (seed, load) ->
      let g = Graphs.Gen.torus [ 3; 3 ] in
      let rng = Prng.Splitmix.create seed in
      let bal = Baselines.Random_extra.make rng g ~self_loops:4 in
      let dp = Core.Balancer.d_plus bal in
      let ports = Array.make dp 0 in
      bal.Core.Balancer.assign ~step:1 ~node:0 ~load ~ports;
      Array.fold_left ( + ) 0 ports = load
      && Array.for_all (fun v -> v >= load / dp) ports)

let prop_random_rounding_round_fair_sends =
  QCheck.Test.make ~name:"random-rounding sends floor or ceil per edge" ~count:300
    QCheck.(pair small_int (int_range 0 5000))
    (fun (seed, load) ->
      let g = Graphs.Gen.torus [ 3; 3 ] in
      let d = 4 in
      let rng = Prng.Splitmix.create seed in
      let bal = Baselines.Random_rounding.make rng g ~self_loops:4 in
      let dp = Core.Balancer.d_plus bal in
      let ports = Array.make dp 0 in
      bal.Core.Balancer.assign ~step:1 ~node:0 ~load ~ports;
      let q = load / dp in
      let ok = ref (Array.fold_left ( + ) 0 ports = load) in
      for k = 0 to d - 1 do
        if not (ports.(k) = q || ports.(k) = q + 1) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "baselines"
    [
      ( "continuous",
        [
          Alcotest.test_case "conserves mass" `Quick test_continuous_conserves_mass;
          Alcotest.test_case "discrepancy decreases" `Quick
            test_continuous_discrepancy_decreases;
          Alcotest.test_case "converges to average" `Quick
            test_continuous_converges_to_average;
          Alcotest.test_case "early stop" `Quick test_continuous_early_stop;
          Alcotest.test_case "step matches csr" `Quick test_step_into_matches_csr;
        ] );
      ( "mimic [4]",
        [
          Alcotest.test_case "reaches 2d" `Quick test_mimic_reaches_2d;
          Alcotest.test_case "conserves mass" `Quick test_mimic_conserves_mass;
          Alcotest.test_case "Table 1 properties" `Quick test_mimic_props_match_table1;
          Alcotest.test_case "tolerates overdraw" `Quick test_mimic_can_go_negative;
        ] );
      ( "randomized [5]/[18]",
        [
          Alcotest.test_case "random-extra conserves" `Quick
            test_random_extra_conserves_and_nonneg;
          Alcotest.test_case "random-extra balances" `Quick test_random_extra_balances;
          Alcotest.test_case "random-rounding conserves" `Quick
            test_random_rounding_conserves;
          Alcotest.test_case "random-rounding balances" `Quick
            test_random_rounding_balances_expander;
          Alcotest.test_case "Table 1 properties" `Quick test_randomized_props;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_extra_valid_assignment;
          QCheck_alcotest.to_alcotest prop_random_rounding_round_fair_sends;
        ] );
    ]
