(* Tests for the heterogeneous extensions: weighted tokens ([1]/[4]
   direction) and non-uniform machine speeds ([2] direction). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- weighted tokens --- *)

let sorted_multiset state =
  let all = Array.to_list state |> List.concat_map Array.to_list in
  List.sort compare all

let test_weight_metrics () =
  let state = [| [| 3; 1 |]; [| 5 |]; [||] |] in
  check_int "node weight" 4 (Hetero.Wtokens.node_weight state.(0));
  check_int "total" 9 (Hetero.Wtokens.total_weight state);
  check_int "count" 3 (Hetero.Wtokens.token_count state);
  check_int "weighted disc" 5 (Hetero.Wtokens.weighted_discrepancy state);
  check_int "count disc" 2 (Hetero.Wtokens.count_discrepancy state);
  check_int "max weight" 5 (Hetero.Wtokens.max_token_weight state)

let test_point_mass_weighted () =
  let s = Hetero.Wtokens.point_mass ~n:4 ~weights:[| 2; 2; 7 |] in
  check_int "all on node 0" 11 (Hetero.Wtokens.node_weight s.(0));
  check_int "others empty" 0 (Hetero.Wtokens.node_weight s.(2))

let test_uniform_random_weighted () =
  let rng = Prng.Splitmix.create 3 in
  let s = Hetero.Wtokens.uniform_random rng ~n:10 ~tokens:200 ~max_weight:5 in
  check_int "token count" 200 (Hetero.Wtokens.token_count s);
  check_bool "weights in range" true
    (List.for_all (fun w -> w >= 1 && w <= 5) (sorted_multiset s))

let test_run_conserves_multiset () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let rng = Prng.Splitmix.create 4 in
  let init = Hetero.Wtokens.uniform_random rng ~n:16 ~tokens:300 ~max_weight:4 in
  let before = sorted_multiset init in
  List.iter
    (fun policy ->
      let r = Hetero.Wtokens.run policy ~graph:g ~self_loops:4 ~init ~steps:60 in
      Alcotest.(check (list int))
        "same multiset of weights" before
        (sorted_multiset r.Hetero.Wtokens.final))
    [ Hetero.Wtokens.Oblivious; Hetero.Wtokens.Largest_first ]

let test_weighted_balances_within_wmax_factor () =
  (* The transfer principle: weighted discrepancy after T is at most
     w_max × (a unit-token O(d√·) bound); generous constant 6. *)
  let g = Graphs.Gen.torus [ 6; 6 ] in
  let n = 36 and d = 4 in
  let rng = Prng.Splitmix.create 5 in
  let wmax = 4 in
  let init = Hetero.Wtokens.uniform_random rng ~n ~tokens:(40 * n) ~max_weight:wmax in
  (* Concentrate: move everything onto node 0 for a worst-ish start. *)
  let all = Array.of_list (sorted_multiset init) in
  let init = Hetero.Wtokens.point_mass ~n ~weights:all in
  let gap = Graphs.Spectral.eigenvalue_gap g ~self_loops:d in
  let steps =
    Graphs.Spectral.horizon ~gap ~n
      ~initial_discrepancy:(Hetero.Wtokens.total_weight init) ~c:4.0
  in
  List.iter
    (fun (label, policy) ->
      let r = Hetero.Wtokens.run policy ~graph:g ~self_loops:d ~init ~steps in
      let disc = Hetero.Wtokens.weighted_discrepancy r.Hetero.Wtokens.final in
      let bound =
        wmax * int_of_float (6.0 *. float_of_int d *. sqrt (log (float_of_int n) /. gap))
      in
      check_bool (Printf.sprintf "%s: %d ≤ %d" label disc bound) true (disc <= bound))
    [ ("oblivious", Hetero.Wtokens.Oblivious); ("largest-first", Hetero.Wtokens.Largest_first) ]

let test_unit_weights_match_rotor_router_counts () =
  (* With all weights 1, the weighted walker IS the rotor-router: count
     discrepancy should behave identically (same default order, same
     rotor rule). *)
  let g = Graphs.Gen.cycle 8 in
  let unit_weights = Array.make 96 1 in
  let init_w = Hetero.Wtokens.point_mass ~n:8 ~weights:unit_weights in
  let rw =
    Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:g ~self_loops:2 ~init:init_w
      ~steps:50
  in
  let init_u = Core.Loads.point_mass ~n:8 ~total:96 in
  let ru =
    Core.Engine.run ~graph:g
      ~balancer:(Core.Rotor_router.make g ~self_loops:2)
      ~init:init_u ~steps:50 ()
  in
  let counts = Array.map Array.length rw.Hetero.Wtokens.final in
  Alcotest.(check (array int)) "identical dynamics" ru.Core.Engine.final_loads counts

let test_weight_series_monotone_start () =
  let g = Graphs.Gen.complete 6 in
  let init = Hetero.Wtokens.point_mass ~n:6 ~weights:(Array.make 60 2) in
  let r =
    Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:g ~self_loops:5 ~init ~steps:30
  in
  let first = snd r.Hetero.Wtokens.weight_series.(0) in
  let last =
    snd r.Hetero.Wtokens.weight_series.(Array.length r.Hetero.Wtokens.weight_series - 1)
  in
  check_bool "improved" true (last < first / 4)

let test_rejects_bad_weights () =
  check_bool "zero weight rejected" true
    (try
       ignore (Hetero.Wtokens.point_mass ~n:2 ~weights:[| 0 |]);
       false
     with Invalid_argument _ -> true)

(* --- non-uniform machines --- *)

let test_height_discrepancy () =
  Alcotest.(check (float 1e-9)) "heights" 1.5
    (Hetero.Nonuniform.height_discrepancy ~loads:[| 6; 3 |] ~speeds:[| 4; 1 |])

let test_nonuniform_conserves () =
  let g = Graphs.Gen.torus [ 4; 4 ] in
  let speeds = Array.init 16 (fun i -> 1 + (i mod 4)) in
  let init = Core.Loads.point_mass ~n:16 ~total:2000 in
  let r = Hetero.Nonuniform.run ~graph:g ~speeds ~init ~steps:300 () in
  check_int "mass" 2000 (Core.Loads.total r.Hetero.Nonuniform.final_loads);
  Array.iter
    (fun x -> check_bool "never negative" true (x >= 0))
    r.Hetero.Nonuniform.final_loads

let test_nonuniform_balances_heights () =
  let g = Graphs.Gen.complete 8 in
  let speeds = [| 8; 1; 1; 1; 1; 1; 1; 2 |] in
  let init = Core.Loads.point_mass ~n:8 ~total:3200 in
  let r = Hetero.Nonuniform.run ~graph:g ~speeds ~init ~steps:500 () in
  let disc =
    Hetero.Nonuniform.height_discrepancy ~loads:r.Hetero.Nonuniform.final_loads ~speeds
  in
  (* The fast machine ends with proportionally more load. *)
  check_bool
    (Printf.sprintf "height discrepancy %.2f small" disc)
    true (disc <= float_of_int (Graphs.Graph.degree g + 1));
  check_bool "fast node has more" true
    (r.Hetero.Nonuniform.final_loads.(0) > 2 * r.Hetero.Nonuniform.final_loads.(1))

let test_nonuniform_uniform_speeds_degenerates () =
  (* With all speeds 1 this is plain first-order diffusion with floor
     rounding; per-edge flow stalls once differences drop below d+1, so
     the reachable band is d·diam (the Theorem 4.1 phenomenon — this
     scheme is round-fair but NOT cumulatively fair). *)
  let g = Graphs.Gen.cycle 12 in
  let d = 2 in
  let diam = 6 in
  let speeds = Array.make 12 1 in
  let init = Core.Loads.point_mass ~n:12 ~total:1200 in
  let r =
    Hetero.Nonuniform.run
      ~stop_at_height_discrepancy:(float_of_int (d * diam))
      ~graph:g ~speeds ~init ~steps:100_000 ()
  in
  check_bool "reached the d·diam band" true (r.Hetero.Nonuniform.reached_target <> None)

let test_nonuniform_rejects_bad_speed () =
  let g = Graphs.Gen.cycle 4 in
  check_bool "zero speed rejected" true
    (try
       ignore
         (Hetero.Nonuniform.run ~graph:g ~speeds:[| 1; 0; 1; 1 |]
            ~init:[| 4; 0; 0; 0 |] ~steps:1 ());
       false
     with Invalid_argument _ -> true)

let prop_weighted_conservation =
  QCheck.Test.make ~name:"weighted run conserves the weight multiset" ~count:25
    QCheck.(triple (int_range 3 12) (int_range 0 100) (int_range 1 6))
    (fun (n, tokens, wmax) ->
      let g = Graphs.Gen.cycle n in
      let rng = Prng.Splitmix.create (n + tokens + wmax) in
      let init = Hetero.Wtokens.uniform_random rng ~n ~tokens ~max_weight:wmax in
      let before = sorted_multiset init in
      let r =
        Hetero.Wtokens.run Hetero.Wtokens.Oblivious ~graph:g ~self_loops:2 ~init
          ~steps:25
      in
      sorted_multiset r.Hetero.Wtokens.final = before)

let prop_nonuniform_never_negative =
  QCheck.Test.make ~name:"speed diffusion never overdraws" ~count:25
    QCheck.(pair (int_range 4 16) (int_range 0 2000))
    (fun (n, total) ->
      let g = Graphs.Gen.cycle n in
      let rng = Prng.Splitmix.create (n * 7) in
      let speeds = Array.init n (fun _ -> 1 + Prng.Splitmix.int rng 5) in
      let init = Core.Loads.point_mass ~n ~total in
      let r = Hetero.Nonuniform.run ~graph:g ~speeds ~init ~steps:50 () in
      Array.for_all (fun x -> x >= 0) r.Hetero.Nonuniform.final_loads
      && Core.Loads.total r.Hetero.Nonuniform.final_loads = total)

let () =
  Alcotest.run "hetero"
    [
      ( "weighted tokens",
        [
          Alcotest.test_case "metrics" `Quick test_weight_metrics;
          Alcotest.test_case "point mass" `Quick test_point_mass_weighted;
          Alcotest.test_case "uniform random" `Quick test_uniform_random_weighted;
          Alcotest.test_case "conserves multiset" `Quick test_run_conserves_multiset;
          Alcotest.test_case "balances within w_max factor" `Quick
            test_weighted_balances_within_wmax_factor;
          Alcotest.test_case "unit weights = rotor-router" `Quick
            test_unit_weights_match_rotor_router_counts;
          Alcotest.test_case "series improves" `Quick test_weight_series_monotone_start;
          Alcotest.test_case "rejects bad weights" `Quick test_rejects_bad_weights;
        ] );
      ( "non-uniform machines",
        [
          Alcotest.test_case "height metric" `Quick test_height_discrepancy;
          Alcotest.test_case "conserves" `Quick test_nonuniform_conserves;
          Alcotest.test_case "balances heights" `Quick test_nonuniform_balances_heights;
          Alcotest.test_case "uniform speeds" `Quick
            test_nonuniform_uniform_speeds_degenerates;
          Alcotest.test_case "rejects bad speed" `Quick test_nonuniform_rejects_bad_speed;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_weighted_conservation;
          QCheck_alcotest.to_alcotest prop_nonuniform_never_negative;
        ] );
    ]
